// Command dmetabench runs distributed metadata benchmarks.
//
// Three modes are supported:
//
//	-mode sim     benchmark a simulated distributed file system on a
//	              simulated cluster (deterministic, laptop-scale);
//	-mode real    benchmark the host file system with N worker threads;
//	-mode master  coordinate dmetaworker daemons over TCP for a real
//	              multi-node run.
//
// Example (simulated NFS filer, 8 nodes, up to 4 processes per node):
//
//	dmetabench -mode sim -fs nfs -nodes 8 -ppn 4 \
//	    -ops MakeFiles,StatFiles -problemsize 2000 -out /tmp/run1
//
// Example (real, like the thesis invocation of Listing 3.2):
//
//	dmetabench -mode real -root /mnt/nfs/testdirectory -workers 8 \
//	    -ops MakeFiles,StatFiles -problemsize 10000 -label first-nfs-benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmetabench/internal/afs"
	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/cxfs"
	"dmetabench/internal/localfs"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/ontapgx"
	"dmetabench/internal/pvfs"
	"dmetabench/internal/realrun"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

func main() {
	var (
		mode        = flag.String("mode", "sim", "sim | real | master")
		fsKind      = flag.String("fs", "nfs", "simulated fs: nfs | lustre | lustre-wb | cxfs | afs | gx | pvfs | shard | shard-subtree | local")
		nodes       = flag.Int("nodes", 4, "sim: number of client nodes")
		ppn         = flag.Int("ppn", 2, "sim: worker slots per node")
		cores       = flag.Int("cores", 8, "sim: CPU cores per node")
		latency     = flag.Duration("latency", 250*time.Microsecond, "sim: one-way network latency")
		seed        = flag.Int64("seed", 1, "sim: random seed")
		shards      = flag.Int("shards", 4, "sim: metadata servers for -fs shard / shard-subtree")
		backendName = flag.String("backend", "mem", "sim: shard storage backend cost model: mem | lsm | btree")
		ops         = flag.String("ops", "MakeFiles", "comma-separated operation list")
		problem     = flag.Int("problemsize", 5000, "operations per process (or per-directory limit)")
		timeLimit   = flag.Duration("timelimit", 0, "timed benchmark window (0 = fixed problem size)")
		workdir     = flag.String("workdir", "/bench", "target directory inside the file system")
		pathList    = flag.String("pathlist", "", "comma-separated per-process working directories")
		label       = flag.String("label", "dmetabench", "result set label")
		interval    = flag.Duration("interval", 100*time.Millisecond, "progress sampling interval")
		nodeStep    = flag.Int("nodestep", 1, "node count step in the execution plan")
		ppnStep     = flag.Int("ppnstep", 1, "processes-per-node step in the execution plan")
		out         = flag.String("out", "", "result output directory (empty = print only)")
		showCharts  = flag.Bool("charts", true, "print ASCII charts")
		root        = flag.String("root", "", "real/master: host directory to benchmark")
		workers     = flag.Int("workers", 4, "real: concurrent worker threads")
		workerAddrs = flag.String("workeraddrs", "", "master: comma-separated dmetaworker addresses")
	)
	flag.Parse()

	params := core.Params{
		ProblemSize: *problem,
		TimeLimit:   *timeLimit,
		WorkDir:     *workdir,
		Interval:    *interval,
		NodeStep:    *nodeStep,
		PPNStep:     *ppnStep,
		Label:       *label,
	}
	if *pathList != "" {
		params.PathList = strings.Split(*pathList, ",")
	}
	var plugins []core.Plugin
	for _, name := range strings.Split(*ops, ",") {
		p, err := core.PluginByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		plugins = append(plugins, p)
	}

	var set *results.Set
	var err error
	switch *mode {
	case "sim":
		set, err = runSim(*fsKind, *nodes, *ppn, *cores, *shards, *backendName, *latency, *seed, params, plugins)
	case "real":
		if *root == "" {
			fatal(fmt.Errorf("-mode real requires -root"))
		}
		r := &realrun.Runner{Root: *root, Workers: *workers, Params: params, Plugins: plugins}
		set, err = r.Run()
	case "master":
		if *root == "" || *workerAddrs == "" {
			fatal(fmt.Errorf("-mode master requires -root and -workeraddrs"))
		}
		m := &realrun.Master{
			Root:    *root,
			Addrs:   strings.Split(*workerAddrs, ","),
			Params:  params,
			Plugins: plugins,
		}
		set, err = m.Run()
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}

	printSet(set, *showCharts)
	if *out != "" {
		if err := set.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("results written to %s\n", *out)
	}
}

func runSim(fsKind string, nodes, ppn, cores, shards int, backendName string, latency time.Duration, seed int64,
	params core.Params, plugins []core.Plugin) (*results.Set, error) {

	k := sim.New(seed)
	cfg := cluster.DefaultConfig(nodes)
	cfg.Cores = cores
	cl := cluster.New(k, cfg)

	var fsys core.FileSystem
	switch fsKind {
	case "nfs":
		c := nfs.DefaultConfig()
		c.OneWayLatency = latency
		fsys = nfs.New(k, "home", c)
	case "lustre":
		c := lustre.DefaultConfig()
		c.OneWayLatency = latency
		fsys = lustre.New(k, "scratch", c)
	case "lustre-wb":
		c := lustre.DefaultConfig()
		c.OneWayLatency = latency
		c.Writeback = true
		fsys = lustre.New(k, "scratch", c)
	case "cxfs":
		c := cxfs.DefaultConfig()
		fsys = cxfs.New(k, "san", c)
	case "afs":
		c := afs.DefaultConfig()
		c.OneWayLatency = latency
		cell := afs.New(k, "cell", 2, c)
		for i := 0; i < nodes; i++ {
			cell.AddVolume(fmt.Sprintf("vol%d", i), -1)
		}
		if len(params.PathList) == 0 {
			params.WorkDir = "/vol0"
		}
		fsys = cell
	case "gx":
		c := ontapgx.DefaultConfig()
		c.OneWayLatency = latency
		gx := ontapgx.New(k, "gx", min(nodes, 8), c)
		for i := 0; i < min(nodes, 8); i++ {
			gx.AddVolume(fmt.Sprintf("vol%d", i), i)
		}
		if len(params.PathList) == 0 {
			params.WorkDir = "/vol0"
		}
		fsys = gx
	case "shard", "shard-subtree":
		c := shard.DefaultConfig(shards)
		c.OneWayLatency = latency
		switch backendName {
		case "", "mem", "memjournal", "lsm", "btree", "sql":
			c.Backend = shard.ParseBackend(backendName)
		default:
			return nil, fmt.Errorf("unknown -backend %q", backendName)
		}
		if fsKind == "shard-subtree" {
			c.Placement = shard.PlaceSubtree
		}
		fsys = shard.New(k, "meta", c)
	case "pvfs":
		c := pvfs.DefaultConfig()
		c.OneWayLatency = latency
		fsys = pvfs.New(k, "scratch", c)
	case "local":
		fsys = localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
	default:
		return nil, fmt.Errorf("unknown -fs %q", fsKind)
	}

	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       params,
		SlotsPerNode: ppn,
		Plugins:      plugins,
		ProfileLoad:  time.Second,
	}
	return r.Run()
}

func printSet(set *results.Set, withCharts bool) {
	fmt.Printf("# %s on %s (interval %s)\n", set.Label, set.FS, set.Interval)
	fmt.Println("Operation\tNodes\tPPN\tProcs\tStonewall ops/s\tWallclock ops/s\tErrors")
	for _, m := range set.Measurements {
		a := m.Averages()
		nerr := 0
		for _, e := range m.Errors {
			if e != "" {
				nerr++
			}
		}
		fmt.Printf("%s\t%d\t%d\t%d\t%.1f\t%.1f\t%d\n",
			m.Op, m.Nodes, m.PPN, m.Procs(), a.Stonewall, a.WallClock, nerr)
	}
	if !withCharts {
		return
	}
	for _, op := range set.Ops() {
		pts := set.ScaleSeries(op)
		if len(pts) > 1 {
			fmt.Println(charts.VsProcesses([]charts.LabeledSeries{{Label: op, Points: pts}}, 68, 10))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmetabench:", err)
	os.Exit(1)
}
