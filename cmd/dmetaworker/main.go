// Command dmetaworker is the per-node worker daemon for distributed real
// benchmark runs: it executes benchmark phases on the local file system
// under the control of a dmetabench master (-mode master).
//
//	dmetaworker -listen :7946
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"dmetabench/internal/realrun"
)

func main() {
	listen := flag.String("listen", ":7946", "TCP listen address")
	flag.Parse()

	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmetaworker:", err)
		os.Exit(1)
	}
	fmt.Printf("dmetaworker %s listening on %s\n", host, l.Addr())
	if err := realrun.Serve(l, host); err != nil {
		fmt.Fprintln(os.Stderr, "dmetaworker:", err)
		os.Exit(1)
	}
}
