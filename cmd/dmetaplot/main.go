// Command dmetaplot renders charts from result directories written by
// dmetabench, replacing the compare.py / compare-process.py /
// compare-node.py scripts of §3.4.2.
//
//	dmetaplot -type time -dir /tmp/run1 -op MakeFiles -nodes 4 -procs 4
//	dmetaplot -type procs dir1:MakeFiles:NFS dir2:MakeFiles:Lustre
//	dmetaplot -type nodes -ppn 1 dir1:MakeFiles:NFS dir2:MakeFiles:Lustre
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmetabench/internal/charts"
	"dmetabench/internal/results"
)

func main() {
	var (
		chartType = flag.String("type", "time", "time | procs | nodes")
		dir       = flag.String("dir", "", "result directory (time chart)")
		op        = flag.String("op", "MakeFiles", "operation (time chart)")
		nodes     = flag.Int("nodes", 1, "node count (time chart)")
		ppn       = flag.Int("ppn", 1, "processes per node")
		svgOut    = flag.String("svg", "", "write SVG to this file instead of ASCII to stdout")
		width     = flag.Int("width", 72, "chart width")
		height    = flag.Int("height", 10, "chart height (per panel)")
	)
	flag.Parse()

	switch *chartType {
	case "time":
		if *dir == "" {
			fatal(fmt.Errorf("-type time requires -dir"))
		}
		set, err := results.Load(*dir)
		if err != nil {
			fatal(err)
		}
		m := set.Find(*op, *nodes, *ppn)
		if m == nil {
			fatal(fmt.Errorf("no measurement %s %d nodes x %d ppn in %s", *op, *nodes, *ppn, *dir))
		}
		if *svgOut != "" {
			write(*svgOut, charts.TimeChartSVG(m, 700, 260))
			return
		}
		fmt.Print(charts.TimeChart(m, *width, *height))
	case "procs", "nodes":
		var inputs []charts.LabeledSeries
		for _, arg := range flag.Args() {
			parts := strings.SplitN(arg, ":", 3)
			if len(parts) < 2 {
				fatal(fmt.Errorf("argument %q: want dir:op[:label]", arg))
			}
			set, err := results.Load(parts[0])
			if err != nil {
				fatal(err)
			}
			label := parts[0] + ":" + parts[1]
			if len(parts) == 3 {
				label = parts[2]
			}
			inputs = append(inputs, charts.LabeledSeries{Label: label, Points: set.ScaleSeries(parts[1])})
		}
		if len(inputs) == 0 {
			fatal(fmt.Errorf("no inputs; pass dir:op[:label] arguments"))
		}
		if *chartType == "procs" {
			fmt.Print(charts.VsProcesses(inputs, *width, *height))
		} else {
			fmt.Print(charts.VsNodes(inputs, *ppn, *width, *height))
		}
	default:
		fatal(fmt.Errorf("unknown -type %q", *chartType))
	}
}

func write(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmetaplot:", err)
	os.Exit(1)
}
