#!/bin/sh
# bench.sh — snapshot the substrate micro-benchmarks into BENCH_<date>.json
#
# Usage: scripts/bench.sh [output-dir] [-count N] [-substrate-only]
#        (default: repo root, 1, full snapshot)
#
# The snapshot records ns/op, B/op and allocs/op for the simulator
# substrate benchmarks plus the fault-injection (E19–E21), cache-
# coherence (E22–E24) and directory-splitting (E25–E27) experiments,
# and the toolchain and commit that
# produced it, so future PRs have a perf trajectory to compare against
# (see DESIGN.md, "Performance-regression workflow"). The experiment
# entries record the real-time cost of full experiment runs plus their
# summary metrics (hit rates, stale-read windows) as extra columns; they
# are in the snapshot for the trajectory only — the bench gate never
# compares them (failover timelines are intentionally non-steady-state),
# so it passes -substrate-only to skip them entirely. With -count N
# every benchmark runs N times; the JSON stores the per-benchmark mean
# and the raw `go test` output is written alongside as BENCH_<date>.txt
# for benchstat.
set -eu

cd "$(dirname "$0")/.."

outdir="."
count=1
substrate='BenchmarkSimulatedCreate$|BenchmarkShardedCreate$|BenchmarkCachedGetattr$|BenchmarkSplitCreate$|BenchmarkNamespaceCreate$|BenchmarkRunnerMeasurement$'
failover='BenchmarkE19Failover$|BenchmarkE20ReplicationOverhead$|BenchmarkE21RecoveryScaling$'
coherence='BenchmarkE22LeaseTTL$|BenchmarkE23CacheModes$|BenchmarkE24FailoverCachedLoad$'
split='BenchmarkE25SplitScaling$|BenchmarkE26SplitStorm$|BenchmarkE27SplitRouting$'
pattern="$substrate|$failover|$coherence|$split"
while [ $# -gt 0 ]; do
	case "$1" in
	-count)
		count="$2"
		shift 2
		;;
	-substrate-only)
		pattern="$substrate"
		shift
		;;
	*)
		outdir="$1"
		shift
		;;
	esac
done

mkdir -p "$outdir"
out="$outdir/BENCH_$(date +%Y-%m-%d).json"

raw=$(go test -run '^$' -bench "$pattern" \
	-benchmem -benchtime=1s -count="$count" .)

if [ "$count" -gt 1 ]; then
	printf '%s\n' "$raw" > "$outdir/BENCH_$(date +%Y-%m-%d).txt"
fi

goversion=$(go version | sed 's/^go version //')
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

printf '%s\n' "$raw" | awk -v host="$(uname -sm)" -v gover="$goversion" \
	-v commit="$commit" -v count="$count" '
BEGIN {
	print "{"
	printf "  \"host\": \"%s\",\n", host
	printf "  \"go\": \"%s\",\n", gover
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"count\": %d,\n  \"benchmarks\": {\n", count
	n = 0
}
/^Benchmark/ {
	# Locate values by their unit label: experiment benchmarks insert
	# extra ReportMetric columns between ns/op and B/op.
	name = $1; sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns[name] += $(i - 1)
		else if ($i == "B/op") bytes[name] += $(i - 1)
		else if ($i == "allocs/op") allocs[name] += $(i - 1)
	}
	runs[name]++
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	for (i = 0; i < n; i++) {
		name = order[i]
		if (i) printf ",\n"
		printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}", \
			name, ns[name] / runs[name], bytes[name] / runs[name], allocs[name] / runs[name]
	}
	printf "\n  }\n}\n"
}
' > "$out"

echo "wrote $out"
cat "$out"
