#!/bin/sh
# bench.sh — snapshot the substrate micro-benchmarks into BENCH_<date>.json
#
# Usage: scripts/bench.sh [output-dir]   (default: repo root)
#
# The snapshot records ns/op, B/op and allocs/op for the three simulator
# substrate benchmarks so future PRs have a perf trajectory to compare
# against (see DESIGN.md, "Performance-regression workflow").
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-.}"
out="$outdir/BENCH_$(date +%Y-%m-%d).json"

raw=$(go test -run '^$' \
	-bench 'BenchmarkSimulatedCreate$|BenchmarkNamespaceCreate$|BenchmarkRunnerMeasurement$' \
	-benchmem -benchtime=1s -count=1 .)

echo "$raw" | awk -v host="$(uname -sm)" '
BEGIN { print "{"; printf "  \"host\": \"%s\",\n  \"benchmarks\": {\n", host; n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, $3, $5, $7
}
END { printf "\n  }\n}\n" }
' > "$out"

echo "wrote $out"
cat "$out"
