#!/bin/sh
# bench.sh — snapshot the substrate micro-benchmarks into BENCH_<date>.json
#
# Usage: scripts/bench.sh [output-dir] [-count N] [-substrate-only]
#        (default: repo root, 1, full snapshot)
#
# A full snapshot also times the experiment suite end to end, serial
# (-j 1) and parallel (-j nproc), and records both as suite_serial_s /
# suite_parallel_s so the perf trajectory captures suite wall-clock,
# not just ns/op. -substrate-only skips the suite timing (the bench
# gate adds its own timing line instead).
#
# The snapshot records ns/op, B/op and allocs/op for the simulator
# substrate benchmarks plus the fault-injection (E19–E21), cache-
# coherence (E22–E24), directory-splitting (E25–E27), storage-backend
# (E28–E30) and long-horizon aggregate-scale (E31–E33, at a reduced
# -period) experiments, and the toolchain and commit that
# produced it, so future PRs have a perf trajectory to compare against
# (see DESIGN.md, "Performance-regression workflow"). The experiment
# entries record the real-time cost of full experiment runs plus their
# summary metrics (hit rates, stale-read windows) as extra columns; they
# are in the snapshot for the trajectory only — the bench gate never
# compares them (failover timelines are intentionally non-steady-state),
# so it passes -substrate-only to skip them entirely. With -count N
# every benchmark runs N times; the JSON stores the per-benchmark mean
# and the raw `go test` output is written alongside as BENCH_<date>.txt
# for benchstat.
set -eu

cd "$(dirname "$0")/.."

outdir="."
count=1
suite=1
substrate='BenchmarkSimulatedCreate$|BenchmarkShardedCreate$|BenchmarkDomainCreate$|BenchmarkNFSDomainCreate$|BenchmarkCachedGetattr$|BenchmarkSplitCreate$|BenchmarkBackendCreate$|BenchmarkAggregateInject$|BenchmarkNamespaceCreate$|BenchmarkRunnerMeasurement$'
failover='BenchmarkE19Failover$|BenchmarkE20ReplicationOverhead$|BenchmarkE21RecoveryScaling$'
coherence='BenchmarkE22LeaseTTL$|BenchmarkE23CacheModes$|BenchmarkE24FailoverCachedLoad$'
split='BenchmarkE25SplitScaling$|BenchmarkE26SplitStorm$|BenchmarkE27SplitRouting$'
backend='BenchmarkE28BackendProfile$|BenchmarkE29CompactionTimeline$|BenchmarkE30GroupCommit$'
# The long-horizon experiments (interval-series harness) run at a
# reduced -period inside their benchmarks; their row metrics carry
# spaces and slashes, which the unit-label column scan below tolerates.
scale='BenchmarkE31AggregateDay$|BenchmarkE32ForegroundTail$|BenchmarkE33CapacityPressure$'
# The service-runtime experiments (E34-E36); E35 runs at a reduced
# -period inside its benchmark like the E31-E33 group.
runtime='BenchmarkE34DomainedServers$|BenchmarkE35FilerAtScale$|BenchmarkE36AdaptiveLookahead$'
pattern="$substrate|$failover|$coherence|$split|$backend|$scale|$runtime"
while [ $# -gt 0 ]; do
	case "$1" in
	-count)
		count="$2"
		shift 2
		;;
	-substrate-only)
		pattern="$substrate"
		suite=0
		shift
		;;
	*)
		outdir="$1"
		shift
		;;
	esac
done

mkdir -p "$outdir"
out="$outdir/BENCH_$(date +%Y-%m-%d).json"

raw=$(go test -run '^$' -bench "$pattern" \
	-benchmem -benchtime=1s -count="$count" .)

if [ "$count" -gt 1 ]; then
	printf '%s\n' "$raw" > "$outdir/BENCH_$(date +%Y-%m-%d).txt"
fi

# Suite wall-clock, serial vs parallel. The experiments binary prints
# "total: <secs>s (<n> workers)"; build once so compile time is not
# measured into the first run.
suite_serial=""
suite_parallel=""
suite_workers=""
if [ "$suite" -eq 1 ]; then
	suite_workers=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
	bin="$outdir/.experiments-bench"
	go build -o "$bin" ./cmd/experiments
	suite_serial=$("$bin" -j 1 | awk '/^total:/ { sub(/s$/, "", $2); print $2 }')
	suite_parallel=$("$bin" -j "$suite_workers" | awk '/^total:/ { sub(/s$/, "", $2); print $2 }')
	rm -f "$bin"
fi

goversion=$(go version | sed 's/^go version //')
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

# Host fingerprint: CPU model and core count. ns/op comparisons between
# snapshots taken on different hardware are advisory at best, so the
# bench gate warns loudly when the fingerprints of baseline and
# candidate differ.
cpu_model=$(awk -F': *' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)
if [ -z "$cpu_model" ]; then
	cpu_model=$(sysctl -n machdep.cpu.brand_string 2>/dev/null || echo unknown)
fi
cpu_cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

printf '%s\n' "$raw" | awk -v host="$(uname -sm)" -v gover="$goversion" \
	-v commit="$commit" -v count="$count" \
	-v cpum="$cpu_model" -v cpuc="$cpu_cores" \
	-v ss="$suite_serial" -v sp="$suite_parallel" -v sw="$suite_workers" '
BEGIN {
	print "{"
	printf "  \"host\": \"%s\",\n", host
	printf "  \"cpu_model\": \"%s\",\n", cpum
	printf "  \"cpu_cores\": %s,\n", cpuc
	printf "  \"go\": \"%s\",\n", gover
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"count\": %d,\n", count
	if (ss != "" && sp != "") {
		printf "  \"suite_serial_s\": %s,\n", ss
		printf "  \"suite_parallel_s\": %s,\n", sp
		printf "  \"suite_workers\": %s,\n", sw
	}
	printf "  \"benchmarks\": {\n"
	n = 0
}
# Result lines only: "BenchmarkX-8  <iters>  <value> <unit> ...". The
# iteration-count guard skips headers and failure lines that happen to
# start with "Benchmark".
/^Benchmark/ && NF >= 4 && $2 ~ /^[0-9]+$/ {
	# Locate values by their unit label: experiment benchmarks insert
	# extra ReportMetric columns between ns/op and B/op, and B/op and
	# allocs/op are absent entirely without -benchmem. Only numeric
	# values count, so a malformed column cannot corrupt the sums.
	name = $1; sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($(i - 1) !~ /^[0-9.]+(e[+-]?[0-9]+)?$/) continue
		if ($i == "ns/op") { ns[name] += $(i - 1); nsruns[name]++ }
		else if ($i == "B/op") { bytes[name] += $(i - 1); bruns[name]++ }
		else if ($i == "allocs/op") { allocs[name] += $(i - 1); aruns[name]++ }
	}
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	first = 1
	for (i = 0; i < n; i++) {
		name = order[i]
		if (nsruns[name] == 0) continue # never a valid ns/op column
		if (!first) printf ",\n"
		first = 0
		printf "    \"%s\": {\"ns_per_op\": %.0f", name, ns[name] / nsruns[name]
		if (bruns[name] > 0) printf ", \"bytes_per_op\": %.0f", bytes[name] / bruns[name]
		if (aruns[name] > 0) printf ", \"allocs_per_op\": %.1f", allocs[name] / aruns[name]
		printf "}"
	}
	printf "\n  }\n}\n"
}
' > "$out"

echo "wrote $out"
cat "$out"
