#!/bin/sh
# bench_gate.sh — benchmark regression gate for CI.
#
# Runs the substrate benchmarks into a fresh snapshot (bench-out/ by
# default), compares BenchmarkSimulatedCreate ns/op against the newest
# committed BENCH_*.json in the repo root, and
#
#   - fails (exit 1) on a regression worse than 2x,
#   - warns on any regression above 15%,
#   - passes otherwise.
#
# Usage: scripts/bench_gate.sh [output-dir]
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-bench-out}"
mkdir -p "$outdir"

baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [ -z "$baseline" ]; then
	echo "bench_gate: no committed BENCH_*.json baseline found" >&2
	exit 1
fi

# Three samples per benchmark: one 1s sample on a shared CI runner is
# too noisy for a hard gate; the snapshot records the mean. Substrate
# benchmarks only — the gate never compares the failover experiments,
# so it does not pay for running them.
scripts/bench.sh "$outdir" -count 3 -substrate-only
fresh=$(ls "$outdir"/BENCH_*.json | sort | tail -1)

extract() {
	# Pull ns_per_op of BenchmarkSimulatedCreate out of a snapshot; both
	# the old (three-field) and new (with go/commit) formats keep one
	# benchmark per line.
	awk '/"BenchmarkSimulatedCreate"/ {
		if (match($0, /"ns_per_op": *[0-9.]+/)) {
			v = substr($0, RSTART, RLENGTH); sub(/.*: */, "", v); print v; exit
		}
	}' "$1"
}

base_ns=$(extract "$baseline")
new_ns=$(extract "$fresh")
if [ -z "$base_ns" ] || [ -z "$new_ns" ]; then
	echo "bench_gate: BenchmarkSimulatedCreate missing from $baseline or $fresh" >&2
	exit 1
fi

echo "bench_gate: BenchmarkSimulatedCreate $base_ns ns/op ($baseline) -> $new_ns ns/op"
awk -v base="$base_ns" -v new="$new_ns" 'BEGIN {
	ratio = new / base
	printf "bench_gate: ratio %.2fx\n", ratio
	if (ratio > 2.0) {
		printf "bench_gate: FAIL — BenchmarkSimulatedCreate regressed more than 2x\n"
		exit 1
	}
	if (ratio > 1.15) {
		printf "bench_gate: WARNING — BenchmarkSimulatedCreate regressed %.0f%%\n", (ratio - 1) * 100
	}
	exit 0
}'
