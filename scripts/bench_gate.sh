#!/bin/sh
# bench_gate.sh — benchmark regression gate for CI.
#
# Runs the substrate benchmarks into a fresh snapshot (bench-out/ by
# default), compares BenchmarkSimulatedCreate, BenchmarkCachedGetattr,
# BenchmarkSplitCreate, BenchmarkBackendCreate, BenchmarkDomainCreate
# and BenchmarkAggregateInject ns/op against the newest committed
# BENCH_*.json in the repo root, and for each gated benchmark
#
#   - fails (exit 1) on a regression worse than 2x,
#   - warns on any regression above 15%,
#   - passes otherwise.
#
# BenchmarkAggregateInject additionally carries an absolute guard: its
# steady state must report 0 allocs/op.
#
# A gated benchmark missing from the committed baseline is skipped with
# a notice (the first snapshot that includes it becomes its baseline).
#
# Usage: scripts/bench_gate.sh [output-dir]
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-bench-out}"
mkdir -p "$outdir"

baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [ -z "$baseline" ]; then
	echo "bench_gate: no committed BENCH_*.json baseline found" >&2
	exit 1
fi

# Three samples per benchmark: one 1s sample on a shared CI runner is
# too noisy for a hard gate; the snapshot records the mean. Substrate
# benchmarks only — the gate never compares the failover or coherence
# experiments, so it does not pay for running them.
scripts/bench.sh "$outdir" -count 3 -substrate-only
fresh=$(ls "$outdir"/BENCH_*.json | sort | tail -1)

# Suite wall-clock timing line: one parallel run of the whole suite, so
# the perf trajectory in the CI artifact captures end-to-end cost, not
# just ns/op. Informational only — never gated (shared runners are too
# noisy for a hard wall-clock bound).
workers=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
go build -o "$outdir/.experiments-gate" ./cmd/experiments
suite_s=$("$outdir/.experiments-gate" -j "$workers" | awk '/^total:/ { sub(/s$/, "", $2); print $2 }')
rm -f "$outdir/.experiments-gate"
echo "bench_gate: suite wall-clock ${suite_s}s (-j $workers)" | tee "$outdir/suite_timing.txt"

extract() {
	# Pull one numeric field ($3, e.g. ns_per_op) of one benchmark out of
	# a snapshot; every snapshot format keeps one benchmark per line. The
	# quoted-key-plus-colon match is exact: a benchmark whose name is a
	# prefix of another's never matches the longer entry.
	awk -v bench="\"$2\":" -v field="\"$3\"" 'index($0, bench) {
		if (match($0, field ": *[0-9.]+")) {
			v = substr($0, RSTART, RLENGTH); sub(/.*: */, "", v); print v; exit
		}
	}' "$1"
}

status=0
for bench in BenchmarkSimulatedCreate BenchmarkCachedGetattr BenchmarkSplitCreate BenchmarkBackendCreate BenchmarkDomainCreate BenchmarkAggregateInject; do
	base_ns=$(extract "$baseline" "$bench" ns_per_op)
	new_ns=$(extract "$fresh" "$bench" ns_per_op)
	if [ -z "$new_ns" ]; then
		echo "bench_gate: $bench missing from $fresh" >&2
		status=1
		continue
	fi
	if [ -z "$base_ns" ]; then
		echo "bench_gate: $bench has no baseline in $baseline yet; skipping"
		continue
	fi
	echo "bench_gate: $bench $base_ns ns/op ($baseline) -> $new_ns ns/op"
	awk -v base="$base_ns" -v new="$new_ns" -v bench="$bench" 'BEGIN {
		ratio = new / base
		printf "bench_gate: %s ratio %.2fx\n", bench, ratio
		if (ratio > 2.0) {
			printf "bench_gate: FAIL — %s regressed more than 2x\n", bench
			exit 1
		}
		if (ratio > 1.15) {
			printf "bench_gate: WARNING — %s regressed %.0f%%\n", bench, (ratio - 1) * 100
		}
		exit 0
	}' || status=1
done

# Allocation guard: the aggregate-injection steady state must stay
# allocation-free (its per-op cost is the whole point of the model).
# This is an absolute bound, not a baseline comparison, so it holds
# from the first snapshot on.
inject_allocs=$(extract "$fresh" BenchmarkAggregateInject allocs_per_op)
if [ -z "$inject_allocs" ]; then
	echo "bench_gate: BenchmarkAggregateInject allocs/op missing from $fresh" >&2
	status=1
elif awk -v a="$inject_allocs" 'BEGIN { exit !(a > 0) }'; then
	echo "bench_gate: FAIL — BenchmarkAggregateInject allocates ($inject_allocs allocs/op, want 0)" >&2
	status=1
else
	echo "bench_gate: BenchmarkAggregateInject allocs/op 0 — ok"
fi
exit $status
