#!/bin/sh
# bench_gate.sh — benchmark regression gate for CI.
#
# Runs the substrate benchmarks into a fresh snapshot (bench-out/ by
# default), compares BenchmarkSimulatedCreate, BenchmarkCachedGetattr,
# BenchmarkSplitCreate, BenchmarkBackendCreate, BenchmarkDomainCreate,
# BenchmarkNFSDomainCreate and BenchmarkAggregateInject ns/op against
# the newest committed BENCH_*.json in the repo root, and for each
# gated benchmark
#
#   - fails (exit 1) on a regression worse than 2x,
#   - warns on any regression above 15%,
#   - passes otherwise.
#
# Absolute allocation guards ride along: BenchmarkAggregateInject's
# steady state must report 0 allocs/op, and the hot create paths carry
# allocs/op ceilings (alloc creep fails the build before it becomes a
# ns/op regression). When the host fingerprint (CPU model/cores,
# recorded by bench.sh) differs between baseline and candidate, the
# gate prints a loud warning — cross-hardware ratios are advisory.
#
# A gated benchmark missing from the committed baseline is skipped with
# a notice (the first snapshot that includes it becomes its baseline).
#
# Usage: scripts/bench_gate.sh [output-dir]
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-bench-out}"
mkdir -p "$outdir"

baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [ -z "$baseline" ]; then
	echo "bench_gate: no committed BENCH_*.json baseline found" >&2
	exit 1
fi

# Three samples per benchmark: one 1s sample on a shared CI runner is
# too noisy for a hard gate; the snapshot records the mean. Substrate
# benchmarks only — the gate never compares the failover or coherence
# experiments, so it does not pay for running them.
scripts/bench.sh "$outdir" -count 3 -substrate-only
fresh=$(ls "$outdir"/BENCH_*.json | sort | tail -1)

# Suite wall-clock timing line: one parallel run of the whole suite, so
# the perf trajectory in the CI artifact captures end-to-end cost, not
# just ns/op. Informational only — never gated (shared runners are too
# noisy for a hard wall-clock bound).
workers=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
go build -o "$outdir/.experiments-gate" ./cmd/experiments
suite_s=$("$outdir/.experiments-gate" -j "$workers" | awk '/^total:/ { sub(/s$/, "", $2); print $2 }')
rm -f "$outdir/.experiments-gate"
echo "bench_gate: suite wall-clock ${suite_s}s (-j $workers)" | tee "$outdir/suite_timing.txt"

extract() {
	# Pull one numeric field ($3, e.g. ns_per_op) of one benchmark out of
	# a snapshot; every snapshot format keeps one benchmark per line. The
	# quoted-key-plus-colon match is exact: a benchmark whose name is a
	# prefix of another's never matches the longer entry.
	awk -v bench="\"$2\":" -v field="\"$3\"" 'index($0, bench) {
		if (match($0, field ": *[0-9.]+")) {
			v = substr($0, RSTART, RLENGTH); sub(/.*: */, "", v); print v; exit
		}
	}' "$1"
}

# Host-fingerprint check: a ratio between snapshots from different
# hardware is advisory at best, so mismatches are flagged loudly (the
# ns/op gates still run — a >2x regression is meaningful even across
# machines, but read warnings in that light).
fingerprint() {
	awk '
	/"cpu_model":/ { split($0, q, "\""); m = q[4] }
	/"cpu_cores":/ { if (match($0, /[0-9]+/)) c = substr($0, RSTART, RLENGTH) }
	END {
		if (m == "" && c == "") print "unrecorded"
		else printf "%s, %s cores\n", m, c
	}' "$1"
}
base_fp=$(fingerprint "$baseline")
new_fp=$(fingerprint "$fresh")
if [ "$base_fp" != "$new_fp" ]; then
	echo "bench_gate: =================================================================="
	echo "bench_gate: WARNING — host fingerprint differs from the committed baseline:"
	echo "bench_gate:   baseline ($baseline): $base_fp"
	echo "bench_gate:   candidate: $new_fp"
	echo "bench_gate: ns/op ratios across different hardware are advisory only."
	echo "bench_gate: =================================================================="
fi

status=0
for bench in BenchmarkSimulatedCreate BenchmarkCachedGetattr BenchmarkSplitCreate BenchmarkBackendCreate BenchmarkDomainCreate BenchmarkNFSDomainCreate BenchmarkAggregateInject; do
	base_ns=$(extract "$baseline" "$bench" ns_per_op)
	new_ns=$(extract "$fresh" "$bench" ns_per_op)
	if [ -z "$new_ns" ]; then
		echo "bench_gate: $bench missing from $fresh" >&2
		status=1
		continue
	fi
	if [ -z "$base_ns" ]; then
		echo "bench_gate: $bench has no baseline in $baseline yet; skipping"
		continue
	fi
	echo "bench_gate: $bench $base_ns ns/op ($baseline) -> $new_ns ns/op"
	awk -v base="$base_ns" -v new="$new_ns" -v bench="$bench" 'BEGIN {
		ratio = new / base
		printf "bench_gate: %s ratio %.2fx\n", bench, ratio
		if (ratio > 2.0) {
			printf "bench_gate: FAIL — %s regressed more than 2x\n", bench
			exit 1
		}
		if (ratio > 1.15) {
			printf "bench_gate: WARNING — %s regressed %.0f%%\n", bench, (ratio - 1) * 100
		}
		exit 0
	}' || status=1
done

# Allocation guard: the aggregate-injection steady state must stay
# allocation-free (its per-op cost is the whole point of the model).
# This is an absolute bound, not a baseline comparison, so it holds
# from the first snapshot on.
inject_allocs=$(extract "$fresh" BenchmarkAggregateInject allocs_per_op)
if [ -z "$inject_allocs" ]; then
	echo "bench_gate: BenchmarkAggregateInject allocs/op missing from $fresh" >&2
	status=1
elif awk -v a="$inject_allocs" 'BEGIN { exit !(a > 0) }'; then
	echo "bench_gate: FAIL — BenchmarkAggregateInject allocates ($inject_allocs allocs/op, want 0)" >&2
	status=1
else
	echo "bench_gate: BenchmarkAggregateInject allocs/op 0 — ok"
fi

# Allocation-creep guards: absolute allocs/op ceilings on the hot
# simulated-create paths, sized with headroom above the measured
# steady state (ShardedCreate 7, DomainCreate 17, NFSDomainCreate 13).
# Closure escapes on these paths creep in silently with refactors;
# the ceiling turns the creep into a red build instead of a slow one.
for guard in "BenchmarkShardedCreate 8" "BenchmarkDomainCreate 25" "BenchmarkNFSDomainCreate 20"; do
	bench=${guard% *}
	limit=${guard#* }
	a=$(extract "$fresh" "$bench" allocs_per_op)
	if [ -z "$a" ]; then
		echo "bench_gate: $bench allocs/op missing from $fresh" >&2
		status=1
	elif awk -v a="$a" -v lim="$limit" 'BEGIN { exit !(a > lim) }'; then
		echo "bench_gate: FAIL — $bench allocates $a allocs/op (ceiling $limit)" >&2
		status=1
	else
		echo "bench_gate: $bench allocs/op $a <= $limit — ok"
	fi
done
exit $status
