// coherent_cache walks through the lease-based client cache coherence
// of the sharded MDS model (internal/shard coherence.go): a batched
// readdirplus scan warming a client cache in one RPC per directory, a
// revocation callback keeping a cached attribute fresh across a remote
// write (where the NFS-style timeout cache serves the stale value), and
// the crash-time lease invalidation that keeps failover from leaking
// stale reads (experiments E22–E24 measure all three at load).
//
//	go run ./examples/coherent_cache
package main

import (
	"fmt"
	"log"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
	"dmetabench/internal/workload"
)

// env builds a kernel, a two-node cluster and a 4-shard FS.
func env(cfg shard.Config) (*sim.Kernel, *cluster.Cluster, *shard.FS) {
	k := sim.New(11)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	return k, cl, shard.New(k, "meta", cfg)
}

// leaseCfg returns a lease-coherent 4-shard configuration.
func leaseCfg() shard.Config {
	cfg := shard.DefaultConfig(4)
	cfg.CacheMode = shard.CacheLease
	cfg.TrackStaleness = true
	return cfg
}

// buildTree creates dirs directories of files files each under /proj.
func buildTree(c fs.Client, dirs, files int) error {
	if err := c.Mkdir("/proj"); err != nil {
		return err
	}
	for d := 0; d < dirs; d++ {
		dir := fmt.Sprintf("/proj/d%d", d)
		if err := c.Mkdir(dir); err != nil {
			return err
		}
		for i := 0; i < files; i++ {
			if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanDemo shows the readdirplus prefetch: a cold "ls -lR" costs one
// RPC per directory instead of one per entry, and leaves every entry
// leased so a re-scan is nearly free.
func scanDemo() {
	k, cl, f := env(leaseCfg())
	k.Spawn("scan", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := buildTree(c, 4, 25); err != nil {
			log.Fatal(err)
		}
		c.DropCaches()
		rpcs := f.RPCCount()
		cold, err := workload.Scan(c, "/proj", p.Now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cold scan: %d dirs, %d entries, %d RPCs, %v (batched=%v)\n",
			cold.Dirs, cold.Entries, f.RPCCount()-rpcs, cold.Elapsed, cold.Batched)
		// Every entry came back leased: a follow-up stat of the whole
		// tree is served from the client cache without a single RPC.
		rpcs = f.RPCCount()
		for d := 0; d < 4; d++ {
			for i := 0; i < 25; i++ {
				if _, err := c.Stat(fmt.Sprintf("/proj/d%d/f%d", d, i)); err != nil {
					log.Fatal(err)
				}
			}
		}
		hits, _, _, _ := f.CacheStats()
		fmt.Printf("  stat of all 100 entries after the scan: %d RPCs — %d lease hits, %d stale reads\n",
			f.RPCCount()-rpcs, hits, f.StaleReads)
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}

// coherenceDemo runs the same remote-write sequence against the lease
// cache and the TTL cache: node 0 caches a file's attributes, node 1
// grows the file, node 0 stats it again.
func coherenceDemo(cfg shard.Config, label string) {
	k, cl, f := env(cfg)
	k.Spawn("demo", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir("/d"); err != nil {
			log.Fatal(err)
		}
		if err := a.Create("/d/f"); err != nil {
			log.Fatal(err)
		}
		if _, err := a.Stat("/d/f"); err != nil {
			log.Fatal(err)
		}
		h, err := b.Open("/d/f")
		if err != nil {
			log.Fatal(err)
		}
		b.Write(h, 4096)
		b.Close(h)
		at, err := a.Stat("/d/f")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: node 0 sees size %d after node 1 wrote 4096"+
			" (revocations %d, stale reads %d)\n",
			label, at.Size, f.Revocations, f.StaleReads)
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}

// failoverDemo crashes the shard that granted node 0's lease, lets the
// promoted backup serve node 1's write, and shows what node 0 reads
// with and without crash-time lease invalidation.
func failoverDemo(invalidate bool) {
	cfg := leaseCfg()
	cfg.NumShards = 2
	cfg.Replicate = true
	cfg.CrashInvalidate = invalidate
	cfg.TakeoverDetect = 50 * time.Millisecond
	cfg.LeaseTTL = time.Hour
	k := sim.New(11)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := shard.New(k, "meta", cfg)
	dir := ""
	for i := 0; i < 64 && dir == ""; i++ {
		if cand := fmt.Sprintf("/d%d", i); f.ShardOfDir(cand) == 0 {
			dir = cand
		}
	}
	k.Spawn("fo", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir(dir); err != nil {
			log.Fatal(err)
		}
		if err := a.Create(dir + "/f"); err != nil {
			log.Fatal(err)
		}
		if _, err := a.Stat(dir + "/f"); err != nil {
			log.Fatal(err)
		}
		f.Crash(p, 0)
		p.Sleep(200 * time.Millisecond)
		h, err := b.Open(dir + "/f")
		if err != nil {
			log.Fatal(err)
		}
		b.Write(h, 512)
		b.Close(h)
		at, err := a.Stat(dir + "/f")
		if err != nil {
			log.Fatal(err)
		}
		to := f.Takeovers[0]
		fmt.Printf("  invalidate=%-5v: takeover after %v; node 0 then reads size %d"+
			" (stale reads %d)\n", invalidate, to.Total(), at.Size, f.StaleReads)
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("1. readdirplus prefetch: one RPC per directory fills the lease cache")
	scanDemo()

	fmt.Println("\n2. a remote write: revocation callback vs. NFS-style attribute timeout")
	coherenceDemo(leaseCfg(), "lease cache  ")
	ttl := shard.DefaultConfig(4)
	ttl.TrackStaleness = true
	coherenceDemo(ttl, "ttl cache    ")

	fmt.Println("\n3. failover under cached load: crash-time lease invalidation")
	failoverDemo(true)
	failoverDemo(false)
	fmt.Println("\nE22-E24 (go run ./cmd/experiments -run E22,E23,E24) measure all three at load.")
}
