// nfs_vs_lustre reproduces the headline comparison of §4.3 interactively:
// file creation throughput of an NFS filer against a Lustre metadata
// server over a growing number of client nodes, plus the large-directory
// behaviour of both.
//
//	go run ./examples/nfs_vs_lustre
package main

import (
	"fmt"
	"log"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

func runOn(name string, mk func(k *sim.Kernel) core.FileSystem) *results.Set {
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(12))
	r := &core.Runner{
		Cluster:      cl,
		FS:           mk(k),
		Params:       core.Params{ProblemSize: 1500, WorkDir: "/bench", Label: name},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{core.MakeFiles{}, core.DeleteFiles{}},
		Filter: func(c core.Combo) bool {
			return c.Nodes == 1 || c.Nodes == 2 || c.Nodes == 4 || c.Nodes == 8 || c.Nodes == 12
		},
	}
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	return set
}

func main() {
	nfsSet := runOn("nfs", func(k *sim.Kernel) core.FileSystem {
		return nfs.New(k, "home", nfs.DefaultConfig())
	})
	lusSet := runOn("lustre", func(k *sim.Kernel) core.FileSystem {
		return lustre.New(k, "scratch", lustre.DefaultConfig())
	})

	fmt.Println("file creation, 1 process per node:")
	fmt.Println("nodes      NFS ops/s   Lustre ops/s")
	for _, n := range []int{1, 2, 4, 8, 12} {
		a := nfsSet.Find("MakeFiles", n, 1).Averages()
		b := lusSet.Find("MakeFiles", n, 1).Averages()
		fmt.Printf("%5d %12.0f %14.0f\n", n, a.Stonewall, b.Stonewall)
	}
	fmt.Println()
	fmt.Println(charts.VsNodes([]charts.LabeledSeries{
		{Label: "MakeFiles on NFS filer", Points: nfsSet.ScaleSeries("MakeFiles")},
		{Label: "MakeFiles on Lustre MDS", Points: lusSet.ScaleSeries("MakeFiles")},
	}, 1, 68, 12))
	fmt.Println(charts.VsNodes([]charts.LabeledSeries{
		{Label: "DeleteFiles on NFS filer", Points: nfsSet.ScaleSeries("DeleteFiles")},
		{Label: "DeleteFiles on Lustre MDS", Points: lusSet.ScaleSeries("DeleteFiles")},
	}, 1, 68, 12))
	fmt.Println("Note how both servers saturate and how the filer keeps a constant")
	fmt.Println("factor over the MDS for small-file creation — the §4.3 result.")
}
