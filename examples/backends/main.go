// backends walks through the pluggable metadata storage backends: the
// same create/stat workload priced by the in-memory journal (the
// default every experiment before E28 ran on), an LSM-KV store (cheap
// amplified appends, bloom-filtered negative lookups, periodic
// compaction stalls) and a B-tree/SQL store (page-depth reads, hot-row
// lock waits, cheap clustered scans). A second section opens the
// group-commit window on a replicated service and shows the E30 trade:
// mirror round trips collapse while the commit-ack latency of every
// mutation grows by the window it waits out.
//
//	go run ./examples/backends
package main

import (
	"fmt"
	"log"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// price runs a fixed single-client op mix against a 2-shard service and
// returns average per-op latencies plus the FS for its counters.
func price(kind shard.BackendKind) (create, stat, enoent, readdir time.Duration, fsys *shard.FS) {
	cfg := shard.DefaultConfig(2)
	cfg.Backend = kind
	cfg.CacheMode = shard.CacheNone
	k := sim.New(11)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys = shard.New(k, "meta", cfg)
	k.Spawn("probe", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		if err := c.Mkdir("/d"); err != nil {
			log.Fatal(err)
		}
		const ops = 300
		start := p.Now()
		for i := 0; i < ops; i++ {
			if err := c.Create(fmt.Sprintf("/d/f%d", i)); err != nil {
				log.Fatal(err)
			}
		}
		create = (p.Now() - start) / ops
		start = p.Now()
		for i := 0; i < ops; i++ {
			if _, err := c.Stat(fmt.Sprintf("/d/f%d", i)); err != nil {
				log.Fatal(err)
			}
		}
		stat = (p.Now() - start) / ops
		start = p.Now()
		for i := 0; i < ops; i++ {
			c.Stat(fmt.Sprintf("/d/missing%d", i)) // ENOENT by design
		}
		enoent = (p.Now() - start) / ops
		start = p.Now()
		for i := 0; i < 30; i++ {
			if _, err := c.ReadDir("/d"); err != nil {
				log.Fatal(err)
			}
		}
		readdir = (p.Now() - start) / 30
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return
}

// groupCommit runs a parallel create load on a replicated 4-shard
// service with the given batch window and returns throughput plus the
// replication counters.
func groupCommit(window time.Duration) (rate float64, fsys *shard.FS) {
	cfg := shard.DefaultConfig(4)
	cfg.Replicate = true
	cfg.GroupCommitWindow = window
	k := sim.New(12)
	cl := cluster.New(k, cluster.DefaultConfig(8))
	fsys = shard.New(k, "meta", cfg)
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 400, WorkDir: "/bench"},
		SlotsPerNode: 2,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 2 },
	}
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	m := set.Find("MakeFiles", 8, 2)
	return m.Averages().WallClock, fsys
}

func main() {
	fmt.Println("1. one op mix, three storage backends (single client, 2 shards)")
	fmt.Println("   backend      create     stat   ENOENT  readdir")
	for _, kind := range []shard.BackendKind{
		shard.BackendMemJournal, shard.BackendLSM, shard.BackendBTree,
	} {
		create, stat, enoent, readdir, fsys := price(kind)
		fmt.Printf("   %-10s %6dus %6dus %6dus %6dus",
			kind, create.Microseconds(), stat.Microseconds(),
			enoent.Microseconds(), readdir.Microseconds())
		if n := len(fsys.Compactions); n > 0 {
			fmt.Printf("   (%d compaction pauses)", n)
		}
		fmt.Println()
	}
	fmt.Println("   The LSM bloom filter makes the miss the cheap stat; the B-tree")
	fmt.Println("   pays page descent on writes but scans the directory clustered.")
	fmt.Println()

	fmt.Println("2. group commit on a replicated service (16 writers, 4 shards)")
	fmt.Println("   window   creates/s   mirror RTs   batches")
	for _, w := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		rate, fsys := groupCommit(w)
		fmt.Printf("   %6s   %9.0f   %10d   %7d\n",
			w, rate, fsys.MirrorCount, fsys.GroupCommits)
	}
	fmt.Println("   Mutations inside one window share a flush and one mirror round")
	fmt.Println("   trip per partner — message economy bought with commit latency.")
}
