// giant_dir walks through dynamic giant-directory splitting: it first
// shows the wall — one shared directory pins every create to one shard,
// so adding shards buys nothing — then enables GIGA+-style splitting
// and watches the same workload spread and scale, prices the split
// migrations, demonstrates a stale-bitmap routing bounce, and finally
// pays the fan-out of listing a split directory.
//
//	go run ./examples/giant_dir
package main

import (
	"fmt"
	"log"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// sweep drives 64 processes hammering ONE shared directory (the mdtest
// shared-dir pattern, core.WideDirFiles) against cfg and returns the
// wall-clock create throughput plus the FS for counter readout.
func sweep(seed int64, cfg shard.Config) (float64, *shard.FS) {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(16))
	fsys := shard.New(k, "meta", cfg)
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 250, WorkDir: "/"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{core.WideDirFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 16 && c.PPN == 4 },
	}
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	return set.Find("WideDirFiles", 16, 4).Averages().WallClock, fsys
}

func main() {
	fmt.Println("1. the wall: 64 procs, ONE shared directory, splitting off:")
	fmt.Println("   shards   creates/s")
	for _, n := range []int{1, 2, 4, 8} {
		rate, _ := sweep(100, shard.DefaultConfig(n))
		fmt.Printf("   %6d %11.0f\n", n, rate)
	}
	fmt.Println("   (hash-of-parent placement pins the directory to one shard)")

	fmt.Println()
	fmt.Println("2. the cure: same workload, SplitThreshold 512:")
	fmt.Println("   shards   creates/s   splits   entries moved")
	for _, n := range []int{1, 2, 4, 8} {
		cfg := shard.DefaultConfig(n)
		cfg.SplitThreshold = 512
		rate, fsys := sweep(100, cfg)
		fmt.Printf("   %6d %11.0f %8d %15d\n", n, rate, len(fsys.Splits), fsys.SplitMoved)
	}

	fmt.Println()
	fmt.Println("3. routing on a stale bitmap (4 shards, threshold 64):")
	cfg := shard.DefaultConfig(4)
	cfg.SplitThreshold = 64
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	fsys := shard.New(k, "meta", cfg)
	k.Spawn("demo", func(p *sim.Proc) {
		writer := fsys.NewClient(cl.Nodes[0], p)
		cold := fsys.NewClient(cl.Nodes[1], p)
		if err := writer.Mkdir("/big"); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if err := writer.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("   writer created 400 files; split level %d, %d entries migrated\n",
			fsys.SplitLevel("/big"), fsys.SplitMoved)
		before := fsys.Bounces
		start := p.Now()
		for i := 0; i < 400; i++ {
			if _, err := cold.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("   cold client stat'd 400 files in %v paying %d bounce(s):\n",
			(p.Now() - start).Round(time.Millisecond), fsys.Bounces-before)
		fmt.Println("   the first misroute redirects and refreshes the bitmap;")
		fmt.Println("   every later lookup routes to its partition in one RPC")

		fmt.Println()
		fmt.Println("4. the fan-out price of listing a split directory:")
		start = p.Now()
		ents, err := cold.ReadDir("/big")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   readdir merged %d entries from %d partition slices in %v\n",
			len(ents), 1<<fsys.SplitLevel("/big"), (p.Now() - start).Round(100*time.Microsecond))
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}
