// custom_plugin shows the extendability path of §3.2.4: a user-defined
// benchmark operation (a mail-delivery transaction: create a temporary
// spool file, write the message, fsync, rename into the mailbox — the
// §2.6.3 atomic-rename idiom) plugged into the unchanged DMetabench
// framework and measured on two different simulated file systems.
//
//	go run ./examples/custom_plugin
package main

import (
	"fmt"
	"log"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/fs"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// MailDeliver is a custom Plugin: each operation delivers one "email"
// with the create/write/fsync/rename sequence mail servers rely on for
// durability (§2.6.4).
type MailDeliver struct {
	MessageBytes int64
}

// Name implements core.Plugin.
func (MailDeliver) Name() string { return "MailDeliver" }

// Prepare creates the spool and mailbox directories.
func (m MailDeliver) Prepare(c *core.Ctx) error {
	if err := core.MkdirAll(c.FS, c.Dir+"/tmp"); err != nil {
		return err
	}
	return core.MkdirAll(c.FS, c.Dir+"/new")
}

// DoBench delivers ProblemSize messages.
func (m MailDeliver) DoBench(c *core.Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		tmp := fmt.Sprintf("%s/tmp/%d", c.Dir, i)
		final := fmt.Sprintf("%s/new/%d", c.Dir, i)
		if err := c.FS.Create(tmp); err != nil {
			return err
		}
		h, err := c.FS.Open(tmp)
		if err != nil {
			return err
		}
		if err := c.FS.Write(h, m.MessageBytes); err != nil {
			return err
		}
		if err := c.FS.Fsync(h); err != nil {
			return err
		}
		if err := c.FS.Close(h); err != nil {
			return err
		}
		if err := c.FS.Rename(tmp, final); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the delivered mail.
func (m MailDeliver) Cleanup(c *core.Ctx) error { return core.RemoveAll(c.FS, c.Dir) }

var _ core.Plugin = MailDeliver{}
var _ fs.Client = nil // the plugin only speaks the abstract client API

func run(label string, mk func(k *sim.Kernel) core.FileSystem) *results.Set {
	k := sim.New(99)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	r := &core.Runner{
		Cluster:      cl,
		FS:           mk(k),
		Params:       core.Params{ProblemSize: 400, WorkDir: "/mail", Label: label},
		SlotsPerNode: 2,
		Plugins:      []core.Plugin{MailDeliver{MessageBytes: 4096}},
	}
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	return set
}

func main() {
	nfsSet := run("mail-nfs", func(k *sim.Kernel) core.FileSystem {
		return nfs.New(k, "home", nfs.DefaultConfig())
	})
	lusSet := run("mail-lustre", func(k *sim.Kernel) core.FileSystem {
		return lustre.New(k, "scratch", lustre.DefaultConfig())
	})
	fmt.Println("mail deliveries per second (create+write+fsync+rename):")
	fmt.Println(charts.VsProcesses([]charts.LabeledSeries{
		{Label: "MailDeliver on NFS", Points: nfsSet.ScaleSeries("MailDeliver")},
		{Label: "MailDeliver on Lustre", Points: lusSet.ScaleSeries("MailDeliver")},
	}, 68, 12))
}
