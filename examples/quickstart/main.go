// Quickstart: run DMetabench's MakeFiles and StatFiles operations against
// a simulated NFS filer from a 4-node cluster, then print the summary
// numbers, the scaling chart and the combined time chart for the largest
// configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

func main() {
	// 1. A simulation kernel drives everything deterministically.
	k := sim.New(1)

	// 2. Four 8-core client nodes and one NFS filer.
	cl := cluster.New(k, cluster.DefaultConfig(4))
	filer := nfs.New(k, "home", nfs.DefaultConfig())

	// 3. Configure the benchmark: every process performs 2000 operations
	//    in its own working directory under /bench.
	r := &core.Runner{
		Cluster:      cl,
		FS:           filer,
		Params:       core.Params{ProblemSize: 2000, WorkDir: "/bench", Label: "quickstart"},
		SlotsPerNode: 2, // sweeps 1..4 nodes x 1..2 processes per node
		Plugins:      []core.Plugin{core.MakeFiles{}, core.StatFiles{}},
	}

	// 4. Run. The result set holds one measurement per (op, nodes, ppn).
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("operation            nodes ppn procs  stonewall ops/s")
	for _, m := range set.Measurements {
		a := m.Averages()
		fmt.Printf("%-20s %5d %3d %5d  %15.0f\n", m.Op, m.Nodes, m.PPN, m.Procs(), a.Stonewall)
	}

	// 5. Charts: throughput scaling and the interval-resolved time chart.
	fmt.Println()
	fmt.Println(charts.VsProcesses([]charts.LabeledSeries{
		{Label: "MakeFiles on simulated NFS", Points: set.ScaleSeries("MakeFiles")},
		{Label: "StatFiles on simulated NFS", Points: set.ScaleSeries("StatFiles")},
	}, 68, 10))
	if m := set.Find("MakeFiles", 4, 2); m != nil {
		fmt.Println(charts.TimeChart(m, 68, 8))
	}
}
