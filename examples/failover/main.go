// failover walks through the fault-injection and recovery model: a
// fixed create load runs against a two-shard metadata service while a
// fault plan crashes shard 0 mid-run and restarts it later. Without
// replication the slice goes dark and every client routing to it stalls
// in retry backoff until the restart; with a synchronous backup the
// slice fails over after the detection delay plus journal replay. The
// per-interval timeline shows the dip, the COV spike and the recovery
// ramp (the §3.2.5 methodology applied to a failure).
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/fault"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

const (
	window    = 10 * time.Second
	crashAt   = 3 * time.Second
	restartAt = 7 * time.Second
)

// run executes a timed create load on a 2-shard service (4 nodes x 2
// processes) while the fault plan crashes and restarts shard 0.
func run(replicate bool) (*results.Measurement, *shard.FS) {
	cfg := shard.DefaultConfig(2)
	cfg.Replicate = replicate
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	fsys := shard.New(k, "meta", cfg)
	plan := (&fault.Plan{}).Outage(crashAt, restartAt, 0)
	r := &core.Runner{
		Cluster: cl,
		FS:      fsys,
		Params: core.Params{ProblemSize: 1000, TimeLimit: window,
			WorkDir: "/bench"},
		SlotsPerNode: 2,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 4 && c.PPN == 2 },
		BenchStartHook: func(mp *sim.Proc, _ core.MeasurementInfo) {
			plan.Start(mp, fsys)
		},
	}
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	return set.Find("MakeFiles", 4, 2), fsys
}

// timeline prints per-second throughput and COV.
func timeline(m *results.Measurement) {
	fmt.Println("    t      ops/s    COV")
	for _, row := range m.Summary() {
		if row.T%time.Second != 0 {
			continue
		}
		marker := ""
		switch row.T {
		case crashAt:
			marker = "  <- crash shard 0"
		case restartAt:
			marker = "  <- restart shard 0"
		}
		fmt.Printf("  %4.0fs  %8.0f  %5.2f%s\n",
			row.T.Seconds(), row.Throughput, row.COV, marker)
	}
}

func main() {
	fmt.Printf("create load on 2 shards; crash shard 0 at %v, restart at %v\n\n", crashAt, restartAt)

	fmt.Println("1. no replication: the slice is dark until restart + recovery")
	single, sfs := run(false)
	timeline(single)
	fmt.Printf("   client RPC retries during the outage: %d\n\n", sfs.RetryCount)

	fmt.Println("2. synchronous backup: the peer takes over after detect + replay")
	repl, rfs := run(true)
	timeline(repl)
	for _, to := range rfs.Takeovers {
		fmt.Printf("   takeover: shard %d -> backup %d after %.0fms (detect %.0fms + %d journal entries replayed)\n",
			to.Shard, to.Backup, to.Total().Seconds()*1000,
			to.Detect.Seconds()*1000, to.Entries)
	}
	fmt.Printf("   mirrored mutations: %d, client retries: %d\n",
		rfs.MirrorCount, rfs.RetryCount)
}
