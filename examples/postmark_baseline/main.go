// postmark_baseline runs the Postmark-style baseline (§3.1.4) on three
// substrates — a simulated NFS filer, a simulated Lustre system and the
// real host file system — and contrasts its single compressed result
// number with DMetabench's interval-resolved view of the same workload,
// the methodological point of §3.2.5.
//
//	go run ./examples/postmark_baseline
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/realrun"
	"dmetabench/internal/sim"
	"dmetabench/internal/workload"
)

func simPostmark(name string, mk func(k *sim.Kernel) core.FileSystem) workload.PostmarkStats {
	k := sim.New(11)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := mk(k)
	cfg := workload.DefaultPostmarkConfig()
	var st workload.PostmarkStats
	var err error
	k.Spawn("postmark", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		st, err = workload.Postmark(c, cfg, p.Now)
	})
	if kerr := k.Run(); kerr != nil {
		log.Fatal(kerr)
	}
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	nfsStats := simPostmark("nfs", func(k *sim.Kernel) core.FileSystem {
		return nfs.New(k, "home", nfs.DefaultConfig())
	})
	lusStats := simPostmark("lustre", func(k *sim.Kernel) core.FileSystem {
		return lustre.New(k, "scratch", lustre.DefaultConfig())
	})

	// Real host file system (a temp directory).
	dir, err := os.MkdirTemp("", "postmark")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	realStats, err := workload.Postmark(realrun.NewOSClient(dir),
		workload.DefaultPostmarkConfig(), func() time.Duration { return time.Since(start) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Postmark baseline (single-threaded, one compressed number):")
	fmt.Printf("%-22s %10s %8s %8s %8s\n", "substrate", "tps", "created", "read", "deleted")
	for _, row := range []struct {
		name string
		st   workload.PostmarkStats
	}{
		{"simulated NFS filer", nfsStats},
		{"simulated Lustre", lusStats},
		{"host file system", realStats},
	} {
		fmt.Printf("%-22s %10.0f %8d %8d %8d\n",
			row.name, row.st.TPS, row.st.Created, row.st.Read, row.st.Deleted)
	}
	fmt.Println()
	fmt.Println("The thesis's critique (§3.2.5): this number hides *when* and *why*")
	fmt.Println("performance changed. Run `go run ./examples/quickstart` to see the")
	fmt.Println("interval-resolved view DMetabench keeps instead.")
}
