// sharded_mds walks through the sharded metadata service model: it
// sweeps the shard count under a fixed create load, then puts the two
// placement policies (hash-of-parent-directory vs. directory subtrees)
// against a Zipf-skewed directory popularity, and finally prices a
// single cross-shard rename against a local one.
//
//	go run ./examples/sharded_mds
package main

import (
	"fmt"
	"log"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// workload is a uniform or Zipf-skewed create mix over 24 project
// subtrees of 32 directories each, with one mkdir per 50 creates.
func workload(skew float64) core.ZipfDirFiles {
	return core.ZipfDirFiles{Projects: 24, SubdirsPerProject: 32, Skew: skew, MkdirEvery: 50}
}

// sweep runs the workload on 16 nodes x 4 processes (enough demand
// to saturate a small shard count) against cfg and
// returns the wall-clock create throughput.
func sweep(seed int64, cfg shard.Config, skew float64) (float64, *shard.FS) {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(16))
	fsys := shard.New(k, "meta", cfg)
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 400, WorkDir: "/"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{workload(skew)},
		Filter:       func(c core.Combo) bool { return c.Nodes == 16 && c.PPN == 4 },
	}
	set, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	return set.Find("ZipfDirFiles", 16, 4).Averages().WallClock, fsys
}

func main() {
	fmt.Println("1. create throughput vs. shard count (hash placement, 64 procs):")
	fmt.Println("   shards   ops/s    cross-shard hops")
	for _, n := range []int{1, 2, 4, 8} {
		rate, fsys := sweep(int64(100+n), shard.DefaultConfig(n), 0)
		fmt.Printf("   %6d %7.0f %19d\n", n, rate, fsys.CrossCount)
	}

	fmt.Println()
	fmt.Println("2. placement policy under directory-popularity skew (8 shards):")
	subtreeCfg := func() shard.Config {
		cfg := shard.DefaultConfig(8)
		cfg.Placement = shard.PlaceSubtree
		cfg.SubtreeAssign = make(map[string]int, 24)
		for j := 0; j < 24; j++ {
			cfg.SubtreeAssign[fmt.Sprintf("zp%d", j)] = j % 8
		}
		return cfg
	}
	for _, load := range []struct {
		name string
		skew float64
	}{{"uniform", 0}, {"Zipf 2.0", 2.0}} {
		hashRate, _ := sweep(201, shard.DefaultConfig(8), load.skew)
		subRate, _ := sweep(202, subtreeCfg(), load.skew)
		fmt.Printf("   %-8s  hash %7.0f ops/s   subtree %7.0f ops/s\n",
			load.name, hashRate, subRate)
	}

	fmt.Println()
	fmt.Println("3. the price of crossing a shard boundary (hash placement):")
	k := sim.New(303)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := shard.New(k, "meta", shard.DefaultConfig(8))
	var local, remote string
	for i := 1; i < 128 && (local == "" || remote == ""); i++ {
		cand := fmt.Sprintf("/d%d", i)
		if fsys.ShardOfDir(cand) == fsys.ShardOfDir("/d0") {
			if local == "" {
				local = cand
			}
		} else if remote == "" {
			remote = cand
		}
	}
	k.Spawn("probe", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		for _, d := range []string{"/d0", local, remote} {
			if err := c.Mkdir(d); err != nil {
				log.Fatal(err)
			}
		}
		const n = 100
		for i := 0; i < n; i++ {
			if err := c.Create(fmt.Sprintf("/d0/f%d", i)); err != nil {
				log.Fatal(err)
			}
		}
		measure := func(dst string) time.Duration {
			start := p.Now()
			for i := 0; i < n; i++ {
				if err := c.Rename(fmt.Sprintf("/d0/f%d", i), fmt.Sprintf("%s/f%d", dst, i)); err != nil {
					log.Fatal(err)
				}
			}
			// Move the files back so the next round starts from /d0.
			// The return renames share the forward direction's shard
			// relationship (both local or both crossing), so averaging
			// over all 2n renames keeps the comparison fair.
			for i := 0; i < n; i++ {
				if err := c.Rename(fmt.Sprintf("%s/f%d", dst, i), fmt.Sprintf("/d0/f%d", i)); err != nil {
					log.Fatal(err)
				}
			}
			return (p.Now() - start) / (2 * n)
		}
		same := measure(local)
		cross := measure(remote)
		fmt.Printf("   same-shard rename  %6d us\n", same.Microseconds())
		fmt.Printf("   cross-shard rename %6d us  (%.1fx: migrate over the MDS interconnect)\n",
			cross.Microseconds(), float64(cross)/float64(same))
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}
