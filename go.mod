module dmetabench

go 1.24
