// Package dmetabench is a reproduction of "Analyzing Metadata Performance
// in Distributed File Systems" (C. Biardzki, 2009): the DMetabench
// distributed metadata benchmark framework, deterministic simulations of
// the distributed file systems it was evaluated on (NFS/WAFL, Lustre,
// Ontap GX, AFS, CXFS), and the full Chapter-4 experiment suite —
// extended past the thesis with a sharded multi-MDS model
// (internal/shard) carrying fault injection, primary/backup failover,
// lease-based client cache coherence, dynamic giant-directory
// splitting and pluggable storage-backend cost models
// (memory-journal, LSM-KV, B-tree/SQL) with group-commit batching
// (experiments E16–E30).
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record. The root package holds
// only the benchmark harness (bench_test.go) that regenerates every
// table and figure as a testing.B benchmark.
package dmetabench

// Version identifies the reproduction release.
const Version = "1.0.0"
