package dmetabench

// One benchmark per table/figure of the thesis evaluation (see DESIGN.md
// for the experiment index) plus micro-benchmarks of the substrates.
// Each experiment benchmark performs a full simulated run per iteration;
// the headline result is attached via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the complete evaluation.
//
// Experiment benchmarks run their cells serially by default so ns/op
// stays comparable across the committed BENCH_*.json trajectory (a
// wider pool would fold scheduling luck into the numbers). Pass
// -bench-workers N to measure an experiment's parallel wall-clock
// instead; the reported metrics are byte-identical either way.

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/experiments"
	"dmetabench/internal/namespace"
	"dmetabench/internal/nfs"
	"dmetabench/internal/par"
	"dmetabench/internal/realrun"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

var benchWorkers = flag.Int("bench-workers", 1,
	"worker pool size for experiment-benchmark cells (1 = serial, snapshot-comparable)")

func TestMain(m *testing.M) {
	flag.Parse()
	par.SetWorkers(*benchWorkers)
	os.Exit(m.Run())
}

// runExperiment executes one experiment per iteration and reports the
// named rows as benchmark metrics.
func runExperiment(b *testing.B, run func() *experiments.Report, metrics ...string) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = run()
	}
	if rep == nil {
		b.Fatal("experiment returned nil")
	}
	want := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		want[m] = true
	}
	for _, row := range rep.Rows {
		if want[row.Name] {
			unit := row.Unit
			if unit == "" {
				unit = "val"
			}
			b.ReportMetric(row.Value, sanitize(row.Name)+"_"+sanitize(unit))
		}
	}
	if len(rep.Findings) == 0 {
		b.Fatalf("%s produced no findings (run failed?)", rep.ID)
	}
	b.Logf("%s: %s", rep.ID, rep.Findings[0])
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '/', r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}

func BenchmarkE01SyscallCounts(b *testing.B) {
	runExperiment(b, experiments.E01SyscallCounts, "ops amplification")
}

func BenchmarkE02HarnessOverhead(b *testing.B) {
	runExperiment(b, experiments.E02HarnessOverhead, "overhead per op")
}

func BenchmarkE03CPUHogCOV(b *testing.B) {
	runExperiment(b, experiments.E03CPUHogCOV,
		"throughput before hog", "throughput during hog", "max COV during hog")
}

func BenchmarkE04SnapshotNoise(b *testing.B) {
	runExperiment(b, experiments.E04SnapshotNoise, "max COV during snapshots")
}

func BenchmarkE05ConsistencyPoints(b *testing.B) {
	runExperiment(b, experiments.E05ConsistencyPoints,
		"peak interval throughput", "trough interval throughput")
}

func BenchmarkE06WriteInterference(b *testing.B) {
	runExperiment(b, experiments.E06WriteInterference,
		"throughput before write", "throughput during write")
}

func BenchmarkE07CreateScaling(b *testing.B) {
	runExperiment(b, experiments.E07CreateScaling,
		"NFS creates/s @ 16 nodes x1", "Lustre creates/s @ 16 nodes x1")
}

func BenchmarkE08LargeDirectories(b *testing.B) {
	runExperiment(b, experiments.E08LargeDirectories,
		"NFS (linear dirs) @ 100000 entries", "NFS/WAFL (hash dirs) @ 100000 entries")
}

func BenchmarkE09AllocationBursts(b *testing.B) {
	runExperiment(b, experiments.E09AllocationBursts,
		"OSS pre-allocation refills", "dip depth")
}

func BenchmarkE10PriorityScheduling(b *testing.B) {
	runExperiment(b, experiments.E10PriorityScheduling,
		"nice 0 ops/s during load", "nice 10 ops/s during load")
}

func BenchmarkE11SMPScaling(b *testing.B) {
	runExperiment(b, experiments.E11SMPScaling,
		"NFS creates/s @ ppn 32", "CXFS creates/s @ ppn 32")
}

func BenchmarkE12LatencySweep(b *testing.B) {
	runExperiment(b, experiments.E12LatencySweep,
		"RTT 10.0ms: NFS creates", "RTT 10.0ms: write-back creates")
}

func BenchmarkE13NamespaceAggregation(b *testing.B) {
	runExperiment(b, experiments.E13NamespaceAggregation,
		"remote efficiency", "per-node volumes @ 8 nodes x4", "single volume @ 8 nodes x4")
}

func BenchmarkE14AFS(b *testing.B) {
	runExperiment(b, experiments.E14AFS,
		"AFS StatNocacheFiles", "NFS StatNocacheFiles")
}

func BenchmarkE15WritebackCaching(b *testing.B) {
	runExperiment(b, experiments.E15WritebackCaching,
		"burst rate (first 200ms)", "sustained rate (4..8s)")
}

func BenchmarkE16ShardScaling(b *testing.B) {
	runExperiment(b, experiments.E16ShardScaling,
		"creates/s @  1 shards", "creates/s @  8 shards", "speedup 1->16 shards")
}

func BenchmarkE17ShardSkew(b *testing.B) {
	runExperiment(b, experiments.E17ShardSkew,
		"hash advantage under skew", "subtree advantage under uniform")
}

func BenchmarkE18CrossShard(b *testing.B) {
	runExperiment(b, experiments.E18CrossShard,
		"cross-shard rename penalty", "merge penalty")
}

func BenchmarkE19Failover(b *testing.B) {
	runExperiment(b, experiments.E19FailoverTimeline,
		"single: outage window", "repl: outage window", "repl: takeover latency")
}

func BenchmarkE20ReplicationOverhead(b *testing.B) {
	runExperiment(b, experiments.E20ReplicationOverhead,
		"replication cost @ 2 shards", "replication cost @ 8 shards")
}

func BenchmarkE21RecoveryScaling(b *testing.B) {
	runExperiment(b, experiments.E21RecoveryScaling, "detection floor")
}

func BenchmarkE22LeaseTTL(b *testing.B) {
	runExperiment(b, experiments.E22LeaseTTL,
		"lease  25ms: hit rate", "lease    4s: hit rate")
}

func BenchmarkE23CacheModes(b *testing.B) {
	runExperiment(b, experiments.E23CacheModes,
		"4 shards: lease 30s hit rate", "4 shards: ttl 3s hit rate")
}

func BenchmarkE24FailoverCachedLoad(b *testing.B) {
	runExperiment(b, experiments.E24FailoverCachedLoad,
		"invalidate: stale-read window", "no invalidate: stale-read window")
}

func BenchmarkE25SplitScaling(b *testing.B) {
	runExperiment(b, experiments.E25SplitScaling,
		"creates/s @  8 shards, split off", "creates/s @  8 shards, split on",
		"split advantage @ 8 shards")
}

func BenchmarkE26SplitStorm(b *testing.B) {
	runExperiment(b, experiments.E26SplitStorm,
		"threshold   512: deepest split dip", "threshold  8192: deepest split dip")
}

func BenchmarkE27SplitRouting(b *testing.B) {
	runExperiment(b, experiments.E27SplitRouting,
		"bitmap ttl  50ms: bounces/revisit", "bitmap ttl   10s: bounces/revisit",
		"fan-out penalty")
}

func BenchmarkE28BackendProfile(b *testing.B) {
	runExperiment(b, experiments.E28BackendProfile,
		"memjournal: create", "btree     : create", "lsm ENOENT discount")
}

func BenchmarkE29CompactionTimeline(b *testing.B) {
	runExperiment(b, experiments.E29CompactionTimeline,
		"compact every  2MB: deepest dip", "compact every 32MB: deepest dip")
}

func BenchmarkE30GroupCommit(b *testing.B) {
	runExperiment(b, experiments.E30GroupCommit,
		"throughput cost, window    0us", "mirror traffic, window 4000us")
}

// scaledPeriod wraps a long-horizon experiment (E31-E33) with a reduced
// virtual-time horizon: the defaults simulate hours per cell, which is
// more than a benchmark iteration should cost. The scaled runs keep the
// full pipeline — aggregate injection, stage harness, interval series.
func scaledPeriod(d time.Duration, run func() *experiments.Report) func() *experiments.Report {
	return func() *experiments.Report {
		old := experiments.Period
		experiments.Period = d
		defer func() { experiments.Period = old }()
		return run()
	}
}

func BenchmarkE31AggregateDay(b *testing.B) {
	runExperiment(b, scaledPeriod(10*time.Minute, experiments.E31AggregateDay),
		"diurnal        mean background", "diurnal+flash  peak/trough",
		"diurnal+flash  shed fraction")
}

func BenchmarkE32ForegroundTail(b *testing.B) {
	runExperiment(b, scaledPeriod(10*time.Minute, experiments.E32ForegroundTail),
		"10k   clients  shared  p99", "1M    clients  shared  p99")
}

func BenchmarkE33CapacityPressure(b *testing.B) {
	runExperiment(b, scaledPeriod(10*time.Minute, experiments.E33CapacityPressure),
		"1M    clients  server lease entries", "1M    clients  modeled per-client table")
}

func BenchmarkE34DomainedServers(b *testing.B) {
	runExperiment(b, experiments.E34DomainedServers,
		"nfs    domained creates/s", "lustre parallelism headroom")
}

func BenchmarkE35FilerAtScale(b *testing.B) {
	runExperiment(b, scaledPeriod(10*time.Minute, experiments.E35FilerAtScale),
		"shed fraction", "loaded  foreground p99")
}

func BenchmarkE36AdaptiveLookahead(b *testing.B) {
	runExperiment(b, experiments.E36AdaptiveLookahead,
		"sparse adaptive windows", "sparse byte-identical")
}

func BenchmarkA01AveragingMethods(b *testing.B) {
	runExperiment(b, experiments.A01AveragingMethods,
		"wall-clock average", "stonewall average")
}

func BenchmarkA02WritebackWindow(b *testing.B) {
	runExperiment(b, experiments.A02WritebackWindow,
		"window  4096: burst", "window  4096: sustained")
}

// --- substrate micro-benchmarks ---

// BenchmarkSimulatedCreate measures the real-time cost of one simulated
// NFS create — the simulator's own efficiency (DESIGN.md ablation).
func BenchmarkSimulatedCreate(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := nfs.New(k, "bench", nfs.DefaultConfig())
	k.Spawn("creator", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		for i := 0; i < b.N; i++ {
			if i%5000 == 0 {
				c.Mkdir(fmt.Sprintf("/d/s%d", i/5000))
			}
			c.Create(fmt.Sprintf("/d/s%d/%d", i/5000, i))
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedCreate measures the real-time cost of one simulated
// create on the sharded MDS model (4 shards, hash placement) — the
// multi-server counterpart of BenchmarkSimulatedCreate.
func BenchmarkShardedCreate(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := shard.New(k, "bench", shard.DefaultConfig(4))
	k.Spawn("creator", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		for i := 0; i < b.N; i++ {
			if i%5000 == 0 {
				c.Mkdir(fmt.Sprintf("/d/s%d", i/5000))
			}
			c.Create(fmt.Sprintf("/d/s%d/%d", i/5000, i))
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDomainCreate measures the real-time cost of one simulated
// create on the domained sharded MDS (8 shards partitioned into 9
// event-kernel domains, 8 concurrent client processes): the
// conservative-lookahead substrate — window barriers, cross-domain
// mailboxes, rendezvous RPCs — on top of the BenchmarkShardedCreate
// path, gated alongside it.
func BenchmarkDomainCreate(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(8))
	cfg := shard.DefaultConfig(8)
	cfg.Domains = 9
	fsys := shard.New(k, "bench", cfg)
	per := b.N/8 + 1
	for c := 0; c < 8; c++ {
		c := c
		k.Spawn(fmt.Sprintf("creator-%d", c), func(p *sim.Proc) {
			cli := fsys.NewClient(cl.Nodes[c], p)
			cli.Mkdir(fmt.Sprintf("/d%d", c))
			for i := 0; i < per; i++ {
				if i%5000 == 0 {
					cli.Mkdir(fmt.Sprintf("/d%d/s%d", c, i/5000))
				}
				cli.Create(fmt.Sprintf("/d%d/s%d/%d", c, i/5000, i))
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// domainedCell runs one heavy replicated 8-shard cell — E20's 16-node x
// 4-process create load — with the given domain partitioning and worker
// pool, and returns the FS for counter readout.
func domainedCell(domains, workers int) *shard.FS {
	k := sim.New(1600)
	cl := cluster.New(k, cluster.DefaultConfig(16))
	cfg := shard.DefaultConfig(8)
	cfg.Replicate = true
	cfg.Domains = domains
	fsys := shard.New(k, "bench", cfg)
	if g := fsys.Group(); g != nil && workers > 0 {
		g.Workers = workers
	}
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 500, WorkDir: "/"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 16 && c.PPN == 4 },
	}
	if _, err := r.Run(); err != nil {
		panic(err)
	}
	return fsys
}

// BenchmarkDomainedCell measures the wall-clock of one heavy replicated
// 8-shard cell on the single-heap kernel vs partitioned into 9 kernel
// domains (8 shard domains + the client domain) on a full worker pool.
// The domained runs additionally report their parallelism headroom:
// total events dispatched divided by the busiest domain's share — the
// wall-clock speedup bound an ideal multi-core run converges to (see
// DESIGN.md, "Parallel DES"). On a single-core host the domained
// wall-clock shows pure protocol overhead; the headroom metric is
// hardware-independent.
func BenchmarkDomainedCell(b *testing.B) {
	headroom := func(f *shard.FS) float64 {
		g := f.Group()
		var tot, max int64
		for i := 0; i < g.NumDomains(); i++ {
			d := g.Kernel(i).Dispatched()
			tot += d
			if d > max {
				max = d
			}
		}
		return float64(tot) / float64(max)
	}
	b.Run("single-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			domainedCell(0, 0)
		}
	})
	b.Run("domains-9-workers-1", func(b *testing.B) {
		var f *shard.FS
		for i := 0; i < b.N; i++ {
			f = domainedCell(9, 1)
		}
		b.ReportMetric(headroom(f), "headroomx")
	})
	b.Run("domains-9-workers-8", func(b *testing.B) {
		var f *shard.FS
		for i := 0; i < b.N; i++ {
			f = domainedCell(9, 8)
		}
		b.ReportMetric(headroom(f), "headroomx")
	})
}

// BenchmarkNFSDomainCreate measures the real-time cost of one simulated
// create on the domained NFS filer (client domain + filer domain via
// the shared service runtime, 4 concurrent client processes): the
// cross-domain RPC path — CallDom rendezvous, reply-leg cache fills —
// on top of the BenchmarkSimulatedCreate path, gated alongside
// BenchmarkDomainCreate.
func BenchmarkNFSDomainCreate(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	cfg := nfs.DefaultConfig()
	cfg.Domains = 2
	fsys := nfs.New(k, "bench", cfg)
	per := b.N/4 + 1
	for c := 0; c < 4; c++ {
		c := c
		k.Spawn(fmt.Sprintf("creator-%d", c), func(p *sim.Proc) {
			cli := fsys.NewClient(cl.Nodes[c], p)
			cli.Mkdir(fmt.Sprintf("/d%d", c))
			for i := 0; i < per; i++ {
				if i%5000 == 0 {
					cli.Mkdir(fmt.Sprintf("/d%d/s%d", c, i/5000))
				}
				cli.Create(fmt.Sprintf("/d%d/s%d/%d", c, i/5000, i))
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCachedGetattr measures the real-time cost of one coherent
// cache hit: a stat served from a live lease on the sharded MDS model
// (4 shards, lease mode) — the fast path every E22–E24 run spends most
// of its operations on, gated alongside SimulatedCreate.
func BenchmarkCachedGetattr(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	cfg := shard.DefaultConfig(4)
	cfg.CacheMode = shard.CacheLease
	cfg.LeaseTTL = time.Hour
	fsys := shard.New(k, "bench", cfg)
	k.Spawn("statter", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		c.Create("/d/f")
		if _, err := c.Stat("/d/f"); err != nil { // take the lease
			b.Error(err)
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Stat("/d/f"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBackendCreate measures the real-time cost of one simulated
// create on the LSM-backed sharded MDS (4 shards, hash placement): the
// backend pricing hooks — opInfo classification, the factor multiply,
// write-amplified logging and compaction-debt bookkeeping — on top of
// the BenchmarkShardedCreate path, gated alongside it.
func BenchmarkBackendCreate(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	cfg := shard.DefaultConfig(4)
	cfg.Backend = shard.BackendLSM
	fsys := shard.New(k, "bench", cfg)
	k.Spawn("creator", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		for i := 0; i < b.N; i++ {
			if i%5000 == 0 {
				c.Mkdir(fmt.Sprintf("/d/s%d", i/5000))
			}
			c.Create(fmt.Sprintf("/d/s%d/%d", i/5000, i))
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSplitCreate measures the real-time cost of one simulated
// create into an already-split giant directory (4 shards, split level
// capped): the steady-state split path every E25–E27 run spends most of
// its operations on — bitmap routing, partition hashing, the split-aware
// owner resolution — gated alongside SimulatedCreate.
func BenchmarkSplitCreate(b *testing.B) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	cfg := shard.DefaultConfig(4)
	cfg.SplitThreshold = 256
	fsys := shard.New(k, "bench", cfg)
	k.Spawn("creator", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		c.Mkdir("/wide")
		for i := 0; i < 2000; i++ {
			c.Create(fmt.Sprintf("/wide/w%d", i))
		}
		if fsys.SplitLevel("/wide") == 0 {
			b.Error("directory did not split during setup")
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Create(fmt.Sprintf("/wide/b%d", i))
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAggregateInject measures the real-time cost per injected
// background operation of the aggregate arrival path (E31-E33): source
// draw, batch pricing and the Acquire/Sleep/Release hold, across 4
// shards x 4 injector lanes. The per-iteration work is one modeled
// operation, not one simulated client — that is the point of the
// aggregate model — and the steady-state loop is allocation-free
// (bench_gate.sh fails the build if allocs/op ever leaves 0).
func BenchmarkAggregateInject(b *testing.B) {
	k := sim.New(1)
	fsys := shard.New(k, "bench", shard.DefaultConfig(4))
	const perTick = 64 // per lane per tick: 2.56ms priced vs a 10ms tick
	const tick = 10 * time.Millisecond
	fsys.AttachAggregate(tick, func(_, _, _ int) shard.AggregateDemand {
		return shard.AggregateDemand{Getattr: perTick}
	})
	lanes := 4 * 4
	ticks := b.N/(lanes*perTick) + 1
	k.Spawn("horizon", func(p *sim.Proc) {
		p.Sleep(time.Duration(ticks) * tick)
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNamespaceCreate measures the raw data-structure cost.
func BenchmarkNamespaceCreate(b *testing.B) {
	ns := namespace.New()
	ns.Mkdir("/d", 0o755, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			ns.Mkdir(fmt.Sprintf("/d/s%d", i/10000), 0o755, 0)
		}
		ns.Create(fmt.Sprintf("/d/s%d/%d", i/10000, i), 0o644, 0)
	}
}

// BenchmarkOSClientCreate measures real create+unlink pairs on the host
// file system through the benchmark API.
func BenchmarkOSClientCreate(b *testing.B) {
	c := realrun.NewOSClient(b.TempDir())
	c.Mkdir("/d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("/d/%d", i)
		if err := c.Create(name); err != nil {
			b.Fatal(err)
		}
		if err := c.Unlink(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerMeasurement measures a complete framework measurement
// cycle (prepare/doBench/cleanup with supervisor) end to end.
func BenchmarkRunnerMeasurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.New(int64(i))
		cl := cluster.New(k, cluster.DefaultConfig(2))
		fsys := nfs.New(k, "home", nfs.DefaultConfig())
		r := &core.Runner{
			Cluster:      cl,
			FS:           fsys,
			Params:       core.Params{ProblemSize: 500, WorkDir: "/bench"},
			SlotsPerNode: 1,
			Plugins:      []core.Plugin{core.MakeFiles{}},
			Filter:       func(c core.Combo) bool { return c.Nodes == 2 },
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInterval quantifies the DESIGN.md ablation: result
// fidelity and cost of the 0.1 s interval grid vs. a coarser 1 s grid.
func BenchmarkAblationInterval(b *testing.B) {
	for _, interval := range []time.Duration{100 * time.Millisecond, time.Second} {
		interval := interval
		b.Run(interval.String(), func(b *testing.B) {
			var stone float64
			for i := 0; i < b.N; i++ {
				k := sim.New(3)
				cl := cluster.New(k, cluster.DefaultConfig(4))
				fsys := nfs.New(k, "home", nfs.DefaultConfig())
				r := &core.Runner{
					Cluster: cl,
					FS:      fsys,
					Params: core.Params{
						ProblemSize: 5000, TimeLimit: 10 * time.Second,
						WorkDir: "/bench", Interval: interval,
					},
					SlotsPerNode: 1,
					Plugins:      []core.Plugin{core.MakeFiles{}},
					Filter:       func(c core.Combo) bool { return c.Nodes == 4 },
				}
				set, err := r.Run()
				if err != nil {
					b.Fatal(err)
				}
				stone = set.Measurements[0].Averages().Stonewall
			}
			b.ReportMetric(stone, "stonewall_ops_per_s")
		})
	}
}
