package core

import (
	"fmt"
	"time"

	"dmetabench/internal/par"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// ParallelRunner executes a Runner-shaped experiment with every
// (combo, plugin) measurement as an independent cell: each cell builds
// its own simulation kernel, cluster and file system, runs exactly one
// measurement, and the cells fan out across the par worker pool. The
// merged result set lists measurements in plan order — the order the
// serial master loop would have produced — so output is byte-identical
// at any worker count.
//
// Every cell's kernel is seeded identically with Seed (the E16 sweep
// discipline: the only variable between cells is the combo/plugin, not
// the RNG draw sequence), and cell state is fully isolated by
// construction — a fresh kernel, cluster and FS per cell — so no
// cross-cell synchronization exists to get wrong. This differs from the
// serial Runner, where consecutive measurements share one kernel and
// therefore one RNG stream and one namespace; experiments that rely on
// that carried state (disturbance hooks priced against earlier
// measurements, cumulative counters) must keep the serial Runner and
// run as a single cell.
type ParallelRunner struct {
	// New builds a fresh cluster, file system and Runner bound to k.
	// It is called once per cell (plus once to derive the plan and the
	// set's environment profile) and every call must be independent:
	// capture nothing mutable across calls. Wire BenchStartHook to the
	// call's own FS/cluster inside New.
	New func(k *sim.Kernel) *Runner
	// Seed seeds every cell's kernel.
	Seed int64
	// Label, when non-empty, records per-cell wall-clock timings under
	// "<Label>/n<nodes>p<ppn>-<plugin>" (cmd/experiments -cells).
	Label string
}

// planCell is one (combo, plugin) measurement of the execution plan.
type planCell struct {
	combo  Combo
	plugin Plugin
}

// Run derives the execution plan, runs every (combo, plugin) cell on
// its own kernel across the worker pool, and merges the measurements in
// plan order.
func (pr *ParallelRunner) Run() (*results.Set, error) {
	proto := pr.New(sim.New(pr.Seed))
	plan, err := proto.plan()
	if err != nil {
		return nil, err
	}
	var cells []planCell
	for _, combo := range plan {
		for _, plugin := range proto.Plugins {
			cells = append(cells, planCell{combo, plugin})
		}
	}
	set := results.NewSet(proto.Params.Label, proto.FS.Name(), proto.Params.interval())
	proto.profileStatic(set)

	ms := make([]*results.Measurement, len(cells))
	errs := make([]error, len(cells))
	par.Do(len(cells), func(i int) {
		start := time.Now()
		ms[i], errs[i] = pr.runCell(cells[i])
		if pr.Label != "" {
			par.RecordTiming(fmt.Sprintf("%s/n%dp%d-%s", pr.Label,
				cells[i].combo.Nodes, cells[i].combo.PPN,
				cells[i].plugin.Name()), time.Since(start))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell %d (n%dp%d %s): %w", i,
				cells[i].combo.Nodes, cells[i].combo.PPN,
				cells[i].plugin.Name(), err)
		}
	}
	set.Merge(ms)
	return set, nil
}

// runCell executes one measurement on a fresh, identically-seeded
// kernel and returns it.
func (pr *ParallelRunner) runCell(c planCell) (*results.Measurement, error) {
	k := sim.New(pr.Seed)
	r := pr.New(k)
	r.Plugins = []Plugin{c.plugin}
	nodes, ppn := c.combo.Nodes, c.combo.PPN
	r.Filter = func(cc Combo) bool { return cc.Nodes == nodes && cc.PPN == ppn }
	// Pre-run load profiling samples the whole run's environment once in
	// the serial master; a per-cell repeat would misreport it.
	r.ProfileLoad = 0
	cellSet, err := r.Start(k)
	if err != nil {
		return nil, err
	}
	if err := k.Run(); err != nil {
		return nil, err
	}
	m := cellSet.Find(c.plugin.Name(), nodes, ppn)
	if m == nil {
		return nil, fmt.Errorf("measurement (%s, %d, %d) missing from cell set",
			c.plugin.Name(), nodes, ppn)
	}
	return m, nil
}
