package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"dmetabench/internal/cluster"
	"dmetabench/internal/nfs"
	"dmetabench/internal/par"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// parSmokeRunner is a 12-cell experiment (4 combos x 3 ops) mirroring
// TestRunnerNFSSmoke, expressed for the parallel engine.
func parSmokeRunner() *ParallelRunner {
	return &ParallelRunner{
		Seed: 42,
		New: func(k *sim.Kernel) *Runner {
			cl := cluster.New(k, cluster.DefaultConfig(2))
			fsys := nfs.New(k, "home", nfs.DefaultConfig())
			return &Runner{
				Cluster:      cl,
				FS:           fsys,
				Params:       Params{ProblemSize: 150, WorkDir: "/bench", Label: "par"},
				SlotsPerNode: 2,
				Plugins:      []Plugin{MakeFiles{}, StatFiles{}, DeleteFiles{}},
			}
		},
	}
}

// dumpSet serializes every measurement of a set — identity, full
// per-proc traces and derived averages — so two runs can be compared
// byte for byte.
func dumpSet(t *testing.T, set *results.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, m := range set.Measurements {
		fmt.Fprintf(&buf, "== %s n%d p%d ops=%d stone=%.6f wall=%.6f\n",
			m.Op, m.Nodes, m.PPN, m.TotalOps(),
			m.Averages().Stonewall, m.Averages().WallClock)
		if err := m.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := par.Workers()
	par.SetWorkers(n)
	defer par.SetWorkers(old)
	fn()
}

// TestParallelRunnerDeterministicAcrossWorkers is the determinism
// contract: the merged result set is byte-identical whether cells run
// serially on one worker or fan out across every CPU.
func TestParallelRunnerDeterministicAcrossWorkers(t *testing.T) {
	var serial, parallel []byte
	withWorkers(t, 1, func() {
		set, err := parSmokeRunner().Run()
		if err != nil {
			t.Fatal(err)
		}
		serial = dumpSet(t, set)
	})
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4 // force real interleaving even on small hosts
	}
	withWorkers(t, workers, func() {
		set, err := parSmokeRunner().Run()
		if err != nil {
			t.Fatal(err)
		}
		parallel = dumpSet(t, set)
	})
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("result set differs between 1 and %d workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			workers, serial, parallel)
	}
}

// TestParallelRunnerConcurrentCells drives many cells through a wide
// pool at once; under `go test -race` this is the check that cells
// share no mutable state.
func TestParallelRunnerConcurrentCells(t *testing.T) {
	withWorkers(t, 8, func() {
		set, err := parSmokeRunner().Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(set.Measurements) != 12 {
			t.Fatalf("measurements = %d, want 12", len(set.Measurements))
		}
		// Merge order must be plan order: combo-major, plugins inner.
		ops := []string{"MakeFiles", "StatFiles", "DeleteFiles"}
		for i, m := range set.Measurements {
			if m.Op != ops[i%3] {
				t.Fatalf("measurement %d is %s, want %s (plan order broken)",
					i, m.Op, ops[i%3])
			}
			if m.Failed() {
				t.Fatalf("measurement %s %d/%d failed: %v", m.Op, m.Nodes, m.PPN, m.Errors)
			}
			if m.TotalOps() != int64(150*m.Procs()) {
				t.Fatalf("%s %d/%d: total ops = %d, want %d",
					m.Op, m.Nodes, m.PPN, m.TotalOps(), 150*m.Procs())
			}
		}
	})
}

// TestParallelRunnerCellIsolation checks the per-cell kernel discipline:
// every cell starts from the same seed, so a combo's measurement must
// not depend on which other combos ran before it. Running a single
// filtered cell alone must reproduce the same measurement the full
// sweep produced.
func TestParallelRunnerCellIsolation(t *testing.T) {
	withWorkers(t, 4, func() {
		full, err := parSmokeRunner().Run()
		if err != nil {
			t.Fatal(err)
		}
		pr := parSmokeRunner()
		solo, err := pr.runCell(planCell{Combo{Nodes: 2, PPN: 2}, StatFiles{}})
		if err != nil {
			t.Fatal(err)
		}
		ref := full.Find("StatFiles", 2, 2)
		if ref == nil {
			t.Fatal("sweep measurement missing")
		}
		var a, b bytes.Buffer
		if err := ref.WriteTrace(&a); err != nil {
			t.Fatal(err)
		}
		if err := solo.WriteTrace(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("solo cell differs from sweep cell:\n%s\nvs\n%s", a.String(), b.String())
		}
	})
}
