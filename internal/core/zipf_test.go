package core

import (
	"testing"

	"dmetabench/internal/fs"
)

// recordClient is an fs.Client that records the Create paths it sees —
// enough to replay a plugin's draw sequence without a simulator.
type recordClient struct {
	creates []string
}

func (r *recordClient) Create(path string) error {
	r.creates = append(r.creates, path)
	return nil
}
func (r *recordClient) Open(path string) (fs.Handle, error)        { return 1, nil }
func (r *recordClient) Close(h fs.Handle) error                    { return nil }
func (r *recordClient) Write(h fs.Handle, n int64) error           { return nil }
func (r *recordClient) Fsync(h fs.Handle) error                    { return nil }
func (r *recordClient) Mkdir(path string) error                    { return nil }
func (r *recordClient) Rmdir(path string) error                    { return nil }
func (r *recordClient) Unlink(path string) error                   { return nil }
func (r *recordClient) Rename(oldPath, newPath string) error       { return nil }
func (r *recordClient) Link(oldPath, newPath string) error         { return nil }
func (r *recordClient) Symlink(target, linkPath string) error      { return nil }
func (r *recordClient) Stat(path string) (fs.Attr, error)          { return fs.Attr{}, nil }
func (r *recordClient) ReadDir(path string) ([]fs.DirEntry, error) { return nil, nil }
func (r *recordClient) DropCaches()                                {}

// zipfDraws replays ZipfDirFiles.DoBench at the given skew and returns
// the sequence of created paths.
func zipfDraws(t *testing.T, skew float64, n int) []string {
	t.Helper()
	rc := &recordClient{}
	ctx := &Ctx{
		FS:      rc,
		Workers: 1,
		Params:  Params{ProblemSize: n, WorkDir: "/"},
	}
	z := ZipfDirFiles{Projects: 8, SubdirsPerProject: 4, Skew: skew}
	if err := z.DoBench(ctx); err != nil {
		t.Fatal(err)
	}
	return rc.creates
}

// TestZipfDirFilesSkewBoundary pins the Zipf cutoff at strictly
// Skew > 1: math/rand's Zipf generator is defined only for s > 1, so
// Skew == 1.0 must degrade to the uniform draw — byte-identical to
// Skew 0 under the same per-rank seed — while any skew above 1 must
// produce a genuinely different (and skewed) sequence.
func TestZipfDirFilesSkewBoundary(t *testing.T) {
	const n = 400
	uniform := zipfDraws(t, 0, n)
	boundary := zipfDraws(t, 1.0, n)
	skewed := zipfDraws(t, 1.8, n)
	if len(uniform) != n || len(boundary) != n || len(skewed) != n {
		t.Fatalf("draw counts: %d/%d/%d, want %d", len(uniform), len(boundary), len(skewed), n)
	}
	for i := range uniform {
		if uniform[i] != boundary[i] {
			t.Fatalf("Skew 1.0 diverged from uniform at draw %d: %q vs %q — the cutoff is Skew > 1, not >= 1",
				i, boundary[i], uniform[i])
		}
	}
	same := true
	for i := range uniform {
		if uniform[i] != skewed[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Skew 1.8 produced the uniform sequence; the Zipf path never engaged")
	}
	// And the skewed draw really concentrates: project zp0 must take a
	// clearly larger share than the uniform 1/8.
	count := func(paths []string, prefix string) int {
		c := 0
		for _, p := range paths {
			if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
				c++
			}
		}
		return c
	}
	if u, s := count(uniform, "/zp0/"), count(skewed, "/zp0/"); s <= u {
		t.Errorf("Zipf 1.8 gave zp0 %d draws vs uniform %d; expected concentration on the hot project", s, u)
	}
}
