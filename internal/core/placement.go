package core

import (
	"fmt"
	"sort"
)

// Slot is one MPI slot: a process launch position on a node. The slot
// layout is fixed by the environment (mpirun -np / hostfile, §3.3.4) and
// DMetabench can only choose among the given slots.
type Slot struct {
	Node       string // node name
	NodeIndex  int    // index of the node in the cluster
	SlotOnNode int    // slot position within the node
	GlobalID   int    // MPI rank
}

// Placement is the result of placement discovery: the master slot and the
// worker ordering of Fig. 3.9.
type Placement struct {
	Master Slot
	// Workers is ordered round-robin across nodes: first one worker per
	// node, then the second from each node, and so on. This order also
	// matches path-list entries to processes (§3.3.6).
	Workers []Slot
	// PerNode maps node name to its worker slots in on-node order.
	PerNode map[string][]Slot
	// NodeOrder lists node names in first-appearance order.
	NodeOrder []string
}

// Discover performs placement discovery on the given slots: the master is
// placed on a node with the most slots (so the largest
// processes-per-node configuration keeps a full complement of workers
// elsewhere), and the remaining slots are ordered round-robin.
func Discover(slots []Slot) (Placement, error) {
	if len(slots) < 2 {
		return Placement{}, fmt.Errorf("placement: need at least 2 slots (1 master + 1 worker), have %d", len(slots))
	}
	byNode := make(map[string][]Slot)
	var order []string
	for _, s := range slots {
		if _, ok := byNode[s.Node]; !ok {
			order = append(order, s.Node)
		}
		byNode[s.Node] = append(byNode[s.Node], s)
	}
	// Master: on a node with the most slots (ties: first in order).
	masterNode := order[0]
	for _, n := range order {
		if len(byNode[n]) > len(byNode[masterNode]) {
			masterNode = n
		}
	}
	master := byNode[masterNode][len(byNode[masterNode])-1]
	byNode[masterNode] = byNode[masterNode][:len(byNode[masterNode])-1]
	if len(byNode[masterNode]) == 0 {
		delete(byNode, masterNode)
		for i, n := range order {
			if n == masterNode {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
	}
	// Round-robin worker ordering.
	var workers []Slot
	for round := 0; ; round++ {
		added := false
		for _, n := range order {
			if round < len(byNode[n]) {
				workers = append(workers, byNode[n][round])
				added = true
			}
		}
		if !added {
			break
		}
	}
	return Placement{
		Master:    master,
		Workers:   workers,
		PerNode:   byNode,
		NodeOrder: order,
	}, nil
}

// Combo is one measurement configuration from the execution plan (Table
// 3.3): a node count, a processes-per-node count and the participating
// worker slots.
type Combo struct {
	Nodes   int
	PPN     int
	Workers []Slot
}

// Procs returns the total process count of the combo.
func (c Combo) Procs() int { return len(c.Workers) }

// Plan derives the execution plan: every (ppn, nodes) combination the
// placement supports, thinned by the step parameters. For a given ppn
// only nodes with at least ppn worker slots are eligible.
func (p Placement) Plan(nodeStep, ppnStep int) []Combo {
	if nodeStep < 1 {
		nodeStep = 1
	}
	if ppnStep < 1 {
		ppnStep = 1
	}
	maxPPN := 0
	for _, ss := range p.PerNode {
		if len(ss) > maxPPN {
			maxPPN = len(ss)
		}
	}
	var plan []Combo
	for ppn := 1; ppn <= maxPPN; ppn += ppnStep {
		var eligible []string
		for _, n := range p.NodeOrder {
			if len(p.PerNode[n]) >= ppn {
				eligible = append(eligible, n)
			}
		}
		for nodes := 1; nodes <= len(eligible); nodes += nodeStep {
			var workers []Slot
			for _, n := range eligible[:nodes] {
				workers = append(workers, p.PerNode[n][:ppn]...)
			}
			// Order workers round-robin across the selected nodes so
			// rank order matches the global worker ordering.
			sort.SliceStable(workers, func(i, j int) bool {
				if workers[i].SlotOnNode != workers[j].SlotOnNode {
					return workers[i].SlotOnNode < workers[j].SlotOnNode
				}
				return workers[i].NodeIndex < workers[j].NodeIndex
			})
			plan = append(plan, Combo{Nodes: nodes, PPN: ppn, Workers: workers})
		}
	}
	return plan
}

// UniformSlots builds the slot layout for nodes × slotsPerNode, MPI ranks
// assigned node-major like a typical hostfile.
func UniformSlots(nodeNames []string, slotsPerNode int) []Slot {
	var slots []Slot
	id := 0
	for ni, name := range nodeNames {
		for s := 0; s < slotsPerNode; s++ {
			slots = append(slots, Slot{Node: name, NodeIndex: ni, SlotOnNode: s, GlobalID: id})
			id++
		}
	}
	return slots
}
