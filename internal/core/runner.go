package core

import (
	"fmt"
	"strconv"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// FileSystem is the mountable interface the runner benchmarks: every
// simulated file system model implements it.
type FileSystem interface {
	// Name identifies the file system in result sets.
	Name() string
	// NewClient binds a client for one process on one node.
	NewClient(node *cluster.Node, p *sim.Proc) fs.Client
}

// MeasurementInfo describes the measurement about to run (hook argument).
type MeasurementInfo struct {
	Op    string
	Nodes int
	PPN   int
}

// Runner executes a DMetabench run on a simulated cluster: placement
// discovery, execution plan, and per-measurement master/worker phases
// with interval logging (§3.3.3).
type Runner struct {
	Cluster *cluster.Cluster
	FS      FileSystem
	Params  Params
	// SlotsPerNode is the number of MPI slots per node; an extra master
	// slot is placed on the first node so every node contributes the
	// full SlotsPerNode workers (Fig. 3.9).
	SlotsPerNode int
	Plugins      []Plugin
	// BenchStartHook, when set, runs in the master process at the start
	// of every doBench phase — experiments use it to inject
	// disturbances at defined offsets (§4.2.3).
	BenchStartHook func(mp *sim.Proc, info MeasurementInfo)
	// ProfileLoad, when positive, samples node CPU load for this long
	// before the first measurement (the vmstat step of §3.3.3).
	ProfileLoad time.Duration
	// Filter, when set, selects which plan combos run (in addition to
	// the NodeStep/PPNStep thinning).
	Filter func(Combo) bool
	// CollectLatencies wraps every client to record per-operation
	// latency histograms during the doBench phase.
	CollectLatencies bool
}

// Run performs the full benchmark run and drives the simulation kernel
// until completion.
func (r *Runner) Run() (*results.Set, error) {
	k := r.Cluster.Kernel()
	set, err := r.Start(k)
	if err != nil {
		return nil, err
	}
	if err := k.Run(); err != nil {
		return nil, err
	}
	return set, nil
}

// plan performs placement discovery for this runner's cluster/slot
// configuration and returns the filtered execution plan — the combo
// list both the serial master loop and ParallelRunner's cell
// decomposition iterate.
func (r *Runner) plan() ([]Combo, error) {
	if len(r.Plugins) == 0 {
		return nil, fmt.Errorf("dmetabench: no operations selected")
	}
	if r.SlotsPerNode < 1 {
		r.SlotsPerNode = 1
	}
	var names []string
	for _, n := range r.Cluster.Nodes {
		names = append(names, n.Name)
	}
	slots := UniformSlots(names, r.SlotsPerNode)
	// Extra slot for the master on the first node, so placement
	// discovery assigns the master there and every node retains
	// SlotsPerNode workers.
	slots = append(slots, Slot{Node: names[0], NodeIndex: 0,
		SlotOnNode: r.SlotsPerNode, GlobalID: len(slots)})
	placement, err := Discover(slots)
	if err != nil {
		return nil, err
	}
	plan := placement.Plan(r.Params.NodeStep, r.Params.PPNStep)
	if r.Filter != nil {
		var kept []Combo
		for _, c := range plan {
			if r.Filter(c) {
				kept = append(kept, c)
			}
		}
		plan = kept
	}
	return plan, nil
}

// Start spawns the master process and returns the result set it will
// fill; the caller must drive the kernel (Run or RunFor). Use Run unless
// the experiment interleaves other simulation activity.
func (r *Runner) Start(k *sim.Kernel) (*results.Set, error) {
	plan, err := r.plan()
	if err != nil {
		return nil, err
	}
	set := results.NewSet(r.Params.Label, r.FS.Name(), r.Params.interval())
	r.profileStatic(set)

	k.Spawn("dmetabench-master", func(mp *sim.Proc) {
		if r.ProfileLoad > 0 {
			r.profileLoad(mp, set)
		}
		for _, combo := range plan {
			for _, plugin := range r.Plugins {
				m := r.runMeasurement(mp, combo, plugin)
				set.Add(m)
			}
		}
	})
	return set, nil
}

// profileStatic records static environment configuration (§3.2.6).
func (r *Runner) profileStatic(set *results.Set) {
	set.Environment["filesystem"] = r.FS.Name()
	set.Environment["nodes"] = fmt.Sprint(len(r.Cluster.Nodes))
	for _, n := range r.Cluster.Nodes {
		set.Environment["node:"+n.Name] = fmt.Sprintf("cores=%d", n.Cores)
	}
	set.Environment["slots_per_node"] = fmt.Sprint(r.SlotsPerNode)
	set.Environment["interval"] = r.Params.interval().String()
	if r.Params.TimeLimit > 0 {
		set.Environment["time_limit"] = r.Params.TimeLimit.String()
	}
	set.Environment["problem_size"] = fmt.Sprint(r.Params.ProblemSize)
}

// profileLoad samples pre-run CPU load on every node.
func (r *Runner) profileLoad(mp *sim.Proc, set *results.Set) {
	samples := int(r.ProfileLoad / (100 * time.Millisecond))
	if samples < 1 {
		samples = 1
	}
	busy := make([]int, len(r.Cluster.Nodes))
	for s := 0; s < samples; s++ {
		mp.Sleep(100 * time.Millisecond)
		for i, n := range r.Cluster.Nodes {
			if n.CPUQueueLen() > 0 || n.ActiveHogs() > 0 {
				busy[i]++
			}
		}
	}
	for i, n := range r.Cluster.Nodes {
		set.Environment["load:"+n.Name] =
			fmt.Sprintf("%.0f%%", 100*float64(busy[i])/float64(samples))
	}
}

// runMeasurement executes one (combo, plugin) measurement: spawn the
// workers, run the three phases with barriers, and sample progress on
// the interval grid from the master (acting as the supervisor).
func (r *Runner) runMeasurement(mp *sim.Proc, combo Combo, plugin Plugin) *results.Measurement {
	k := mp.Kernel()
	procs := combo.Procs()
	interval := r.Params.interval()
	barrier := sim.NewBarrier(k, "phase", procs+1)

	ctxs := make([]*Ctx, procs)
	done := make([]bool, procs)
	benchActive := false
	var latencies map[fs.OpKind]*results.Histogram
	if r.CollectLatencies {
		latencies = make(map[fs.OpKind]*results.Histogram)
	}
	finishedAt := make([]time.Duration, procs)
	errs := make([]string, procs)
	dirs := make([]string, procs)
	for rank := range combo.Workers {
		base := r.Params.WorkDir
		if len(r.Params.PathList) > 0 {
			base = r.Params.PathList[rank%len(r.Params.PathList)]
		}
		dirs[rank] = workerDir(base, plugin.Name(), combo.Nodes, procs, rank)
	}

	for rank, slot := range combo.Workers {
		rank, slot := rank, slot
		node := r.Cluster.Nodes[slot.NodeIndex]
		k.Spawn("worker-"+strconv.Itoa(rank), func(p *sim.Proc) {
			ctx := &Ctx{
				Rank:     rank,
				Workers:  procs,
				Node:     node.Name,
				NodeRank: slot.SlotOnNode,
				Dir:      dirs[rank],
				PeerDir:  dirs[peerRank(rank, combo)],
				Params:   r.Params,
			}
			phaseStart := p.Now()
			ctx.Now = func() time.Duration { return p.Now() - phaseStart }
			ctx.FS = r.FS.NewClient(node, p)
			if r.CollectLatencies {
				// The simulator runs one process at a time, so the
				// shared histogram map needs no locking.
				ctx.FS = fs.NewLatencyClient(ctx.FS,
					func() time.Duration { return p.Now() },
					func(kind fs.OpKind, d time.Duration) {
						if !benchActive {
							return
						}
						h := latencies[kind]
						if h == nil {
							h = &results.Histogram{}
							latencies[kind] = h
						}
						h.Add(d)
					})
			}
			ctxs[rank] = ctx

			if err := plugin.Prepare(ctx); err != nil {
				errs[rank] = fmt.Sprintf("prepare: %v", err)
			}
			barrier.Wait(p)

			benchStart := p.Now()
			ctx.Now = func() time.Duration { return p.Now() - benchStart }
			ctx.Deadline = r.Params.TimeLimit
			if errs[rank] == "" {
				if err := plugin.DoBench(ctx); err != nil {
					errs[rank] = fmt.Sprintf("dobench: %v", err)
				}
			}
			finishedAt[rank] = p.Now() - benchStart
			done[rank] = true
			barrier.Wait(p)

			if err := plugin.Cleanup(ctx); err != nil && errs[rank] == "" {
				errs[rank] = fmt.Sprintf("cleanup: %v", err)
			}
			barrier.Wait(p)
		})
	}

	// Master: wait out prepare, then supervise the bench phase.
	barrier.Wait(mp)
	benchActive = true
	if r.BenchStartHook != nil {
		r.BenchStartHook(mp, MeasurementInfo{Op: plugin.Name(), Nodes: combo.Nodes, PPN: combo.PPN})
	}
	// Preallocate the per-process trace slices: with a time limit the
	// sample count is known up front; otherwise start with a page worth
	// of samples instead of growing from nil.
	sampleCap := 64
	if r.Params.TimeLimit > 0 {
		sampleCap = int(r.Params.TimeLimit/interval) + 2
	}
	traces := make([][]int64, procs)
	for i := range traces {
		traces[i] = make([]int64, 0, sampleCap)
	}
	for {
		mp.Sleep(interval)
		allDone := true
		for i, ctx := range ctxs {
			traces[i] = append(traces[i], ctx.Progress())
			if !done[i] {
				allDone = false
			}
		}
		if allDone {
			break
		}
	}
	barrier.Wait(mp) // bench end
	benchActive = false
	barrier.Wait(mp) // cleanup end

	m := &results.Measurement{
		Op:       plugin.Name(),
		Nodes:    combo.Nodes,
		PPN:      combo.PPN,
		Interval: interval,
		Errors:   errs,
	}
	if r.CollectLatencies {
		m.Latencies = make(map[string]*results.Histogram, len(latencies))
		for kind, h := range latencies {
			m.Latencies[kind.String()] = h
		}
	}
	for rank, slot := range combo.Workers {
		m.Traces = append(m.Traces, results.Trace{
			Host:       slot.Node,
			Op:         plugin.Name(),
			Proc:       rank,
			Done:       traces[rank],
			Final:      ctxs[rank].Progress(),
			FinishedAt: finishedAt[rank],
		})
	}
	return m
}

// workerDir builds "<base>/<op>-n<nodes>-p<procs>/p<rank padded to 3>"
// with a single sized allocation (the fmt.Sprintf it replaces showed up
// in measurement-setup profiles).
func workerDir(base, op string, nodes, procs, rank int) string {
	b := make([]byte, 0, len(base)+len(op)+32)
	b = append(b, base...)
	b = append(b, '/')
	b = append(b, op...)
	b = append(b, "-n"...)
	b = strconv.AppendInt(b, int64(nodes), 10)
	b = append(b, "-p"...)
	b = strconv.AppendInt(b, int64(procs), 10)
	b = append(b, "/p"...)
	if rank < 100 {
		b = append(b, '0')
	}
	if rank < 10 {
		b = append(b, '0')
	}
	b = strconv.AppendInt(b, int64(rank), 10)
	return string(b)
}

// peerRank pairs every worker with a partner on another node when
// possible (StatMultinodeFiles); with a single node the partner is simply
// the next process.
func peerRank(rank int, combo Combo) int {
	n := combo.Procs()
	if n == 1 {
		return 0
	}
	own := combo.Workers[rank].NodeIndex
	for off := 1; off < n; off++ {
		cand := (rank + off) % n
		if combo.Workers[cand].NodeIndex != own {
			return cand
		}
	}
	return (rank + 1) % n
}
