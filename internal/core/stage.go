package core

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// Stage is one segment of a long-horizon run: a named probe workload
// driven for a fixed duration of virtual time. Duration should be a
// multiple of the runner's Interval; a remainder is truncated off the
// sampling grid.
type Stage struct {
	Name     string
	Duration time.Duration
	// Op runs one foreground probe operation (i = per-probe op
	// counter). Nil uses the runner's default stat probe over the
	// files its default prepare created.
	Op func(c *Ctx, i int) error
}

// StageRunner is the long-horizon measurement harness (the
// fs-benchmark perftest shape: -clients N -interval 1m -period 3h): a
// small set of fully-simulated, throttled foreground probe processes
// runs stage after stage for hours of virtual time while the master
// samples per-interval throughput, per-probe COV, an auxiliary counter
// (the aggregate background load of internal/agg, injected into the FS
// before Run), and per-interval latency percentiles into a
// results.IntervalStat series — one Measurement per stage.
//
// It deliberately does not sweep (nodes × PPN) combinations like
// Runner: at a horizon of hours the experiment design varies load over
// *time*, not placement.
type StageRunner struct {
	Cluster *cluster.Cluster
	FS      FileSystem
	// Probes is the number of foreground processes (default 1),
	// distributed round-robin over the cluster nodes.
	Probes int
	// Interval is the sampling grid (default one minute).
	Interval time.Duration
	// Think is each probe's pause after every completed op (default one
	// second) — the throttle that keeps hours of virtual time cheap and
	// the probes observers rather than the dominant load.
	Think time.Duration
	// Label names the result set.
	Label  string
	Stages []Stage
	// Prepare, when set, replaces the default per-probe setup (mkdir +
	// a ring of stat targets). It must not call Ctx.Tick.
	Prepare func(c *Ctx) error
	// Aux, when set, is sampled at every interval boundary; the
	// per-interval delta lands in IntervalStat.Aux. The experiments
	// pass a closure over the FS's injected-background counter.
	Aux func() int64
}

// defaultProbeFiles is the size of the default probe's stat ring.
const defaultProbeFiles = 8

func defaultPrepare(c *Ctx) error {
	if err := MkdirAll(c.FS, c.Dir); err != nil {
		return err
	}
	for j := 0; j < defaultProbeFiles; j++ {
		if err := c.FS.Create(fileName(c.Dir, j)); err != nil {
			return err
		}
	}
	return nil
}

func defaultOp(c *Ctx, i int) error {
	_, err := c.FS.Stat(fileName(c.Dir, i%defaultProbeFiles))
	return err
}

// Run performs the staged run and drives the kernel to completion.
func (r *StageRunner) Run() (*results.Set, error) {
	k := r.Cluster.Kernel()
	set, err := r.Start(k)
	if err != nil {
		return nil, err
	}
	if err := k.Run(); err != nil {
		return nil, err
	}
	return set, nil
}

// stageShared is the master↔probe channel: the simulator runs one
// process at a time per kernel, and master and probes all live in the
// client domain, so plain fields need no locking (same discipline as
// Runner's latency map).
type stageShared struct {
	recording bool
	cur       *results.Histogram // current interval
	agg       *results.Histogram // whole stage
}

func (s *stageShared) record(d time.Duration) {
	if !s.recording {
		return
	}
	s.cur.Add(d)
	s.agg.Add(d)
}

// Start spawns the probes and master; the caller drives the kernel.
func (r *StageRunner) Start(k *sim.Kernel) (*results.Set, error) {
	if len(r.Stages) == 0 {
		return nil, fmt.Errorf("stagerunner: no stages")
	}
	probes := r.Probes
	if probes < 1 {
		probes = 1
	}
	interval := r.Interval
	if interval <= 0 {
		interval = time.Minute
	}
	think := r.Think
	if think <= 0 {
		think = time.Second
	}
	prepare := r.Prepare
	if prepare == nil {
		prepare = defaultPrepare
	}

	set := results.NewSet(r.Label, r.FS.Name(), interval)
	set.Environment["filesystem"] = r.FS.Name()
	set.Environment["probes"] = strconv.Itoa(probes)
	set.Environment["think"] = think.String()
	set.Environment["interval"] = interval.String()
	var total time.Duration
	for _, s := range r.Stages {
		total += s.Duration
	}
	set.Environment["stages"] = strconv.Itoa(len(r.Stages))
	set.Environment["period"] = total.String()

	nodesUsed := probes
	if n := len(r.Cluster.Nodes); nodesUsed > n {
		nodesUsed = n
	}
	ppn := (probes + nodesUsed - 1) / nodesUsed

	// Start/end barrier pair per stage; the master joins as one party.
	barrier := sim.NewBarrier(k, "stage", probes+1)
	ctxs := make([]*Ctx, probes)
	errs := make([]string, probes)
	shared := &stageShared{}

	for rank := 0; rank < probes; rank++ {
		rank := rank
		node := r.Cluster.Nodes[rank%len(r.Cluster.Nodes)]
		k.Spawn("probe-"+strconv.Itoa(rank), func(p *sim.Proc) {
			ctx := &Ctx{
				Rank:     rank,
				Workers:  probes,
				Node:     node.Name,
				NodeRank: rank / len(r.Cluster.Nodes),
				Dir:      "/probe/p" + strconv.Itoa(rank),
				Params: Params{WorkDir: "/probe", Interval: interval,
					Label: r.Label},
			}
			phaseStart := p.Now()
			ctx.Now = func() time.Duration { return p.Now() - phaseStart }
			ctx.FS = r.FS.NewClient(node, p)
			ctxs[rank] = ctx
			if err := prepare(ctx); err != nil {
				errs[rank] = fmt.Sprintf("prepare: %v", err)
			}
			for _, stage := range r.Stages {
				op := stage.Op
				if op == nil {
					op = defaultOp
				}
				barrier.Wait(p) // stage start
				start := p.Now()
				ctx.Now = func() time.Duration { return p.Now() - start }
				end := start + stage.Duration
				for i := 0; errs[rank] == "" && p.Now() < end; i++ {
					t0 := p.Now()
					if err := op(ctx, i); err != nil {
						errs[rank] = fmt.Sprintf("%s: %v", stage.Name, err)
						break
					}
					shared.record(p.Now() - t0)
					ctx.Tick()
					p.Sleep(think)
				}
				barrier.Wait(p) // stage end
			}
		})
	}

	k.Spawn("stage-master", func(mp *sim.Proc) {
		base := make([]int64, probes)
		prev := make([]int64, probes)
		rates := make([]float64, probes)
		for _, stage := range r.Stages {
			nIv := int(stage.Duration / interval)
			if nIv < 1 {
				nIv = 1
			}
			series := make([]results.IntervalStat, 0, nIv)
			traces := make([][]int64, probes)
			for i := range traces {
				traces[i] = make([]int64, 0, nIv)
			}
			shared.agg = &results.Histogram{}
			shared.cur = &results.Histogram{}
			shared.recording = true
			var prevAux int64
			if r.Aux != nil {
				prevAux = r.Aux()
			}
			copy(prev, base)
			barrier.Wait(mp) // stage start: probes run from here
			for t := 0; t < nIv; t++ {
				mp.Sleep(interval)
				var ops int64
				for i, ctx := range ctxs {
					cum := ctx.Progress() - base[i]
					traces[i] = append(traces[i], cum)
					done := ctx.Progress() - prev[i]
					prev[i] = ctx.Progress()
					ops += done
					rates[i] = float64(done) / interval.Seconds()
				}
				st := results.IntervalStat{
					T:          time.Duration(t+1) * interval,
					Ops:        ops,
					Throughput: float64(ops) / interval.Seconds(),
				}
				_, st.COV = stddevCOV(rates)
				if r.Aux != nil {
					aux := r.Aux()
					st.Aux = aux - prevAux
					prevAux = aux
				}
				st.FillPercentiles(shared.cur)
				series = append(series, st)
				shared.cur = &results.Histogram{}
			}
			shared.recording = false
			barrier.Wait(mp) // stage end: probes are now idle
			m := &results.Measurement{
				Op:       stage.Name,
				Nodes:    nodesUsed,
				PPN:      ppn,
				Interval: interval,
				Errors:   append([]string(nil), errs...),
				Series:   series,
				Latencies: map[string]*results.Histogram{
					"probe": shared.agg,
				},
			}
			for i := range ctxs {
				final := ctxs[i].Progress() - base[i]
				m.Traces = append(m.Traces, results.Trace{
					Host:       ctxs[i].Node,
					Op:         stage.Name,
					Proc:       i,
					Done:       traces[i],
					Final:      final,
					FinishedAt: time.Duration(nIv) * interval,
				})
				base[i] = ctxs[i].Progress()
			}
			set.Add(m)
		}
	})
	return set, nil
}

// stddevCOV mirrors results.stddevCOV (package-private there) for the
// master's per-interval probe-rate spread.
func stddevCOV(xs []float64) (sd, cov float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd = math.Sqrt(ss / float64(len(xs)))
	if mean > 0 {
		cov = sd / mean
	}
	return sd, cov
}
