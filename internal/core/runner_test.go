package core

import (
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/localfs"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

func TestRunnerNFSSmoke(t *testing.T) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	r := &Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       Params{ProblemSize: 200, WorkDir: "/bench", Label: "smoke"},
		SlotsPerNode: 2,
		Plugins:      []Plugin{MakeFiles{}, StatFiles{}, DeleteFiles{}},
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Plan: ppn 1 with 2 nodes + ppn 2 with 2 nodes = 4 combos, 3 ops.
	if len(set.Measurements) != 12 {
		t.Fatalf("measurements = %d, want 12", len(set.Measurements))
	}
	for _, m := range set.Measurements {
		if m.Failed() {
			t.Fatalf("measurement %s %d/%d failed: %v", m.Op, m.Nodes, m.PPN, m.Errors)
		}
		if m.TotalOps() != int64(200*m.Procs()) {
			t.Fatalf("%s %d/%d: total ops = %d, want %d",
				m.Op, m.Nodes, m.PPN, m.TotalOps(), 200*m.Procs())
		}
		a := m.Averages()
		if a.Stonewall <= 0 || a.WallClock <= 0 {
			t.Fatalf("%s: averages = %+v", m.Op, a)
		}
	}
	// All test data cleaned up.
	if n := fsys.Namespace().NumFiles(); n != 0 {
		t.Fatalf("files left behind: %d", n)
	}
}

func TestRunnerTimedMakeFiles(t *testing.T) {
	k := sim.New(2)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	r := &Runner{
		Cluster: cl,
		FS:      fsys,
		Params: Params{
			ProblemSize: 1000,
			TimeLimit:   2 * time.Second,
			WorkDir:     "/bench",
		},
		SlotsPerNode: 1,
		Plugins:      []Plugin{MakeFiles{}},
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := set.Find("MakeFiles", 2, 1)
	if m == nil {
		t.Fatal("no 2-node measurement")
	}
	if m.Failed() {
		t.Fatalf("errors: %v", m.Errors)
	}
	for _, tr := range m.Traces {
		// ~2s at >1000 creates/s/node; must far exceed one problem size.
		if tr.Final < 1000 {
			t.Fatalf("proc %d created only %d files in 2s", tr.Proc, tr.Final)
		}
		if tr.FinishedAt < 2*time.Second || tr.FinishedAt > 2200*time.Millisecond {
			t.Fatalf("proc %d finished at %v, want ~2s", tr.Proc, tr.FinishedAt)
		}
	}
}

func TestRunnerLocalFS(t *testing.T) {
	k := sim.New(3)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
	r := &Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       Params{ProblemSize: 500, WorkDir: "/shm"},
		SlotsPerNode: 4,
		Plugins:      []Plugin{OpenCloseFiles{}, MakeDirs{}},
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Measurements) != 8 {
		t.Fatalf("measurements = %d, want 8 (4 ppn x 2 ops)", len(set.Measurements))
	}
	for _, m := range set.Measurements {
		if m.Failed() {
			t.Fatalf("%s %d/%d: %v", m.Op, m.Nodes, m.PPN, m.Errors)
		}
	}
}

func TestPlacementDiscovery(t *testing.T) {
	slots := []Slot{
		{Node: "A", NodeIndex: 0, SlotOnNode: 0, GlobalID: 0},
		{Node: "A", NodeIndex: 0, SlotOnNode: 1, GlobalID: 1},
		{Node: "A", NodeIndex: 0, SlotOnNode: 2, GlobalID: 2},
		{Node: "B", NodeIndex: 1, SlotOnNode: 0, GlobalID: 3},
		{Node: "B", NodeIndex: 1, SlotOnNode: 1, GlobalID: 4},
		{Node: "B", NodeIndex: 1, SlotOnNode: 2, GlobalID: 5},
		{Node: "B", NodeIndex: 1, SlotOnNode: 3, GlobalID: 6},
	}
	p, err := Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	// Master on B (most slots), like Fig. 3.9.
	if p.Master.Node != "B" {
		t.Fatalf("master on %s, want B", p.Master.Node)
	}
	if len(p.Workers) != 6 {
		t.Fatalf("workers = %d", len(p.Workers))
	}
	// Round-robin ordering A,B,A,B,A,B.
	want := []string{"A", "B", "A", "B", "A", "B"}
	for i, w := range p.Workers {
		if w.Node != want[i] {
			t.Fatalf("worker %d on %s, want %s", i, w.Node, want[i])
		}
	}
}

func TestExecutionPlan(t *testing.T) {
	// Table 3.3: A has 2 workers, B and C have 3 each.
	slots := UniformSlots([]string{"A", "B", "C"}, 3)
	// Remove nothing: master will take one slot from A (first maximal).
	p, err := Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Plan(1, 1)
	// Worker counts: one node has 2, others 3.
	// ppn=1: nodes 1,2,3 -> 3 combos; ppn=2: 3 combos; ppn=3: 2 combos.
	if len(plan) != 8 {
		t.Fatalf("plan size = %d, want 8: %+v", len(plan), plan)
	}
	last := plan[len(plan)-1]
	if last.PPN != 3 || last.Nodes != 2 || last.Procs() != 6 {
		t.Fatalf("last combo = %+v", last)
	}
}

func TestPlanSteps(t *testing.T) {
	slots := UniformSlots([]string{"A", "B", "C", "D", "E", "F"}, 2)
	p, err := Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Plan(2, 2) // nodes 1,3,5; ppn 1 only (max 2, step 2 -> 1)
	for _, c := range plan {
		if c.PPN != 1 {
			t.Fatalf("unexpected ppn %d", c.PPN)
		}
		if c.Nodes%2 == 0 {
			t.Fatalf("unexpected node count %d with step 2", c.Nodes)
		}
	}
}

func TestMkdirAllRemoveAll(t *testing.T) {
	k := sim.New(4)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
	var failed error
	k.Spawn("t", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		if err := MkdirAll(c, "/a/b/c/d"); err != nil {
			failed = err
			return
		}
		if err := MkdirAll(c, "/a/b/c/d"); err != nil { // idempotent
			failed = err
			return
		}
		if err := c.Create("/a/b/c/d/f"); err != nil {
			failed = err
			return
		}
		if err := RemoveAll(c, "/a"); err != nil {
			failed = err
			return
		}
		if err := RemoveAll(c, "/a"); err != nil { // missing is fine
			failed = err
			return
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if failed != nil {
		t.Fatal(failed)
	}
	if fsys.Namespace().NumInodes() != 1 {
		t.Fatalf("inodes = %d, want 1 (root)", fsys.Namespace().NumInodes())
	}
}
