package core

import (
	"fmt"

	"dmetabench/internal/fs"
)

// The pre-defined benchmark plugins of Table 3.5. Each operation's
// doBench loop calls Ctx.Tick once per completed operation; the
// supervisor samples the counter on the interval grid.

// MakeFiles creates as many empty files as possible for the configured
// time limit (default 60 s), starting a fresh subdirectory every
// ProblemSize files so directory-size side effects stay bounded (§3.3.7).
type MakeFiles struct{}

// Name implements Plugin.
func (MakeFiles) Name() string { return "MakeFiles" }

// Prepare creates the working directory.
func (MakeFiles) Prepare(c *Ctx) error { return MkdirAll(c.FS, c.Dir) }

// DoBench creates files until the deadline (or ProblemSize files when no
// time limit is configured).
func (MakeFiles) DoBench(c *Ctx) error {
	limit := c.Params.ProblemSize
	if limit <= 0 {
		limit = 5000
	}
	sub := 0
	dir := subDirName(c.Dir, sub)
	if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
		return err
	}
	for i := 0; ; i++ {
		if c.Deadline > 0 {
			if c.Expired() {
				return nil
			}
		} else if i >= limit {
			return nil
		}
		if i > 0 && i%limit == 0 {
			sub++
			dir = subDirName(c.Dir, sub)
			if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
				return err
			}
		}
		if err := c.FS.Create(fileName(dir, i%limit)); err != nil {
			return err
		}
		c.Tick()
	}
}

// Cleanup removes the working directory tree.
func (MakeFiles) Cleanup(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// MakeFilesSized is MakeFiles with a payload written into every file; the
// 64- and 65-byte variants probe the WAFL inline-inode allocation
// boundary (§3.3.8).
type MakeFilesSized struct {
	Bytes int64
}

// Name implements Plugin.
func (m MakeFilesSized) Name() string { return fmt.Sprintf("MakeFiles%dbyte", m.Bytes) }

// Prepare creates the working directory.
func (m MakeFilesSized) Prepare(c *Ctx) error { return MkdirAll(c.FS, c.Dir) }

// DoBench creates files and writes the payload.
func (m MakeFilesSized) DoBench(c *Ctx) error {
	limit := c.Params.ProblemSize
	if limit <= 0 {
		limit = 5000
	}
	sub := 0
	dir := subDirName(c.Dir, sub)
	if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
		return err
	}
	for i := 0; ; i++ {
		if c.Deadline > 0 {
			if c.Expired() {
				return nil
			}
		} else if i >= limit {
			return nil
		}
		if i > 0 && i%limit == 0 {
			sub++
			dir = subDirName(c.Dir, sub)
			if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
				return err
			}
		}
		name := fileName(dir, i%limit)
		if err := c.FS.Create(name); err != nil {
			return err
		}
		h, err := c.FS.Open(name)
		if err != nil {
			return err
		}
		if err := c.FS.Write(h, m.Bytes); err != nil {
			return err
		}
		if err := c.FS.Close(h); err != nil {
			return err
		}
		c.Tick()
	}
}

// Cleanup removes the working directory tree.
func (m MakeFilesSized) Cleanup(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// MakeOnedirFiles has all processes create files in one shared directory;
// the total number created is ProblemSize, split evenly (§3.3.8). It
// exposes both client- and server-side same-directory serialization.
type MakeOnedirFiles struct{}

// Name implements Plugin.
func (MakeOnedirFiles) Name() string { return "MakeOnedirFiles" }

func onedir(c *Ctx) string { return c.Params.WorkDir + "/onedir" }

// Prepare creates the shared directory (every process tries; EEXIST is
// fine).
func (MakeOnedirFiles) Prepare(c *Ctx) error { return MkdirAll(c.FS, onedir(c)) }

// DoBench creates this process's share of the files, names partitioned
// by rank so uniqueness conflicts cannot occur.
func (MakeOnedirFiles) DoBench(c *Ctx) error {
	n := c.Params.ProblemSize / c.Workers
	dir := onedir(c)
	for i := 0; i < n; i++ {
		if err := c.FS.Create(rankFileName(dir, c.Rank, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes this process's files; rank 0 removes the directory.
func (MakeOnedirFiles) Cleanup(c *Ctx) error {
	n := c.Params.ProblemSize / c.Workers
	dir := onedir(c)
	for i := 0; i < n; i++ {
		if err := c.FS.Unlink(rankFileName(dir, c.Rank, i)); err != nil && !fs.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// MakeDirs is MakeFiles with mkdir (§3.3.8).
type MakeDirs struct{}

// Name implements Plugin.
func (MakeDirs) Name() string { return "MakeDirs" }

// Prepare creates the working directory.
func (MakeDirs) Prepare(c *Ctx) error { return MkdirAll(c.FS, c.Dir) }

// DoBench creates directories until the deadline or problem size.
func (MakeDirs) DoBench(c *Ctx) error {
	limit := c.Params.ProblemSize
	if limit <= 0 {
		limit = 5000
	}
	sub := 0
	dir := subDirName(c.Dir, sub)
	if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
		return err
	}
	for i := 0; ; i++ {
		if c.Deadline > 0 {
			if c.Expired() {
				return nil
			}
		} else if i >= limit {
			return nil
		}
		if i > 0 && i%limit == 0 {
			sub++
			dir = subDirName(c.Dir, sub)
			if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
				return err
			}
		}
		if err := c.FS.Mkdir(fileName(dir, i%limit)); err != nil {
			return err
		}
		c.Tick()
	}
}

// Cleanup removes the working directory tree.
func (MakeDirs) Cleanup(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// prepareFiles creates ProblemSize test files in the process directory.
func prepareFiles(c *Ctx) error {
	if err := MkdirAll(c.FS, c.Dir); err != nil {
		return err
	}
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Create(fileName(c.Dir, i)); err != nil && !fs.IsExist(err) {
			return err
		}
	}
	return nil
}

// cleanupFiles removes the test files and the directory.
func cleanupFiles(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// DeleteFiles measures unlink on pre-created files (§3.3.8).
type DeleteFiles struct{}

// Name implements Plugin.
func (DeleteFiles) Name() string { return "DeleteFiles" }

// Prepare creates the test files.
func (DeleteFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench unlinks every file.
func (DeleteFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Unlink(fileName(c.Dir, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the directory.
func (DeleteFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatFiles measures attribute retrieval with warm client caches.
type StatFiles struct{}

// Name implements Plugin.
func (StatFiles) Name() string { return "StatFiles" }

// Prepare creates the test files.
func (StatFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench stats every file.
func (StatFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if _, err := c.FS.Stat(fileName(c.Dir, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (StatFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatNocacheFiles drops the OS caches after preparing the files, so the
// stats must be served by the file system (§3.4.3). On AFS the persistent
// cache survives, which is precisely a finding of the thesis.
type StatNocacheFiles struct{}

// Name implements Plugin.
func (StatNocacheFiles) Name() string { return "StatNocacheFiles" }

// Prepare creates the files and drops the caches.
func (StatNocacheFiles) Prepare(c *Ctx) error {
	if err := prepareFiles(c); err != nil {
		return err
	}
	c.FS.DropCaches()
	return nil
}

// DoBench stats every file.
func (StatNocacheFiles) DoBench(c *Ctx) error { return StatFiles{}.DoBench(c) }

// Cleanup removes the files.
func (StatNocacheFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatMultinodeFiles has every process stat the files created by a peer
// process on another node, bypassing the local cache without privileged
// cache-drop operations (§3.4.3).
type StatMultinodeFiles struct{}

// Name implements Plugin.
func (StatMultinodeFiles) Name() string { return "StatMultinodeFiles" }

// Prepare creates this process's files; the peer will stat them.
func (StatMultinodeFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench stats the peer's files.
func (StatMultinodeFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if _, err := c.FS.Stat(fileName(c.PeerDir, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes this process's own files.
func (StatMultinodeFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// OpenCloseFiles measures an open/close pair per pre-created file.
type OpenCloseFiles struct{}

// Name implements Plugin.
func (OpenCloseFiles) Name() string { return "OpenCloseFiles" }

// Prepare creates the test files.
func (OpenCloseFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench opens and closes every file.
func (OpenCloseFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		h, err := c.FS.Open(fileName(c.Dir, i))
		if err != nil {
			return err
		}
		if err := c.FS.Close(h); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (OpenCloseFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// PluginByName resolves the built-in plugins by their result-file names.
func PluginByName(name string) (Plugin, error) {
	switch name {
	case "MakeFiles":
		return MakeFiles{}, nil
	case "MakeFiles64byte":
		return MakeFilesSized{Bytes: 64}, nil
	case "MakeFiles65byte":
		return MakeFilesSized{Bytes: 65}, nil
	case "MakeOnedirFiles":
		return MakeOnedirFiles{}, nil
	case "MakeDirs":
		return MakeDirs{}, nil
	case "DeleteFiles":
		return DeleteFiles{}, nil
	case "StatFiles":
		return StatFiles{}, nil
	case "StatNocacheFiles":
		return StatNocacheFiles{}, nil
	case "StatMultinodeFiles":
		return StatMultinodeFiles{}, nil
	case "OpenCloseFiles":
		return OpenCloseFiles{}, nil
	case "ReadDirStatFiles":
		return ReadDirStatFiles{}, nil
	case "RenameFiles":
		return RenameFiles{}, nil
	default:
		return nil, fmt.Errorf("unknown benchmark operation %q", name)
	}
}

// ReadDirStatFiles models the data-management scan pattern of §2.8.3
// ("ls -l", incremental backup, virus scan): each operation is a readdir
// of the working directory followed by a stat of every entry; one tick
// per scanned entry.
type ReadDirStatFiles struct{}

// Name implements Plugin.
func (ReadDirStatFiles) Name() string { return "ReadDirStatFiles" }

// Prepare creates the test files.
func (ReadDirStatFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench scans the directory and stats every entry.
func (ReadDirStatFiles) DoBench(c *Ctx) error {
	ents, err := c.FS.ReadDir(c.Dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if _, err := c.FS.Stat(c.Dir + "/" + e.Name); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (ReadDirStatFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// RenameFiles measures the atomic-rename path applications depend on for
// transactional updates (§2.6.3).
type RenameFiles struct{}

// Name implements Plugin.
func (RenameFiles) Name() string { return "RenameFiles" }

// Prepare creates the test files.
func (RenameFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench renames every file within its directory.
func (RenameFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Rename(fileName(c.Dir, i), fileName(c.Dir, i)+".moved"); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the renamed files and the directory.
func (RenameFiles) Cleanup(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Unlink(fileName(c.Dir, i) + ".moved"); err != nil && !fs.IsNotExist(err) {
			return err
		}
	}
	return RemoveAll(c.FS, c.Dir)
}
