package core

import (
	"fmt"
	"math/rand"
	"strconv"

	"dmetabench/internal/fs"
)

// The pre-defined benchmark plugins of Table 3.5. Each operation's
// doBench loop calls Ctx.Tick once per completed operation; the
// supervisor samples the counter on the interval grid.

// MakeFiles creates as many empty files as possible for the configured
// time limit (default 60 s), starting a fresh subdirectory every
// ProblemSize files so directory-size side effects stay bounded (§3.3.7).
type MakeFiles struct{}

// Name implements Plugin.
func (MakeFiles) Name() string { return "MakeFiles" }

// Prepare creates the working directory.
func (MakeFiles) Prepare(c *Ctx) error { return MkdirAll(c.FS, c.Dir) }

// DoBench creates files until the deadline (or ProblemSize files when no
// time limit is configured).
func (MakeFiles) DoBench(c *Ctx) error {
	limit := c.Params.ProblemSize
	if limit <= 0 {
		limit = 5000
	}
	sub := 0
	dir := subDirName(c.Dir, sub)
	if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
		return err
	}
	for i := 0; ; i++ {
		if c.Deadline > 0 {
			if c.Expired() {
				return nil
			}
		} else if i >= limit {
			return nil
		}
		if i > 0 && i%limit == 0 {
			sub++
			dir = subDirName(c.Dir, sub)
			if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
				return err
			}
		}
		if err := c.FS.Create(fileName(dir, i%limit)); err != nil {
			return err
		}
		c.Tick()
	}
}

// Cleanup removes the working directory tree.
func (MakeFiles) Cleanup(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// MakeFilesSized is MakeFiles with a payload written into every file; the
// 64- and 65-byte variants probe the WAFL inline-inode allocation
// boundary (§3.3.8).
type MakeFilesSized struct {
	Bytes int64
}

// Name implements Plugin.
func (m MakeFilesSized) Name() string { return fmt.Sprintf("MakeFiles%dbyte", m.Bytes) }

// Prepare creates the working directory.
func (m MakeFilesSized) Prepare(c *Ctx) error { return MkdirAll(c.FS, c.Dir) }

// DoBench creates files and writes the payload.
func (m MakeFilesSized) DoBench(c *Ctx) error {
	limit := c.Params.ProblemSize
	if limit <= 0 {
		limit = 5000
	}
	sub := 0
	dir := subDirName(c.Dir, sub)
	if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
		return err
	}
	for i := 0; ; i++ {
		if c.Deadline > 0 {
			if c.Expired() {
				return nil
			}
		} else if i >= limit {
			return nil
		}
		if i > 0 && i%limit == 0 {
			sub++
			dir = subDirName(c.Dir, sub)
			if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
				return err
			}
		}
		name := fileName(dir, i%limit)
		if err := c.FS.Create(name); err != nil {
			return err
		}
		h, err := c.FS.Open(name)
		if err != nil {
			return err
		}
		if err := c.FS.Write(h, m.Bytes); err != nil {
			return err
		}
		if err := c.FS.Close(h); err != nil {
			return err
		}
		c.Tick()
	}
}

// Cleanup removes the working directory tree.
func (m MakeFilesSized) Cleanup(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// MakeOnedirFiles has all processes create files in one shared directory;
// the total number created is ProblemSize, split evenly (§3.3.8). It
// exposes both client- and server-side same-directory serialization.
type MakeOnedirFiles struct{}

// Name implements Plugin.
func (MakeOnedirFiles) Name() string { return "MakeOnedirFiles" }

func onedir(c *Ctx) string { return c.Params.WorkDir + "/onedir" }

// Prepare creates the shared directory (every process tries; EEXIST is
// fine).
func (MakeOnedirFiles) Prepare(c *Ctx) error { return MkdirAll(c.FS, onedir(c)) }

// DoBench creates this process's share of the files, names partitioned
// by rank so uniqueness conflicts cannot occur.
func (MakeOnedirFiles) DoBench(c *Ctx) error {
	n := c.Params.ProblemSize / c.Workers
	dir := onedir(c)
	for i := 0; i < n; i++ {
		if err := c.FS.Create(rankFileName(dir, c.Rank, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes this process's files; rank 0 removes the directory.
func (MakeOnedirFiles) Cleanup(c *Ctx) error {
	n := c.Params.ProblemSize / c.Workers
	dir := onedir(c)
	for i := 0; i < n; i++ {
		if err := c.FS.Unlink(rankFileName(dir, c.Rank, i)); err != nil && !fs.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// MakeDirs is MakeFiles with mkdir (§3.3.8).
type MakeDirs struct{}

// Name implements Plugin.
func (MakeDirs) Name() string { return "MakeDirs" }

// Prepare creates the working directory.
func (MakeDirs) Prepare(c *Ctx) error { return MkdirAll(c.FS, c.Dir) }

// DoBench creates directories until the deadline or problem size.
func (MakeDirs) DoBench(c *Ctx) error {
	limit := c.Params.ProblemSize
	if limit <= 0 {
		limit = 5000
	}
	sub := 0
	dir := subDirName(c.Dir, sub)
	if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
		return err
	}
	for i := 0; ; i++ {
		if c.Deadline > 0 {
			if c.Expired() {
				return nil
			}
		} else if i >= limit {
			return nil
		}
		if i > 0 && i%limit == 0 {
			sub++
			dir = subDirName(c.Dir, sub)
			if err := c.FS.Mkdir(dir); err != nil && !fs.IsExist(err) {
				return err
			}
		}
		if err := c.FS.Mkdir(fileName(dir, i%limit)); err != nil {
			return err
		}
		c.Tick()
	}
}

// Cleanup removes the working directory tree.
func (MakeDirs) Cleanup(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// prepareFiles creates ProblemSize test files in the process directory.
func prepareFiles(c *Ctx) error {
	if err := MkdirAll(c.FS, c.Dir); err != nil {
		return err
	}
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Create(fileName(c.Dir, i)); err != nil && !fs.IsExist(err) {
			return err
		}
	}
	return nil
}

// cleanupFiles removes the test files and the directory.
func cleanupFiles(c *Ctx) error { return RemoveAll(c.FS, c.Dir) }

// DeleteFiles measures unlink on pre-created files (§3.3.8).
type DeleteFiles struct{}

// Name implements Plugin.
func (DeleteFiles) Name() string { return "DeleteFiles" }

// Prepare creates the test files.
func (DeleteFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench unlinks every file.
func (DeleteFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Unlink(fileName(c.Dir, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the directory.
func (DeleteFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatFiles measures attribute retrieval with warm client caches.
type StatFiles struct{}

// Name implements Plugin.
func (StatFiles) Name() string { return "StatFiles" }

// Prepare creates the test files.
func (StatFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench stats every file.
func (StatFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if _, err := c.FS.Stat(fileName(c.Dir, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (StatFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatNocacheFiles drops the OS caches after preparing the files, so the
// stats must be served by the file system (§3.4.3). On AFS the persistent
// cache survives, which is precisely a finding of the thesis.
type StatNocacheFiles struct{}

// Name implements Plugin.
func (StatNocacheFiles) Name() string { return "StatNocacheFiles" }

// Prepare creates the files and drops the caches.
func (StatNocacheFiles) Prepare(c *Ctx) error {
	if err := prepareFiles(c); err != nil {
		return err
	}
	c.FS.DropCaches()
	return nil
}

// DoBench stats every file.
func (StatNocacheFiles) DoBench(c *Ctx) error { return StatFiles{}.DoBench(c) }

// Cleanup removes the files.
func (StatNocacheFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatMultinodeFiles has every process stat the files created by a peer
// process on another node, bypassing the local cache without privileged
// cache-drop operations (§3.4.3).
type StatMultinodeFiles struct{}

// Name implements Plugin.
func (StatMultinodeFiles) Name() string { return "StatMultinodeFiles" }

// Prepare creates this process's files; the peer will stat them.
func (StatMultinodeFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench stats the peer's files.
func (StatMultinodeFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if _, err := c.FS.Stat(fileName(c.PeerDir, i)); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes this process's own files.
func (StatMultinodeFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// OpenCloseFiles measures an open/close pair per pre-created file.
type OpenCloseFiles struct{}

// Name implements Plugin.
func (OpenCloseFiles) Name() string { return "OpenCloseFiles" }

// Prepare creates the test files.
func (OpenCloseFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench opens and closes every file.
func (OpenCloseFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		h, err := c.FS.Open(fileName(c.Dir, i))
		if err != nil {
			return err
		}
		if err := c.FS.Close(h); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (OpenCloseFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// PluginByName resolves the built-in plugins by their result-file names.
func PluginByName(name string) (Plugin, error) {
	switch name {
	case "MakeFiles":
		return MakeFiles{}, nil
	case "MakeFiles64byte":
		return MakeFilesSized{Bytes: 64}, nil
	case "MakeFiles65byte":
		return MakeFilesSized{Bytes: 65}, nil
	case "MakeOnedirFiles":
		return MakeOnedirFiles{}, nil
	case "MakeDirs":
		return MakeDirs{}, nil
	case "DeleteFiles":
		return DeleteFiles{}, nil
	case "StatFiles":
		return StatFiles{}, nil
	case "StatNocacheFiles":
		return StatNocacheFiles{}, nil
	case "StatMultinodeFiles":
		return StatMultinodeFiles{}, nil
	case "OpenCloseFiles":
		return OpenCloseFiles{}, nil
	case "ReadDirStatFiles":
		return ReadDirStatFiles{}, nil
	case "ReadDirPlusFiles":
		return ReadDirPlusFiles{}, nil
	case "RenameFiles":
		return RenameFiles{}, nil
	case "StatMutateFiles":
		return StatMutateFiles{}, nil
	case "WideDirFiles":
		return WideDirFiles{}, nil
	case "ZipfDirFiles":
		return ZipfDirFiles{}, nil
	default:
		return nil, fmt.Errorf("unknown benchmark operation %q", name)
	}
}

// ZipfDirFiles models hot-directory skew: Projects top-level project
// subtrees each hold SubdirsPerProject directories; every operation
// draws a project — Zipf(Skew) when Skew > 1, uniform otherwise — picks
// a subdirectory uniformly, and creates a file there. The cutoff is
// strictly Skew > 1, not >= 1: math/rand's Zipf generator is defined
// only for s > 1 (NewZipf returns nil at s == 1), so a configured skew
// of exactly 1.0 deliberately degrades to the uniform draw — pinned by
// TestZipfDirFilesSkewBoundary. When MkdirEvery
// is positive the process additionally creates a fresh directory in the
// chosen project every MkdirEvery files, so namespace mutations stay
// part of the steady-state load. The draw sequence is seeded per rank,
// so identically-configured runs replay identical workloads.
//
// The project tree lives under Params.WorkDir ("/zp<j>" directly at
// the root when WorkDir is "/"). The plugin probes placement policies
// of partitioned metadata services: subtree placement keeps whole
// projects on one server (popular project = hot server), hash
// placement spreads a project's directories but pays for replicated
// directory mutations.
type ZipfDirFiles struct {
	Projects          int
	SubdirsPerProject int
	Skew              float64
	MkdirEvery        int
}

// Name implements Plugin.
func (ZipfDirFiles) Name() string { return "ZipfDirFiles" }

// zipfRoot returns the prefix the project tree lives under: the run's
// working directory, with "/" collapsing to the empty prefix so project
// subtrees sit at the namespace root (the placement-policy experiments
// rely on projects being top-level subtrees).
func zipfRoot(c *Ctx) string {
	if c.Params.WorkDir == "/" {
		return ""
	}
	return c.Params.WorkDir
}

// zipfProjDir returns "<root>/zp<j>".
func zipfProjDir(root string, j int) string {
	b := make([]byte, 0, len(root)+16)
	b = append(b, root...)
	b = append(b, "/zp"...)
	b = strconv.AppendInt(b, int64(j), 10)
	return string(b)
}

// zipfSubDir returns "<root>/zp<j>/sd<s>".
func zipfSubDir(root string, j, s int) string {
	b := make([]byte, 0, len(root)+24)
	b = append(b, root...)
	b = append(b, "/zp"...)
	b = strconv.AppendInt(b, int64(j), 10)
	b = append(b, "/sd"...)
	b = strconv.AppendInt(b, int64(s), 10)
	return string(b)
}

// zipfFileName returns "<root>/zp<j>/sd<s>/r<rank>-<i>".
func zipfFileName(root string, j, s, rank, i int) string {
	b := make([]byte, 0, len(root)+40)
	b = append(b, root...)
	b = append(b, "/zp"...)
	b = strconv.AppendInt(b, int64(j), 10)
	b = append(b, "/sd"...)
	b = strconv.AppendInt(b, int64(s), 10)
	b = append(b, "/r"...)
	b = strconv.AppendInt(b, int64(rank), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(i), 10)
	return string(b)
}

// zipfExtraDir returns "<root>/zp<j>/x<rank>-<n>" for steady-state
// mkdirs.
func zipfExtraDir(root string, j, rank, n int) string {
	b := make([]byte, 0, len(root)+32)
	b = append(b, root...)
	b = append(b, "/zp"...)
	b = strconv.AppendInt(b, int64(j), 10)
	b = append(b, "/x"...)
	b = strconv.AppendInt(b, int64(rank), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(n), 10)
	return string(b)
}

func (z ZipfDirFiles) projects() int {
	if z.Projects > 0 {
		return z.Projects
	}
	return 8
}

func (z ZipfDirFiles) subdirs() int {
	if z.SubdirsPerProject > 0 {
		return z.SubdirsPerProject
	}
	return 8
}

// Prepare creates the project tree; projects are partitioned across
// ranks so every directory is created exactly once.
func (z ZipfDirFiles) Prepare(c *Ctx) error {
	root := zipfRoot(c)
	if root != "" {
		if err := MkdirAll(c.FS, root); err != nil {
			return err
		}
	}
	for j := 0; j < z.projects(); j++ {
		if j%c.Workers != c.Rank {
			continue
		}
		if err := c.FS.Mkdir(zipfProjDir(root, j)); err != nil && !fs.IsExist(err) {
			return err
		}
		for s := 0; s < z.subdirs(); s++ {
			if err := c.FS.Mkdir(zipfSubDir(root, j, s)); err != nil && !fs.IsExist(err) {
				return err
			}
		}
	}
	return nil
}

// DoBench creates ProblemSize files into Zipf- or uniformly-chosen
// directories, mixing in mkdirs when configured.
func (z ZipfDirFiles) DoBench(c *Ctx) error {
	rng := rand.New(rand.NewSource(int64(40000 + c.Rank)))
	var zipf *rand.Zipf
	if z.Skew > 1 {
		zipf = rand.NewZipf(rng, z.Skew, 1, uint64(z.projects()-1))
	}
	root := zipfRoot(c)
	made := 0
	for i := 0; i < c.Params.ProblemSize; i++ {
		if c.Deadline > 0 && c.Expired() {
			return nil
		}
		var j int
		if zipf != nil {
			j = int(zipf.Uint64())
		} else {
			j = rng.Intn(z.projects())
		}
		s := rng.Intn(z.subdirs())
		if err := c.FS.Create(zipfFileName(root, j, s, c.Rank, i)); err != nil {
			return err
		}
		c.Tick()
		if z.MkdirEvery > 0 && (i+1)%z.MkdirEvery == 0 {
			if err := c.FS.Mkdir(zipfExtraDir(root, j, c.Rank, made)); err != nil && !fs.IsExist(err) {
				return err
			}
			made++
		}
	}
	return nil
}

// Cleanup removes the project subtrees, partitioned across ranks like
// Prepare.
func (z ZipfDirFiles) Cleanup(c *Ctx) error {
	root := zipfRoot(c)
	for j := 0; j < z.projects(); j++ {
		if j%c.Workers != c.Rank {
			continue
		}
		if err := RemoveAll(c.FS, zipfProjDir(root, j)); err != nil {
			return err
		}
	}
	return nil
}

// WideDirFiles is the mdtest shared-directory pattern at scale: every
// process hammers ONE directory shared by all ranks, creating its own
// rank-partitioned files and optionally re-stating earlier ones. It is
// the workload that defeats per-directory partitioning — all load lands
// on whichever server owns the directory — and therefore the probe for
// dynamic directory splitting (E25–E27): with splitting enabled the
// same load spreads across shards as the directory grows. Unlike
// MakeOnedirFiles it is deadline-aware (steady-state timelines, E26)
// and creates ProblemSize files per process rather than in total, so
// adding workers adds load.
type WideDirFiles struct {
	// StatEvery mixes one stat of an earlier own file per this many
	// creates when positive (the routing probe of E27); zero or
	// negative means pure creates.
	StatEvery int
}

// Name implements Plugin.
func (WideDirFiles) Name() string { return "WideDirFiles" }

// wideDir returns the shared directory.
func wideDir(c *Ctx) string {
	if c.Params.WorkDir == "/" {
		return "/wide"
	}
	return c.Params.WorkDir + "/wide"
}

// Prepare creates the shared directory (every process tries; EEXIST is
// fine).
func (WideDirFiles) Prepare(c *Ctx) error { return MkdirAll(c.FS, wideDir(c)) }

// DoBench creates this process's files in the shared directory, names
// partitioned by rank so uniqueness conflicts cannot occur, until the
// count or the deadline runs out.
func (w WideDirFiles) DoBench(c *Ctx) error {
	dir := wideDir(c)
	for i := 0; i < c.Params.ProblemSize; i++ {
		if c.Deadline > 0 && c.Expired() {
			return nil
		}
		if err := c.FS.Create(rankFileName(dir, c.Rank, i)); err != nil {
			return err
		}
		c.Tick()
		if w.StatEvery > 0 && (i+1)%w.StatEvery == 0 {
			if _, err := c.FS.Stat(rankFileName(dir, c.Rank, i/2)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Cleanup removes this process's files (the shared directory itself
// stays, like MakeOnedirFiles; a timed run may have created fewer files
// than ProblemSize, so missing ones are tolerated).
func (w WideDirFiles) Cleanup(c *Ctx) error {
	dir := wideDir(c)
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Unlink(rankFileName(dir, c.Rank, i)); err != nil {
			if fs.IsNotExist(err) {
				break // a timed run stopped here; nothing beyond exists
			}
			return err
		}
	}
	return nil
}

// ReadDirStatFiles models the data-management scan pattern of §2.8.3
// ("ls -l", incremental backup, virus scan): each operation is a readdir
// of the working directory followed by a stat of every entry; one tick
// per scanned entry.
type ReadDirStatFiles struct{}

// Name implements Plugin.
func (ReadDirStatFiles) Name() string { return "ReadDirStatFiles" }

// Prepare creates the test files.
func (ReadDirStatFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench scans the directory and stats every entry.
func (ReadDirStatFiles) DoBench(c *Ctx) error {
	ents, err := c.FS.ReadDir(c.Dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if _, err := c.FS.Stat(c.Dir + "/" + e.Name); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (ReadDirStatFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// StatMutateFiles is the cache-coherence stress load of E22–E24: every
// process stats a pool of files shared by all ranks, and every
// MutateEvery-th operation rewrites one pool file instead. On a
// coherent client cache each rewrite revokes the other nodes' leases on
// that file; on an NFS-style timeout cache it silently stales them —
// exactly the contrast the coherence experiments measure. Draw
// sequences are seeded per rank, so identically-configured runs replay
// identical workloads.
type StatMutateFiles struct {
	// Files is the shared pool size (default 200).
	Files int
	// MutateEvery issues one rewrite per this many operations when
	// positive; zero or negative disables mutations (a pure stat load),
	// like ZipfDirFiles.MkdirEvery.
	MutateEvery int
	// Skew draws pool files Zipf(Skew)-distributed when > 1 (hot files
	// are both the most cached and the most mutated), uniformly
	// otherwise.
	Skew float64
}

// Name implements Plugin.
func (StatMutateFiles) Name() string { return "StatMutateFiles" }

func (s StatMutateFiles) files() int {
	if s.Files > 0 {
		return s.Files
	}
	return 200
}

// hotDir returns the shared pool directory.
func hotDir(c *Ctx) string {
	if c.Params.WorkDir == "/" {
		return "/hot"
	}
	return c.Params.WorkDir + "/hot"
}

// hotFileName returns "<dir>/f<id>".
func hotFileName(dir string, id int) string {
	b := make([]byte, 0, len(dir)+16)
	b = append(b, dir...)
	b = append(b, "/f"...)
	b = strconv.AppendInt(b, int64(id), 10)
	return string(b)
}

// Prepare creates this rank's partition of the shared pool.
func (s StatMutateFiles) Prepare(c *Ctx) error {
	dir := hotDir(c)
	if err := MkdirAll(c.FS, dir); err != nil {
		return err
	}
	for i := c.Rank; i < s.files(); i += c.Workers {
		if err := c.FS.Create(hotFileName(dir, i)); err != nil && !fs.IsExist(err) {
			return err
		}
	}
	return nil
}

// DoBench stats (and periodically rewrites) randomly drawn pool files.
func (s StatMutateFiles) DoBench(c *Ctx) error {
	rng := rand.New(rand.NewSource(int64(8800 + c.Rank)))
	files, me := s.files(), s.MutateEvery
	var zipf *rand.Zipf
	if s.Skew > 1 {
		zipf = rand.NewZipf(rng, s.Skew, 1, uint64(files-1))
	}
	dir := hotDir(c)
	for i := 0; i < c.Params.ProblemSize; i++ {
		if c.Deadline > 0 && c.Expired() {
			return nil
		}
		id := 0
		if zipf != nil {
			id = int(zipf.Uint64())
		} else {
			id = rng.Intn(files)
		}
		name := hotFileName(dir, id)
		if me > 0 && (i+1)%me == 0 {
			h, err := c.FS.Open(name)
			if err != nil {
				return err
			}
			if err := c.FS.Write(h, 128); err != nil {
				return err
			}
			if err := c.FS.Close(h); err != nil {
				return err
			}
		} else if _, err := c.FS.Stat(name); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes this rank's partition of the pool (the shared
// directory itself stays, like MakeOnedirFiles).
func (s StatMutateFiles) Cleanup(c *Ctx) error {
	dir := hotDir(c)
	for i := c.Rank; i < s.files(); i += c.Workers {
		if err := c.FS.Unlink(hotFileName(dir, i)); err != nil && !fs.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// ReadDirPlusFiles is ReadDirStatFiles on the batched lookup path: one
// readdirplus request returns the listing with every entry's attributes
// (fs.ReadDirPlusser, with a readdir+stat fallback for file systems
// without the protocol); one tick per scanned entry.
type ReadDirPlusFiles struct{}

// Name implements Plugin.
func (ReadDirPlusFiles) Name() string { return "ReadDirPlusFiles" }

// Prepare creates the test files.
func (ReadDirPlusFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench scans the directory with attributes in one batch.
func (ReadDirPlusFiles) DoBench(c *Ctx) error {
	ents, attrs, err := fs.ReadDirPlus(c.FS, c.Dir)
	if err != nil {
		return err
	}
	for i := range ents {
		if attrs[i].Ino != ents[i].Ino {
			return fs.NewError("readdirplus", c.Dir, fs.EINVAL)
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the files.
func (ReadDirPlusFiles) Cleanup(c *Ctx) error { return cleanupFiles(c) }

// RenameFiles measures the atomic-rename path applications depend on for
// transactional updates (§2.6.3).
type RenameFiles struct{}

// Name implements Plugin.
func (RenameFiles) Name() string { return "RenameFiles" }

// Prepare creates the test files.
func (RenameFiles) Prepare(c *Ctx) error { return prepareFiles(c) }

// DoBench renames every file within its directory.
func (RenameFiles) DoBench(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Rename(fileName(c.Dir, i), fileName(c.Dir, i)+".moved"); err != nil {
			return err
		}
		c.Tick()
	}
	return nil
}

// Cleanup removes the renamed files and the directory.
func (RenameFiles) Cleanup(c *Ctx) error {
	for i := 0; i < c.Params.ProblemSize; i++ {
		if err := c.FS.Unlink(fileName(c.Dir, i) + ".moved"); err != nil && !fs.IsNotExist(err) {
			return err
		}
	}
	return RemoveAll(c.FS, c.Dir)
}
