package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"dmetabench/internal/agg"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fault"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/service"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
	"dmetabench/internal/workload"
)

// runAndSave executes one canonical Runner experiment with the given seed
// and returns the serialized result set as a map of file name to content.
// domains > 1 partitions the shard-mode simulations into that many kernel
// domains with the given worker-pool size; both are ignored for the
// non-shard modes.
func runAndSave(t *testing.T, seed int64, mode string, domains, workers int) map[string]string {
	t.Helper()
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	var r *Runner
	var grouped interface{ Group() *sim.DomainGroup }
	switch mode {
	case "shard-hash", "shard-subtree":
		cfg := shard.DefaultConfig(4)
		cfg.Domains = domains
		if mode == "shard-subtree" {
			cfg.Placement = shard.PlaceSubtree
		}
		fsys := shard.New(k, "meta", cfg)
		grouped = fsys
		r = &Runner{
			Cluster:      cl,
			FS:           fsys,
			Params:       Params{ProblemSize: 200, WorkDir: "/bench"},
			SlotsPerNode: 2,
			// ZipfDirFiles exercises broadcasts and skewed routing;
			// RenameFiles adds the migrating cross-shard path.
			Plugins: []Plugin{
				ZipfDirFiles{Projects: 6, SubdirsPerProject: 4, Skew: 1.4, MkdirEvery: 25},
				MakeFiles{}, RenameFiles{},
			},
		}
	case "shard-failover":
		// Replicated shards with a mid-run crash and restart: takeover,
		// journal replay, client retry backoff and failback must all
		// happen at identical virtual times across identically-seeded
		// runs.
		cfg := shard.DefaultConfig(4)
		cfg.Replicate = true
		cfg.TakeoverDetect = 100 * time.Millisecond
		cfg.Domains = domains
		fsys := shard.New(k, "meta", cfg)
		grouped = fsys
		plan := (&fault.Plan{}).Outage(200*time.Millisecond, 700*time.Millisecond, 1)
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 250, WorkDir: "/bench",
				TimeLimit: 1500 * time.Millisecond, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins:      []Plugin{MakeFiles{}},
			BenchStartHook: func(mp *sim.Proc, _ MeasurementInfo) {
				plan.Start(mp, fsys)
			},
		}
	case "shard-coherent":
		// Lease-coherent client caches on a replicated sharded service
		// under a mid-run crash: lease grants, revocation callbacks,
		// delegation handoffs, the takeover's epoch bump (bulk lease
		// invalidation) and the post-failover refetches must all land
		// at identical virtual times across identically-seeded runs.
		cfg := shard.DefaultConfig(4)
		cfg.Replicate = true
		cfg.CacheMode = shard.CacheLease
		cfg.TrackStaleness = true
		cfg.LeaseTTL = 2 * time.Second
		cfg.TakeoverDetect = 100 * time.Millisecond
		cfg.Domains = domains
		fsys := shard.New(k, "meta", cfg)
		grouped = fsys
		plan := (&fault.Plan{}).Outage(300*time.Millisecond, 900*time.Millisecond, 1)
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 300, WorkDir: "/bench",
				TimeLimit: 1300 * time.Millisecond, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins:      []Plugin{StatMutateFiles{Files: 48, MutateEvery: 5}, MakeFiles{}},
			BenchStartHook: func(mp *sim.Proc, _ MeasurementInfo) {
				plan.Start(mp, fsys)
			},
		}
	case "shard-split":
		// Giant-directory splitting under lease coherence and fault
		// injection: WideDirFiles pushes one shared directory over the
		// split threshold repeatedly while a shard crashes and restarts
		// mid-run, so split migrations, bounce routing, bitmap
		// revocations and a split racing the takeover/failback must all
		// land at identical virtual times across identically-seeded
		// runs.
		cfg := shard.DefaultConfig(4)
		cfg.Replicate = true
		cfg.SplitThreshold = 48
		cfg.CacheMode = shard.CacheLease
		cfg.TrackStaleness = true
		cfg.LeaseTTL = 2 * time.Second
		cfg.TakeoverDetect = 100 * time.Millisecond
		cfg.Domains = domains
		fsys := shard.New(k, "meta", cfg)
		grouped = fsys
		plan := (&fault.Plan{}).Outage(150*time.Millisecond, 800*time.Millisecond, 1)
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 300, WorkDir: "/bench",
				TimeLimit: 1400 * time.Millisecond, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins:      []Plugin{WideDirFiles{StatEvery: 7}},
			BenchStartHook: func(mp *sim.Proc, _ MeasurementInfo) {
				plan.Start(mp, fsys)
			},
		}
	case "shard-lsm":
		// LSM backend with group commit under fault injection: batched
		// flushes, deterministic compaction-pause windows, a compaction
		// racing the crash/takeover and replay priced by the backend's
		// ReplayFactor must all land at identical virtual times across
		// identically-seeded runs.
		cfg := shard.DefaultConfig(4)
		cfg.Replicate = true
		cfg.Backend = shard.BackendLSM
		cfg.LSM.CompactEvery = 32 << 10
		cfg.GroupCommitWindow = time.Millisecond
		cfg.TakeoverDetect = 100 * time.Millisecond
		cfg.Domains = domains
		fsys := shard.New(k, "meta", cfg)
		grouped = fsys
		plan := (&fault.Plan{}).Outage(200*time.Millisecond, 700*time.Millisecond, 1)
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 250, WorkDir: "/bench",
				TimeLimit: 1500 * time.Millisecond, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins:      []Plugin{MakeFiles{}},
			BenchStartHook: func(mp *sim.Proc, _ MeasurementInfo) {
				plan.Start(mp, fsys)
			},
		}
	case "shard-agg":
		// One million aggregate background clients injected as priced
		// arrival batches (Zipf popularity, diurnal modulation, flash
		// spikes, session churn) under a lease-coherent foreground
		// workload: every stochastic draw is a pure function of (seed,
		// source, tick), so the injected holds — and the queueing they
		// impose on the foreground — must land at identical virtual
		// times at any domain/worker split.
		cfg := shard.DefaultConfig(4)
		cfg.CacheMode = shard.CacheLease
		cfg.Domains = domains
		fsys := shard.New(k, "meta", cfg)
		grouped = fsys
		lanes := cfg.ShardThreads
		model := agg.Model{
			Clients:      1_000_000,
			OpsPerClient: 0.2,
			Mix:          workload.DefaultMetaMix(),
			Zipf:         agg.ZipfPop{S: 1.2, V: 1, N: 128},
			Diurnal:      agg.Diurnal{Amplitude: 0.5, Period: 800 * time.Millisecond},
			Spikes:       agg.Spikes{MeanInterval: 300 * time.Millisecond, Peak: 2, Decay: 50 * time.Millisecond},
			Churn:        agg.Churn{ActiveFrac: 0.5, SessionMean: 500 * time.Millisecond, Tick: 10 * time.Millisecond},
			Tick:         10 * time.Millisecond,
			Seed:         seed,
		}
		sources := agg.NewSources(model, cfg.NumShards, lanes,
			func(obj int) int { return obj % cfg.NumShards })
		fsys.AttachAggregate(model.Tick, func(si, lane, tick int) shard.AggregateDemand {
			d := sources[si*lanes+lane].Tick(int64(tick))
			return shard.AggregateDemand{Getattr: d.Getattr, Lookup: d.Lookup,
				Readdir: d.Readdir, Create: d.Create}
		})
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 250, WorkDir: "/bench",
				TimeLimit: 1200 * time.Millisecond, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins:      []Plugin{StatMutateFiles{Files: 32, MutateEvery: 4}, MakeFiles{}},
		}
	case "nfs-domains":
		// The single filer in its own kernel domain through the shared
		// service runtime: every RPC is a timestamped cross-domain
		// message, cache fills ride the reply legs, and mkdir/rename
		// paths capture attributes in-body. Must be byte-identical at
		// any worker count, and with Domains<=1 must match the legacy
		// synchronous model exactly.
		cfg := nfs.DefaultConfig()
		cfg.Domains = domains
		fsys := nfs.New(k, "home", cfg)
		grouped = fsys
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 250, WorkDir: "/bench",
				TimeLimit: time.Second, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins: []Plugin{
				ZipfDirFiles{Projects: 4, SubdirsPerProject: 3, Skew: 1.2, MkdirEvery: 20},
				MakeFiles{}, RenameFiles{}, StatFiles{},
			},
			CollectLatencies: true,
		}
	case "lustre-agg":
		// Domained Lustre write-back client under a million-client
		// aggregate background on the MDS: injector lanes run as daemons
		// on the MDS's domain while flush daemons, writeback windows and
		// OSS legs cross domains; the queueing the background imposes on
		// the foreground must land at identical virtual times at any
		// domain/worker split.
		cfg := lustre.DefaultConfig()
		cfg.Writeback = true
		cfg.Domains = domains
		fsys := lustre.New(k, "scratch", cfg)
		grouped = fsys
		lanes := cfg.MDSThreads
		model := agg.Model{
			Clients:      1_000_000,
			OpsPerClient: 0.05,
			Mix:          workload.DefaultMetaMix(),
			Zipf:         agg.ZipfPop{S: 1.2, V: 1, N: 128},
			Diurnal:      agg.Diurnal{Amplitude: 0.5, Period: 800 * time.Millisecond},
			Churn:        agg.Churn{ActiveFrac: 0.5, SessionMean: 500 * time.Millisecond, Tick: 10 * time.Millisecond},
			Tick:         10 * time.Millisecond,
			Seed:         seed,
		}
		sources := agg.NewSources(model, 1, lanes, func(int) int { return 0 })
		fsys.AttachAggregate(model.Tick, func(_, lane, tick int) service.Demand {
			d := sources[lane].Tick(int64(tick))
			return service.Demand{Getattr: d.Getattr, Lookup: d.Lookup,
				Readdir: d.Readdir, Create: d.Create}
		})
		r = &Runner{
			Cluster: cl,
			FS:      fsys,
			Params: Params{ProblemSize: 300, WorkDir: "/bench",
				TimeLimit: 1200 * time.Millisecond, Interval: 100 * time.Millisecond},
			SlotsPerNode: 2,
			Plugins:      []Plugin{MakeFiles{}, StatFiles{}},
		}
	case "lustre-writeback":
		cfg := lustre.DefaultConfig()
		cfg.Writeback = true
		r = &Runner{
			Cluster:      cl,
			FS:           lustre.New(k, "scratch", cfg),
			Params:       Params{ProblemSize: 400, WorkDir: "/bench"},
			SlotsPerNode: 2,
			Plugins:      []Plugin{MakeFiles{}},
		}
	default:
		r = &Runner{
			Cluster: cl,
			FS:      nfs.New(k, "home", nfs.DefaultConfig()),
			Params: Params{ProblemSize: 300, WorkDir: "/bench",
				TimeLimit: time.Second, Interval: 100 * time.Millisecond},
			SlotsPerNode:     2,
			Plugins:          []Plugin{MakeFiles{}, StatFiles{}, DeleteFiles{}},
			CollectLatencies: true,
		}
	}
	if grouped != nil && grouped.Group() != nil && workers > 0 {
		grouped.Group().Workers = workers
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	files := make(map[string]string)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	return files
}

// TestRunnerDeterministic is the safety net for the event-kernel fast
// paths: two runs with the same seed must produce byte-identical
// serialized result sets — identical traces, identical interval
// sampling, identical environment. It covers the synchronous NFS model,
// the Lustre write-back model (daemon flushers, queues, semaphore
// windows exercise every scheduling primitive), the sharded MDS
// model under both placement policies (broadcast replication, peer
// pools, Zipf routing and cross-shard migrates), the replicated
// sharded model under fault injection (crash, timer-driven takeover,
// retry backoff, restart recovery and failback), the lease-coherent
// client cache under fault injection (grants, revocation callbacks,
// delegations, crash-time epoch invalidation), and giant-directory
// splitting racing a crash/takeover (migrations, bounce routing,
// bitmap revocations).
func TestRunnerDeterministic(t *testing.T) {
	for _, mode := range []string{
		"nfs-timed", "lustre-writeback", "shard-hash", "shard-subtree",
		"shard-failover", "shard-coherent", "shard-split", "shard-lsm",
		"shard-agg", "nfs-domains", "lustre-agg",
	} {
		t.Run(mode, func(t *testing.T) {
			diffSets(t,
				runAndSave(t, 77, mode, 0, 0),
				runAndSave(t, 77, mode, 0, 0),
				"identically-seeded runs")
		})
	}
}

// diffSets fails the test if the two serialized result sets are not
// byte-identical.
func diffSets(t *testing.T, a, b map[string]string, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("file counts differ between %s: %d vs %d", what, len(a), len(b))
	}
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if a[n] != b[n] {
			t.Errorf("%s differs between %s", n, what)
		}
	}
}

// shardModes are the TestRunnerDeterministic modes that run on the
// sharded MDS model; domainModes additionally cover the NFS and Lustre
// models wired through the shared service runtime — every mode that
// supports kernel domains.
var shardModes = []string{
	"shard-hash", "shard-subtree", "shard-failover",
	"shard-coherent", "shard-split", "shard-lsm", "shard-agg",
}

var domainModes = append(append([]string{}, shardModes...),
	"nfs-domains", "lustre-agg")

// TestRunnerDeterministicDomains is the parallel-DES determinism matrix:
// every shard mode of TestRunnerDeterministic is run partitioned into 5
// kernel domains (4 shard domains + the client domain) and byte-diffed
// between a single worker thread and a full pool. Takeovers, lease
// revocations, splits and LSM compactions must all land at identical
// virtual times no matter how the domains are scheduled onto OS threads.
func TestRunnerDeterministicDomains(t *testing.T) {
	for _, mode := range domainModes {
		t.Run(mode, func(t *testing.T) {
			diffSets(t,
				runAndSave(t, 77, mode, 5, 1),
				runAndSave(t, 77, mode, 5, 8),
				"1-worker and 8-worker domained runs")
		})
	}
}

// TestRunnerDomainsDisabledIsLegacy pins the compatibility contract:
// Domains<=1 must be byte-identical to the single-heap kernel, so the
// committed experiment corpus stays reproducible with the feature off.
func TestRunnerDomainsDisabledIsLegacy(t *testing.T) {
	for _, mode := range domainModes {
		t.Run(mode, func(t *testing.T) {
			diffSets(t,
				runAndSave(t, 77, mode, 0, 0),
				runAndSave(t, 77, mode, 1, 1),
				"Domains=0 and Domains=1 runs")
		})
	}
}
