package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

// runAndSave executes one canonical Runner experiment with the given seed
// and returns the serialized result set as a map of file name to content.
func runAndSave(t *testing.T, seed int64, wb bool) map[string]string {
	t.Helper()
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	var r *Runner
	if wb {
		cfg := lustre.DefaultConfig()
		cfg.Writeback = true
		r = &Runner{
			Cluster:      cl,
			FS:           lustre.New(k, "scratch", cfg),
			Params:       Params{ProblemSize: 400, WorkDir: "/bench"},
			SlotsPerNode: 2,
			Plugins:      []Plugin{MakeFiles{}},
		}
	} else {
		r = &Runner{
			Cluster: cl,
			FS:      nfs.New(k, "home", nfs.DefaultConfig()),
			Params: Params{ProblemSize: 300, WorkDir: "/bench",
				TimeLimit: time.Second, Interval: 100 * time.Millisecond},
			SlotsPerNode:     2,
			Plugins:          []Plugin{MakeFiles{}, StatFiles{}, DeleteFiles{}},
			CollectLatencies: true,
		}
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	files := make(map[string]string)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	return files
}

// TestRunnerDeterministic is the safety net for the event-kernel fast
// paths: two runs with the same seed must produce byte-identical
// serialized result sets — identical traces, identical interval
// sampling, identical environment. It covers both the synchronous NFS
// model and the Lustre write-back model (daemon flushers, queues,
// semaphore windows exercise every scheduling primitive).
func TestRunnerDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		wb   bool
	}{
		{"nfs-timed", false},
		{"lustre-writeback", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := runAndSave(t, 77, tc.wb)
			b := runAndSave(t, 77, tc.wb)
			if len(a) != len(b) {
				t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
			}
			names := make([]string, 0, len(a))
			for n := range a {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				if a[n] != b[n] {
					t.Errorf("%s differs between identically-seeded runs", n)
				}
			}
		})
	}
}
