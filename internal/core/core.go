// Package core implements DMetabench, the distributed metadata benchmark
// framework that is the primary contribution of the thesis (Chapter 3).
//
// The framework executes metadata operation plugins in three phases
// (prepare / doBench / cleanup) separated by barriers, across a sweep of
// (nodes × processes-per-node) combinations derived from an MPI-style
// placement discovery, and records per-process progress on a fixed
// time-interval grid for post-run analysis (time charts, COV, stonewall
// and fixed-op averages).
package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"dmetabench/internal/fs"
)

// DefaultInterval is the progress sampling interval (§3.3.3: 0.1 s).
const DefaultInterval = 100 * time.Millisecond

// Params are the explicit benchmark parameters of §3.3.5.
type Params struct {
	// ProblemSize is the per-process operation count for fixed-size
	// benchmarks, and the per-directory file limit for timed ones
	// (§3.3.7: a new subdirectory is started every ProblemSize files).
	ProblemSize int
	// TimeLimit makes the doBench phase run for a fixed duration
	// instead of a fixed count (MakeFiles runs for 60 s).
	TimeLimit time.Duration
	// WorkDir is the common target directory.
	WorkDir string
	// PathList optionally assigns one working directory per process, in
	// worker order, for namespace-aggregated file systems (§3.3.6).
	PathList []string
	// Interval is the sampling grid; zero means DefaultInterval.
	Interval time.Duration
	// NodeStep / PPNStep thin out the execution plan (§3.3.5).
	NodeStep int
	PPNStep  int
	// Label names the result set.
	Label string
}

func (p Params) interval() time.Duration {
	if p.Interval <= 0 {
		return DefaultInterval
	}
	return p.Interval
}

// Ctx is the per-process context handed to plugin phases. It is
// deliberately independent of the execution substrate so the same plugin
// code runs inside the simulator and in real mode.
type Ctx struct {
	// FS is the file system client bound to this process.
	FS fs.Client
	// Rank is the process index within this measurement (0-based).
	Rank int
	// Workers is the number of processes in this measurement.
	Workers int
	// Node names the OS instance this process runs on.
	Node string
	// NodeRank is the index of this process within its node.
	NodeRank int
	// Dir is this process's working directory.
	Dir string
	// PeerDir is the working directory of this process's partner on
	// another node (used by StatMultinodeFiles, §3.4.3).
	PeerDir string
	// Params echoes the run parameters.
	Params Params
	// Now returns the time since the start of the doBench phase; during
	// prepare/cleanup it is measured from the phase start.
	Now func() time.Duration
	// Deadline is the doBench end time (0 = none).
	Deadline time.Duration

	progress atomic.Int64
}

// Tick records one completed operation; the supervisor reads the counter
// concurrently.
func (c *Ctx) Tick() { c.progress.Add(1) }

// Progress returns the number of completed operations.
func (c *Ctx) Progress() int64 { return c.progress.Load() }

// Expired reports whether the time limit of a timed benchmark has been
// reached.
func (c *Ctx) Expired() bool {
	return c.Deadline > 0 && c.Now() >= c.Deadline
}

// Plugin is one benchmark operation (§3.3.3). Implementations must be
// stateless across processes: any per-process state lives in the Ctx or
// in local variables, because every process runs its own phase calls.
type Plugin interface {
	// Name is the operation name used in result files.
	Name() string
	// Prepare establishes preconditions (test files, directories).
	Prepare(c *Ctx) error
	// DoBench runs the measured operation loop, calling c.Tick after
	// every completed operation.
	DoBench(c *Ctx) error
	// Cleanup removes test data.
	Cleanup(c *Ctx) error
}

// MkdirAll creates path and its missing parents via the client,
// tolerating concurrently created components. It attempts the mkdir
// rather than testing with Stat first: §2.6.3 notes that with cached
// (possibly negative) directory entries "the only way to check the
// existence of a file is to try to open it" — the same applies here.
func MkdirAll(c fs.Client, p string) error {
	if p == "/" || p == "" {
		return nil
	}
	err := c.Mkdir(p)
	switch {
	case err == nil || fs.IsExist(err):
		return nil
	case fs.IsNotExist(err):
		parent := parentOf(p)
		if parent == p {
			return err
		}
		if perr := MkdirAll(c, parent); perr != nil {
			return perr
		}
		err = c.Mkdir(p)
		if fs.IsExist(err) {
			return nil
		}
		return err
	default:
		return err
	}
}

func parentOf(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "/"
}

// RemoveAll removes the subtree rooted at p via the client. Missing paths
// are not an error.
func RemoveAll(c fs.Client, p string) error {
	a, err := c.Stat(p)
	if fs.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if a.Type != fs.TypeDirectory {
		return c.Unlink(p)
	}
	ents, err := c.ReadDir(p)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if err := RemoveAll(c, p+"/"+e.Name); err != nil {
			return err
		}
	}
	return c.Rmdir(p)
}

// fileName returns the canonical test file name for index i. It is the
// innermost call of every per-operation loop, so it builds the path with
// a single sized allocation instead of fmt.Sprintf.
func fileName(dir string, i int) string {
	b := make([]byte, 0, len(dir)+12)
	b = append(b, dir...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(i), 10)
	return string(b)
}

// subDirName returns the per-ProblemSize subdirectory dir/s<n>.
func subDirName(dir string, n int) string {
	b := make([]byte, 0, len(dir)+13)
	b = append(b, dir...)
	b = append(b, '/', 's')
	b = strconv.AppendInt(b, int64(n), 10)
	return string(b)
}

// rankFileName returns the rank-partitioned file name dir/r<rank>-<i>
// used by shared-directory workloads.
func rankFileName(dir string, rank, i int) string {
	b := make([]byte, 0, len(dir)+24)
	b = append(b, dir...)
	b = append(b, '/', 'r')
	b = strconv.AppendInt(b, int64(rank), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(i), 10)
	return string(b)
}
