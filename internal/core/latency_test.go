package core

import (
	"testing"

	"dmetabench/internal/cluster"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

func TestRunnerCollectsLatencies(t *testing.T) {
	k := sim.New(9)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	cfg := nfs.DefaultConfig()
	fsys := nfs.New(k, "home", cfg)
	r := &Runner{
		Cluster:          cl,
		FS:               fsys,
		Params:           Params{ProblemSize: 300, WorkDir: "/bench"},
		SlotsPerNode:     1,
		Plugins:          []Plugin{MakeFiles{}},
		Filter:           func(c Combo) bool { return c.Nodes == 2 },
		CollectLatencies: true,
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := set.Find("MakeFiles", 2, 1)
	if m == nil || m.Failed() {
		t.Fatalf("measurement: %+v", m)
	}
	h := m.Latencies["create"]
	if h == nil {
		t.Fatalf("no create histogram; have %v", m.Latencies)
	}
	// Every benchmark create observed (2 procs x 300 ops); prepare and
	// cleanup operations excluded.
	if h.Count() != 600 {
		t.Fatalf("create observations = %d, want 600", h.Count())
	}
	// Every create pays at least one network round trip plus service.
	min := 2*cfg.OneWayLatency + cfg.CreateService
	if h.Min() < min {
		t.Fatalf("min create latency %v below floor %v", h.Min(), min)
	}
	if h.Percentile(0.5) < h.Min() {
		t.Fatalf("p50 %v below min %v", h.Percentile(0.5), h.Min())
	}
	// Cleanup unlinks must not appear.
	if m.Latencies["unlink"] != nil {
		t.Fatal("cleanup-phase unlinks leaked into bench histograms")
	}
}
