package core

import "testing"

// Placement discovery (Fig. 3.9) has three edge cases the experiments
// rely on implicitly: the master tie-break on equal slot counts, the
// removal of a node whose only slot became the master, and the
// round-robin worker order when nodes contribute unequal slot counts.

func TestDiscoverMasterTieBreak(t *testing.T) {
	// Equal slot counts everywhere: the master must come from the first
	// node in appearance order, and it takes that node's last slot.
	slots := UniformSlots([]string{"n0", "n1", "n2"}, 2)
	p, err := Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.Master.Node != "n0" {
		t.Errorf("master on %s, want n0 (first node on tie)", p.Master.Node)
	}
	if p.Master.SlotOnNode != 1 {
		t.Errorf("master took slot %d of its node, want the last (1)", p.Master.SlotOnNode)
	}
	// Every node keeps its remaining workers.
	if len(p.Workers) != 5 {
		t.Errorf("worker count = %d, want 5", len(p.Workers))
	}
	if len(p.PerNode["n0"]) != 1 || len(p.PerNode["n1"]) != 2 || len(p.PerNode["n2"]) != 2 {
		t.Errorf("per-node worker counts = %d/%d/%d, want 1/2/2",
			len(p.PerNode["n0"]), len(p.PerNode["n1"]), len(p.PerNode["n2"]))
	}
}

func TestDiscoverMasterNodeRemovedWhenLastSlotTaken(t *testing.T) {
	// The big node has the single largest slot count but only one slot:
	// after the master claims it the node must vanish from the worker
	// ordering entirely.
	slots := []Slot{
		{Node: "small0", NodeIndex: 0, SlotOnNode: 0, GlobalID: 0},
		{Node: "big", NodeIndex: 1, SlotOnNode: 0, GlobalID: 1},
		{Node: "big", NodeIndex: 1, SlotOnNode: 1, GlobalID: 2},
	}
	// "big" has 2 slots vs 1 — master goes there; removing one slot
	// leaves one worker on big.
	p, err := Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.Master.Node != "big" {
		t.Fatalf("master on %s, want big", p.Master.Node)
	}
	if len(p.PerNode["big"]) != 1 {
		t.Errorf("big retains %d workers, want 1", len(p.PerNode["big"]))
	}

	// Now give big exactly one slot: the master consumes it and the
	// node must be deleted from PerNode and NodeOrder.
	slots = []Slot{
		{Node: "a", NodeIndex: 0, SlotOnNode: 0, GlobalID: 0},
		{Node: "solo", NodeIndex: 1, SlotOnNode: 0, GlobalID: 1},
		{Node: "solo", NodeIndex: 1, SlotOnNode: 1, GlobalID: 2},
		{Node: "b", NodeIndex: 2, SlotOnNode: 0, GlobalID: 3},
	}
	// solo has the most slots (2); master takes its last slot, one
	// worker remains.
	p, err = Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.Master.Node != "solo" {
		t.Fatalf("master on %s, want solo", p.Master.Node)
	}

	// Single-slot master node: build it explicitly with a tie the first
	// node wins, then verify removal.
	slots = []Slot{
		{Node: "only", NodeIndex: 0, SlotOnNode: 0, GlobalID: 0},
		{Node: "w", NodeIndex: 1, SlotOnNode: 0, GlobalID: 1},
	}
	p, err = Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.Master.Node != "only" {
		t.Fatalf("master on %s, want only", p.Master.Node)
	}
	if _, ok := p.PerNode["only"]; ok {
		t.Error("master's emptied node still present in PerNode")
	}
	for _, n := range p.NodeOrder {
		if n == "only" {
			t.Error("master's emptied node still present in NodeOrder")
		}
	}
	if len(p.Workers) != 1 || p.Workers[0].Node != "w" {
		t.Errorf("workers = %+v, want the single slot on w", p.Workers)
	}
}

func TestDiscoverRoundRobinOnUnevenNodes(t *testing.T) {
	// n0: 3 slots, n1: 1 slot, n2: 2 slots, plus a 4-slot master node.
	// Worker order must be round-robin across nodes (first one worker
	// per node, then the second from each node that still has one, ...).
	var slots []Slot
	add := func(node string, idx, count int) {
		for s := 0; s < count; s++ {
			slots = append(slots, Slot{Node: node, NodeIndex: idx, SlotOnNode: s,
				GlobalID: len(slots)})
		}
	}
	add("n0", 0, 3)
	add("n1", 1, 1)
	add("n2", 2, 2)
	add("m", 3, 4) // most slots: master lives here
	p, err := Discover(slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.Master.Node != "m" {
		t.Fatalf("master on %s, want m", p.Master.Node)
	}
	var got []string
	for _, w := range p.Workers {
		got = append(got, w.Node)
	}
	want := []string{
		"n0", "n1", "n2", "m", // round 0: one from every node
		"n0", "n2", "m", // round 1: n1 exhausted
		"n0", "m", // round 2: n2 exhausted
	}
	if len(got) != len(want) {
		t.Fatalf("worker order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("worker order %v, want %v", got, want)
		}
	}
	// Within one node the slots must appear in on-node order.
	seen := map[string]int{}
	for _, w := range p.Workers {
		if w.SlotOnNode < seen[w.Node] {
			t.Errorf("node %s slots out of order", w.Node)
		}
		seen[w.Node] = w.SlotOnNode
	}
}
