package core

import (
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/localfs"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

// pluginEnv runs one plugin's three phases as a single process on a
// local file system and returns the ops counted plus the file system for
// inspection.
func pluginEnv(t *testing.T, plugin Plugin, params Params) (int64, *localfs.FS) {
	t.Helper()
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
	var ticks int64
	k.Spawn("plugin", func(p *sim.Proc) {
		ctx := &Ctx{
			FS:      fsys.NewClient(cl.Nodes[0], p),
			Workers: 1,
			Dir:     "/w/p000",
			PeerDir: "/w/p000",
			Params:  params,
			Now:     func() time.Duration { return p.Now() },
		}
		if err := plugin.Prepare(ctx); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		if err := plugin.DoBench(ctx); err != nil {
			t.Errorf("dobench: %v", err)
			return
		}
		ticks = ctx.Progress()
		if err := plugin.Cleanup(ctx); err != nil {
			t.Errorf("cleanup: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return ticks, fsys
}

func TestEveryPluginRoundTrips(t *testing.T) {
	params := Params{ProblemSize: 50, WorkDir: "/w"}
	names := []string{
		"MakeFiles", "MakeFiles64byte", "MakeFiles65byte", "MakeOnedirFiles",
		"MakeDirs", "DeleteFiles", "StatFiles", "StatNocacheFiles",
		"StatMultinodeFiles", "OpenCloseFiles", "ReadDirStatFiles",
		"ReadDirPlusFiles", "RenameFiles", "StatMutateFiles",
		"WideDirFiles",
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			plugin, err := PluginByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if plugin.Name() != name {
				t.Fatalf("Name() = %q", plugin.Name())
			}
			ticks, fsys := pluginEnv(t, plugin, params)
			if ticks != 50 {
				t.Fatalf("ticks = %d, want 50", ticks)
			}
			// Cleanup restored an empty namespace (files gone; the
			// shared onedir may remain as an empty directory).
			if n := fsys.Namespace().NumFiles(); n != 0 {
				t.Fatalf("files left after cleanup: %d", n)
			}
			fsys.Namespace().MustBeConsistent()
		})
	}
	if _, err := PluginByName("NoSuchOp"); err == nil {
		t.Fatal("unknown plugin name accepted")
	}
}

func TestMakeFilesSubdirRotation(t *testing.T) {
	// With ProblemSize 10 and no deadline MakeFiles creates exactly 10
	// files in subdir s0; with a deadline it rotates every 10.
	k := sim.New(2)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
	k.Spawn("t", func(p *sim.Proc) {
		ctx := &Ctx{
			FS: fsys.NewClient(cl.Nodes[0], p), Workers: 1,
			Dir:    "/w/p000",
			Params: Params{ProblemSize: 10, WorkDir: "/w"},
			Now:    func() time.Duration { return p.Now() },
		}
		if err := (MakeFiles{}).Prepare(ctx); err != nil {
			t.Errorf("prepare: %v", err)
		}
		if err := (MakeFiles{}).DoBench(ctx); err != nil {
			t.Errorf("dobench: %v", err)
		}
		ents, err := ctx.FS.ReadDir("/w/p000/s0")
		if err != nil || len(ents) != 10 {
			t.Errorf("s0 entries = %d (%v)", len(ents), err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeFilesSizedWritesPayload(t *testing.T) {
	k := sim.New(3)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
	k.Spawn("t", func(p *sim.Proc) {
		ctx := &Ctx{
			FS: fsys.NewClient(cl.Nodes[0], p), Workers: 1,
			Dir:    "/w/p000",
			Params: Params{ProblemSize: 5, WorkDir: "/w"},
			Now:    func() time.Duration { return p.Now() },
		}
		plugin := MakeFilesSized{Bytes: 65}
		if err := plugin.Prepare(ctx); err != nil {
			t.Errorf("prepare: %v", err)
		}
		if err := plugin.DoBench(ctx); err != nil {
			t.Errorf("dobench: %v", err)
		}
		a, err := ctx.FS.Stat("/w/p000/s0/0")
		if err != nil || a.Size != 65 {
			t.Errorf("payload size = %d (%v)", a.Size, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStatMultinodePeerExchange(t *testing.T) {
	// Two workers on two nodes: each stats the files the peer created.
	k := sim.New(4)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	r := &Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       Params{ProblemSize: 100, WorkDir: "/bench"},
		SlotsPerNode: 1,
		Plugins:      []Plugin{StatMultinodeFiles{}},
		Filter:       func(c Combo) bool { return c.Nodes == 2 },
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := set.Find("StatMultinodeFiles", 2, 1)
	if m == nil || m.Failed() {
		t.Fatalf("measurement failed: %+v", m.Errors)
	}
	if m.TotalOps() != 200 {
		t.Fatalf("ops = %d", m.TotalOps())
	}
}
