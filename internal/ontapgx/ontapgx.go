// Package ontapgx models a namespace-aggregated clustered NFS server in
// the style of Netapp Ontap GX on the HLRB II (§4.1.3, Fig. 4.3): a
// cluster of filers, each owning a set of volumes (D-blades), fronted by
// protocol translators (N-blades) on every filer. A client mounts the
// common namespace through one filer; requests for volumes owned by
// another filer are forwarded over the cluster interconnect, costing
// roughly a quarter of the local-path efficiency — the effect §4.7
// measures with volume placement and path lists.
package ontapgx

import (
	"fmt"
	"path"
	"strings"
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
	"dmetabench/internal/storage"
)

// Config holds the tunables of the GX model.
type Config struct {
	FilerThreads  int
	OneWayLatency time.Duration
	// ClusterLatency is the one-way delay of the internal cluster
	// network used for N-blade -> remote D-blade forwarding.
	ClusterLatency time.Duration
	// NBladeService is the protocol translation cost paid on the
	// receiving filer for every request.
	NBladeService time.Duration
	// ForwardOverhead is the extra CPU cost on both filers when a
	// request is forwarded ([ECK+07] measures ~75% remote efficiency).
	ForwardOverhead time.Duration

	CreateService  time.Duration
	GetattrService time.Duration
	RemoveService  time.Duration
	MkdirService   time.Duration
	RenameService  time.Duration
	ReaddirService time.Duration

	AttrTTL   time.Duration
	DentryTTL time.Duration
	DirIndex  namespace.DirIndex
	WAFL      storage.WAFLConfig
}

// DefaultConfig approximates the 8-node FAS3050 GX cluster.
func DefaultConfig() Config {
	return Config{
		FilerThreads:    4,
		OneWayLatency:   250 * time.Microsecond,
		ClusterLatency:  80 * time.Microsecond,
		NBladeService:   30 * time.Microsecond,
		ForwardOverhead: 45 * time.Microsecond,
		CreateService:   160 * time.Microsecond,
		GetattrService:  45 * time.Microsecond,
		RemoveService:   150 * time.Microsecond,
		MkdirService:    190 * time.Microsecond,
		RenameService:   190 * time.Microsecond,
		ReaddirService:  130 * time.Microsecond,
		AttrTTL:         3 * time.Second,
		DentryTTL:       30 * time.Second,
		DirIndex:        namespace.IndexHash,
		WAFL:            storage.DefaultWAFLConfig(),
	}
}

// FS is one GX cluster namespace.
type FS struct {
	k   *sim.Kernel
	cfg Config

	filers  []*filer
	volumes map[string]*volume // VLDB: volume name -> owner
	conns   map[connKey]*simnet.Conn
	nodes   map[*cluster.Node]*nodeState
	mounts  map[*cluster.Node]int // node -> filer index it mounts through
	rpcs    int64
	// ForwardCount counts requests that crossed the cluster interconnect.
	ForwardCount int64
}

type filer struct {
	index int
	srv   *simnet.Server
	wafl  *storage.WAFL
}

type volume struct {
	name  string
	owner int
	ns    *namespace.Namespace
	locks map[fs.Ino]*sim.Mutex
}

type connKey struct {
	node  *cluster.Node
	filer int
}

type nodeState struct {
	attrs    *clientcache.AttrCache
	dentries *clientcache.DentryCache
}

// New creates a GX cluster with the given number of filers.
func New(k *sim.Kernel, name string, filers int, cfg Config) *FS {
	f := &FS{
		k:       k,
		cfg:     cfg,
		volumes: make(map[string]*volume),
		conns:   make(map[connKey]*simnet.Conn),
		nodes:   make(map[*cluster.Node]*nodeState),
		mounts:  make(map[*cluster.Node]int),
	}
	for i := 0; i < filers; i++ {
		f.filers = append(f.filers, &filer{
			index: i,
			srv:   simnet.NewServer(k, fmt.Sprintf("gx%d:%s", i, name), cfg.FilerThreads),
			wafl:  storage.NewWAFL(k, fmt.Sprintf("gx%d:%s", i, name), cfg.WAFL),
		})
	}
	return f
}

// Name identifies the model.
func (f *FS) Name() string { return "ontapgx" }

// NumFilers returns the cluster size.
func (f *FS) NumFilers() int { return len(f.filers) }

// AddVolume creates a volume owned by the given filer (round-robin when
// -1) and junctions it at /name.
func (f *FS) AddVolume(name string, owner int) {
	if owner < 0 {
		owner = len(f.volumes) % len(f.filers)
	}
	f.volumes[name] = &volume{
		name:  name,
		owner: owner,
		ns:    namespace.New(),
		locks: make(map[fs.Ino]*sim.Mutex),
	}
}

// VolumeOwner returns the filer index owning the named volume, or -1.
func (f *FS) VolumeOwner(name string) int {
	v, ok := f.volumes[name]
	if !ok {
		return -1
	}
	return v.owner
}

// MountThrough pins a client node to a specific filer's network address
// (the HLRB II distributes partitions across the 16 filer interfaces).
func (f *FS) MountThrough(n *cluster.Node, filerIndex int) {
	f.mounts[n] = filerIndex % len(f.filers)
}

// RPCCount returns the number of requests served.
func (f *FS) RPCCount() int64 { return f.rpcs }

func (f *FS) mountFiler(n *cluster.Node) int {
	idx, ok := f.mounts[n]
	if !ok {
		idx = n.Index % len(f.filers)
		f.mounts[n] = idx
	}
	return idx
}

func (f *FS) conn(n *cluster.Node, filerIdx int) *simnet.Conn {
	key := connKey{n, filerIdx}
	c, ok := f.conns[key]
	if !ok {
		c = simnet.NewConn(f.k, f.filers[filerIdx].srv, f.cfg.OneWayLatency, 0)
		f.conns[key] = c
	}
	return c
}

func (f *FS) nodeState(n *cluster.Node) *nodeState {
	s, ok := f.nodes[n]
	if !ok {
		s = &nodeState{
			attrs:    clientcache.NewAttrCache(f.cfg.AttrTTL, f.k.Now),
			dentries: clientcache.NewDentryCache(f.cfg.DentryTTL, f.k.Now),
		}
		f.nodes[n] = s
	}
	return s
}

// resolve splits an absolute path into volume and in-volume path.
func (f *FS) resolve(op, p string) (*volume, string, error) {
	trimmed := strings.TrimPrefix(path.Clean(p), "/")
	if trimmed == "" || trimmed == "." {
		return nil, "", fs.NewError(op, p, fs.EINVAL)
	}
	comps := strings.SplitN(trimmed, "/", 2)
	v, ok := f.volumes[comps[0]]
	if !ok {
		return nil, "", fs.NewError(op, p, fs.ENOENT)
	}
	sub := "/"
	if len(comps) == 2 {
		sub = "/" + comps[1]
	}
	return v, sub, nil
}

func (v *volume) dirLock(k *sim.Kernel, ino fs.Ino) *sim.Mutex {
	m, ok := v.locks[ino]
	if !ok {
		m = sim.NewMutex(k, fmt.Sprintf("gxdir:%s:%d", v.name, ino))
		v.locks[ino] = m
	}
	return m
}

// dispatch runs service at the volume's D-blade, entering the cluster at
// the node's mount filer. A request whose volume lives elsewhere pays the
// forwarding penalty: extra N-blade CPU on both filers, the cluster
// interconnect round trip, and thread occupancy on the owner.
func (f *FS) dispatch(p *sim.Proc, n *cluster.Node, v *volume, service func(sp *sim.Proc)) {
	entry := f.mountFiler(n)
	cfg := f.cfg
	f.conn(n, entry).Call(p, 180, 160, func(sp *sim.Proc) {
		sp.Sleep(cfg.NBladeService)
		f.rpcs++
		if v.owner == entry {
			service(sp)
			return
		}
		// Forwarded path: translate, hop, queue at the owner.
		f.ForwardCount++
		sp.Sleep(cfg.ForwardOverhead)
		sp.Sleep(cfg.ClusterLatency)
		owner := f.filers[v.owner]
		owner.srv.Threads.Acquire(sp)
		sp.Sleep(cfg.ForwardOverhead)
		service(sp)
		owner.srv.Threads.Release()
		sp.Sleep(cfg.ClusterLatency)
	})
}

// NewClient binds a client for one process on one node.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]*openFile)}
}

type openFile struct {
	path    string
	vol     *volume
	sub     string
	written int64
	dirty   bool
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

// modify runs one namespace-changing request against the owning D-blade.
func (c *client) modify(op, p string, svc time.Duration, apply func(sp *sim.Proc, v *volume, sub string) error) error {
	f := c.fsys
	c.node.Syscall(c.p)
	v, sub, err := f.resolve(op, p)
	if err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	owner := f.filers[v.owner]
	f.dispatch(c.p, c.node, v, func(sp *sim.Proc) {
		if dir, lerr := v.ns.Lookup(fs.ParentDir(sub)); lerr == nil {
			lock := v.dirLock(f.k, dir.Ino)
			lock.Lock(sp)
			defer lock.Unlock()
			t := float64(svc) * f.cfg.DirIndex.EntryCost(dir.NumChildren()) * owner.wafl.ServiceFactor()
			sp.Sleep(time.Duration(t))
		} else {
			sp.Sleep(svc)
		}
		err = apply(sp, v, sub)
		if err == nil {
			owner.wafl.LogMetadata(sp, 320)
		}
	})
	return err
}

// Create makes a file in the owning volume.
func (c *client) Create(p string) error {
	err := c.modify("create", p, c.fsys.cfg.CreateService, func(sp *sim.Proc, v *volume, sub string) error {
		_, e := v.ns.Create(sub, 0o644, sp.Now())
		return e
	})
	if err != nil {
		return err
	}
	if v, sub, e := c.fsys.resolve("create", p); e == nil {
		if a, e2 := v.ns.Stat(sub); e2 == nil {
			st := c.fsys.nodeState(c.node)
			st.attrs.Put(p, a)
			st.dentries.PutPositive(p, a.Ino)
		}
	}
	return nil
}

// Open resolves the path and returns a handle.
func (c *client) Open(p string) (fs.Handle, error) {
	a, err := c.Stat(p)
	if err != nil {
		return 0, err
	}
	v, sub, err := c.fsys.resolve("open", p)
	if err != nil {
		return 0, err
	}
	_ = a
	c.nextFH++
	c.handles[c.nextFH] = &openFile{path: p, vol: v, sub: sub}
	return c.nextFH, nil
}

// Close flushes dirty data (close-to-open, NFS protocol).
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	if of.dirty {
		c.flush(of)
	}
	return nil
}

// Write buffers client-side.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	of.written += n
	of.dirty = true
	return nil
}

// Fsync flushes dirty data.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	if of.dirty {
		c.flush(of)
	}
	return nil
}

func (c *client) flush(of *openFile) {
	f := c.fsys
	owner := f.filers[of.vol.owner]
	f.dispatch(c.p, c.node, of.vol, func(sp *sim.Proc) {
		sp.Sleep(time.Duration(float64(30*time.Microsecond) * float64(of.written) / 1024 * owner.wafl.ServiceFactor()))
		if node, err := of.vol.ns.Lookup(of.sub); err == nil {
			of.vol.ns.SetSize(node.Ino, node.Size+of.written, sp.Now())
		}
		owner.wafl.LogMetadata(sp, 320+of.written)
	})
	of.written = 0
	of.dirty = false
}

// Mkdir creates a directory in the owning volume.
func (c *client) Mkdir(p string) error {
	return c.modify("mkdir", p, c.fsys.cfg.MkdirService, func(sp *sim.Proc, v *volume, sub string) error {
		_, e := v.ns.Mkdir(sub, 0o755, sp.Now())
		return e
	})
}

// Rmdir removes a directory.
func (c *client) Rmdir(p string) error {
	return c.modify("rmdir", p, c.fsys.cfg.RemoveService, func(sp *sim.Proc, v *volume, sub string) error {
		return v.ns.Rmdir(sub, sp.Now())
	})
}

// Unlink removes a file.
func (c *client) Unlink(p string) error {
	err := c.modify("unlink", p, c.fsys.cfg.RemoveService, func(sp *sim.Proc, v *volume, sub string) error {
		return v.ns.Unlink(sub, sp.Now())
	})
	if err == nil {
		st := c.fsys.nodeState(c.node)
		st.attrs.Invalidate(p)
		st.dentries.Invalidate(p)
	}
	return err
}

// Rename moves within one volume; like NFS servers with separate file
// systems, a cross-volume rename returns EXDEV (§2.6.3).
func (c *client) Rename(oldPath, newPath string) error {
	f := c.fsys
	vOld, subOld, err := f.resolve("rename", oldPath)
	if err != nil {
		return err
	}
	vNew, subNew, err := f.resolve("rename", newPath)
	if err != nil {
		return err
	}
	if vOld != vNew {
		return fs.NewError("rename", newPath, fs.EXDEV)
	}
	err = c.modify("rename", oldPath, f.cfg.RenameService, func(sp *sim.Proc, v *volume, _ string) error {
		return v.ns.Rename(subOld, subNew, sp.Now())
	})
	if err == nil {
		st := f.nodeState(c.node)
		st.attrs.Invalidate(oldPath)
		st.dentries.Invalidate(oldPath)
		st.attrs.Invalidate(newPath)
		st.dentries.Invalidate(newPath)
	}
	return err
}

// Link creates a hardlink within one volume.
func (c *client) Link(oldPath, newPath string) error {
	f := c.fsys
	vOld, subOld, err := f.resolve("link", oldPath)
	if err != nil {
		return err
	}
	vNew, subNew, err := f.resolve("link", newPath)
	if err != nil {
		return err
	}
	if vOld != vNew {
		return fs.NewError("link", newPath, fs.EXDEV)
	}
	return c.modify("link", newPath, f.cfg.CreateService, func(sp *sim.Proc, v *volume, _ string) error {
		return v.ns.Link(subOld, subNew, sp.Now())
	})
}

// Symlink creates a symbolic link in the owning volume.
func (c *client) Symlink(target, linkPath string) error {
	return c.modify("symlink", linkPath, c.fsys.cfg.CreateService, func(sp *sim.Proc, v *volume, sub string) error {
		_, e := v.ns.Symlink(target, sub, sp.Now())
		return e
	})
}

// Stat serves from the attribute cache or issues a GETATTR through the
// mount filer.
func (c *client) Stat(p string) (fs.Attr, error) {
	f := c.fsys
	c.node.Syscall(c.p)
	st := f.nodeState(c.node)
	if a, ok := st.attrs.Get(p); ok {
		return a, nil
	}
	v, sub, err := f.resolve("stat", p)
	if err != nil {
		return fs.Attr{}, err
	}
	var a fs.Attr
	owner := f.filers[v.owner]
	f.dispatch(c.p, c.node, v, func(sp *sim.Proc) {
		sp.Sleep(time.Duration(float64(f.cfg.GetattrService) * owner.wafl.ServiceFactor()))
		a, err = v.ns.Stat(sub)
	})
	if err != nil {
		return fs.Attr{}, err
	}
	st.attrs.Put(p, a)
	st.dentries.PutPositive(p, a.Ino)
	return a, nil
}

// ReadDir lists a directory in the owning volume; the cluster root lists
// the volume junctions locally.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	f := c.fsys
	c.node.Syscall(c.p)
	clean := path.Clean(p)
	if clean == "/" {
		var ents []fs.DirEntry
		for name := range f.volumes {
			ents = append(ents, fs.DirEntry{Name: name, Type: fs.TypeDirectory})
		}
		return ents, nil
	}
	v, sub, err := f.resolve("readdir", p)
	if err != nil {
		return nil, err
	}
	var ents []fs.DirEntry
	f.dispatch(c.p, c.node, v, func(sp *sim.Proc) {
		ents, err = v.ns.ReadDir(sub, sp.Now())
		sp.Sleep(f.cfg.ReaddirService + time.Duration(len(ents))*time.Microsecond)
	})
	return ents, err
}

// DropCaches clears the node's caches.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
	st := c.fsys.nodeState(c.node)
	st.attrs.Clear()
	st.dentries.Clear()
}
