package ontapgx

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

func env(t *testing.T, nodes, filers int) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(nodes))
	gx := New(k, "gx", filers, DefaultConfig())
	for i := 0; i < filers; i++ {
		gx.AddVolume(fmt.Sprintf("vol%d", i), i)
	}
	return k, cl, gx
}

func run(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeOwnership(t *testing.T) {
	_, _, gx := env(t, 1, 4)
	for i := 0; i < 4; i++ {
		if got := gx.VolumeOwner(fmt.Sprintf("vol%d", i)); got != i {
			t.Fatalf("owner(vol%d) = %d", i, got)
		}
	}
	if gx.VolumeOwner("nope") != -1 {
		t.Fatal("unknown volume should report -1")
	}
}

func TestLocalFasterThanForwarded(t *testing.T) {
	k, cl, gx := env(t, 1, 4)
	gx.MountThrough(cl.Nodes[0], 0)
	var local, remote time.Duration
	run(t, k, func(p *sim.Proc) {
		c := gx.NewClient(cl.Nodes[0], p)
		c.Mkdir("/vol0/d")
		c.Mkdir("/vol2/d")
		measure := func(dir string) time.Duration {
			start := p.Now()
			for i := 0; i < 100; i++ {
				if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					t.Errorf("create: %v", err)
				}
			}
			return p.Now() - start
		}
		local = measure("/vol0/d")
		remote = measure("/vol2/d")
	})
	if remote <= local {
		t.Fatalf("forwarded creates (%v) not slower than local (%v)", remote, local)
	}
	eff := float64(local) / float64(remote)
	if eff < 0.5 || eff > 0.95 {
		t.Fatalf("remote efficiency = %.2f, want the documented ~0.75 ballpark", eff)
	}
	if gx.ForwardCount == 0 {
		t.Fatal("no forwards counted")
	}
}

func TestCrossVolumeEXDEV(t *testing.T) {
	k, cl, gx := env(t, 1, 2)
	run(t, k, func(p *sim.Proc) {
		c := gx.NewClient(cl.Nodes[0], p)
		c.Create("/vol0/f")
		if err := c.Rename("/vol0/f", "/vol1/f"); fs.CodeOf(err) != fs.EXDEV {
			t.Errorf("cross-volume rename: %v, want EXDEV", err)
		}
	})
}

func TestRootReadDirListsVolumes(t *testing.T) {
	k, cl, gx := env(t, 1, 3)
	run(t, k, func(p *sim.Proc) {
		c := gx.NewClient(cl.Nodes[0], p)
		ents, err := c.ReadDir("/")
		if err != nil || len(ents) != 3 {
			t.Errorf("root readdir: %v, %d entries", err, len(ents))
		}
	})
}

func TestWAFLBackedWrites(t *testing.T) {
	k, cl, gx := env(t, 1, 2)
	run(t, k, func(p *sim.Proc) {
		c := gx.NewClient(cl.Nodes[0], p)
		c.Create("/vol0/f")
		h, err := c.Open("/vol0/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		c.Write(h, 2048)
		if err := c.Close(h); err != nil {
			t.Fatalf("close: %v", err)
		}
		c.DropCaches()
		a, err := c.Stat("/vol0/f")
		if err != nil || a.Size != 2048 {
			t.Errorf("stat: %v %+v", err, a)
		}
	})
}

func TestMountDistribution(t *testing.T) {
	k, cl, gx := env(t, 4, 2)
	// Default mounts distribute round-robin by node index.
	run(t, k, func(p *sim.Proc) {
		for i, n := range cl.Nodes {
			c := gx.NewClient(n, p)
			if err := core_mkdirAll(c, fmt.Sprintf("/vol%d/n%d", i%2, i)); err != nil {
				t.Errorf("mkdir via node %d: %v", i, err)
			}
		}
	})
}

// core_mkdirAll is a minimal local copy to avoid importing core in a
// model test (keeps the dependency direction models <- core).
func core_mkdirAll(c fs.Client, p string) error {
	if p == "/" || p == "" {
		return nil
	}
	if _, err := c.Stat(p); err == nil {
		return nil
	}
	parent := p
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			parent = p[:i]
			break
		}
	}
	if parent != p && parent != "" {
		if err := core_mkdirAll(c, parent); err != nil {
			return err
		}
	}
	err := c.Mkdir(p)
	if fs.IsExist(err) {
		return nil
	}
	return err
}
