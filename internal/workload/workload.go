// Package workload provides metadata-relevant workload generators and
// the baseline benchmarks Chapter 3 positions DMetabench against: a
// Postmark-style mail-server macro-benchmark (§3.1.4) and a
// fileops-style single-process micro-benchmark (§3.1.6), both running on
// any fs.Client (simulated or real). File sizes follow the log-normal
// shape observed by Agrawal et al. (§2.8.2).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"dmetabench/internal/fs"
)

// SizeDist is a log-normal file size distribution.
type SizeDist struct {
	// MedianBytes is the distribution median (the log-normal location).
	MedianBytes float64
	// Sigma is the log-space standard deviation.
	Sigma float64
	// MaxBytes clips the tail (0 = unclipped).
	MaxBytes int64
}

// AgrawalYear returns the approximate file size distribution of the
// Microsoft study for the given year: the 2000 dataset had a 108 kB mean,
// the 2004 one 189 kB, with medians near 4 kB — a heavy log-normal tail.
func AgrawalYear(year int) SizeDist {
	switch {
	case year <= 2000:
		return SizeDist{MedianBytes: 3 << 10, Sigma: 2.55, MaxBytes: 1 << 31}
	case year >= 2004:
		return SizeDist{MedianBytes: 4 << 10, Sigma: 2.65, MaxBytes: 1 << 32}
	default:
		return SizeDist{MedianBytes: 3500, Sigma: 2.6, MaxBytes: 1 << 31}
	}
}

// Sample draws one file size.
func (d SizeDist) Sample(rng *rand.Rand) int64 {
	v := math.Exp(math.Log(d.MedianBytes) + d.Sigma*rng.NormFloat64())
	n := int64(v)
	if n < 0 {
		n = 0
	}
	if d.MaxBytes > 0 && n > d.MaxBytes {
		n = d.MaxBytes
	}
	return n
}

// Mean returns the analytic mean of the (unclipped) distribution.
func (d SizeDist) Mean() float64 {
	return d.MedianBytes * math.Exp(d.Sigma*d.Sigma/2)
}

// PostmarkConfig parameterizes the mail-server macro-benchmark.
type PostmarkConfig struct {
	Files        int
	Subdirs      int
	Transactions int
	// ReadBias is the probability that a transaction reads instead of
	// appends; CreateBias the probability that it creates instead of
	// deletes.
	ReadBias   float64
	CreateBias float64
	Sizes      SizeDist
	Seed       int64
}

// DefaultPostmarkConfig mirrors the published Postmark defaults scaled to
// benchmark duration.
func DefaultPostmarkConfig() PostmarkConfig {
	return PostmarkConfig{
		Files:        500,
		Subdirs:      10,
		Transactions: 2000,
		ReadBias:     0.5,
		CreateBias:   0.5,
		Sizes:        SizeDist{MedianBytes: 2048, Sigma: 1.0, MaxBytes: 64 << 10},
		Seed:         42,
	}
}

// PostmarkStats reports a Postmark run.
type PostmarkStats struct {
	Created, Deleted, Read, Appended int
	Transactions                     int
	Elapsed                          time.Duration
	TPS                              float64
}

// Postmark runs the three Postmark phases (create, transactions, delete)
// on the client; now supplies the clock (virtual or real). The benchmark
// is single-threaded by design — the thesis criticizes exactly this
// limitation (§3.1.4).
func Postmark(c fs.Client, cfg PostmarkConfig, now func() time.Duration) (PostmarkStats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var st PostmarkStats
	if err := c.Mkdir("/postmark"); err != nil && !fs.IsExist(err) {
		return st, err
	}
	for i := 0; i < cfg.Subdirs; i++ {
		if err := c.Mkdir(dirName(i)); err != nil && !fs.IsExist(err) {
			return st, err
		}
	}
	live := make(map[int]bool, cfg.Files)
	nextID := 0
	createOne := func() error {
		id := nextID
		nextID++
		name := fileName(id, cfg.Subdirs)
		if err := c.Create(name); err != nil {
			return err
		}
		h, err := c.Open(name)
		if err != nil {
			return err
		}
		if err := c.Write(h, cfg.Sizes.Sample(rng)); err != nil {
			return err
		}
		if err := c.Close(h); err != nil {
			return err
		}
		live[id] = true
		st.Created++
		return nil
	}
	pick := func() (int, bool) {
		if len(live) == 0 {
			return 0, false
		}
		n := rng.Intn(len(live))
		for id := range live {
			if n == 0 {
				return id, true
			}
			n--
		}
		return 0, false
	}

	// Phase 1: populate.
	for i := 0; i < cfg.Files; i++ {
		if err := createOne(); err != nil {
			return st, err
		}
	}
	// Phase 2: transactions.
	start := now()
	for i := 0; i < cfg.Transactions; i++ {
		if rng.Float64() < cfg.ReadBias {
			if id, ok := pick(); ok {
				if _, err := c.Stat(fileName(id, cfg.Subdirs)); err != nil {
					return st, err
				}
				st.Read++
			}
		} else {
			if id, ok := pick(); ok {
				h, err := c.Open(fileName(id, cfg.Subdirs))
				if err != nil {
					return st, err
				}
				c.Write(h, cfg.Sizes.Sample(rng)/4)
				if err := c.Close(h); err != nil {
					return st, err
				}
				st.Appended++
			}
		}
		if rng.Float64() < cfg.CreateBias {
			if err := createOne(); err != nil {
				return st, err
			}
		} else if id, ok := pick(); ok {
			if err := c.Unlink(fileName(id, cfg.Subdirs)); err != nil {
				return st, err
			}
			delete(live, id)
			st.Deleted++
		}
		st.Transactions++
	}
	st.Elapsed = now() - start
	if s := st.Elapsed.Seconds(); s > 0 {
		st.TPS = float64(st.Transactions) / s
	}
	// Phase 3: delete everything.
	for id := range live {
		if err := c.Unlink(fileName(id, cfg.Subdirs)); err != nil {
			return st, err
		}
		st.Deleted++
	}
	for i := 0; i < cfg.Subdirs; i++ {
		if err := c.Rmdir(dirName(i)); err != nil {
			return st, err
		}
	}
	if err := c.Rmdir("/postmark"); err != nil {
		return st, err
	}
	return st, nil
}

// dirName returns "/postmark/s<i>" with a single sized allocation; it
// and fileName sit inside every transaction of the Postmark loop, where
// the fmt.Sprintf pair they replace showed up in profiles.
func dirName(i int) string {
	b := make([]byte, 0, 24)
	b = append(b, "/postmark/s"...)
	b = strconv.AppendInt(b, int64(i), 10)
	return string(b)
}

// fileName returns "/postmark/s<id%subdirs>/f<id>".
func fileName(id, subdirs int) string {
	b := make([]byte, 0, 32)
	b = append(b, "/postmark/s"...)
	b = strconv.AppendInt(b, int64(id%subdirs), 10)
	b = append(b, "/f"...)
	b = strconv.AppendInt(b, int64(id), 10)
	return string(b)
}

// ScanStats reports one recursive attribute scan.
type ScanStats struct {
	// Dirs and Entries count the directories listed and the entries
	// whose attributes were retrieved.
	Dirs, Entries int
	// Batched reports whether the client served the scan through the
	// readdirplus protocol (one request per directory) rather than the
	// readdir+stat fallback (one request per entry).
	Batched bool
	Elapsed time.Duration
}

// Scan walks the tree rooted at root depth-first in name order,
// retrieving every entry's attributes — the "ls -lR"/incremental-backup
// data-management pattern of §2.8.3, and the stat-heavy load that makes
// client metadata caching pay. It uses the batched readdirplus path
// when c provides one (fs.ReadDirPlusser), falling back to one Stat per
// entry otherwise; now supplies the clock (virtual or real).
func Scan(c fs.Client, root string, now func() time.Duration) (ScanStats, error) {
	_, batched := c.(fs.ReadDirPlusser)
	st := ScanStats{Batched: batched}
	start := now()
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, attrs, err := fs.ReadDirPlus(c, dir)
		if err != nil {
			return err
		}
		st.Dirs++
		st.Entries += len(ents)
		prefix := dir
		if prefix != "/" {
			prefix += "/"
		}
		for i, e := range ents {
			if attrs[i].Type == fs.TypeDirectory {
				if err := walk(prefix + e.Name); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return st, err
	}
	st.Elapsed = now() - start
	return st, nil
}

// FileopsResult holds per-operation latencies measured by the fileops
// micro-benchmark.
type FileopsResult map[fs.OpKind]time.Duration

// Fileops measures the mean latency of each basic metadata operation with
// a single process over n files, like the IOzone fileops tool (§3.1.6).
func Fileops(c fs.Client, n int, now func() time.Duration) (FileopsResult, error) {
	res := make(FileopsResult)
	if err := c.Mkdir("/fileops"); err != nil && !fs.IsExist(err) {
		return nil, err
	}
	name := func(i int) string { return fmt.Sprintf("/fileops/f%d", i) }
	measure := func(kind fs.OpKind, op func(i int) error) error {
		start := now()
		for i := 0; i < n; i++ {
			if err := op(i); err != nil {
				return err
			}
		}
		res[kind] = (now() - start) / time.Duration(n)
		return nil
	}
	if err := measure(fs.OpCreate, func(i int) error { return c.Create(name(i)) }); err != nil {
		return nil, err
	}
	if err := measure(fs.OpStat, func(i int) error {
		_, err := c.Stat(name(i))
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure(fs.OpOpen, func(i int) error {
		h, err := c.Open(name(i))
		if err != nil {
			return err
		}
		return c.Close(h)
	}); err != nil {
		return nil, err
	}
	if err := measure(fs.OpRename, func(i int) error {
		return c.Rename(name(i), name(i)+"r")
	}); err != nil {
		return nil, err
	}
	if err := measure(fs.OpUnlink, func(i int) error { return c.Unlink(name(i) + "r") }); err != nil {
		return nil, err
	}
	if err := c.Rmdir("/fileops"); err != nil {
		return nil, err
	}
	return res, nil
}
