package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/localfs"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

func TestSizeDistShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := AgrawalYear(2004)
	const n = 200000
	var sum float64
	small := 0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 {
			t.Fatal("negative size")
		}
		if v <= 16<<10 {
			small++
		}
		sum += float64(v)
	}
	mean := sum / n
	// The 2004 study: mean ~189 kB with most files small. The clipped
	// sample mean lands in the same order of magnitude.
	if mean < 50<<10 || mean > 1<<20 {
		t.Fatalf("sample mean = %.0f bytes, want ~1e5..1e6", mean)
	}
	// Median ~4 kB: most files are small even though the mean is huge.
	if frac := float64(small) / n; frac < 0.6 {
		t.Fatalf("only %.2f of files <= 16kB; distribution not skewed", frac)
	}
	if a := d.Mean(); math.IsNaN(a) || a <= float64(d.MedianBytes) {
		t.Fatalf("analytic mean %f must exceed median", a)
	}
	if y := AgrawalYear(2000); y.Mean() >= d.Mean() {
		t.Fatalf("2000 mean (%f) should be below 2004 (%f)", y.Mean(), d.Mean())
	}
}

func TestPostmarkOnSimNFS(t *testing.T) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	cfg := DefaultPostmarkConfig()
	cfg.Files = 100
	cfg.Transactions = 300
	var st PostmarkStats
	var err error
	k.Spawn("postmark", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		st, err = Postmark(c, cfg, p.Now)
	})
	if kerr := k.Run(); kerr != nil {
		t.Fatal(kerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if st.Transactions != 300 {
		t.Fatalf("transactions = %d", st.Transactions)
	}
	if st.TPS <= 0 {
		t.Fatalf("tps = %f", st.TPS)
	}
	if st.Created == 0 || st.Deleted == 0 || st.Read == 0 || st.Appended == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Everything deleted: the namespace holds only the root again.
	if n := fsys.Namespace().NumFiles(); n != 0 {
		t.Fatalf("files left: %d", n)
	}
	if n := fsys.Namespace().NumDirs(); n != 1 {
		t.Fatalf("dirs left: %d", n)
	}
}

func TestPostmarkDeterministic(t *testing.T) {
	run := func() PostmarkStats {
		k := sim.New(5)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
		cfg := DefaultPostmarkConfig()
		cfg.Files = 50
		cfg.Transactions = 200
		var st PostmarkStats
		k.Spawn("pm", func(p *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], p)
			st, _ = Postmark(c, cfg, p.Now)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("postmark not deterministic: %+v vs %+v", a, b)
	}
}

func TestFileopsLatencies(t *testing.T) {
	k := sim.New(2)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	var res FileopsResult
	var err error
	k.Spawn("fileops", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		res, err = Fileops(c, 200, p.Now)
	})
	if kerr := k.Run(); kerr != nil {
		t.Fatal(kerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []fs.OpKind{fs.OpCreate, fs.OpStat, fs.OpOpen, fs.OpRename, fs.OpUnlink} {
		if res[kind] <= 0 {
			t.Fatalf("%v latency missing", kind)
		}
	}
	// Cached stat must be far cheaper than a create round trip.
	if res[fs.OpStat]*10 > res[fs.OpCreate] {
		t.Fatalf("stat %v vs create %v: cache not effective", res[fs.OpStat], res[fs.OpCreate])
	}
	// Rename and unlink are synchronous RPCs: at least one RTT.
	if res[fs.OpRename] < 500*time.Microsecond {
		t.Fatalf("rename latency %v below RTT", res[fs.OpRename])
	}
}
