package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/localfs"
	"dmetabench/internal/nfs"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

func TestSizeDistShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := AgrawalYear(2004)
	const n = 200000
	var sum float64
	small := 0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 {
			t.Fatal("negative size")
		}
		if v <= 16<<10 {
			small++
		}
		sum += float64(v)
	}
	mean := sum / n
	// The 2004 study: mean ~189 kB with most files small. The clipped
	// sample mean lands in the same order of magnitude.
	if mean < 50<<10 || mean > 1<<20 {
		t.Fatalf("sample mean = %.0f bytes, want ~1e5..1e6", mean)
	}
	// Median ~4 kB: most files are small even though the mean is huge.
	if frac := float64(small) / n; frac < 0.6 {
		t.Fatalf("only %.2f of files <= 16kB; distribution not skewed", frac)
	}
	if a := d.Mean(); math.IsNaN(a) || a <= float64(d.MedianBytes) {
		t.Fatalf("analytic mean %f must exceed median", a)
	}
	if y := AgrawalYear(2000); y.Mean() >= d.Mean() {
		t.Fatalf("2000 mean (%f) should be below 2004 (%f)", y.Mean(), d.Mean())
	}
}

func TestPostmarkOnSimNFS(t *testing.T) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	cfg := DefaultPostmarkConfig()
	cfg.Files = 100
	cfg.Transactions = 300
	var st PostmarkStats
	var err error
	k.Spawn("postmark", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		st, err = Postmark(c, cfg, p.Now)
	})
	if kerr := k.Run(); kerr != nil {
		t.Fatal(kerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if st.Transactions != 300 {
		t.Fatalf("transactions = %d", st.Transactions)
	}
	if st.TPS <= 0 {
		t.Fatalf("tps = %f", st.TPS)
	}
	if st.Created == 0 || st.Deleted == 0 || st.Read == 0 || st.Appended == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Everything deleted: the namespace holds only the root again.
	if n := fsys.Namespace().NumFiles(); n != 0 {
		t.Fatalf("files left: %d", n)
	}
	if n := fsys.Namespace().NumDirs(); n != 1 {
		t.Fatalf("dirs left: %d", n)
	}
}

func TestPostmarkDeterministic(t *testing.T) {
	run := func() PostmarkStats {
		k := sim.New(5)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := localfs.New(k, cl.Nodes[0], localfs.DefaultConfig())
		cfg := DefaultPostmarkConfig()
		cfg.Files = 50
		cfg.Transactions = 200
		var st PostmarkStats
		k.Spawn("pm", func(p *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], p)
			st, _ = Postmark(c, cfg, p.Now)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("postmark not deterministic: %+v vs %+v", a, b)
	}
}

func TestScanBatchedVsFallback(t *testing.T) {
	// The same tree scanned through the sharded client (readdirplus)
	// and the NFS client (readdir+stat fallback): identical coverage,
	// but the batched scan pays per directory where the fallback pays
	// per entry, so it must finish faster in virtual time.
	build := func(c fs.Client) error {
		for d := 0; d < 3; d++ {
			dir := fmt.Sprintf("/scan/d%d", d)
			if err := c.Mkdir("/scan"); err != nil && !fs.IsExist(err) {
				return err
			}
			if err := c.Mkdir(dir); err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	run := func(mk func(k *sim.Kernel, n *cluster.Node, p *sim.Proc) fs.Client) ScanStats {
		k := sim.New(3)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		var st ScanStats
		k.Spawn("scan", func(p *sim.Proc) {
			c := mk(k, cl.Nodes[0], p)
			if err := build(c); err != nil {
				t.Errorf("build: %v", err)
				return
			}
			c.DropCaches()
			var err error
			st, err = Scan(c, "/scan", p.Now)
			if err != nil {
				t.Errorf("scan: %v", err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	batched := run(func(k *sim.Kernel, n *cluster.Node, p *sim.Proc) fs.Client {
		cfg := shard.DefaultConfig(4)
		cfg.CacheMode = shard.CacheLease
		return shard.New(k, "scan", cfg).NewClient(n, p)
	})
	fallback := run(func(k *sim.Kernel, n *cluster.Node, p *sim.Proc) fs.Client {
		return nfs.New(k, "scan", nfs.DefaultConfig()).NewClient(n, p)
	})
	if !batched.Batched || fallback.Batched {
		t.Fatalf("batched flags: shard=%v nfs=%v", batched.Batched, fallback.Batched)
	}
	if batched.Dirs != 4 || batched.Entries != 63 {
		t.Fatalf("batched coverage: %d dirs, %d entries", batched.Dirs, batched.Entries)
	}
	if fallback.Dirs != batched.Dirs || fallback.Entries != batched.Entries {
		t.Fatalf("coverage differs: %+v vs %+v", batched, fallback)
	}
	if batched.Elapsed >= fallback.Elapsed {
		t.Fatalf("batched scan (%v) not faster than per-entry fallback (%v)",
			batched.Elapsed, fallback.Elapsed)
	}
}

func TestFileopsLatencies(t *testing.T) {
	k := sim.New(2)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	var res FileopsResult
	var err error
	k.Spawn("fileops", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		res, err = Fileops(c, 200, p.Now)
	})
	if kerr := k.Run(); kerr != nil {
		t.Fatal(kerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []fs.OpKind{fs.OpCreate, fs.OpStat, fs.OpOpen, fs.OpRename, fs.OpUnlink} {
		if res[kind] <= 0 {
			t.Fatalf("%v latency missing", kind)
		}
	}
	// Cached stat must be far cheaper than a create round trip.
	if res[fs.OpStat]*10 > res[fs.OpCreate] {
		t.Fatalf("stat %v vs create %v: cache not effective", res[fs.OpStat], res[fs.OpCreate])
	}
	// Rename and unlink are synchronous RPCs: at least one RTT.
	if res[fs.OpRename] < 500*time.Microsecond {
		t.Fatalf("rename latency %v below RTT", res[fs.OpRename])
	}
}
