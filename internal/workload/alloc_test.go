package workload

import "testing"

// The Postmark transaction loop builds one or two paths per operation;
// the builders must stay at exactly one allocation each (the returned
// string), like the equivalent builders in internal/core.

func TestDirNameAllocBound(t *testing.T) {
	if avg := testing.AllocsPerRun(200, func() {
		_ = dirName(137)
	}); avg > 1 {
		t.Fatalf("dirName allocated %.1f objects/op, want <= 1", avg)
	}
}

func TestFileNameAllocBound(t *testing.T) {
	if avg := testing.AllocsPerRun(200, func() {
		_ = fileName(12345, 89)
	}); avg > 1 {
		t.Fatalf("fileName allocated %.1f objects/op, want <= 1", avg)
	}
}

func TestNameContents(t *testing.T) {
	if got := dirName(7); got != "/postmark/s7" {
		t.Errorf("dirName(7) = %q", got)
	}
	if got := fileName(123, 10); got != "/postmark/s3/f123" {
		t.Errorf("fileName(123, 10) = %q", got)
	}
}
