package workload

import (
	"fmt"
	"time"

	"dmetabench/internal/fs"
)

// Andrew is the compilation-workload macro benchmark of the original AFS
// evaluation (§3.1.1): make a directory tree, populate it with source
// files, stat everything ("MakeDir / Copy / ScanDir / ReadAll" phases),
// and finally clean up. One run is one Load Unit; the phase timings show
// which metadata operations dominate a build-like workload.
type AndrewConfig struct {
	// Dirs and FilesPerDir define the source tree.
	Dirs        int
	FilesPerDir int
	// FileBytes is the size of each copied source file.
	FileBytes int64
	// ScanPasses repeats the stat-everything phase (builds stat files
	// far more often than they read them).
	ScanPasses int
}

// DefaultAndrewConfig sizes one load unit like the original script.
func DefaultAndrewConfig() AndrewConfig {
	return AndrewConfig{Dirs: 20, FilesPerDir: 20, FileBytes: 4096, ScanPasses: 2}
}

// AndrewTimings reports per-phase durations of one load unit.
type AndrewTimings struct {
	MakeDir time.Duration
	Copy    time.Duration
	ScanDir time.Duration
	ReadAll time.Duration
	Remove  time.Duration
	Total   time.Duration
}

// Andrew runs one load unit under root. now supplies the clock.
func Andrew(c fs.Client, root string, cfg AndrewConfig, now func() time.Duration) (AndrewTimings, error) {
	var t AndrewTimings
	begin := now()
	dir := func(i int) string { return fmt.Sprintf("%s/dir%d", root, i) }
	file := func(i, j int) string { return fmt.Sprintf("%s/f%d.c", dir(i), j) }

	// Phase 1: MakeDir.
	start := now()
	if err := c.Mkdir(root); err != nil && !fs.IsExist(err) {
		return t, err
	}
	for i := 0; i < cfg.Dirs; i++ {
		if err := c.Mkdir(dir(i)); err != nil && !fs.IsExist(err) {
			return t, err
		}
	}
	t.MakeDir = now() - start

	// Phase 2: Copy (create + write every source file).
	start = now()
	for i := 0; i < cfg.Dirs; i++ {
		for j := 0; j < cfg.FilesPerDir; j++ {
			if err := c.Create(file(i, j)); err != nil {
				return t, err
			}
			h, err := c.Open(file(i, j))
			if err != nil {
				return t, err
			}
			if err := c.Write(h, cfg.FileBytes); err != nil {
				return t, err
			}
			if err := c.Close(h); err != nil {
				return t, err
			}
		}
	}
	t.Copy = now() - start

	// Phase 3: ScanDir (readdir + stat every entry, repeatedly).
	start = now()
	for pass := 0; pass < cfg.ScanPasses; pass++ {
		for i := 0; i < cfg.Dirs; i++ {
			ents, err := c.ReadDir(dir(i))
			if err != nil {
				return t, err
			}
			for _, e := range ents {
				if _, err := c.Stat(dir(i) + "/" + e.Name); err != nil {
					return t, err
				}
			}
		}
	}
	t.ScanDir = now() - start

	// Phase 4: ReadAll (open/close every file, like reading sources).
	start = now()
	for i := 0; i < cfg.Dirs; i++ {
		for j := 0; j < cfg.FilesPerDir; j++ {
			h, err := c.Open(file(i, j))
			if err != nil {
				return t, err
			}
			if err := c.Close(h); err != nil {
				return t, err
			}
		}
	}
	t.ReadAll = now() - start

	// Phase 5: Remove the tree.
	start = now()
	for i := 0; i < cfg.Dirs; i++ {
		for j := 0; j < cfg.FilesPerDir; j++ {
			if err := c.Unlink(file(i, j)); err != nil {
				return t, err
			}
		}
		if err := c.Rmdir(dir(i)); err != nil {
			return t, err
		}
	}
	if err := c.Rmdir(root); err != nil {
		return t, err
	}
	t.Remove = now() - start
	t.Total = now() - begin
	return t, nil
}
