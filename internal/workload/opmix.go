package workload

// OpMix is a metadata operation mix: the fraction of an arrival stream
// that is each operation class. The classes match the priced service
// kinds of the sharded MDS (getattr/lookup point reads, readdir scans,
// create-class mutations); fractions need not sum to one — Normalized
// rescales them — so mixes can be written as easy ratios.
type OpMix struct {
	Getattr float64
	Lookup  float64
	Readdir float64
	Create  float64
}

// Normalized returns the mix rescaled to sum to one. A zero mix
// normalizes to all-getattr (the cheapest class) rather than NaN.
func (m OpMix) Normalized() OpMix {
	sum := m.Getattr + m.Lookup + m.Readdir + m.Create
	if sum <= 0 {
		return OpMix{Getattr: 1}
	}
	return OpMix{
		Getattr: m.Getattr / sum,
		Lookup:  m.Lookup / sum,
		Readdir: m.Readdir / sum,
		Create:  m.Create / sum,
	}
}

// DefaultMetaMix is the stat-heavy mix metadata studies report for
// interactive traffic (§2.8: attribute reads dominate, directory scans
// and creates trail far behind).
func DefaultMetaMix() OpMix {
	return OpMix{Getattr: 0.58, Lookup: 0.27, Readdir: 0.09, Create: 0.06}
}
