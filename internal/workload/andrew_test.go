package workload

import (
	"testing"

	"dmetabench/internal/cluster"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

func TestAndrewOnNFS(t *testing.T) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := nfs.New(k, "home", nfs.DefaultConfig())
	var tm AndrewTimings
	var err error
	k.Spawn("andrew", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		tm, err = Andrew(c, "/andrew", DefaultAndrewConfig(), p.Now)
	})
	if kerr := k.Run(); kerr != nil {
		t.Fatal(kerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]int64{
		"MakeDir": int64(tm.MakeDir), "Copy": int64(tm.Copy),
		"ScanDir": int64(tm.ScanDir), "ReadAll": int64(tm.ReadAll),
		"Remove": int64(tm.Remove),
	} {
		if d <= 0 {
			t.Fatalf("phase %s has no duration", name)
		}
	}
	// Copy dominates ScanDir: creates are synchronous RPCs while scans
	// hit warm caches — the load-unit shape of the original benchmark.
	if tm.Copy < tm.ScanDir {
		t.Fatalf("copy %v < scandir %v", tm.Copy, tm.ScanDir)
	}
	if tm.Total < tm.Copy+tm.Remove {
		t.Fatalf("total %v inconsistent", tm.Total)
	}
	// The tree is gone.
	if n := fsys.Namespace().NumFiles(); n != 0 {
		t.Fatalf("files left: %d", n)
	}
}

func TestAndrewLoadUnitsComparable(t *testing.T) {
	// One load unit on NFS vs Lustre: both complete, NFS faster on the
	// metadata-heavy phases (the §4.3 shape).
	measure := func(mkNFS bool) AndrewTimings {
		k := sim.New(2)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		var tm AndrewTimings
		k.Spawn("andrew", func(p *sim.Proc) {
			if mkNFS {
				c := nfs.New(k, "home", nfs.DefaultConfig()).NewClient(cl.Nodes[0], p)
				tm, _ = Andrew(c, "/a", DefaultAndrewConfig(), p.Now)
			} else {
				c := lustre.New(k, "scratch", lustre.DefaultConfig()).NewClient(cl.Nodes[0], p)
				tm, _ = Andrew(c, "/a", DefaultAndrewConfig(), p.Now)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return tm
	}
	nfsT, lusT := measure(true), measure(false)
	if nfsT.Copy >= lusT.Copy {
		t.Fatalf("NFS copy %v should beat Lustre %v", nfsT.Copy, lusT.Copy)
	}
}
