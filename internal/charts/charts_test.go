package charts

import (
	"strings"
	"testing"
	"time"

	"dmetabench/internal/results"
)

func sampleSeries() []Series {
	return []Series{
		{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 20, 30}},
		{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{5, 5, 5, 5}},
	}
}

func TestRenderASCII(t *testing.T) {
	out := Render("title", "xs", "ys", 40, 8, sampleSeries())
	for _, want := range []string{"title", "[xs]", "* a", "o b", "└"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Axis extremes present.
	if !strings.Contains(out, "30") {
		t.Fatalf("missing y max:\n%s", out)
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	if out := Render("t", "x", "y", 40, 8, nil); out == "" {
		t.Fatal("empty series produced nothing")
	}
	one := []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}
	if out := Render("t", "x", "y", 40, 8, one); !strings.Contains(out, "p") {
		t.Fatal("single-point series dropped")
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := SVG("NFS & Lustre <test>", "x", "y", 600, 300, sampleSeries())
	for _, want := range []string{"<svg", "</svg>", "<polyline", "NFS &amp; Lustre &lt;test&gt;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("expected one polyline per series")
	}
}

func measurement() *results.Measurement {
	return &results.Measurement{
		Op: "MakeFiles", Nodes: 2, PPN: 1, Interval: 100 * time.Millisecond,
		Traces: []results.Trace{
			{Host: "a", Op: "MakeFiles", Proc: 0, Done: []int64{100, 210, 300}, Final: 300, FinishedAt: 300 * time.Millisecond},
			{Host: "b", Op: "MakeFiles", Proc: 1, Done: []int64{90, 200, 310}, Final: 310, FinishedAt: 300 * time.Millisecond},
		},
		Errors: []string{"", ""},
	}
}

func TestTimeChart(t *testing.T) {
	out := TimeChart(measurement(), 60, 8)
	for _, want := range []string{"MakeFiles", "ops done", "COV", "ops/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestTimeChartSVG(t *testing.T) {
	out := TimeChartSVG(measurement(), 600, 200)
	if strings.Count(out, "<svg") != 3 {
		t.Fatal("expected three stacked panels")
	}
}

func TestVsProcessesAndNodes(t *testing.T) {
	pts := []results.ScalePoint{
		{Nodes: 1, PPN: 1, Procs: 1, Stonewall: 1000},
		{Nodes: 2, PPN: 1, Procs: 2, Stonewall: 1900},
		{Nodes: 4, PPN: 1, Procs: 4, Stonewall: 3500},
	}
	out := VsProcesses([]LabeledSeries{{Label: "nfs", Points: pts}}, 60, 8)
	if !strings.Contains(out, "processes") || !strings.Contains(out, "nfs") {
		t.Fatalf("bad chart:\n%s", out)
	}
	out = VsNodes([]LabeledSeries{{Label: "nfs", Points: pts}}, 1, 60, 8)
	if !strings.Contains(out, "nodes") {
		t.Fatalf("bad chart:\n%s", out)
	}
	// ppn filter drops everything for ppn=2.
	out = VsNodes([]LabeledSeries{{Label: "nfs", Points: pts}}, 2, 60, 8)
	if !strings.Contains(out, "nfs") {
		t.Fatal("legend missing even when filtered")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1.5M",
		2300:    "2.3k",
		42:      "42",
		3.14:    "3.14",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
