// Package charts renders the three DMetabench chart types of §3.3.10 —
// the combined time chart (operations completed / COV / throughput over
// time), performance vs. number of processes, and performance vs. number
// of nodes — as plain-text line charts for terminals and as standalone
// SVG documents.
package charts

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series into a width×height text grid with axes and a
// legend. X and Y ranges are derived from the data; Y always includes 0.
func Render(title, xLabel, yLabel string, width, height int, series []Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, maxY = 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	plot := func(x, y float64, marker rune) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := height - 1 - int(math.Round(y/maxY*float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[row][col] = marker
	}
	for si, s := range series {
		marker := markers[si%len(markers)]
		// Connect consecutive points with interpolated markers so the
		// lines read as lines even on a coarse grid.
		for i := 0; i < len(s.X); i++ {
			plot(s.X[i], s.Y[i], marker)
			if i > 0 {
				steps := width / 2
				for k := 1; k < steps; k++ {
					f := float64(k) / float64(steps)
					plot(s.X[i-1]+f*(s.X[i]-s.X[i-1]), s.Y[i-1]+f*(s.Y[i]-s.Y[i-1]), marker)
				}
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yTop := formatTick(maxY)
	fmt.Fprintf(&b, "%10s ┤\n", yTop)
	for i, row := range grid {
		label := strings.Repeat(" ", 10)
		if i == height/2 {
			label = fmt.Sprintf("%10s", yLabel)
		}
		fmt.Fprintf(&b, "%s │%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%10s └%s\n", formatTick(0), strings.Repeat("─", width))
	fmt.Fprintf(&b, "%11s%-*s%s\n", formatTick(minX), width-len(formatTick(maxX)), "", formatTick(maxX))
	fmt.Fprintf(&b, "%11s[%s]\n", "", xLabel)
	for si, s := range series {
		fmt.Fprintf(&b, "%11s%c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// SVG renders the series as a standalone SVG document.
func SVG(title, xLabel, yLabel string, width, height int, series []Series) string {
	const margin = 60
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, maxY = 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	colors := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	px := func(x float64) float64 {
		return margin + (x-minX)/(maxX-minX)*float64(width-2*margin)
	}
	py := func(y float64) float64 {
		return float64(height-margin) - y/maxY*float64(height-2*margin)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, escape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	// Ticks.
	for i := 0; i <= 4; i++ {
		xv := minX + (maxX-minX)*float64(i)/4
		yv := maxY * float64(i) / 4
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), height-margin+15, formatTick(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="10" text-anchor="end">%s</text>`+"\n",
			margin-5, py(yv)+3, formatTick(yv))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		width/2, height-10, escape(xLabel))
	fmt.Fprintf(&b, `<text x="15" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 15 %d)">%s</text>`+"\n",
		height/2, height/2, escape(yLabel))
	for si, s := range series {
		color := colors[si%len(colors)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
			width-margin-150, margin+15*si, color, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
