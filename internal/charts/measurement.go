package charts

import (
	"fmt"
	"strings"

	"dmetabench/internal/results"
)

// TimeChart renders the combined time chart of one measurement (Fig.
// 3.11): cumulative operations, per-process COV and total throughput,
// stacked.
func TimeChart(m *results.Measurement, width, panelHeight int) string {
	rows := m.Summary()
	n := len(rows)
	tx := make([]float64, n)
	totals := make([]float64, n)
	covs := make([]float64, n)
	thr := make([]float64, n)
	for i, r := range rows {
		tx[i] = r.T.Seconds()
		totals[i] = float64(r.TotalDone)
		covs[i] = r.COV
		thr[i] = r.Throughput
	}
	var b strings.Builder
	title := fmt.Sprintf("%s  %d nodes / %d ppn (%d procs)", m.Op, m.Nodes, m.PPN, m.Procs())
	b.WriteString(Render(title, "time s", "ops done", width, panelHeight,
		[]Series{{Name: "operations completed", X: tx, Y: totals}}))
	b.WriteString(Render("", "time s", "COV", width, panelHeight,
		[]Series{{Name: "per-process ops/s coefficient of variation", X: tx, Y: covs}}))
	b.WriteString(Render("", "time s", "ops/s", width, panelHeight,
		[]Series{{Name: "total throughput", X: tx, Y: thr}}))
	return b.String()
}

// TimeChartSVG is TimeChart as three stacked SVG groups in one document.
func TimeChartSVG(m *results.Measurement, width, panelHeight int) string {
	rows := m.Summary()
	n := len(rows)
	tx := make([]float64, n)
	totals := make([]float64, n)
	covs := make([]float64, n)
	thr := make([]float64, n)
	for i, r := range rows {
		tx[i] = r.T.Seconds()
		totals[i] = float64(r.TotalDone)
		covs[i] = r.COV
		thr[i] = r.Throughput
	}
	title := fmt.Sprintf("%s %d nodes / %d ppn", m.Op, m.Nodes, m.PPN)
	var b strings.Builder
	b.WriteString(SVG(title, "time [s]", "operations completed", width, panelHeight,
		[]Series{{Name: "completed", X: tx, Y: totals}}))
	b.WriteString(SVG("", "time [s]", "COV", width, panelHeight,
		[]Series{{Name: "COV", X: tx, Y: covs}}))
	b.WriteString(SVG("", "time [s]", "operations/s", width, panelHeight,
		[]Series{{Name: "throughput", X: tx, Y: thr}}))
	return b.String()
}

// LabeledSeries names one scaling comparison input (a result set and
// operation, like compare-process.py arguments, §3.4.2).
type LabeledSeries struct {
	Label  string
	Points []results.ScalePoint
}

// VsProcesses renders performance against the total process count (Fig.
// 3.12), one line per labeled input.
func VsProcesses(inputs []LabeledSeries, width, height int) string {
	var series []Series
	for _, in := range inputs {
		var s Series
		s.Name = in.Label
		for _, pt := range in.Points {
			s.X = append(s.X, float64(pt.Procs))
			s.Y = append(s.Y, pt.Stonewall)
		}
		series = append(series, s)
	}
	return Render("Performance vs. number of processes", "processes", "ops/s", width, height, series)
}

// VsNodes renders performance against the node count at fixed
// processes-per-node (Fig. 3.13).
func VsNodes(inputs []LabeledSeries, ppn int, width, height int) string {
	var series []Series
	for _, in := range inputs {
		var s Series
		s.Name = in.Label
		for _, pt := range in.Points {
			if pt.PPN != ppn {
				continue
			}
			s.X = append(s.X, float64(pt.Nodes))
			s.Y = append(s.Y, pt.Stonewall)
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("Performance vs. number of nodes (%d process(es) per node)", ppn)
	return Render(title, "nodes", "ops/s", width, height, series)
}
