package cxfs

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

func TestBasicOps(t *testing.T) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	f := New(k, "t", DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Mkdir("/d"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Create("/d/f"); err != nil {
			t.Errorf("create: %v", err)
		}
		if err := c.Create("/d/f"); fs.CodeOf(err) != fs.EEXIST {
			t.Errorf("dup: %v", err)
		}
		h, err := c.Open("/d/f")
		if err != nil {
			t.Errorf("open: %v", err)
		}
		if err := c.Write(h, 8192); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := c.Fsync(h); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := c.Close(h); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := c.Rename("/d/f", "/d/g"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if err := c.Unlink("/d/g"); err != nil {
			t.Errorf("unlink: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// elapsedCreates measures the makespan of two processes creating files in
// separate directories, either on one node or on two nodes.
func elapsedCreates(t *testing.T, sameNode bool, tokenSer bool) time.Duration {
	t.Helper()
	k := sim.New(2)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	cfg := DefaultConfig()
	cfg.TokenSerialization = tokenSer
	f := New(k, "t", cfg)
	k.Spawn("setup", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d0")
		c.Mkdir("/d1")
		for i := 0; i < 2; i++ {
			i := i
			node := cl.Nodes[0]
			if !sameNode && i == 1 {
				node = cl.Nodes[1]
			}
			p.Spawn("w", func(q *sim.Proc) {
				qc := f.NewClient(node, q)
				for j := 0; j < 50; j++ {
					qc.Create(fmt.Sprintf("/d%d/f%d", i, j))
				}
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k.Now()
}

func TestTokenSerializesIntraNode(t *testing.T) {
	same := elapsedCreates(t, true, true)
	cross := elapsedCreates(t, false, true)
	// Same node: fully serialized by the client token. Two nodes: the
	// MDS (2 threads) can overlap them.
	if float64(same) < 1.4*float64(cross) {
		t.Fatalf("same node %v vs two nodes %v: token serialization missing", same, cross)
	}
	// Disabling the token recovers intra-node parallelism.
	noTok := elapsedCreates(t, true, false)
	if float64(noTok) >= 0.9*float64(same) {
		t.Fatalf("token off %v vs on %v: no effect", noTok, same)
	}
}

func TestStatCache(t *testing.T) {
	k := sim.New(3)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	f := New(k, "t", DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Create("/f")
		before := f.RPCCount()
		for i := 0; i < 5; i++ {
			if _, err := c.Stat("/f"); err != nil {
				t.Fatalf("stat: %v", err)
			}
		}
		if f.RPCCount() != before {
			t.Errorf("cached stats issued RPCs")
		}
		c.DropCaches()
		c.Stat("/f")
		if f.RPCCount() != before+1 {
			t.Errorf("post-drop stat served from nowhere")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSANWriteParallel(t *testing.T) {
	// Data writes go straight to the SAN: two nodes writing do not queue
	// at the metadata server.
	k := sim.New(4)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := New(k, "t", DefaultConfig())
	k.Spawn("setup", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Create("/a")
		c.Create("/b")
		before := f.RPCCount()
		done := make([]bool, 2)
		for i, name := range []string{"/a", "/b"} {
			i, name := i, name
			p.Spawn("w", func(q *sim.Proc) {
				qc := f.NewClient(cl.Nodes[i], q)
				h, err := qc.Open(name)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				qc.Write(h, 100<<20)
				qc.Close(h)
				done[i] = true
			})
		}
		_ = before
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
