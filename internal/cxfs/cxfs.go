// Package cxfs models a SAN file system with central metadata management
// in the style of CXFS on the HLRB II (§4.1.3, §4.5.3): clients reach
// storage directly over a low-latency SAN, but every metadata operation
// is delegated to a single active metadata server. Inside one (large SMP)
// client node, the kernel's CXFS client layer serializes metadata
// operations on a per-node token — the reason file creation on CXFS does
// not scale with intra-node process counts, unlike NFS.
package cxfs

import (
	"fmt"
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
)

// Config holds the tunables of the CXFS model.
type Config struct {
	MDSThreads    int
	OneWayLatency time.Duration // SAN/private network latency

	CreateService  time.Duration
	GetattrService time.Duration
	RemoveService  time.Duration
	MkdirService   time.Duration
	RenameService  time.Duration
	ReaddirService time.Duration

	AttrTTL  time.Duration
	DirIndex namespace.DirIndex
	// TokenSerialization: when true (the default, matching observed CXFS
	// behaviour) all metadata operations of one node are serialized on
	// the client token.
	TokenSerialization bool
}

// DefaultConfig approximates the HLRB II CXFS setup.
func DefaultConfig() Config {
	return Config{
		MDSThreads:         2,
		OneWayLatency:      60 * time.Microsecond,
		CreateService:      260 * time.Microsecond,
		GetattrService:     60 * time.Microsecond,
		RemoveService:      240 * time.Microsecond,
		MkdirService:       300 * time.Microsecond,
		RenameService:      320 * time.Microsecond,
		ReaddirService:     150 * time.Microsecond,
		AttrTTL:            5 * time.Second,
		DirIndex:           namespace.IndexBTree,
		TokenSerialization: true,
	}
}

// FS is one CXFS file system.
type FS struct {
	k   *sim.Kernel
	cfg Config

	mds      *simnet.Server
	ns       *namespace.Namespace
	conns    map[*cluster.Node]*simnet.Conn
	tokens   map[*cluster.Node]*sim.Mutex
	attrs    map[*cluster.Node]*clientcache.AttrCache
	dirLocks map[fs.Ino]*sim.Mutex
	rpcs     int64
}

// New creates a CXFS instance.
func New(k *sim.Kernel, name string, cfg Config) *FS {
	return &FS{
		k:        k,
		cfg:      cfg,
		mds:      simnet.NewServer(k, "cxfs-mds:"+name, cfg.MDSThreads),
		ns:       namespace.New(),
		conns:    make(map[*cluster.Node]*simnet.Conn),
		tokens:   make(map[*cluster.Node]*sim.Mutex),
		attrs:    make(map[*cluster.Node]*clientcache.AttrCache),
		dirLocks: make(map[fs.Ino]*sim.Mutex),
	}
}

// Name identifies the model.
func (f *FS) Name() string { return "cxfs" }

// Namespace exposes the metadata server's namespace.
func (f *FS) Namespace() *namespace.Namespace { return f.ns }

// RPCCount returns the number of metadata RPCs served.
func (f *FS) RPCCount() int64 { return f.rpcs }

func (f *FS) conn(n *cluster.Node) *simnet.Conn {
	c, ok := f.conns[n]
	if !ok {
		c = simnet.NewConn(f.k, f.mds, f.cfg.OneWayLatency, 0)
		f.conns[n] = c
	}
	return c
}

func (f *FS) token(n *cluster.Node) *sim.Mutex {
	m, ok := f.tokens[n]
	if !ok {
		m = sim.NewMutex(f.k, "cxfstoken:"+n.Name)
		f.tokens[n] = m
	}
	return m
}

func (f *FS) attrCache(n *cluster.Node) *clientcache.AttrCache {
	c, ok := f.attrs[n]
	if !ok {
		c = clientcache.NewAttrCache(f.cfg.AttrTTL, f.k.Now)
		f.attrs[n] = c
	}
	return c
}

func (f *FS) dirLock(ino fs.Ino) *sim.Mutex {
	m, ok := f.dirLocks[ino]
	if !ok {
		m = sim.NewMutex(f.k, fmt.Sprintf("cxfsdir:%d", ino))
		f.dirLocks[ino] = m
	}
	return m
}

// NewClient binds a client for one process on one node.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]string)}
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]string
}

// metaOp runs one delegated metadata operation: per-node token, RPC to
// the central MDS, directory-size scaled service, namespace change.
func (c *client) metaOp(p string, svc time.Duration, useDirCost bool, apply func(sp *sim.Proc) error) error {
	f := c.fsys
	c.node.Syscall(c.p)
	if f.cfg.TokenSerialization {
		tok := f.token(c.node)
		tok.Lock(c.p)
		defer tok.Unlock()
	}
	var err error
	f.conn(c.node).Call(c.p, 180, 150, func(sp *sim.Proc) {
		if useDirCost {
			if dir, lerr := f.ns.Lookup(fs.ParentDir(p)); lerr == nil {
				lock := f.dirLock(dir.Ino)
				lock.Lock(sp)
				defer lock.Unlock()
				sp.Sleep(time.Duration(float64(svc) * f.cfg.DirIndex.EntryCost(dir.NumChildren())))
			} else {
				sp.Sleep(svc)
			}
		} else {
			sp.Sleep(svc)
		}
		f.rpcs++
		err = apply(sp)
	})
	return err
}

// Create delegates the create to the metadata server.
func (c *client) Create(p string) error {
	err := c.metaOp(p, c.fsys.cfg.CreateService, true, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Create(p, 0o644, sp.Now())
		return e
	})
	if err == nil {
		if a, e := c.fsys.ns.Stat(p); e == nil {
			c.fsys.attrCache(c.node).Put(p, a)
		}
	}
	return err
}

// Open resolves the path via the MDS (or cache) and returns a handle.
func (c *client) Open(p string) (fs.Handle, error) {
	if _, err := c.Stat(p); err != nil {
		return 0, err
	}
	c.nextFH++
	c.handles[c.nextFH] = p
	return c.nextFH, nil
}

// Close releases the handle; data was written directly to the SAN.
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	return nil
}

// Write goes directly to the SAN storage: cheap and fully parallel (the
// SAN advantage); only the size update involves the MDS lazily.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	p, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	c.p.Sleep(time.Duration(float64(n) / float64(200<<20) * float64(time.Second)))
	if node, err := c.fsys.ns.Lookup(p); err == nil {
		c.fsys.ns.SetSize(node.Ino, node.Size+n, c.p.Now())
	}
	return nil
}

// Fsync is a SAN flush.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	c.p.Sleep(100 * time.Microsecond)
	return nil
}

// Mkdir delegates to the MDS.
func (c *client) Mkdir(p string) error {
	return c.metaOp(p, c.fsys.cfg.MkdirService, true, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Mkdir(p, 0o755, sp.Now())
		return e
	})
}

// Rmdir delegates to the MDS.
func (c *client) Rmdir(p string) error {
	return c.metaOp(p, c.fsys.cfg.RemoveService, true, func(sp *sim.Proc) error {
		return c.fsys.ns.Rmdir(p, sp.Now())
	})
}

// Unlink delegates to the MDS.
func (c *client) Unlink(p string) error {
	err := c.metaOp(p, c.fsys.cfg.RemoveService, true, func(sp *sim.Proc) error {
		return c.fsys.ns.Unlink(p, sp.Now())
	})
	if err == nil {
		c.fsys.attrCache(c.node).Invalidate(p)
	}
	return err
}

// Rename delegates to the MDS.
func (c *client) Rename(oldPath, newPath string) error {
	err := c.metaOp(oldPath, c.fsys.cfg.RenameService, true, func(sp *sim.Proc) error {
		return c.fsys.ns.Rename(oldPath, newPath, sp.Now())
	})
	if err == nil {
		cache := c.fsys.attrCache(c.node)
		cache.Invalidate(oldPath)
		cache.Invalidate(newPath)
	}
	return err
}

// Link delegates to the MDS.
func (c *client) Link(oldPath, newPath string) error {
	return c.metaOp(newPath, c.fsys.cfg.CreateService, true, func(sp *sim.Proc) error {
		return c.fsys.ns.Link(oldPath, newPath, sp.Now())
	})
}

// Symlink delegates to the MDS.
func (c *client) Symlink(target, linkPath string) error {
	return c.metaOp(linkPath, c.fsys.cfg.CreateService, true, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Symlink(target, linkPath, sp.Now())
		return e
	})
}

// Stat serves from the node cache or delegates to the MDS.
func (c *client) Stat(p string) (fs.Attr, error) {
	c.node.Syscall(c.p)
	cache := c.fsys.attrCache(c.node)
	if a, ok := cache.Get(p); ok {
		return a, nil
	}
	var a fs.Attr
	err := c.metaOp(p, c.fsys.cfg.GetattrService, false, func(sp *sim.Proc) error {
		var e error
		a, e = c.fsys.ns.Stat(p)
		return e
	})
	if err != nil {
		return fs.Attr{}, err
	}
	cache.Put(p, a)
	return a, nil
}

// ReadDir delegates to the MDS.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	var ents []fs.DirEntry
	err := c.metaOp(p, c.fsys.cfg.ReaddirService, false, func(sp *sim.Proc) error {
		var e error
		ents, e = c.fsys.ns.ReadDir(p, sp.Now())
		if e == nil {
			sp.Sleep(time.Duration(len(ents)) * time.Microsecond)
		}
		return e
	})
	return ents, err
}

// DropCaches clears the node's attribute cache.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
	c.fsys.attrCache(c.node).Clear()
}
