// Metadata backend cost models (experiments E28–E30). The shard service
// body decides *what* happens to the namespace; the backend decides what
// that costs. Real metadata services diverge exactly here — HopsFS keeps
// its metadata in a NewSQL store, Ceph and many KV-backed designs sit on
// an LSM tree, the thesis systems journal from memory — so the backend is
// a pluggable pricing layer under every shard:
//
//   - BackendMemJournal (default): the in-memory namespace with a
//     WAFL-style metadata journal — exactly the cost model every
//     experiment before E28 ran on. It is the extracted form of the old
//     implicit behavior and is byte-identical to it.
//   - BackendLSM: an LSM-tree KV store. Writes are cheap appends but pay
//     write amplification into the journal stream; the accumulated
//     compaction debt periodically drains as a deterministic per-shard
//     stall window (every operation on the shard slows down while the
//     compactor runs); negative lookups are cheap because bloom filters
//     short-circuit them before any level is probed.
//   - BackendBTree: a B-tree/SQL store. Point operations descend a page
//     tree whose depth grows with directory size, writes on a recently
//     written directory pay a row-lock wait, range scans are cheap
//     (entries are clustered in key order), and recovery replay is
//     expensive (random page updates, not sequential log append).
//
// A backend never touches the namespace and never changes operation
// ordering under the default: every cost factor it returns multiplies the
// service charge *after* the existing WAFL consistency-point factor and
// directory-index surcharge, and BackendMemJournal returns exactly 1 from
// every pricing hook, so the default configuration reproduces the pre-E28
// results bit for bit.
package shard

import (
	"time"

	"dmetabench/internal/sim"
	"dmetabench/internal/storage"
)

// BackendKind selects the metadata storage backend cost model.
type BackendKind int

// Backend cost models.
const (
	// BackendMemJournal is the in-memory namespace with a metadata
	// journal — the implicit backend of every experiment before E28.
	BackendMemJournal BackendKind = iota
	// BackendLSM prices an LSM-tree KV store: write amplification,
	// periodic compaction stalls, bloom-filtered negative lookups.
	BackendLSM
	// BackendBTree prices a B-tree/SQL store: page reads scaling with
	// directory size, lock waits on hot directories, expensive replay.
	BackendBTree
)

func (b BackendKind) String() string {
	switch b {
	case BackendLSM:
		return "lsm"
	case BackendBTree:
		return "btree"
	default:
		return "memjournal"
	}
}

// ParseBackend maps a command-line name to a BackendKind; unknown names
// fall back to the default backend.
func ParseBackend(s string) BackendKind {
	switch s {
	case "lsm":
		return BackendLSM
	case "btree", "sql":
		return BackendBTree
	default:
		return BackendMemJournal
	}
}

// opClass classifies one service charge for backend pricing.
type opClass uint8

const (
	// opNone is unclassified internal work: only compaction stalls
	// apply, no per-class factor.
	opNone opClass = iota
	// opRead is a point lookup (GETATTR, LOOKUP, OPEN resolution).
	opRead
	// opWrite is a namespace mutation (create, unlink, rename, mirror
	// apply, broadcast apply, data flush).
	opWrite
	// opScan is a range scan (READDIR, split probes and candidate scans).
	opScan
)

// opInfo carries the pricing hints of one classified charge. The zero
// value (opNone, no hints) prices as unclassified internal work.
type opInfo struct {
	cls opClass
	// dir is the parent directory a mutation touches — the B-tree
	// backend keys its row-lock tracking on it. Empty when unknown or
	// not a directory-entry mutation.
	dir string
	// dirSize is the entry count of the directory the operation
	// descends into (B-tree page depth); -1 when unknown.
	dirSize int
	// negative marks a lookup expected to miss — the LSM bloom filter
	// answers it without probing any level.
	negative bool
}

// backend prices the storage work of one shard. Implementations may keep
// deterministic mutable state (compaction debt, lock tracking); they run
// only inside the single-threaded simulation, in event order.
type backend interface {
	// factor returns the multiplier applied to one service charge, on
	// top of the WAFL consistency-point factor and the directory-index
	// surcharge. It includes any active stall window. Implementations
	// must return exactly 1 when they have nothing to add, so the
	// caller can skip the multiply and keep the default backend's
	// float math bit-identical to the pre-backend code.
	factor(now time.Duration, info opInfo) float64
	// log persists n logical journal bytes for one committed mutation
	// (the write-amplified physical traffic is the backend's business).
	log(p *sim.Proc, n int64)
	// replayPerEntry is the recovery cost per journal entry on
	// takeover and restart.
	replayPerEntry() time.Duration
	// moveFactor scales the destination-side ingest cost of split
	// migration batches (bulk load into the backend).
	moveFactor() float64
}

// LSMParams tunes the LSM-KV backend. Zero fields take the defaults of
// DefaultLSMParams; all factors multiply the base service charge.
type LSMParams struct {
	// WriteAmp is the journal write amplification: every logical
	// journal byte becomes WriteAmp physical bytes (WAL + memtable
	// flush + compaction rewrites), and the amplified traffic accrues
	// compaction debt.
	WriteAmp float64
	// CompactEvery is the amplified byte volume between compactions:
	// when a shard's debt reaches it, a compaction starts.
	CompactEvery int64
	// CompactDrain is the compactor's drain rate in bytes per second;
	// one pause lasts debt/CompactDrain.
	CompactDrain int64
	// CompactSlowdown multiplies every service charge on the shard
	// while its compaction runs — the foreground stall E29 measures.
	CompactSlowdown float64
	// BloomNegative prices a negative lookup (bloom filters
	// short-circuit the level probes, so ENOENT is the cheap case).
	BloomNegative float64
	// ReadFactor prices a positive point read (probing levels).
	ReadFactor float64
	// ScanFactor prices a range scan (merging iterators across levels).
	ScanFactor float64
	// WriteFactor prices a foreground write (memtable append: cheap).
	WriteFactor float64
	// ReplayFactor scales ReplayPerEntry (sequential WAL replay: fast).
	ReplayFactor float64
	// MoveFactor scales split-migration ingest (bulk append: fast).
	MoveFactor float64
}

// DefaultLSMParams returns the LSM cost parameters used when Config.LSM
// fields are left zero.
func DefaultLSMParams() LSMParams {
	return LSMParams{
		WriteAmp:        4,
		CompactEvery:    8 << 20,
		CompactDrain:    256 << 20,
		CompactSlowdown: 3,
		BloomNegative:   0.25,
		ReadFactor:      1.3,
		ScanFactor:      1.5,
		WriteFactor:     0.85,
		ReplayFactor:    0.5,
		MoveFactor:      0.8,
	}
}

func (p LSMParams) withDefaults() LSMParams {
	d := DefaultLSMParams()
	if p.WriteAmp == 0 {
		p.WriteAmp = d.WriteAmp
	}
	if p.CompactEvery == 0 {
		p.CompactEvery = d.CompactEvery
	}
	if p.CompactDrain == 0 {
		p.CompactDrain = d.CompactDrain
	}
	if p.CompactSlowdown == 0 {
		p.CompactSlowdown = d.CompactSlowdown
	}
	if p.BloomNegative == 0 {
		p.BloomNegative = d.BloomNegative
	}
	if p.ReadFactor == 0 {
		p.ReadFactor = d.ReadFactor
	}
	if p.ScanFactor == 0 {
		p.ScanFactor = d.ScanFactor
	}
	if p.WriteFactor == 0 {
		p.WriteFactor = d.WriteFactor
	}
	if p.ReplayFactor == 0 {
		p.ReplayFactor = d.ReplayFactor
	}
	if p.MoveFactor == 0 {
		p.MoveFactor = d.MoveFactor
	}
	return p
}

// BTreeParams tunes the B-tree/SQL backend. Zero fields take the
// defaults of DefaultBTreeParams.
type BTreeParams struct {
	// PageFanout is the entries per index page; a directory's page
	// depth is ceil(log_PageFanout(entries)).
	PageFanout int
	// PagePenalty is the extra cost per page-tree level beyond the
	// first, on point reads and writes into a large directory.
	PagePenalty float64
	// LockWindow is the row-lock shadow of one directory write: a
	// second write into the same directory within the window pays
	// LockPenalty (lock wait on the hot directory row).
	LockWindow time.Duration
	// LockPenalty multiplies a write that hits a directory written
	// within the last LockWindow.
	LockPenalty float64
	// ReadFactor prices a point read (root-to-leaf descent).
	ReadFactor float64
	// ScanFactor prices a range scan (entries clustered in key order).
	ScanFactor float64
	// WriteFactor prices a write (page dirtying + WAL, before the
	// page-depth and lock penalties).
	WriteFactor float64
	// ReplayFactor scales ReplayPerEntry (random page updates: slow).
	ReplayFactor float64
	// MoveFactor scales split-migration ingest (random inserts: slow).
	MoveFactor float64
}

// DefaultBTreeParams returns the B-tree cost parameters used when
// Config.BTree fields are left zero.
func DefaultBTreeParams() BTreeParams {
	return BTreeParams{
		PageFanout:   256,
		PagePenalty:  0.35,
		LockWindow:   500 * time.Microsecond,
		LockPenalty:  1.6,
		ReadFactor:   1.15,
		ScanFactor:   0.9,
		WriteFactor:  1.25,
		ReplayFactor: 1.6,
		MoveFactor:   1.5,
	}
}

func (p BTreeParams) withDefaults() BTreeParams {
	d := DefaultBTreeParams()
	if p.PageFanout == 0 {
		p.PageFanout = d.PageFanout
	}
	if p.PagePenalty == 0 {
		p.PagePenalty = d.PagePenalty
	}
	if p.LockWindow == 0 {
		p.LockWindow = d.LockWindow
	}
	if p.LockPenalty == 0 {
		p.LockPenalty = d.LockPenalty
	}
	if p.ReadFactor == 0 {
		p.ReadFactor = d.ReadFactor
	}
	if p.ScanFactor == 0 {
		p.ScanFactor = d.ScanFactor
	}
	if p.WriteFactor == 0 {
		p.WriteFactor = d.WriteFactor
	}
	if p.ReplayFactor == 0 {
		p.ReplayFactor = d.ReplayFactor
	}
	if p.MoveFactor == 0 {
		p.MoveFactor = d.MoveFactor
	}
	return p
}

// CompactionEvent records one LSM compaction pause on one shard — the
// timeline E29 plots against the throughput intervals.
type CompactionEvent struct {
	// Shard is the stalled server.
	Shard int
	// At is the virtual time the compaction started; Dur is how long
	// the shard's service charges carried the compaction slowdown.
	At, Dur time.Duration
}

// newBackend builds shard sh's backend from the (already defaulted)
// configuration.
func newBackend(f *FS, sh *shardSrv) backend {
	switch f.cfg.Backend {
	case BackendLSM:
		return &lsmBackend{f: f, shard: sh.index, wafl: sh.wafl, p: f.cfg.LSM, replay: f.cfg.ReplayPerEntry}
	case BackendBTree:
		return &btreeBackend{wafl: sh.wafl, p: f.cfg.BTree, replay: f.cfg.ReplayPerEntry, lastWrite: make(map[string]time.Duration)}
	default:
		return &memJournal{wafl: sh.wafl, replay: f.cfg.ReplayPerEntry}
	}
}

// memJournal is the default backend: the pre-E28 cost model, extracted.
// Every pricing hook is the identity, so configurations that never set
// Config.Backend reproduce the old results byte for byte.
type memJournal struct {
	wafl   *storage.WAFL
	replay time.Duration
}

func (b *memJournal) factor(time.Duration, opInfo) float64 { return 1 }
func (b *memJournal) log(p *sim.Proc, n int64)             { b.wafl.LogMetadata(p, n) }
func (b *memJournal) replayPerEntry() time.Duration        { return b.replay }
func (b *memJournal) moveFactor() float64                  { return 1 }

// lsmBackend prices an LSM-tree KV store on one shard.
type lsmBackend struct {
	f      *FS
	shard  int
	wafl   *storage.WAFL
	p      LSMParams
	replay time.Duration

	// debt is the amplified journal traffic accrued since the last
	// compaction; compactEnd marks the end of the current stall window.
	debt       int64
	compactEnd time.Duration
}

func (b *lsmBackend) factor(now time.Duration, info opInfo) float64 {
	s := 1.0
	if now < b.compactEnd {
		s = b.p.CompactSlowdown
	}
	switch info.cls {
	case opWrite:
		s *= b.p.WriteFactor
	case opScan:
		s *= b.p.ScanFactor
	case opRead:
		if info.negative {
			s *= b.p.BloomNegative
		} else {
			s *= b.p.ReadFactor
		}
	}
	return s
}

func (b *lsmBackend) log(p *sim.Proc, n int64) {
	amp := int64(float64(n) * b.p.WriteAmp)
	b.wafl.LogMetadata(p, amp)
	b.debt += amp
	if b.debt >= b.p.CompactEvery && p.Now() >= b.compactEnd {
		dur := time.Duration(float64(b.debt) / float64(b.p.CompactDrain) * float64(time.Second))
		b.compactEnd = p.Now() + dur
		b.f.recordCompaction(CompactionEvent{Shard: b.shard, At: p.Now(), Dur: dur})
		b.debt = 0
	}
}

func (b *lsmBackend) replayPerEntry() time.Duration {
	return time.Duration(float64(b.replay) * b.p.ReplayFactor)
}

func (b *lsmBackend) moveFactor() float64 { return b.p.MoveFactor }

// btreeBackend prices a B-tree/SQL store on one shard.
type btreeBackend struct {
	wafl   *storage.WAFL
	p      BTreeParams
	replay time.Duration
	// lastWrite tracks the most recent write time per directory — the
	// row-lock shadow behind the hot-directory lock penalty. Mutated
	// only in simulation event order, so it is deterministic.
	lastWrite map[string]time.Duration
}

// pageFactor is the page-depth surcharge of descending into a directory
// of n entries: 1 below one page, plus PagePenalty per extra level.
func (b *btreeBackend) pageFactor(n int) float64 {
	if n < b.p.PageFanout {
		return 1
	}
	depth := 0
	for ; n >= b.p.PageFanout; n /= b.p.PageFanout {
		depth++
	}
	return 1 + b.p.PagePenalty*float64(depth)
}

func (b *btreeBackend) factor(now time.Duration, info opInfo) float64 {
	switch info.cls {
	case opWrite:
		s := b.p.WriteFactor
		if info.dirSize > 0 {
			s *= b.pageFactor(info.dirSize)
		}
		if info.dir != "" {
			if last, ok := b.lastWrite[info.dir]; ok && now-last < b.p.LockWindow {
				s *= b.p.LockPenalty
			}
			b.lastWrite[info.dir] = now
		}
		return s
	case opScan:
		return b.p.ScanFactor
	case opRead:
		s := b.p.ReadFactor
		if info.dirSize > 0 {
			s *= b.pageFactor(info.dirSize)
		}
		return s
	}
	return 1
}

func (b *btreeBackend) log(p *sim.Proc, n int64) { b.wafl.LogMetadata(p, n) }

func (b *btreeBackend) replayPerEntry() time.Duration {
	return time.Duration(float64(b.replay) * b.p.ReplayFactor)
}

func (b *btreeBackend) moveFactor() float64 { return b.p.MoveFactor }

// gcMirror is the mirror work one group-commit batch owes one replica
// partner: count mutations' journal records, applied in one round trip.
type gcMirror struct {
	partner int
	count   int64
}

// gcBatch is one open group-commit batch on a shard: the mutations that
// arrived within one GroupCommitWindow and share a single journal flush
// and replication round trip. The batch leader (the mutation that opened
// it) sleeps out the window, pays the batched flush and mirror traffic,
// and wakes the followers; followers hold their worker slot while they
// wait, the way a per-op mirror wait does.
type gcBatch struct {
	bytes   int64
	mirrors []gcMirror
	flushed bool
	done    *sim.Cond
}

// add folds one mutation's durability work into the batch.
func (b *gcBatch) add(bytes int64, partner int) {
	b.bytes += bytes
	if partner < 0 {
		return
	}
	for i := range b.mirrors {
		if b.mirrors[i].partner == partner {
			b.mirrors[i].count++
			return
		}
	}
	b.mirrors = append(b.mirrors, gcMirror{partner: partner, count: 1})
}
