package shard

import (
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/sim"
)

// constDemand returns a source that yields the same demand on every
// (shard, lane, tick).
func constDemand(d AggregateDemand) func(int, int, int) AggregateDemand {
	return func(_, _, _ int) AggregateDemand { return d }
}

// TestAggregateInjectCounts runs an underloaded injector for a fixed
// horizon: every tick's batch fits inside the tick, so nothing sheds,
// every lane processes every tick, and the busy time is at least the
// unscaled base cost of the injected ops.
func TestAggregateInjectCounts(t *testing.T) {
	cfg := DefaultConfig(2)
	k := sim.New(3)
	f := New(k, "inj", cfg)
	const tick = 10 * time.Millisecond
	// 10 getattrs/lane/tick cost 400us base — 4% of a tick per lane.
	f.AttachAggregate(tick, constDemand(AggregateDemand{Getattr: 10}))
	k.Spawn("horizon", func(p *sim.Proc) { p.Sleep(100 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ops, shed, busy := f.AggCounts()
	lanes := cfg.NumShards * cfg.ShardThreads
	// Each lane covers ticks 0..9 within the horizon; the 100ms boundary
	// tick may or may not run before the kernel drains.
	lo, hi := int64(lanes*10*10), int64(lanes*11*10)
	if ops < lo || ops > hi {
		t.Errorf("injected ops = %d, want in [%d, %d]", ops, lo, hi)
	}
	if shed != 0 {
		t.Errorf("underloaded injector shed %d ops", shed)
	}
	if min := time.Duration(ops) * cfg.GetattrService; busy < min {
		t.Errorf("busy = %v, want at least the base cost %v", busy, min)
	}
}

// TestAggregateInjectSheds overloads the injector: one tick's batch
// costs many ticks of hold time, so lanes sleep through tick indices
// and must account for them as shed rather than building a backlog.
func TestAggregateInjectSheds(t *testing.T) {
	cfg := DefaultConfig(1)
	k := sim.New(4)
	f := New(k, "shed", cfg)
	const tick = time.Millisecond
	// 1000 getattrs cost 40ms base — a 40x overload per lane.
	f.AttachAggregate(tick, constDemand(AggregateDemand{Getattr: 1000}))
	k.Spawn("horizon", func(p *sim.Proc) { p.Sleep(200 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ops, shed, _ := f.AggCounts()
	if ops == 0 {
		t.Fatal("overloaded injector processed nothing")
	}
	if shed == 0 {
		t.Fatal("overloaded injector shed nothing")
	}
	if shed < ops {
		t.Errorf("ops=%d shed=%d: a 40x overload must shed far more than it serves", ops, shed)
	}
	// Open loop: every elapsed tick is either served or shed, so the two
	// together cover the horizon's draw stream up to each lane's final
	// in-flight hold (whose later ticks are still unshed at the horizon).
	lanes := int64(cfg.NumShards * cfg.ShardThreads)
	if total := ops + shed; total < lanes*150*1000 {
		t.Errorf("ops+shed = %d, want coverage of at least 150 of ~200 ticks x %d lanes x 1000", total, lanes)
	}
}

// TestPriceAggregate pins the batch pricing: per-class base costs, zero
// for an empty batch, and linear in the demand (the WAFL factor is
// sampled once per batch, so two batches priced at the same instant
// scale by the same factor).
func TestPriceAggregate(t *testing.T) {
	cfg := DefaultConfig(1)
	k := sim.New(5)
	f := New(k, "price", cfg)
	sh := f.shards[0]
	if got := f.priceAggregate(sh, AggregateDemand{}); got != 0 {
		t.Errorf("empty batch priced at %v, want 0", got)
	}
	one := f.priceAggregate(sh, AggregateDemand{Getattr: 1, Lookup: 1, Readdir: 1, Create: 1})
	base := cfg.GetattrService + cfg.LookupService + cfg.ReaddirService + cfg.CreateService
	if one < base {
		t.Errorf("mixed batch priced at %v, below base %v (WAFL factor must be >= 1)", one, base)
	}
	ten := f.priceAggregate(sh, AggregateDemand{Getattr: 10, Lookup: 10, Readdir: 10, Create: 10})
	if diff := ten - 10*one; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("pricing not linear: 10x batch = %v, 10 x 1x batch = %v", ten, 10*one)
	}
}

// TestAggregateDaemonsExitWithSim pins the daemon contract: an FS with
// only injector lanes attached never keeps the kernel alive past the
// last real process.
func TestAggregateDaemonsExitWithSim(t *testing.T) {
	cfg := DefaultConfig(2)
	k := sim.New(6)
	f := New(k, "drain", cfg)
	f.AttachAggregate(time.Millisecond, constDemand(AggregateDemand{Getattr: 1}))
	const horizon = 5 * time.Millisecond
	k.Spawn("horizon", func(p *sim.Proc) { p.Sleep(horizon) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != horizon {
		t.Errorf("kernel ran to %v, want the %v horizon", k.Now(), horizon)
	}
	if ops, _, _ := f.AggCounts(); ops == 0 {
		t.Error("injector lanes never ran")
	}
}

// TestCapacityStatsCensus exercises the post-run capacity census E33
// reads: a lease-mode workload leaves server lease tables, journal
// entries and client caches behind, and Entries sums them all.
func TestCapacityStatsCensus(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.CacheMode = CacheLease
	k := sim.New(8)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	f := New(k, "cap", cfg)
	k.Spawn("client", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		for i := 0; i < 8; i++ {
			path := "/d/f" + string(rune('a'+i))
			c.Create(path)
			c.Stat(path)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.CapacityStats()
	if st.Nodes != 1 {
		t.Errorf("Nodes = %d, want 1", st.Nodes)
	}
	if st.LeaseEntries == 0 {
		t.Error("lease-mode run left no server lease entries")
	}
	if st.ClientAttrs+st.ClientLeases == 0 {
		t.Error("run left no client attribute- or lease-cache entries")
	}
	want := st.LeaseEntries + st.Delegations + st.SplitDirs + st.JournalEntries +
		st.ClientAttrs + st.ClientDentries + st.ClientLeases + st.ClientSplitDirs
	if got := st.Entries(); got != want {
		t.Errorf("Entries() = %d, want the field sum %d", got, want)
	}
}
