package shard

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
)

// splitCfg returns a 4-shard hash-placement config with splitting on.
func splitCfg(threshold int) Config {
	cfg := DefaultConfig(4)
	cfg.SplitThreshold = threshold
	return cfg
}

func TestSplitSpreadsGiantDirectory(t *testing.T) {
	const files = 600
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/big"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < files; i++ {
			if err := c.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
		// The directory split up to the shard-coverage cap.
		if lvl := f.SplitLevel("/big"); lvl != 2 {
			t.Errorf("split level = %d, want 2 (4 shards)", lvl)
		}
		if len(f.Splits) == 0 || f.SplitMoved == 0 {
			t.Fatalf("no split events recorded (events=%d moved=%d)", len(f.Splits), f.SplitMoved)
		}
		// Entries spread across more than one slice's namespace.
		populated := 0
		total := 0
		for i := 0; i < f.NumShards(); i++ {
			ents, err := f.Namespace(i).ReadDir("/big", p.Now())
			if err != nil {
				continue
			}
			if len(ents) > 0 {
				populated++
			}
			total += len(ents)
		}
		if populated < 2 {
			t.Errorf("split directory still lives on %d slice(s)", populated)
		}
		if total != files {
			t.Errorf("entries across slices = %d, want %d", total, files)
		}
		// Every file remains reachable through the client.
		for i := 0; i < files; i++ {
			if _, err := c.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("stat after split: %v", err)
			}
		}
		// The fan-out listing merges every partition exactly once.
		ents, err := c.ReadDir("/big")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		if len(ents) != files {
			t.Errorf("fan-out listing = %d entries, want %d", len(ents), files)
		}
		seen := make(map[string]bool, len(ents))
		for _, e := range ents {
			if seen[e.Name] {
				t.Fatalf("duplicate entry %q in merged listing", e.Name)
			}
			seen[e.Name] = true
		}
		// Batched fan-out returns aligned attributes.
		pents, attrs, err := fs.ReadDirPlus(c, "/big")
		if err != nil {
			t.Fatalf("readdirplus: %v", err)
		}
		if len(pents) != files || len(attrs) != files {
			t.Fatalf("readdirplus = %d/%d, want %d", len(pents), len(attrs), files)
		}
		for i := range pents {
			if attrs[i].Ino != pents[i].Ino {
				t.Fatalf("attrs misaligned at %d", i)
			}
		}
		// Rmdir refuses while any partition holds files, succeeds once
		// all are gone, and drops the split state with the directory.
		if err := c.Rmdir("/big"); fs.CodeOf(err) != fs.ENOTEMPTY {
			t.Errorf("rmdir of populated split dir: %v, want ENOTEMPTY", err)
		}
		for i := 0; i < files; i++ {
			if err := c.Unlink(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("unlink: %v", err)
			}
		}
		if err := c.Rmdir("/big"); err != nil {
			t.Fatalf("rmdir of emptied split dir: %v", err)
		}
		if lvl := f.SplitLevel("/big"); lvl != 0 {
			t.Errorf("split state survived rmdir (level %d)", lvl)
		}
	})
}

func TestSplitMigrationIsPaidAndJournaled(t *testing.T) {
	cfg := splitCfg(64)
	cfg.Replicate = true
	k, cl, f := env(t, 1, cfg)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/big"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		before := f.CrossCount
		for i := 0; i < 200; i++ {
			if err := c.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		if f.SplitMoved == 0 {
			t.Fatal("split moved no entries")
		}
		if f.CrossCount <= before {
			t.Error("split migration crossed no interconnect hops")
		}
	})
	// The moves are journaled on both sides so a takeover or restart
	// replays them: total journal entries exceed the pure mutation count
	// (200 creates + 1 mkdir) by one unlink+create pair per moved entry.
	total := 0
	for i := 0; i < f.NumShards(); i++ {
		total += f.JournalLen(i)
	}
	if want := 201 + 2*int(f.SplitMoved); total != want {
		t.Errorf("journal entries = %d, want %d (moves journaled on both slices)", total, want)
	}
}

func TestSplitLeaseCoherence(t *testing.T) {
	// A reader on one node caches every file under leases; a writer on
	// another node pushes the directory over the threshold. The split
	// must revoke the moved entries' leases so the reader never serves a
	// stale (pre-migration) hit.
	cfg := splitCfg(64)
	cfg.CacheMode = CacheLease
	cfg.TrackStaleness = true
	cfg.LeaseTTL = time.Hour
	k := sim.New(42)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := New(k, "test", cfg)
	k.Spawn("rw", func(p *sim.Proc) {
		reader := f.NewClient(cl.Nodes[0], p)
		writer := f.NewClient(cl.Nodes[1], p)
		if err := writer.Mkdir("/big"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		// Subdirectories ride along: their entries are replicated, but
		// their leases re-key with the split level like any entry's.
		for i := 0; i < 8; i++ {
			if err := writer.Mkdir(fmt.Sprintf("/big/sub%d", i)); err != nil {
				t.Errorf("mkdir sub: %v", err)
				return
			}
		}
		for i := 0; i < 64; i++ {
			if err := writer.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		for i := 0; i < 64; i++ {
			if _, err := reader.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("stat: %v", err)
				return
			}
		}
		for i := 0; i < 8; i++ {
			if _, err := reader.Stat(fmt.Sprintf("/big/sub%d", i)); err != nil {
				t.Errorf("stat sub: %v", err)
				return
			}
		}
		revBefore := f.Revocations
		// Push over the threshold: the split revokes moved leases.
		for i := 64; i < 80; i++ {
			if err := writer.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		if f.SplitMoved == 0 {
			t.Error("no split happened")
		}
		if f.Revocations <= revBefore {
			t.Error("split revoked no leases")
		}
		for i := 0; i < 80; i++ {
			if _, err := reader.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("stat after split: %v", err)
				return
			}
		}
		// Mutations under the subdirectories must find (and revoke) the
		// reader's re-keyed subdirectory leases, then the re-stats must
		// be coherent.
		for i := 0; i < 8; i++ {
			if err := writer.Create(fmt.Sprintf("/big/sub%d/child", i)); err != nil {
				t.Errorf("create child: %v", err)
				return
			}
		}
		for i := 0; i < 8; i++ {
			if _, err := reader.Stat(fmt.Sprintf("/big/sub%d", i)); err != nil {
				t.Errorf("re-stat sub: %v", err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.StaleReads != 0 {
		t.Errorf("coherent cache served %d stale reads across a split", f.StaleReads)
	}
}

func TestFlushFollowsSplitMigration(t *testing.T) {
	// A file opened (and written) before a split migrates must still
	// receive its write on Close: flush resolves by path, following the
	// migration to the new slice and inode, instead of silently
	// no-opping SetSize against the handle's dead inode.
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/big"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		const targets = 8
		handles := make([]fs.Handle, targets)
		for i := 0; i < targets; i++ {
			name := fmt.Sprintf("/big/t%d", i)
			if err := c.Create(name); err != nil {
				t.Fatalf("create: %v", err)
			}
			h, err := c.Open(name)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if err := c.Write(h, 100); err != nil {
				t.Fatalf("write: %v", err)
			}
			handles[i] = h
		}
		for i := 0; i < 200; i++ {
			if err := c.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		if f.SplitLevel("/big") == 0 || f.SplitMoved == 0 {
			t.Fatal("directory did not split under the open handles")
		}
		for i := 0; i < targets; i++ {
			if err := c.Close(handles[i]); err != nil {
				t.Fatalf("close t%d: %v", i, err)
			}
		}
		for i := 0; i < targets; i++ {
			a, err := c.Stat(fmt.Sprintf("/big/t%d", i))
			if err != nil {
				t.Fatalf("stat t%d: %v", i, err)
			}
			if a.Size != 100 {
				t.Errorf("t%d size = %d after flush across a split, want 100", i, a.Size)
			}
		}
	})
}

func TestOpenAfterSplitMigration(t *testing.T) {
	// A dentry cached before a split keeps the pre-migration ino; Open
	// must refresh it and open the current incarnation, not surface a
	// spurious ESTALE for a path that resolves fine.
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/big"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < 200; i++ {
			if err := c.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		if f.SplitMoved == 0 {
			t.Fatal("directory did not split")
		}
		for i := 0; i < 200; i++ {
			h, err := c.Open(fmt.Sprintf("/big/f%d", i))
			if err != nil {
				t.Fatalf("open f%d after split: %v", i, err)
			}
			if err := c.Close(h); err != nil {
				t.Fatalf("close f%d: %v", i, err)
			}
		}
	})
}

func TestFlushAfterRenameWhileOpen(t *testing.T) {
	// A rename keeps the inode alive, so a write through a handle
	// opened under the old name must still land (POSIX fd semantics) —
	// the incarnation guard may only reject dead inodes.
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Create("/d/a"); err != nil {
			t.Fatalf("create: %v", err)
		}
		h, err := c.Open("/d/a")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := c.Write(h, 100); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := c.Rename("/d/a", "/d/b"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if err := c.Close(h); err != nil {
			t.Fatalf("close after rename: %v", err)
		}
		// Bypass the TTL attribute cache (still fresh from the rename):
		// the authoritative namespace must show the write.
		c.DropCaches()
		a, err := c.Stat("/d/b")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if a.Size != 100 {
			t.Errorf("renamed file size = %d, want 100 (write lost)", a.Size)
		}
	})
	_ = f
}

func TestFlushStaleAfterReplacement(t *testing.T) {
	// A migration is the only re-inode a handle may follow: when the
	// name was unlinked and recreated behind the handle, the flush must
	// fail with ESTALE instead of writing into the new incarnation.
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Create("/d/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		h, err := c.Open("/d/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := c.Write(h, 100); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := c.Unlink("/d/f"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if err := c.Create("/d/f"); err != nil {
			t.Fatalf("recreate: %v", err)
		}
		if cerr := c.Close(h); fs.CodeOf(cerr) != fs.ESTALE {
			t.Errorf("flush into a replaced incarnation: %v, want ESTALE", cerr)
		}
		a, err := c.Stat("/d/f")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if a.Size != 0 {
			t.Errorf("replacement file size = %d, want 0 (stale write leaked in)", a.Size)
		}
	})
	_ = f
}

func TestRenameInsertTriggersSplit(t *testing.T) {
	// Directories can grow past the threshold through renames (and
	// links/symlinks), not just creates: the destination-side insert
	// must trigger the split exactly like a create would.
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for _, d := range []string{"/src", "/big"} {
			if err := c.Mkdir(d); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
		}
		for i := 0; i < 100; i++ {
			if err := c.Create(fmt.Sprintf("/src/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		for i := 0; i < 100; i++ {
			if err := c.Rename(fmt.Sprintf("/src/f%d", i), fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("rename: %v", err)
			}
		}
		if f.SplitLevel("/big") == 0 {
			t.Error("rename-grown directory never split")
		}
		for i := 0; i < 100; i++ {
			if _, err := c.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("stat after rename-driven split: %v", err)
			}
		}
	})
}

func TestSplitBitmapBounces(t *testing.T) {
	// A second node with no bitmap must bounce on its first access to a
	// split directory, then route in one RPC once it has learned the
	// level.
	k := sim.New(42)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := New(k, "test", splitCfg(64))
	k.Spawn("bounce", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir("/big"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 200; i++ {
			if err := a.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		if f.SplitLevel("/big") == 0 {
			t.Error("directory did not split")
			return
		}
		// Pick a file whose partition left the home slice: a client with
		// no bitmap must misroute its first access to it.
		target := ""
		home := f.ShardOfDir("/big")
		for i := 0; i < 200; i++ {
			if p := fmt.Sprintf("/big/f%d", i); f.ShardOfEntry(p) != home {
				target = p
				break
			}
		}
		if target == "" {
			t.Fatal("no file left the home slice")
		}
		before := f.Bounces
		if _, err := b.Stat(target); err != nil {
			t.Errorf("stat: %v", err)
			return
		}
		if f.Bounces != before+1 {
			t.Errorf("cold client paid %d bounces on a moved entry, want 1", f.Bounces-before)
		}
		// The bounce refreshed the bitmap: everything else routes in one
		// RPC.
		before = f.Bounces
		for i := 0; i < 200; i++ {
			if _, err := b.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Errorf("stat: %v", err)
				return
			}
		}
		if f.Bounces != before {
			t.Errorf("warm client paid %d extra bounces, want 0", f.Bounces-before)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBitmapExpiryCausesRebounces(t *testing.T) {
	// With a tiny bitmap TTL the client keeps forgetting the level and
	// re-pays bounces; with a long one it learns once.
	run := func(ttl time.Duration) int64 {
		cfg := splitCfg(64)
		cfg.SplitBitmapTTL = ttl
		k := sim.New(42)
		cl := cluster.New(k, cluster.DefaultConfig(2))
		f := New(k, "test", cfg)
		k.Spawn("w", func(p *sim.Proc) {
			a := f.NewClient(cl.Nodes[0], p)
			b := f.NewClient(cl.Nodes[1], p)
			if err := a.Mkdir("/big"); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < 200; i++ {
				if err := a.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
			for round := 0; round < 20; round++ {
				for i := 0; i < 10; i++ {
					if _, err := b.Stat(fmt.Sprintf("/big/f%d", i)); err != nil {
						t.Errorf("stat: %v", err)
						return
					}
				}
				p.Sleep(50 * time.Millisecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return f.Bounces
	}
	short := run(time.Millisecond)
	long := run(time.Hour)
	if short <= long {
		t.Errorf("bounces: ttl 1ms = %d, ttl 1h = %d; expiring bitmaps must bounce more", short, long)
	}
}

// splitMakeOnedirRun drives w concurrent creators hammering ONE shared
// directory and returns the virtual completion time — the E25 shape at
// unit-test size.
func splitMakeOnedirRun(t *testing.T, cfg Config, w, n int) time.Duration {
	t.Helper()
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(w))
	f := New(k, "scale", cfg)
	var end time.Duration
	for r := 0; r < w; r++ {
		r := r
		node := cl.Nodes[r]
		k.Spawn(fmt.Sprintf("w%d", r), func(p *sim.Proc) {
			c := f.NewClient(node, p)
			if err := c.Mkdir("/wide"); err != nil && !fs.IsExist(err) {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < n; i++ {
				if err := c.Create(fmt.Sprintf("/wide/r%d-%d", r, i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestSplitUnserializesSharedDirectory(t *testing.T) {
	// 16 clients hammering one directory: without splitting all creates
	// serialize on the directory's home shard; with splitting they
	// spread over all 4 shards and finish sooner despite paying for the
	// migrations.
	off := splitMakeOnedirRun(t, DefaultConfig(4), 16, 150)
	on := splitMakeOnedirRun(t, splitCfg(128), 16, 150)
	if on >= off {
		t.Errorf("splitting on (%v) not faster than off (%v) for a shared directory", on, off)
	}
}

func TestConcurrentCreatesSurviveSplits(t *testing.T) {
	// Many clients racing creates into one splitting directory: an
	// insert whose service body waited out a concurrent split (lock
	// queueing, service charge) must still land on the slice the
	// split-aware routing consults — no entry may be stranded where
	// Stat/Unlink cannot find it, and no entry may be lost or doubled.
	const (
		workers = 8
		each    = 60
	)
	cfg := splitCfg(32)
	k := sim.New(11)
	cl := cluster.New(k, cluster.DefaultConfig(workers))
	f := New(k, "race", cfg)
	for r := 0; r < workers; r++ {
		r := r
		node := cl.Nodes[r]
		k.Spawn(fmt.Sprintf("w%d", r), func(p *sim.Proc) {
			c := f.NewClient(node, p)
			if err := c.Mkdir("/wide"); err != nil && !fs.IsExist(err) {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < each; i++ {
				if err := c.Create(fmt.Sprintf("/wide/w%d-f%d", r, i)); err != nil {
					t.Errorf("create w%d-f%d: %v", r, i, err)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.SplitLevel("/wide") == 0 {
		t.Fatal("directory did not split under the race")
	}
	// Every entry must live on exactly its authoritative slice.
	total := 0
	for i := 0; i < f.NumShards(); i++ {
		ents, err := f.Namespace(i).ReadDir("/wide", 0)
		if err != nil {
			continue
		}
		for _, e := range ents {
			p := "/wide/" + e.Name
			if want := f.ShardOfEntry(p); want != i {
				t.Errorf("%s stranded on slice %d, authoritative slice %d", p, i, want)
			}
		}
		total += len(ents)
	}
	if total != workers*each {
		t.Errorf("entries across slices = %d, want %d", total, workers*each)
	}
	// And every entry must be reachable through a client.
	k.Spawn("check", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		for r := 0; r < workers; r++ {
			for i := 0; i < each; i++ {
				if _, err := c.Stat(fmt.Sprintf("/wide/w%d-f%d", r, i)); err != nil {
					t.Errorf("stat w%d-f%d after race: %v", r, i, err)
					return
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirPartialListingSurfacesDownPeer(t *testing.T) {
	// Satellite regression (PR 5): the subtree root merge used to skip
	// down peers silently. A peer that crashes mid-listing must still be
	// skipped — the listing degrades rather than fails — but the
	// degradation is now counted on FS.PartialListings.
	cfg := DefaultConfig(4)
	cfg.Placement = PlaceSubtree
	cfg.SubtreeAssign = map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	// Stretch the interconnect so the crash timer lands between the
	// first and the last peer visit of one listing.
	cfg.CrossShardLatency = 10 * time.Millisecond
	k, cl, f := env(t, 1, cfg)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for _, d := range []string{"/a", "/b", "/c", "/d"} {
			if err := c.Mkdir(d); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
		}
		full, err := c.ReadDir("/")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		if len(full) != 4 || f.PartialListings != 0 {
			t.Fatalf("healthy listing: %d entries, %d partials", len(full), f.PartialListings)
		}
		// Crash the last-visited peer while the merge is in flight.
		home := cl.Nodes[0].Index % f.NumShards()
		last := (home + 3) % 4
		k.AfterFunc("crash", 15*time.Millisecond, func(q *sim.Proc) { f.Crash(q, last) })
		ents, err := c.ReadDir("/")
		if err != nil {
			t.Fatalf("readdir with down peer: %v", err)
		}
		if len(ents) != 3 {
			t.Errorf("degraded listing has %d entries, want 3", len(ents))
		}
		if f.PartialListings != 1 {
			t.Errorf("PartialListings = %d, want 1", f.PartialListings)
		}
	})
}

func TestSplitReadDirSurfacesDownPeer(t *testing.T) {
	k, cl, f := env(t, 1, splitCfg(64))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/big"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < 300; i++ {
			if err := c.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		full, err := c.ReadDir("/big")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		slices := f.splitSlices("/big")
		if len(slices) < 2 {
			t.Fatal("directory did not split across slices")
		}
		f.Crash(p, slices[len(slices)-1])
		ents, err := c.ReadDir("/big")
		if err != nil {
			t.Fatalf("readdir with down partition: %v", err)
		}
		if len(ents) >= len(full) {
			t.Errorf("degraded listing has %d entries, full had %d", len(ents), len(full))
		}
		if f.PartialListings == 0 {
			t.Error("partial split listing not surfaced")
		}
	})
}

// renameTimes returns the virtual time of one same-shard and one
// cross-shard rename with the source and destination directories
// holding extra entries.
func renameTimes(t *testing.T, extra int) (same, cross time.Duration) {
	t.Helper()
	cfg := DefaultConfig(4)
	// Linear directory index: the per-entry surcharge is strong enough
	// that an uncharged branch is unmissable.
	cfg.DirIndex = namespace.IndexLinear
	k, cl, f := env(t, 1, cfg)
	src, dst := twoDirsOnDifferentShards(t, f)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for _, d := range []string{src, dst} {
			if err := c.Mkdir(d); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
		}
		for i := 0; i < extra; i++ {
			if err := c.Create(fmt.Sprintf("%s/pad%d", src, i)); err != nil {
				t.Fatalf("create: %v", err)
			}
			if err := c.Create(fmt.Sprintf("%s/pad%d", dst, i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		if err := c.Create(src + "/same"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Create(src + "/move"); err != nil {
			t.Fatalf("create: %v", err)
		}
		start := p.Now()
		if err := c.Rename(src+"/same", src+"/same2"); err != nil {
			t.Fatalf("same-shard rename: %v", err)
		}
		same = p.Now() - start
		start = p.Now()
		if err := c.Rename(src+"/move", dst+"/move"); err != nil {
			t.Fatalf("cross-shard rename: %v", err)
		}
		cross = p.Now() - start
	})
	return same, cross
}

func TestRenameChargesDirectorySurchargeOnAllBranches(t *testing.T) {
	// Satellite regression (PR 5): the cross-shard migrate used to
	// charge its RenameService/RemoveService with dirEntries -1, so a
	// 2000-entry directory priced a cross-shard rename like an empty
	// one while the local branch paid the full linear-index surcharge.
	sameSmall, crossSmall := renameTimes(t, 4)
	sameBig, crossBig := renameTimes(t, 2000)
	if sameBig <= sameSmall {
		t.Fatalf("same-shard rename: big dir %v not slower than small %v", sameBig, sameSmall)
	}
	if crossBig <= crossSmall {
		t.Fatalf("cross-shard rename: big dir %v not slower than small %v (surcharge not charged)", crossBig, crossSmall)
	}
	// The directory surcharge must dominate both branches comparably: a
	// 2000-entry linear directory costs ~8x per entry op, so the
	// cross-shard path (which pays it at the source, the destination and
	// the removal) cannot grow by less than half the local branch's
	// factor.
	sameFactor := float64(sameBig) / float64(sameSmall)
	crossFactor := float64(crossBig) / float64(crossSmall)
	if crossFactor < sameFactor/2 {
		t.Errorf("cross-shard surcharge factor %.2f vs local %.2f: large-directory cost not applied consistently",
			crossFactor, sameFactor)
	}
}

func TestReaddirCostPageBoundaries(t *testing.T) {
	// Satellite (PR 5): pin the 512-entry paging model of readdirCost,
	// including the n=0 floor of one page.
	cfg := Config{ReaddirService: 100 * time.Microsecond, ReaddirPerEntry: 1 * time.Microsecond}
	cases := []struct {
		n     int
		pages int
	}{
		{0, 1}, {1, 1}, {511, 1}, {512, 1}, {513, 2}, {1024, 2},
	}
	for _, tc := range cases {
		want := time.Duration(tc.pages)*cfg.ReaddirService + time.Duration(tc.n)*cfg.ReaddirPerEntry
		if got := readdirCost(&cfg, tc.n); got != want {
			t.Errorf("readdirCost(%d) = %v, want %v (%d page(s))", tc.n, got, want, tc.pages)
		}
	}
}
