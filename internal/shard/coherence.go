package shard

// Client cache coherence for the sharded MDS: server-granted read
// leases, write-back directory delegations and revocation callbacks.
//
// The thesis contrasts two client-caching disciplines: NFS attribute
// timeouts (cheap, stale by design, §2.1.2) and AFS/Lustre-style
// callback coherence (§4.7.3). The sharded model supports both plus an
// uncached baseline, selected by Config.CacheMode:
//
//   - grant: a GETATTR/LOOKUP (or a readdirplus batch) returns the
//     attributes under a lease valid for Config.LeaseTTL; the serving
//     shard records the holder per slice.
//   - revoke: a conflicting mutation delivers one synchronous callback
//     per holder over a server→client simnet connection before the
//     mutating RPC returns, so a coherent cache hit is never stale.
//   - delegate: the sole writer of a directory holds a write delegation;
//     its own mutations write its cached directory attributes back in
//     place instead of triggering callbacks, and a second writer (or a
//     reader leasing the directory) forces a recall first.
//   - epoch: every slice carries a lease epoch. A crash takeover or a
//     failback bumps it and discards the slice's server-side lease
//     state; with Config.CrashInvalidate clients verify epochs on every
//     cache hit, so one bump bulk-invalidates every lease the slice
//     ever granted — the difference between a bounded and an
//     O(LeaseTTL) stale-read window after failover (E24).
//
// Lease bookkeeping is global state keyed by the owner slice of each
// path; only the callbacks themselves cost simulated time. Negative
// dentries stay on DentryCache TTL semantics in every mode.

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
)

// CacheMode selects the client attribute-cache consistency model.
type CacheMode int

// Cache modes. CacheTTL is the zero value so existing configurations
// keep the NFS-style behaviour they had before leases existed.
const (
	// CacheTTL trusts cached attributes for Config.AttrTTL after fetch
	// (NFS acregmin/acregmax): remote mutations are invisible until the
	// timeout lapses.
	CacheTTL CacheMode = iota
	// CacheNone disables client attribute caching: every Stat is an RPC.
	CacheNone
	// CacheLease grants per-path read leases with revocation callbacks
	// and write-back directory delegations: cache hits are coherent.
	CacheLease
)

func (m CacheMode) String() string {
	switch m {
	case CacheNone:
		return "nocache"
	case CacheLease:
		return "lease"
	default:
		return "ttl"
	}
}

// leaseGrant records one node holding a read lease on a path.
type leaseGrant struct {
	st     *nodeState
	expiry time.Duration
}

// sliceLeases is the server-side coherence state of one namespace
// slice: read-lease holders per path (grant order, so revocation
// callbacks replay deterministically) and the write-delegation holder
// per directory. The whole struct is discarded on crash takeover and on
// failback — a promoted backup knows nothing about the leases its dead
// partner granted.
type sliceLeases struct {
	read  map[string][]leaseGrant
	deleg map[string]*nodeState
}

func newSliceLeases() *sliceLeases {
	return &sliceLeases{
		read:  make(map[string][]leaseGrant),
		deleg: make(map[string]*nodeState),
	}
}

// Epoch returns slice i's current lease epoch (bumped on takeover and
// failback).
func (f *FS) Epoch(i int) uint64 { return f.epochs[i] }

// invalidateSliceLeases models the lease state lost with a serving
// change of slice i: the server-side tables are discarded and the
// slice's epoch moves on, which (with CrashInvalidate) kills every
// outstanding client lease the slice granted.
func (f *FS) invalidateSliceLeases(i int) {
	f.epochs[i]++
	f.leases[i] = newSliceLeases()
}

// cbServer lazily creates the node's callback endpoint — the client-side
// service that receives lease revocations and delegation recalls, with
// its own thread pool so callbacks can never deadlock against the MDS
// pools — and the server→client connection used to reach it.
func (f *FS) cbServer(st *nodeState, n *cluster.Node) {
	if st.cb != nil {
		return
	}
	st.cb = simnet.NewServer(f.k, "cb:node"+strconv.Itoa(n.Index), 1)
	st.cbConn = simnet.NewConn(f.k, st.cb, f.cfg.OneWayLatency, 0)
}

// callback delivers one coherence message (revocation or recall) for
// path to the node behind st. The cached state drops at the instant the
// server commits the conflicting change — the callback is on the wire
// before the mutation's reply — while the server still pays the full
// server→client round trip plus the client-side handler before its RPC
// returns: the same atomic-apply + paid-cost discipline as
// FS.replicate, so a coherent cache can never serve a hit newer
// mutations already invalidated.
func (f *FS) callback(p *sim.Proc, st *nodeState, path string) {
	if !f.domained() {
		st.leases.Revoke(path)
		st.dentries.Invalidate(path)
	}
	f.cbDeliver(p, st, func() {
		st.leases.Revoke(path)
		st.dentries.Invalidate(path)
	})
}

// cbCost charges one callback's delivery: the server→client round trip
// plus the client-side handler, serialized on the node's callback
// channel.
func (f *FS) cbCost(p *sim.Proc, st *nodeState) { f.cbDeliver(p, st, nil) }

// cbDeliver pays one callback round trip. Under kernel domains the
// client-side invalidation rides the callback and applies in the
// client's domain at delivery — a server body must not reach into
// another domain's cache, so the drop lands when the message does
// (instead of at the commit instant, the single-kernel idealization).
// Undomained, the caller already applied it and inval is ignored.
func (f *FS) cbDeliver(p *sim.Proc, st *nodeState, inval func()) {
	svc := f.cfg.CallbackService
	apply := inval
	if !f.domained() {
		apply = nil
	}
	st.cbConn.CallDom(p, 90, 60, func(q *sim.Proc) {
		if apply != nil {
			apply()
		}
		q.Sleep(svc)
	})
}

// grant issues (or refreshes) a read lease on path to the node behind
// st and fills its lease cache: the server records the holder on the
// path's owner slice, the client trusts the attributes until expiry,
// revocation or an epoch move. Granting a lease on a directory another
// node holds a write delegation for recalls the delegation first — the
// writer loses its private write-back state the moment a second party
// starts caching the directory.
// Each lease table belongs to the domain serving its slice, so both
// halves route there (withLeaseSlice): cross-server lease management
// pays an interconnect message, the way a distributed lock manager's
// does. The client-side lease fill rides the RPC reply (simnet.Defer).
func (f *FS) grant(p *sim.Proc, st *nodeState, path string, a fs.Attr) {
	if a.Type == fs.TypeDirectory && f.cfg.Delegations {
		if cs := f.contentSlice(path); cs >= 0 {
			f.withLeaseSlice(p, cs, func(q *sim.Proc) {
				if holder, ok := f.leases[cs].deleg[path]; ok && holder != st {
					addI64(&f.DelegationRecalls, 1)
					f.callback(q, holder, path)
					delete(f.leases[cs].deleg, path)
				}
			})
		}
	}
	slice := f.ownerSlice(path)
	f.withLeaseSlice(p, slice, func(q *sim.Proc) {
		f.grantAt(q, st, path, a, slice)
	})
}

// grantAt records the grant in slice's table; the caller must already
// execute in the slice's owning domain.
func (f *FS) grantAt(q *sim.Proc, st *nodeState, path string, a fs.Attr, slice int) {
	t := f.leases[slice]
	exp := q.Now() + f.cfg.LeaseTTL
	grants := t.read[path]
	found := false
	for i := range grants {
		if grants[i].st == st {
			grants[i].expiry = exp
			found = true
			break
		}
	}
	if !found {
		t.read[path] = append(grants, leaseGrant{st: st, expiry: exp})
	}
	addI64(&f.LeaseGrants, 1)
	if f.domained() {
		ep := f.epochs[slice]
		simnet.Defer(q, func() { st.leases.Put(path, a, exp, slice, ep) })
		return
	}
	st.leases.Put(path, a, exp, slice, f.epochs[slice])
}

// revokePath drops every read lease on path: one callback per holder
// other than the mutator, whose own node entry is invalidated silently
// (its refresh rides the mutation reply). Expired grants are dropped
// without traffic.
func (f *FS) revokePath(p *sim.Proc, mutator *nodeState, path string) {
	t := f.leases[f.ownerSlice(path)]
	grants := t.read[path]
	if len(grants) == 0 {
		return
	}
	now := p.Now()
	// Every holder is invalidated at the commit instant; the delivery
	// costs are paid afterwards, fanned out in parallel — the server
	// issues all callbacks at once and waits for every ack, so a wide
	// revocation costs one round trip plus callback-channel queueing,
	// not one round trip per holder. Under kernel domains the victims'
	// drops ride the callbacks instead (cbDeliver) and the mutator's
	// silent invalidation rides its own RPC reply — a server body never
	// reaches into a client domain's cache.
	dom := f.domained()
	victims := grants[:0]
	for _, g := range grants {
		switch {
		case g.st == mutator:
			if dom {
				st := g.st
				simnet.Defer(p, func() { st.leases.Invalidate(path) })
			} else {
				g.st.leases.Invalidate(path)
			}
		case g.expiry < now:
		default:
			if !dom {
				g.st.leases.Revoke(path)
				g.st.dentries.Invalidate(path)
			}
			victims = append(victims, g)
		}
	}
	delete(t.read, path)
	if len(victims) == 0 {
		return
	}
	procs := make([]*sim.Proc, 0, len(victims))
	for _, g := range victims {
		addI64(&f.Revocations, 1)
		st := g.st
		procs = append(procs, p.Spawn("revoke", func(q *sim.Proc) {
			f.cbDeliver(q, st, func() {
				st.leases.Revoke(path)
				st.dentries.Invalidate(path)
			})
		}))
	}
	for _, q := range procs {
		p.Join(q)
	}
}

// dropDelegation forgets any write delegation on dir; Rmdir and
// directory Rename run it — the delegation dies with the directory
// incarnation it covered (the holder's cached entry is revoked
// alongside). Without this, a recreated directory would inherit a stale
// holder: spurious recalls for everyone else, and a silently skipped
// first-write revocation for the old holder. Creation-type mutations
// must not run it: a delegation granted while a fresh mkdir is still
// paying its broadcast costs is already legitimate.
func (f *FS) dropDelegation(p *sim.Proc, dir string) {
	if !f.cfg.Delegations {
		return
	}
	if cs := f.contentSlice(dir); cs >= 0 {
		f.withLeaseSlice(p, cs, func(q *sim.Proc) {
			delete(f.leases[cs].deleg, dir)
		})
	}
}

// revokeSubtree revokes every lease on strict descendants of dir held
// in slice's table — a directory rename moved the whole incarnation, so
// leases keyed by the old paths now describe names that no longer
// exist. Keys are collected and sorted so the callbacks replay in
// deterministic order; directory renames are rare (subtree placement
// only), so the table scan is off the hot path.
func (f *FS) revokeSubtree(p *sim.Proc, mutator *nodeState, dir string, slice int) {
	t := f.leases[slice]
	prefix := dir + "/"
	var paths []string
	for path := range t.read {
		if strings.HasPrefix(path, prefix) {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		f.revokePath(p, mutator, path)
	}
	// Delegations on moved subdirectories die with their old names too.
	for path := range t.deleg {
		if strings.HasPrefix(path, prefix) {
			delete(t.deleg, path)
		}
	}
}

// dirCovered runs the write-delegation protocol for a mutation under
// dir by the node behind mutator, and reports whether the directory's
// attribute coherence is covered by the mutator's delegation (in which
// case the caller skips the dir-lease revocation: the sole writer
// maintains its own cached dir attributes by write-back).
func (f *FS) dirCovered(p *sim.Proc, mutator *nodeState, dir string) bool {
	if !f.cfg.Delegations {
		return false
	}
	slice := f.contentSlice(dir)
	if slice < 0 {
		return false
	}
	t := f.leases[slice]
	holder, ok := t.deleg[dir]
	switch {
	case !ok:
		t.deleg[dir] = mutator
		addI64(&f.DelegationGrants, 1)
		return false // first write under the delegation still revokes readers
	case holder == mutator:
		return true
	default:
		// A second writer: recall the delegation, then hand it over.
		addI64(&f.DelegationRecalls, 1)
		f.callback(p, holder, dir)
		t.deleg[dir] = mutator
		return false
	}
}

// revokeOnMutate is the coherence hook every successful mutation of
// path runs before its RPC returns: read leases on the path die, and so
// do leases on the parent directory (its mtime/size changed) unless the
// mutator's write delegation covers it. withParent is false for content
// mutations (Write) that leave the parent untouched.
// Each lease-table touch routes to the domain owning its slice
// (withLeaseSlice): the path's own leases live on the executing slice
// (free), but the parent directory's delegation and leases are keyed by
// other slices — under a split, even the delegation's content slice —
// and reaching them across domains costs a hop.
func (f *FS) revokeOnMutate(p *sim.Proc, mutator *nodeState, path string, withParent bool) {
	if f.cfg.CacheMode != CacheLease {
		return
	}
	f.withLeaseSlice(p, f.ownerSlice(path), func(q *sim.Proc) {
		f.revokePath(q, mutator, path)
	})
	if !withParent {
		return
	}
	dir := fs.ParentDir(path)
	if dir == "." || dir == path {
		return
	}
	covered := false
	if cs := f.contentSlice(dir); f.cfg.Delegations && cs >= 0 {
		f.withLeaseSlice(p, cs, func(q *sim.Proc) {
			covered = f.dirCovered(q, mutator, dir)
		})
	}
	if covered {
		return
	}
	f.withLeaseSlice(p, f.ownerSlice(dir), func(q *sim.Proc) {
		f.revokePath(q, mutator, dir)
	})
}

// noteStale is the staleness instrument of E22–E24: with
// Config.TrackStaleness a cache hit is compared (bookkeeping only,
// no simulated cost) against the authoritative slice state, and a
// mismatch is counted with its virtual time.
func (f *FS) noteStale(p *sim.Proc, path string, a fs.Attr) {
	if !f.cfg.TrackStaleness || f.domained() {
		// The comparison needs a free global-snapshot read of another
		// domain's namespace, which a partitioned simulation does not
		// have: the instrument is single-kernel-only.
		return
	}
	auth, err := f.shards[f.ownerSlice(path)].ns.Stat(path)
	if err != nil || auth.Ino != a.Ino || auth.Size != a.Size ||
		auth.Mtime != a.Mtime || auth.Ctime != a.Ctime || auth.Nlink != a.Nlink {
		f.StaleReads++
		f.LastStaleAt = p.Now()
	}
}

// CacheStats sums the client attribute-cache counters across every node
// that touched the file system: hits, misses, leases dropped by server
// revocation, and leases dropped by epoch moves (crash-time bulk
// invalidation). The TTL and uncached modes report zero for the last
// two.
func (f *FS) CacheStats() (hits, misses, revoked, epochDrops int64) {
	for _, st := range f.nodes {
		if st.leases != nil {
			h, m, r, e := st.leases.Stats()
			hits, misses, revoked, epochDrops = hits+h, misses+m, revoked+r, epochDrops+e
		}
		if st.attrs != nil {
			h, m := st.attrs.Stats()
			hits, misses = hits+h, misses+m
		}
	}
	return hits, misses, revoked, epochDrops
}

// cachedAttr serves path from the node's attribute cache under the
// configured mode; hits are checked against the authoritative state
// when staleness tracking is on.
func (c *client) cachedAttr(p string) (fs.Attr, bool) {
	st := c.st()
	var a fs.Attr
	var ok bool
	switch c.cfg().CacheMode {
	case CacheNone:
		return fs.Attr{}, false
	case CacheLease:
		a, ok = st.leases.Get(p)
	default:
		a, ok = st.attrs.Get(p)
	}
	if ok {
		c.fsys.noteStale(c.p, p, a)
	}
	return a, ok
}

// fillEntry caches the attributes of p on the client under the
// configured mode — a plain TTL put, or a server-recorded lease grant.
// The client-side cache writes go through simnet.Defer: immediate on
// the single-kernel path (and from client-side callers), at reply
// delivery when the fill happens inside a cross-domain service body.
func (c *client) fillEntry(p2 *sim.Proc, p string, a fs.Attr) {
	st := c.st()
	if simnet.Deferred(p2) {
		simnet.Defer(p2, func() { st.dentries.PutPositive(p, a.Ino) })
	} else {
		st.dentries.PutPositive(p, a.Ino)
	}
	switch c.cfg().CacheMode {
	case CacheNone:
	case CacheLease:
		c.fsys.grant(p2, st, p, a)
	default:
		if simnet.Deferred(p2) {
			simnet.Defer(p2, func() { st.attrs.Put(p, a) })
		} else {
			st.attrs.Put(p, a)
		}
	}
}

// dropEntry discards the client's cached state for p (local knowledge:
// the client itself removed or moved the entry).
func (c *client) dropEntry(p string) {
	st := c.st()
	if st.attrs != nil {
		st.attrs.Invalidate(p)
	}
	if st.leases != nil {
		st.leases.Invalidate(p)
	}
	st.dentries.Invalidate(p)
}

// ReadDirPlus lists a directory and returns each entry's attributes
// from one RPC (fs.ReadDirPlusser): the server pays the readdir paging
// cost plus ReaddirPlusPerEntry per attribute instead of one GETATTR
// round trip each, and the reply fills the client's dentry and
// attribute caches — under CacheLease, as a bulk lease grant. A
// directory that spans every shard (the root under subtree placement)
// falls back to the merged ReadDir plus cached per-entry Stats.
func (c *client) ReadDirPlus(p string) ([]fs.DirEntry, []fs.Attr, error) {
	f := c.fsys
	cfg := c.cfg()
	if f.splitActive() {
		// Like ReadDir: the fan-out reads the split level at service
		// time, closing the queued-request race with a concurrent
		// split.
		return c.splitReadDirPlus(p)
	}
	slice := f.contentSlice(p)
	if slice < 0 {
		return fs.StatEntries(c, p)
	}
	c.node.Syscall(c.p)
	var ents []fs.DirEntry
	var attrs []fs.Attr
	var err error
	cerr := c.call("readdirplus", p, slice, 140, 320, func(sp *sim.Proc, state, srv *shardSrv) {
		ents, err = state.ns.ReadDir(p, sp.Now())
		if err != nil {
			f.serviceOp(sp, srv, cfg.ReaddirService, -1, scanInfo())
			return
		}
		f.serviceOp(sp, srv, readdirCost(cfg, len(ents))+
			time.Duration(len(ents))*cfg.ReaddirPlusPerEntry, -1, scanInfo())
		attrs = make([]fs.Attr, len(ents))
		for i, e := range ents {
			node := state.ns.Get(e.Ino)
			if node == nil {
				continue
			}
			attrs[i] = node.Attr()
			c.fillEntry(sp, childPath(p, e.Name), attrs[i])
		}
	})
	if cerr != nil {
		return nil, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	return ents, attrs, nil
}

// childPath joins a clean directory path and an entry name.
func childPath(dir, name string) string {
	b := make([]byte, 0, len(dir)+1+len(name))
	b = append(b, dir...)
	if dir != "/" {
		b = append(b, '/')
	}
	b = append(b, name...)
	return string(b)
}
