package shard

// Dynamic giant-directory splitting (GIGA+ direction, experiments
// E25–E27): under hash placement a directory's files all live on
// hash(parent) — one slice, one dirLock, one thread pool — so a single
// million-file directory serializes on one shard no matter how many
// shards exist (the §4.3.3 wall reappearing at MDS granularity; E08's
// workload defeats E16's scaling). When a directory's entry count
// crosses Config.SplitThreshold, its entries are incrementally
// re-partitioned across shards by hash-of-name over a doubling radix:
// split level L maps entry e of directory d to partition
// hash(name(e)) mod 2^L, and partition q to slice (hash(d)+q) mod N.
// Splitting stops once the partitions cover every shard (2^L >= N) —
// beyond that another doubling adds addressing without parallelism.
//
// A split step is one atomic state change plus paid traffic, the same
// discipline as replicate() and revokePath(): the entry moves, the
// journal records (both slices, for takeover/restart replay), the lease
// drops on every moved entry and on the directory itself, and the level
// bump all land at the triggering mutation's commit instant — a
// concurrent request sees the old or the new partition map, never half
// a migration — while the triggering server then pays the interconnect
// migration (one hop per source→destination pair, SplitMovePerEntry per
// entry on each side) and the parallel revocation callbacks before its
// RPC returns. Destinations that are down receive the state change
// logically, the way recovery replay would deliver it.
//
// Clients cache a per-directory split bitmap (clientcache.SplitMap):
// the cached level routes a lookup in one RPC when fresh, and a stale
// or missing entry routes to the wrong shard and pays a bounce — a
// misrouted lookup plus redirect, after which the client's bitmap is
// refreshed. GIGA+'s property holds here: the bitmap is a routing hint,
// so staleness costs latency, never correctness. Under CacheLease the
// bitmap rides the directory's lease (revoked by the split itself,
// epoch-checked across failovers); under the TTL and uncached modes it
// lives for Config.SplitBitmapTTL. ReadDir and ReadDirPlus of a split
// directory fan out across the partition slices and merge, with down
// peers skipped and surfaced in FS.PartialListings.

import (
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
)

// dirSplit is the server-side split state of one directory.
type dirSplit struct {
	// level is the current split level: entries are partitioned by
	// hash(name) mod 2^level.
	level int
	// migrating guards against re-triggering while a split's paid phase
	// is still in flight (the state change already landed; the next
	// doubling waits for the traffic to drain).
	migrating bool
}

// SplitEvent records one completed split step (the experiments' view).
type SplitEvent struct {
	// Dir is the split directory and Level its level after the step.
	Dir   string
	Level int
	// Moved is the number of entries migrated by the step.
	Moved int
	// At is the virtual time of the atomic state change.
	At time.Duration
}

// splitActive reports whether dynamic directory splitting is in effect:
// it needs a threshold, hash placement (subtree placement pins whole
// subtrees by design) and somewhere to spread to.
func (f *FS) splitActive() bool {
	return f.cfg.SplitThreshold > 0 && f.cfg.Placement == PlaceHashDir && len(f.shards) > 1
}

// splitLevel returns dir's current split level (0 = unsplit). The
// len check keeps the unsplit hot path at one branch.
func (f *FS) splitLevel(dir string) int {
	if len(f.splitDirs) == 0 {
		return 0
	}
	if ds, ok := f.splitDirs[dir]; ok {
		return ds.level
	}
	return 0
}

// SplitLevel exposes a directory's split level (tests, experiments).
func (f *FS) SplitLevel(dir string) int { return f.splitLevel(dir) }

// dropSplit forgets dir's split state (rmdir: the state dies with the
// directory incarnation; a recreated directory starts unsplit).
func (f *FS) dropSplit(dir string) {
	if len(f.splitDirs) != 0 {
		delete(f.splitDirs, dir)
	}
}

// baseName returns the final component of an already-clean path.
func baseName(p string) string {
	i := len(p) - 1
	for i >= 0 && p[i] != '/' {
		i--
	}
	return p[i+1:]
}

// partitionOf returns name's partition index at the given split level.
func partitionOf(name string, level int) uint32 {
	if level == 0 {
		return 0
	}
	return hashString(name) & (uint32(1)<<level - 1)
}

// sliceAt maps partition q of a directory with hash h to its slice.
func (f *FS) sliceAt(h, q uint32) int {
	return int((h + q) % uint32(len(f.shards)))
}

// splitSlices returns the distinct slices holding dir's partitions,
// home (partition 0) first. Partitions map to consecutive slices, so
// the first min(2^level, N) of them are exactly the distinct set.
func (f *FS) splitSlices(dir string) []int {
	h := hashString(dir)
	n := 1 << f.splitLevel(dir)
	if n > len(f.shards) {
		n = len(f.shards)
	}
	out := make([]int, n)
	for q := range out {
		out[q] = f.sliceAt(h, uint32(q))
	}
	return out
}

// maybeSplit triggers a split step when a successful entry insertion
// (create, link, symlink, a rename's destination) left dir holding
// children entries on the serving slice — the per-partition load, since
// each slice's directory replica holds exactly its partitions' files
// (plus the replicated subdirectories). mutator is the inserting
// client's node, exempted from revocation callbacks like any mutation.
func (f *FS) maybeSplit(sp *sim.Proc, dir string, children int, mutator *nodeState) {
	if children <= f.cfg.SplitThreshold || !f.splitActive() {
		return
	}
	ds, ok := f.splitDirs[dir]
	if ok && (ds.migrating || 1<<ds.level >= len(f.shards)) {
		return
	}
	if f.domained() {
		f.splitDomained(sp, dir, mutator)
		return
	}
	if !ok {
		ds = &dirSplit{}
		f.splitDirs[dir] = ds
	}
	f.split(sp, dir, ds, mutator)
}

// splitBatch is the migration traffic of one source→destination pair.
type splitBatch struct {
	src, dst int
	moved    int
}

// split advances dir one doubling step: level L → L+1. Entries whose
// name hash sets bit L move from partition q to partition q+2^L — from
// slice (h+q) mod N to slice (h+q+2^L) mod N. See the package comment
// at the top of this file for the atomicity discipline.
func (f *FS) split(sp *sim.Proc, dir string, ds *dirSplit, mutator *nodeState) {
	ds.migrating = true
	batches, victims := f.splitApply(dir, ds, mutator, sp.Now())
	f.splitPay(sp, batches, victims)
	ds.migrating = false
}

// splitDomained is split under kernel domains: the atomic re-partition
// (splitApply) runs at a sync point one lookahead ahead — every domain
// observes the level bump, the moved entries and the dropped leases at
// the same virtual instant — and the triggering server then pays the
// migration traffic from its own domain. The split maps and the
// migrating flag flip only at sync points, so every domain reads them
// race-free between windows. A sync registered now fires at
// now+lookahead exactly, so sleeping SyncDelay parks the trigger until
// the instant after the state change — the timestamped equivalent of
// the legacy "no virtual time passes in phase 1" rule.
func (f *FS) splitDomained(sp *sim.Proc, dir string, mutator *nodeState) {
	var batches []splitBatch
	var victims []*nodeState
	var ds *dirSplit
	f.rt.Group().AtSync(sp, sp.Now(), func() {
		d, ok := f.splitDirs[dir]
		if ok && (d.migrating || 1<<d.level >= len(f.shards)) {
			return // a concurrent trigger won the race to this instant
		}
		if !ok {
			d = &dirSplit{}
			f.splitDirs[dir] = d
		}
		ds = d
		ds.migrating = true
		batches, victims = f.splitApply(dir, ds, mutator, f.k.Now())
	})
	sp.Sleep(f.rt.Group().SyncDelay())
	if ds == nil {
		return // lost the race; the winner pays the traffic
	}
	f.splitPay(sp, batches, victims)
	f.rt.Group().AtSync(sp, sp.Now(), func() { ds.migrating = false })
}

// splitApply is phase 1 — atomic at now: move the entries, journal both
// sides, drop the moved entries' leases and the directory's own (the
// callback carries the stale bitmap away with the stale attributes),
// bump the level. No virtual time passes in here; under domains it runs
// at a sync point with every domain parked.
func (f *FS) splitApply(dir string, ds *dirSplit, mutator *nodeState, now time.Duration) ([]splitBatch, []*nodeState) {
	oldLevel := ds.level
	oldParts := 1 << oldLevel
	h := hashString(dir)
	mask := uint32(oldParts - 1)
	bit := uint32(oldParts)
	var batches []splitBatch
	var victims []*nodeState
	moved := 0
	for q := 0; q < oldParts; q++ {
		src := f.sliceAt(h, uint32(q))
		dst := f.sliceAt(h, uint32(q)+bit)
		if src == dst {
			continue // the new partition co-locates: an addressing change only
		}
		srcState, dstState := f.shards[src], f.shards[dst]
		ents, err := srcState.ns.ReadDir(dir, now)
		if err != nil {
			continue
		}
		b := splitBatch{src: src, dst: dst}
		for _, e := range ents {
			nh := hashString(e.Name)
			if nh&mask != uint32(q) || nh&bit == 0 {
				continue // stays in partition q
			}
			path := childPath(dir, e.Name)
			if e.Type == fs.TypeDirectory {
				// Directory entries are replicated, not partitioned: the
				// namespace needs no move, but the entry's owner slice —
				// where its leases are keyed — still changes with the
				// level, so the old slice's grants must die or later
				// mutations would miss them and leak stale hits.
				victims = append(victims, f.splitRevoke(src, path, mutator)...)
				continue
			}
			if !f.moveEntry(src, dst, path, e, now) {
				continue
			}
			srcState.journalAppend(f.cfg.JournalCap, fs.OpUnlink, path)
			dstState.journalAppend(f.cfg.JournalCap, fs.OpCreate, path)
			victims = append(victims, f.splitRevoke(src, path, mutator)...)
			b.moved++
		}
		if b.moved > 0 {
			batches = append(batches, b)
			moved += b.moved
		}
	}
	// The directory's read leases die with the old bitmap: holders are
	// told immediately (and their cached split level drops with the
	// callback); clients without a lease keep routing on whatever they
	// cached until it expires, and pay bounces (E27).
	victims = append(victims, f.splitRevoke(f.ownerSlice(dir), dir, mutator)...)
	ds.level = oldLevel + 1
	f.SplitMoved += int64(moved)
	f.Splits = append(f.Splits, SplitEvent{Dir: dir, Level: ds.level, Moved: moved, At: now})
	return batches, victims
}

// splitPay is phase 2 — paid: the triggering server coordinates. Per
// pair it pays the read-and-pack cost locally and one interconnect hop
// delivering the batch (unpack, insert, journal log) to the
// destination; per revoked lease one callback round trip, fanned out
// in parallel like revokePath. Down destinations got the state
// logically and recovery replay prices their catch-up. Under domains a
// source slice living in another domain packs its batch there (one
// forwarded hop); the single-kernel path is unchanged.
func (f *FS) splitPay(sp *sim.Proc, batches []splitBatch, victims []*nodeState) {
	for _, b := range batches {
		cost := time.Duration(b.moved) * f.cfg.SplitMovePerEntry
		logBytes := int64(b.moved) * f.cfg.MetaLogBytes
		srcSrv := f.srvFor(b.src)
		dstSrv := f.srvFor(b.dst)
		if f.domained() && f.kFor(srcSrv.index) != sp.Kernel() {
			ss := srcSrv
			f.hop(sp, ss, func(q *sim.Proc) {
				f.chargeOp(q, ss, cost, -1, scanInfo())
			})
		} else {
			f.chargeOp(sp, srcSrv, cost, -1, scanInfo())
		}
		// The destination side is a bulk ingest into the backend: the
		// backend's move factor scales it (cheap append on an LSM store,
		// random inserts on a B-tree), computed from the unscaled cost so
		// the default backend stays byte-identical.
		dstCost := cost
		if mf := dstSrv.be.moveFactor(); mf != 1 {
			dstCost = time.Duration(float64(cost) * mf)
		}
		switch {
		case dstSrv.up && dstSrv != srcSrv:
			dst := dstSrv
			f.hop(sp, dst, func(q *sim.Proc) {
				f.charge(q, dst, dstCost, -1)
				dst.be.log(q, logBytes)
			})
		case dstSrv.up && f.domained() && f.kFor(dstSrv.index) != sp.Kernel():
			// Co-located slices whose server lives in another domain
			// still pay a forwarded hop for the ingest.
			dst := dstSrv
			f.hop(sp, dst, func(q *sim.Proc) {
				f.charge(q, dst, dstCost, -1)
				dst.be.log(q, logBytes)
			})
		case dstSrv.up:
			// A failover co-located both slices on one server: the
			// destination work is local, no interconnect hop — the same
			// rule as splitFanout's peer==srv branch.
			f.charge(sp, dstSrv, dstCost, -1)
			dstSrv.be.log(sp, logBytes)
		}
	}
	if len(victims) > 0 {
		procs := make([]*sim.Proc, 0, len(victims))
		for _, st := range victims {
			addI64(&f.Revocations, 1)
			st := st
			procs = append(procs, sp.Spawn("splitrevoke", func(q *sim.Proc) { f.cbCost(q, st) }))
		}
		for _, q := range procs {
			sp.Join(q)
		}
	}
}

// entryID is the cluster-wide identity of one directory entry: slices
// number their inodes independently, so an ino is only meaningful
// together with its slice.
type entryID struct {
	slice int
	ino   fs.Ino
}

// moveEntry re-homes one non-directory entry from slice src to slice
// dst, preserving type, mode, size and symlink target, and records the
// identity move in FS.moved so open handles can chase it. It reports
// whether the entry actually moved (a lost race leaves both sides
// untouched). Like the cross-shard rename migrate, the move re-creates
// the entry as a fresh inode: a hard link whose two names a split
// separates into different partitions is severed into independent
// files — the partition-keyed-inode limitation the Link path's EXDEV
// rule already documents, surfacing at split time instead of link
// time.
func (f *FS) moveEntry(src, dst int, path string, e fs.DirEntry, now time.Duration) bool {
	srcNS, dstNS := f.shards[src].ns, f.shards[dst].ns
	node := srcNS.Get(e.Ino)
	if node == nil {
		return false
	}
	var ni *namespace.Inode
	var err error
	if e.Type == fs.TypeSymlink {
		ni, err = dstNS.Symlink(node.Target, path, now)
		if err != nil {
			return false
		}
	} else {
		ni, err = dstNS.Create(path, node.Mode, now)
		if err != nil {
			return false
		}
		if node.Size > 0 {
			dstNS.SetSize(ni.Ino, node.Size, now)
		}
	}
	srcNS.Unlink(path, now)
	f.moved[entryID{src, e.Ino}] = entryID{dst, ni.Ino}
	return true
}

// chaseMoves follows an entry identity through every migration it has
// been through since the caller recorded it.
func (f *FS) chaseMoves(id entryID) entryID {
	for {
		next, ok := f.moved[id]
		if !ok {
			return id
		}
		id = next
	}
}

// splitRevoke drops every live read lease on path from slice's table at
// the commit instant and returns the holders owed a callback delivery.
// The mutator — the client whose insertion triggered the split — is
// invalidated silently like in revokePath: its refresh rides its own
// reply. Unlike revokePath it never sleeps — split applies all its
// revocations atomically and pays the deliveries in one parallel
// fan-out after.
func (f *FS) splitRevoke(slice int, path string, mutator *nodeState) []*nodeState {
	t := f.leases[slice]
	grants := t.read[path]
	if len(grants) == 0 {
		return nil
	}
	now := f.k.Now()
	var out []*nodeState
	for _, g := range grants {
		if g.st == mutator {
			g.st.leases.Invalidate(path)
			if g.st.splits != nil {
				g.st.splits.Invalidate(path)
			}
			continue
		}
		if g.expiry < now {
			continue
		}
		g.st.leases.Revoke(path)
		g.st.dentries.Invalidate(path)
		if g.st.splits != nil {
			g.st.splits.Invalidate(path)
		}
		out = append(out, g.st)
	}
	delete(t.read, path)
	return out
}

// routeEntry models the client's split-bitmap routing for the entry at
// p before the real RPC goes out: when the cached (possibly stale or
// missing) bitmap names a different slice than the authoritative
// routing, the client pays a bounce — a misrouted lookup at the guessed
// shard plus its redirect — and refreshes its bitmap either way. When
// nothing is split anywhere this is one map-length branch.
func (c *client) routeEntry(p string) {
	f := c.fsys
	if f.cfg.Placement != PlaceHashDir || len(f.shards) == 1 {
		return
	}
	st := c.st()
	if len(f.splitDirs) == 0 && (st.splits == nil || st.splits.Len() == 0) {
		return // nothing split anywhere: the fast path
	}
	dir := fs.ParentDir(p)
	h := hashString(dir)
	authLevel := f.splitLevel(dir)
	auth := f.sliceAt(h, partitionOf(baseName(p), authLevel))
	var cached int
	if st.splits != nil {
		cached, _ = st.splits.Get(dir)
	}
	if guess := f.sliceAt(h, partitionOf(baseName(p), cached)); guess != auth {
		// Misrouted: the shard the stale bitmap named pays a lookup,
		// finds the name outside its partitions, and redirects. Best
		// effort against a down server — the real operation's retry
		// engine owns failure handling.
		f.Bounces++
		srv := f.srvFor(guess)
		f.conn(c.node, srv).TryCallDom(c.p, 120, 90, func(sp *sim.Proc) {
			f.serviceOp(sp, srv, f.cfg.LookupService, -1, opInfo{cls: opRead, dirSize: -1})
		})
	}
	c.learnSplit(dir, authLevel)
}

// learnSplit refreshes the client's bitmap entry for dir after contact
// with a server that knows dir's current level. Under CacheLease the
// entry lives for the lease TTL and is epoch-checked like any lease;
// under the TTL and uncached modes it lives for SplitBitmapTTL.
func (c *client) learnSplit(dir string, level int) {
	st := c.st()
	if level <= 0 {
		if st.splits != nil {
			st.splits.Invalidate(dir)
		}
		return
	}
	f := c.fsys
	if st.splits == nil {
		var epochOf func(int) uint64
		if f.cfg.CrashInvalidate {
			epochOf = func(slice int) uint64 { return f.epochs[slice] }
		}
		st.splits = clientcache.NewSplitMap(f.k.Now, epochOf)
	}
	ttl := f.cfg.SplitBitmapTTL
	if f.cfg.CacheMode == CacheLease {
		ttl = f.cfg.LeaseTTL
	}
	home := int(hashString(dir) % uint32(len(f.shards)))
	st.splits.Put(dir, level, c.p.Now()+ttl, home, f.epochs[home])
}

// SplitBitmapStats sums the client split-bitmap counters across every
// node that touched the file system: routing served from a fresh bitmap
// (hits), routes taken blind (misses) and bitmaps dropped by epoch
// moves. Bounces are counted separately on FS.Bounces — a miss that
// happens to guess the right slice costs nothing.
func (f *FS) SplitBitmapStats() (hits, misses, epochDrops int64) {
	for _, st := range f.nodes {
		if st.splits != nil {
			h, m, e := st.splits.Stats()
			hits, misses, epochDrops = hits+h, misses+m, epochDrops+e
		}
	}
	return hits, misses, epochDrops
}

// mergeFiles appends the non-directory entries of more to ents:
// directory entries are replicated on every slice and were already
// listed by the home partition.
func mergeFiles(ents, more []fs.DirEntry) []fs.DirEntry {
	for _, e := range more {
		if e.Type != fs.TypeDirectory {
			ents = append(ents, e)
		}
	}
	return ents
}

// splitFanout is the shared listing engine of a split directory: the
// home partition's slice serves first (its listing includes every
// replicated subdirectory), then the serving server visits each other
// partition slice — locally when a failover co-located it, else over
// the interconnect — and merges. Per slice it charges cost(n) and hands
// the entries to merge with filesOnly=true for peers (their directory
// entries are replicas the home already listed). Down peers are skipped
// and surfaced in FS.PartialListings, like the subtree root merge.
func (c *client) splitFanout(op, p string, reqBytes, respBytes int64,
	cost func(n int) time.Duration,
	merge func(q *sim.Proc, state *shardSrv, list []fs.DirEntry, filesOnly bool)) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	var err error
	// The home slice (partition 0) is level-independent, so it can be
	// addressed up front; the partition list is computed at service
	// time, so a split that doubles the level while this request sits
	// in a queue cannot hide the just-moved entries from the merge.
	cerr := c.call(op, p, f.contentSlice(p), reqBytes, respBytes, func(sp *sim.Proc, home, srv *shardSrv) {
		f.applyState(sp, home, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			slices := f.splitSlices(p)
			var list []fs.DirEntry
			list, err = home.ns.ReadDir(p, sp.Now())
			if err != nil {
				f.serviceOp(sp, at, cfg.ReaddirService, -1, scanInfo())
				return
			}
			f.serviceOp(sp, at, cost(len(list)), -1, scanInfo())
			merge(sp, home, list, false)
			for _, s := range slices[1:] {
				peer := f.srvFor(s)
				state := f.shards[s]
				if peer == at {
					// A failover made this server serve the peer slice too:
					// merge locally, no interconnect hop.
					more, merr := state.ns.ReadDir(p, sp.Now())
					if merr == nil {
						f.chargeOp(sp, at, cost(len(more)), -1, scanInfo())
						merge(sp, state, more, true)
					}
					continue
				}
				if !peer.up {
					addI64(&f.PartialListings, 1)
					continue
				}
				f.hop(sp, peer, func(q *sim.Proc) {
					more, merr := state.ns.ReadDir(p, q.Now())
					if merr != nil {
						return
					}
					f.chargeOp(q, peer, cost(len(more)), -1, scanInfo())
					merge(q, state, more, true)
				})
			}
		})
	})
	if cerr != nil {
		return cerr
	}
	return err
}

// splitReadDir lists a split directory through the fan-out — the cost
// E27 prices.
func (c *client) splitReadDir(p string) ([]fs.DirEntry, error) {
	cfg := c.cfg()
	var ents []fs.DirEntry
	err := c.splitFanout("readdir", p, 130, 260,
		func(n int) time.Duration { return readdirCost(cfg, n) },
		func(q *sim.Proc, state *shardSrv, list []fs.DirEntry, filesOnly bool) {
			if filesOnly {
				ents = mergeFiles(ents, list)
			} else {
				ents = append(ents, list...)
			}
		})
	if err != nil {
		return nil, err
	}
	return ents, nil
}

// splitReadDirPlus is the batched-lookup fan-out over a split
// directory: every partition slice returns its entries with attributes
// for ReaddirPlusPerEntry each, and the merged reply fills the client's
// caches (a bulk lease grant under CacheLease, keyed per entry to its
// owning slice).
func (c *client) splitReadDirPlus(p string) ([]fs.DirEntry, []fs.Attr, error) {
	cfg := c.cfg()
	var ents []fs.DirEntry
	var attrs []fs.Attr
	err := c.splitFanout("readdirplus", p, 140, 320,
		func(n int) time.Duration {
			return readdirCost(cfg, n) + time.Duration(n)*cfg.ReaddirPlusPerEntry
		},
		func(q *sim.Proc, state *shardSrv, list []fs.DirEntry, filesOnly bool) {
			for _, e := range list {
				if filesOnly && e.Type == fs.TypeDirectory {
					continue
				}
				node := state.ns.Get(e.Ino)
				if node == nil {
					continue
				}
				a := node.Attr()
				ents = append(ents, e)
				attrs = append(attrs, a)
				c.fillEntry(q, childPath(p, e.Name), a)
			}
		})
	if err != nil {
		return nil, nil, err
	}
	return ents, attrs, nil
}

// hasFileEntries reports whether dir's replica in ns still holds any
// non-directory entry — the split-aware rmdir emptiness check, run
// against every partition slice before the removal commits.
func hasFileEntries(n *namespace.Namespace, dir string, now time.Duration) bool {
	ents, err := n.ReadDir(dir, now)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.Type != fs.TypeDirectory {
			return true
		}
	}
	return false
}
