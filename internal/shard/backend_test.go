package shard

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

// backendWorkload runs a fixed mutation/read mix and returns the final
// virtual time plus the FS, so two configurations can be compared for
// exact cost equality.
func backendWorkload(t *testing.T, cfg Config) (time.Duration, *FS) {
	t.Helper()
	k, cl, f := env(t, 2, cfg)
	var end time.Duration
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for d := 0; d < 4; d++ {
			dir := fmt.Sprintf("/d%d", d)
			if err := c.Mkdir(dir); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
			for i := 0; i < 25; i++ {
				if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					t.Fatalf("create: %v", err)
				}
			}
			if _, err := c.Stat(dir + "/f0"); err != nil {
				t.Fatalf("stat: %v", err)
			}
			if _, err := c.Stat(dir + "/missing"); !fs.IsNotExist(err) {
				t.Fatalf("stat missing: %v", err)
			}
			if _, err := c.ReadDir(dir); err != nil {
				t.Fatalf("readdir: %v", err)
			}
			if err := c.Rename(dir+"/f0", dir+"/r0"); err != nil {
				t.Fatalf("rename: %v", err)
			}
			if err := c.Unlink(dir + "/f1"); err != nil {
				t.Fatalf("unlink: %v", err)
			}
		}
		end = p.Now()
	})
	return end, f
}

// TestBackendDefaultEquivalence pins the tentpole contract: an untouched
// Config, an explicit BackendMemJournal and an explicit zero group-commit
// window all price a replicated workload to the exact same virtual
// nanosecond with the same mirror traffic.
func TestBackendDefaultEquivalence(t *testing.T) {
	base := DefaultConfig(4)
	base.Replicate = true
	refEnd, refFS := backendWorkload(t, base)

	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"explicit-memjournal", func(c *Config) { c.Backend = BackendMemJournal }},
		{"zero-window", func(c *Config) { c.GroupCommitWindow = 0 }},
		{"explicit-params", func(c *Config) { c.LSM = DefaultLSMParams(); c.BTree = DefaultBTreeParams() }},
	} {
		cfg := base
		tc.mut(&cfg)
		end, f := backendWorkload(t, cfg)
		if end != refEnd {
			t.Errorf("%s: end time %v, want %v", tc.name, end, refEnd)
		}
		if f.MirrorCount != refFS.MirrorCount {
			t.Errorf("%s: MirrorCount %d, want %d", tc.name, f.MirrorCount, refFS.MirrorCount)
		}
		if f.GroupCommits != 0 || f.GroupCommitOps != 0 {
			t.Errorf("%s: group-commit counters %d/%d on the per-op path",
				tc.name, f.GroupCommits, f.GroupCommitOps)
		}
	}
	if refFS.MirrorCount == 0 {
		t.Fatal("replicated workload produced no mirror traffic")
	}
	if len(refFS.Compactions) != 0 {
		t.Errorf("default backend recorded %d compactions", len(refFS.Compactions))
	}
}

// TestBackendsDivergeFromDefault guards against a silently disconnected
// pricing layer: the non-default backends must change the workload's
// total cost.
func TestBackendsDivergeFromDefault(t *testing.T) {
	base := DefaultConfig(4)
	refEnd, _ := backendWorkload(t, base)
	for _, kind := range []BackendKind{BackendLSM, BackendBTree} {
		cfg := base
		cfg.Backend = kind
		end, f := backendWorkload(t, cfg)
		if end == refEnd {
			t.Errorf("%s priced the workload identically to the default", kind)
		}
		if got := f.Name(); got != "shard4-hashdir-"+kind.String() {
			t.Errorf("Name() = %q, want backend suffix %q", got, kind.String())
		}
	}
}

// TestGroupCommitBatching drives concurrent writers into a replicated
// service with an open window and checks that mutations actually share
// flushes: batches form, followers join them, and the mirror round-trip
// count drops below the per-op run's.
func TestGroupCommitBatching(t *testing.T) {
	run := func(window time.Duration) *FS {
		cfg := DefaultConfig(2)
		cfg.Replicate = true
		cfg.GroupCommitWindow = window
		k, cl, f := env(t, 2, cfg)
		for w := 0; w < 6; w++ {
			w := w
			k.Spawn(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
				c := f.NewClient(cl.Nodes[w%2], p)
				dir := fmt.Sprintf("/w%d", w)
				if err := c.Mkdir(dir); err != nil {
					t.Errorf("mkdir: %v", err)
					return
				}
				for i := 0; i < 20; i++ {
					if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
						t.Errorf("create: %v", err)
						return
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	perOp := run(0)
	batched := run(2 * time.Millisecond)
	if batched.GroupCommits == 0 {
		t.Fatal("no batches formed under a 2ms window")
	}
	if batched.GroupCommitOps == 0 {
		t.Error("no mutation ever joined an open batch")
	}
	if batched.MirrorCount >= perOp.MirrorCount {
		t.Errorf("batching did not reduce mirror round trips: %d >= %d",
			batched.MirrorCount, perOp.MirrorCount)
	}
	// Durability semantics are unchanged: everything acked exists.
	k, cl, f := env(t, 1, func() Config {
		c := DefaultConfig(2)
		c.Replicate = true
		c.GroupCommitWindow = 2 * time.Millisecond
		return c
	}())
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < 10; i++ {
			if err := c.Create(fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		for i := 0; i < 10; i++ {
			if _, err := c.Stat(fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("stat after batched create: %v", err)
			}
		}
	})
}

// TestLSMCompactionDeterministic checks that compaction pauses fire, are
// recorded per shard, and replay identically for the same seed.
func TestLSMCompactionDeterministic(t *testing.T) {
	run := func() *FS {
		cfg := DefaultConfig(2)
		cfg.Backend = BackendLSM
		cfg.LSM.CompactEvery = 16 << 10
		_, f := backendWorkload(t, cfg)
		return f
	}
	a, b := run(), run()
	if len(a.Compactions) == 0 {
		t.Fatal("no compactions with a 16KB interval")
	}
	if len(a.Compactions) != len(b.Compactions) {
		t.Fatalf("compaction count differs across identical runs: %d vs %d",
			len(a.Compactions), len(b.Compactions))
	}
	for i := range a.Compactions {
		if a.Compactions[i] != b.Compactions[i] {
			t.Errorf("compaction %d differs: %+v vs %+v", i, a.Compactions[i], b.Compactions[i])
		}
		if s := a.Compactions[i].Shard; s < 0 || s >= 2 {
			t.Errorf("compaction %d on impossible shard %d", i, s)
		}
		if a.Compactions[i].Dur <= 0 {
			t.Errorf("compaction %d has non-positive duration", i)
		}
	}
}

// TestLSMFactors unit-tests the LSM pricing hooks directly.
func TestLSMFactors(t *testing.T) {
	p := DefaultLSMParams()
	b := &lsmBackend{p: p}
	if got := b.factor(0, opInfo{dirSize: -1}); got != 1 {
		t.Errorf("unclassified factor = %v, want exactly 1", got)
	}
	if got := b.factor(0, opInfo{cls: opRead, negative: true, dirSize: -1}); got != p.BloomNegative {
		t.Errorf("negative lookup factor = %v, want %v", got, p.BloomNegative)
	}
	if got := b.factor(0, opInfo{cls: opRead, dirSize: -1}); got != p.ReadFactor {
		t.Errorf("read factor = %v, want %v", got, p.ReadFactor)
	}
	b.compactEnd = time.Second
	if got := b.factor(time.Millisecond, opInfo{cls: opWrite, dirSize: -1}); got != p.CompactSlowdown*p.WriteFactor {
		t.Errorf("stalled write factor = %v, want %v", got, p.CompactSlowdown*p.WriteFactor)
	}
	if got := b.factor(2*time.Second, opInfo{cls: opWrite, dirSize: -1}); got != p.WriteFactor {
		t.Errorf("post-stall write factor = %v, want %v", got, p.WriteFactor)
	}
	if got := (&lsmBackend{p: p, replay: time.Millisecond}).replayPerEntry(); got != 500*time.Microsecond {
		t.Errorf("replayPerEntry = %v, want 500us", got)
	}
}

// TestBTreeFactors unit-tests page-depth pricing and the hot-directory
// lock shadow.
func TestBTreeFactors(t *testing.T) {
	p := DefaultBTreeParams()
	b := &btreeBackend{p: p, lastWrite: map[string]time.Duration{}}
	if got := b.pageFactor(p.PageFanout - 1); got != 1 {
		t.Errorf("pageFactor(one page) = %v, want 1", got)
	}
	one := b.pageFactor(p.PageFanout)
	two := b.pageFactor(p.PageFanout * p.PageFanout)
	if one <= 1 || two <= one {
		t.Errorf("pageFactor not increasing with depth: %v, %v", one, two)
	}
	// First write into a directory pays no lock wait; a second within
	// LockWindow does; one after the window does not.
	w := opInfo{cls: opWrite, dir: "/hot", dirSize: -1}
	if got := b.factor(0, w); got != p.WriteFactor {
		t.Errorf("cold write factor = %v, want %v", got, p.WriteFactor)
	}
	if got := b.factor(p.LockWindow/2, w); got != p.WriteFactor*p.LockPenalty {
		t.Errorf("hot write factor = %v, want %v", got, p.WriteFactor*p.LockPenalty)
	}
	if got := b.factor(p.LockWindow/2+p.LockWindow, w); got != p.WriteFactor {
		t.Errorf("cooled write factor = %v, want %v", got, p.WriteFactor)
	}
	if got := (&btreeBackend{p: p, replay: time.Millisecond}).replayPerEntry(); got != 1600*time.Microsecond {
		t.Errorf("replayPerEntry = %v, want 1.6ms", got)
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BackendKind
	}{
		{"lsm", BackendLSM}, {"btree", BackendBTree}, {"sql", BackendBTree},
		{"mem", BackendMemJournal}, {"memjournal", BackendMemJournal}, {"", BackendMemJournal},
	} {
		if got := ParseBackend(tc.in); got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if got := ParseBackend(tc.want.String()); got != tc.want {
			t.Errorf("round trip %v -> %q -> %v", tc.want, tc.want.String(), got)
		}
	}
}
