package shard

// Kernel-domain plumbing for the sharded MDS (conservative-lookahead
// parallel simulation, internal/sim domain.go). With Config.Domains > 1
// the cell's event processing partitions into domains: domain 0 runs
// the clients (workers, the measurement master, fault injectors) and
// domains 1..D-1 each run a subset of the shards — every shard's
// thread pools, WAFL, backend, namespace slice and directory locks
// live on its own kernel, and RPCs, interconnect hops, mirrors and
// coherence callbacks become timestamped cross-domain messages.
//
// The correctness discipline has three parts:
//
//   - Slice-state ownership. A slice's namespace, journal, lease table
//     and lock map belong to the domain of the server CURRENTLY SERVING
//     it. Service bodies execute in that domain, so the single-threaded
//     invariant every data structure relies on holds per domain.
//     Ownership moves only at sync points (below), and the window
//     barrier is the happens-before edge for the transfer.
//
//   - Sync points. Rare global transitions — crash, takeover, failback,
//     epoch bumps, serving[] changes, split phase 1 — run at registered
//     virtual instants where every domain is parked at exactly that
//     time (sim.DomainGroup.AtSync). Between sync points that state is
//     immutable, so the hot paths (routing, retry redirection, split
//     levels, down checks) read it from any domain without
//     synchronization.
//
//   - Forwarding. When a request discovers mid-body that the state it
//     must touch lives in another domain — a split or failback re-homed
//     the entry while it waited in a queue — the contacted server
//     forwards the work over the interconnect (applyState), paying a
//     real hop where the single-kernel model let it "proxy" for free.
//     The same rule routes lease-table operations whose owner slice is
//     not the executing slice (withLeaseSlice): a distributed lock
//     manager pays messages between servers.
//
// With Domains <= 1 none of this engages: every helper degrades to the
// exact single-kernel code path, byte for byte.

import (
	"sort"
	"sync/atomic"

	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

// domained reports whether the FS runs on a multi-domain group.
func (f *FS) domained() bool { return f.rt.Domained() }

// Group exposes the FS's domain group (nil when Domains <= 1).
func (f *FS) Group() *sim.DomainGroup { return f.rt.Group() }

// kFor returns the kernel server i lives on (f.k when undomained).
func (f *FS) kFor(i int) *sim.Kernel { return f.rt.KernelFor(i) }

// sliceKernel returns the kernel owning slice s's state — the kernel of
// the server currently serving it. serving[] changes only at sync
// points, so the read is safe from any domain.
func (f *FS) sliceKernel(s int) *sim.Kernel { return f.kFor(f.serving[s]) }

// atSync runs fn at the next safe global instant: immediately when
// undomained (the single kernel is always globally quiescent between
// events), else at a sync point one lookahead window ahead, with every
// domain parked at exactly that time.
func (f *FS) atSync(p *sim.Proc, fn func()) { f.rt.AtSync(p, fn) }

// peerLeg runs body on ps's peer pool across the interconnect:
// coordination CPU on the caller, the round trip, and the body holding
// one peer thread. When ps lives in another domain the leg is a
// cross-domain rendezvous — the one-way latencies ride the message
// timestamps and the body runs in ps's domain while the caller blocks;
// the virtual-time cost is identical to the inline path.
func (f *FS) peerLeg(sp *sim.Proc, ps *shardSrv, name string, body func(q *sim.Proc)) {
	sp.Sleep(f.cfg.CrossShardOverhead)
	if dk := f.kFor(ps.index); f.domained() && dk != sp.Kernel() {
		sim.Call(sp, dk, f.cfg.CrossShardLatency, name, func(q *sim.Proc) {
			ps.peer.Threads.Acquire(q)
			q.Sleep(f.cfg.CrossShardOverhead)
			body(q)
			ps.peer.Threads.Release()
		})
		return
	}
	sp.Sleep(f.cfg.CrossShardLatency)
	ps.peer.Do(sp, func(q *sim.Proc) {
		q.Sleep(f.cfg.CrossShardOverhead)
		body(q)
	})
	sp.Sleep(f.cfg.CrossShardLatency)
}

// applyState runs fn against slice state at the commit instant. When
// the slice's owning domain is not the executing one — a split or a
// failback re-homed it while this request sat in a queue or paid its
// service charge — the contacted server forwards the work to the
// current owner over the interconnect: fn then runs in the owner's
// domain on its peer pool, with at set to the owning server and fwd
// true. Undomained (and in the common domained case where ownership
// did not move) fn runs inline with at = srv, exactly the legacy
// proxying path.
func (f *FS) applyState(sp *sim.Proc, state, srv *shardSrv, fn func(q *sim.Proc, at *shardSrv, fwd bool)) {
	if f.domained() && f.sliceKernel(state.index) != sp.Kernel() {
		own := f.srvFor(state.index)
		f.hop(sp, own, func(q *sim.Proc) { fn(q, own, true) })
		return
	}
	fn(sp, srv, false)
}

// withLeaseSlice runs fn in the domain owning slice s's lease table,
// forwarding over the interconnect when the caller executes elsewhere —
// cross-server lease management costs a message, the way a distributed
// lock manager's does. Undomained it is a direct call.
func (f *FS) withLeaseSlice(p *sim.Proc, s int, fn func(q *sim.Proc)) {
	if f.domained() && f.sliceKernel(s) != p.Kernel() {
		f.hop(p, f.srvFor(s), fn)
		return
	}
	fn(p)
}

// persistAt is persist, except that work forwarded onto a peer pool
// (srv != orig) commits per-op: peer-pool threads must never wait on a
// group-commit batch whose leader may need this very pool for its
// mirror round trip — the same acyclicity rule the cross-shard rename
// migrate follows.
func (f *FS) persistAt(q *sim.Proc, state, srv, orig *shardSrv, kind fs.OpKind, path string, logBytes int64) {
	if srv != orig {
		srv.be.log(q, logBytes)
		f.commit(q, state, srv, kind, path)
		return
	}
	f.persist(q, state, srv, kind, path, logBytes)
}

// recordCompaction appends one LSM compaction event. Under domains the
// shards stall concurrently, so the slice is mutex-guarded and kept
// ordered by (At, Shard) — the set of events is deterministic, their
// wall-clock arrival order is not. Undomained it is a plain append (the
// single kernel already appends in virtual-time order).
func (f *FS) recordCompaction(ev CompactionEvent) {
	if !f.domained() {
		f.Compactions = append(f.Compactions, ev)
		return
	}
	f.evMu.Lock()
	defer f.evMu.Unlock()
	i := sort.Search(len(f.Compactions), func(i int) bool {
		c := f.Compactions[i]
		if c.At != ev.At {
			return c.At > ev.At
		}
		return c.Shard > ev.Shard
	})
	f.Compactions = append(f.Compactions, CompactionEvent{})
	copy(f.Compactions[i+1:], f.Compactions[i:])
	f.Compactions[i] = ev
}

// addI64 bumps a counter that service bodies increment from several
// domains concurrently. Sums are order-independent, so the totals stay
// deterministic; undomained the atomic op is just an add.
func addI64(ctr *int64, d int64) { atomic.AddInt64(ctr, d) }

// loadI64 reads such a counter (safe during a run from any domain).
func loadI64(ctr *int64) int64 { return atomic.LoadInt64(ctr) }
