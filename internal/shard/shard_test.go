package shard

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

// env builds a kernel, a small cluster and a sharded FS.
func env(t *testing.T, nodes int, cfg Config) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.New(42)
	cl := cluster.New(k, cluster.DefaultConfig(nodes))
	return k, cl, New(k, "test", cfg)
}

// drive runs fn as a single simulated process and drives the kernel.
func drive(t *testing.T, k *sim.Kernel, cl *cluster.Cluster, f *FS, fn func(c fs.Client, p *sim.Proc)) {
	t.Helper()
	k.Spawn("test", func(p *sim.Proc) {
		fn(f.NewClient(cl.Nodes[0], p), p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// twoDirsOnDifferentShards returns two top-level directory paths whose
// file contents live on different shards under the given FS.
func twoDirsOnDifferentShards(t *testing.T, f *FS) (string, string) {
	t.Helper()
	first := "/d0"
	for i := 1; i < 64; i++ {
		cand := fmt.Sprintf("/d%d", i)
		if f.ShardOfDir(cand) != f.ShardOfDir(first) {
			return first, cand
		}
	}
	t.Fatal("no shard-crossing directory pair found")
	return "", ""
}

func TestHashPlacementRouting(t *testing.T) {
	_, _, f := env(t, 1, DefaultConfig(4))
	// All files of one directory belong to one shard (partition by
	// parent), and the shard of an entry is the shard of its parent's
	// contents.
	if f.ShardOfEntry("/a/f1") != f.ShardOfEntry("/a/f2") {
		t.Error("files of one directory routed to different shards")
	}
	if f.ShardOfEntry("/a/f1") != f.ShardOfDir("/a") {
		t.Error("entry owner disagrees with parent content shard")
	}
	// Directory grain: at least two of these dirs must land on
	// different shards for a 4-way partition of 32 names.
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		seen[f.ShardOfDir(fmt.Sprintf("/dir%d", i))] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 directories all hashed to %d shard(s)", len(seen))
	}
}

func TestSubtreeAssignPinsPlacement(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Placement = PlaceSubtree
	cfg.SubtreeAssign = map[string]int{"p0": 0, "p1": 1, "p2": 2, "p3": 3}
	_, _, f := env(t, 1, cfg)
	for i := 0; i < 4; i++ {
		top := fmt.Sprintf("/p%d", i)
		if got := f.ShardOfDir(top); got != i {
			t.Errorf("ShardOfDir(%s) = %d, want %d", top, got, i)
		}
		// Everything below the subtree stays on the same shard.
		if got := f.ShardOfEntry(top + "/sub/file"); got != i {
			t.Errorf("ShardOfEntry(%s/sub/file) = %d, want %d", top, got, i)
		}
	}
	if f.ShardOfDir("/") != -1 {
		t.Error("subtree root should span shards (ShardOfDir = -1)")
	}
}

func TestHashDirReplication(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig(4))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/proj"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Mkdir("/proj/sub"); err != nil {
			t.Errorf("mkdir sub: %v", err)
		}
	})
	// Directories must exist in every shard's namespace.
	for i := 0; i < f.NumShards(); i++ {
		for _, dir := range []string{"/proj", "/proj/sub"} {
			if _, err := f.Namespace(i).Stat(dir); err != nil {
				t.Errorf("shard %d missing replicated dir %s: %v", i, dir, err)
			}
		}
	}
	if f.BroadcastCount != 2 {
		t.Errorf("BroadcastCount = %d, want 2", f.BroadcastCount)
	}

	// Rmdir removes the replica everywhere.
	k2 := sim.New(43)
	cl2 := cluster.New(k2, cluster.DefaultConfig(1))
	f2 := New(k2, "test2", DefaultConfig(4))
	k2.Spawn("rm", func(p *sim.Proc) {
		c := f2.NewClient(cl2.Nodes[0], p)
		c.Mkdir("/gone")
		if err := c.Rmdir("/gone"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f2.NumShards(); i++ {
		if _, err := f2.Namespace(i).Stat("/gone"); !fs.IsNotExist(err) {
			t.Errorf("shard %d still has removed dir (err=%v)", i, err)
		}
	}
}

func TestCrossShardRenameMigratesFile(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig(4))
	src, dst := twoDirsOnDifferentShards(t, f)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for _, d := range []string{src, dst} {
			if err := c.Mkdir(d); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
		}
		if err := c.Create(src + "/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		h, err := c.Open(src + "/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		c.Write(h, 1000)
		c.Close(h)
		before := f.CrossCount
		if err := c.Rename(src+"/f", dst+"/f"); err != nil {
			t.Fatalf("cross-shard rename: %v", err)
		}
		if f.CrossCount <= before {
			t.Error("cross-shard rename did not cross the interconnect")
		}
		if _, err := c.Stat(src + "/f"); !fs.IsNotExist(err) {
			t.Errorf("source still present after migrate (err=%v)", err)
		}
		a, err := c.Stat(dst + "/f")
		if err != nil {
			t.Fatalf("stat migrated file: %v", err)
		}
		if a.Size != 1000 {
			t.Errorf("migrated size = %d, want 1000", a.Size)
		}
	})
}

func TestSameShardRenameStaysLocal(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig(4))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/dir"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Create("/dir/a"); err != nil {
			t.Fatalf("create: %v", err)
		}
		before := f.CrossCount
		if err := c.Rename("/dir/a", "/dir/b"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if f.CrossCount != before {
			t.Error("same-directory rename crossed the interconnect")
		}
	})
}

func TestCrossShardDirRenameAndLinkEXDEV(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig(4))
	src, dst := twoDirsOnDifferentShards(t, f)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for _, d := range []string{src, dst} {
			if err := c.Mkdir(d); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
		}
		if err := c.Mkdir(src + "/sub"); err != nil {
			t.Fatalf("mkdir sub: %v", err)
		}
		if err := c.Rename(src+"/sub", dst+"/sub"); fs.CodeOf(err) != fs.EXDEV {
			t.Errorf("cross-shard dir rename: got %v, want EXDEV", err)
		}
		if err := c.Create(src + "/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Link(src+"/f", dst+"/l"); fs.CodeOf(err) != fs.EXDEV {
			t.Errorf("cross-shard link: got %v, want EXDEV", err)
		}
	})
}

func TestSubtreeRootReadDirMerges(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Placement = PlaceSubtree
	cfg.SubtreeAssign = map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	k, cl, f := env(t, 1, cfg)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		for _, d := range []string{"/a", "/b", "/c", "/d"} {
			if err := c.Mkdir(d); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
		}
		before := f.CrossCount
		ents, err := c.ReadDir("/")
		if err != nil {
			t.Fatalf("readdir /: %v", err)
		}
		if len(ents) != 4 {
			t.Errorf("root listing has %d entries, want 4", len(ents))
		}
		if f.CrossCount != before+3 {
			t.Errorf("root readdir crossed %d times, want 3 (one per peer)", f.CrossCount-before)
		}
	})
}

func TestSubtreeOpsStayOnOwningShard(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Placement = PlaceSubtree
	cfg.SubtreeAssign = map[string]int{"vol": 2}
	k, cl, f := env(t, 1, cfg)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/vol"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Mkdir("/vol/sub"); err != nil {
			t.Fatalf("mkdir sub: %v", err)
		}
		for i := 0; i < 10; i++ {
			if err := c.Create(fmt.Sprintf("/vol/sub/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		if f.CrossCount != 0 || f.BroadcastCount != 0 {
			t.Errorf("subtree-local ops crossed shards: cross=%d bcast=%d",
				f.CrossCount, f.BroadcastCount)
		}
	})
	ops := f.ShardOps()
	for i, n := range ops {
		if i == 2 && n == 0 {
			t.Error("owning shard served no operations")
		}
		if i != 2 && n != 0 {
			t.Errorf("shard %d served %d ops, want 0", i, n)
		}
	}
}

// makeFilesRun drives w concurrent creator processes of n files each in
// per-process directories and returns the virtual completion time.
func makeFilesRun(t *testing.T, shards, w, n int) time.Duration {
	t.Helper()
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(w))
	f := New(k, "scale", DefaultConfig(shards))
	var end time.Duration
	for r := 0; r < w; r++ {
		r := r
		node := cl.Nodes[r]
		k.Spawn(fmt.Sprintf("w%d", r), func(p *sim.Proc) {
			c := f.NewClient(node, p)
			dir := fmt.Sprintf("/w%d", r)
			if err := c.Mkdir(dir); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < n; i++ {
				if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestShardScalingReducesCompletionTime(t *testing.T) {
	// 32 concurrent clients oversubscribe one shard's 4 worker threads
	// (~7.4 threads of demand); 4 shards spread the queueing.
	one := makeFilesRun(t, 1, 32, 150)
	four := makeFilesRun(t, 4, 32, 150)
	if four >= one {
		t.Errorf("4 shards (%v) not faster than 1 shard (%v)", four, one)
	}
}

func TestIdenticalSeedsIdenticalCounters(t *testing.T) {
	run := func() (int64, int64, int64, time.Duration) {
		k := sim.New(99)
		cl := cluster.New(k, cluster.DefaultConfig(4))
		f := New(k, "det", DefaultConfig(4))
		var end time.Duration
		for r := 0; r < 4; r++ {
			r := r
			node := cl.Nodes[r]
			k.Spawn(fmt.Sprintf("w%d", r), func(p *sim.Proc) {
				c := f.NewClient(node, p)
				dir := fmt.Sprintf("/w%d", r)
				c.Mkdir(dir)
				for i := 0; i < 100; i++ {
					c.Create(fmt.Sprintf("%s/f%d", dir, i))
				}
				c.Rename(fmt.Sprintf("%s/f0", dir), fmt.Sprintf("%s/g0", dir))
				end = p.Now()
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return f.RPCCount(), f.CrossCount, f.BroadcastCount, end
	}
	r1, c1, b1, e1 := run()
	r2, c2, b2, e2 := run()
	if r1 != r2 || c1 != c2 || b1 != b2 || e1 != e2 {
		t.Errorf("identically-seeded runs diverged: rpc %d/%d cross %d/%d bcast %d/%d end %v/%v",
			r1, r2, c1, c2, b1, b2, e1, e2)
	}
}

func TestHashDirRenameEXDEVSameParent(t *testing.T) {
	// Under hash placement even a same-parent directory rename is
	// refused: the partition key of every descendant embeds the
	// directory path, and the replicated tree would go stale.
	k, cl, f := env(t, 1, DefaultConfig(4))
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/proj"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Rename("/proj", "/proj2"); fs.CodeOf(err) != fs.EXDEV {
			t.Errorf("hash dir rename: got %v, want EXDEV", err)
		}
		// Replicas must still agree on the original name.
		for i := 0; i < f.NumShards(); i++ {
			if _, err := f.Namespace(i).Stat("/proj"); err != nil {
				t.Errorf("shard %d lost /proj after refused rename: %v", i, err)
			}
			if _, err := f.Namespace(i).Stat("/proj2"); !fs.IsNotExist(err) {
				t.Errorf("shard %d grew /proj2 after refused rename", i)
			}
		}
		// File renames in one directory stay allowed.
		if err := c.Create("/proj/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Rename("/proj/f", "/proj/g"); err != nil {
			t.Errorf("same-dir file rename: %v", err)
		}
	})
}

func TestSubtreeDirRenameInsideSubtree(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Placement = PlaceSubtree
	cfg.SubtreeAssign = map[string]int{"vol": 1}
	k, cl, f := env(t, 1, cfg)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir("/vol"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Mkdir("/vol/a"); err != nil {
			t.Fatalf("mkdir a: %v", err)
		}
		if err := c.Create("/vol/a/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Rename("/vol/a", "/vol/b"); err != nil {
			t.Fatalf("subtree-local dir rename: %v", err)
		}
		if _, err := c.Stat("/vol/b/f"); err != nil {
			t.Errorf("file lost by local dir rename: %v", err)
		}
	})
}
