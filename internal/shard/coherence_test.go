package shard

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

// leaseCfg returns a lease-coherent n-shard config with staleness
// tracking on.
func leaseCfg(n int) Config {
	cfg := DefaultConfig(n)
	cfg.CacheMode = CacheLease
	cfg.TrackStaleness = true
	return cfg
}

// twoNodes builds a kernel, a two-node cluster and a sharded FS.
func twoNodes(cfg Config) (*sim.Kernel, *cluster.Cluster, *FS) {
	k := sim.New(42)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	return k, cl, New(k, "coh", cfg)
}

func TestLeaseRevocationOnRemoteMutation(t *testing.T) {
	// Node 0 leases a file's attributes; node 1 writes it. The write
	// must deliver a revocation callback before returning, so node 0's
	// next stat refetches and never serves the stale size.
	k, cl, f := twoNodes(leaseCfg(4))
	k.Spawn("t", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := a.Create("/d/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := a.Stat("/d/f"); err != nil { // take the lease
			t.Fatalf("stat: %v", err)
		}
		hitsBefore, _, _, _ := f.CacheStats()
		if at, err := a.Stat("/d/f"); err != nil || at.Size != 0 {
			t.Fatalf("cached stat: %v size=%d", err, at.Size)
		}
		if hits, _, _, _ := f.CacheStats(); hits != hitsBefore+1 {
			t.Fatal("second stat did not hit the lease cache")
		}
		h, err := b.Open("/d/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		b.Write(h, 4096)
		if err := b.Close(h); err != nil {
			t.Fatalf("close: %v", err)
		}
		if f.Revocations == 0 {
			t.Fatal("remote write delivered no revocation callback")
		}
		at, err := a.Stat("/d/f")
		if err != nil {
			t.Fatalf("stat after revoke: %v", err)
		}
		if at.Size != 4096 {
			t.Fatalf("stale size %d served after revocation", at.Size)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.StaleReads != 0 {
		t.Fatalf("coherent cache served %d stale reads", f.StaleReads)
	}
}

func TestTTLCacheServesStaleWhereLeaseDoesNot(t *testing.T) {
	// The same two-node sequence on the TTL cache: node 0's cached size
	// survives node 1's write until the timeout — the §2.1.2 staleness
	// the lease protocol exists to eliminate.
	cfg := DefaultConfig(4)
	cfg.TrackStaleness = true
	k, cl, f := twoNodes(cfg)
	k.Spawn("t", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		a.Mkdir("/d")
		a.Create("/d/f")
		if _, err := a.Stat("/d/f"); err != nil {
			t.Fatalf("stat: %v", err)
		}
		h, _ := b.Open("/d/f")
		b.Write(h, 4096)
		b.Close(h)
		at, err := a.Stat("/d/f")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if at.Size != 0 {
			t.Fatalf("TTL cache refetched (size %d); expected the stale 0", at.Size)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.StaleReads == 0 {
		t.Fatal("staleness tracking missed the stale TTL hit")
	}
}

func TestDirectoryDelegationSkipsSoleWriterRevocations(t *testing.T) {
	// A single writer creating many files in one directory holds the
	// write delegation: no revocation traffic at all. A second writer
	// forces exactly one recall.
	k, cl, f := twoNodes(leaseCfg(4))
	k.Spawn("t", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < 20; i++ {
			if err := a.Create(fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		if f.DelegationGrants == 0 {
			t.Fatal("sole writer was not granted a delegation")
		}
		if f.Revocations != 0 {
			t.Fatalf("sole writer paid %d revocations", f.Revocations)
		}
		recallsBefore := f.DelegationRecalls
		if err := b.Create("/d/other"); err != nil {
			t.Fatalf("second writer create: %v", err)
		}
		if f.DelegationRecalls != recallsBefore+1 {
			t.Fatalf("second writer triggered %d recalls, want 1",
				f.DelegationRecalls-recallsBefore)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRmdirDropsDelegation(t *testing.T) {
	// Removing a directory kills its write delegation with it: after a
	// recreate, the new incarnation's first writer must not pay a
	// recall against the dead delegation, and the old holder must not
	// silently resume covered write-back.
	k, cl, f := twoNodes(leaseCfg(4))
	k.Spawn("t", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := a.Create("/d/f"); err != nil { // a holds the delegation
			t.Fatalf("create: %v", err)
		}
		if f.DelegationGrants == 0 {
			t.Fatal("no delegation granted")
		}
		if err := a.Unlink("/d/f"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if err := a.Rmdir("/d"); err != nil {
			t.Fatalf("rmdir: %v", err)
		}
		if err := b.Mkdir("/d"); err != nil { // a fresh incarnation
			t.Fatalf("re-mkdir: %v", err)
		}
		recallsBefore := f.DelegationRecalls
		if err := b.Create("/d/g"); err != nil {
			t.Fatalf("create in recreated dir: %v", err)
		}
		if f.DelegationRecalls != recallsBefore {
			t.Fatalf("first writer of a recreated directory paid %d recalls "+
				"against the dead delegation", f.DelegationRecalls-recallsBefore)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirRenameRevokesDescendantLeases(t *testing.T) {
	// Renaming a directory (allowed under subtree placement) moves every
	// descendant: leases keyed by the old paths must die with it, or a
	// holder would keep serving attributes for names that no longer
	// exist.
	cfg := leaseCfg(4)
	cfg.Placement = PlaceSubtree
	cfg.SubtreeAssign = map[string]int{"vol": 1}
	k, cl, f := twoNodes(cfg)
	k.Spawn("t", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := b.Mkdir("/vol"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := b.Mkdir("/vol/a"); err != nil {
			t.Fatalf("mkdir a: %v", err)
		}
		if err := b.Create("/vol/a/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := a.Stat("/vol/a/f"); err != nil { // lease on the old path
			t.Fatalf("stat: %v", err)
		}
		if err := b.Rename("/vol/a", "/vol/b"); err != nil {
			t.Fatalf("dir rename: %v", err)
		}
		if _, err := a.Stat("/vol/a/f"); !fs.IsNotExist(err) {
			t.Fatalf("stat of moved-away path: got %v, want ENOENT", err)
		}
		if at, err := a.Stat("/vol/b/f"); err != nil || at.Ino == 0 {
			t.Fatalf("stat of new path: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.StaleReads != 0 {
		t.Fatalf("dir rename left %d stale coherent reads", f.StaleReads)
	}
}

func TestReadDirPlusFillsCaches(t *testing.T) {
	// One readdirplus RPC returns every entry's attributes and leaves
	// the client able to stat each entry without further RPCs.
	k, cl, f := twoNodes(leaseCfg(4))
	k.Spawn("t", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < 8; i++ {
			if err := c.Create(fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
		c.DropCaches()
		ents, attrs, err := fs.ReadDirPlus(c, "/d")
		if err != nil {
			t.Fatalf("readdirplus: %v", err)
		}
		if len(ents) != 8 || len(attrs) != 8 {
			t.Fatalf("got %d entries, %d attrs", len(ents), len(attrs))
		}
		for i, e := range ents {
			if attrs[i].Ino != e.Ino {
				t.Fatalf("attrs[%d] does not describe entries[%d]", i, i)
			}
		}
		rpcsBefore := f.RPCCount()
		for i := 0; i < 8; i++ {
			if _, err := c.Stat(fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Fatalf("stat: %v", err)
			}
		}
		if f.RPCCount() != rpcsBefore {
			t.Fatalf("stats after readdirplus issued %d RPCs, want 0",
				f.RPCCount()-rpcsBefore)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// failoverStaleRun runs the E24 micro-scenario: node 0 leases a file on
// the slice about to crash, the slice fails over to its backup, node 1
// writes the file through the backup, and node 0 stats it again. It
// returns the size node 0 observed and the stale-read count.
func failoverStaleRun(t *testing.T, crashInvalidate bool) (int64, int64) {
	t.Helper()
	cfg := leaseCfg(2)
	cfg.Replicate = true
	cfg.CrashInvalidate = crashInvalidate
	cfg.TakeoverDetect = 50 * time.Millisecond
	cfg.LeaseTTL = time.Hour // only invalidation can end the lease here
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := New(k, "fo", cfg)
	// A directory whose entries live on slice 0.
	dir := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("/d%d", i)
		if f.ShardOfDir(cand) == 0 {
			dir = cand
			break
		}
	}
	if dir == "" {
		t.Fatal("no slice-0 directory found")
	}
	file := dir + "/f"
	var size int64 = -1
	k.Spawn("t", func(p *sim.Proc) {
		a := f.NewClient(cl.Nodes[0], p)
		b := f.NewClient(cl.Nodes[1], p)
		if err := a.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := a.Create(file); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if _, err := a.Stat(file); err != nil { // lease from the primary
			t.Errorf("stat: %v", err)
			return
		}
		f.Crash(p, 0)
		p.Sleep(200 * time.Millisecond) // past detection + replay
		if len(f.Takeovers) != 1 {
			t.Error("no takeover happened")
			return
		}
		h, err := b.Open(file) // served by the promoted backup
		if err != nil {
			t.Errorf("open via backup: %v", err)
			return
		}
		b.Write(h, 512)
		if err := b.Close(h); err != nil {
			t.Errorf("close via backup: %v", err)
			return
		}
		at, err := a.Stat(file)
		if err != nil {
			t.Errorf("stat after failover: %v", err)
			return
		}
		size = at.Size
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return size, f.StaleReads
}

func TestFailoverLeaseInvalidation(t *testing.T) {
	// With crash-time invalidation the epoch bump kills node 0's lease
	// at takeover: the post-failover stat refetches the true size. With
	// it off, the promoted backup cannot revoke the dead primary's
	// leases, and node 0 serves the stale size — PR 3's failover would
	// silently leak stale reads without the epoch mechanism.
	size, stale := failoverStaleRun(t, true)
	if size != 512 {
		t.Fatalf("with invalidation: observed size %d, want 512", size)
	}
	if stale != 0 {
		t.Fatalf("with invalidation: %d stale reads, want 0", stale)
	}
	size, stale = failoverStaleRun(t, false)
	if size != 0 {
		t.Fatalf("without invalidation: observed size %d, want the stale 0", size)
	}
	if stale == 0 {
		t.Fatal("without invalidation: stale read not counted")
	}
}

func TestCoherentCountersDeterministic(t *testing.T) {
	run := func() [6]int64 {
		cfg := leaseCfg(4)
		k := sim.New(99)
		cl := cluster.New(k, cluster.DefaultConfig(4))
		f := New(k, "det", cfg)
		for r := 0; r < 4; r++ {
			r := r
			node := cl.Nodes[r]
			k.Spawn(fmt.Sprintf("w%d", r), func(p *sim.Proc) {
				c := f.NewClient(node, p)
				c.Mkdir("/shared")
				for i := 0; i < 40; i++ {
					name := fmt.Sprintf("/shared/f%d", i%8)
					if i%5 == 0 {
						if err := c.Create(name); err != nil && !fs.IsExist(err) {
							t.Errorf("create: %v", err)
						}
					} else {
						c.Stat(name)
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		h, m, rv, ep := f.CacheStats()
		_ = ep
		return [6]int64{f.LeaseGrants, f.Revocations, f.DelegationGrants,
			f.DelegationRecalls, h + m, rv}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identically-seeded coherent runs diverged: %v vs %v", a, b)
	}
}
