package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dmetabench/internal/agg"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
	"dmetabench/internal/workload"
)

// domainFingerprint summarizes one finished run: end time, the FS-wide
// counters, per-shard load, and the final presence of every workload
// path. Two runs of the same configuration must produce identical
// fingerprints regardless of worker threads.
func domainFingerprint(k *sim.Kernel, f *FS, paths []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "end=%v rpcs=%d cross=%d bcast=%d mirror=%d takeovers=%d splitmoved=%d bounces=%d revocations=%d\n",
		k.Now(), f.RPCCount(), f.CrossCount, f.BroadcastCount, f.MirrorCount,
		len(f.Takeovers), f.SplitMoved, f.Bounces, f.Revocations)
	fmt.Fprintf(&b, "ops=%v\n", f.ShardOps())
	aggOps, aggShed, aggBusy := f.AggCounts()
	fmt.Fprintf(&b, "agg=%d shed=%d busy=%v\n", aggOps, aggShed, aggBusy)
	for _, p := range paths {
		st := "absent"
		if _, err := f.Namespace(f.ShardOfEntry(p)).Stat(p); err == nil {
			st = "present"
		}
		fmt.Fprintf(&b, "%s=%s\n", p, st)
	}
	return b.String()
}

// domainWorkloadPaths returns the file paths the workload touches.
func domainWorkloadPaths(clients, files int) []string {
	var paths []string
	for c := 0; c < clients; c++ {
		for i := 0; i < files; i++ {
			paths = append(paths, fmt.Sprintf("/dir%d/f%d-%d", c%3, c, i))
		}
	}
	return paths
}

// runDomainWorkload drives a mixed metadata workload (creates, stats,
// opens/writes, readdirs, unlinks) from several concurrent client
// processes, optionally with a crash/takeover/failback in the middle,
// and returns the run's fingerprint.
func runDomainWorkload(t *testing.T, cfg Config, workers int, faults bool) string {
	return runDomainWorkloadHook(t, cfg, workers, faults, nil)
}

// runDomainWorkloadHook additionally calls attach on the built FS before
// any process runs — the seam the aggregate-injection case uses.
func runDomainWorkloadHook(t *testing.T, cfg Config, workers int, faults bool, attach func(*FS)) string {
	t.Helper()
	const clients, files = 4, 40
	k := sim.New(7)
	cl := cluster.New(k, cluster.DefaultConfig(clients))
	f := New(k, "dom", cfg)
	if attach != nil {
		attach(f)
	}
	if cfg.Domains > 1 {
		g := f.Group()
		if g == nil {
			t.Fatal("Domains > 1 built no domain group")
		}
		g.Workers = workers
	} else if f.Group() != nil {
		t.Fatal("Domains <= 1 must stay on the single-heap kernel")
	}
	for c := 0; c < clients; c++ {
		c := c
		node := cl.Nodes[c]
		k.Spawn(fmt.Sprintf("client-%d", c), func(p *sim.Proc) {
			cli := f.NewClient(node, p)
			cli.Mkdir(fmt.Sprintf("/dir%d", c%3))
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("/dir%d/f%d-%d", c%3, c, i)
				cli.Create(path)
				cli.Stat(path)
				if i%5 == 0 {
					if h, err := cli.Open(path); err == nil {
						cli.Write(h, 4096)
						cli.Close(h)
					}
				}
				if i%7 == 0 {
					cli.ReadDir(fmt.Sprintf("/dir%d", c%3))
				}
				if i%11 == 3 {
					cli.Unlink(path)
					cli.Create(path)
				}
			}
		})
	}
	if faults {
		k.Spawn("fault", func(p *sim.Proc) {
			p.Sleep(3 * time.Millisecond)
			f.Crash(p, 1)
			p.Sleep(400 * time.Millisecond)
			f.Restart(p, 1)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	return domainFingerprint(k, f, domainWorkloadPaths(clients, files))
}

// TestDomainedDeterministic pins the worker-count invariance of the
// domained shard model: the same configuration produces byte-identical
// results on one worker thread and on a full pool, with and without
// crash/takeover/failback and split storms in the mix.
func TestDomainedDeterministic(t *testing.T) {
	base := DefaultConfig(8)
	base.Domains = 9

	lease := base
	lease.CacheMode = CacheLease

	stress := base
	stress.Replicate = true
	stress.CacheMode = CacheLease
	stress.SplitThreshold = 16

	cases := []struct {
		name   string
		cfg    Config
		faults bool
	}{
		{"plain", base, false},
		{"lease", lease, false},
		{"faults-splits", stress, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			one := runDomainWorkload(t, tc.cfg, 1, tc.faults)
			many := runDomainWorkload(t, tc.cfg, 8, tc.faults)
			if one != many {
				t.Errorf("fingerprints differ between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", one, many)
			}
		})
	}
}

// attachMillionClients wires an aggregate arrival process for one
// million analytically-modeled background clients (Zipf popularity,
// diurnal + spike rate modulation, session churn) into every shard of f.
func attachMillionClients(f *FS, shards int) {
	lanes := f.cfg.ShardThreads
	model := agg.Model{
		Clients:      1_000_000,
		OpsPerClient: 0.2,
		Mix:          workload.DefaultMetaMix(),
		Zipf:         agg.ZipfPop{S: 1.2, V: 1, N: 64},
		Diurnal:      agg.Diurnal{Amplitude: 0.5, Period: 400 * time.Millisecond},
		Spikes:       agg.Spikes{MeanInterval: 100 * time.Millisecond, Peak: 2, Decay: 20 * time.Millisecond},
		Churn:        agg.Churn{ActiveFrac: 0.5, SessionMean: 200 * time.Millisecond, Tick: 5 * time.Millisecond},
		Tick:         5 * time.Millisecond,
		Seed:         7,
	}
	sources := agg.NewSources(model, shards, lanes,
		func(obj int) int { return obj % shards })
	f.AttachAggregate(model.Tick, func(si, lane, tick int) AggregateDemand {
		d := sources[si*lanes+lane].Tick(int64(tick))
		return AggregateDemand{Getattr: d.Getattr, Lookup: d.Lookup,
			Readdir: d.Readdir, Create: d.Create}
	})
}

// TestDomainedAggregateDeterministic pins the aggregate-load leg of the
// fingerprint matrix: one million background clients injecting into a
// lease-coherent 4-shard MDS partitioned into 5 domains must produce
// byte-identical fingerprints — including the injected/shed counters —
// on one worker thread and on a full pool.
func TestDomainedAggregateDeterministic(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Domains = 5
	cfg.CacheMode = CacheLease
	attach := func(f *FS) { attachMillionClients(f, cfg.NumShards) }
	one := runDomainWorkloadHook(t, cfg, 1, false, attach)
	many := runDomainWorkloadHook(t, cfg, 8, false, attach)
	if one != many {
		t.Errorf("aggregate fingerprints differ between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", one, many)
	}
	if !strings.Contains(one, "agg=") || strings.Contains(one, "agg=0 ") {
		t.Errorf("aggregate injection recorded no operations:\n%s", one)
	}
}

// TestDomainsDisabledIsLegacy pins that Domains <= 1 is the unchanged
// single-kernel path: no group is built, and Domains=0 and Domains=1
// produce byte-identical runs.
func TestDomainsDisabledIsLegacy(t *testing.T) {
	zero := DefaultConfig(8)
	one := zero
	one.Domains = 1
	a := runDomainWorkload(t, zero, 1, false)
	b := runDomainWorkload(t, one, 1, false)
	if a != b {
		t.Errorf("Domains=0 and Domains=1 fingerprints differ:\n%s\n%s", a, b)
	}
}

// TestDomainedRaceStress is the race-detector stress test: concurrent
// creates, a crash/takeover/failback cycle and a split storm across 8
// shard domains on a full worker pool. Run under `go test -race` it
// checks that no service body ever touches another domain's state
// outside a rendezvous or sync point; the built-in causality checker
// (on by default) panics on any lookahead violation.
func TestDomainedRaceStress(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Domains = 9
	cfg.Replicate = true
	cfg.CacheMode = CacheLease
	cfg.SplitThreshold = 16
	runDomainWorkload(t, cfg, 8, true)
}

// TestDomainedClientsSeeOneNamespace sanity-checks cross-domain
// semantics end to end: a file created by one client is visible to
// another (through its own RPC), unlinked files disappear, and a root
// readdir merges every top-level directory.
func TestDomainedClientsSeeOneNamespace(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Domains = 5
	k := sim.New(11)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := New(k, "vis", cfg)
	k.Spawn("a", func(p *sim.Proc) {
		ca := f.NewClient(cl.Nodes[0], p)
		if err := ca.Mkdir("/shared"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := ca.Create("/shared/file"); err != nil {
			t.Errorf("create: %v", err)
		}
		p.Sleep(10 * time.Millisecond)
		cb := f.NewClient(cl.Nodes[1], p)
		if _, err := cb.Stat("/shared/file"); err != nil {
			t.Errorf("stat from second client: %v", err)
		}
		ents, err := cb.ReadDir("/shared")
		if err != nil || len(ents) != 1 {
			t.Errorf("readdir = %v, %v; want one entry", ents, err)
		}
		if err := cb.Unlink("/shared/file"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		ca.DropCaches()
		var got fs.Attr
		if a, err := ca.Stat("/shared/file"); err == nil {
			got = a
			t.Errorf("stat after unlink succeeded: %+v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
