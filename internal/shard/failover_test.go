package shard

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

// replCfg returns a 2-shard replicated configuration with failover
// timings small enough for tight test assertions.
func replCfg() Config {
	cfg := DefaultConfig(2)
	cfg.Replicate = true
	cfg.TakeoverDetect = 100 * time.Millisecond
	cfg.ReplayPerEntry = 10 * time.Microsecond
	cfg.RetryTimeout = 50 * time.Millisecond
	cfg.RetryBackoff = 10 * time.Millisecond
	cfg.RetryBackoffMax = 100 * time.Millisecond
	return cfg
}

// dirOnShard returns a top-level directory whose file contents hash to
// shard want.
func dirOnShard(t *testing.T, f *FS, want int) string {
	t.Helper()
	for i := 0; i < 256; i++ {
		cand := fmt.Sprintf("/d%d", i)
		if f.ShardOfDir(cand) == want {
			return cand
		}
	}
	t.Fatalf("no directory hashing to shard %d", want)
	return ""
}

func TestFailoverBackupTakesOver(t *testing.T) {
	k, cl, f := env(t, 1, replCfg())
	dir := dirOnShard(t, f, 0)
	var outage time.Duration
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 100; i++ {
			if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		f.Crash(p, 0)
		start := p.Now()
		// The next create on the slice blocks until the backup has
		// taken over, then succeeds against the promoted server.
		if err := c.Create(dir + "/after-crash"); err != nil {
			t.Errorf("create after crash: %v", err)
			return
		}
		outage = p.Now() - start
	})
	if len(f.Takeovers) != 1 {
		t.Fatalf("takeovers = %d, want 1", len(f.Takeovers))
	}
	to := f.Takeovers[0]
	if to.Shard != 0 || to.Backup != 1 {
		t.Fatalf("takeover %d -> %d, want 0 -> 1", to.Shard, to.Backup)
	}
	if to.Entries == 0 || to.Replay == 0 {
		t.Fatalf("takeover replayed %d entries in %v, want a non-empty journal", to.Entries, to.Replay)
	}
	if f.ServingShard(0) != 1 {
		t.Fatalf("slice 0 served by %d, want backup 1", f.ServingShard(0))
	}
	if outage < to.Total() {
		t.Fatalf("client outage %v shorter than takeover %v", outage, to.Total())
	}
	if f.RetryCount == 0 {
		t.Fatal("no client retries recorded across the outage")
	}
}

func TestNoTakeoverWhenBackupDiesInDetectionWindow(t *testing.T) {
	// Both replicas of slice 0 crash before the lease expires: nothing
	// can be promoted, so serving must stay on the primary and no
	// Takeover may be recorded. Both servers restarting brings the
	// slice back on its primary.
	k, cl, f := env(t, 1, replCfg())
	dir := dirOnShard(t, f, 0)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		f.Crash(p, 0)
		p.Sleep(50 * time.Millisecond) // inside the 100ms detection window
		f.Crash(p, 1)
		p.Sleep(time.Second)
		if len(f.Takeovers) != 0 {
			t.Errorf("promoted a dead backup: %+v", f.Takeovers)
		}
		if f.ServingShard(0) != 0 {
			t.Errorf("slice 0 rerouted to %d with no live backup", f.ServingShard(0))
		}
		f.Restart(p, 0)
		f.Restart(p, 1)
		p.Sleep(time.Second)
		if err := c.Create(dir + "/after"); err != nil {
			t.Errorf("create after double restart: %v", err)
		}
	})
}

func TestRestartFailsBack(t *testing.T) {
	k, cl, f := env(t, 1, replCfg())
	dir := dirOnShard(t, f, 0)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 50; i++ {
			if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		f.Crash(p, 0)
		p.Sleep(time.Second) // takeover completes
		if f.ServingShard(0) != 1 {
			t.Error("backup not serving after crash")
		}
		f.Restart(p, 0)
		p.Sleep(time.Second) // recovery completes
		if !f.Up(0) || f.ServingShard(0) != 0 {
			t.Errorf("after restart: up=%v serving=%d, want true/0", f.Up(0), f.ServingShard(0))
		}
		if f.JournalLen(0) != 0 {
			t.Errorf("journal not checkpointed on recovery: %d entries", f.JournalLen(0))
		}
		// The failed-back primary serves again.
		if err := c.Create(dir + "/after-restart"); err != nil {
			t.Errorf("create after failback: %v", err)
		}
	})
}

func TestUnreplicatedOutageBlocksUntilRestart(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.RetryTimeout = 50 * time.Millisecond
	cfg.RetryBackoff = 10 * time.Millisecond
	cfg.RetryBackoffMax = 100 * time.Millisecond
	k, cl, f := env(t, 1, cfg)
	dir := dirOnShard(t, f, 0)
	const downFor = 2 * time.Second
	var outage time.Duration
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		f.Crash(p, 0)
		k.AfterFunc("restart", downFor, func(q *sim.Proc) { f.Restart(q, 0) })
		start := p.Now()
		if err := c.Create(dir + "/f"); err != nil {
			t.Errorf("create across outage: %v", err)
			return
		}
		outage = p.Now() - start
	})
	if len(f.Takeovers) != 0 {
		t.Fatalf("unreplicated config recorded a takeover: %+v", f.Takeovers)
	}
	if outage < downFor {
		t.Fatalf("client op completed in %v, inside the %v outage", outage, downFor)
	}
}

func TestRetryMaxGivesUpWithTimeout(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.RetryTimeout = 10 * time.Millisecond
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryBackoffMax = 2 * time.Millisecond
	cfg.RetryMax = 3
	k, cl, f := env(t, 1, cfg)
	dir := dirOnShard(t, f, 0)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		f.Crash(p, 0) // never restarted
		err := c.Create(dir + "/f")
		if !fs.IsTimeout(err) {
			t.Errorf("create on a dark slice: err=%v, want ETIMEDOUT", err)
		}
	})
}

func TestMirrorAccountingAndOverhead(t *testing.T) {
	// The same create workload must cost more wall-clock with a
	// synchronous backup than without, and count one mirror per file
	// mutation.
	run := func(replicate bool) (time.Duration, *FS) {
		cfg := DefaultConfig(2)
		cfg.Replicate = replicate
		k, cl, f := env(t, 1, cfg)
		var elapsed time.Duration
		drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
			if err := c.Mkdir("/d"); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			start := p.Now()
			for i := 0; i < 200; i++ {
				if err := c.Create(fmt.Sprintf("/d/f%d", i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
			elapsed = p.Now() - start
		})
		return elapsed, f
	}
	plain, fPlain := run(false)
	repl, fRepl := run(true)
	if fPlain.MirrorCount != 0 {
		t.Fatalf("unreplicated run mirrored %d mutations", fPlain.MirrorCount)
	}
	if fRepl.MirrorCount != 200 {
		t.Fatalf("mirrors = %d, want 200 (one per create)", fRepl.MirrorCount)
	}
	if repl <= plain {
		t.Fatalf("replicated run (%v) not slower than plain (%v)", repl, plain)
	}
}

func TestJournalCheckpointsAtCap(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Replicate = true
	cfg.JournalCap = 64
	k, cl, f := env(t, 1, cfg)
	dir := dirOnShard(t, f, 0)
	drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
		if err := c.Mkdir(dir); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 200; i++ {
			if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
	})
	if n := f.JournalLen(0); n >= 200 {
		t.Fatalf("journal grew unbounded: %d entries with cap 64", n)
	}
	if f.shards[0].checkpoints == 0 {
		t.Fatal("no checkpoints recorded despite exceeding the cap")
	}
}

func TestTakeoverScalesWithJournal(t *testing.T) {
	// Takeover latency = detect + entries * ReplayPerEntry: more dirty
	// entries at crash time means a longer promotion.
	takeover := func(files int) time.Duration {
		k, cl, f := env(t, 1, replCfg())
		dir := dirOnShard(t, f, 0)
		drive(t, k, cl, f, func(c fs.Client, p *sim.Proc) {
			if err := c.Mkdir(dir); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < files; i++ {
				if err := c.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
			f.Crash(p, 0)
			if err := c.Create(dir + "/after"); err != nil {
				t.Errorf("create after crash: %v", err)
			}
		})
		if len(f.Takeovers) != 1 {
			t.Fatalf("takeovers = %d, want 1", len(f.Takeovers))
		}
		return f.Takeovers[0].Total()
	}
	small := takeover(50)
	large := takeover(1000)
	if large <= small {
		t.Fatalf("takeover with 1000 dirty entries (%v) not longer than with 50 (%v)", large, small)
	}
}
