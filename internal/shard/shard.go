// Package shard models a sharded metadata service: the namespace of one
// file system is partitioned across N simulated metadata servers (MDS),
// the scaling step beyond the single-MDS systems the thesis measures
// (Lustre's lone MDS in §4.3, the NFS filer of §4.1.2). Related work
// motivates both placement policies it supports:
//
//   - PlaceSubtree partitions by top-level directory subtree, the
//     Ontap-GX/volume style of §4.7: every operation under one subtree
//     is served entirely by the owning shard, so path resolution stays
//     local, but a popular subtree concentrates on one server.
//   - PlaceHashDir partitions file entries by a hash of their parent
//     directory (HopsFS-style partition pruning): directories are
//     replicated on every shard so any shard can resolve paths, files
//     of one directory live on exactly one shard, and directory
//     mutations pay a synchronous broadcast to the other shards.
//
// Cross-shard operations are modeled as extra RPC hops over the MDS
// interconnect: a rename whose source and destination directories live
// on different shards runs as a migrate (insert at the destination,
// remove at the source), and namespace-wide operations (root readdir
// under subtree placement, directory broadcasts under hash placement)
// visit peer shards one interconnect round trip at a time. Peer work is
// served by a dedicated per-shard peer thread pool so forwarded requests
// cannot form circular waits with the client-facing pools.
//
// The model is fault-tolerant in the HopsFS/StoreTorrent direction
// (experiments E19–E21, driven by internal/fault): with
// Config.Replicate, every shard's mutations are journaled and
// synchronously mirrored to a backup peer — shard (i+1) mod N — and when
// a primary crashes, the backup replays the journal after a detection
// delay and takes over serving the slice. Clients observe a crash as RPC
// timeouts and retry with deterministic exponential backoff, so an
// outage appears in the §3.2.5 time-interval methodology as exactly what
// it is: a throughput dip, a COV spike, and a recovery ramp.
//
// Client caching is coherence-aware (coherence.go, experiments
// E22–E24): Config.CacheMode selects an NFS-style TTL attribute cache,
// no attribute caching, or lease-based coherence — server-granted read
// leases per path, revocation callbacks delivered over server→client
// simnet connections before a conflicting mutation's RPC returns,
// write-back directory delegations for a directory's sole writer, and a
// batched readdirplus path (fs.ReadDirPlusser) that fills a client's
// caches in one RPC. Every namespace slice carries a lease epoch; a
// crash takeover or a failback bumps it and discards the slice's lease
// tables, so with Config.CrashInvalidate the failover path cannot leak
// stale reads beyond the takeover itself.
//
// Every shard's storage work is priced by a pluggable backend cost
// model (backend.go, experiments E28–E30): Config.Backend selects the
// default in-memory+journal model, an LSM-tree KV store (write
// amplification, deterministic compaction stalls, bloom-filtered
// negative lookups) or a B-tree/SQL store (page depth scaling with
// directory size, hot-directory lock waits, expensive replay), and
// Config.GroupCommitWindow batches the journal flush and replication
// round trip of mutations committing within one window. The default
// backend with a zero window reproduces the pre-backend cost model byte
// for byte.
//
// Giant directories split dynamically (split.go, experiments E25–E27):
// with Config.SplitThreshold set, a directory whose entry count crosses
// the threshold re-partitions its entries across shards by hash-of-name
// over a doubling split level — the GIGA+ cure for the one-directory/
// one-shard wall — with the migration itself paid as interconnect
// traffic, journaled for takeover replay, and coherent with the lease
// protocol. Clients route through a cached per-directory split bitmap
// and pay a bounce when it is stale; ReadDir/ReadDirPlus fan out over
// the partition slices and merge.
package shard

import (
	"strconv"
	"sync"
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/service"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
	"dmetabench/internal/storage"
)

// Policy selects how the namespace is partitioned across shards.
type Policy int

// Placement policies.
const (
	// PlaceHashDir places a file on hash(parent directory) and
	// replicates directories everywhere (HopsFS style).
	PlaceHashDir Policy = iota
	// PlaceSubtree places whole top-level subtrees on one shard
	// (Ontap-GX volume style).
	PlaceSubtree
)

func (p Policy) String() string {
	if p == PlaceSubtree {
		return "subtree"
	}
	return "hashdir"
}

// Config holds the tunables of the sharded MDS model. Per-shard service
// times default to the FAS3050-class figures of the NFS model so shard
// counts are comparable against the single-server baselines.
type Config struct {
	// NumShards is the metadata server count.
	NumShards int
	// Placement selects the partitioning policy.
	Placement Policy
	// ShardThreads is each shard's client-facing worker pool size.
	ShardThreads int
	// PeerThreads is each shard's pool for inter-MDS requests
	// (broadcast replication, migrate inserts, peer readdir, mirrors).
	PeerThreads int
	// OneWayLatency is the client<->shard network delay.
	OneWayLatency time.Duration
	// CrossShardLatency is the one-way delay of the MDS interconnect.
	CrossShardLatency time.Duration
	// CrossShardOverhead is the extra CPU charged on each side of a
	// forwarded operation (marshalling, transaction bookkeeping).
	CrossShardOverhead time.Duration
	// Domains partitions the simulation itself into conservative-
	// lookahead kernel domains (domain.go, internal/sim): domain 0 runs
	// the clients and domains 1..Domains-1 share the shards, exchanging
	// timestamped messages with lookahead min(CrossShardLatency,
	// OneWayLatency). Results are deterministic for a given Domains
	// value regardless of worker threads; <= 1 (the default) is the
	// single-kernel path, byte for byte.
	Domains int

	CreateService     time.Duration
	GetattrService    time.Duration
	LookupService     time.Duration
	RemoveService     time.Duration
	MkdirService      time.Duration
	RenameService     time.Duration
	ReaddirService    time.Duration
	ReaddirPerEntry   time.Duration
	WriteServicePerKB time.Duration

	AttrTTL   time.Duration
	DentryTTL time.Duration
	DirIndex  namespace.DirIndex
	WAFL      storage.WAFLConfig
	// MetaLogBytes is the journal record size per namespace change.
	MetaLogBytes int64
	// SubtreeAssign pins top-level subtrees to shard indexes under
	// PlaceSubtree — the administrative volume placement of §4.7.2.
	// Subtrees not listed fall back to hashing their name.
	SubtreeAssign map[string]int

	// Replicate enables primary/backup replication: every mutation on a
	// shard is journaled and synchronously mirrored to the shard's
	// backup — shard (i+1) mod N — which takes over serving the slice
	// when the primary crashes (HopsFS-style metadata availability).
	// Requires NumShards >= 2 to have a distinct backup.
	Replicate bool
	// JournalCap bounds the in-memory mutation journal per shard: the
	// dirty entries accumulated since the last checkpoint. Reaching the
	// cap models a checkpoint, which truncates the journal — so
	// JournalCap also caps the replay work a takeover or restart pays.
	JournalCap int
	// MirrorService is the backup-side CPU charged per mirrored
	// mutation (applying the journal record to the standby copy).
	MirrorService time.Duration
	// TakeoverDetect is the failure-detection delay (lease/heartbeat
	// expiry) before a backup begins taking over a crashed primary.
	TakeoverDetect time.Duration
	// ReplayPerEntry is the recovery cost per journal entry, paid by a
	// backup promoting itself and by a restarted primary. Non-default
	// backends scale it by their ReplayFactor (sequential WAL replay is
	// cheap on an LSM store, random page updates are expensive on a
	// B-tree — backend.go).
	ReplayPerEntry time.Duration
	// RetryTimeout is the client-observed RPC timeout against a dead
	// server (one failed attempt costs this much virtual time).
	RetryTimeout time.Duration
	// RetryBackoff is the base of the client's deterministic
	// exponential retry backoff; RetryBackoffMax caps it.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// RetryMax is the attempt limit per operation before the client
	// gives up with ETIMEDOUT. It bounds the simulation when a slice
	// stays dark (crashed primary, no backup, no restart scheduled).
	RetryMax int

	// CacheMode selects the client attribute-cache consistency model:
	// NFS-style TTL (default), uncached, or lease-based coherence with
	// revocation callbacks (coherence.go, E22–E24).
	CacheMode CacheMode
	// LeaseTTL is the validity of one server-granted read lease
	// (CacheLease only).
	LeaseTTL time.Duration
	// CallbackService is the client-side handler cost of one revocation
	// or recall callback.
	CallbackService time.Duration
	// ReaddirPlusPerEntry is the server-side cost of piggybacking one
	// entry's attributes on a readdirplus reply — far below a full
	// GETATTR round trip, which is the point of batching.
	ReaddirPlusPerEntry time.Duration
	// Delegations enables write-back directory delegations: the sole
	// writer of a directory keeps its cached directory attributes
	// current itself instead of paying revocations per mutation.
	Delegations bool
	// CrashInvalidate makes clients verify each lease's slice epoch on
	// every cache hit, so a crash takeover (which bumps the epoch)
	// bulk-invalidates the slice's leases instantly. Off, clients trust
	// leases across failovers and serve stale reads until expiry — the
	// window E24 measures.
	CrashInvalidate bool
	// TrackStaleness compares every cache hit against the authoritative
	// slice state (bookkeeping only) and counts mismatches in
	// FS.StaleReads — the staleness instrument of E22–E24.
	TrackStaleness bool

	// SplitThreshold enables dynamic giant-directory splitting
	// (split.go, E25–E27): when a directory's entry count on one slice
	// crosses the threshold, its entries re-partition across shards by
	// hash-of-name over a doubling split level, GIGA+ style. Zero
	// disables splitting; it requires hash placement and >= 2 shards.
	SplitThreshold int
	// SplitMovePerEntry is the per-entry migration cost of a split step,
	// charged on both sides of each source→destination transfer.
	SplitMovePerEntry time.Duration
	// SplitBitmapTTL is the validity of a client's cached per-directory
	// split bitmap under the TTL and uncached modes; an expired or stale
	// bitmap costs a routing bounce, never correctness. CacheLease ties
	// the bitmap to the directory's lease (LeaseTTL, revocation, epoch)
	// instead.
	SplitBitmapTTL time.Duration
	// AttrCacheCap bounds each node's client cache entry counts — the
	// attribute/lease cache and the dentry cache alike (0 = unbounded);
	// eviction goes by expiry then insertion order.
	AttrCacheCap int

	// Backend selects the metadata storage backend cost model
	// (backend.go, E28–E30). The zero value, BackendMemJournal, is the
	// pre-E28 behavior, byte for byte.
	Backend BackendKind
	// LSM and BTree tune the non-default backends; zero fields take
	// DefaultLSMParams / DefaultBTreeParams.
	LSM   LSMParams
	BTree BTreeParams
	// GroupCommitWindow batches the durability work of mutations: all
	// mutations committing on one shard within the window share a
	// single journal flush and replication round trip (E30). The
	// namespace change still applies and journals at each mutation's
	// own commit instant — only the flush and the mirror traffic are
	// deferred to the batch, and the mutating RPC does not return until
	// its batch is flushed. Zero (the default) commits per-op, the
	// pre-E30 behavior, byte for byte.
	GroupCommitWindow time.Duration
}

// DefaultConfig returns an n-shard configuration with per-shard service
// times matching the single-server NFS defaults. Replication is off;
// the failover tunables carry defaults so experiments can just flip
// Replicate on.
func DefaultConfig(n int) Config {
	return Config{
		NumShards:          n,
		Placement:          PlaceHashDir,
		ShardThreads:       4,
		PeerThreads:        2,
		OneWayLatency:      250 * time.Microsecond,
		CrossShardLatency:  80 * time.Microsecond,
		CrossShardOverhead: 45 * time.Microsecond,
		CreateService:      150 * time.Microsecond,
		GetattrService:     40 * time.Microsecond,
		LookupService:      40 * time.Microsecond,
		RemoveService:      140 * time.Microsecond,
		MkdirService:       180 * time.Microsecond,
		RenameService:      180 * time.Microsecond,
		ReaddirService:     120 * time.Microsecond,
		ReaddirPerEntry:    800 * time.Nanosecond,
		WriteServicePerKB:  30 * time.Microsecond,
		AttrTTL:            3 * time.Second,
		DentryTTL:          30 * time.Second,
		DirIndex:           namespace.IndexHash,
		WAFL:               storage.DefaultWAFLConfig(),
		MetaLogBytes:       320,

		JournalCap:      16384,
		MirrorService:   60 * time.Microsecond,
		TakeoverDetect:  200 * time.Millisecond,
		ReplayPerEntry:  20 * time.Microsecond,
		RetryTimeout:    500 * time.Millisecond,
		RetryBackoff:    50 * time.Millisecond,
		RetryBackoffMax: time.Second,
		RetryMax:        64,

		LeaseTTL:            10 * time.Second,
		CallbackService:     25 * time.Microsecond,
		ReaddirPlusPerEntry: 2 * time.Microsecond,
		Delegations:         true,
		CrashInvalidate:     true,

		SplitMovePerEntry: 4 * time.Microsecond,
		SplitBitmapTTL:    30 * time.Second,
	}
}

// journalRec is one entry of a shard's bounded mutation journal.
type journalRec struct {
	kind fs.OpKind
	path string
}

// shardSrv is one metadata server: its authoritative namespace slice,
// client-facing and peer thread pools, journal and directory locks.
type shardSrv struct {
	index int
	srv   *simnet.Server
	peer  *simnet.Server
	wafl  *storage.WAFL
	ns    *namespace.Namespace
	locks map[fs.Ino]*sim.Mutex
	ops   int64

	// be prices this shard's storage work (backend.go); gc is the open
	// group-commit batch, nil when none (Config.GroupCommitWindow).
	be backend
	gc *gcBatch

	// up mirrors the simnet server state; false between Crash and the
	// end of Restart recovery.
	up bool
	// journal holds the slice's dirty mutations since the last
	// checkpoint; its length prices takeover and restart replay.
	journal     []journalRec
	checkpoints int64
}

// journalAppend records one mutation, truncating at the checkpoint cap.
func (sh *shardSrv) journalAppend(cap int, kind fs.OpKind, path string) {
	if cap > 0 && len(sh.journal) >= cap {
		sh.journal = sh.journal[:0]
		sh.checkpoints++
	}
	sh.journal = append(sh.journal, journalRec{kind: kind, path: path})
}

// Takeover records one backup promotion after a primary crash.
type Takeover struct {
	// Shard is the crashed primary, Backup the promoted server.
	Shard, Backup int
	// CrashAt is the virtual time of the crash.
	CrashAt time.Duration
	// Detect is the failure-detection delay and Replay the journal
	// replay time; Entries is the journal length replayed.
	Detect, Replay time.Duration
	Entries        int
}

// Total is the takeover latency: detection plus journal replay.
func (t Takeover) Total() time.Duration { return t.Detect + t.Replay }

// FS is one sharded metadata file system.
type FS struct {
	k   *sim.Kernel
	cfg Config

	// rt carries the kernel-domain decomposition (the shared service
	// runtime, internal/service): Group() is nil with Domains <= 1,
	// KernelFor(i) is the kernel server i's state lives on. evMu
	// guards the Compactions slice, the one result collection bodies
	// append to from several domains.
	rt   *service.Runtime
	evMu sync.Mutex

	shards []*shardSrv
	// serving maps each namespace slice to the index of the server
	// currently serving it: the slice's home shard, or its backup after
	// a failover.
	serving []int
	conns   map[connKey]*simnet.Conn
	nodes   map[*cluster.Node]*nodeState

	rpcs int64
	// CrossCount counts operations that crossed the MDS interconnect
	// (migrating renames, peer readdirs, one per broadcast replica).
	CrossCount int64
	// BroadcastCount counts directory mutations that were replicated to
	// the other shards (hash placement only).
	BroadcastCount int64
	// MirrorCount counts mutations synchronously mirrored to a backup.
	MirrorCount int64
	// RetryCount counts client RPC attempts that failed against a down
	// server and were retried after backoff.
	RetryCount int64
	// Takeovers records every backup promotion, in order.
	Takeovers []Takeover

	// Coherence state and counters (coherence.go, CacheLease mode):
	// per-slice lease tables and epochs, plus the protocol traffic the
	// E22–E24 experiments report.
	leases []*sliceLeases
	epochs []uint64
	// LeaseGrants counts read leases granted (including refreshes and
	// readdirplus bulk grants).
	LeaseGrants int64
	// Revocations counts lease-revocation callbacks delivered.
	Revocations int64
	// DelegationGrants and DelegationRecalls count directory write
	// delegations handed out and recalled.
	DelegationGrants, DelegationRecalls int64
	// StaleReads counts cache hits that disagreed with the
	// authoritative state (Config.TrackStaleness); LastStaleAt is the
	// virtual time of the most recent one.
	StaleReads  int64
	LastStaleAt time.Duration

	// Giant-directory splitting state and counters (split.go, E25–E27).
	splitDirs map[string]*dirSplit
	// moved maps a migrated entry's old identity to its new one (slices
	// number their inodes independently, so identity is slice+ino): a
	// handle opened before a split chases its file across migrations,
	// while a same-name replacement stays a stale handle. Bounded by
	// the total entries ever migrated.
	moved map[entryID]entryID
	// Splits records every completed split step, in order.
	Splits []SplitEvent
	// SplitMoved counts entries migrated by split steps.
	SplitMoved int64
	// Bounces counts client RPCs misrouted by a stale or missing split
	// bitmap (each cost one extra redirect round trip).
	Bounces int64
	// PartialListings counts ReadDir/ReadDirPlus merges that skipped a
	// down peer slice and returned a degraded (partial) listing — the
	// aggregated-namespace failure mode a client otherwise cannot see.
	PartialListings int64

	// Backend and group-commit counters (backend.go, E28–E30).
	// Compactions records every LSM compaction pause, in order.
	Compactions []CompactionEvent
	// GroupCommits counts group-commit batches flushed; GroupCommitOps
	// counts mutations that joined an already-open batch (so batched
	// mutations total GroupCommits + GroupCommitOps). With batching,
	// MirrorCount counts batched replication round trips, not mirrored
	// mutations — the collapse E30 measures.
	GroupCommits, GroupCommitOps int64

	// Aggregate-arrival counters (inject.go, E31–E33). AggOps counts
	// background operations injected and served, AggShedOps those shed
	// because the thread pool could not absorb their tick before the
	// next one (open-loop overload admission control), and AggBusy the
	// cumulative service time the injected load occupied (ns).
	AggOps, AggShedOps, AggBusy int64
}

type connKey struct {
	node  *cluster.Node
	shard int
}

type nodeState struct {
	attrs    *clientcache.AttrCache
	dentries *clientcache.DentryCache
	// leases replaces attrs under CacheLease; cb and cbConn are the
	// node's callback endpoint and the server→client path to it.
	leases *clientcache.LeaseCache
	cb     *simnet.Server
	cbConn *simnet.Conn
	// splits is the node's per-directory split-bitmap cache, created
	// lazily the first time a server reports a split level (split.go).
	splits *clientcache.SplitMap
}

// New creates a sharded metadata service on kernel k.
func New(k *sim.Kernel, name string, cfg Config) *FS {
	if cfg.NumShards < 1 {
		cfg.NumShards = 1
	}
	if cfg.RetryMax < 1 {
		cfg.RetryMax = 64
	}
	cfg.LSM = cfg.LSM.withDefaults()
	cfg.BTree = cfg.BTree.withDefaults()
	f := &FS{
		k:         k,
		cfg:       cfg,
		conns:     make(map[connKey]*simnet.Conn),
		nodes:     make(map[*cluster.Node]*nodeState),
		splitDirs: make(map[string]*dirSplit),
		moved:     make(map[entryID]entryID),
	}
	la := cfg.CrossShardLatency
	if cfg.OneWayLatency < la {
		la = cfg.OneWayLatency
	}
	f.rt = service.New(k, cfg.NumShards, cfg.Domains, la)
	for i := 0; i < cfg.NumShards; i++ {
		id := name + "-" + strconv.Itoa(i)
		sk := f.kFor(i)
		sh := &shardSrv{
			index: i,
			srv:   simnet.NewServer(sk, "mds:"+id, cfg.ShardThreads),
			peer:  simnet.NewServer(sk, "mdspeer:"+id, cfg.PeerThreads),
			wafl:  storage.NewWAFL(sk, "mds:"+id, cfg.WAFL),
			ns:    namespace.New(),
			locks: make(map[fs.Ino]*sim.Mutex),
			up:    true,
		}
		sh.be = newBackend(f, sh)
		f.shards = append(f.shards, sh)
		f.serving = append(f.serving, i)
		f.leases = append(f.leases, newSliceLeases())
		f.epochs = append(f.epochs, 0)
	}
	return f
}

// Name identifies the model in results and charts.
func (f *FS) Name() string {
	n := "shard" + strconv.Itoa(len(f.shards)) + "-" + f.cfg.Placement.String()
	if f.replicated() {
		n += "-repl"
	}
	if f.splitActive() {
		n += "-split"
	}
	if f.cfg.Backend != BackendMemJournal {
		n += "-" + f.cfg.Backend.String()
	}
	return n
}

// NumShards returns the shard count.
func (f *FS) NumShards() int { return len(f.shards) }

// RPCCount returns the number of client RPCs served.
func (f *FS) RPCCount() int64 { return loadI64(&f.rpcs) }

// ShardOps returns the per-shard count of client operations served,
// the load-balance view the skew experiments report.
func (f *FS) ShardOps() []int64 {
	out := make([]int64, len(f.shards))
	for i, sh := range f.shards {
		out[i] = loadI64(&sh.ops)
	}
	return out
}

// Namespace exposes shard i's authoritative namespace (tests, fsck).
func (f *FS) Namespace(i int) *namespace.Namespace { return f.shards[i].ns }

// Up reports whether shard i's server is in service.
func (f *FS) Up(i int) bool { return f.shards[i].up }

// ServingShard returns the index of the server currently serving slice
// i: i itself, or its backup after a failover.
func (f *FS) ServingShard(i int) int { return f.serving[i] }

// JournalLen returns the number of dirty journal entries on shard i.
func (f *FS) JournalLen(i int) int { return len(f.shards[i].journal) }

// replicated reports whether primary/backup replication is in effect.
func (f *FS) replicated() bool { return f.cfg.Replicate && len(f.shards) > 1 }

// backupOf returns the backup server index of slice i.
func (f *FS) backupOf(i int) int { return (i + 1) % len(f.shards) }

// Crash takes shard i's server down at the current virtual time: its
// client and peer endpoints start timing out. With replication, the
// slice's backup detects the failure after TakeoverDetect, replays the
// journal and takes over serving the slice (recorded in Takeovers).
// Crash implements fault.Target.
//
// Under kernel domains every step of the crash/takeover sequence is a
// sync point (domain.go): serving[], the down flags, epochs and lease
// tables are read lock-free from every domain, so they may only change
// with all domains parked at one instant. The legacy path applies the
// crash immediately and schedules the takeover with a timer.
func (f *FS) Crash(p *sim.Proc, i int) {
	if f.domained() {
		f.crashDomained(p, i)
		return
	}
	sh := f.shards[i]
	if !sh.up {
		return
	}
	sh.up = false
	sh.srv.SetDown()
	sh.peer.SetDown()
	if !f.replicated() {
		return
	}
	b := f.backupOf(i)
	if !f.shards[b].up {
		return // no live backup: the slice stays dark until restart
	}
	crashAt := p.Now()
	f.k.AfterFunc("takeover:"+strconv.Itoa(i), f.cfg.TakeoverDetect, func(q *sim.Proc) {
		if sh.up || !f.shards[b].up {
			// The primary returned before the lease expired, or the
			// backup died during the detection window — either way
			// there is nothing to promote.
			return
		}
		entries := len(sh.journal)
		replay := time.Duration(entries) * f.shards[b].be.replayPerEntry()
		q.Sleep(replay)
		if sh.up || !f.shards[b].up {
			return // the primary recovered first, or the backup crashed mid-replay
		}
		f.serving[i] = b
		// The promoted backup knows nothing about the leases the dead
		// primary granted: the slice's lease state dies with it and the
		// epoch moves on (crash-time bulk invalidation, E24).
		f.invalidateSliceLeases(i)
		f.Takeovers = append(f.Takeovers, Takeover{
			Shard: i, Backup: b, CrashAt: crashAt,
			Detect: f.cfg.TakeoverDetect, Replay: replay, Entries: entries,
		})
	})
}

// crashDomained runs the crash and the ensuing takeover as a chain of
// sync points: the crash lands one lookahead after the injector's call
// (the earliest instant every domain can rendezvous), detection fires
// TakeoverDetect later, and the promotion lands after the replay time —
// with the journal length read while its shard's domain is parked.
func (f *FS) crashDomained(p *sim.Proc, i int) {
	g := f.rt.Group()
	g.AtSync(p, p.Now(), func() {
		sh := f.shards[i]
		if !sh.up {
			return
		}
		sh.up = false
		sh.srv.SetDown()
		sh.peer.SetDown()
		if !f.replicated() {
			return
		}
		b := f.backupOf(i)
		if !f.shards[b].up {
			return // no live backup: the slice stays dark until restart
		}
		crashAt := f.k.Now()
		g.AtSyncAbs(crashAt+f.cfg.TakeoverDetect, func() {
			if sh.up || !f.shards[b].up {
				return // primary returned, or the backup died meanwhile
			}
			entries := len(sh.journal)
			replay := time.Duration(entries) * f.shards[b].be.replayPerEntry()
			g.AtSyncAbs(f.k.Now()+replay, func() {
				if sh.up || !f.shards[b].up {
					return // primary recovered first, or backup crashed mid-replay
				}
				f.serving[i] = b
				f.invalidateSliceLeases(i)
				f.Takeovers = append(f.Takeovers, Takeover{
					Shard: i, Backup: b, CrashAt: crashAt,
					Detect: f.cfg.TakeoverDetect, Replay: replay, Entries: entries,
				})
			})
		})
	})
}

// Restart begins shard i's recovery at the current virtual time: the
// server replays its journal, then returns to service and reclaims its
// slice from the backup (failback). Restart implements fault.Target.
func (f *FS) Restart(p *sim.Proc, i int) {
	if f.domained() {
		// Same sync-point discipline as crashDomained: the journal is
		// read and the failback committed with every domain parked.
		g := f.rt.Group()
		g.AtSync(p, p.Now(), func() {
			sh := f.shards[i]
			if sh.up {
				return
			}
			replay := time.Duration(len(sh.journal)) * sh.be.replayPerEntry()
			g.AtSyncAbs(f.k.Now()+replay, func() {
				if sh.up {
					return
				}
				sh.up = true
				sh.srv.SetUp()
				sh.peer.SetUp()
				f.serving[i] = i
				sh.journal = sh.journal[:0]
				sh.checkpoints++
				f.invalidateSliceLeases(i)
			})
		})
		return
	}
	sh := f.shards[i]
	if sh.up {
		return
	}
	replay := time.Duration(len(sh.journal)) * sh.be.replayPerEntry()
	f.k.AfterFunc("recover:"+strconv.Itoa(i), replay, func(q *sim.Proc) {
		sh.up = true
		sh.srv.SetUp()
		sh.peer.SetUp()
		f.serving[i] = i
		sh.journal = sh.journal[:0] // recovery checkpoints the journal
		sh.checkpoints++
		// Failback is another serving change the restarted primary has
		// no lease state for; leases granted meanwhile (by the backup,
		// or pre-crash by the primary itself) die with the epoch.
		f.invalidateSliceLeases(i)
	})
}

// backoff returns the deterministic client backoff after attempt failed
// tries: RetryBackoff doubled per attempt, capped at RetryBackoffMax.
func (f *FS) backoff(attempt int) time.Duration {
	d := f.cfg.RetryBackoff
	for i := 0; i < attempt && d < f.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > f.cfg.RetryBackoffMax {
		d = f.cfg.RetryBackoffMax
	}
	return d
}

// hashString is FNV-1a; the routing hash must be stable across runs so
// identically-seeded simulations shard identically.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ShardOfEntry returns the index of the slice owning the entry at p
// (its home shard, independent of any failover in progress).
func (f *FS) ShardOfEntry(p string) int { return f.ownerSlice(p) }

// ShardOfDir returns the index of the slice holding the file contents
// of directory dir (-1 when the directory spans shards: the root under
// subtree placement).
func (f *FS) ShardOfDir(dir string) int { return f.contentSlice(dir) }

// ownerSlice returns the slice owning the directory entry at path p:
// the slice of p's top-level subtree, or the slice hashing p's parent
// directory — offset by the name-hash partition when the parent is a
// split giant directory (split.go).
func (f *FS) ownerSlice(p string) int {
	if f.cfg.Placement == PlaceSubtree {
		top := fs.TopComponent(p)
		if top == "" {
			return 0
		}
		return f.subtreeShard(top)
	}
	dir := fs.ParentDir(p)
	h := hashString(dir)
	if lvl := f.splitLevel(dir); lvl > 0 {
		return f.sliceAt(h, partitionOf(baseName(p), lvl))
	}
	return int(h % uint32(len(f.shards)))
}

// subtreeShard resolves a top-level subtree to its slice: pinned
// placement when configured, hash of the name otherwise.
func (f *FS) subtreeShard(top string) int {
	if i, ok := f.cfg.SubtreeAssign[top]; ok {
		return i % len(f.shards)
	}
	return int(hashString(top) % uint32(len(f.shards)))
}

// contentSlice returns the slice holding the file entries of directory
// dir, or -1 when the directory spans every shard (the root under
// subtree placement, whose top-level entries are partitioned). For a
// split directory it returns the home slice — partition 0 — and the
// fan-out paths consult splitSlices for the rest.
func (f *FS) contentSlice(dir string) int {
	if f.cfg.Placement == PlaceSubtree {
		top := fs.TopComponent(dir)
		if top == "" {
			return -1
		}
		return f.subtreeShard(top)
	}
	return int(hashString(dir) % uint32(len(f.shards)))
}

// srvFor returns the server currently serving slice i.
func (f *FS) srvFor(i int) *shardSrv { return f.shards[f.serving[i]] }

func (f *FS) conn(n *cluster.Node, sh *shardSrv) *simnet.Conn {
	key := connKey{n, sh.index}
	c, ok := f.conns[key]
	if !ok {
		c = simnet.NewConn(f.k, sh.srv, f.cfg.OneWayLatency, 0)
		c.FailTimeout = f.cfg.RetryTimeout
		f.conns[key] = c
	}
	return c
}

func (f *FS) nodeState(n *cluster.Node) *nodeState {
	s, ok := f.nodes[n]
	if !ok {
		s = &nodeState{
			dentries: clientcache.NewDentryCache(f.cfg.DentryTTL, f.k.Now),
		}
		s.dentries.Cap = f.cfg.AttrCacheCap
		if f.cfg.CacheMode == CacheLease {
			var epochOf func(int) uint64
			if f.cfg.CrashInvalidate {
				epochOf = func(slice int) uint64 { return f.epochs[slice] }
			}
			s.leases = clientcache.NewLeaseCache(f.k.Now, epochOf)
			s.leases.Cap = f.cfg.AttrCacheCap
			f.cbServer(s, n)
		} else {
			s.attrs = clientcache.NewAttrCache(f.cfg.AttrTTL, f.k.Now)
			s.attrs.Cap = f.cfg.AttrCacheCap
		}
		f.nodes[n] = s
	}
	return s
}

func (sh *shardSrv) dirLock(k *sim.Kernel, ino fs.Ino) *sim.Mutex {
	m, ok := sh.locks[ino]
	if !ok {
		m = sim.NewMutex(k, "mdsdir:"+strconv.Itoa(sh.index)+":"+strconv.FormatUint(uint64(ino), 10))
		sh.locks[ino] = m
	}
	return m
}

// charge sleeps the service cost of one operation at sh: the base time
// scaled by the shard's consistency-point factor and, when dirEntries is
// non-negative, by the directory-index entry cost. Unclassified work —
// the backend's factor only contributes an active compaction stall.
func (f *FS) charge(p *sim.Proc, sh *shardSrv, base time.Duration, dirEntries int) {
	f.chargeOp(p, sh, base, dirEntries, opInfo{dirSize: -1})
}

// chargeOp is charge with a backend op classification: the backend's
// cost factor for the classified operation multiplies the charge after
// the consistency-point and directory-index factors. The default
// backend returns exactly 1, and the guard skips the multiply, so the
// float math of the pre-backend cost model is preserved bit for bit.
func (f *FS) chargeOp(p *sim.Proc, sh *shardSrv, base time.Duration, dirEntries int, info opInfo) {
	cost := float64(base) * sh.wafl.ServiceFactor()
	if dirEntries >= 0 {
		cost *= f.cfg.DirIndex.EntryCost(dirEntries)
	}
	if bf := sh.be.factor(p.Now(), info); bf != 1 {
		cost *= bf
	}
	p.Sleep(time.Duration(cost))
}

// service is charge plus client-RPC accounting. The counters are
// atomic: under kernel domains service bodies run concurrently, and
// order-independent sums stay deterministic (domain.go).
func (f *FS) service(p *sim.Proc, sh *shardSrv, base time.Duration, dirEntries int) {
	f.charge(p, sh, base, dirEntries)
	addI64(&f.rpcs, 1)
	addI64(&sh.ops, 1)
}

// serviceOp is chargeOp plus client-RPC accounting.
func (f *FS) serviceOp(p *sim.Proc, sh *shardSrv, base time.Duration, dirEntries int, info opInfo) {
	f.chargeOp(p, sh, base, dirEntries, info)
	addI64(&f.rpcs, 1)
	addI64(&sh.ops, 1)
}

// readInfo prices one point lookup at p for the configured backend: a
// lookup expected to miss is marked negative (the LSM bloom filter makes
// ENOENT the cheap case), and the parent directory's size feeds the
// B-tree page-depth surcharge. Both hints peek at the state the service
// body is about to read — a pricing hint, not a semantic check — and
// under the default backend neither is computed, so the hot path pays
// nothing.
func (f *FS) readInfo(state *shardSrv, p string) opInfo {
	info := opInfo{cls: opRead, dirSize: -1}
	switch f.cfg.Backend {
	case BackendLSM:
		if _, err := state.ns.Stat(p); err != nil {
			info.negative = true
		}
	case BackendBTree:
		if dir, err := state.ns.Lookup(fs.ParentDir(p)); err == nil {
			info.dirSize = dir.NumChildren()
		}
	}
	return info
}

// writeInfo prices one mutation of the entry at p: the parent directory
// keys the B-tree row-lock tracking, and its size (as charged by the
// caller via dirEntries) feeds the page-depth surcharge.
func writeInfo(p string, dirEntries int) opInfo {
	return opInfo{cls: opWrite, dir: fs.ParentDir(p), dirSize: dirEntries}
}

// scanInfo prices one range scan (readdir, split probes).
func scanInfo() opInfo { return opInfo{cls: opScan, dirSize: -1} }

// hop performs one synchronous MDS-to-MDS call while serving a request:
// coordination CPU on the caller, the interconnect round trip, and body
// running on the destination's peer pool (never its client pool, so
// forwarded work cannot deadlock against incoming requests). When the
// destination lives in another kernel domain, peerLeg turns the round
// trip into a cross-domain rendezvous with identical virtual-time cost.
func (f *FS) hop(sp *sim.Proc, dst *shardSrv, body func(q *sim.Proc)) {
	addI64(&f.CrossCount, 1)
	f.peerLeg(sp, dst, "hop:"+strconv.Itoa(dst.index), body)
}

// commit journals one successful mutation on slice state and, with
// replication, synchronously mirrors it to the slice's replica partner:
// the backup in normal operation, or nothing while the partner is down
// (the state object is shared between the replicas, so a recovering
// partner catches up by journal replay, not by data transfer). Directory
// mutations under hash placement skip the mirror — the broadcast already
// delivered them to every shard, the backup included.
func (f *FS) commit(sp *sim.Proc, state, srv *shardSrv, kind fs.OpKind, path string) {
	state.journalAppend(f.cfg.JournalCap, kind, path)
	partner := f.mirrorPartner(state, srv, kind)
	if partner < 0 {
		return
	}
	ps := f.shards[partner]
	addI64(&f.MirrorCount, 1)
	f.peerLeg(sp, ps, "mirror:"+strconv.Itoa(ps.index), func(q *sim.Proc) {
		f.chargeOp(q, ps, f.cfg.MirrorService, -1, opInfo{cls: opWrite, dirSize: -1})
		ps.be.log(q, f.cfg.MetaLogBytes)
	})
}

// mirrorPartner returns the replica partner a committed mutation on
// slice state must mirror to, or -1 when no mirror is due: replication
// off, a broadcast-replicated directory mutation under hash placement
// (the broadcast already delivered it to every shard, the backup
// included), or a partner that is down or is the serving server itself.
func (f *FS) mirrorPartner(state, srv *shardSrv, kind fs.OpKind) int {
	if !f.replicated() {
		return -1
	}
	if f.cfg.Placement == PlaceHashDir && (kind == fs.OpMkdir || kind == fs.OpRmdir) {
		return -1
	}
	partner := f.backupOf(state.index)
	if f.serving[state.index] != state.index {
		partner = state.index
	}
	ps := f.shards[partner]
	if !ps.up || ps == srv {
		return -1
	}
	return partner
}

// persist pays the durability work of one applied mutation: the local
// journal write (priced by the shard's backend) and the replication
// mirror. With GroupCommitWindow zero it is exactly the pre-E30
// per-op path — log, then commit. With a window, the mutation journals
// at this same instant (the atomic-apply discipline: state and journal
// move together), but the flush and mirror traffic fold into the shard's
// open group-commit batch: the first mutation of a window becomes the
// batch leader — it sleeps out the window, pays one batched flush and
// one mirror round trip per replica partner, and wakes the others — and
// every follower holds its worker slot until the leader's flush acks,
// so no mutating RPC returns before its journal record is durable on
// the backup. Servers' peer-pool work (mirror applies, migrate inserts)
// never joins a batch, so a batch leader can always reach the partner's
// peer pool and the wait graph stays acyclic.
func (f *FS) persist(sp *sim.Proc, state, srv *shardSrv, kind fs.OpKind, path string, logBytes int64) {
	w := f.cfg.GroupCommitWindow
	if w <= 0 {
		srv.be.log(sp, logBytes)
		f.commit(sp, state, srv, kind, path)
		return
	}
	state.journalAppend(f.cfg.JournalCap, kind, path)
	partner := f.mirrorPartner(state, srv, kind)
	if b := srv.gc; b != nil {
		// Follower: join the open batch and wait out its flush.
		b.add(logBytes, partner)
		addI64(&f.GroupCommitOps, 1)
		for !b.flushed {
			b.done.Wait(sp)
		}
		return
	}
	// Leader: open a batch, absorb arrivals for one window, close it,
	// then pay the batched flush and the per-partner mirror round trips.
	// The batch condition lives on the executing kernel: under domains
	// a server's batches belong to its own domain (only its service
	// bodies ever join them).
	b := &gcBatch{done: sim.NewCond(sp.Kernel(), "groupcommit:"+strconv.Itoa(srv.index))}
	srv.gc = b
	b.add(logBytes, partner)
	addI64(&f.GroupCommits, 1)
	sp.Sleep(w)
	srv.gc = nil // later arrivals open the next batch
	srv.be.log(sp, b.bytes)
	for _, m := range b.mirrors {
		ps := f.shards[m.partner]
		if !ps.up || ps == srv {
			continue // the partner died inside the window: replay catches it up
		}
		addI64(&f.MirrorCount, 1)
		count := m.count
		f.peerLeg(sp, ps, "gcmirror:"+strconv.Itoa(ps.index), func(q *sim.Proc) {
			f.chargeOp(q, ps, time.Duration(count)*f.cfg.MirrorService, -1, opInfo{cls: opWrite, dirSize: -1})
			ps.be.log(q, count*f.cfg.MetaLogBytes)
		})
	}
	b.flushed = true
	b.done.Broadcast()
}

// replicate propagates a successful directory mutation to every other
// shard (hash placement keeps the directory tree replicated). The state
// change commits on all replicas at the primary's apply time — the
// mutation is atomic across shards, like a transactional metadata
// store, so a concurrent request routed to a replica can never observe
// the directory tree mid-broadcast — while the caller still pays the
// full interconnect and replica service cost before its RPC returns.
// Down shards receive the state change without a hop: their replica
// catches up logically, the way recovery replay would deliver it.
//
// Under kernel domains a replica's namespace may only be touched by its
// owning domain, so each apply rides the broadcast: live shards apply
// inside the hop body at its arrival time, down shards via a posted
// message to whichever domain owns their namespace (their own, or a
// promoted backup's after failover). The mutating client observes its
// own change immediately — its reply travels the slower client path
// (OneWayLatency > CrossShardLatency + CrossShardOverhead), so every
// replica has applied before the client can look.
func (f *FS) replicate(sp *sim.Proc, primary *shardSrv, svc time.Duration, apply func(ns *namespace.Namespace, now time.Duration)) {
	if f.cfg.Placement != PlaceHashDir || len(f.shards) == 1 {
		return
	}
	addI64(&f.BroadcastCount, 1)
	if f.domained() {
		for _, sh := range f.shards {
			if sh == primary {
				continue
			}
			sh := sh
			if sh.up {
				f.hop(sp, sh, func(q *sim.Proc) {
					apply(sh.ns, q.Now())
					f.chargeOp(q, sh, svc, -1, opInfo{cls: opWrite, dirSize: -1})
					sh.be.log(q, f.cfg.MetaLogBytes)
				})
				continue
			}
			if dk := f.sliceKernel(sh.index); dk != sp.Kernel() {
				sim.Post(sp, dk, f.cfg.CrossShardLatency, "bapply:"+strconv.Itoa(sh.index), func(q *sim.Proc) {
					apply(sh.ns, q.Now())
				})
			} else {
				apply(sh.ns, sp.Now())
			}
		}
		return
	}
	now := sp.Now()
	for _, sh := range f.shards {
		if sh != primary {
			apply(sh.ns, now)
		}
	}
	for _, sh := range f.shards {
		if sh == primary || !sh.up {
			continue
		}
		sh := sh
		f.hop(sp, sh, func(q *sim.Proc) {
			f.chargeOp(q, sh, svc, -1, opInfo{cls: opWrite, dirSize: -1})
			sh.be.log(q, f.cfg.MetaLogBytes)
		})
	}
}

// NewClient binds a client for one process on one node. The node's
// cache state is resolved here — in the client's own domain — and
// cached on the client, so service bodies running in shard domains
// never touch the shared nodes map.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, state: f.nodeState(node), handles: make(map[fs.Handle]*openFile)}
}

type openFile struct {
	path    string
	slice   int
	ino     fs.Ino
	size    int64
	written int64
	dirty   bool
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	state   *nodeState
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

// cfg returns the FS config by pointer: the config is immutable after
// New, and a pointer keeps the 500-byte struct out of every escaping
// service closure (a by-reference capture of the value would heap-box
// it once per client op, even on cache-hit paths that never issue the
// RPC).
func (c *client) cfg() *Config   { return &c.fsys.cfg }
func (c *client) st() *nodeState { return c.state }

// callRetry is the client's retry engine: it repeats attempt() with
// deterministic exponential backoff while it reports a retryable
// failure, and gives up with ETIMEDOUT once RetryMax attempts all
// failed. Every operation gets exactly one budget, including the
// cross-shard rename whose destination can fail independently of its
// source.
func (c *client) callRetry(op, path string, attempt func() (retryable bool)) error {
	f := c.fsys
	for n := 0; ; n++ {
		if !attempt() {
			return nil
		}
		if n+1 >= f.cfg.RetryMax {
			return fs.NewError(op, path, fs.ETIMEDOUT)
		}
		f.RetryCount++
		c.p.Sleep(f.backoff(n))
	}
}

// call issues one RPC for slice, retrying with deterministic exponential
// backoff while the serving server is down; a failover between attempts
// redirects the retry to the promoted backup. The service body runs on
// the serving server's thread pool (srv) against the slice's
// authoritative state. It returns ETIMEDOUT when RetryMax attempts all
// failed.
func (c *client) call(op string, path string, slice int, reqBytes, respBytes int64,
	service func(sp *sim.Proc, state, srv *shardSrv)) error {
	f := c.fsys
	state := f.shards[slice]
	return c.callRetry(op, path, func() bool {
		srv := f.srvFor(slice)
		return f.conn(c.node, srv).TryCallDom(c.p, reqBytes, respBytes, func(sp *sim.Proc) {
			service(sp, state, srv)
		}) != nil
	})
}

// callEntry is call for operations addressed at the directory entry p,
// with split-bitmap routing: the client first routes by its cached
// bitmap (paying a bounce when the guess is wrong, split.go), then the
// RPC targets the authoritative slice — re-resolved on every retry, so
// a failover or a split between attempts redirects the retry. The
// service body receives the slice state re-checked at service start; a
// body that then sleeps (queueing for a directory lock, the service
// charge itself) must re-resolve with entryState immediately before
// touching the namespace, because a concurrent split can move
// ownership during any wait. A request acted on by the contacted
// server against a re-homed slice models proxying: the cost stays at
// the contacted server, the state change lands where routing looks.
func (c *client) callEntry(op, p string, reqBytes, respBytes int64,
	service func(sp *sim.Proc, state, srv *shardSrv)) error {
	f := c.fsys
	c.routeEntry(p)
	return c.callRetry(op, p, func() bool {
		s := f.ownerSlice(p)
		srv := f.srvFor(s)
		return f.conn(c.node, srv).TryCallDom(c.p, reqBytes, respBytes, func(sp *sim.Proc) {
			state := f.shards[f.ownerSlice(p)]
			if f.domained() {
				// Pin the route chosen at attempt time: the body starts
				// against the slice the contacted server was addressed
				// for (its own domain); any re-homing that lands while
				// the request queues is caught by the commit-instant
				// re-resolution below, which forwards across domains
				// (applyState) instead of touching foreign state.
				state = f.shards[s]
			}
			service(sp, state, srv)
		}) != nil
	})
}

// entryState returns the slice state authoritative for entry p at this
// instant. Mutating (and reading) service bodies call it immediately
// before the namespace access, with no virtual time in between — the
// commit-instant re-resolution that makes concurrent splits unable to
// strand an entry on a slice routing no longer consults, no matter how
// long the request waited in queues or on locks.
func (f *FS) entryState(p string) *shardSrv { return f.shards[f.ownerSlice(p)] }

// resolveParents walks the strict ancestors of p through the dentry
// cache, issuing one LOOKUP RPC to the owning shard per missing
// component. Under subtree placement every ancestor of a path shares
// its top-level component, so a cold walk stays on one shard; under
// hash placement the lookups scatter across the cluster.
func (c *client) resolveParents(p string) error {
	f := c.fsys
	cfg := c.cfg()
	st := c.st()
	for i := 1; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		prefix := p[:i]
		if _, neg, ok := st.dentries.Lookup(prefix); ok {
			if neg {
				return fs.NewError("lookup", prefix, fs.ENOENT)
			}
			continue
		}
		var err error
		cerr := c.call("lookup", prefix, f.ownerSlice(prefix), 120, 140, func(sp *sim.Proc, state, srv *shardSrv) {
			f.serviceOp(sp, srv, cfg.LookupService, -1, f.readInfo(state, prefix))
			var a fs.Attr
			a, err = state.ns.Stat(prefix)
			if err == nil {
				c.fillEntry(sp, prefix, a)
			} else {
				// The negative dentry is client-side state: it rides the
				// reply home (immediate when client and shard share a
				// kernel).
				simnet.Defer(sp, func() { st.dentries.PutNegative(prefix) })
			}
		})
		if cerr != nil {
			return cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// cacheEntry refreshes the node caches for p from its owning slice's
// namespace — the attributes every mutation reply piggybacks. Under
// CacheLease the reply also carries the parent directory's post-op
// attributes: the mutator writes its cached dir attributes back in
// place (the delegation discipline) instead of refetching them.
func (c *client) cacheEntry(p string) {
	if c.fsys.domained() {
		// The free client-side peek at authoritative state crosses
		// domains; the service body already captured the reply
		// attributes in the owning domain (captureEntry).
		return
	}
	state := c.fsys.shards[c.fsys.ownerSlice(p)]
	a, err := state.ns.Stat(p)
	if err != nil {
		return
	}
	c.fillEntry(c.p, p, a)
	if c.cfg().CacheMode != CacheLease {
		return
	}
	if dir := fs.ParentDir(p); dir != "." && dir != p {
		if da, derr := state.ns.Stat(dir); derr == nil {
			c.fillEntry(c.p, dir, da)
		}
	}
}

// captureEntry is cacheEntry's in-body counterpart for kernel domains:
// the service body reads the post-op attributes in the slice's owning
// domain — the attributes the reply piggybacks — and the client-side
// cache writes ride the reply home (fillEntry defers them).
func (c *client) captureEntry(q *sim.Proc, p string) {
	if !c.fsys.domained() {
		return
	}
	state := c.fsys.shards[c.fsys.ownerSlice(p)]
	a, err := state.ns.Stat(p)
	if err != nil {
		return
	}
	c.fillEntry(q, p, a)
	if c.cfg().CacheMode != CacheLease {
		return
	}
	if dir := fs.ParentDir(p); dir != "." && dir != p {
		if da, derr := state.ns.Stat(dir); derr == nil {
			c.fillEntry(q, dir, da)
		}
	}
}

// Create issues one CREATE RPC to the shard serving the parent
// directory's files.
func (c *client) Create(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	var err error
	cerr := c.callEntry("create", p, 160, 160, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, fwd bool) {
			if dir, lerr := state.ns.Lookup(fs.ParentDir(p)); lerr == nil {
				lock := state.dirLock(sp.Kernel(), dir.Ino)
				lock.Lock(sp)
				defer lock.Unlock()
				f.serviceOp(sp, at, cfg.CreateService, dir.NumChildren(), writeInfo(p, dir.NumChildren()))
			} else {
				f.serviceOp(sp, at, cfg.CreateService, -1, writeInfo(p, -1))
			}
			// Commit-instant re-resolution: the lock and charge waits above
			// may have overlapped a split of the parent.
			state2 := f.entryState(p)
			f.applyState(sp, state2, at, func(q *sim.Proc, at2 *shardSrv, _ bool) {
				_, err = state2.ns.Create(p, 0o644, q.Now())
				if err == nil {
					f.revokeOnMutate(q, c.st(), p, true)
					f.persistAt(q, state2, at2, srv, fs.OpCreate, p, cfg.MetaLogBytes)
					// Splits trigger from the contacted server only:
					// forwarded work runs on a peer pool, and a split hops
					// to peer pools itself.
					if at2 == srv {
						if dir, lerr := state2.ns.Lookup(fs.ParentDir(p)); lerr == nil {
							f.maybeSplit(q, fs.ParentDir(p), dir.NumChildren(), c.st())
						}
					}
				}
				if err == nil || fs.IsExist(err) {
					c.captureEntry(q, p)
				}
			})
		})
	})
	if cerr != nil {
		return cerr
	}
	if err != nil {
		if fs.IsExist(err) {
			c.cacheEntry(p)
		}
		return err
	}
	c.cacheEntry(p)
	return nil
}

// Mkdir creates a directory at its owning shard; under hash placement
// the mutation then replicates synchronously to every other shard.
func (c *client) Mkdir(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	var err error
	cerr := c.call("mkdir", p, f.ownerSlice(p), 150, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			if dir, lerr := state.ns.Lookup(fs.ParentDir(p)); lerr == nil {
				lock := state.dirLock(sp.Kernel(), dir.Ino)
				lock.Lock(sp)
				f.serviceOp(sp, at, cfg.MkdirService, dir.NumChildren(), writeInfo(p, dir.NumChildren()))
				lock.Unlock()
			} else {
				f.serviceOp(sp, at, cfg.MkdirService, -1, writeInfo(p, -1))
			}
			_, err = state.ns.Mkdir(p, 0o755, sp.Now())
			if err == nil {
				// The broadcast applies the replicas at this same instant;
				// revocations must not sleep between the primary and the
				// replica applies, so they come after it.
				f.replicate(sp, state, cfg.MkdirService, func(ns *namespace.Namespace, now time.Duration) {
					ns.Mkdir(p, 0o755, now)
				})
				f.revokeOnMutate(sp, c.st(), p, true)
				f.persistAt(sp, state, at, srv, fs.OpMkdir, p, cfg.MetaLogBytes)
			}
			if err == nil || fs.IsExist(err) {
				c.captureEntry(sp, p)
			}
		})
	})
	if cerr != nil {
		return cerr
	}
	if err != nil {
		if fs.IsExist(err) {
			c.cacheEntry(p)
		}
		return err
	}
	c.cacheEntry(p)
	return nil
}

// Rmdir removes a directory. The emptiness check runs on the shard
// holding the directory's files; under hash placement the removal then
// replicates to the other shards.
func (c *client) Rmdir(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	slice := f.contentSlice(p)
	if slice < 0 {
		return fs.NewError("rmdir", p, fs.EINVAL)
	}
	var err error
	cerr := c.call("rmdir", p, slice, 150, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			f.serviceOp(sp, at, cfg.RemoveService, -1, writeInfo(p, -1))
			// A split directory is empty only when every partition slice
			// agrees: the peer replicas are checked logically before the
			// removal commits (no time may pass between check and apply),
			// and the probe traffic — one interconnect hop per live peer
			// slice examined, local when a failover co-located the slice
			// here (the splitFanout rule) — is paid after the outcome is
			// decided, on success and on ENOTEMPTY alike. A down peer's
			// state still counts, the way replicate applies to down shards.
			var probes []int
			payProbes := func() {
				for _, s := range probes {
					peer := f.srvFor(s)
					switch {
					case !peer.up:
					case peer == at:
						f.chargeOp(sp, peer, cfg.ReaddirService, -1, scanInfo())
					default:
						f.hop(sp, peer, func(q *sim.Proc) {
							f.chargeOp(q, peer, cfg.ReaddirService, -1, scanInfo())
						})
					}
				}
			}
			if f.splitLevel(p) > 0 {
				if f.domained() {
					// A peer partition cannot be read from this domain:
					// each probe pays its hop up front and checks
					// emptiness at its own arrival instant — the
					// check-to-commit window a real distributed rmdir
					// has — stopping at the first non-empty partition.
					for _, s := range f.splitSlices(p)[1:] {
						s := s
						peer := f.srvFor(s)
						notEmpty := false
						check := func(q *sim.Proc) {
							notEmpty = hasFileEntries(f.shards[s].ns, p, q.Now())
						}
						switch {
						case !peer.up:
							// A down peer's state still counts; reading it
							// is a rendezvous with its domain, no thread
							// occupancy.
							if dk := f.sliceKernel(s); dk != sp.Kernel() {
								sim.Call(sp, dk, f.cfg.CrossShardLatency, "rmdirprobe", check)
							} else {
								check(sp)
							}
						case peer == at:
							f.chargeOp(sp, peer, cfg.ReaddirService, -1, scanInfo())
							check(sp)
						default:
							f.hop(sp, peer, func(q *sim.Proc) {
								f.chargeOp(q, peer, cfg.ReaddirService, -1, scanInfo())
								check(q)
							})
						}
						if notEmpty {
							err = fs.NewError("rmdir", p, fs.ENOTEMPTY)
							return
						}
					}
				} else {
					for _, s := range f.splitSlices(p)[1:] {
						probes = append(probes, s)
						if hasFileEntries(f.shards[s].ns, p, sp.Now()) {
							err = fs.NewError("rmdir", p, fs.ENOTEMPTY)
							payProbes() // the failed probe ran its readdirs too
							return
						}
					}
				}
			}
			err = state.ns.Rmdir(p, sp.Now())
			if err == nil {
				// The split-level map is global routing state: under
				// domains it changes only at sync points.
				f.atSync(sp, func() { f.dropSplit(p) })
				f.replicate(sp, state, cfg.RemoveService, func(ns *namespace.Namespace, now time.Duration) {
					ns.Rmdir(p, now)
				})
				f.revokeOnMutate(sp, c.st(), p, true)
				f.dropDelegation(sp, p)
				f.persistAt(sp, state, at, srv, fs.OpRmdir, p, cfg.MetaLogBytes)
				payProbes()
			}
		})
	})
	if cerr != nil {
		return cerr
	}
	if err == nil {
		c.dropEntry(p)
	}
	return err
}

// Unlink removes a file at the shard serving its parent directory.
func (c *client) Unlink(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	var err error
	cerr := c.callEntry("unlink", p, 150, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			if dir, lerr := state.ns.Lookup(fs.ParentDir(p)); lerr == nil {
				lock := state.dirLock(sp.Kernel(), dir.Ino)
				lock.Lock(sp)
				defer lock.Unlock()
				f.serviceOp(sp, at, cfg.RemoveService, dir.NumChildren(), writeInfo(p, dir.NumChildren()))
			} else {
				f.serviceOp(sp, at, cfg.RemoveService, -1, writeInfo(p, -1))
			}
			state2 := f.entryState(p) // the waits above may have overlapped a split
			f.applyState(sp, state2, at, func(q *sim.Proc, at2 *shardSrv, _ bool) {
				err = state2.ns.Unlink(p, q.Now())
				if err == nil {
					f.revokeOnMutate(q, c.st(), p, true)
					f.persistAt(q, state2, at2, srv, fs.OpUnlink, p, cfg.MetaLogBytes)
				}
			})
		})
	})
	if cerr != nil {
		return cerr
	}
	if err == nil {
		c.dropEntry(p)
	}
	return err
}

// Rename is atomic on one shard when both parents are served there.
// When they are not, the file migrates: validate at the source shard,
// one interconnect hop to insert at the destination, then the removal
// at the source — the cross-shard cost E18 measures. Directory renames
// do not migrate: under hash placement every descendant's partition key
// embeds the directory path, so renaming a directory would re-home its
// files and invalidate its replicas — it returns EXDEV like any
// multi-device rename (§2.6.3), as does any rename whose source is not
// a regular file crossing a shard boundary. Under subtree placement a
// directory rename inside one subtree stays local and is allowed. A
// migrate whose destination server is down fails the whole operation
// with a timeout and the client retries it from the source.
func (c *client) Rename(oldPath, newPath string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(oldPath); err != nil {
		return err
	}
	if err := c.resolveParents(newPath); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(oldPath))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	srcSlice := f.ownerSlice(oldPath)
	dstSlice := f.ownerSlice(newPath)
	var err error
	if srcSlice == dstSlice {
		cerr := c.call("rename", oldPath, srcSlice, 150, 140, func(sp *sim.Proc, state, srv *shardSrv) {
			// Re-resolve ownership at service time (the callEntry rule),
			// and again under the lock below: a split landing while this
			// request queued or waited can re-home either name; renaming
			// on a pinned slice would strand the new entry where the
			// split-aware routing never looks.
			state = f.entryState(oldPath)
			f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
				if dir, lerr := state.ns.Lookup(fs.ParentDir(oldPath)); lerr == nil {
					lock := state.dirLock(sp.Kernel(), dir.Ino)
					lock.Lock(sp)
					defer lock.Unlock()
					f.serviceOp(sp, at, cfg.RenameService, dir.NumChildren(), writeInfo(oldPath, dir.NumChildren()))
				} else {
					f.serviceOp(sp, at, cfg.RenameService, -1, writeInfo(oldPath, -1))
				}
				// Commit-instant re-resolution; no virtual time passes from
				// here to ns.Rename. When a mid-flight split separated the
				// two names' partitions, the rename surfaces a transient
				// EXDEV — an online repartition briefly refusing a rename it
				// can no longer do atomically, like any
				// migration-in-progress busy error — rather than corrupting
				// placement.
				state2 := f.entryState(oldPath)
				f.applyState(sp, state2, at, func(q *sim.Proc, at2 *shardSrv, _ bool) {
					if f.ownerSlice(newPath) != f.ownerSlice(oldPath) {
						err = fs.NewError("rename", newPath, fs.EXDEV)
						return
					}
					if f.cfg.Placement == PlaceHashDir && len(f.shards) > 1 {
						// Renaming a directory would strand its hashed files
						// and stale the replicated tree on the other shards.
						var a fs.Attr
						a, err = state2.ns.Stat(oldPath)
						if err != nil {
							return
						}
						if a.Type == fs.TypeDirectory {
							err = fs.NewError("rename", newPath, fs.EXDEV)
							return
						}
					}
					err = state2.ns.Rename(oldPath, newPath, q.Now())
					if err == nil {
						f.revokeOnMutate(q, c.st(), oldPath, true)
						f.revokeOnMutate(q, c.st(), newPath, true)
						f.dropDelegation(q, oldPath)
						// A directory rename moved every descendant with it:
						// leases keyed by the old paths are dead. All reachable
						// cases (subtree placement, single shard) keep a
						// subtree's entries on one slice.
						if f.cfg.CacheMode == CacheLease {
							if a, serr := state2.ns.Stat(newPath); serr == nil && a.Type == fs.TypeDirectory {
								f.revokeSubtree(q, c.st(), oldPath, f.ownerSlice(oldPath))
							}
						}
						f.persistAt(q, state2, at2, srv, fs.OpRename, newPath, cfg.MetaLogBytes)
						// The rename inserted an entry at the destination parent:
						// it can push that directory over the split threshold
						// just like a create — but splits trigger from the
						// contacted server only, never from forwarded work
						// on a peer pool.
						if at2 == srv {
							if ndir, nlerr := state2.ns.Lookup(fs.ParentDir(newPath)); nlerr == nil {
								f.maybeSplit(q, fs.ParentDir(newPath), ndir.NumChildren(), c.st())
							}
						}
						c.captureEntry(q, newPath)
					}
				})
			})
		})
		if cerr != nil {
			return cerr
		}
	} else {
		// The migrate pairs two servers, and either can be down: a dead
		// source fails the TryCall, a dead destination aborts the
		// service body after the client's RPC timeout. Both are
		// retryable failures drawing on the one callRetry budget, and
		// every retry restarts the migrate from the source phase.
		// dirEntries returns the directory-index surcharge argument for
		// the parent of p in ns — the same dir.NumChildren() the local
		// rename branch charges, so a large directory prices its rename
		// identically whether or not the operation crosses a shard.
		dirEntries := func(ns *namespace.Namespace, p string) int {
			if dir, lerr := ns.Lookup(fs.ParentDir(p)); lerr == nil {
				return dir.NumChildren()
			}
			return -1
		}
		cerr := c.callRetry("rename", newPath, func() bool {
			err = nil
			dstDown := false
			moved := false
			srv := f.srvFor(srcSlice)
			// Under kernel domains a re-resolution that discovers the
			// entry re-homed into another domain cannot proxy for free:
			// the attempt fails like a timeout and the client retries
			// against the new owner — an ESTALE redirect, priced as a
			// retry. rehomed reports (and records) that condition.
			rehomed := func(q *sim.Proc, st *shardSrv) bool {
				if f.domained() && f.sliceKernel(st.index) != q.Kernel() {
					moved = true
					return true
				}
				return false
			}
			terr := f.conn(c.node, srv).TryCallDom(c.p, 150, 140, func(sp *sim.Proc) {
				// Re-resolve both ends at service time, like callEntry: a
				// split landing while this request queued may have
				// re-homed either entry.
				srcState := f.entryState(oldPath)
				if rehomed(sp, srcState) {
					sp.Sleep(f.cfg.RetryTimeout)
					return
				}
				srcN := dirEntries(srcState.ns, oldPath)
				f.serviceOp(sp, srv, cfg.RenameService, srcN, writeInfo(oldPath, srcN))
				srcState = f.entryState(oldPath) // the charge may have overlapped a split
				if rehomed(sp, srcState) {
					sp.Sleep(f.cfg.RetryTimeout)
					return
				}
				var a fs.Attr
				a, err = srcState.ns.Stat(oldPath)
				if err != nil {
					return
				}
				if a.Type != fs.TypeRegular {
					err = fs.NewError("rename", newPath, fs.EXDEV)
					return
				}
				dstState := f.shards[f.ownerSlice(newPath)]
				dstSrv := f.srvFor(f.ownerSlice(newPath))
				if !dstSrv.up {
					dstDown = true
					sp.Sleep(f.cfg.RetryTimeout)
					return
				}
				dstParentN := -1
				// Phase 1: insert at the destination shard.
				f.hop(sp, dstSrv, func(q *sim.Proc) {
					dstN := dirEntries(dstState.ns, newPath)
					f.chargeOp(q, dstSrv, cfg.RenameService, dstN, writeInfo(newPath, dstN))
					// Commit-instant re-resolution after the hop+charge
					// waits.
					dstState = f.entryState(newPath)
					if rehomed(q, dstState) {
						return
					}
					if derr := dstState.ns.Unlink(newPath, q.Now()); derr != nil && !fs.IsNotExist(derr) {
						err = derr
						return
					}
					var ni *namespace.Inode
					ni, err = dstState.ns.Create(newPath, a.Mode, q.Now())
					if err == nil {
						if a.Size > 0 {
							dstState.ns.SetSize(ni.Ino, a.Size, q.Now())
						}
						f.revokeOnMutate(q, c.st(), newPath, true)
						// The destination insert commits per-op even under
						// group commit: it runs on the peer pool, and peer
						// work must never wait on a batch whose leader may
						// need this very pool for its mirror round trip.
						dstSrv.be.log(q, cfg.MetaLogBytes)
						f.commit(q, dstState, dstSrv, fs.OpRename, newPath)
						if f.domained() {
							// The coordinator cannot read the destination
							// parent from its domain: capture the split
							// trigger's entry count (and the new entry's
							// attributes) here, at the insert instant.
							if ndir, nlerr := dstState.ns.Lookup(fs.ParentDir(newPath)); nlerr == nil {
								dstParentN = ndir.NumChildren()
							}
							c.captureEntry(q, newPath)
						}
					}
				})
				if err != nil || moved {
					if moved {
						sp.Sleep(f.cfg.RetryTimeout)
					}
					return
				}
				// Phase 2: remove at the source shard.
				rmN := dirEntries(srcState.ns, oldPath)
				f.chargeOp(sp, srcState, cfg.RemoveService, rmN, writeInfo(oldPath, rmN))
				srcState = f.entryState(oldPath) // commit-instant re-resolution
				if rehomed(sp, srcState) {
					// The destination insert stands; the retry's source
					// removal is idempotent (phase 1 tolerates an existing
					// destination entry).
					sp.Sleep(f.cfg.RetryTimeout)
					return
				}
				err = srcState.ns.Unlink(oldPath, sp.Now())
				if err == nil {
					f.revokeOnMutate(sp, c.st(), oldPath, true)
					f.persist(sp, srcState, srv, fs.OpUnlink, oldPath, cfg.MetaLogBytes)
					// The migrate grew the destination parent; trigger
					// from the coordinator, never from inside the hop —
					// a split hops to peer pools itself, and peer-pool
					// threads must not wait on other peer pools.
					if f.domained() {
						if dstParentN >= 0 {
							f.maybeSplit(sp, fs.ParentDir(newPath), dstParentN, c.st())
						}
					} else if ndir, nlerr := dstState.ns.Lookup(fs.ParentDir(newPath)); nlerr == nil {
						f.maybeSplit(sp, fs.ParentDir(newPath), ndir.NumChildren(), c.st())
					}
				}
			})
			return terr != nil || dstDown || moved
		})
		if cerr != nil {
			return cerr
		}
	}
	if err == nil {
		c.dropEntry(oldPath)
		c.cacheEntry(newPath)
	}
	return err
}

// Link creates a hard link when both names are served by one shard;
// cross-shard hard links are not supported (EXDEV), matching systems
// whose inodes are keyed by partition.
func (c *client) Link(oldPath, newPath string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(newPath); err != nil {
		return err
	}
	srcSlice := f.ownerSlice(oldPath)
	dstSlice := f.ownerSlice(newPath)
	if srcSlice != dstSlice {
		return fs.NewError("link", newPath, fs.EXDEV)
	}
	imutex := c.node.DirLock(fs.ParentDir(newPath))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	var err error
	cerr := c.callEntry("link", newPath, 150, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			f.serviceOp(sp, at, cfg.CreateService, -1, writeInfo(newPath, -1))
			// Commit-instant re-check: a split landing while this request
			// queued or charged can separate the two names' partitions.
			state2 := f.entryState(newPath)
			f.applyState(sp, state2, at, func(q *sim.Proc, at2 *shardSrv, _ bool) {
				if f.ownerSlice(oldPath) != f.ownerSlice(newPath) {
					err = fs.NewError("link", newPath, fs.EXDEV)
					return
				}
				err = state2.ns.Link(oldPath, newPath, q.Now())
				if err == nil {
					// The link bumps the target's nlink: both names go stale.
					f.revokeOnMutate(q, c.st(), oldPath, false)
					f.revokeOnMutate(q, c.st(), newPath, true)
					f.persistAt(q, state2, at2, srv, fs.OpLink, newPath, cfg.MetaLogBytes)
					if at2 == srv {
						if dir, lerr := state2.ns.Lookup(fs.ParentDir(newPath)); lerr == nil {
							f.maybeSplit(q, fs.ParentDir(newPath), dir.NumChildren(), c.st())
						}
					}
					c.captureEntry(q, newPath)
				}
			})
		})
	})
	if cerr != nil {
		return cerr
	}
	if err == nil {
		c.cacheEntry(newPath)
	}
	return err
}

// Symlink stores the target string at the shard serving linkPath.
func (c *client) Symlink(target, linkPath string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(linkPath); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(linkPath))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	var err error
	cerr := c.callEntry("symlink", linkPath, 150, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			f.serviceOp(sp, at, cfg.CreateService, -1, writeInfo(linkPath, -1))
			state2 := f.entryState(linkPath) // the charge may have overlapped a split
			f.applyState(sp, state2, at, func(q *sim.Proc, at2 *shardSrv, _ bool) {
				_, err = state2.ns.Symlink(target, linkPath, q.Now())
				if err == nil {
					f.revokeOnMutate(q, c.st(), linkPath, true)
					f.persistAt(q, state2, at2, srv, fs.OpSymlink, linkPath, cfg.MetaLogBytes)
					if at2 == srv {
						if dir, lerr := state2.ns.Lookup(fs.ParentDir(linkPath)); lerr == nil {
							f.maybeSplit(q, fs.ParentDir(linkPath), dir.NumChildren(), c.st())
						}
					}
					c.captureEntry(q, linkPath)
				}
			})
		})
	})
	if cerr != nil {
		return cerr
	}
	if err == nil {
		c.cacheEntry(linkPath)
	}
	return err
}

// Stat serves from the attribute cache while its entry holds — a TTL
// that has not lapsed, or a lease that was neither revoked nor
// epoch-invalidated — else issues GETATTR to the serving shard, which
// grants a fresh lease under CacheLease.
func (c *client) Stat(p string) (fs.Attr, error) {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if a, ok := c.cachedAttr(p); ok {
		return a, nil
	}
	if err := c.resolveParents(p); err != nil {
		return fs.Attr{}, err
	}
	var a fs.Attr
	var err error
	cerr := c.callEntry("stat", p, 120, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			f.serviceOp(sp, at, cfg.GetattrService, -1, f.readInfo(state, p))
			state2 := f.entryState(p) // the charge may have overlapped a split
			f.applyState(sp, state2, at, func(q *sim.Proc, _ *shardSrv, _ bool) {
				a, err = state2.ns.Stat(p)
				if err == nil {
					c.fillEntry(q, p, a)
				}
			})
		})
	})
	if cerr != nil {
		return fs.Attr{}, cerr
	}
	if err != nil {
		return fs.Attr{}, err
	}
	return a, nil
}

// Open resolves the path (dentry cache, else LOOKUP at the owner) and
// returns a handle bound to the owning slice.
func (c *client) Open(p string) (fs.Handle, error) {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return 0, err
	}
	st := c.st()
	ino, neg, ok := st.dentries.Lookup(p)
	if ok && neg {
		return 0, fs.NewError("open", p, fs.ENOENT)
	}
	if f.domained() {
		return c.openDomained(p, ino, ok)
	}
	if !ok {
		var err error
		cerr := c.callEntry("open", p, 120, 140, func(sp *sim.Proc, state, srv *shardSrv) {
			f.serviceOp(sp, srv, cfg.LookupService, -1, f.readInfo(state, p))
			state = f.entryState(p) // the charge may have overlapped a split
			var a fs.Attr
			a, err = state.ns.Stat(p)
			if err == nil {
				ino = a.Ino
				c.fillEntry(sp, p, a)
			} else {
				st.dentries.PutNegative(p)
			}
		})
		if cerr != nil {
			return 0, cerr
		}
		if err != nil {
			return 0, err
		}
	}
	slice := f.ownerSlice(p)
	state := f.shards[slice]
	// Revalidate by path, not by the cached ino alone: every slice
	// numbers its inodes independently, so after a split migrates the
	// entry a stale dentry's ino could collide with an unrelated file
	// on the new owner slice.
	node, lerr := state.ns.Lookup(p)
	if lerr != nil {
		c.dropEntry(p)
		return 0, fs.NewError("open", p, fs.ESTALE)
	}
	if node.Ino != ino {
		// The dentry predates a migration (or a same-name replacement):
		// open resolves the name, so refresh the dentry and open the
		// current incarnation — only flush guards handle incarnations.
		ino = node.Ino
		st.dentries.PutPositive(p, ino)
	}
	return c.newHandle(p, slice, ino, node.Size), nil
}

// openDomained is Open under kernel domains. The single-kernel model
// revalidates a cached dentry with a free peek at the owning slice's
// namespace; across domains that state is unreadable from the client,
// so a dentry whose attributes are still cached opens locally —
// incarnation staleness surfaces at flush as ESTALE through the
// handle-chasing guards — and anything else pays one LOOKUP RPC that
// resolves ino and size in the owner's domain.
func (c *client) openDomained(p string, ino fs.Ino, ok bool) (fs.Handle, error) {
	f := c.fsys
	cfg := c.cfg()
	st := c.st()
	var size int64
	haveSize := false
	if ok {
		if a, aok := c.cachedAttr(p); aok && a.Ino == ino {
			size, haveSize = a.Size, true
		}
	}
	if !haveSize {
		var err error
		cerr := c.callEntry("open", p, 120, 140, func(sp *sim.Proc, state, srv *shardSrv) {
			f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
				f.serviceOp(sp, at, cfg.LookupService, -1, f.readInfo(state, p))
				state2 := f.entryState(p) // the charge may have overlapped a split
				f.applyState(sp, state2, at, func(q *sim.Proc, _ *shardSrv, _ bool) {
					var a fs.Attr
					a, err = state2.ns.Stat(p)
					if err == nil {
						ino, size = a.Ino, a.Size
						c.fillEntry(q, p, a)
					} else {
						simnet.Defer(q, func() { st.dentries.PutNegative(p) })
					}
				})
			})
		})
		if cerr != nil {
			return 0, cerr
		}
		if err != nil {
			return 0, err
		}
		st.dentries.PutPositive(p, ino)
	}
	return c.newHandle(p, f.ownerSlice(p), ino, size), nil
}

// newHandle allocates a file handle bound to the entry's owning slice.
func (c *client) newHandle(p string, slice int, ino fs.Ino, size int64) fs.Handle {
	c.nextFH++
	h := c.nextFH
	c.handles[h] = &openFile{path: p, slice: slice, ino: ino, size: size}
	return h
}

// Close flushes dirty data (close-to-open consistency).
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	if of.dirty {
		return c.flush(of)
	}
	return nil
}

// Write buffers n bytes client-side until Close or Fsync.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	of.written += n
	of.dirty = true
	return nil
}

// Fsync forces dirty data to the serving shard.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	if of.dirty {
		return c.flush(of)
	}
	return nil
}

func (c *client) flush(of *openFile) error {
	f := c.fsys
	cfg := c.cfg()
	newSize := of.size + of.written
	written := of.written
	var err error
	id := entryID{of.slice, of.ino}
	cerr := c.callEntry("write", of.path, 120+written, 140, func(sp *sim.Proc, state, srv *shardSrv) {
		t := time.Duration(float64(cfg.WriteServicePerKB) * float64(written) / 1024)
		f.serviceOp(sp, srv, t, -1, opInfo{cls: opWrite, dirSize: -1})
		// Chase the handle's incarnation across split migrations, then
		// write through the inode, wherever its name has gone: a rename
		// keeps the inode alive (the write must land, POSIX fd
		// semantics), a split migration is followed via FS.moved, and
		// only a dead inode — unlinked, or re-homed by a cross-shard
		// migrate that re-created it — is a stale handle that must fail
		// loudly rather than touch an unrelated same-name replacement.
		id = f.chaseMoves(id)
		state = f.shards[id.slice]
		f.applyState(sp, state, srv, func(q *sim.Proc, at *shardSrv, _ bool) {
			if state.ns.Get(id.ino) == nil {
				err = fs.NewError("write", of.path, fs.ESTALE)
				return
			}
			state.ns.SetSize(id.ino, newSize, q.Now())
			// Size and mtime changed: other holders' attribute leases die;
			// the parent directory is untouched by a content write.
			f.revokeOnMutate(q, c.st(), of.path, false)
			f.persistAt(q, state, at, srv, fs.OpWrite, of.path, cfg.MetaLogBytes+written)
			if f.domained() {
				// The client-side refresh below cannot peek across
				// domains: refill here, at the commit instant, when the
				// written name still resolves in this domain.
				if est := f.entryState(of.path); f.sliceKernel(est.index) == q.Kernel() {
					if a, serr := est.ns.Stat(of.path); serr == nil {
						c.fillEntry(q, of.path, a)
					}
				}
			}
		})
	})
	if cerr != nil {
		return cerr
	}
	if err != nil {
		return err
	}
	of.slice, of.ino = id.slice, id.ino
	of.size = newSize
	of.written = 0
	of.dirty = false
	if !f.domained() {
		if a, serr := f.shards[f.ownerSlice(of.path)].ns.Stat(of.path); serr == nil {
			c.fillEntry(c.p, of.path, a)
		}
	}
	return nil
}

// readdirCost returns the service time of listing n entries: one
// ReaddirService per 512-entry page plus the per-entry cost, the same
// paging model as the NFS READDIR path.
func readdirCost(cfg *Config, n int) time.Duration {
	pages := (n + 511) / 512
	if pages < 1 {
		pages = 1
	}
	return time.Duration(pages)*cfg.ReaddirService +
		time.Duration(n)*cfg.ReaddirPerEntry
}

// ReadDir lists a directory from the shard serving its files. Under
// subtree placement the root spans every shard, so a root listing
// visits the peers over the interconnect and merges their top-level
// entries — the namespace-aggregation view of §4.7 at MDS granularity.
// A split giant directory fans out across its partition slices the
// same way (splitReadDir). Peers that are down are skipped: the listing
// degrades the way an aggregated namespace does when one volume server
// times out, and every degraded merge is surfaced in
// FS.PartialListings.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	f := c.fsys
	cfg := c.cfg()
	if f.splitActive() {
		// Whenever splitting is possible, list through the fan-out: it
		// reads the split level at service time, so a split landing
		// while the request queues cannot hide the just-moved entries
		// (an unsplit directory is a one-slice fan-out at the same
		// cost).
		return c.splitReadDir(p)
	}
	c.node.Syscall(c.p)
	slice := f.contentSlice(p)
	if slice < 0 {
		homeSlice := c.node.Index % len(f.shards)
		var ents []fs.DirEntry
		var err error
		cerr := c.call("readdir", p, homeSlice, 130, 260, func(sp *sim.Proc, home, srv *shardSrv) {
			f.applyState(sp, home, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
				ents, err = home.ns.ReadDir(p, sp.Now())
				if err != nil {
					f.serviceOp(sp, at, cfg.ReaddirService, -1, scanInfo())
					return
				}
				f.serviceOp(sp, at, readdirCost(cfg, len(ents)), -1, scanInfo())
				for i := range f.shards {
					if i == homeSlice {
						continue
					}
					peer := f.srvFor(i)
					state := f.shards[i]
					if peer == at {
						// A failover made this server serve the peer slice
						// too: merge locally, no interconnect hop.
						more, merr := state.ns.ReadDir(p, sp.Now())
						if merr == nil {
							f.chargeOp(sp, at, readdirCost(cfg, len(more)), -1, scanInfo())
							ents = append(ents, more...)
						}
						continue
					}
					if !peer.up {
						// The peer's subtrees are unreachable: the merge
						// degrades to a partial listing, surfaced on the FS
						// so callers and experiments can see the loss.
						addI64(&f.PartialListings, 1)
						continue
					}
					f.hop(sp, peer, func(q *sim.Proc) {
						more, merr := state.ns.ReadDir(p, q.Now())
						if merr != nil {
							return
						}
						f.chargeOp(q, peer, readdirCost(cfg, len(more)), -1, scanInfo())
						ents = append(ents, more...)
					})
				}
			})
		})
		if cerr != nil {
			return nil, cerr
		}
		return ents, err
	}
	var ents []fs.DirEntry
	var err error
	cerr := c.call("readdir", p, slice, 130, 260, func(sp *sim.Proc, state, srv *shardSrv) {
		f.applyState(sp, state, srv, func(sp *sim.Proc, at *shardSrv, _ bool) {
			ents, err = state.ns.ReadDir(p, sp.Now())
			if err != nil {
				f.serviceOp(sp, at, cfg.ReaddirService, -1, scanInfo())
				return
			}
			f.serviceOp(sp, at, readdirCost(cfg, len(ents)), -1, scanInfo())
		})
	})
	if cerr != nil {
		return nil, cerr
	}
	return ents, err
}

// DropCaches clears the node's attribute, lease, dentry and
// split-bitmap caches.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
	st := c.st()
	if st.attrs != nil {
		st.attrs.Clear()
	}
	if st.leases != nil {
		st.leases.Clear()
	}
	if st.splits != nil {
		st.splits.Clear()
	}
	st.dentries.Clear()
}
