// Package shard models a sharded metadata service: the namespace of one
// file system is partitioned across N simulated metadata servers (MDS),
// the scaling step beyond the single-MDS systems the thesis measures
// (Lustre's lone MDS in §4.3, the NFS filer of §4.1.2). Related work
// motivates both placement policies it supports:
//
//   - PlaceSubtree partitions by top-level directory subtree, the
//     Ontap-GX/volume style of §4.7: every operation under one subtree
//     is served entirely by the owning shard, so path resolution stays
//     local, but a popular subtree concentrates on one server.
//   - PlaceHashDir partitions file entries by a hash of their parent
//     directory (HopsFS-style partition pruning): directories are
//     replicated on every shard so any shard can resolve paths, files
//     of one directory live on exactly one shard, and directory
//     mutations pay a synchronous broadcast to the other shards.
//
// Cross-shard operations are modeled as extra RPC hops over the MDS
// interconnect: a rename whose source and destination directories live
// on different shards runs as a migrate (insert at the destination,
// remove at the source), and namespace-wide operations (root readdir
// under subtree placement, directory broadcasts under hash placement)
// visit peer shards one interconnect round trip at a time. Peer work is
// served by a dedicated per-shard peer thread pool so forwarded requests
// cannot form circular waits with the client-facing pools.
package shard

import (
	"strconv"
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
	"dmetabench/internal/storage"
)

// Policy selects how the namespace is partitioned across shards.
type Policy int

// Placement policies.
const (
	// PlaceHashDir places a file on hash(parent directory) and
	// replicates directories everywhere (HopsFS style).
	PlaceHashDir Policy = iota
	// PlaceSubtree places whole top-level subtrees on one shard
	// (Ontap-GX volume style).
	PlaceSubtree
)

func (p Policy) String() string {
	if p == PlaceSubtree {
		return "subtree"
	}
	return "hashdir"
}

// Config holds the tunables of the sharded MDS model. Per-shard service
// times default to the FAS3050-class figures of the NFS model so shard
// counts are comparable against the single-server baselines.
type Config struct {
	// NumShards is the metadata server count.
	NumShards int
	// Placement selects the partitioning policy.
	Placement Policy
	// ShardThreads is each shard's client-facing worker pool size.
	ShardThreads int
	// PeerThreads is each shard's pool for inter-MDS requests
	// (broadcast replication, migrate inserts, peer readdir).
	PeerThreads int
	// OneWayLatency is the client<->shard network delay.
	OneWayLatency time.Duration
	// CrossShardLatency is the one-way delay of the MDS interconnect.
	CrossShardLatency time.Duration
	// CrossShardOverhead is the extra CPU charged on each side of a
	// forwarded operation (marshalling, transaction bookkeeping).
	CrossShardOverhead time.Duration

	CreateService     time.Duration
	GetattrService    time.Duration
	LookupService     time.Duration
	RemoveService     time.Duration
	MkdirService      time.Duration
	RenameService     time.Duration
	ReaddirService    time.Duration
	ReaddirPerEntry   time.Duration
	WriteServicePerKB time.Duration

	AttrTTL   time.Duration
	DentryTTL time.Duration
	DirIndex  namespace.DirIndex
	WAFL      storage.WAFLConfig
	// MetaLogBytes is the journal record size per namespace change.
	MetaLogBytes int64
	// SubtreeAssign pins top-level subtrees to shard indexes under
	// PlaceSubtree — the administrative volume placement of §4.7.2.
	// Subtrees not listed fall back to hashing their name.
	SubtreeAssign map[string]int
}

// DefaultConfig returns an n-shard configuration with per-shard service
// times matching the single-server NFS defaults.
func DefaultConfig(n int) Config {
	return Config{
		NumShards:          n,
		Placement:          PlaceHashDir,
		ShardThreads:       4,
		PeerThreads:        2,
		OneWayLatency:      250 * time.Microsecond,
		CrossShardLatency:  80 * time.Microsecond,
		CrossShardOverhead: 45 * time.Microsecond,
		CreateService:      150 * time.Microsecond,
		GetattrService:     40 * time.Microsecond,
		LookupService:      40 * time.Microsecond,
		RemoveService:      140 * time.Microsecond,
		MkdirService:       180 * time.Microsecond,
		RenameService:      180 * time.Microsecond,
		ReaddirService:     120 * time.Microsecond,
		ReaddirPerEntry:    800 * time.Nanosecond,
		WriteServicePerKB:  30 * time.Microsecond,
		AttrTTL:            3 * time.Second,
		DentryTTL:          30 * time.Second,
		DirIndex:           namespace.IndexHash,
		WAFL:               storage.DefaultWAFLConfig(),
		MetaLogBytes:       320,
	}
}

// shardSrv is one metadata server: its authoritative namespace slice,
// client-facing and peer thread pools, journal and directory locks.
type shardSrv struct {
	index int
	srv   *simnet.Server
	peer  *simnet.Server
	wafl  *storage.WAFL
	ns    *namespace.Namespace
	locks map[fs.Ino]*sim.Mutex
	ops   int64
}

// FS is one sharded metadata file system.
type FS struct {
	k   *sim.Kernel
	cfg Config

	shards []*shardSrv
	conns  map[connKey]*simnet.Conn
	nodes  map[*cluster.Node]*nodeState

	rpcs int64
	// CrossCount counts operations that crossed the MDS interconnect
	// (migrating renames, peer readdirs, one per broadcast replica).
	CrossCount int64
	// BroadcastCount counts directory mutations that were replicated to
	// the other shards (hash placement only).
	BroadcastCount int64
}

type connKey struct {
	node  *cluster.Node
	shard int
}

type nodeState struct {
	attrs    *clientcache.AttrCache
	dentries *clientcache.DentryCache
}

// New creates a sharded metadata service on kernel k.
func New(k *sim.Kernel, name string, cfg Config) *FS {
	if cfg.NumShards < 1 {
		cfg.NumShards = 1
	}
	f := &FS{
		k:     k,
		cfg:   cfg,
		conns: make(map[connKey]*simnet.Conn),
		nodes: make(map[*cluster.Node]*nodeState),
	}
	for i := 0; i < cfg.NumShards; i++ {
		id := name + "-" + strconv.Itoa(i)
		f.shards = append(f.shards, &shardSrv{
			index: i,
			srv:   simnet.NewServer(k, "mds:"+id, cfg.ShardThreads),
			peer:  simnet.NewServer(k, "mdspeer:"+id, cfg.PeerThreads),
			wafl:  storage.NewWAFL(k, "mds:"+id, cfg.WAFL),
			ns:    namespace.New(),
			locks: make(map[fs.Ino]*sim.Mutex),
		})
	}
	return f
}

// Name identifies the model in results and charts.
func (f *FS) Name() string {
	return "shard" + strconv.Itoa(len(f.shards)) + "-" + f.cfg.Placement.String()
}

// NumShards returns the shard count.
func (f *FS) NumShards() int { return len(f.shards) }

// RPCCount returns the number of client RPCs served.
func (f *FS) RPCCount() int64 { return f.rpcs }

// ShardOps returns the per-shard count of client operations served,
// the load-balance view the skew experiments report.
func (f *FS) ShardOps() []int64 {
	out := make([]int64, len(f.shards))
	for i, sh := range f.shards {
		out[i] = sh.ops
	}
	return out
}

// Namespace exposes shard i's authoritative namespace (tests, fsck).
func (f *FS) Namespace(i int) *namespace.Namespace { return f.shards[i].ns }

// hashString is FNV-1a; the routing hash must be stable across runs so
// identically-seeded simulations shard identically.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ShardOfEntry returns the index of the shard serving the entry at p.
func (f *FS) ShardOfEntry(p string) int { return f.ownerOf(p).index }

// ShardOfDir returns the index of the shard holding the file contents
// of directory dir (-1 when the directory spans shards: the root under
// subtree placement).
func (f *FS) ShardOfDir(dir string) int {
	sh := f.contentOf(dir)
	if sh == nil {
		return -1
	}
	return sh.index
}

// ownerOf returns the shard serving the directory entry at path p: the
// shard of p's top-level subtree, or the shard hashing p's parent
// directory.
func (f *FS) ownerOf(p string) *shardSrv {
	if f.cfg.Placement == PlaceSubtree {
		top := fs.TopComponent(p)
		if top == "" {
			return f.shards[0]
		}
		return f.shards[f.subtreeShard(top)]
	}
	return f.shards[hashString(fs.ParentDir(p))%uint32(len(f.shards))]
}

// subtreeShard resolves a top-level subtree to its shard: pinned
// placement when configured, hash of the name otherwise.
func (f *FS) subtreeShard(top string) int {
	if i, ok := f.cfg.SubtreeAssign[top]; ok {
		return i % len(f.shards)
	}
	return int(hashString(top) % uint32(len(f.shards)))
}

// contentOf returns the shard holding the file entries of directory
// dir, or nil when the directory spans every shard (the root under
// subtree placement, whose top-level entries are partitioned).
func (f *FS) contentOf(dir string) *shardSrv {
	if f.cfg.Placement == PlaceSubtree {
		top := fs.TopComponent(dir)
		if top == "" {
			return nil
		}
		return f.shards[f.subtreeShard(top)]
	}
	return f.shards[hashString(dir)%uint32(len(f.shards))]
}

func (f *FS) conn(n *cluster.Node, sh *shardSrv) *simnet.Conn {
	key := connKey{n, sh.index}
	c, ok := f.conns[key]
	if !ok {
		c = simnet.NewConn(f.k, sh.srv, f.cfg.OneWayLatency, 0)
		f.conns[key] = c
	}
	return c
}

func (f *FS) nodeState(n *cluster.Node) *nodeState {
	s, ok := f.nodes[n]
	if !ok {
		s = &nodeState{
			attrs:    clientcache.NewAttrCache(f.cfg.AttrTTL, f.k.Now),
			dentries: clientcache.NewDentryCache(f.cfg.DentryTTL, f.k.Now),
		}
		f.nodes[n] = s
	}
	return s
}

func (sh *shardSrv) dirLock(k *sim.Kernel, ino fs.Ino) *sim.Mutex {
	m, ok := sh.locks[ino]
	if !ok {
		m = sim.NewMutex(k, "mdsdir:"+strconv.Itoa(sh.index)+":"+strconv.FormatUint(uint64(ino), 10))
		sh.locks[ino] = m
	}
	return m
}

// charge sleeps the service cost of one operation at sh: the base time
// scaled by the shard's consistency-point factor and, when dirEntries is
// non-negative, by the directory-index entry cost.
func (f *FS) charge(p *sim.Proc, sh *shardSrv, base time.Duration, dirEntries int) {
	cost := float64(base) * sh.wafl.ServiceFactor()
	if dirEntries >= 0 {
		cost *= f.cfg.DirIndex.EntryCost(dirEntries)
	}
	p.Sleep(time.Duration(cost))
}

// service is charge plus client-RPC accounting.
func (f *FS) service(p *sim.Proc, sh *shardSrv, base time.Duration, dirEntries int) {
	f.charge(p, sh, base, dirEntries)
	f.rpcs++
	sh.ops++
}

// hop performs one synchronous MDS-to-MDS call while serving a request:
// coordination CPU on the caller, the interconnect round trip, and body
// running on the destination's peer pool (never its client pool, so
// forwarded work cannot deadlock against incoming requests).
func (f *FS) hop(sp *sim.Proc, dst *shardSrv, body func(q *sim.Proc)) {
	f.CrossCount++
	sp.Sleep(f.cfg.CrossShardOverhead)
	sp.Sleep(f.cfg.CrossShardLatency)
	dst.peer.Do(sp, func(q *sim.Proc) {
		q.Sleep(f.cfg.CrossShardOverhead)
		body(q)
	})
	sp.Sleep(f.cfg.CrossShardLatency)
}

// replicate propagates a successful directory mutation to every other
// shard (hash placement keeps the directory tree replicated). The state
// change commits on all replicas at the primary's apply time — the
// mutation is atomic across shards, like a transactional metadata
// store, so a concurrent request routed to a replica can never observe
// the directory tree mid-broadcast — while the caller still pays the
// full interconnect and replica service cost before its RPC returns.
func (f *FS) replicate(sp *sim.Proc, primary *shardSrv, svc time.Duration, apply func(ns *namespace.Namespace, now time.Duration)) {
	if f.cfg.Placement != PlaceHashDir || len(f.shards) == 1 {
		return
	}
	f.BroadcastCount++
	now := sp.Now()
	for _, sh := range f.shards {
		if sh != primary {
			apply(sh.ns, now)
		}
	}
	for _, sh := range f.shards {
		if sh == primary {
			continue
		}
		sh := sh
		f.hop(sp, sh, func(q *sim.Proc) {
			f.charge(q, sh, svc, -1)
			sh.wafl.LogMetadata(q, f.cfg.MetaLogBytes)
		})
	}
}

// NewClient binds a client for one process on one node.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]*openFile)}
}

type openFile struct {
	path    string
	sh      *shardSrv
	ino     fs.Ino
	size    int64
	written int64
	dirty   bool
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

func (c *client) cfg() Config    { return c.fsys.cfg }
func (c *client) st() *nodeState { return c.fsys.nodeState(c.node) }

// resolveParents walks the strict ancestors of p through the dentry
// cache, issuing one LOOKUP RPC to the owning shard per missing
// component. Under subtree placement every ancestor of a path shares
// its top-level component, so a cold walk stays on one shard; under
// hash placement the lookups scatter across the cluster.
func (c *client) resolveParents(p string) error {
	f := c.fsys
	cfg := c.cfg()
	st := c.st()
	for i := 1; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		prefix := p[:i]
		if _, neg, ok := st.dentries.Lookup(prefix); ok {
			if neg {
				return fs.NewError("lookup", prefix, fs.ENOENT)
			}
			continue
		}
		sh := f.ownerOf(prefix)
		var err error
		f.conn(c.node, sh).Call(c.p, 120, 140, func(sp *sim.Proc) {
			f.service(sp, sh, cfg.LookupService, -1)
			var a fs.Attr
			a, err = sh.ns.Stat(prefix)
			if err == nil {
				st.dentries.PutPositive(prefix, a.Ino)
				st.attrs.Put(prefix, a)
			} else {
				st.dentries.PutNegative(prefix)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// cacheEntry refreshes the node caches for p from its owning shard's
// namespace (client-side bookkeeping, no simulated cost).
func (c *client) cacheEntry(p string) {
	sh := c.fsys.ownerOf(p)
	if a, err := sh.ns.Stat(p); err == nil {
		st := c.st()
		st.attrs.Put(p, a)
		st.dentries.PutPositive(p, a.Ino)
	}
}

// Create issues one CREATE RPC to the shard owning the parent
// directory's files.
func (c *client) Create(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	sh := f.ownerOf(p)
	var err error
	f.conn(c.node, sh).Call(c.p, 160, 160, func(sp *sim.Proc) {
		if dir, lerr := sh.ns.Lookup(fs.ParentDir(p)); lerr == nil {
			lock := sh.dirLock(f.k, dir.Ino)
			lock.Lock(sp)
			defer lock.Unlock()
			f.service(sp, sh, cfg.CreateService, dir.NumChildren())
		} else {
			f.service(sp, sh, cfg.CreateService, -1)
		}
		_, err = sh.ns.Create(p, 0o644, sp.Now())
		if err == nil {
			sh.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	if err != nil {
		if fs.IsExist(err) {
			c.cacheEntry(p)
		}
		return err
	}
	c.cacheEntry(p)
	return nil
}

// Mkdir creates a directory at its owning shard; under hash placement
// the mutation then replicates synchronously to every other shard.
func (c *client) Mkdir(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	sh := f.ownerOf(p)
	var err error
	f.conn(c.node, sh).Call(c.p, 150, 140, func(sp *sim.Proc) {
		if dir, lerr := sh.ns.Lookup(fs.ParentDir(p)); lerr == nil {
			lock := sh.dirLock(f.k, dir.Ino)
			lock.Lock(sp)
			f.service(sp, sh, cfg.MkdirService, dir.NumChildren())
			lock.Unlock()
		} else {
			f.service(sp, sh, cfg.MkdirService, -1)
		}
		_, err = sh.ns.Mkdir(p, 0o755, sp.Now())
		if err == nil {
			sh.wafl.LogMetadata(sp, cfg.MetaLogBytes)
			f.replicate(sp, sh, cfg.MkdirService, func(ns *namespace.Namespace, now time.Duration) {
				ns.Mkdir(p, 0o755, now)
			})
		}
	})
	if err != nil {
		if fs.IsExist(err) {
			c.cacheEntry(p)
		}
		return err
	}
	c.cacheEntry(p)
	return nil
}

// Rmdir removes a directory. The emptiness check runs on the shard
// holding the directory's files; under hash placement the removal then
// replicates to the other shards.
func (c *client) Rmdir(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	sh := f.contentOf(p)
	if sh == nil {
		return fs.NewError("rmdir", p, fs.EINVAL)
	}
	var err error
	f.conn(c.node, sh).Call(c.p, 150, 140, func(sp *sim.Proc) {
		f.service(sp, sh, cfg.RemoveService, -1)
		err = sh.ns.Rmdir(p, sp.Now())
		if err == nil {
			sh.wafl.LogMetadata(sp, cfg.MetaLogBytes)
			f.replicate(sp, sh, cfg.RemoveService, func(ns *namespace.Namespace, now time.Duration) {
				ns.Rmdir(p, now)
			})
		}
	})
	if err == nil {
		st := c.st()
		st.attrs.Invalidate(p)
		st.dentries.Invalidate(p)
	}
	return err
}

// Unlink removes a file at the shard owning its parent directory.
func (c *client) Unlink(p string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	sh := f.ownerOf(p)
	var err error
	f.conn(c.node, sh).Call(c.p, 150, 140, func(sp *sim.Proc) {
		if dir, lerr := sh.ns.Lookup(fs.ParentDir(p)); lerr == nil {
			lock := sh.dirLock(f.k, dir.Ino)
			lock.Lock(sp)
			defer lock.Unlock()
			f.service(sp, sh, cfg.RemoveService, dir.NumChildren())
		} else {
			f.service(sp, sh, cfg.RemoveService, -1)
		}
		err = sh.ns.Unlink(p, sp.Now())
		if err == nil {
			sh.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	if err == nil {
		st := c.st()
		st.attrs.Invalidate(p)
		st.dentries.Invalidate(p)
	}
	return err
}

// Rename is atomic on one shard when both parents are served there.
// When they are not, the file migrates: validate at the source shard,
// one interconnect hop to insert at the destination, then the removal
// at the source — the cross-shard cost E18 measures. Directory renames
// do not migrate: under hash placement every descendant's partition key
// embeds the directory path, so renaming a directory would re-home its
// files and invalidate its replicas — it returns EXDEV like any
// multi-device rename (§2.6.3), as does any rename whose source is not
// a regular file crossing a shard boundary. Under subtree placement a
// directory rename inside one subtree stays local and is allowed.
func (c *client) Rename(oldPath, newPath string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(oldPath); err != nil {
		return err
	}
	if err := c.resolveParents(newPath); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(oldPath))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	src := f.ownerOf(oldPath)
	dst := f.ownerOf(newPath)
	var err error
	if src == dst {
		f.conn(c.node, src).Call(c.p, 150, 140, func(sp *sim.Proc) {
			if dir, lerr := src.ns.Lookup(fs.ParentDir(oldPath)); lerr == nil {
				lock := src.dirLock(f.k, dir.Ino)
				lock.Lock(sp)
				defer lock.Unlock()
				f.service(sp, src, cfg.RenameService, dir.NumChildren())
			} else {
				f.service(sp, src, cfg.RenameService, -1)
			}
			if f.cfg.Placement == PlaceHashDir && len(f.shards) > 1 {
				// Renaming a directory would strand its hashed files
				// and stale the replicated tree on the other shards.
				var a fs.Attr
				a, err = src.ns.Stat(oldPath)
				if err != nil {
					return
				}
				if a.Type == fs.TypeDirectory {
					err = fs.NewError("rename", newPath, fs.EXDEV)
					return
				}
			}
			err = src.ns.Rename(oldPath, newPath, sp.Now())
			if err == nil {
				src.wafl.LogMetadata(sp, cfg.MetaLogBytes)
			}
		})
	} else {
		f.conn(c.node, src).Call(c.p, 150, 140, func(sp *sim.Proc) {
			f.service(sp, src, cfg.RenameService, -1)
			var a fs.Attr
			a, err = src.ns.Stat(oldPath)
			if err != nil {
				return
			}
			if a.Type != fs.TypeRegular {
				err = fs.NewError("rename", newPath, fs.EXDEV)
				return
			}
			// Phase 1: insert at the destination shard.
			f.hop(sp, dst, func(q *sim.Proc) {
				f.charge(q, dst, cfg.RenameService, -1)
				if derr := dst.ns.Unlink(newPath, q.Now()); derr != nil && !fs.IsNotExist(derr) {
					err = derr
					return
				}
				var ni *namespace.Inode
				ni, err = dst.ns.Create(newPath, a.Mode, q.Now())
				if err == nil {
					if a.Size > 0 {
						dst.ns.SetSize(ni.Ino, a.Size, q.Now())
					}
					dst.wafl.LogMetadata(q, cfg.MetaLogBytes)
				}
			})
			if err != nil {
				return
			}
			// Phase 2: remove at the source shard.
			f.charge(sp, src, cfg.RemoveService, -1)
			err = src.ns.Unlink(oldPath, sp.Now())
			if err == nil {
				src.wafl.LogMetadata(sp, cfg.MetaLogBytes)
			}
		})
	}
	if err == nil {
		st := c.st()
		st.attrs.Invalidate(oldPath)
		st.dentries.Invalidate(oldPath)
		c.cacheEntry(newPath)
	}
	return err
}

// Link creates a hard link when both names are served by one shard;
// cross-shard hard links are not supported (EXDEV), matching systems
// whose inodes are keyed by partition.
func (c *client) Link(oldPath, newPath string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(newPath); err != nil {
		return err
	}
	src := f.ownerOf(oldPath)
	dst := f.ownerOf(newPath)
	if src != dst {
		return fs.NewError("link", newPath, fs.EXDEV)
	}
	imutex := c.node.DirLock(fs.ParentDir(newPath))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	var err error
	f.conn(c.node, dst).Call(c.p, 150, 140, func(sp *sim.Proc) {
		f.service(sp, dst, cfg.CreateService, -1)
		err = dst.ns.Link(oldPath, newPath, sp.Now())
		if err == nil {
			dst.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	if err == nil {
		c.cacheEntry(newPath)
	}
	return err
}

// Symlink stores the target string at the shard owning linkPath.
func (c *client) Symlink(target, linkPath string) error {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(linkPath); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(linkPath))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	sh := f.ownerOf(linkPath)
	var err error
	f.conn(c.node, sh).Call(c.p, 150, 140, func(sp *sim.Proc) {
		f.service(sp, sh, cfg.CreateService, -1)
		_, err = sh.ns.Symlink(target, linkPath, sp.Now())
		if err == nil {
			sh.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	if err == nil {
		c.cacheEntry(linkPath)
	}
	return err
}

// Stat serves from the attribute cache when fresh, else issues GETATTR
// to the owning shard.
func (c *client) Stat(p string) (fs.Attr, error) {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	st := c.st()
	if a, ok := st.attrs.Get(p); ok {
		return a, nil
	}
	if err := c.resolveParents(p); err != nil {
		return fs.Attr{}, err
	}
	sh := f.ownerOf(p)
	var a fs.Attr
	var err error
	f.conn(c.node, sh).Call(c.p, 120, 140, func(sp *sim.Proc) {
		f.service(sp, sh, cfg.GetattrService, -1)
		a, err = sh.ns.Stat(p)
	})
	if err != nil {
		return fs.Attr{}, err
	}
	st.attrs.Put(p, a)
	st.dentries.PutPositive(p, a.Ino)
	return a, nil
}

// Open resolves the path (dentry cache, else LOOKUP at the owner) and
// returns a handle bound to the owning shard.
func (c *client) Open(p string) (fs.Handle, error) {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if err := c.resolveParents(p); err != nil {
		return 0, err
	}
	sh := f.ownerOf(p)
	st := c.st()
	ino, neg, ok := st.dentries.Lookup(p)
	if !ok {
		var err error
		f.conn(c.node, sh).Call(c.p, 120, 140, func(sp *sim.Proc) {
			f.service(sp, sh, cfg.LookupService, -1)
			var a fs.Attr
			a, err = sh.ns.Stat(p)
			if err == nil {
				ino = a.Ino
				st.attrs.Put(p, a)
				st.dentries.PutPositive(p, a.Ino)
			} else {
				st.dentries.PutNegative(p)
			}
		})
		if err != nil {
			return 0, err
		}
	} else if neg {
		return 0, fs.NewError("open", p, fs.ENOENT)
	}
	node := sh.ns.Get(ino)
	if node == nil {
		st.dentries.Invalidate(p)
		return 0, fs.NewError("open", p, fs.ESTALE)
	}
	c.nextFH++
	h := c.nextFH
	c.handles[h] = &openFile{path: p, sh: sh, ino: ino, size: node.Size}
	return h, nil
}

// Close flushes dirty data (close-to-open consistency).
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	if of.dirty {
		c.flush(of)
	}
	return nil
}

// Write buffers n bytes client-side until Close or Fsync.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	of.written += n
	of.dirty = true
	return nil
}

// Fsync forces dirty data to the owning shard.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	if of.dirty {
		c.flush(of)
	}
	return nil
}

func (c *client) flush(of *openFile) {
	f := c.fsys
	cfg := c.cfg()
	newSize := of.size + of.written
	f.conn(c.node, of.sh).Call(c.p, 120+of.written, 140, func(sp *sim.Proc) {
		t := time.Duration(float64(cfg.WriteServicePerKB) * float64(of.written) / 1024)
		f.service(sp, of.sh, t, -1)
		of.sh.ns.SetSize(of.ino, newSize, sp.Now())
		of.sh.wafl.LogMetadata(sp, cfg.MetaLogBytes+of.written)
	})
	of.size = newSize
	of.written = 0
	of.dirty = false
	if a, err := of.sh.ns.Stat(of.path); err == nil {
		c.st().attrs.Put(of.path, a)
	}
}

// readdirCost returns the service time of listing n entries: one
// ReaddirService per 512-entry page plus the per-entry cost, the same
// paging model as the NFS READDIR path.
func readdirCost(cfg Config, n int) time.Duration {
	pages := (n + 511) / 512
	if pages < 1 {
		pages = 1
	}
	return time.Duration(pages)*cfg.ReaddirService +
		time.Duration(n)*cfg.ReaddirPerEntry
}

// ReadDir lists a directory from the shard holding its files. Under
// subtree placement the root spans every shard, so a root listing
// visits the peers over the interconnect and merges their top-level
// entries — the namespace-aggregation view of §4.7 at MDS granularity.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	f := c.fsys
	cfg := c.cfg()
	c.node.Syscall(c.p)
	sh := f.contentOf(p)
	if sh == nil {
		home := f.shards[c.node.Index%len(f.shards)]
		var ents []fs.DirEntry
		var err error
		f.conn(c.node, home).Call(c.p, 130, 260, func(sp *sim.Proc) {
			ents, err = home.ns.ReadDir(p, sp.Now())
			if err != nil {
				f.service(sp, home, cfg.ReaddirService, -1)
				return
			}
			f.service(sp, home, readdirCost(cfg, len(ents)), -1)
			for _, peer := range f.shards {
				if peer == home {
					continue
				}
				peer := peer
				f.hop(sp, peer, func(q *sim.Proc) {
					more, merr := peer.ns.ReadDir(p, q.Now())
					if merr != nil {
						return
					}
					f.charge(q, peer, readdirCost(cfg, len(more)), -1)
					ents = append(ents, more...)
				})
			}
		})
		return ents, err
	}
	var ents []fs.DirEntry
	var err error
	f.conn(c.node, sh).Call(c.p, 130, 260, func(sp *sim.Proc) {
		ents, err = sh.ns.ReadDir(p, sp.Now())
		if err != nil {
			f.service(sp, sh, cfg.ReaddirService, -1)
			return
		}
		f.service(sp, sh, readdirCost(cfg, len(ents)), -1)
	})
	return ents, err
}

// DropCaches clears the node's attribute and dentry caches.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
	st := c.st()
	st.attrs.Clear()
	st.dentries.Clear()
}
