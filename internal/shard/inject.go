package shard

// Aggregate-arrival injection (E31–E33): analytically-modeled
// background load (internal/agg) enters the sharded MDS as batched
// virtual-time demand instead of per-client processes. The mechanism —
// daemon injector lanes per server, open-loop shedding, Acquire/Sleep/
// Release holds on the client-facing pool — lives in the shared service
// runtime (internal/service); this file wires it to the sharded MDS:
// ShardThreads lanes per shard on the shard's own kernel domain, priced
// with the same base service times real RPCs pay, scaled by the WAFL
// consistency-point factor.
//
// Determinism: lanes touch only their own shard's pool and the atomic
// FS counters, and each (shard, lane) draws from a private source
// stream in strict tick order, so runs are byte-identical at any
// Domains/worker count (domain_test.go's aggregate case pins this).

import (
	"time"

	"dmetabench/internal/service"
	"dmetabench/internal/sim"
)

// AggregateDemand is one tick's background arrivals for one injector
// lane, by operation class. The classes map onto the priced service
// kinds of the cost model (Config.GetattrService etc.).
type AggregateDemand = service.Demand

// AttachAggregate starts the background injector: ShardThreads daemon
// lanes per shard, each calling src(shard, lane, tick) once per tick in
// strictly increasing tick order and occupying one server of the
// shard's pool for the priced duration. Call before the kernel runs;
// the lanes are daemons, so they never keep a finished simulation
// alive. src runs on the shard's kernel domain: with Domains > 1 it is
// called concurrently for shards in different domains, so per-(shard,
// lane) source state must not be shared across shards (internal/agg's
// replicated-stream design).
func (f *FS) AttachAggregate(tick time.Duration, src func(shard, lane, tick int) AggregateDemand) {
	service.AttachAggregate(service.AggregateConfig{
		Servers: len(f.shards),
		Lanes:   f.cfg.ShardThreads,
		Tick:    tick,
		Kernel:  f.kFor,
		Pool:    func(i int) *sim.Resource { return f.shards[i].srv.Threads },
		Source:  src,
		Price:   func(i int, d AggregateDemand) time.Duration { return f.priceAggregate(f.shards[i], d) },
		Ops:     &f.AggOps,
		Shed:    &f.AggShedOps,
		Busy:    &f.AggBusy,
	})
}

// AggCounts returns the injected / shed operation counts and the
// cumulative injected service time. Unlike reading the FS fields
// directly, it is safe mid-run from any domain (the stage master
// samples it every interval while lanes in other domains advance).
func (f *FS) AggCounts() (ops, shed int64, busy time.Duration) {
	return loadI64(&f.AggOps), loadI64(&f.AggShedOps),
		time.Duration(loadI64(&f.AggBusy))
}

// priceAggregate converts one demand batch into service time: the base
// per-class costs of the config, scaled by the shard's current WAFL
// service factor (sampled once per batch) so background load slows
// through consistency points exactly as foreground RPCs do. Per-entry
// directory-index and backend factors are deliberately not applied —
// the analytic stream has no concrete directories — which prices the
// background conservatively.
func (f *FS) priceAggregate(sh *shardSrv, d AggregateDemand) time.Duration {
	base := f.priceTable().Price(d)
	if base <= 0 {
		return 0
	}
	return time.Duration(float64(base) * sh.wafl.ServiceFactor())
}

// priceTable exposes the config's base per-class service times in the
// shared runtime's form.
func (f *FS) priceTable() service.PriceTable {
	return service.PriceTable{
		Getattr: f.cfg.GetattrService,
		Lookup:  f.cfg.LookupService,
		Readdir: f.cfg.ReaddirService,
		Create:  f.cfg.CreateService,
	}
}

// CapacityStats is a point-in-time census of the state that grows with
// scale: server-side lease tables and journals, split bookkeeping, and
// the per-node client caches. E33 reads it after a run to estimate
// memory pressure; call it only when the simulation is quiescent (after
// Run), because it walks state owned by every domain.
type CapacityStats struct {
	// LeaseEntries counts read-lease grants across every slice's table;
	// Delegations the directory write delegations outstanding.
	LeaseEntries int
	Delegations  int
	// SplitDirs counts directories with split bookkeeping server-side.
	SplitDirs int
	// JournalEntries sums the dirty journal entries across shards.
	JournalEntries int
	// Nodes counts client nodes with cache state; the Client* fields
	// sum those nodes' attribute/dentry/lease/split-bitmap entries.
	Nodes           int
	ClientAttrs     int
	ClientDentries  int
	ClientLeases    int
	ClientSplitDirs int
}

// Entries sums every counted entry, server- and client-side.
func (c CapacityStats) Entries() int {
	return c.LeaseEntries + c.Delegations + c.SplitDirs + c.JournalEntries +
		c.ClientAttrs + c.ClientDentries + c.ClientLeases + c.ClientSplitDirs
}

// CapacityStats reports the current capacity census.
func (f *FS) CapacityStats() CapacityStats {
	var st CapacityStats
	for _, sl := range f.leases {
		for _, grants := range sl.read {
			st.LeaseEntries += len(grants)
		}
		st.Delegations += len(sl.deleg)
	}
	st.SplitDirs = len(f.splitDirs)
	for _, sh := range f.shards {
		st.JournalEntries += len(sh.journal)
	}
	st.Nodes = len(f.nodes)
	for _, ns := range f.nodes {
		if ns.attrs != nil {
			st.ClientAttrs += ns.attrs.Len()
		}
		if ns.dentries != nil {
			st.ClientDentries += ns.dentries.Len()
		}
		if ns.leases != nil {
			st.ClientLeases += ns.leases.Len()
		}
		if ns.splits != nil {
			st.ClientSplitDirs += ns.splits.Len()
		}
	}
	return st
}
