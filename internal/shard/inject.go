package shard

// Aggregate-arrival injection (E31–E33): analytically-modeled
// background load (internal/agg) enters the sharded MDS as batched
// virtual-time demand instead of per-client processes. Per shard,
// ShardThreads injector lanes run as daemons on the shard's own kernel
// domain; each tick every lane draws its slice of the shard's arrival
// batch, prices it with the same base service times real RPCs pay
// (scaled by the WAFL consistency-point factor), then occupies one
// server of the shard's client-facing thread pool for that long. The
// foreground clients riding on top queue FIFO behind the injected
// holds, so they observe genuine contention — queueing delay, diurnal
// swell, flash-crowd saturation — from a load that costs no per-client
// state.
//
// Overload is open-loop: a lane that cannot finish a tick's hold before
// later ticks begin shedding the ticks it slept through (AggShedOps).
// The pool therefore saturates at 100% utilization instead of building
// an unbounded virtual queue, which is the admission-control behavior a
// real front end would enforce.
//
// Determinism: lanes touch only their own shard's pool and the atomic
// FS counters, and each (shard, lane) draws from a private source
// stream in strict tick order, so runs are byte-identical at any
// Domains/worker count (domain_test.go's aggregate case pins this).

import (
	"strconv"
	"time"

	"dmetabench/internal/sim"
)

// AggregateDemand is one tick's background arrivals for one injector
// lane, by operation class. The classes map onto the priced service
// kinds of the cost model (Config.GetattrService etc.).
type AggregateDemand struct {
	Getattr int64
	Lookup  int64
	Readdir int64
	Create  int64
}

// Total sums the classes.
func (d AggregateDemand) Total() int64 { return d.Getattr + d.Lookup + d.Readdir + d.Create }

// AttachAggregate starts the background injector: ShardThreads daemon
// lanes per shard, each calling src(shard, lane, tick) once per tick in
// strictly increasing tick order and occupying one server of the
// shard's pool for the priced duration. Call before the kernel runs;
// the lanes are daemons, so they never keep a finished simulation
// alive. src runs on the shard's kernel domain: with Domains > 1 it is
// called concurrently for shards in different domains, so per-(shard,
// lane) source state must not be shared across shards (internal/agg's
// replicated-stream design).
func (f *FS) AttachAggregate(tick time.Duration, src func(shard, lane, tick int) AggregateDemand) {
	if tick <= 0 {
		tick = time.Second
	}
	lanes := f.cfg.ShardThreads
	if lanes < 1 {
		lanes = 1
	}
	for i := range f.shards {
		sh := f.shards[i]
		k := f.kFor(i)
		for l := 0; l < lanes; l++ {
			lane := l
			name := "agginject:" + strconv.Itoa(i) + ":" + strconv.Itoa(lane)
			k.SpawnDaemon(name, func(p *sim.Proc) {
				f.aggLane(p, sh, lane, tick, src)
			})
		}
	}
}

// aggLane is one injector lane's loop. All per-iteration state lives in
// locals and the hold path is Acquire/Sleep/Release on a preallocated
// resource, so the steady state allocates nothing
// (BenchmarkAggregateInject's alloc guard pins this).
func (f *FS) aggLane(p *sim.Proc, sh *shardSrv, lane int, tick time.Duration, src func(shard, lane, tick int) AggregateDemand) {
	next := 0 // next tick index this lane owes
	for {
		i := int(p.Now() / tick)
		if i < next {
			// Our tick's work is done; park until the next boundary.
			p.Sleep(time.Duration(next)*tick - p.Now())
			i = next
		}
		// Ticks the lane slept through entirely are shed: draw them to
		// keep the source stream index-pure, count them, do not hold.
		for next < i {
			d := src(sh.index, lane, next)
			if n := d.Total(); n > 0 {
				addI64(&f.AggShedOps, n)
			}
			next++
		}
		d := src(sh.index, lane, i)
		next = i + 1
		n := d.Total()
		if n == 0 {
			continue
		}
		cost := f.priceAggregate(sh, d)
		addI64(&f.AggOps, n)
		addI64(&f.AggBusy, int64(cost))
		if cost > 0 {
			sh.srv.Threads.Acquire(p)
			p.Sleep(cost)
			sh.srv.Threads.Release()
		}
	}
}

// AggCounts returns the injected / shed operation counts and the
// cumulative injected service time. Unlike reading the FS fields
// directly, it is safe mid-run from any domain (the stage master
// samples it every interval while lanes in other domains advance).
func (f *FS) AggCounts() (ops, shed int64, busy time.Duration) {
	return loadI64(&f.AggOps), loadI64(&f.AggShedOps),
		time.Duration(loadI64(&f.AggBusy))
}

// priceAggregate converts one demand batch into service time: the base
// per-class costs of the config, scaled by the shard's current WAFL
// service factor (sampled once per batch) so background load slows
// through consistency points exactly as foreground RPCs do. Per-entry
// directory-index and backend factors are deliberately not applied —
// the analytic stream has no concrete directories — which prices the
// background conservatively.
func (f *FS) priceAggregate(sh *shardSrv, d AggregateDemand) time.Duration {
	base := time.Duration(d.Getattr)*f.cfg.GetattrService +
		time.Duration(d.Lookup)*f.cfg.LookupService +
		time.Duration(d.Readdir)*f.cfg.ReaddirService +
		time.Duration(d.Create)*f.cfg.CreateService
	if base <= 0 {
		return 0
	}
	return time.Duration(float64(base) * sh.wafl.ServiceFactor())
}

// CapacityStats is a point-in-time census of the state that grows with
// scale: server-side lease tables and journals, split bookkeeping, and
// the per-node client caches. E33 reads it after a run to estimate
// memory pressure; call it only when the simulation is quiescent (after
// Run), because it walks state owned by every domain.
type CapacityStats struct {
	// LeaseEntries counts read-lease grants across every slice's table;
	// Delegations the directory write delegations outstanding.
	LeaseEntries int
	Delegations  int
	// SplitDirs counts directories with split bookkeeping server-side.
	SplitDirs int
	// JournalEntries sums the dirty journal entries across shards.
	JournalEntries int
	// Nodes counts client nodes with cache state; the Client* fields
	// sum those nodes' attribute/dentry/lease/split-bitmap entries.
	Nodes           int
	ClientAttrs     int
	ClientDentries  int
	ClientLeases    int
	ClientSplitDirs int
}

// Entries sums every counted entry, server- and client-side.
func (c CapacityStats) Entries() int {
	return c.LeaseEntries + c.Delegations + c.SplitDirs + c.JournalEntries +
		c.ClientAttrs + c.ClientDentries + c.ClientLeases + c.ClientSplitDirs
}

// CapacityStats reports the current capacity census.
func (f *FS) CapacityStats() CapacityStats {
	var st CapacityStats
	for _, sl := range f.leases {
		for _, grants := range sl.read {
			st.LeaseEntries += len(grants)
		}
		st.Delegations += len(sl.deleg)
	}
	st.SplitDirs = len(f.splitDirs)
	for _, sh := range f.shards {
		st.JournalEntries += len(sh.journal)
	}
	st.Nodes = len(f.nodes)
	for _, ns := range f.nodes {
		if ns.attrs != nil {
			st.ClientAttrs += ns.attrs.Len()
		}
		if ns.dentries != nil {
			st.ClientDentries += ns.dentries.Len()
		}
		if ns.leases != nil {
			st.ClientLeases += ns.leases.Len()
		}
		if ns.splits != nil {
			st.ClientSplitDirs += ns.splits.Len()
		}
	}
	return st
}
