// Package storage models the persistent-storage side of file servers:
// disks with positioning delays, NVRAM-backed write logging with
// WAFL-style consistency points (§2.7, [HLM02]) and a simpler
// journal-based store (ldiskfs-style) used by the Lustre MDS model.
//
// The consistency-point behaviour matters for the benchmark reproduction:
// Fig. 4.6 of the thesis shows a saturated NFS/WAFL filer settling into a
// sawtooth where throughput collapses periodically while the filer writes
// a consistency point. The model reproduces that shape: metadata
// operations append cheaply to NVRAM until a consistency point is
// triggered (half-full NVRAM or a 10 s timer); during the CP, service is
// slowed by a configurable factor while dirty data drains to disk.
//
// This package is the *device* layer: it prices raw log appends, disk
// I/O and consistency points, and it does not know what a metadata
// operation is. The per-operation storage pricing of the sharded MDS —
// which backend a shard runs on, write amplification, compaction
// stalls, page-depth and lock penalties — lives one level up in
// internal/shard's backend layer (shard/backend.go), which *uses* a
// WAFL instance from this package as its journal device. Changing a
// shard backend never changes this package's behaviour.
package storage

import (
	"time"

	"dmetabench/internal/sim"
)

// Disk models a spindle: every I/O pays a positioning delay plus
// size-proportional transfer, serialized per spindle.
type Disk struct {
	r        *sim.Resource
	seek     time.Duration
	transfer int64 // bytes per second
}

// NewDisk returns a disk array with the given spindle count, average
// positioning time and per-spindle transfer rate.
func NewDisk(k *sim.Kernel, name string, spindles int, seek time.Duration, transfer int64) *Disk {
	return &Disk{r: sim.NewResource(k, "disk:"+name, spindles), seek: seek, transfer: transfer}
}

// IO performs one disk I/O of n bytes.
func (d *Disk) IO(p *sim.Proc, n int64) {
	t := d.seek
	if d.transfer > 0 && n > 0 {
		t += time.Duration(float64(n) / float64(d.transfer) * float64(time.Second))
	}
	d.r.Use(p, t)
}

// WAFLConfig parameterizes a WAFL-style store.
type WAFLConfig struct {
	// NVRAMBytes is the size of one NVRAM half (the log fills one half
	// while the previous half drains in a consistency point).
	NVRAMBytes int64
	// CPInterval forces a consistency point at most this long after the
	// previous one (Data ONTAP uses 10 s).
	CPInterval time.Duration
	// CPSlowdown multiplies service times while a CP is active.
	CPSlowdown float64
	// DrainRate is the rate (bytes/s) at which a CP writes dirty data.
	DrainRate int64
}

// DefaultWAFLConfig mirrors a midrange filer: 512 MB NVRAM halves, 10 s
// CP timer, 2.2x service-time inflation during a CP.
func DefaultWAFLConfig() WAFLConfig {
	return WAFLConfig{
		NVRAMBytes: 512 << 20,
		CPInterval: 10 * time.Second,
		CPSlowdown: 2.2,
		DrainRate:  400 << 20,
	}
}

// WAFL is a write-anywhere store with NVRAM logging and consistency
// points. One WAFL instance backs one simulated filer.
type WAFL struct {
	k   *sim.Kernel
	cfg WAFLConfig

	dirty     int64 // bytes logged since the last CP began
	cpActive  bool
	lastCP    time.Duration
	cpDone    *sim.Cond
	numCPs    int
	snapUntil time.Duration // snapshot jitter window end
	stopped   bool
}

// NewWAFL creates the store and starts its consistency-point process.
func NewWAFL(k *sim.Kernel, name string, cfg WAFLConfig) *WAFL {
	if cfg.CPSlowdown < 1 {
		cfg.CPSlowdown = 1
	}
	w := &WAFL{
		k: k, cfg: cfg,
		cpDone: sim.NewCond(k, "wafl-cpdone:"+name),
	}
	k.SpawnDaemon("wafl-cp:"+name, w.cpLoop)
	return w
}

// cpLoop triggers consistency points on the NVRAM-half-full condition or
// the CP timer, whichever comes first.
func (w *WAFL) cpLoop(p *sim.Proc) {
	for !w.stopped {
		// Wait until the timer expires or a kick (half-full) arrives.
		deadline := w.lastCP + w.cfg.CPInterval
		for w.k.Now() < deadline && w.dirty < w.cfg.NVRAMBytes && !w.stopped {
			remain := deadline - w.k.Now()
			// Sleep in short steps so half-full kicks are honoured
			// promptly without needing interruptible sleeps.
			step := remain
			if step > 100*time.Millisecond {
				step = 100 * time.Millisecond
			}
			p.Sleep(step)
		}
		if w.stopped {
			return
		}
		if w.dirty == 0 {
			w.lastCP = w.k.Now()
			continue
		}
		w.runCP(p)
	}
}

// runCP drains the dirty data at the configured rate.
func (w *WAFL) runCP(p *sim.Proc) {
	w.cpActive = true
	w.numCPs++
	drainable := w.dirty
	w.dirty = 0 // new writes log into the other NVRAM half
	dur := time.Duration(float64(drainable) / float64(w.cfg.DrainRate) * float64(time.Second))
	p.Sleep(dur)
	w.cpActive = false
	w.lastCP = w.k.Now()
	w.cpDone.Broadcast()
}

// LogMetadata appends n bytes of metadata change to the NVRAM log. If the
// incoming half is itself full (back-to-back CP), the caller blocks until
// the active CP finishes.
func (w *WAFL) LogMetadata(p *sim.Proc, n int64) {
	for w.cpActive && w.dirty >= w.cfg.NVRAMBytes {
		w.cpDone.Wait(p)
	}
	w.dirty += n
}

// ServiceFactor returns the current service-time multiplier: >1 while a
// consistency point is running or a snapshot is being created.
func (w *WAFL) ServiceFactor() float64 {
	f := 1.0
	if w.cpActive {
		f = w.cfg.CPSlowdown
	}
	if w.k.Now() < w.snapUntil {
		// Snapshot creation adds erratic overhead (Fig. 4.5): a mild
		// uniform tax plus sporadic long stalls that hit requests — and
		// therefore client processes — unevenly, which is what makes
		// the COV rise "in a much more random manner" than a steady
		// per-node disturbance.
		f *= 1.2
		if w.k.Rand().Float64() < 0.012 {
			f *= 150 + 450*w.k.Rand().Float64()
		}
	}
	return f
}

// CPActive reports whether a consistency point is currently running.
func (w *WAFL) CPActive() bool { return w.cpActive }

// NumCPs returns the number of completed consistency points.
func (w *WAFL) NumCPs() int { return w.numCPs }

// TriggerSnapshots opens a window of duration d during which service
// times are randomly inflated, modelling snapshot creation load (§4.2.3,
// Fig. 4.5).
func (w *WAFL) TriggerSnapshots(d time.Duration) {
	w.snapUntil = w.k.Now() + d
}

// Stop terminates the background CP process after its current wait.
func (w *WAFL) Stop() { w.stopped = true }

// Journal models a journaling local file system (ldiskfs/ext3-style) used
// by metadata servers: metadata updates append to a journal with a group
// commit every CommitInterval; synchronous requests pay the commit wait.
type Journal struct {
	k              *sim.Kernel
	disk           *Disk
	CommitInterval time.Duration
	pending        int64
	commits        int
}

// NewJournal returns a journal flushing to disk every interval.
func NewJournal(k *sim.Kernel, name string, disk *Disk, interval time.Duration) *Journal {
	j := &Journal{k: k, disk: disk, CommitInterval: interval}
	k.SpawnDaemon("journal:"+name, j.commitLoop)
	return j
}

func (j *Journal) commitLoop(p *sim.Proc) {
	for {
		p.Sleep(j.CommitInterval)
		if j.pending > 0 {
			n := j.pending
			j.pending = 0
			j.commits++
			j.disk.IO(p, n)
		}
	}
}

// Log appends n bytes of journal records (asynchronous).
func (j *Journal) Log(n int64) { j.pending += n }

// Commits returns the number of group commits performed.
func (j *Journal) Commits() int { return j.commits }
