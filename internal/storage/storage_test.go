package storage

import (
	"testing"
	"time"

	"dmetabench/internal/sim"
)

func TestDiskIO(t *testing.T) {
	k := sim.New(1)
	d := NewDisk(k, "d", 1, 5*time.Millisecond, 100<<20)
	var elapsed time.Duration
	k.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		d.IO(p, 10<<20) // 10 MB at 100 MB/s = 100ms + 5ms seek
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 105*time.Millisecond {
		t.Fatalf("IO took %v, want 105ms", elapsed)
	}
}

func TestDiskSpindlesSerialize(t *testing.T) {
	k := sim.New(1)
	d := NewDisk(k, "d", 2, time.Millisecond, 0)
	for i := 0; i < 6; i++ {
		k.Spawn("io", func(p *sim.Proc) { d.IO(p, 0) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("6 IOs on 2 spindles took %v, want 3ms", k.Now())
	}
}

func TestWAFLTimerCP(t *testing.T) {
	k := sim.New(1)
	cfg := WAFLConfig{
		NVRAMBytes: 1 << 30,
		CPInterval: 10 * time.Second,
		CPSlowdown: 2.0,
		DrainRate:  100 << 20,
	}
	w := NewWAFL(k, "t", cfg)
	var sawCP bool
	k.Spawn("load", func(p *sim.Proc) {
		for p.Now() < 25*time.Second {
			w.LogMetadata(p, 1<<20)
			if w.CPActive() {
				sawCP = true
				if f := w.ServiceFactor(); f != 2.0 {
					t.Errorf("service factor during CP = %f", f)
				}
			}
			p.Sleep(10 * time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawCP {
		t.Fatal("no consistency point observed in 25s")
	}
	if w.NumCPs() < 2 {
		t.Fatalf("CPs = %d, want >= 2 over 25s with 10s timer", w.NumCPs())
	}
}

func TestWAFLHalfFullCP(t *testing.T) {
	k := sim.New(1)
	cfg := WAFLConfig{
		NVRAMBytes: 10 << 20,  // tiny: forces half-full CPs
		CPInterval: time.Hour, // timer effectively off
		CPSlowdown: 2.0,
		DrainRate:  100 << 20,
	}
	w := NewWAFL(k, "t", cfg)
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			w.LogMetadata(p, 1<<20)
			p.Sleep(time.Millisecond)
		}
		// Give the CP loop time to notice.
		p.Sleep(500 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if w.NumCPs() < 1 {
		t.Fatal("no half-full CP despite 40MB into 10MB NVRAM half")
	}
}

func TestWAFLSnapshotJitter(t *testing.T) {
	k := sim.New(1)
	w := NewWAFL(k, "t", DefaultWAFLConfig())
	var base, during float64
	k.Spawn("probe", func(p *sim.Proc) {
		base = w.ServiceFactor()
		w.TriggerSnapshots(5 * time.Second)
		max := 0.0
		for i := 0; i < 1000; i++ {
			if f := w.ServiceFactor(); f > max {
				max = f
			}
		}
		during = max
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if base != 1.0 {
		t.Fatalf("idle service factor = %f", base)
	}
	if during < 10 {
		t.Fatalf("snapshot window max factor = %f, want occasional large stalls", during)
	}
}

func TestJournalGroupCommit(t *testing.T) {
	k := sim.New(1)
	d := NewDisk(k, "d", 1, time.Millisecond, 100<<20)
	j := NewJournal(k, "j", d, 100*time.Millisecond)
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			j.Log(512)
			p.Sleep(10 * time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 500ms of logging with 100ms commits: ~5 commits, not 50.
	if c := j.Commits(); c < 3 || c > 8 {
		t.Fatalf("commits = %d, want grouped (~5)", c)
	}
}
