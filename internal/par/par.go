// Package par is the bounded worker pool the experiment layer fans its
// independent cells across. A cell is one self-contained unit of
// simulated work — it builds its own sim.Kernel, runs it to completion
// and writes its result into a slot reserved by cell index — so cells
// share no simulation state and the merge order is fixed by declaration,
// never by completion: output is byte-identical at any worker count.
//
// The pool is a single process-wide token bucket (set once via
// SetWorkers, from cmd/experiments -j). Do is safe to nest: when every
// token is taken, a cell simply runs inline on the calling goroutine
// instead of waiting for a token that an enclosing Do may be holding,
// so nested fan-outs (an experiment whose cells are themselves
// core.ParallelRunner plans) cannot deadlock and total concurrency
// stays bounded by the worker count.
package par

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	// tokens is the pool of spare workers beyond the calling goroutine;
	// nil (or closed capacity 0) means serial execution.
	tokens chan struct{}
	n      = 1
)

// SetWorkers sets the process-wide worker count (minimum 1). It is not
// meant to be called concurrently with running cells; cmd/experiments
// and tests call it once up front.
func SetWorkers(workers int) {
	if workers < 1 {
		workers = 1
	}
	mu.Lock()
	defer mu.Unlock()
	n = workers
	if workers > 1 {
		tokens = make(chan struct{}, workers-1)
	} else {
		tokens = nil
	}
}

// Workers returns the configured worker count.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return n
}

// acquire takes a spare-worker token without blocking.
func acquire() bool {
	mu.Lock()
	t := tokens
	mu.Unlock()
	if t == nil {
		return false
	}
	select {
	case t <- struct{}{}:
		return true
	default:
		return false
	}
}

func release() {
	mu.Lock()
	t := tokens
	mu.Unlock()
	<-t
}

// Do runs fn(0) … fn(n-1) across the worker pool and returns when all
// calls have completed. Each index runs exactly once; writes the calls
// make to distinct index-addressed slots are visible to the caller when
// Do returns. With one worker (or one cell) the calls run inline in
// index order — the exact serial semantics every higher worker count
// must reproduce byte-for-byte.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i < n-1 && acquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer release()
				fn(i)
			}(i)
			continue
		}
		// Pool saturated (or last cell): the calling goroutine is a
		// worker too.
		fn(i)
	}
	wg.Wait()
}

// Timing is one cell's measured wall-clock cost.
type Timing struct {
	Label string
	Wall  time.Duration
}

var (
	timingMu sync.Mutex
	timings  []Timing
)

// RecordTiming logs a cell's wall-clock duration for the -cells report.
// Entries arrive in completion order; consumers group and sort by label.
func RecordTiming(label string, d time.Duration) {
	timingMu.Lock()
	timings = append(timings, Timing{Label: label, Wall: d})
	timingMu.Unlock()
}

// DrainTimings returns all recorded cell timings and clears the log.
func DrainTimings() []Timing {
	timingMu.Lock()
	defer timingMu.Unlock()
	out := timings
	timings = nil
	return out
}
