package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// restore resets the pool to serial after a test mutates it.
func restore() { SetWorkers(1) }

func TestDoSerialRunsInOrder(t *testing.T) {
	defer restore()
	SetWorkers(1)
	var order []int
	Do(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order[%d] = %d", i, got)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d cells, want 5", len(order))
	}
}

// TestDoMergeOrderIndependent pins the determinism contract: results
// land in the slot of their cell index no matter which order the cells
// finish in. Later cells are made to finish first (earlier indexes
// sleep longer), so any completion-order assembly would scramble the
// output.
func TestDoMergeOrderIndependent(t *testing.T) {
	defer restore()
	SetWorkers(8)
	const n = 8
	out := make([]int, n)
	var doneOrder [n]int32
	var seq atomic.Int32
	Do(n, func(i int) {
		time.Sleep(time.Duration(n-i) * 10 * time.Millisecond)
		doneOrder[i] = seq.Add(1)
		out[i] = i * i
	})
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i*i)
		}
	}
	// Sanity: the schedule really was adversarial — some later cell
	// completed before an earlier one (guaranteed once >=2 cells run
	// concurrently, since cell 0 sleeps longest).
	if Workers() > 1 && doneOrder[0] == 1 {
		t.Logf("warning: cell 0 still finished first (single-core scheduling); slot merge still verified")
	}
}

func TestDoEveryIndexExactlyOnce(t *testing.T) {
	defer restore()
	SetWorkers(4)
	const n = 100
	var counts [n]int32
	Do(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestDoBoundedConcurrency verifies the pool never runs more cells at
// once than the configured worker count.
func TestDoBoundedConcurrency(t *testing.T) {
	defer restore()
	const workers = 3
	SetWorkers(workers)
	var cur, max atomic.Int32
	Do(20, func(i int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
	})
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent cells, want <= %d", got, workers)
	}
}

// TestDoNestedDoesNotDeadlock exercises the inline-when-saturated rule:
// outer cells fan out inner cells while holding every token. A token
// pool that blocked on acquire would deadlock here.
func TestDoNestedDoesNotDeadlock(t *testing.T) {
	defer restore()
	SetWorkers(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer := make([][]int, 4)
		Do(4, func(i int) {
			inner := make([]int, 6)
			Do(6, func(j int) { inner[j] = i*10 + j })
			outer[i] = inner
		})
		for i := range outer {
			for j, v := range outer[i] {
				if v != i*10+j {
					t.Errorf("outer[%d][%d] = %d", i, j, v)
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Do deadlocked")
	}
}

func TestSetWorkersFloor(t *testing.T) {
	defer restore()
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want 1", Workers())
	}
	SetWorkers(runtime.NumCPU())
	if Workers() != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want %d", Workers(), runtime.NumCPU())
	}
}
