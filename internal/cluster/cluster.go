// Package cluster models the client side of the benchmark environment:
// compute nodes with a fixed number of CPU cores, a priority-aware CPU
// scheduler, and per-node operating system state (client caches live in
// the file system models, keyed by node).
//
// The model captures the two kinds of parallelism the thesis insists a
// metadata benchmark must separate (§3.2.2): intra-node parallelism
// (processes sharing one OS instance, its locks and caches) and
// inter-node parallelism (independent OS instances coordinated only by
// the distributed file system).
package cluster

import (
	"fmt"
	"time"

	"dmetabench/internal/sim"
)

// Node is one simulated compute node / OS instance.
type Node struct {
	Name  string
	Index int
	Cores int

	k   *sim.Kernel
	cpu *sim.Resource

	// SyscallTime is the client-side CPU cost charged per file system
	// system call (VFS entry, argument copying, dentry handling).
	SyscallTime time.Duration

	// dirLocks are the per-node VFS locks held on a parent directory
	// during namespace modifications (i_mutex). They serialize
	// same-directory modifications *within* the node, which is exactly
	// the intra-node semantic difference the thesis probes.
	dirLocks map[string]*sim.Mutex

	// hogs counts active CPU hog processes (disturbance injection).
	hogs int
}

// Kernel returns the simulation kernel the node runs on.
func (n *Node) Kernel() *sim.Kernel { return n.k }

// Exec charges d of CPU time at default priority.
func (n *Node) Exec(p *sim.Proc, d time.Duration) { n.cpu.Use(p, d) }

// ExecNice charges d of CPU time at the given niceness; lower niceness is
// scheduled sooner under contention (§4.4 priority scheduling).
func (n *Node) ExecNice(p *sim.Proc, d time.Duration, nice int) {
	n.cpu.UsePri(p, d, nice)
}

// Syscall charges the fixed per-call CPU overhead.
func (n *Node) Syscall(p *sim.Proc) { n.cpu.Use(p, n.SyscallTime) }

// SyscallNice charges the per-call CPU overhead at a given niceness.
func (n *Node) SyscallNice(p *sim.Proc, nice int) {
	n.cpu.UsePri(p, n.SyscallTime, nice)
}

// DirLock returns the node-local lock guarding modifications of the
// directory identified by key (typically the parent path of the entry
// being created or removed).
func (n *Node) DirLock(key string) *sim.Mutex {
	m, ok := n.dirLocks[key]
	if !ok {
		m = sim.NewMutex(n.k, "imutex:"+n.Name+":"+key)
		n.dirLocks[key] = m
	}
	return m
}

// CPUQueueLen reports the number of processes waiting for a core.
func (n *Node) CPUQueueLen() int { return n.cpu.QueueLen() }

// StartCPUHog spawns count compute-bound processes at niceness nice that
// keep all cores busy from the current virtual time until stop. It models
// the stress(1) disturbance used in §4.2.3 (Fig. 4.4).
func (n *Node) StartCPUHog(count int, nice int, start, duration time.Duration) {
	for i := 0; i < count; i++ {
		n.k.SpawnDaemon(fmt.Sprintf("hog:%s:%d", n.Name, i), func(p *sim.Proc) {
			p.Sleep(start - p.Now())
			n.hogs++
			end := p.Now() + duration
			for p.Now() < end {
				n.cpu.UsePri(p, time.Millisecond, nice)
			}
			n.hogs--
		})
	}
}

// ActiveHogs returns the number of currently running hog processes.
func (n *Node) ActiveHogs() int { return n.hogs }

// Config describes a node pool.
type Config struct {
	Nodes       int
	Cores       int
	SyscallTime time.Duration
}

// DefaultConfig is a pool of dual-quad-core nodes like the LRZ Linux
// cluster measurement nodes (§4.1.2).
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Cores: 8, SyscallTime: 3 * time.Microsecond}
}

// Cluster is a set of nodes driven by one simulation kernel.
type Cluster struct {
	Nodes []*Node
	k     *sim.Kernel
}

// New builds a cluster of identical nodes.
func New(k *sim.Kernel, cfg Config) *Cluster {
	c := &Cluster{k: k}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Name:        fmt.Sprintf("lx64a%03d", i+100),
			Index:       i,
			Cores:       cfg.Cores,
			k:           k,
			cpu:         sim.NewResource(k, fmt.Sprintf("cpu:%d", i), cfg.Cores),
			SyscallTime: cfg.SyscallTime,
			dirLocks:    make(map[string]*sim.Mutex),
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// NewSMP builds a single large SMP node (HLRB II partition style, §4.1.3).
func NewSMP(k *sim.Kernel, cores int) *Cluster {
	cfg := Config{Nodes: 1, Cores: cores, SyscallTime: 3 * time.Microsecond}
	c := New(k, cfg)
	c.Nodes[0].Name = "hlrb2-part01"
	return c
}

// Kernel returns the simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }
