package cluster

import (
	"testing"
	"time"

	"dmetabench/internal/sim"
)

func TestExecConsumesCPU(t *testing.T) {
	k := sim.New(1)
	cl := New(k, Config{Nodes: 1, Cores: 2, SyscallTime: time.Microsecond})
	n := cl.Nodes[0]
	// 4 procs x 10ms on 2 cores = 20ms makespan.
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *sim.Proc) { n.Exec(p, 10*time.Millisecond) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 20*time.Millisecond {
		t.Fatalf("makespan = %v, want 20ms", k.Now())
	}
}

func TestCPUHogWindow(t *testing.T) {
	k := sim.New(2)
	cl := New(k, DefaultConfig(1))
	n := cl.Nodes[0]
	n.StartCPUHog(4, 0, 10*time.Millisecond, 20*time.Millisecond)
	var seen bool
	k.Spawn("watch", func(p *sim.Proc) {
		for p.Now() < 50*time.Millisecond {
			p.Sleep(time.Millisecond)
			if n.ActiveHogs() > 0 {
				seen = true
			}
		}
		if n.ActiveHogs() != 0 {
			t.Error("hogs still active after window")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("hogs never ran")
	}
}

func TestDirLockReuse(t *testing.T) {
	k := sim.New(3)
	cl := New(k, DefaultConfig(1))
	n := cl.Nodes[0]
	a := n.DirLock("/x")
	b := n.DirLock("/x")
	c := n.DirLock("/y")
	if a != b {
		t.Fatal("same key produced different locks")
	}
	if a == c {
		t.Fatal("different keys share a lock")
	}
}

func TestPriorityUnderContention(t *testing.T) {
	k := sim.New(4)
	cl := New(k, Config{Nodes: 1, Cores: 1, SyscallTime: time.Microsecond})
	n := cl.Nodes[0]
	// Saturate the single core with background work at nice 5.
	n.StartCPUHog(2, 5, 0, 50*time.Millisecond)
	var hiOps, loOps int
	k.Spawn("hi", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for p.Now() < 40*time.Millisecond {
			n.ExecNice(p, 100*time.Microsecond, 0)
			hiOps++
		}
	})
	k.Spawn("lo", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for p.Now() < 40*time.Millisecond {
			n.ExecNice(p, 100*time.Microsecond, 10)
			loOps++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if hiOps <= loOps*2 {
		t.Fatalf("hi=%d lo=%d: priority had no effect", hiOps, loOps)
	}
}

func TestNewSMP(t *testing.T) {
	k := sim.New(5)
	cl := NewSMP(k, 512)
	if len(cl.Nodes) != 1 || cl.Nodes[0].Cores != 512 {
		t.Fatalf("smp = %d nodes, %d cores", len(cl.Nodes), cl.Nodes[0].Cores)
	}
}
