package fault

import (
	"testing"
	"time"

	"dmetabench/internal/sim"
)

// record is one observed injection: kind, server and virtual time.
type record struct {
	kind   Kind
	server int
	at     time.Duration
}

// fakeTarget records every injected event with its virtual time.
type fakeTarget struct {
	evs []record
}

func (f *fakeTarget) Crash(p *sim.Proc, i int)   { f.evs = append(f.evs, record{Crash, i, p.Now()}) }
func (f *fakeTarget) Restart(p *sim.Proc, i int) { f.evs = append(f.evs, record{Restart, i, p.Now()}) }

// drive replays pl from a non-daemon anchor process that outlives every
// event (daemon injectors only run while non-daemons are live).
func drive(t *testing.T, pl *Plan, tgt Target, horizon time.Duration) {
	t.Helper()
	k := sim.New(1)
	k.Spawn("anchor", func(p *sim.Proc) {
		pl.Start(p, tgt)
		p.Sleep(horizon)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanReplaysInOrder(t *testing.T) {
	tgt := &fakeTarget{}
	// Deliberately unsorted input: the injector must order by offset.
	pl := &Plan{}
	pl.RestartAt(300*time.Millisecond, 0)
	pl.CrashAt(100*time.Millisecond, 0)
	pl.Outage(150*time.Millisecond, 250*time.Millisecond, 1)
	drive(t, pl, tgt, time.Second)

	want := []record{
		{Crash, 0, 100 * time.Millisecond},
		{Crash, 1, 150 * time.Millisecond},
		{Restart, 1, 250 * time.Millisecond},
		{Restart, 0, 300 * time.Millisecond},
	}
	if len(tgt.evs) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(tgt.evs), len(want))
	}
	for i, ev := range tgt.evs {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestPlanOffsetsRelativeToStart(t *testing.T) {
	tgt := &fakeTarget{}
	pl := (&Plan{}).CrashAt(50*time.Millisecond, 2)
	k := sim.New(1)
	k.Spawn("anchor", func(p *sim.Proc) {
		p.Sleep(200 * time.Millisecond) // plan starts mid-simulation
		pl.Start(p, tgt)
		p.Sleep(time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tgt.evs) != 1 || tgt.evs[0].at != 250*time.Millisecond {
		t.Fatalf("events = %+v, want one crash at 250ms", tgt.evs)
	}
}

func TestPlanTieBreaksByInsertionOrder(t *testing.T) {
	tgt := &fakeTarget{}
	pl := &Plan{}
	pl.CrashAt(100*time.Millisecond, 3)
	pl.CrashAt(100*time.Millisecond, 1)
	drive(t, pl, tgt, time.Second)
	if len(tgt.evs) != 2 || tgt.evs[0].server != 3 || tgt.evs[1].server != 1 {
		t.Fatalf("equal-time events replayed as %+v, want insertion order 3 then 1", tgt.evs)
	}
}

func TestPlanEventBeyondWorkloadNeverFires(t *testing.T) {
	tgt := &fakeTarget{}
	pl := (&Plan{}).CrashAt(10*time.Second, 0)
	drive(t, pl, tgt, time.Second) // anchor exits at 1s
	if len(tgt.evs) != 0 {
		t.Fatalf("event beyond the workload fired: %+v", tgt.evs)
	}
}

func TestValidate(t *testing.T) {
	ok := (&Plan{}).Outage(time.Second, 2*time.Second, 0)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := ((&Plan{}).RestartAt(time.Second, 0)).Validate(); err == nil {
		t.Fatal("restart-before-crash accepted")
	}
	doubleCrash := (&Plan{}).CrashAt(time.Second, 0).CrashAt(2*time.Second, 0)
	if err := doubleCrash.Validate(); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := ((&Plan{}).CrashAt(-time.Second, 0)).Validate(); err == nil {
		t.Fatal("negative offset accepted")
	}
}
