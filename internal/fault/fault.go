// Package fault implements deterministic failure injection for the
// simulator: a Plan schedules crash and restart events on simulated
// servers at fixed virtual-time offsets, and Start replays the plan
// against any Target from a daemon timer process.
//
// The thesis measures metadata performance only while every server stays
// healthy, but its COV-based time-interval methodology (§3.2.5, §4.2) is
// exactly the instrument that exposes what a failure does to throughput
// over time — a dip, a stall, a recovery ramp. Related work makes the
// pairing explicit: StoreTorrent analyzes fault tolerance and metadata
// performance together, and HopsFS derives its availability from
// replicated metadata with failover. Experiments E19–E21 drive this
// package against the replicated sharded MDS model (internal/shard).
//
// Plans are deterministic by construction: events fire at virtual times
// relative to Start, ties resolve in insertion order, and the injector is
// an ordinary sim daemon — the same seed yields the same failure history,
// byte for byte (covered by TestRunnerDeterministic's shard-failover
// case).
package fault

import (
	"fmt"
	"sort"
	"time"

	"dmetabench/internal/sim"
)

// Kind is the type of one injected event.
type Kind int

// Event kinds.
const (
	// Crash marks a server failed: its requests time out until restart
	// (or until a backup takes over, when the target replicates).
	Crash Kind = iota
	// Restart brings a crashed server back through recovery.
	Restart
)

func (k Kind) String() string {
	if k == Restart {
		return "restart"
	}
	return "crash"
}

// Event is one scheduled failure-injection action.
type Event struct {
	// At is the virtual-time offset from Plan.Start at which the event
	// fires.
	At time.Duration
	// Kind selects crash or restart.
	Kind Kind
	// Server is the target server index (a shard index for the sharded
	// MDS model).
	Server int
}

// Target is what a plan drives: any subsystem whose servers can crash at
// and return to service. internal/shard's FS implements it.
type Target interface {
	// Crash takes server i down at the current virtual time.
	Crash(p *sim.Proc, i int)
	// Restart begins server i's recovery at the current virtual time.
	Restart(p *sim.Proc, i int)
}

// Plan is an ordered schedule of failure events. The zero value is an
// empty plan; add events with CrashAt/RestartAt or fill Events directly.
type Plan struct {
	Events []Event
}

// CrashAt appends a crash of server i at offset at.
func (pl *Plan) CrashAt(at time.Duration, i int) *Plan {
	pl.Events = append(pl.Events, Event{At: at, Kind: Crash, Server: i})
	return pl
}

// RestartAt appends a restart of server i at offset at.
func (pl *Plan) RestartAt(at time.Duration, i int) *Plan {
	pl.Events = append(pl.Events, Event{At: at, Kind: Restart, Server: i})
	return pl
}

// Outage appends a crash at from and the matching restart at to.
func (pl *Plan) Outage(from, to time.Duration, i int) *Plan {
	return pl.CrashAt(from, i).RestartAt(to, i)
}

// Validate reports a plan whose events cannot replay sensibly: a
// negative offset, or a restart of a server that the plan never crashed
// before that offset.
func (pl *Plan) Validate() error {
	up := map[int]bool{}
	for _, ev := range pl.sorted() {
		if ev.At < 0 {
			return fmt.Errorf("fault: negative event offset %v", ev.At)
		}
		switch ev.Kind {
		case Crash:
			if up[ev.Server] {
				return fmt.Errorf("fault: server %d crashed twice without a restart", ev.Server)
			}
			up[ev.Server] = true
		case Restart:
			if !up[ev.Server] {
				return fmt.Errorf("fault: restart of server %d before any crash", ev.Server)
			}
			up[ev.Server] = false
		default:
			return fmt.Errorf("fault: unknown event kind %d", ev.Kind)
		}
	}
	return nil
}

// sorted returns the events ordered by (At, insertion order) without
// mutating the plan.
func (pl *Plan) sorted() []Event {
	evs := make([]Event, len(pl.Events))
	copy(evs, pl.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Start spawns a daemon injector that replays the plan against t with
// event offsets measured from the current virtual time, and returns the
// injector process. Experiments install it from the runner's bench-start
// hook so offsets align with the measurement window, the same idiom as
// the CPU-hog and snapshot disturbances of §4.2.3.
func (pl *Plan) Start(p *sim.Proc, t Target) *sim.Proc {
	evs := pl.sorted()
	return p.Kernel().AfterFunc("fault-injector", 0, func(q *sim.Proc) {
		start := q.Now()
		for _, ev := range evs {
			if d := start + ev.At - q.Now(); d > 0 {
				q.Sleep(d)
			}
			switch ev.Kind {
			case Crash:
				t.Crash(q, ev.Server)
			case Restart:
				t.Restart(q, ev.Server)
			}
		}
	})
}
