// Package pvfs models a parallel file system in the style of PVFS2
// (§2.5.3): multiple combined metadata/data servers with the namespace
// distributed across them by handle hashing, fully synchronous operations
// and **no client-side caching at all** — the design §2.7.2 credits with
// trivial crash recovery ("there is no cached state on the client") and
// §2.6.1 with its nonconflicting-write semantics.
//
// The practical consequences the benchmark exposes: StatFiles and
// StatNocacheFiles perform identically (nothing is cached, so there is
// nothing to drop), every operation pays a network round trip, and
// metadata throughput scales with the number of servers because
// directories hash across them.
package pvfs

import (
	"fmt"
	"hash/fnv"
	"path"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
)

// Config holds the tunables of the PVFS2 model.
type Config struct {
	Servers       int
	ServerThreads int
	OneWayLatency time.Duration

	CreateService     time.Duration
	GetattrService    time.Duration
	RemoveService     time.Duration
	MkdirService      time.Duration
	RenameService     time.Duration
	ReaddirService    time.Duration
	WriteServicePerKB time.Duration
	DirIndex          namespace.DirIndex
}

// DefaultConfig approximates a small PVFS2 installation on gigabit
// ethernet: cheap servers, everything synchronous.
func DefaultConfig() Config {
	return Config{
		Servers:           4,
		ServerThreads:     2,
		OneWayLatency:     250 * time.Microsecond,
		CreateService:     300 * time.Microsecond,
		GetattrService:    80 * time.Microsecond,
		RemoveService:     280 * time.Microsecond,
		MkdirService:      320 * time.Microsecond,
		RenameService:     360 * time.Microsecond,
		ReaddirService:    150 * time.Microsecond,
		WriteServicePerKB: 35 * time.Microsecond,
		DirIndex:          namespace.IndexBTree,
	}
}

// FS is one PVFS2 file system.
type FS struct {
	k   *sim.Kernel
	cfg Config

	servers  []*simnet.Server
	ns       *namespace.Namespace
	conns    map[connKey]*simnet.Conn
	dirLocks map[fs.Ino]*sim.Mutex
	rpcs     int64
}

type connKey struct {
	node *cluster.Node
	srv  int
}

// New creates a PVFS2 file system with cfg.Servers servers.
func New(k *sim.Kernel, name string, cfg Config) *FS {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	f := &FS{
		k:        k,
		cfg:      cfg,
		ns:       namespace.New(),
		conns:    make(map[connKey]*simnet.Conn),
		dirLocks: make(map[fs.Ino]*sim.Mutex),
	}
	for i := 0; i < cfg.Servers; i++ {
		f.servers = append(f.servers,
			simnet.NewServer(k, fmt.Sprintf("pvfs%d:%s", i, name), cfg.ServerThreads))
	}
	return f
}

// Name identifies the model.
func (f *FS) Name() string { return "pvfs" }

// Namespace exposes the (logically distributed) namespace.
func (f *FS) Namespace() *namespace.Namespace { return f.ns }

// RPCCount returns the number of server RPCs.
func (f *FS) RPCCount() int64 { return f.rpcs }

// serverFor hashes a path to its owning server (handle distribution).
func (f *FS) serverFor(p string) int {
	h := fnv.New32a()
	h.Write([]byte(path.Clean(p)))
	return int(h.Sum32()) % len(f.servers)
}

func (f *FS) conn(n *cluster.Node, srv int) *simnet.Conn {
	key := connKey{n, srv}
	c, ok := f.conns[key]
	if !ok {
		c = simnet.NewConn(f.k, f.servers[srv], f.cfg.OneWayLatency, 0)
		f.conns[key] = c
	}
	return c
}

func (f *FS) dirLock(ino fs.Ino) *sim.Mutex {
	m, ok := f.dirLocks[ino]
	if !ok {
		m = sim.NewMutex(f.k, fmt.Sprintf("pvfsdir:%d", ino))
		f.dirLocks[ino] = m
	}
	return m
}

// NewClient binds a client for one process on one node. PVFS2 clients
// hold no state beyond open handles.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]string)}
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]string
}

// dirOp runs a namespace-changing operation at the server owning the
// parent directory, with directory-size scaled service time.
func (c *client) dirOp(p string, svc time.Duration, apply func(sp *sim.Proc) error) error {
	f := c.fsys
	c.node.Syscall(c.p)
	srv := f.serverFor(fs.ParentDir(p))
	var err error
	f.conn(c.node, srv).Call(c.p, 180, 150, func(sp *sim.Proc) {
		if dir, lerr := f.ns.Lookup(fs.ParentDir(p)); lerr == nil {
			lock := f.dirLock(dir.Ino)
			lock.Lock(sp)
			defer lock.Unlock()
			sp.Sleep(time.Duration(float64(svc) * f.cfg.DirIndex.EntryCost(dir.NumChildren())))
		} else {
			sp.Sleep(svc)
		}
		f.rpcs++
		err = apply(sp)
	})
	return err
}

// Create makes a file: a directory-server operation plus a metadata
// object create at the file's own server (two round trips, like the
// dirent + metafile split in PVFS2).
func (c *client) Create(p string) error {
	err := c.dirOp(p, c.fsys.cfg.CreateService, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Create(p, 0o644, sp.Now())
		return e
	})
	if err != nil {
		return err
	}
	srv := c.fsys.serverFor(p)
	c.fsys.conn(c.node, srv).Call(c.p, 150, 150, func(sp *sim.Proc) {
		sp.Sleep(c.fsys.cfg.CreateService / 2)
		c.fsys.rpcs++
	})
	return nil
}

// Open verifies existence at the server (no client cache to consult).
func (c *client) Open(p string) (fs.Handle, error) {
	if _, err := c.Stat(p); err != nil {
		return 0, err
	}
	c.nextFH++
	c.handles[c.nextFH] = p
	return c.nextFH, nil
}

// Close discards the handle (no cached state to flush).
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	return nil
}

// Write is synchronous to the file's server: no client caching, so the
// data (and size update) are on the server when the call returns.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	p, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	f := c.fsys
	srv := f.serverFor(p)
	var err error
	f.conn(c.node, srv).Call(c.p, 150+n, 150, func(sp *sim.Proc) {
		sp.Sleep(time.Duration(float64(f.cfg.WriteServicePerKB) * float64(n) / 1024))
		f.rpcs++
		node, lerr := f.ns.Lookup(p)
		if lerr != nil {
			err = lerr
			return
		}
		err = f.ns.SetSize(node.Ino, node.Size+n, sp.Now())
	})
	return err
}

// Fsync is a no-op: every write was already synchronous.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	return nil
}

// Mkdir creates a directory at the parent's server.
func (c *client) Mkdir(p string) error {
	return c.dirOp(p, c.fsys.cfg.MkdirService, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Mkdir(p, 0o755, sp.Now())
		return e
	})
}

// Rmdir removes a directory.
func (c *client) Rmdir(p string) error {
	return c.dirOp(p, c.fsys.cfg.RemoveService, func(sp *sim.Proc) error {
		return c.fsys.ns.Rmdir(p, sp.Now())
	})
}

// Unlink removes a file.
func (c *client) Unlink(p string) error {
	return c.dirOp(p, c.fsys.cfg.RemoveService, func(sp *sim.Proc) error {
		return c.fsys.ns.Unlink(p, sp.Now())
	})
}

// Rename moves an entry (atomic at the directory server; the thesis
// notes PVFS2 serializes this through the owning server).
func (c *client) Rename(oldPath, newPath string) error {
	return c.dirOp(oldPath, c.fsys.cfg.RenameService, func(sp *sim.Proc) error {
		return c.fsys.ns.Rename(oldPath, newPath, sp.Now())
	})
}

// Link creates a hardlink.
func (c *client) Link(oldPath, newPath string) error {
	return c.dirOp(newPath, c.fsys.cfg.CreateService, func(sp *sim.Proc) error {
		return c.fsys.ns.Link(oldPath, newPath, sp.Now())
	})
}

// Symlink creates a symbolic link.
func (c *client) Symlink(target, linkPath string) error {
	return c.dirOp(linkPath, c.fsys.cfg.CreateService, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Symlink(target, linkPath, sp.Now())
		return e
	})
}

// Stat always asks the file's server: PVFS2 clients cache nothing.
func (c *client) Stat(p string) (fs.Attr, error) {
	f := c.fsys
	c.node.Syscall(c.p)
	srv := f.serverFor(p)
	var a fs.Attr
	var err error
	f.conn(c.node, srv).Call(c.p, 150, 170, func(sp *sim.Proc) {
		sp.Sleep(f.cfg.GetattrService)
		f.rpcs++
		a, err = f.ns.Stat(p)
	})
	return a, err
}

// ReadDir lists a directory at its server.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	f := c.fsys
	c.node.Syscall(c.p)
	srv := f.serverFor(p)
	var ents []fs.DirEntry
	var err error
	f.conn(c.node, srv).Call(c.p, 150, 300, func(sp *sim.Proc) {
		ents, err = f.ns.ReadDir(p, sp.Now())
		sp.Sleep(f.cfg.ReaddirService + time.Duration(len(ents))*time.Microsecond)
		f.rpcs++
	})
	return ents, err
}

// DropCaches is trivially a no-op: there is no client cache.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
}
