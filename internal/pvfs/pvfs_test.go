package pvfs

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

func env(t *testing.T, nodes int, cfg Config) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(nodes))
	return k, cl, New(k, "t", cfg)
}

func TestBasicOps(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Mkdir("/d"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Create("/d/f"); err != nil {
			t.Errorf("create: %v", err)
		}
		if err := c.Create("/d/f"); fs.CodeOf(err) != fs.EEXIST {
			t.Errorf("dup: %v", err)
		}
		h, err := c.Open("/d/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := c.Write(h, 2048); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := c.Close(h); err != nil {
			t.Errorf("close: %v", err)
		}
		a, err := c.Stat("/d/f")
		if err != nil || a.Size != 2048 {
			t.Errorf("stat: %v %+v", err, a)
		}
		if err := c.Rename("/d/f", "/d/g"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if err := c.Symlink("/d/g", "/d/s"); err != nil {
			t.Errorf("symlink: %v", err)
		}
		c.Unlink("/d/s")
		c.Unlink("/d/g")
		if err := c.Rmdir("/d"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	f.Namespace().MustBeConsistent()
}

func TestNoClientCaching(t *testing.T) {
	// The defining PVFS2 property: repeated stats always hit the server,
	// and DropCaches changes nothing.
	k, cl, f := env(t, 1, DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Create("/f")
		before := f.RPCCount()
		for i := 0; i < 10; i++ {
			if _, err := c.Stat("/f"); err != nil {
				t.Fatalf("stat: %v", err)
			}
		}
		if got := f.RPCCount() - before; got != 10 {
			t.Errorf("10 stats issued %d RPCs, want 10 (no caching)", got)
		}
		c.DropCaches()
		mid := f.RPCCount()
		c.Stat("/f")
		if f.RPCCount() != mid+1 {
			t.Error("post-drop stat behaved differently — there is no cache to drop")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteIsSynchronous(t *testing.T) {
	k, cl, f := env(t, 2, DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		w := f.NewClient(cl.Nodes[0], p)
		r := f.NewClient(cl.Nodes[1], p)
		w.Create("/f")
		h, _ := w.Open("/f")
		if err := w.Write(h, 4096); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Visible on another node immediately — before close. This is
		// the nonconflicting-write semantics of §2.6.1.
		a, err := r.Stat("/f")
		if err != nil || a.Size != 4096 {
			t.Errorf("remote stat mid-write: %v %+v", err, a)
		}
		w.Close(h)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoriesSpreadAcrossServers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 4
	k, cl, f := env(t, 1, cfg)
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		seen := map[int]bool{}
		for i := 0; i < 32; i++ {
			dir := fmt.Sprintf("/dir%d", i)
			if err := c.Mkdir(dir); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
			seen[f.serverFor(dir)] = true
		}
		if len(seen) < 3 {
			t.Errorf("32 directories landed on only %d of 4 servers", len(seen))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScalesWithServers(t *testing.T) {
	// Creates from enough clients to saturate a single server scale with
	// the server count (the namespace hashes across servers).
	const clients = 8
	elapsed := func(servers int) time.Duration {
		k := sim.New(5)
		cl := cluster.New(k, cluster.DefaultConfig(clients))
		cfg := DefaultConfig()
		cfg.Servers = servers
		cfg.ServerThreads = 1
		f := New(k, "t", cfg)
		k.Spawn("setup", func(p *sim.Proc) {
			c := f.NewClient(cl.Nodes[0], p)
			for i := 0; i < clients; i++ {
				c.Mkdir(fmt.Sprintf("/d%d", i))
			}
			for i := 0; i < clients; i++ {
				i := i
				p.Spawn("w", func(q *sim.Proc) {
					qc := f.NewClient(cl.Nodes[i], q)
					for j := 0; j < 40; j++ {
						qc.Create(fmt.Sprintf("/d%d/f%d", i, j))
					}
				})
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	one, four := elapsed(1), elapsed(4)
	if float64(one) < 1.5*float64(four) {
		t.Fatalf("1 server %v vs 4 servers %v: no scaling", one, four)
	}
}
