package clientcache

import (
	"testing"
	"time"

	"dmetabench/internal/fs"
)

// leaseEnv builds a lease cache over a settable clock and a mutable
// per-authority epoch table.
func leaseEnv(check bool) (*LeaseCache, *fakeClock, []uint64) {
	clk := &fakeClock{}
	epochs := make([]uint64, 4)
	var epochOf func(int) uint64
	if check {
		epochOf = func(a int) uint64 { return epochs[a] }
	}
	return NewLeaseCache(clk.now, epochOf), clk, epochs
}

func TestLeaseCacheGrantHitExpiry(t *testing.T) {
	c, clk, _ := leaseEnv(true)
	c.Put("/f", fs.Attr{Ino: 7}, 10*time.Second, 0, 0)
	if a, ok := c.Get("/f"); !ok || a.Ino != 7 {
		t.Fatalf("fresh lease: %v %v", a, ok)
	}
	clk.t = 10 * time.Second // inclusive boundary, like the TTL caches
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("lease rejected at exact expiry")
	}
	clk.t = 10*time.Second + 1
	if _, ok := c.Get("/f"); ok {
		t.Fatal("lease served past expiry")
	}
	if h, m, _, _ := c.Stats(); h != 2 || m != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", h, m)
	}
}

func TestLeaseCacheRevoke(t *testing.T) {
	c, _, _ := leaseEnv(true)
	c.Put("/f", fs.Attr{Ino: 1}, time.Minute, 0, 0)
	if !c.Revoke("/f") {
		t.Fatal("revocation of a held lease reported no lease")
	}
	if _, ok := c.Get("/f"); ok {
		t.Fatal("revoked lease served")
	}
	// Re-grant after revocation serves again.
	c.Put("/f", fs.Attr{Ino: 2}, time.Minute, 0, 0)
	if a, ok := c.Get("/f"); !ok || a.Ino != 2 {
		t.Fatal("re-granted lease not served")
	}
	if _, _, rev, _ := c.Stats(); rev != 1 {
		t.Fatalf("revoked = %d, want 1", rev)
	}
}

func TestLeaseCacheEpochBulkInvalidation(t *testing.T) {
	// A failover bumps one authority's epoch; every lease it granted
	// dies in one step while other authorities' leases survive.
	c, _, epochs := leaseEnv(true)
	c.Put("/a", fs.Attr{Ino: 1}, time.Minute, 0, epochs[0])
	c.Put("/b", fs.Attr{Ino: 2}, time.Minute, 0, epochs[0])
	c.Put("/c", fs.Attr{Ino: 3}, time.Minute, 1, epochs[1])
	epochs[0]++ // slice 0 crashed and failed over
	for _, p := range []string{"/a", "/b"} {
		if _, ok := c.Get(p); ok {
			t.Fatalf("%s served across an epoch move", p)
		}
	}
	if a, ok := c.Get("/c"); !ok || a.Ino != 3 {
		t.Fatal("unrelated authority's lease dropped")
	}
	if _, _, _, drops := c.Stats(); drops != 2 {
		t.Fatalf("epochDrops = %d, want 2", drops)
	}
}

func TestLeaseCacheNoEpochCheckTrustsAcrossFailover(t *testing.T) {
	// With epoch checking disabled (nil epochOf) the lease survives the
	// epoch move until expiry — the E24 stale-read window.
	c, clk, epochs := leaseEnv(false)
	c.Put("/a", fs.Attr{Ino: 1}, 8*time.Second, 0, epochs[0])
	epochs[0]++
	if _, ok := c.Get("/a"); !ok {
		t.Fatal("unchecked lease dropped at epoch move")
	}
	clk.t = 9 * time.Second
	if _, ok := c.Get("/a"); ok {
		t.Fatal("unchecked lease survived its expiry")
	}
}

// Revocation-vs-crash races: a server revocation can arrive after the
// client already dropped the lease (epoch bump observed first, or the
// lease expired), and a crash-time bulk invalidation can land after a
// revocation already emptied the entry. Every ordering must converge on
// the same state: no lease, no double counting, and a subsequent
// re-grant serving normally.
func TestLeaseCacheRevokeAfterEpochDrop(t *testing.T) {
	c, _, epochs := leaseEnv(true)
	c.Put("/f", fs.Attr{Ino: 1}, time.Minute, 2, epochs[2])
	epochs[2]++
	if _, ok := c.Get("/f"); ok { // the epoch drop lands first
		t.Fatal("lease served across epoch move")
	}
	if c.Revoke("/f") { // late callback for the dead lease
		t.Fatal("revocation after bulk invalidation reported a held lease")
	}
	if _, _, rev, drops := c.Stats(); rev != 0 || drops != 1 {
		t.Fatalf("revoked/drops = %d/%d, want 0/1", rev, drops)
	}
	// The re-granted lease at the new epoch is live.
	c.Put("/f", fs.Attr{Ino: 2}, time.Minute, 2, epochs[2])
	if a, ok := c.Get("/f"); !ok || a.Ino != 2 {
		t.Fatal("re-grant at the new epoch not served")
	}
}

func TestLeaseCacheEpochDropAfterRevoke(t *testing.T) {
	// Reverse order: the callback lands first, then the client observes
	// the epoch move. Nothing is left to drop; stats count one
	// revocation and zero epoch drops.
	c, _, epochs := leaseEnv(true)
	c.Put("/f", fs.Attr{Ino: 1}, time.Minute, 1, epochs[1])
	if !c.Revoke("/f") {
		t.Fatal("revocation of a held lease reported no lease")
	}
	epochs[1]++
	if _, ok := c.Get("/f"); ok {
		t.Fatal("revoked lease resurrected by epoch move")
	}
	if _, _, rev, drops := c.Stats(); rev != 1 || drops != 0 {
		t.Fatalf("revoked/drops = %d/%d, want 1/0", rev, drops)
	}
}

func TestLeaseCacheRevokeExpiredLease(t *testing.T) {
	// A callback racing the lease's own expiry: the entry is still in
	// the map but past expiry; revocation still clears it (idempotent
	// with a Get-triggered drop) and a second revocation is a no-op.
	c, clk, _ := leaseEnv(true)
	c.Put("/f", fs.Attr{Ino: 1}, time.Second, 0, 0)
	clk.t = 2 * time.Second
	if !c.Revoke("/f") {
		t.Fatal("revocation of a lapsed-but-cached lease dropped nothing")
	}
	if c.Revoke("/f") {
		t.Fatal("second revocation reported a held lease")
	}
}

func TestLeaseCacheCapEviction(t *testing.T) {
	// Capacity eviction prefers lapsed leases (expired or epoch-dead)
	// over live ones, then insertion order.
	c, _, epochs := leaseEnv(true)
	c.Cap = 3
	c.Put("/dead", fs.Attr{Ino: 1}, time.Minute, 3, epochs[3])
	c.Put("/live1", fs.Attr{Ino: 2}, time.Minute, 0, epochs[0])
	c.Put("/live2", fs.Attr{Ino: 3}, time.Minute, 0, epochs[0])
	epochs[3]++ // /dead's authority failed over
	c.Put("/new", fs.Attr{Ino: 4}, time.Minute, 0, epochs[0])
	if _, ok := c.entries["/dead"]; ok {
		t.Fatal("epoch-dead lease survived capacity eviction")
	}
	for _, p := range []string{"/live1", "/live2", "/new"} {
		if _, ok := c.Get(p); !ok {
			t.Fatalf("%s evicted while a dead lease was cached", p)
		}
	}
	// Nothing lapsed: strictly oldest-inserted goes.
	c.Put("/newer", fs.Attr{Ino: 5}, time.Minute, 0, epochs[0])
	if _, ok := c.Get("/live1"); ok {
		t.Fatal("oldest live lease survived full-cache insertion")
	}
}

func TestLeaseCacheClearResetsStats(t *testing.T) {
	c, _, _ := leaseEnv(true)
	c.Put("/a", fs.Attr{}, time.Minute, 0, 0)
	c.Get("/a")
	c.Get("/b")
	c.Revoke("/a")
	c.Clear()
	if h, m, r, d := c.Stats(); h != 0 || m != 0 || r != 0 || d != 0 {
		t.Fatalf("stats survived Clear: %d/%d/%d/%d", h, m, r, d)
	}
	if c.Len() != 0 {
		t.Fatalf("entries survived Clear: %d", c.Len())
	}
}
