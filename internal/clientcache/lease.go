package clientcache

import (
	"time"

	"dmetabench/internal/fs"
)

// LeaseCache is the client half of a lease-based metadata coherence
// protocol (the AFS/Lustre callback direction the thesis contrasts with
// NFS attribute timeouts in §2.1.2/§4.7.3, scaled out the way MetaFlow
// and HopsFS cache under explicit invalidation). An entry is trusted
// until one of three things ends the lease:
//
//  1. expiry — the server granted the lease for a bounded TTL and the
//     clock ran out;
//  2. revocation — the server delivered a callback because another
//     client mutated the path (Revoke);
//  3. an epoch move — the granting authority (a metadata-server slice
//     in internal/shard) crashed or failed over, and the client drops
//     every lease that authority granted in one step, without
//     per-entry traffic (the epochOf check).
//
// Epoch checking is optional: with a nil epochOf the cache trusts
// leases across failovers, which is exactly the stale-read window
// experiment E24 measures.
type LeaseCache struct {
	// Cap bounds the entry count (0 = unbounded). When full, Put evicts
	// strictly by expiry then insertion order.
	Cap int

	now     func() time.Duration
	epochOf func(authority int) uint64

	entries map[string]leaseEntry
	ev      evictor

	hits, misses, revoked, epochDrops int64
}

type leaseEntry struct {
	attr      fs.Attr
	expiry    time.Duration
	authority int
	epoch     uint64
	seq       uint64
}

// NewLeaseCache returns a lease cache using now as its clock. epochOf
// reports the current epoch of a granting authority; nil disables epoch
// checks (leases survive failovers until they expire or are revoked).
func NewLeaseCache(now func() time.Duration, epochOf func(authority int) uint64) *LeaseCache {
	return &LeaseCache{now: now, epochOf: epochOf, entries: make(map[string]leaseEntry)}
}

// Get returns the cached attributes for path while its lease holds. A
// lease whose authority's epoch moved on is dropped (counted as an
// epoch drop); one past its expiry is dropped silently. Both count as
// misses.
func (c *LeaseCache) Get(path string) (fs.Attr, bool) {
	e, ok := c.entries[path]
	if !ok {
		c.misses++
		return fs.Attr{}, false
	}
	if c.epochOf != nil && c.epochOf(e.authority) != e.epoch {
		delete(c.entries, path)
		c.epochDrops++
		c.misses++
		return fs.Attr{}, false
	}
	if c.now() > e.expiry {
		delete(c.entries, path)
		c.misses++
		return fs.Attr{}, false
	}
	c.hits++
	return e.attr, true
}

// Put records a lease on path granted by authority at the given epoch,
// valid through expiry (inclusive). A re-grant over a live lease keeps
// the entry's insertion order.
func (c *LeaseCache) Put(path string, a fs.Attr, expiry time.Duration, authority int, epoch uint64) {
	if e, ok := c.entries[path]; ok {
		e.attr, e.expiry, e.authority, e.epoch = a, expiry, authority, epoch
		c.entries[path] = e
		return
	}
	if c.Cap > 0 {
		state := c.slotState(c.now())
		if len(c.entries) >= c.Cap {
			if victim, ok := c.ev.pick(state); ok {
				delete(c.entries, victim)
			}
		}
		c.ev.maybeCompact(c.Cap, state)
	}
	var seq uint64
	if c.Cap > 0 {
		seq = c.ev.note(path)
	}
	c.entries[path] = leaseEntry{attr: a, expiry: expiry, authority: authority, epoch: epoch, seq: seq}
}

// slotState classifies one tracked slot for eviction at time now: a
// lease past expiry or behind its authority's epoch is as good as gone.
func (c *LeaseCache) slotState(now time.Duration) func(key string, seq uint64) slotState {
	return func(key string, seq uint64) slotState {
		e, ok := c.entries[key]
		switch {
		case !ok || e.seq != seq:
			return slotDead
		case now > e.expiry || (c.epochOf != nil && c.epochOf(e.authority) != e.epoch):
			return slotExpired
		default:
			return slotLive
		}
	}
}

// Revoke drops the lease on path in response to a server callback and
// reports whether a lease was actually held. A revocation racing a
// crash-time bulk invalidation (or an expiry) finds no entry and is a
// no-op — callbacks are idempotent, so either delivery order converges.
func (c *LeaseCache) Revoke(path string) bool {
	if _, ok := c.entries[path]; !ok {
		return false
	}
	delete(c.entries, path)
	c.revoked++
	return true
}

// Invalidate removes one path without counting a revocation (local
// knowledge, e.g. the client itself unlinked the file).
func (c *LeaseCache) Invalidate(path string) { delete(c.entries, path) }

// Clear drops every entry and resets the statistics (§3.4.3 semantics,
// like AttrCache.Clear).
func (c *LeaseCache) Clear() {
	c.entries = make(map[string]leaseEntry)
	c.ev.reset()
	c.hits, c.misses, c.revoked, c.epochDrops = 0, 0, 0, 0
}

// Stats returns cumulative hits, misses, server revocations honoured,
// and leases dropped by epoch moves (crash-time bulk invalidation).
func (c *LeaseCache) Stats() (hits, misses, revoked, epochDrops int64) {
	return c.hits, c.misses, c.revoked, c.epochDrops
}

// Len returns the number of cached entries (live or lapsed).
func (c *LeaseCache) Len() int { return len(c.entries) }
