package clientcache

import (
	"testing"
	"testing/quick"
	"time"

	"dmetabench/internal/fs"
)

// fakeClock is a settable clock for cache tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestAttrCacheTTL(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(3*time.Second, clk.now)
	c.Put("/f", fs.Attr{Ino: 7})
	if a, ok := c.Get("/f"); !ok || a.Ino != 7 {
		t.Fatalf("fresh get: %v %v", a, ok)
	}
	clk.t = 2 * time.Second
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("entry expired early")
	}
	clk.t = 4 * time.Second
	if _, ok := c.Get("/f"); ok {
		t.Fatal("entry survived past TTL")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestAttrCacheInvalidateClear(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(time.Minute, clk.now)
	c.Put("/a", fs.Attr{})
	c.Put("/b", fs.Attr{})
	c.Invalidate("/a")
	if _, ok := c.Get("/a"); ok {
		t.Fatal("invalidated entry returned")
	}
	if _, ok := c.Get("/b"); !ok {
		t.Fatal("unrelated entry dropped")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len after clear = %d", c.Len())
	}
}

func TestDentryCachePositiveNegative(t *testing.T) {
	clk := &fakeClock{}
	d := NewDentryCache(30*time.Second, clk.now)
	d.PutPositive("/f", 42)
	ino, neg, ok := d.Lookup("/f")
	if !ok || neg || ino != 42 {
		t.Fatalf("positive lookup: %d %v %v", ino, neg, ok)
	}
	d.PutNegative("/g")
	_, neg, ok = d.Lookup("/g")
	if !ok || !neg {
		t.Fatalf("negative lookup: %v %v", neg, ok)
	}
	clk.t = time.Minute
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("entry survived past TTL")
	}
}

func TestAttrCacheTTLExactBoundary(t *testing.T) {
	// The freshness test is now-fetched > TTL: an entry aged exactly TTL
	// is still served (acregmax is inclusive), one tick past it is not.
	clk := &fakeClock{}
	c := NewAttrCache(3*time.Second, clk.now)
	c.Put("/f", fs.Attr{Ino: 9})
	clk.t = 3 * time.Second
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("entry aged exactly TTL rejected")
	}
	clk.t = 3*time.Second + 1
	if _, ok := c.Get("/f"); ok {
		t.Fatal("entry one tick past TTL served")
	}
}

func TestDentryCacheTTLExactBoundary(t *testing.T) {
	clk := &fakeClock{}
	d := NewDentryCache(30*time.Second, clk.now)
	d.PutPositive("/f", 5)
	clk.t = 30 * time.Second
	if _, _, ok := d.Lookup("/f"); !ok {
		t.Fatal("dentry aged exactly TTL rejected")
	}
	clk.t = 30*time.Second + 1
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("dentry one tick past TTL served")
	}
}

func TestDentryNegativeFlipsToPositive(t *testing.T) {
	// A create after a failed lookup overwrites the negative entry in
	// place; the positive entry carries the new inode and a fresh TTL.
	clk := &fakeClock{}
	d := NewDentryCache(10*time.Second, clk.now)
	d.PutNegative("/f")
	if _, neg, ok := d.Lookup("/f"); !ok || !neg {
		t.Fatal("negative entry not cached")
	}
	clk.t = 6 * time.Second
	d.PutPositive("/f", 77)
	ino, neg, ok := d.Lookup("/f")
	if !ok || neg || ino != 77 {
		t.Fatalf("after flip: ino=%d neg=%v ok=%v, want 77/false/true", ino, neg, ok)
	}
	// The flip refreshed the TTL: alive at t=15s (9s after the flip),
	// gone one tick past t=16s.
	clk.t = 15 * time.Second
	if _, neg, ok := d.Lookup("/f"); !ok || neg {
		t.Fatal("flipped entry expired on the stale negative's clock")
	}
	clk.t = 16*time.Second + 1
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("flipped entry survived past its refreshed TTL")
	}
}

func TestAttrCacheClearResetsStats(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(time.Minute, clk.now)
	c.Put("/a", fs.Attr{})
	c.Get("/a") // hit
	c.Get("/b") // miss
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("pre-clear stats = %d/%d, want 1/1", h, m)
	}
	c.Clear()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats survived Clear: %d/%d, want 0/0", h, m)
	}
	if c.Len() != 0 {
		t.Fatalf("entries survived Clear: %d", c.Len())
	}
	// Counters accumulate cleanly after the reset.
	c.Get("/a")
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("post-clear stats = %d/%d, want 0/1", h, m)
	}
}

// Property: a Put followed by Get within TTL always returns the stored
// attributes, for arbitrary paths and inode numbers.
func TestAttrCacheRoundTrip(t *testing.T) {
	f := func(path string, ino uint64, size int64) bool {
		clk := &fakeClock{}
		c := NewAttrCache(time.Second, clk.now)
		want := fs.Attr{Ino: fs.Ino(ino), Size: size}
		c.Put(path, want)
		got, ok := c.Get(path)
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
