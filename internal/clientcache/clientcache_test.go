package clientcache

import (
	"testing"
	"testing/quick"
	"time"

	"dmetabench/internal/fs"
)

// fakeClock is a settable clock for cache tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestAttrCacheTTL(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(3*time.Second, clk.now)
	c.Put("/f", fs.Attr{Ino: 7})
	if a, ok := c.Get("/f"); !ok || a.Ino != 7 {
		t.Fatalf("fresh get: %v %v", a, ok)
	}
	clk.t = 2 * time.Second
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("entry expired early")
	}
	clk.t = 4 * time.Second
	if _, ok := c.Get("/f"); ok {
		t.Fatal("entry survived past TTL")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestAttrCacheInvalidateClear(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(time.Minute, clk.now)
	c.Put("/a", fs.Attr{})
	c.Put("/b", fs.Attr{})
	c.Invalidate("/a")
	if _, ok := c.Get("/a"); ok {
		t.Fatal("invalidated entry returned")
	}
	if _, ok := c.Get("/b"); !ok {
		t.Fatal("unrelated entry dropped")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len after clear = %d", c.Len())
	}
}

func TestDentryCachePositiveNegative(t *testing.T) {
	clk := &fakeClock{}
	d := NewDentryCache(30*time.Second, clk.now)
	d.PutPositive("/f", 42)
	ino, neg, ok := d.Lookup("/f")
	if !ok || neg || ino != 42 {
		t.Fatalf("positive lookup: %d %v %v", ino, neg, ok)
	}
	d.PutNegative("/g")
	_, neg, ok = d.Lookup("/g")
	if !ok || !neg {
		t.Fatalf("negative lookup: %v %v", neg, ok)
	}
	clk.t = time.Minute
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("entry survived past TTL")
	}
}

// Property: a Put followed by Get within TTL always returns the stored
// attributes, for arbitrary paths and inode numbers.
func TestAttrCacheRoundTrip(t *testing.T) {
	f := func(path string, ino uint64, size int64) bool {
		clk := &fakeClock{}
		c := NewAttrCache(time.Second, clk.now)
		want := fs.Attr{Ino: fs.Ino(ino), Size: size}
		c.Put(path, want)
		got, ok := c.Get(path)
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
