package clientcache

import (
	"testing"
	"testing/quick"
	"time"

	"dmetabench/internal/fs"
)

// fakeClock is a settable clock for cache tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestAttrCacheTTL(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(3*time.Second, clk.now)
	c.Put("/f", fs.Attr{Ino: 7})
	if a, ok := c.Get("/f"); !ok || a.Ino != 7 {
		t.Fatalf("fresh get: %v %v", a, ok)
	}
	clk.t = 2 * time.Second
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("entry expired early")
	}
	clk.t = 4 * time.Second
	if _, ok := c.Get("/f"); ok {
		t.Fatal("entry survived past TTL")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestAttrCacheInvalidateClear(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(time.Minute, clk.now)
	c.Put("/a", fs.Attr{})
	c.Put("/b", fs.Attr{})
	c.Invalidate("/a")
	if _, ok := c.Get("/a"); ok {
		t.Fatal("invalidated entry returned")
	}
	if _, ok := c.Get("/b"); !ok {
		t.Fatal("unrelated entry dropped")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len after clear = %d", c.Len())
	}
}

func TestDentryCachePositiveNegative(t *testing.T) {
	clk := &fakeClock{}
	d := NewDentryCache(30*time.Second, clk.now)
	d.PutPositive("/f", 42)
	ino, neg, ok := d.Lookup("/f")
	if !ok || neg || ino != 42 {
		t.Fatalf("positive lookup: %d %v %v", ino, neg, ok)
	}
	d.PutNegative("/g")
	_, neg, ok = d.Lookup("/g")
	if !ok || !neg {
		t.Fatalf("negative lookup: %v %v", neg, ok)
	}
	clk.t = time.Minute
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("entry survived past TTL")
	}
}

func TestAttrCacheTTLExactBoundary(t *testing.T) {
	// The freshness test is now-fetched > TTL: an entry aged exactly TTL
	// is still served (acregmax is inclusive), one tick past it is not.
	clk := &fakeClock{}
	c := NewAttrCache(3*time.Second, clk.now)
	c.Put("/f", fs.Attr{Ino: 9})
	clk.t = 3 * time.Second
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("entry aged exactly TTL rejected")
	}
	clk.t = 3*time.Second + 1
	if _, ok := c.Get("/f"); ok {
		t.Fatal("entry one tick past TTL served")
	}
}

func TestDentryCacheTTLExactBoundary(t *testing.T) {
	clk := &fakeClock{}
	d := NewDentryCache(30*time.Second, clk.now)
	d.PutPositive("/f", 5)
	clk.t = 30 * time.Second
	if _, _, ok := d.Lookup("/f"); !ok {
		t.Fatal("dentry aged exactly TTL rejected")
	}
	clk.t = 30*time.Second + 1
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("dentry one tick past TTL served")
	}
}

func TestDentryNegativeFlipsToPositive(t *testing.T) {
	// A create after a failed lookup overwrites the negative entry in
	// place; the positive entry carries the new inode and a fresh TTL.
	clk := &fakeClock{}
	d := NewDentryCache(10*time.Second, clk.now)
	d.PutNegative("/f")
	if _, neg, ok := d.Lookup("/f"); !ok || !neg {
		t.Fatal("negative entry not cached")
	}
	clk.t = 6 * time.Second
	d.PutPositive("/f", 77)
	ino, neg, ok := d.Lookup("/f")
	if !ok || neg || ino != 77 {
		t.Fatalf("after flip: ino=%d neg=%v ok=%v, want 77/false/true", ino, neg, ok)
	}
	// The flip refreshed the TTL: alive at t=15s (9s after the flip),
	// gone one tick past t=16s.
	clk.t = 15 * time.Second
	if _, neg, ok := d.Lookup("/f"); !ok || neg {
		t.Fatal("flipped entry expired on the stale negative's clock")
	}
	clk.t = 16*time.Second + 1
	if _, _, ok := d.Lookup("/f"); ok {
		t.Fatal("flipped entry survived past its refreshed TTL")
	}
}

func TestAttrCacheClearResetsStats(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(time.Minute, clk.now)
	c.Put("/a", fs.Attr{})
	c.Get("/a") // hit
	c.Get("/b") // miss
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("pre-clear stats = %d/%d, want 1/1", h, m)
	}
	c.Clear()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats survived Clear: %d/%d, want 0/0", h, m)
	}
	if c.Len() != 0 {
		t.Fatalf("entries survived Clear: %d", c.Len())
	}
	// Counters accumulate cleanly after the reset.
	c.Get("/a")
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("post-clear stats = %d/%d, want 0/1", h, m)
	}
}

// Regression: capacity eviction must go strictly by expiry then
// insertion order. The historical hazard is a dentry cache that scans
// positive entries first, leaving expired negative dentries pinned in a
// full cache while fresh positive entries are thrown out.
func TestDentryCacheCapEvictsExpiredNegativesFirst(t *testing.T) {
	clk := &fakeClock{}
	d := NewDentryCache(5*time.Second, clk.now)
	d.Cap = 3
	d.PutNegative("/n0")
	d.PutNegative("/n1")
	clk.t = 4 * time.Second
	d.PutPositive("/p0", 1)
	clk.t = 6 * time.Second // /n0 and /n1 are now expired, /p0 is fresh
	d.PutPositive("/p1", 2)
	if _, _, ok := d.Lookup("/n0"); ok {
		t.Fatal("expired negative dentry survived capacity eviction")
	}
	if ino, _, ok := d.Lookup("/p0"); !ok || ino != 1 {
		t.Fatal("fresh positive entry evicted while expired negatives were cached")
	}
	if ino, _, ok := d.Lookup("/p1"); !ok || ino != 2 {
		t.Fatal("newly inserted entry missing")
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}
}

func TestDentryCacheCapFallsBackToInsertionOrder(t *testing.T) {
	// With nothing expired, the oldest-inserted entry goes — even when
	// it is positive and newer negative entries exist.
	clk := &fakeClock{}
	d := NewDentryCache(time.Minute, clk.now)
	d.Cap = 2
	d.PutPositive("/old", 1)
	d.PutNegative("/neg")
	d.PutPositive("/new", 2)
	if _, _, ok := d.Lookup("/old"); ok {
		t.Fatal("oldest-inserted entry survived eviction")
	}
	if _, neg, ok := d.Lookup("/neg"); !ok || !neg {
		t.Fatal("newer negative entry wrongly evicted")
	}
	if _, _, ok := d.Lookup("/new"); !ok {
		t.Fatal("newly inserted entry missing")
	}
}

func TestDentryCacheCapReinsertMovesToBack(t *testing.T) {
	// Invalidate + re-insert restarts a key's insertion order; the stale
	// first-insertion slot must not make it evict early.
	clk := &fakeClock{}
	d := NewDentryCache(time.Minute, clk.now)
	d.Cap = 2
	d.PutPositive("/a", 1)
	d.PutPositive("/b", 2)
	d.Invalidate("/a")
	d.PutPositive("/a", 3) // re-inserted: now newer than /b
	d.PutPositive("/c", 4) // evicts /b, not the re-inserted /a
	if _, _, ok := d.Lookup("/b"); ok {
		t.Fatal("/b survived; re-inserted /a was evicted on its stale slot")
	}
	if ino, _, ok := d.Lookup("/a"); !ok || ino != 3 {
		t.Fatal("re-inserted entry evicted by its stale insertion slot")
	}
}

func TestAttrCacheCapEviction(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(5*time.Second, clk.now)
	c.Cap = 2
	c.Put("/a", fs.Attr{Ino: 1})
	clk.t = 4 * time.Second
	c.Put("/b", fs.Attr{Ino: 2})
	clk.t = 6 * time.Second // /a expired, /b fresh
	c.Put("/c", fs.Attr{Ino: 3})
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("/a"); ok {
		t.Fatal("expired entry survived eviction")
	}
	if a, ok := c.Get("/b"); !ok || a.Ino != 2 {
		t.Fatal("fresh entry evicted while an expired one was cached")
	}
	// Refreshing /b does not move it to the back: it is still the
	// oldest-inserted entry and goes next when nothing is expired.
	c.Put("/b", fs.Attr{Ino: 2})
	c.Put("/d", fs.Attr{Ino: 4})
	if _, ok := c.Get("/b"); ok {
		t.Fatal("refresh reordered eviction; oldest insert survived")
	}
	if _, ok := c.Get("/c"); !ok {
		t.Fatal("newer entry evicted before the oldest insert")
	}
}

// Churn below capacity must not grow the insertion-order list without
// bound: invalidate+reinsert cycles leave dead slots that only
// compaction can reclaim, because full-cache eviction never runs.
func TestEvictorCompactsBelowCapacity(t *testing.T) {
	clk := &fakeClock{}
	c := NewAttrCache(time.Minute, clk.now)
	c.Cap = 100
	for i := 0; i < 10000; i++ {
		c.Invalidate("/hot")
		c.Put("/hot", fs.Attr{Ino: fs.Ino(i)})
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if n := len(c.ev.order); n > 2*c.Cap+16 {
		t.Fatalf("order list grew to %d slots under churn (cap %d)", n, c.Cap)
	}
}

// Property: a Put followed by Get within TTL always returns the stored
// attributes, for arbitrary paths and inode numbers.
func TestAttrCacheRoundTrip(t *testing.T) {
	f := func(path string, ino uint64, size int64) bool {
		clk := &fakeClock{}
		c := NewAttrCache(time.Second, clk.now)
		want := fs.Attr{Ino: fs.Ino(ino), Size: size}
		c.Put(path, want)
		got, ok := c.Get(path)
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
