package clientcache

import (
	"testing"
	"time"
)

func TestSplitMapExpiryAndRefresh(t *testing.T) {
	var now time.Duration
	m := NewSplitMap(func() time.Duration { return now }, nil)
	if _, ok := m.Get("/big"); ok {
		t.Fatal("empty map served a hit")
	}
	m.Put("/big", 2, 100*time.Millisecond, 0, 0)
	if lvl, ok := m.Get("/big"); !ok || lvl != 2 {
		t.Fatalf("Get = (%d, %v), want (2, true)", lvl, ok)
	}
	now = 100 * time.Millisecond // expiry is inclusive, like the lease cache
	if _, ok := m.Get("/big"); !ok {
		t.Fatal("entry dropped at exact expiry; the boundary is inclusive")
	}
	now = 100*time.Millisecond + 1
	if _, ok := m.Get("/big"); ok {
		t.Fatal("expired entry served")
	}
	// A refresh with a higher level replaces the entry.
	m.Put("/big", 3, now+time.Second, 0, 0)
	if lvl, ok := m.Get("/big"); !ok || lvl != 3 {
		t.Fatalf("refreshed Get = (%d, %v), want (3, true)", lvl, ok)
	}
	hits, misses, _ := m.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 3/2", hits, misses)
	}
}

func TestSplitMapEpochDrop(t *testing.T) {
	var now time.Duration
	epochs := map[int]uint64{4: 7}
	m := NewSplitMap(func() time.Duration { return now },
		func(authority int) uint64 { return epochs[authority] })
	m.Put("/big", 1, time.Hour, 4, 7)
	if _, ok := m.Get("/big"); !ok {
		t.Fatal("fresh entry missed")
	}
	epochs[4] = 8 // the authority failed over
	if _, ok := m.Get("/big"); ok {
		t.Fatal("entry survived its authority's epoch move")
	}
	_, _, drops := m.Stats()
	if drops != 1 {
		t.Errorf("epochDrops = %d, want 1", drops)
	}
	if m.Len() != 0 {
		t.Errorf("dropped entry still tracked: Len = %d", m.Len())
	}
}

func TestSplitMapInvalidateAndClear(t *testing.T) {
	var now time.Duration
	m := NewSplitMap(func() time.Duration { return now }, nil)
	m.Put("/a", 1, time.Hour, 0, 0)
	m.Put("/b", 2, time.Hour, 0, 0)
	m.Invalidate("/a")
	if _, ok := m.Get("/a"); ok {
		t.Fatal("invalidated entry served")
	}
	if _, ok := m.Get("/b"); !ok {
		t.Fatal("unrelated entry lost")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Errorf("Len after Clear = %d", m.Len())
	}
	if h, mi, e := m.Stats(); h != 0 || mi != 0 || e != 0 {
		t.Errorf("stats not reset by Clear: %d/%d/%d", h, mi, e)
	}
}
