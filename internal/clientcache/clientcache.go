// Package clientcache provides the client-side metadata caches shared by
// the distributed file system models: a TTL attribute cache and a dentry
// (name lookup) cache with positive and negative entries, per OS
// instance (§2.1.2).
package clientcache

import (
	"time"

	"dmetabench/internal/fs"
)

// AttrCache caches attributes by path with a fixed TTL, like the NFS
// client attribute cache (acregmin/acregmax).
type AttrCache struct {
	TTL time.Duration
	now func() time.Duration

	entries map[string]attrEntry
	hits    int64
	misses  int64
}

type attrEntry struct {
	attr    fs.Attr
	fetched time.Duration
}

// NewAttrCache returns a cache using now as its clock.
func NewAttrCache(ttl time.Duration, now func() time.Duration) *AttrCache {
	return &AttrCache{TTL: ttl, now: now, entries: make(map[string]attrEntry)}
}

// Get returns the cached attributes for path if fresh.
func (c *AttrCache) Get(path string) (fs.Attr, bool) {
	e, ok := c.entries[path]
	if !ok || c.now()-e.fetched > c.TTL {
		c.misses++
		return fs.Attr{}, false
	}
	c.hits++
	return e.attr, true
}

// Put stores attributes for path.
func (c *AttrCache) Put(path string, a fs.Attr) {
	c.entries[path] = attrEntry{attr: a, fetched: c.now()}
}

// Invalidate removes one path.
func (c *AttrCache) Invalidate(path string) { delete(c.entries, path) }

// Clear drops every entry and resets the hit/miss statistics
// (drop_caches before a fresh measurement, §3.4.3: a cleared cache's
// counters must describe only the run that follows).
func (c *AttrCache) Clear() {
	c.entries = make(map[string]attrEntry)
	c.hits, c.misses = 0, 0
}

// Stats returns cumulative hits and misses.
func (c *AttrCache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Len returns the number of cached entries (fresh or stale).
func (c *AttrCache) Len() int { return len(c.entries) }

// DentryCache caches name resolution results, including negative entries
// (name known not to exist), like the Linux dcache with d_revalidate.
type DentryCache struct {
	TTL time.Duration
	now func() time.Duration

	entries map[string]dentry
}

type dentry struct {
	ino      fs.Ino
	negative bool
	fetched  time.Duration
}

// NewDentryCache returns a dentry cache using now as its clock.
func NewDentryCache(ttl time.Duration, now func() time.Duration) *DentryCache {
	return &DentryCache{TTL: ttl, now: now, entries: make(map[string]dentry)}
}

// Lookup returns (ino, negative, ok): ok reports a fresh cache entry and
// negative reports a cached non-existence.
func (c *DentryCache) Lookup(path string) (fs.Ino, bool, bool) {
	e, ok := c.entries[path]
	if !ok || c.now()-e.fetched > c.TTL {
		return 0, false, false
	}
	return e.ino, e.negative, true
}

// PutPositive records that path resolves to ino.
func (c *DentryCache) PutPositive(path string, ino fs.Ino) {
	c.entries[path] = dentry{ino: ino, fetched: c.now()}
}

// PutNegative records that path does not exist.
func (c *DentryCache) PutNegative(path string) {
	c.entries[path] = dentry{negative: true, fetched: c.now()}
}

// Invalidate removes one path.
func (c *DentryCache) Invalidate(path string) { delete(c.entries, path) }

// Clear drops every entry.
func (c *DentryCache) Clear() { c.entries = make(map[string]dentry) }
