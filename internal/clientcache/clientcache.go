// Package clientcache provides the client-side metadata caches shared by
// the distributed file system models, in two consistency flavours:
//
//   - AttrCache and DentryCache are timeout caches: entries are trusted
//     for a fixed TTL after they were fetched, like the NFS client
//     attribute cache (acregmin/acregmax) and the Linux dcache with
//     d_revalidate (§2.1.2). Remote mutations are invisible until the
//     timeout lapses — cheap, but stale by design.
//   - LeaseCache (lease.go) is the client half of an explicit coherence
//     protocol: entries are trusted until the server-granted lease
//     expires, the server revokes them with a callback, or the granting
//     authority's epoch moves on — the bulk invalidation applied when a
//     metadata server crashes and a backup takes over its slice
//     (internal/shard wires the server half; E22–E24 measure it).
//
// All caches are optionally capacity-bounded (Cap): when full, insertion
// evicts strictly by expiry then insertion order — the oldest expired
// entry if one exists, else the oldest-inserted entry, never skewed by
// entry kind, so negative dentries cannot pin out positive ones.
package clientcache

import (
	"time"

	"dmetabench/internal/fs"
)

// slotState classifies one insertion-order slot during eviction.
type slotState int

const (
	// slotDead marks a slot whose entry was invalidated or re-inserted
	// since; it is compacted away.
	slotDead slotState = iota
	// slotLive marks a slot holding a fresh entry.
	slotLive
	// slotExpired marks a slot holding an entry past its TTL/lease.
	slotExpired
)

// slot is one insertion-order record; seq distinguishes a live entry
// from a stale record of an earlier incarnation of the same key.
type slot struct {
	key string
	seq uint64
}

// evictor tracks insertion order for the capacity-bounded caches.
type evictor struct {
	order []slot
	seq   uint64
}

// note records one insertion and returns its sequence number, which the
// cache stores on the entry so stale slots can be recognized.
func (v *evictor) note(key string) uint64 {
	v.seq++
	v.order = append(v.order, slot{key: key, seq: v.seq})
	return v.seq
}

// pick returns the key to evict — the oldest-inserted expired entry if
// any exists, else the oldest-inserted live entry — compacting dead
// slots as it scans. state classifies each candidate slot.
func (v *evictor) pick(state func(key string, seq uint64) slotState) (string, bool) {
	kept := v.order[:0]
	firstLive, firstExpired := -1, -1
	for _, s := range v.order {
		switch state(s.key, s.seq) {
		case slotDead:
			continue
		case slotExpired:
			if firstExpired < 0 {
				firstExpired = len(kept)
			}
		case slotLive:
			if firstLive < 0 {
				firstLive = len(kept)
			}
		}
		kept = append(kept, s)
	}
	v.order = kept
	switch {
	case firstExpired >= 0:
		return kept[firstExpired].key, true
	case firstLive >= 0:
		return kept[firstLive].key, true
	default:
		return "", false
	}
}

// maybeCompact drops dead slots once the order list has outgrown the
// capacity it serves. Churn below capacity (revocations, invalidations,
// re-inserts) leaves holes that pick would otherwise never visit,
// because pick only runs when the cache is full — without this the slot
// list grows by one entry per re-insert for the cache's lifetime.
func (v *evictor) maybeCompact(cap int, state func(key string, seq uint64) slotState) {
	if len(v.order) < 2*cap+16 {
		return
	}
	kept := v.order[:0]
	for _, s := range v.order {
		if state(s.key, s.seq) != slotDead {
			kept = append(kept, s)
		}
	}
	v.order = kept
}

// reset drops all insertion-order state.
func (v *evictor) reset() { v.order, v.seq = nil, 0 }

// AttrCache caches attributes by path with a fixed TTL, like the NFS
// client attribute cache (acregmin/acregmax).
type AttrCache struct {
	TTL time.Duration
	// Cap bounds the entry count (0 = unbounded). When full, Put evicts
	// by expiry then insertion order.
	Cap int

	now func() time.Duration

	entries map[string]attrEntry
	ev      evictor
	hits    int64
	misses  int64
}

type attrEntry struct {
	attr    fs.Attr
	fetched time.Duration
	seq     uint64
}

// NewAttrCache returns a cache using now as its clock.
func NewAttrCache(ttl time.Duration, now func() time.Duration) *AttrCache {
	return &AttrCache{TTL: ttl, now: now, entries: make(map[string]attrEntry)}
}

// Get returns the cached attributes for path if fresh.
func (c *AttrCache) Get(path string) (fs.Attr, bool) {
	e, ok := c.entries[path]
	if !ok || c.now()-e.fetched > c.TTL {
		c.misses++
		return fs.Attr{}, false
	}
	c.hits++
	return e.attr, true
}

// slotState classifies one tracked slot for eviction at time now.
func (c *AttrCache) slotState(now time.Duration) func(key string, seq uint64) slotState {
	return func(key string, seq uint64) slotState {
		e, ok := c.entries[key]
		switch {
		case !ok || e.seq != seq:
			return slotDead
		case now-e.fetched > c.TTL:
			return slotExpired
		default:
			return slotLive
		}
	}
}

// Put stores attributes for path, evicting when at capacity.
func (c *AttrCache) Put(path string, a fs.Attr) {
	now := c.now()
	if e, ok := c.entries[path]; ok {
		e.attr, e.fetched = a, now
		c.entries[path] = e
		return
	}
	if c.Cap > 0 {
		state := c.slotState(now)
		if len(c.entries) >= c.Cap {
			if victim, ok := c.ev.pick(state); ok {
				delete(c.entries, victim)
			}
		}
		c.ev.maybeCompact(c.Cap, state)
	}
	var seq uint64
	if c.Cap > 0 {
		seq = c.ev.note(path)
	}
	c.entries[path] = attrEntry{attr: a, fetched: now, seq: seq}
}

// Invalidate removes one path.
func (c *AttrCache) Invalidate(path string) { delete(c.entries, path) }

// Clear drops every entry and resets the hit/miss statistics
// (drop_caches before a fresh measurement, §3.4.3: a cleared cache's
// counters must describe only the run that follows).
func (c *AttrCache) Clear() {
	c.entries = make(map[string]attrEntry)
	c.ev.reset()
	c.hits, c.misses = 0, 0
}

// Stats returns cumulative hits and misses.
func (c *AttrCache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Len returns the number of cached entries (fresh or stale).
func (c *AttrCache) Len() int { return len(c.entries) }

// DentryCache caches name resolution results, including negative entries
// (name known not to exist), like the Linux dcache with d_revalidate.
type DentryCache struct {
	TTL time.Duration
	// Cap bounds the entry count (0 = unbounded). When full, insertion
	// evicts by expiry then insertion order regardless of entry kind:
	// an expired negative dentry goes before a fresh positive one, and
	// a fresh negative dentry is never privileged over an older
	// positive entry.
	Cap int

	now func() time.Duration

	entries map[string]dentry
	ev      evictor
}

type dentry struct {
	ino      fs.Ino
	negative bool
	fetched  time.Duration
	seq      uint64
}

// NewDentryCache returns a dentry cache using now as its clock.
func NewDentryCache(ttl time.Duration, now func() time.Duration) *DentryCache {
	return &DentryCache{TTL: ttl, now: now, entries: make(map[string]dentry)}
}

// Lookup returns (ino, negative, ok): ok reports a fresh cache entry and
// negative reports a cached non-existence.
func (c *DentryCache) Lookup(path string) (fs.Ino, bool, bool) {
	e, ok := c.entries[path]
	if !ok || c.now()-e.fetched > c.TTL {
		return 0, false, false
	}
	return e.ino, e.negative, true
}

// PutPositive records that path resolves to ino.
func (c *DentryCache) PutPositive(path string, ino fs.Ino) {
	c.put(path, dentry{ino: ino})
}

// PutNegative records that path does not exist.
func (c *DentryCache) PutNegative(path string) {
	c.put(path, dentry{negative: true})
}

// slotState classifies one tracked slot for eviction at time now.
func (c *DentryCache) slotState(now time.Duration) func(key string, seq uint64) slotState {
	return func(key string, seq uint64) slotState {
		e, ok := c.entries[key]
		switch {
		case !ok || e.seq != seq:
			return slotDead
		case now-e.fetched > c.TTL:
			return slotExpired
		default:
			return slotLive
		}
	}
}

// put stores d for path with a fresh fetch time, evicting at capacity.
func (c *DentryCache) put(path string, d dentry) {
	now := c.now()
	d.fetched = now
	if e, ok := c.entries[path]; ok {
		d.seq = e.seq
		c.entries[path] = d
		return
	}
	if c.Cap > 0 {
		state := c.slotState(now)
		if len(c.entries) >= c.Cap {
			if victim, ok := c.ev.pick(state); ok {
				delete(c.entries, victim)
			}
		}
		c.ev.maybeCompact(c.Cap, state)
		d.seq = c.ev.note(path)
	}
	c.entries[path] = d
}

// Invalidate removes one path.
func (c *DentryCache) Invalidate(path string) { delete(c.entries, path) }

// Clear drops every entry.
func (c *DentryCache) Clear() {
	c.entries = make(map[string]dentry)
	c.ev.reset()
}

// Len returns the number of cached entries (fresh or stale).
func (c *DentryCache) Len() int { return len(c.entries) }
