package clientcache

import "time"

// SplitMap is the client half of dynamic directory partitioning
// (internal/shard split.go, the GIGA+ direction): for every giant
// directory the server has split, the client caches the directory's
// split level — the doubling radix that maps an entry's name hash to
// the partition (and so the shard) holding it. A fresh entry routes a
// lookup in one RPC; a stale or missing one makes the client route to
// the wrong shard and pay a bounce, after which the server's redirect
// refreshes the entry. GIGA+'s insight is that this staleness is safe:
// the bitmap is a routing hint, never an attribute cache, so it can lag
// arbitrarily without serving wrong data — only wrong addresses.
//
// Entries follow the same three invalidation paths as leases
// (lease.go): expiry (the bitmap TTL or the lease TTL, depending on the
// cache mode), revocation (a split revokes the directory's read leases,
// and the callback drops the holder's bitmap entry with them), and an
// epoch move of the granting authority (a crash takeover of the
// directory's home slice discards every bitmap it vouched for).
type SplitMap struct {
	now     func() time.Duration
	epochOf func(authority int) uint64

	entries map[string]splitEnt

	hits, misses, epochDrops int64
}

type splitEnt struct {
	level     int
	expiry    time.Duration
	authority int
	epoch     uint64
}

// NewSplitMap returns a split-bitmap cache using now as its clock.
// epochOf reports the current epoch of a granting authority; nil
// disables epoch checks (bitmaps survive failovers until they expire —
// still safe, just more bounces).
func NewSplitMap(now func() time.Duration, epochOf func(authority int) uint64) *SplitMap {
	return &SplitMap{now: now, epochOf: epochOf, entries: make(map[string]splitEnt)}
}

// Get returns the cached split level of dir while its entry holds. An
// entry whose authority's epoch moved on is dropped (counted as an
// epoch drop); one past its expiry is dropped silently. Both count as
// misses, after which the caller routes as if the directory were
// unsplit and learns the real level from the bounce.
func (m *SplitMap) Get(dir string) (int, bool) {
	e, ok := m.entries[dir]
	if !ok {
		m.misses++
		return 0, false
	}
	if m.epochOf != nil && m.epochOf(e.authority) != e.epoch {
		delete(m.entries, dir)
		m.epochDrops++
		m.misses++
		return 0, false
	}
	if m.now() > e.expiry {
		delete(m.entries, dir)
		m.misses++
		return 0, false
	}
	m.hits++
	return e.level, true
}

// Put records dir's split level as learned from authority at the given
// epoch, valid through expiry (inclusive).
func (m *SplitMap) Put(dir string, level int, expiry time.Duration, authority int, epoch uint64) {
	m.entries[dir] = splitEnt{level: level, expiry: expiry, authority: authority, epoch: epoch}
}

// Invalidate removes one directory's entry (a revocation callback on
// the directory, or local knowledge that the directory is gone).
func (m *SplitMap) Invalidate(dir string) { delete(m.entries, dir) }

// Clear drops every entry and resets the statistics (§3.4.3 semantics,
// like AttrCache.Clear).
func (m *SplitMap) Clear() {
	m.entries = make(map[string]splitEnt)
	m.hits, m.misses, m.epochDrops = 0, 0, 0
}

// Stats returns cumulative hits, misses, and entries dropped by epoch
// moves (crash-time bulk invalidation).
func (m *SplitMap) Stats() (hits, misses, epochDrops int64) {
	return m.hits, m.misses, m.epochDrops
}

// Len returns the number of cached entries (fresh or lapsed).
func (m *SplitMap) Len() int { return len(m.entries) }
