package localfs

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
)

func TestBasicOps(t *testing.T) {
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	f := New(k, cl.Nodes[0], DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Mkdir("/d"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Create("/d/f"); err != nil {
			t.Errorf("create: %v", err)
		}
		h, err := c.Open("/d/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := c.Write(h, 100); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := c.Fsync(h); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := c.Close(h); err != nil {
			t.Errorf("close: %v", err)
		}
		a, err := c.Stat("/d/f")
		if err != nil || a.Size != 100 {
			t.Errorf("stat: %v %+v", err, a)
		}
		if err := c.Link("/d/f", "/d/g"); err != nil {
			t.Errorf("link: %v", err)
		}
		ents, err := c.ReadDir("/d")
		if err != nil || len(ents) != 2 {
			t.Errorf("readdir: %v %d", err, len(ents))
		}
		c.Unlink("/d/f")
		c.Unlink("/d/g")
		if err := c.Rmdir("/d"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForeignNodePanics(t *testing.T) {
	k := sim.New(2)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	f := New(k, cl.Nodes[0], DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for foreign-node client")
		}
	}()
	f.NewClient(cl.Nodes[1], nil)
}

func TestLinearDirectoryDegrades(t *testing.T) {
	rate := func(idx namespace.DirIndex, prefill int) float64 {
		k := sim.New(3)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		cfg := DefaultConfig()
		cfg.DirIndex = idx
		f := New(k, cl.Nodes[0], cfg)
		f.Namespace().Mkdir("/d", 0o755, 0)
		for i := 0; i < prefill; i++ {
			f.Namespace().Create(fmt.Sprintf("/d/p%d", i), 0o644, 0)
		}
		var elapsed time.Duration
		k.Spawn("probe", func(p *sim.Proc) {
			c := f.NewClient(cl.Nodes[0], p)
			start := p.Now()
			for i := 0; i < 100; i++ {
				if err := c.Create(fmt.Sprintf("/d/n%d", i)); err != nil {
					t.Errorf("create: %v", err)
				}
			}
			elapsed = p.Now() - start
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return 100 / elapsed.Seconds()
	}
	linSmall := rate(namespace.IndexLinear, 100)
	linBig := rate(namespace.IndexLinear, 50000)
	hashBig := rate(namespace.IndexHash, 50000)
	if linBig >= linSmall/10 {
		t.Fatalf("linear index did not degrade: %.0f -> %.0f ops/s", linSmall, linBig)
	}
	if hashBig < linBig*10 {
		t.Fatalf("hash index (%0.f) should far outrun linear (%0.f) at 50k entries", hashBig, linBig)
	}
}

func TestErrorsPropagate(t *testing.T) {
	k := sim.New(4)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	f := New(k, cl.Nodes[0], DefaultConfig())
	k.Spawn("test", func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Unlink("/missing"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("unlink missing: %v", err)
		}
		if _, err := c.Stat("/missing"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("stat missing: %v", err)
		}
		if err := c.Close(42); fs.CodeOf(err) != fs.EBADF {
			t.Errorf("close bad: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
