// Package localfs models a node-local in-memory file system (the
// /dev/shm case of the thesis's Python-vs-C calibration, §4.2.2, and the
// intra-node baseline of §4.5): operations cost CPU time on the owning
// node plus a small per-operation base cost that scales with directory
// size according to the configured index, with per-directory kernel
// locking for concurrent modifications.
package localfs

import (
	"fmt"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
)

// Config holds the localfs cost model.
type Config struct {
	CreateCost  time.Duration
	StatCost    time.Duration
	RemoveCost  time.Duration
	MkdirCost   time.Duration
	RenameCost  time.Duration
	ReaddirCost time.Duration
	WriteCostKB time.Duration
	DirIndex    namespace.DirIndex
}

// DefaultConfig approximates tmpfs on a 2008-era Xeon: a create/close
// pair costs single-digit microseconds.
func DefaultConfig() Config {
	return Config{
		CreateCost:  2500 * time.Nanosecond,
		StatCost:    900 * time.Nanosecond,
		RemoveCost:  2200 * time.Nanosecond,
		MkdirCost:   3 * time.Microsecond,
		RenameCost:  3 * time.Microsecond,
		ReaddirCost: 2 * time.Microsecond,
		WriteCostKB: 1500 * time.Nanosecond,
		DirIndex:    namespace.IndexHash,
	}
}

// FS is one local file system instance bound to a node.
type FS struct {
	k    *sim.Kernel
	cfg  Config
	node *cluster.Node
	ns   *namespace.Namespace

	dirLocks map[fs.Ino]*sim.Mutex
}

// New creates a local file system on node.
func New(k *sim.Kernel, node *cluster.Node, cfg Config) *FS {
	return &FS{
		k: k, cfg: cfg, node: node, ns: namespace.New(),
		dirLocks: make(map[fs.Ino]*sim.Mutex),
	}
}

// Name identifies the model.
func (f *FS) Name() string { return "localfs" }

// Namespace exposes the backing namespace.
func (f *FS) Namespace() *namespace.Namespace { return f.ns }

// NewClient binds a client for one process. Processes on foreign nodes
// cannot mount a local file system.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	if node != f.node {
		panic("localfs: client node differs from file system node")
	}
	return &client{fsys: f, p: p, handles: make(map[fs.Handle]*openFile)}
}

func (f *FS) dirLock(ino fs.Ino) *sim.Mutex {
	m, ok := f.dirLocks[ino]
	if !ok {
		m = sim.NewMutex(f.k, fmt.Sprintf("localdir:%d", ino))
		f.dirLocks[ino] = m
	}
	return m
}

type openFile struct {
	path string
	ino  fs.Ino
}

type client struct {
	fsys    *FS
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

// op charges CPU for a directory-touching operation under the kernel's
// per-directory lock.
func (c *client) op(p string, base time.Duration, apply func(now time.Duration) error) error {
	f := c.fsys
	f.node.Syscall(c.p)
	var lock *sim.Mutex
	entries := 0
	if dir, err := f.ns.Lookup(fs.ParentDir(p)); err == nil {
		lock = f.dirLock(dir.Ino)
		entries = dir.NumChildren()
	}
	if lock != nil {
		lock.Lock(c.p)
		defer lock.Unlock()
	}
	f.node.Exec(c.p, time.Duration(float64(base)*f.cfg.DirIndex.EntryCost(entries)))
	return apply(c.p.Now())
}

// Create makes a file.
func (c *client) Create(p string) error {
	return c.op(p, c.fsys.cfg.CreateCost, func(now time.Duration) error {
		_, err := c.fsys.ns.Create(p, 0o644, now)
		return err
	})
}

// Open resolves and returns a handle.
func (c *client) Open(p string) (fs.Handle, error) {
	f := c.fsys
	f.node.Syscall(c.p)
	f.node.Exec(c.p, f.cfg.StatCost)
	node, err := f.ns.Lookup(p)
	if err != nil {
		return 0, err
	}
	c.nextFH++
	c.handles[c.nextFH] = &openFile{path: p, ino: node.Ino}
	return c.nextFH, nil
}

// Close releases the handle.
func (c *client) Close(h fs.Handle) error {
	c.fsys.node.Syscall(c.p)
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	return nil
}

// Write updates the size, charging copy cost.
func (c *client) Write(h fs.Handle, n int64) error {
	f := c.fsys
	f.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	f.node.Exec(c.p, time.Duration(float64(f.cfg.WriteCostKB)*float64(n)/1024))
	node := f.ns.Get(of.ino)
	if node == nil {
		return fs.NewError("write", of.path, fs.ESTALE)
	}
	return f.ns.SetSize(of.ino, node.Size+n, c.p.Now())
}

// Fsync is a no-op for the in-memory file system.
func (c *client) Fsync(h fs.Handle) error {
	c.fsys.node.Syscall(c.p)
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	return nil
}

// Mkdir creates a directory.
func (c *client) Mkdir(p string) error {
	return c.op(p, c.fsys.cfg.MkdirCost, func(now time.Duration) error {
		_, err := c.fsys.ns.Mkdir(p, 0o755, now)
		return err
	})
}

// Rmdir removes a directory.
func (c *client) Rmdir(p string) error {
	return c.op(p, c.fsys.cfg.RemoveCost, func(now time.Duration) error {
		return c.fsys.ns.Rmdir(p, now)
	})
}

// Unlink removes a file.
func (c *client) Unlink(p string) error {
	return c.op(p, c.fsys.cfg.RemoveCost, func(now time.Duration) error {
		return c.fsys.ns.Unlink(p, now)
	})
}

// Rename moves an entry.
func (c *client) Rename(oldPath, newPath string) error {
	return c.op(oldPath, c.fsys.cfg.RenameCost, func(now time.Duration) error {
		return c.fsys.ns.Rename(oldPath, newPath, now)
	})
}

// Link creates a hardlink.
func (c *client) Link(oldPath, newPath string) error {
	return c.op(newPath, c.fsys.cfg.CreateCost, func(now time.Duration) error {
		return c.fsys.ns.Link(oldPath, newPath, now)
	})
}

// Symlink creates a symbolic link.
func (c *client) Symlink(target, linkPath string) error {
	return c.op(linkPath, c.fsys.cfg.CreateCost, func(now time.Duration) error {
		_, err := c.fsys.ns.Symlink(target, linkPath, now)
		return err
	})
}

// Stat reads attributes.
func (c *client) Stat(p string) (fs.Attr, error) {
	f := c.fsys
	f.node.Syscall(c.p)
	f.node.Exec(c.p, f.cfg.StatCost)
	return f.ns.Stat(p)
}

// ReadDir lists a directory.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	f := c.fsys
	f.node.Syscall(c.p)
	ents, err := f.ns.ReadDir(p, c.p.Now())
	if err != nil {
		return nil, err
	}
	f.node.Exec(c.p, f.cfg.ReaddirCost+time.Duration(len(ents))*200*time.Nanosecond)
	return ents, nil
}

// DropCaches is a no-op: there is nothing behind the cache.
func (c *client) DropCaches() {
	c.fsys.node.Syscall(c.p)
}
