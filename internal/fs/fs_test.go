package fs

import (
	"errors"
	"testing"
)

func TestErrnoStrings(t *testing.T) {
	if ENOENT.String() != "ENOENT" || EEXIST.String() != "EEXIST" {
		t.Fatal("errno names wrong")
	}
	if Errno(999).String() != "Errno(999)" {
		t.Fatal("unknown errno formatting")
	}
}

func TestErrorHelpers(t *testing.T) {
	err := NewError("open", "/x", ENOENT)
	if err.Error() != "open /x: ENOENT" {
		t.Fatalf("error = %q", err.Error())
	}
	if !IsNotExist(err) || IsExist(err) {
		t.Fatal("classification wrong")
	}
	if CodeOf(nil) != OK {
		t.Fatal("nil should be OK")
	}
	if CodeOf(errors.New("other")) != EINVAL {
		t.Fatal("foreign errors should map to EINVAL")
	}
}

func TestOpKindNames(t *testing.T) {
	if OpCreate.String() != "create" || OpDropCaches.String() != "dropcaches" {
		t.Fatal("op names wrong")
	}
	if OpKind(99).String() != "op(99)" {
		t.Fatal("unknown op formatting")
	}
	if NumOpKinds != 14 {
		t.Fatalf("NumOpKinds = %d", NumOpKinds)
	}
}

func TestFileTypeNames(t *testing.T) {
	if TypeRegular.String() != "file" || TypeDirectory.String() != "dir" ||
		TypeSymlink.String() != "symlink" || FileType(9).String() != "unknown" {
		t.Fatal("file type names wrong")
	}
}

// stubClient counts nothing itself; used to drive CountingClient.
type stubClient struct{ created map[string]bool }

func newStub() *stubClient { return &stubClient{created: map[string]bool{}} }

func (s *stubClient) Create(p string) error {
	if s.created[p] {
		return NewError("create", p, EEXIST)
	}
	s.created[p] = true
	return nil
}
func (s *stubClient) Open(p string) (Handle, error) {
	if !s.created[p] {
		return 0, NewError("open", p, ENOENT)
	}
	return 1, nil
}
func (s *stubClient) Close(Handle) error        { return nil }
func (s *stubClient) Write(Handle, int64) error { return nil }
func (s *stubClient) Fsync(Handle) error        { return nil }
func (s *stubClient) Mkdir(string) error        { return nil }
func (s *stubClient) Rmdir(string) error        { return nil }
func (s *stubClient) Unlink(string) error       { return nil }
func (s *stubClient) Rename(_, _ string) error  { return nil }
func (s *stubClient) Link(_, _ string) error    { return nil }
func (s *stubClient) Symlink(_, _ string) error { return nil }
func (s *stubClient) Stat(p string) (Attr, error) {
	if !s.created[p] {
		return Attr{}, NewError("stat", p, ENOENT)
	}
	return Attr{Type: TypeRegular}, nil
}
func (s *stubClient) ReadDir(string) ([]DirEntry, error) { return nil, nil }
func (s *stubClient) DropCaches()                        {}

func TestCountingClient(t *testing.T) {
	c := NewCountingClient(newStub())
	c.Create("/a")
	c.Create("/b")
	c.Stat("/a")
	c.Unlink("/a")
	c.DropCaches()
	if c.N.Get(OpCreate) != 2 || c.N.Get(OpStat) != 1 || c.N.Get(OpUnlink) != 1 {
		t.Fatalf("counts = %+v", c.N)
	}
	if c.N.Total() != 5 {
		t.Fatalf("total = %d", c.N.Total())
	}
}

func TestCreateHighLevelVsDirect(t *testing.T) {
	// High-level create stats first (like a scripting runtime file
	// object); direct maps 1:1.
	hl := NewCountingClient(newStub())
	if err := CreateHighLevel(hl, "/f"); err != nil {
		t.Fatal(err)
	}
	if hl.N.Get(OpStat) != 1 || hl.N.Get(OpCreate) != 1 {
		t.Fatalf("high-level counts = %+v", hl.N)
	}
	// Creating over an existing file opens and closes it instead.
	if err := CreateHighLevel(hl, "/f"); err != nil {
		t.Fatal(err)
	}
	if hl.N.Get(OpClose) != 1 {
		t.Fatalf("reopen counts = %+v", hl.N)
	}
	d := NewCountingClient(newStub())
	if err := CreateDirect(d, "/f"); err != nil {
		t.Fatal(err)
	}
	if d.N.Total() != 1 {
		t.Fatalf("direct total = %d", d.N.Total())
	}
}

func TestTopComponent(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a/b/c", "a"},
		{"/a", "a"},
		{"/", ""},
		{"", ""},
		{"rel/path", ""},
		{"/bench/MakeFiles-n8-p16/p000", "bench"},
	}
	for _, c := range cases {
		if got := TopComponent(c.in); got != c.want {
			t.Errorf("TopComponent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
