package fs

import "time"

// LatencyFunc observes one completed operation with its latency.
type LatencyFunc func(kind OpKind, d time.Duration)

// LatencyClient wraps a Client and reports the latency of every
// operation to Observe, using Now as the clock (virtual time inside the
// simulator, wall-clock time in real mode).
type LatencyClient struct {
	Inner   Client
	Now     func() time.Duration
	Observe LatencyFunc
}

// NewLatencyClient returns a latency-observing wrapper.
func NewLatencyClient(inner Client, now func() time.Duration, observe LatencyFunc) *LatencyClient {
	return &LatencyClient{Inner: inner, Now: now, Observe: observe}
}

func (c *LatencyClient) timed(kind OpKind, fn func() error) error {
	start := c.Now()
	err := fn()
	c.Observe(kind, c.Now()-start)
	return err
}

func (c *LatencyClient) Create(p string) error {
	return c.timed(OpCreate, func() error { return c.Inner.Create(p) })
}

func (c *LatencyClient) Open(p string) (Handle, error) {
	var h Handle
	err := c.timed(OpOpen, func() error {
		var e error
		h, e = c.Inner.Open(p)
		return e
	})
	return h, err
}

func (c *LatencyClient) Close(h Handle) error {
	return c.timed(OpClose, func() error { return c.Inner.Close(h) })
}

func (c *LatencyClient) Write(h Handle, n int64) error {
	return c.timed(OpWrite, func() error { return c.Inner.Write(h, n) })
}

func (c *LatencyClient) Fsync(h Handle) error {
	return c.timed(OpFsync, func() error { return c.Inner.Fsync(h) })
}

func (c *LatencyClient) Mkdir(p string) error {
	return c.timed(OpMkdir, func() error { return c.Inner.Mkdir(p) })
}

func (c *LatencyClient) Rmdir(p string) error {
	return c.timed(OpRmdir, func() error { return c.Inner.Rmdir(p) })
}

func (c *LatencyClient) Unlink(p string) error {
	return c.timed(OpUnlink, func() error { return c.Inner.Unlink(p) })
}

func (c *LatencyClient) Rename(oldPath, newPath string) error {
	return c.timed(OpRename, func() error { return c.Inner.Rename(oldPath, newPath) })
}

func (c *LatencyClient) Link(oldPath, newPath string) error {
	return c.timed(OpLink, func() error { return c.Inner.Link(oldPath, newPath) })
}

func (c *LatencyClient) Symlink(target, linkPath string) error {
	return c.timed(OpSymlink, func() error { return c.Inner.Symlink(target, linkPath) })
}

func (c *LatencyClient) Stat(p string) (Attr, error) {
	var a Attr
	err := c.timed(OpStat, func() error {
		var e error
		a, e = c.Inner.Stat(p)
		return e
	})
	return a, err
}

func (c *LatencyClient) ReadDir(p string) ([]DirEntry, error) {
	var ents []DirEntry
	err := c.timed(OpReadDir, func() error {
		var e error
		ents, e = c.Inner.ReadDir(p)
		return e
	})
	return ents, err
}

func (c *LatencyClient) DropCaches() {
	c.timed(OpDropCaches, func() error {
		c.Inner.DropCaches()
		return nil
	})
}
