// Package fs defines the metadata-level file system API that DMetabench
// plugins call and every file system model implements.
//
// The interface mirrors the POSIX system calls catalogued in Chapter 2 of
// the thesis (Tables 2.2–2.4): it is deliberately the lowest common
// denominator of local and distributed file systems, because the whole
// point of the benchmark is to compare implementations behind an
// unchanged API.
package fs

import (
	"fmt"
	"time"
)

// Errno is a POSIX-style error code.
type Errno int

// Error codes used across the file system models.
const (
	OK Errno = iota
	EEXIST
	ENOENT
	ENOTDIR
	EISDIR
	ENOTEMPTY
	EXDEV
	EINVAL
	ENOSPC
	ESTALE
	EBADF
	EMLINK
	EACCES
	// ETIMEDOUT reports an RPC that received no reply (server crashed or
	// unreachable); clients of fault-tolerant models retry on it.
	ETIMEDOUT
)

var errnoNames = map[Errno]string{
	OK: "OK", EEXIST: "EEXIST", ENOENT: "ENOENT", ENOTDIR: "ENOTDIR",
	EISDIR: "EISDIR", ENOTEMPTY: "ENOTEMPTY", EXDEV: "EXDEV",
	EINVAL: "EINVAL", ENOSPC: "ENOSPC", ESTALE: "ESTALE", EBADF: "EBADF",
	EMLINK: "EMLINK", EACCES: "EACCES", ETIMEDOUT: "ETIMEDOUT",
}

func (e Errno) String() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("Errno(%d)", int(e))
}

// Error is a file system error carrying the operation, path and code.
type Error struct {
	Op   string
	Path string
	Code Errno
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s %s: %s", e.Op, e.Path, e.Code)
}

// NewError returns an *Error.
func NewError(op, path string, code Errno) *Error {
	return &Error{Op: op, Path: path, Code: code}
}

// CodeOf extracts the Errno from an error, or OK for nil and EINVAL for
// foreign errors.
func CodeOf(err error) Errno {
	if err == nil {
		return OK
	}
	if fe, ok := err.(*Error); ok {
		return fe.Code
	}
	return EINVAL
}

// IsNotExist reports whether err is an ENOENT error.
func IsNotExist(err error) bool { return CodeOf(err) == ENOENT }

// IsExist reports whether err is an EEXIST error.
func IsExist(err error) bool { return CodeOf(err) == EEXIST }

// IsTimeout reports whether err is an RPC timeout (ETIMEDOUT).
func IsTimeout(err error) bool { return CodeOf(err) == ETIMEDOUT }

// ParentDir returns the parent directory of an already-clean path:
// everything before the final slash, "/" for top-level entries and "."
// for relative names without one. It matches path.Dir for the clean
// absolute paths the benchmark builds, without path.Dir's re-cleaning
// scan — this sits on the per-operation client hot path (parent locks,
// parent lookups), where the extra scan was measurable.
func ParentDir(p string) string {
	i := len(p) - 1
	for i >= 0 && p[i] != '/' {
		i--
	}
	switch {
	case i < 0:
		return "."
	case i == 0:
		return "/"
	default:
		return p[:i]
	}
}

// TopComponent returns the first path component of a clean absolute
// path: "a" for "/a/b/c", "a" for "/a", "" for "/" or paths without a
// leading slash. Namespace-partitioned file systems route requests by
// the top-level subtree, so like ParentDir this sits on the
// per-operation routing hot path and avoids a full Split.
func TopComponent(p string) string {
	if len(p) == 0 || p[0] != '/' {
		return ""
	}
	i := 1
	for i < len(p) && p[i] != '/' {
		i++
	}
	return p[1:i]
}

// FileType distinguishes the inode kinds the benchmark handles.
type FileType uint8

// Inode kinds.
const (
	TypeRegular FileType = iota
	TypeDirectory
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDirectory:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return "unknown"
	}
}

// Ino is an inode number, unique within one file system instance.
type Ino uint64

// Attr carries the standard POSIX attributes of Table 2.1.
type Attr struct {
	Ino    Ino
	Type   FileType
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   int64
	Blocks int64
	Atime  time.Duration // virtual time since simulation start
	Mtime  time.Duration
	Ctime  time.Duration
}

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name string
	Ino  Ino
	Type FileType
}

// Handle identifies an open file within one client.
type Handle int64

// Client is the metadata API that benchmark plugins call. Implementations
// are bound to one calling context (one simulated process on one node, or
// one OS thread in real mode), so methods take no explicit caller.
//
// Create is the open(O_CREAT|O_EXCL)+close pair used by MakeFiles; Open
// and Close manage handles for OpenCloseFiles and for Write.
type Client interface {
	Create(path string) error
	Open(path string) (Handle, error)
	Close(h Handle) error
	Write(h Handle, n int64) error
	Fsync(h Handle) error
	Mkdir(path string) error
	Rmdir(path string) error
	Unlink(path string) error
	Rename(oldPath, newPath string) error
	Link(oldPath, newPath string) error
	Symlink(target, linkPath string) error
	Stat(path string) (Attr, error)
	ReadDir(path string) ([]DirEntry, error)
	// DropCaches discards client-side caches (Linux drop_caches analogue,
	// §3.4.3). File systems with persistent caches (AFS) may retain data.
	DropCaches()
}

// ReadDirPlusser is an optional Client capability: ReadDirPlus lists a
// directory and returns each entry's attributes from the same request —
// the NFSv3 READDIRPLUS / batched-lookup idiom that turns the "ls -l"
// scan of §2.8.3 from one RPC per entry into one RPC per directory,
// filling the client caches as a side effect. attrs[i] describes
// entries[i].
type ReadDirPlusser interface {
	ReadDirPlus(path string) (entries []DirEntry, attrs []Attr, err error)
}

// ReadDirPlus lists path with attributes through c's batched protocol
// when it has one, and otherwise via StatEntries — same result,
// per-entry cost.
func ReadDirPlus(c Client, path string) ([]DirEntry, []Attr, error) {
	if rp, ok := c.(ReadDirPlusser); ok {
		return rp.ReadDirPlus(path)
	}
	return StatEntries(c, path)
}

// StatEntries is the unbatched readdirplus: ReadDir followed by one
// Stat per entry. Clients that do implement the batched protocol use it
// for directories the protocol cannot serve in one request (a root
// spanning every shard of a partitioned namespace).
func StatEntries(c Client, path string) ([]DirEntry, []Attr, error) {
	ents, err := c.ReadDir(path)
	if err != nil {
		return nil, nil, err
	}
	attrs := make([]Attr, len(ents))
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	for i, e := range ents {
		a, serr := c.Stat(prefix + e.Name)
		if serr != nil {
			return nil, nil, serr
		}
		attrs[i] = a
	}
	return ents, attrs, nil
}

// OpKind enumerates client operations for tracing and accounting.
type OpKind int

// Operation kinds, one per Client method.
const (
	OpCreate OpKind = iota
	OpOpen
	OpClose
	OpWrite
	OpFsync
	OpMkdir
	OpRmdir
	OpUnlink
	OpRename
	OpLink
	OpSymlink
	OpStat
	OpReadDir
	OpDropCaches
	opKindCount
)

var opNames = [...]string{
	"create", "open", "close", "write", "fsync", "mkdir", "rmdir",
	"unlink", "rename", "link", "symlink", "stat", "readdir", "dropcaches",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// NumOpKinds is the number of distinct operation kinds.
const NumOpKinds = int(opKindCount)
