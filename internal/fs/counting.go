package fs

// Counts records how many operations of each kind a client issued. It is
// the analogue of the dtrace system call counting in §4.2.1 of the thesis,
// which revealed that Python's high-level file objects issue an extra
// fstat per open.
type Counts [NumOpKinds]int64

// Total returns the sum over all operation kinds.
func (c *Counts) Total() int64 {
	var t int64
	for _, n := range c {
		t += n
	}
	return t
}

// Get returns the count for one kind.
func (c *Counts) Get(k OpKind) int64 { return c[k] }

// CountingClient wraps a Client and counts every issued operation.
type CountingClient struct {
	Inner Client
	N     Counts
}

// NewCountingClient returns a counting wrapper around inner.
func NewCountingClient(inner Client) *CountingClient {
	return &CountingClient{Inner: inner}
}

func (c *CountingClient) Create(path string) error {
	c.N[OpCreate]++
	return c.Inner.Create(path)
}

func (c *CountingClient) Open(path string) (Handle, error) {
	c.N[OpOpen]++
	return c.Inner.Open(path)
}

func (c *CountingClient) Close(h Handle) error {
	c.N[OpClose]++
	return c.Inner.Close(h)
}

func (c *CountingClient) Write(h Handle, n int64) error {
	c.N[OpWrite]++
	return c.Inner.Write(h, n)
}

func (c *CountingClient) Fsync(h Handle) error {
	c.N[OpFsync]++
	return c.Inner.Fsync(h)
}

func (c *CountingClient) Mkdir(path string) error {
	c.N[OpMkdir]++
	return c.Inner.Mkdir(path)
}

func (c *CountingClient) Rmdir(path string) error {
	c.N[OpRmdir]++
	return c.Inner.Rmdir(path)
}

func (c *CountingClient) Unlink(path string) error {
	c.N[OpUnlink]++
	return c.Inner.Unlink(path)
}

func (c *CountingClient) Rename(oldPath, newPath string) error {
	c.N[OpRename]++
	return c.Inner.Rename(oldPath, newPath)
}

func (c *CountingClient) Link(oldPath, newPath string) error {
	c.N[OpLink]++
	return c.Inner.Link(oldPath, newPath)
}

func (c *CountingClient) Symlink(target, linkPath string) error {
	c.N[OpSymlink]++
	return c.Inner.Symlink(target, linkPath)
}

func (c *CountingClient) Stat(path string) (Attr, error) {
	c.N[OpStat]++
	return c.Inner.Stat(path)
}

func (c *CountingClient) ReadDir(path string) ([]DirEntry, error) {
	c.N[OpReadDir]++
	return c.Inner.ReadDir(path)
}

func (c *CountingClient) DropCaches() {
	c.N[OpDropCaches]++
	c.Inner.DropCaches()
}

// File is a convenience high-level file object in the style of scripting
// language runtimes. CreateHighLevel mimics Python's file object
// construction: it stats the path first (to reject directories) before
// opening, issuing one extra metadata operation per create — exactly the
// behaviour §4.2.1 uncovered with dtrace. CreateDirect is the thin
// wrapper that maps 1:1 onto the API, like Python's os module.
func CreateHighLevel(c Client, path string) error {
	if a, err := c.Stat(path); err == nil && a.Type == TypeDirectory {
		return NewError("open", path, EISDIR)
	}
	h, err := c.Open(path)
	if err != nil {
		if !IsNotExist(err) {
			return err
		}
		if err := c.Create(path); err != nil {
			return err
		}
		return nil
	}
	return c.Close(h)
}

// CreateDirect creates path with the minimal operation sequence.
func CreateDirect(c Client, path string) error {
	return c.Create(path)
}
