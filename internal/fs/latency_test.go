package fs

import (
	"testing"
	"time"
)

func TestLatencyClientObserves(t *testing.T) {
	clock := time.Duration(0)
	now := func() time.Duration { return clock }
	var lastKind OpKind
	var lastD time.Duration
	count := 0
	lc := NewLatencyClient(newStub(), now, func(kind OpKind, d time.Duration) {
		lastKind, lastD = kind, d
		count++
	})
	lc.Create("/f")
	if lastKind != OpCreate || count != 1 {
		t.Fatalf("kind=%v count=%d", lastKind, count)
	}
	if lastD != 0 {
		t.Fatalf("latency = %v with frozen clock", lastD)
	}
	lc.Stat("/f")
	if lastKind != OpStat || count != 2 {
		t.Fatalf("kind=%v count=%d", lastKind, count)
	}
	h, _ := lc.Open("/f")
	lc.Write(h, 10)
	lc.Fsync(h)
	lc.Close(h)
	lc.Mkdir("/d")
	lc.Rmdir("/d")
	lc.Rename("/f", "/g")
	lc.Link("/g", "/h")
	lc.Symlink("/g", "/sym")
	lc.Unlink("/h")
	lc.ReadDir("/")
	lc.DropCaches()
	if count != 14 {
		t.Fatalf("count = %d, want every call observed", count)
	}
}
