// Package sim implements a deterministic, cooperative discrete-event
// simulation kernel.
//
// A Kernel owns a virtual clock and a set of processes. Each process is a
// goroutine, but exactly one process executes at a time: a process runs
// until it blocks (Sleep, semaphore wait, barrier, queue receive ...) and
// the kernel then resumes the process with the earliest pending event.
// Ties are broken by event sequence number, so runs are fully
// deterministic: the same program produces the same event order and the
// same virtual timings on every run.
//
// The kernel is the substrate for every simulated subsystem in this
// repository: cluster nodes, networks, storage devices and the file system
// models are all built from sim processes and sim resources. Strict
// determinism is what makes the thesis methodology reproducible here: the
// per-interval traces and COV analysis of §3.2.5/§3.3.9 — and the fault
// timelines injected on top of them — come out byte-identical for a
// given seed.
//
// Scheduling is built for throughput: the event queue is a concrete-typed
// binary heap (no interface boxing, storage reused across events), a
// parking process hands control directly to the next runnable process
// without a round trip through the kernel goroutine, and a process whose
// wake-up would be the next event anyway (a Sleep with no earlier pending
// event) simply advances the clock and keeps running — no heap traffic
// and no channel handshake at all.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// forever is the run horizon of an unbounded Run call.
const forever = Time(math.MaxInt64)

// event is a scheduled wake-up of a process.
type event struct {
	at  Time
	seq int64
	p   *Proc
}

// lessThan orders events by (at, seq); seq ties never occur.
func (a event) lessThan(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ordered is satisfied by heap elements that know their own ordering.
type ordered[T any] interface {
	lessThan(T) bool
}

// minHeap is a concrete-typed binary min-heap shared by the kernel event
// queue and the synchronization wait queues. Compared to container/heap
// it avoids the interface{} boxing that costs one allocation per entry;
// the backing slice is reused for the lifetime of the kernel, so
// steady-state scheduling does not allocate.
type minHeap[T ordered[T]] struct {
	e []T
}

func (h *minHeap[T]) len() int { return len(h.e) }

func (h *minHeap[T]) push(v T) {
	e := append(h.e, v)
	i := len(e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e[i].lessThan(e[parent]) {
			break
		}
		e[i], e[parent] = e[parent], e[i]
		i = parent
	}
	h.e = e
}

func (h *minHeap[T]) pop() T {
	e := h.e
	top := e[0]
	n := len(e) - 1
	e[0] = e[n]
	var zero T
	e[n] = zero // clear the popped slot so interior pointers can be collected
	e = e[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e[r].lessThan(e[l]) {
			m = r
		}
		if !e[m].lessThan(e[i]) {
			break
		}
		e[i], e[m] = e[m], e[i]
		i = m
	}
	h.e = e
	return top
}

// eventHeap is the kernel's scheduling queue.
type eventHeap = minHeap[event]

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call New.
type Kernel struct {
	now     Time
	seq     int64
	queue   eventHeap
	parked  chan *Proc // handshake: control returns to Run/RunFor
	live    int        // procs started and not yet finished
	daemons int        // live daemon procs (ignored for termination)
	blocked int        // procs waiting on a condition (not in queue)
	rng     *rand.Rand
	procSeq int
	halted  bool
	horizon Time    // events beyond this virtual time stay queued
	procs   []*Proc // all spawned procs, for deadlock diagnostics
	// dispatched counts events executed by this kernel — in a domain
	// group it is the per-domain work share, the quantity the parallel
	// speedup bound is computed from (DESIGN.md, "Parallel DES").
	dispatched int64
	// dom is non-nil when this kernel is one domain of a DomainGroup
	// (domain.go); scheduling then runs in lookahead windows and
	// termination is decided at group level.
	dom *Domain
	// free holds idle pooled trampoline procs for cross-domain message
	// delivery (spawnMsgAt): one goroutine + Proc + channel is reused
	// across messages instead of being created per message. Only ever
	// touched while holding the kernel's single execution token.
	free []*Proc
}

// New returns a kernel whose random source is seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		parked:  make(chan *Proc),
		rng:     rand.New(rand.NewSource(seed)),
		horizon: forever,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from running sim processes (or before Run).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

func (k *Kernel) nextSeq() int64 {
	k.seq++
	return k.seq
}

// schedule enqueues a wake-up for p at time at (>= now).
func (k *Kernel) schedule(p *Proc, at Time) {
	if at < k.now {
		at = k.now
	}
	k.queue.push(event{at: at, seq: k.nextSeq(), p: p})
}

// scheduleSeq enqueues a wake-up under a caller-provided sequence number
// without advancing the kernel counter. Cross-domain delivery uses it so
// a message's heap position is intrinsic to the send (sender sequence and
// domain), never to delivery timing — the local sequence stream stays
// identical whatever the window structure (see domain.go, msgSeqBase).
func (k *Kernel) scheduleSeq(p *Proc, at Time, seq int64) {
	if at < k.now {
		at = k.now
	}
	k.queue.push(event{at: at, seq: seq, p: p})
}

// runsBefore reports whether some queued event runs strictly before a
// wake-up scheduled now at time at would: it is earlier, or ties with a
// local (pre-msgSeqBase) sequence number, which is necessarily older
// than the sequence a fresh wake-up would draw.
func (k *Kernel) runsBefore(at Time) bool {
	if k.queue.len() == 0 {
		return false
	}
	h := &k.queue.e[0]
	return h.at < at || (h.at == at && h.seq < msgSeqBase)
}

// dispatchNext pops the earliest runnable event and hands control to its
// process. It reports false when nothing may run: the queue is empty,
// only daemons remain live, or the next event lies beyond the run
// horizon — in those cases the caller must return control to the kernel
// goroutine instead.
func (k *Kernel) dispatchNext() bool {
	if k.queue.len() == 0 || k.queue.e[0].at > k.horizon {
		return false
	}
	if k.live <= k.daemons && k.dom == nil {
		// Only daemons left: a plain kernel terminates, but a domain
		// kernel keeps its daemons on the window grid — the group
		// decides termination from the global live count.
		return false
	}
	ev := k.queue.pop()
	if ev.p.done {
		panic(fmt.Sprintf("sim: stale event at %v (seq %d) for finished proc %q", ev.at, ev.seq, ev.p.name))
	}
	if ev.at > k.now {
		k.now = ev.at
	}
	k.dispatched++
	ev.p.resume <- struct{}{}
	return true
}

// Dispatched returns the number of events this kernel has executed. In a
// domain group each member kernel counts its own events, so the per-
// domain shares expose how evenly the parallel workload is distributed.
func (k *Kernel) Dispatched() int64 { return k.dispatched }

// Proc is a simulated process. Procs are created with Kernel.Spawn or
// Proc.Spawn and must only call kernel methods while running (i.e. from
// their own goroutine, between resumptions).
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	done   bool
	daemon bool
	// fn is the pending body of a pooled trampoline proc (spawnMsgAt);
	// always nil for ordinary procs.
	fn func(p *Proc)
	// slot is this proc's index in k.procs; finished procs are
	// swap-removed so the diagnostics slice never pins dead procs (the
	// domained substrate spawns one short-lived proc per cross-domain
	// message, and a growing graveyard is pure GC scan load).
	slot int
	// waiters are procs blocked in Join on this proc.
	waiters []*Proc
	// blockedOn is a short description of the current blocking reason,
	// used in deadlock reports.
	blockedOn string
	// Ctx is a free slot for harness layers (internal/simnet threads its
	// cross-domain call context through it); the kernel never touches it.
	Ctx any
}

// ID returns the process id (assigned in spawn order, starting at 1).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn starts fn as a new simulated process scheduled at the current
// virtual time. It may be called before Run (to create initial processes)
// or from a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon starts fn as a daemon process: Run and RunFor terminate as
// soon as no non-daemon processes remain live, regardless of pending
// daemon events. Background services (consistency-point writers, journal
// committers, cache flushers) are daemons.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

// spawnAt is spawn with the first scheduling at a future time instead of
// now — the delivery primitive for cross-domain messages.
func (k *Kernel) spawnAt(name string, at Time, fn func(p *Proc)) *Proc {
	p := k.spawnProc(name, fn, false)
	k.schedule(p, at)
	return p
}

func (k *Kernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := k.spawnProc(name, fn, daemon)
	k.schedule(p, k.now)
	return p
}

func (k *Kernel) spawnProc(name string, fn func(p *Proc), daemon bool) *Proc {
	k.procSeq++
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{}), daemon: daemon}
	k.live++
	if daemon {
		k.daemons++
	}
	p.slot = len(k.procs)
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume // wait for first scheduling
		fn(p)
		p.done = true
		k.removeProc(p)
		k.live--
		if p.daemon {
			k.daemons--
		}
		for _, w := range p.waiters {
			w.blockedOn = ""
			k.blocked--
			k.schedule(w, k.now)
		}
		p.waiters = nil
		// Hand control to the next runnable process; wake the kernel
		// goroutine only when nothing may run.
		if !k.dispatchNext() {
			k.parked <- p
		}
	}()
	return p
}

// spawnMsgAt schedules fn like spawnAt but on a pooled trampoline proc,
// under the caller-provided event sequence number: cross-domain delivery
// creates one short-lived proc per message, and recycling the goroutine,
// Proc and resume channel keeps that off the allocator and the GC scan
// set. Pooled procs are invisible outside the kernel — deliver() never
// hands the *Proc to callers, so the reuse can never confuse a Join
// (which is the reason plain Spawn does not pool).
func (k *Kernel) spawnMsgAt(name string, at Time, seq int64, fn func(p *Proc)) {
	if n := len(k.free); n > 0 {
		p := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		k.procSeq++
		p.id = k.procSeq
		p.name = name
		p.fn = fn
		p.done = false
		p.slot = len(k.procs)
		k.procs = append(k.procs, p)
		k.live++
		k.scheduleSeq(p, at, seq)
		return
	}
	k.procSeq++
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{}), fn: fn}
	k.live++
	p.slot = len(k.procs)
	k.procs = append(k.procs, p)
	go func() {
		for {
			<-p.resume // wait for (re)scheduling
			p.fn(p)
			p.fn = nil
			p.done = true
			k.removeProc(p)
			k.live--
			for _, w := range p.waiters {
				w.blockedOn = ""
				k.blocked--
				k.schedule(w, k.now)
			}
			p.waiters = nil
			p.Ctx = nil
			k.free = append(k.free, p)
			// Hand control to the next runnable process; wake the kernel
			// goroutine only when nothing may run.
			if !k.dispatchNext() {
				k.parked <- p
			}
		}
	}()
	k.scheduleSeq(p, at, seq)
}

// removeProc swap-removes a finished proc from the diagnostics slice.
// It runs on the exiting proc's goroutine, which holds the kernel's
// single execution token, so no other proc or the kernel goroutine can
// touch k.procs concurrently.
func (k *Kernel) removeProc(p *Proc) {
	last := len(k.procs) - 1
	if p.slot < 0 || p.slot > last || k.procs[p.slot] != p {
		return
	}
	q := k.procs[last]
	k.procs[p.slot] = q
	q.slot = p.slot
	k.procs[last] = nil
	k.procs = k.procs[:last]
	p.slot = -1
}

// Spawn starts a child process from a running process.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.k.Spawn(name, fn)
}

// AfterFunc spawns a daemon process that sleeps d of virtual time and
// then runs fn — the timer primitive behind deterministic disturbance
// and fault injection (internal/fault). Because the timer is a daemon,
// it only fires while non-daemon processes keep the simulation alive: an
// injection scheduled beyond the end of the workload never runs, and
// never prevents termination.
func (k *Kernel) AfterFunc(name string, d Time, fn func(p *Proc)) *Proc {
	return k.SpawnDaemon(name, func(p *Proc) {
		p.Sleep(d)
		fn(p)
	})
}

// park transfers control to the next runnable process (or, when nothing
// may run, back to the kernel goroutine) and waits to be resumed.
func (p *Proc) park(reason string) {
	p.blockedOn = reason
	if !p.k.dispatchNext() {
		p.k.parked <- p
	}
	<-p.resume
	p.blockedOn = ""
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time (yield).
func (p *Proc) Sleep(d Time) {
	k := p.k
	if k.halted {
		panic(ErrHalted)
	}
	if d < 0 {
		d = 0
	}
	at := k.now + d
	if at < k.now {
		// Overflow (sleep-forever idioms): schedule() would clamp the
		// wake-up to now; the fast path must not move the clock backwards.
		at = k.now
	}
	// Fast path: if no pending event precedes this wake-up, the scheduler
	// would hand control straight back to this process — advance the
	// clock in place and skip the heap and channel round trip entirely.
	// Ties go to a queued local event (its sequence number is older), but
	// a delivered cross-domain message carries an intrinsic sequence at or
	// above msgSeqBase and loses the tie to a local wake-up — exactly as
	// the slow path would order them. The message tie MUST take the fast
	// path: the slow path would pop this proc's own wake-up (its fresh
	// local sequence sorts below msgSeqBase) and self-deadlock on resume.
	if at <= k.horizon && !k.runsBefore(at) {
		k.now = at
		return
	}
	k.schedule(p, at)
	p.park("sleep")
}

// Yield reschedules the process at the current time, letting other
// processes scheduled for the same instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block suspends the process without scheduling a wake-up; some other
// process must call k.wake(p). Used by synchronization primitives.
func (p *Proc) block(reason string) {
	p.k.blocked++
	p.park(reason)
}

// wake schedules a blocked process to resume at the current time.
func (k *Kernel) wake(p *Proc) {
	k.blocked--
	k.schedule(p, k.now)
}

// Join blocks until q has finished.
func (p *Proc) Join(q *Proc) {
	if q.done {
		return
	}
	q.waiters = append(q.waiters, p)
	p.block("join:" + q.name)
}

// ErrHalted is the panic value raised in processes that call Sleep after
// the kernel stopped.
var ErrHalted = fmt.Errorf("sim: kernel halted")

// DeadlockError reports the simulation stopping with live, blocked
// processes and no pending events.
type DeadlockError struct {
	Blocked []string // "name (reason)" per blocked proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d blocked process(es): %v", len(e.Blocked), e.Blocked)
}

// Run executes the simulation until no events remain. It returns a
// *DeadlockError if live processes remain blocked with an empty event
// queue, and nil otherwise. On a kernel that belongs to a DomainGroup,
// Run drives the whole group's window loop — callers need not know
// whether the simulation was partitioned.
func (k *Kernel) Run() error {
	if k.dom != nil {
		return k.dom.g.Run()
	}
	return k.run(forever)
}

func (k *Kernel) blockedProcNames() []string {
	var names []string
	for _, p := range k.procs {
		if !p.done && !p.daemon && p.blockedOn != "" {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, p.blockedOn))
		}
	}
	if len(names) == 0 {
		names = append(names, fmt.Sprintf("%d live (details unavailable)", k.live))
	}
	return names
}

// RunFor executes the simulation until virtual time t or until no events
// remain, whichever comes first. Processes still runnable when t is
// reached remain parked; a subsequent Run/RunFor continues them.
func (k *Kernel) RunFor(t Time) error {
	if k.dom != nil {
		return k.dom.g.RunFor(t)
	}
	return k.run(t)
}

// run drives the simulation with the given horizon. Control stays inside
// the web of process goroutines (direct handoff in park) and only comes
// back here — via the parked channel — when no process may run; the loop
// then decides between termination, horizon stop and deadlock. The
// switch cases mirror dispatchNext's gating conditions one to one, which
// is what lets it delegate the actual handoff.
func (k *Kernel) run(horizon Time) error {
	k.horizon = horizon
	for {
		switch {
		case k.live <= k.daemons:
			return nil // only daemons (or nothing) left
		case k.queue.len() == 0:
			return &DeadlockError{Blocked: k.blockedProcNames()}
		case k.queue.e[0].at > horizon:
			k.now = horizon
			return nil
		}
		k.dispatchNext()
		<-k.parked
	}
}
