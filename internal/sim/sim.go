// Package sim implements a deterministic, cooperative discrete-event
// simulation kernel.
//
// A Kernel owns a virtual clock and a set of processes. Each process is a
// goroutine, but exactly one process executes at a time: a process runs
// until it blocks (Sleep, semaphore wait, barrier, queue receive ...) and
// the kernel then resumes the process with the earliest pending event.
// Ties are broken by event sequence number, so runs are fully
// deterministic: the same program produces the same event order and the
// same virtual timings on every run.
//
// The kernel is the substrate for every simulated subsystem in this
// repository: cluster nodes, networks, storage devices and the file system
// models are all built from sim processes and sim resources.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// event is a scheduled wake-up of a process.
type event struct {
	at  Time
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call New.
type Kernel struct {
	now     Time
	seq     int64
	queue   eventHeap
	parked  chan *Proc // handshake: a proc announces it has blocked or exited
	live    int        // procs started and not yet finished
	daemons int        // live daemon procs (ignored for termination)
	blocked int        // procs waiting on a condition (not in queue)
	rng     *rand.Rand
	procSeq int
	halted  bool
	procs   []*Proc // all spawned procs, for deadlock diagnostics
}

// New returns a kernel whose random source is seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		parked: make(chan *Proc),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from running sim processes (or before Run).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

func (k *Kernel) nextSeq() int64 {
	k.seq++
	return k.seq
}

// schedule enqueues a wake-up for p at time at (>= now).
func (k *Kernel) schedule(p *Proc, at Time) {
	if at < k.now {
		at = k.now
	}
	heap.Push(&k.queue, event{at: at, seq: k.nextSeq(), p: p})
}

// Proc is a simulated process. Procs are created with Kernel.Spawn or
// Proc.Spawn and must only call kernel methods while running (i.e. from
// their own goroutine, between resumptions).
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	done   bool
	daemon bool
	// waiters are procs blocked in Join on this proc.
	waiters []*Proc
	// blockedOn is a short description of the current blocking reason,
	// used in deadlock reports.
	blockedOn string
}

// ID returns the process id (assigned in spawn order, starting at 1).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn starts fn as a new simulated process scheduled at the current
// virtual time. It may be called before Run (to create initial processes)
// or from a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon starts fn as a daemon process: Run and RunFor terminate as
// soon as no non-daemon processes remain live, regardless of pending
// daemon events. Background services (consistency-point writers, journal
// committers, cache flushers) are daemons.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *Kernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	k.procSeq++
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{}), daemon: daemon}
	k.live++
	if daemon {
		k.daemons++
	}
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume // wait for first scheduling
		fn(p)
		p.done = true
		k.live--
		if p.daemon {
			k.daemons--
		}
		for _, w := range p.waiters {
			w.blockedOn = ""
			k.blocked--
			k.schedule(w, k.now)
		}
		p.waiters = nil
		k.parked <- p
	}()
	k.schedule(p, k.now)
	return p
}

// Spawn starts a child process from a running process.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.k.Spawn(name, fn)
}

// park transfers control back to the kernel and waits to be resumed.
func (p *Proc) park(reason string) {
	p.blockedOn = reason
	p.k.parked <- p
	<-p.resume
	p.blockedOn = ""
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time (yield).
func (p *Proc) Sleep(d Time) {
	if p.k.halted {
		panic(ErrHalted)
	}
	if d < 0 {
		d = 0
	}
	p.k.schedule(p, p.k.now+d)
	p.park("sleep")
}

// Yield reschedules the process at the current time, letting other
// processes scheduled for the same instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block suspends the process without scheduling a wake-up; some other
// process must call k.wake(p). Used by synchronization primitives.
func (p *Proc) block(reason string) {
	p.k.blocked++
	p.park(reason)
}

// wake schedules a blocked process to resume at the current time.
func (k *Kernel) wake(p *Proc) {
	k.blocked--
	k.schedule(p, k.now)
}

// Join blocks until q has finished.
func (p *Proc) Join(q *Proc) {
	if q.done {
		return
	}
	q.waiters = append(q.waiters, p)
	p.block("join:" + q.name)
}

// ErrHalted is the panic value raised in processes that call Sleep after
// the kernel stopped.
var ErrHalted = fmt.Errorf("sim: kernel halted")

// DeadlockError reports the simulation stopping with live, blocked
// processes and no pending events.
type DeadlockError struct {
	Blocked []string // "name (reason)" per blocked proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d blocked process(es): %v", len(e.Blocked), e.Blocked)
}

// Run executes the simulation until no events remain. It returns a
// *DeadlockError if live processes remain blocked with an empty event
// queue, and nil otherwise. Run must only be called once.
func (k *Kernel) Run() error {
	for k.queue.Len() > 0 && k.live > k.daemons {
		ev := heap.Pop(&k.queue).(event)
		if ev.at > k.now {
			k.now = ev.at
		}
		ev.p.resume <- struct{}{}
		<-k.parked
	}
	if k.live > k.daemons {
		return &DeadlockError{Blocked: k.blockedProcNames()}
	}
	return nil
}

func (k *Kernel) blockedProcNames() []string {
	var names []string
	for _, p := range k.procs {
		if !p.done && !p.daemon && p.blockedOn != "" {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, p.blockedOn))
		}
	}
	if len(names) == 0 {
		names = append(names, fmt.Sprintf("%d live (details unavailable)", k.live))
	}
	return names
}

// RunFor executes the simulation until virtual time t or until no events
// remain, whichever comes first. Processes still runnable when t is
// reached remain parked; a subsequent Run/RunFor continues them.
func (k *Kernel) RunFor(t Time) error {
	for k.queue.Len() > 0 && k.live > k.daemons {
		if k.queue[0].at > t {
			k.now = t
			return nil
		}
		ev := heap.Pop(&k.queue).(event)
		if ev.at > k.now {
			k.now = ev.at
		}
		ev.p.resume <- struct{}{}
		<-k.parked
	}
	if k.live > k.daemons {
		return &DeadlockError{Blocked: k.blockedProcNames()}
	}
	return nil
}
