package sim

import (
	"testing"
	"time"
)

func TestSleepOrdering(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		order = append(order, "a")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(1 * time.Millisecond)
		order = append(order, "b")
	})
	k.Spawn("c", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		order = append(order, "c")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", k.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestJoin(t *testing.T) {
	k := New(1)
	var childDone, sawChild bool
	child := k.Spawn("child", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		childDone = true
	})
	k.Spawn("parent", func(p *Proc) {
		p.Join(child)
		sawChild = childDone
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawChild {
		t.Fatal("parent resumed before child finished")
	}
}

func TestJoinFinished(t *testing.T) {
	k := New(1)
	child := k.Spawn("child", func(p *Proc) {})
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Join(child) // already done; must not block
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := New(1)
	m := NewMutex(k, "m")
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(time.Millisecond)
				inside--
				m.Unlock()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
	// 5 procs * 10 critical sections * 1ms, fully serialized.
	if k.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v, want 50ms", k.Now())
	}
}

func TestSemaphoreCounting(t *testing.T) {
	k := New(1)
	s := NewSemaphore(k, "s", 3)
	inside, maxInside := 0, 0
	for i := 0; i < 9; i++ {
		k.Spawn("p", func(p *Proc) {
			s.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Millisecond)
			inside--
			s.Release(1)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 3 {
		t.Fatalf("maxInside = %d, want 3", maxInside)
	}
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms (9 procs / 3 slots)", k.Now())
	}
}

func TestSemaphoreMultiUnit(t *testing.T) {
	k := New(1)
	s := NewSemaphore(k, "bytes", 100)
	got := []int64{}
	k.Spawn("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Acquire(p, 80) // must wait for initial holder
		got = append(got, 80)
		s.Release(80)
	})
	k.Spawn("holder", func(p *Proc) {
		s.Acquire(p, 50)
		p.Sleep(5 * time.Millisecond)
		s.Release(50)
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		// Arrives after big; must not barge past it even though 30 <= 50.
		s.Acquire(p, 30)
		got = append(got, 30)
		s.Release(30)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 80 || got[1] != 30 {
		t.Fatalf("service order = %v, want [80 30] (no barging)", got)
	}
}

func TestBarrierRounds(t *testing.T) {
	k := New(1)
	b := NewBarrier(k, "b", 4)
	phase := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(time.Duration(i+1) * time.Millisecond)
				phase[i]++
				b.Wait(p)
				// After the barrier, all must have completed this round.
				for j := range phase {
					if phase[j] != r+1 {
						t.Errorf("round %d: phase[%d]=%d", r, j, phase[j])
					}
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityQueueing(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 1)
	var order []string
	k.Spawn("holder", func(p *Proc) { r.Use(p, 10*time.Millisecond) })
	k.Spawn("low", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.UsePri(p, time.Millisecond, 5)
		order = append(order, "low")
	})
	k.Spawn("high", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // arrives after low
		r.UsePri(p, time.Millisecond, 1)
		order = append(order, "high")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "high" {
		t.Fatalf("order = %v, want high first", order)
	}
}

func TestQueuePutGet(t *testing.T) {
	k := New(1)
	q := NewQueue(k, "q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New(1)
	m := NewMutex(k, "m")
	k.Spawn("selfdead", func(p *Proc) {
		m.Lock(p)
		m.Lock(p) // deadlock
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestRunFor(t *testing.T) {
	k := New(1)
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var log []int64
		r := NewResource(k, "disk", 2)
		for i := 0; i < 20; i++ {
			k.Spawn("w", func(p *Proc) {
				for j := 0; j < 5; j++ {
					d := time.Duration(k.Rand().Intn(1000)) * time.Microsecond
					r.Use(p, d)
					log = append(log, int64(p.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := New(1)
	total := 0
	k.Spawn("root", func(p *Proc) {
		var kids []*Proc
		for i := 0; i < 3; i++ {
			kids = append(kids, p.Spawn("kid", func(q *Proc) {
				q.Sleep(time.Millisecond)
				total++
			}))
		}
		for _, kid := range kids {
			p.Join(kid)
		}
		total *= 10
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 30 {
		t.Fatalf("total = %d, want 30", total)
	}
}

func BenchmarkKernelEvents(b *testing.B) {
	k := New(1)
	k.Spawn("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N), "events")
}
