// Conservative-lookahead parallel execution: a DomainGroup partitions
// one simulation into N kernel domains — each with its own event heap,
// clock, sequence counters and random source — that execute windows of
// virtual time concurrently on real OS threads and exchange timestamped
// messages between windows.
//
// The protocol is the classic conservative (null-message-free, barrier
// style) scheme: if every cross-domain interaction carries a minimum
// delay L (the lookahead — for the sharded MDS model, the interconnect
// latency floor Config.CrossShardLatency), then after all mailboxes are
// drained the events in the window [M, M+L) — M being the global
// minimum pending event time — are causally independent across domains:
// any message sent while executing an event at t >= M arrives at
// t+delay >= M+L, beyond the window. Each domain may therefore run its
// slice of the window in isolation, on its own thread, with no locks on
// the hot path.
//
// Determinism does not depend on the number of worker threads: domains
// only interact through mailboxes that are drained at window edges and
// sorted by (arrival time, sender domain, sender sequence), so the
// merged event order — and every simulation result — is byte-identical
// whether the group runs on one worker or one per domain. The
// determinism matrix test in internal/core pins exactly that.
//
// Windows are adaptive by default (DomainGroup.Adaptive): when a single
// domain holds the global minimum event time, its window extends to the
// second-minimum next-event time plus the lookahead — the earliest
// instant anything can reach it — instead of the worst-case fixed edge,
// with dynamic horizon clamps guarding against arrivals the extended
// window itself provokes (sends, sync registrations). The schedule is
// byte-identical to fixed windows; only the window count drops.
//
// Rare global transitions that cannot be expressed as priced messages
// (server crashes, failover takeovers, split re-partitioning) register
// sync points: virtual times at which every domain rendezvous exactly.
// A sync point forces a window edge; the registered functions run on the
// coordinating goroutine while every domain is parked at that instant,
// so they may touch any domain's state race-free, and every domain
// observes the transition at the same virtual time. Because domains
// resume only after the coordinating barrier, cross-domain reads of
// sync-point-managed state need no locks either: the barrier is the
// happens-before edge.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Domain is one partition of a grouped simulation: a kernel plus its
// mailbox. Domain 0 is the kernel the group was built from (clients and
// the benchmark master in the sharded model); further domains host one
// shard each.
type Domain struct {
	id int
	k  *Kernel
	g  *DomainGroup

	mu    sync.Mutex
	inbox []message

	// sendSeq orders messages from this domain; only the goroutine
	// currently executing this domain's window touches it.
	sendSeq int64
}

// message is one cross-domain event in flight. Exactly one of fn and
// wake is set: fn runs as a fresh (pooled) process at the arrival time,
// wake resumes an existing blocked process (the reply leg of Call, which
// needs no body of its own — carrying the target directly saves the
// closure and the trampoline dispatch).
type message struct {
	at   Time
	src  int   // sender domain id
	seq  int64 // sender-local sequence
	name string
	fn   func(p *Proc)
	wake *Proc
}

// msgSeqBase offsets delivered-message sequence numbers far above any
// kernel-local sequence. A delivered message's heap position is derived
// from its *intrinsic* identity — (sender sequence, sender domain) — not
// from the destination's sequence counter at delivery time, so the order
// of same-timestamp events never depends on which window edge happened
// to deliver the message. That invariance is what lets adaptive windows
// (variable edges) produce byte-identical schedules to fixed windows.
const msgSeqBase = int64(1) << 62

// syncPoint is a registered global rendezvous.
type syncPoint struct {
	at  Time
	src int
	seq int64
	fn  func()
}

// DomainGroup coordinates a set of domains through the window protocol.
type DomainGroup struct {
	domains   []*Domain
	lookahead Time

	// Workers is the number of OS threads that execute domain windows
	// (default: min(domains, NumCPU)). Results are identical for any
	// value >= 1; tests pin 1 vs N to prove it.
	Workers int

	// Adaptive widens one domain's window past the classic fixed edge
	// when it is the unique holder of the minimum pending event time:
	// that domain may run to (second-minimum next-event time + lookahead)
	// instead of (minimum + lookahead), because no other domain can
	// produce an arrival before that. Two dynamic clamps keep the
	// extension safe against work the window itself creates — see run().
	// Defaults on; results are byte-identical either way (tests pin it),
	// adaptive just reaches the same schedule in fewer, fuller windows.
	Adaptive bool

	// CheckCausality enables the invariant checker: every cross-domain
	// send must carry at least the lookahead, and no domain may be past
	// an in-flight message's arrival time when it is delivered. The
	// checks are cheap compares, so they default on; a violation is a
	// protocol bug and panics with a diagnostic.
	CheckCausality bool

	mu      sync.Mutex
	syncs   []syncPoint
	syncSeq int64

	windows int64  // completed windows, for stats/tests
	ends    []Time // per-domain window ends, reused across windows
}

// Lookahead returns the group's lookahead window width.
func (g *DomainGroup) Lookahead() Time { return g.lookahead }

// NumDomains returns the number of domains in the group.
func (g *DomainGroup) NumDomains() int { return len(g.domains) }

// Windows returns the number of synchronization windows executed so far.
func (g *DomainGroup) Windows() int64 { return g.windows }

// Kernel returns domain i's kernel. Domain 0 is the kernel the group was
// built from.
func (g *DomainGroup) Kernel(i int) *Kernel { return g.domains[i].k }

// AddDomains converts k into domain 0 of a new group and creates n
// further domains whose kernels share the deterministic seed lineage
// (each derived from k's random source). lookahead is the minimum delay
// every cross-domain interaction must carry; it must be positive.
//
// Must be called before k runs. Kernel.Run/RunFor on any member kernel
// drive the whole group afterwards.
func AddDomains(k *Kernel, n int, lookahead Time) *DomainGroup {
	if k.dom != nil {
		panic("sim: kernel already belongs to a domain group")
	}
	if lookahead <= 0 {
		panic("sim: domain lookahead must be positive")
	}
	if n < 1 {
		panic("sim: AddDomains needs at least one extra domain")
	}
	g := &DomainGroup{lookahead: lookahead, CheckCausality: true, Adaptive: true}
	attach := func(kn *Kernel) {
		d := &Domain{id: len(g.domains), k: kn, g: g}
		kn.dom = d
		g.domains = append(g.domains, d)
	}
	attach(k)
	for i := 0; i < n; i++ {
		attach(New(k.rng.Int63()))
	}
	g.Workers = len(g.domains)
	if cpus := runtime.NumCPU(); g.Workers > cpus {
		g.Workers = cpus
	}
	return g
}

// Group returns the domain group k belongs to, or nil for a plain
// single-heap kernel.
func (k *Kernel) Group() *DomainGroup {
	if k.dom == nil {
		return nil
	}
	return k.dom.g
}

// DomainID returns the id of the domain k hosts (0 for a plain kernel).
func (k *Kernel) DomainID() int {
	if k.dom == nil {
		return 0
	}
	return k.dom.id
}

// Post sends a cross-domain message: fn runs in dst's domain as a new
// process at p's current time plus delay. Within one domain it is an
// ordinary deferred spawn. Across domains the delay must be at least the
// group lookahead — that bound is what makes the window protocol safe —
// and the message is delivered at the next window edge, so its execution
// order depends only on (arrival time, sender domain, sender sequence),
// never on thread timing.
func Post(p *Proc, dst *Kernel, delay Time, name string, fn func(q *Proc)) {
	src := p.k
	if delay < 0 {
		delay = 0
	}
	if dst == src || src.dom == nil || dst.dom == nil {
		dst.spawnAt(name, dst.now+delay, fn)
		return
	}
	g := src.dom.g
	if g != dst.dom.g {
		panic("sim: Post across unrelated domain groups")
	}
	if g.CheckCausality && delay < g.lookahead {
		panic(fmt.Sprintf("sim: causality violation: %s posts %s with delay %v < lookahead %v",
			src.dom.label(), name, delay, g.lookahead))
	}
	m := message{at: src.now + delay, src: src.dom.id, seq: src.dom.sendSeq, name: name, fn: fn}
	src.dom.sendSeq++
	src.dom.send(dst.dom, m)
}

// send appends m to dst's mailbox and applies the sender-side reflection
// clamp: a message sent at t_s can provoke a reply (processed by the
// recipient in a later window) that arrives no earlier than t_s + 2L, so
// the sender must not execute past t_s + 2L - 1 within its current
// window. For classic fixed windows the bound is a no-op (the window end
// m + L never exceeds t_s + 2L - 1); it only bites when Adaptive has
// extended this domain's window, and is exactly what makes the extension
// safe against arrivals the extension itself provokes.
func (src *Domain) send(dst *Domain, m message) {
	dst.mu.Lock()
	dst.inbox = append(dst.inbox, m)
	dst.mu.Unlock()
	if h := src.k.now + 2*src.g.lookahead - 1; h >= src.k.now && h < src.k.horizon {
		src.k.horizon = h
	}
}

// Call is the cross-domain RPC rendezvous: it blocks p, runs fn in dst's
// domain (in a fresh process, after the one-way delay), and resumes p
// after the reply delay. Timing is identical to sleeping the two delays
// around an inline call; execution placement is what changes. Within a
// single domain — or on a plain kernel — it degrades to exactly that
// inline form, which is the legacy path the Domains<=1 contract pins.
func Call(p *Proc, dst *Kernel, delay Time, name string, fn func(q *Proc)) {
	if dst == p.k || p.k.dom == nil || dst.dom == nil {
		p.Sleep(delay)
		fn(p)
		p.Sleep(delay)
		return
	}
	src := p.k
	Post(p, dst, delay, name, func(q *Proc) {
		q.Ctx = p.Ctx
		fn(q)
		// Reply leg: a wake message resuming p directly at arrival time.
		// Carrying the target proc instead of a closure saves the closure
		// allocation and the trampoline dispatch on every cross-domain RPC.
		k := q.k
		m := message{at: k.now + delay, src: k.dom.id, seq: k.dom.sendSeq, name: "xcall-reply", wake: p}
		k.dom.sendSeq++
		k.dom.send(src.dom, m)
	})
	p.block(name)
}

func (d *Domain) label() string { return fmt.Sprintf("domain %d", d.id) }

// AtSync registers fn to run at virtual time at as a global sync point:
// a forced window edge where every domain rendezvous at exactly that
// instant and fn runs with all of them parked. at must be at least the
// caller's current time plus the lookahead — no domain can have advanced
// past that, for the same reason messages are safe.
func (g *DomainGroup) AtSync(p *Proc, at Time, fn func()) {
	if min := p.Now() + g.lookahead; at < min {
		at = min
	}
	// The registering domain must not execute past the rendezvous within
	// its current window: under Adaptive its window may extend beyond
	// at - 1, and fireSyncs would then find its clock past the sync
	// point. Every *other* domain is provably short of at already (its
	// window ends at m + L <= now + L <= at for classic windows, and an
	// extended window ends at M2 + L <= now + L <= at because the
	// registering domain's events bound M2). A no-op for fixed windows.
	if at-1 < p.k.horizon {
		p.k.horizon = at - 1
	}
	g.addSync(p.k.DomainID(), at, fn)
}

// AtSyncAbs registers a sync point from within a running sync function
// (which has no process context). at must lie strictly in the future of
// the sync point being executed.
func (g *DomainGroup) AtSyncAbs(at Time, fn func()) {
	g.addSync(0, at, fn)
}

func (g *DomainGroup) addSync(src int, at Time, fn func()) {
	g.mu.Lock()
	g.syncSeq++
	g.syncs = append(g.syncs, syncPoint{at: at, src: src, seq: g.syncSeq, fn: fn})
	g.mu.Unlock()
}

// deliver drains every mailbox into its kernel's event queue in
// deterministic order. Called on the coordinating goroutine with all
// domains parked. Each message is enqueued under its intrinsic sequence
// number — msgSeqBase + senderSeq*numDomains + senderDomain — so the
// destination's own sequence counter never advances on delivery and the
// heap order of same-timestamp events is independent of which window
// edge delivered which message (see msgSeqBase).
func (g *DomainGroup) deliver() {
	nd := int64(len(g.domains))
	for _, d := range g.domains {
		d.mu.Lock()
		msgs := d.inbox
		d.inbox = d.inbox[:0]
		d.mu.Unlock()
		if len(msgs) == 0 {
			continue
		}
		for _, m := range msgs {
			if g.CheckCausality && m.at < d.k.now {
				panic(fmt.Sprintf("sim: causality violation: %s at %v receives message %q stamped %v from domain %d",
					d.label(), d.k.now, m.name, m.at, m.src))
			}
			seq := msgSeqBase + m.seq*nd + int64(m.src)
			if m.wake != nil {
				d.k.blocked--
				d.k.scheduleSeq(m.wake, m.at, seq)
				continue
			}
			d.k.spawnMsgAt(m.name, m.at, seq, m.fn)
		}
	}
}

// minEvent returns the earliest pending event time across all domains.
func (g *DomainGroup) minEvent() (Time, bool) {
	min, ok := Time(0), false
	for _, d := range g.domains {
		if d.k.queue.len() == 0 {
			continue
		}
		if at := d.k.queue.e[0].at; !ok || at < min {
			min, ok = at, true
		}
	}
	return min, ok
}

// peekSync returns the earliest registered sync time.
func (g *DomainGroup) peekSync() (Time, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	min, ok := Time(0), false
	for _, s := range g.syncs {
		if !ok || s.at < min {
			min, ok = s.at, true
		}
	}
	return min, ok
}

// fireSyncs runs every sync function registered for time at, in
// (registration domain, registration sequence) order, with all domains
// parked at exactly that virtual time.
func (g *DomainGroup) fireSyncs(at Time) {
	for _, d := range g.domains {
		if g.CheckCausality && d.k.now > at {
			panic(fmt.Sprintf("sim: causality violation: %s reached %v before sync point at %v",
				d.label(), d.k.now, at))
		}
		if d.k.now < at {
			d.k.now = at
		}
	}
	for {
		g.mu.Lock()
		var due []syncPoint
		rest := g.syncs[:0]
		for _, s := range g.syncs {
			if s.at <= at {
				due = append(due, s)
			} else {
				rest = append(rest, s)
			}
		}
		g.syncs = rest
		g.mu.Unlock()
		if len(due) == 0 {
			return
		}
		sort.Slice(due, func(i, j int) bool {
			a, b := due[i], due[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		// A sync function may register another sync at the same instant
		// (chained transitions); loop until none remain due.
		for _, s := range due {
			s.fn()
		}
	}
}

// totals returns the group-wide live and daemon process counts.
func (g *DomainGroup) totals() (live, daemons int) {
	for _, d := range g.domains {
		live += d.k.live
		daemons += d.k.daemons
	}
	return
}

// Run executes the whole group until no non-daemon work remains anywhere.
func (g *DomainGroup) Run() error { return g.run(forever) }

// RunFor executes the group until virtual time t (inclusive, like
// Kernel.RunFor) or until no work remains.
func (g *DomainGroup) RunFor(t Time) error { return g.run(t) }

// run is the window loop: deliver mailboxes, decide the next window
// edge (min event + lookahead, capped by the next sync point and the
// horizon), execute the window on the worker pool, fire due sync
// points, repeat.
//
// With Adaptive on, one domain per window may receive a wider end than
// the classic m + lookahead: if exactly one domain holds the global
// minimum pending event time m, every other domain's earliest possible
// send happens at M2 (the second-minimum next-event time) or later, so
// nothing can arrive at the minimum domain before M2 + lookahead — it
// may run until then. Two dynamic clamps close the loopholes the static
// argument leaves open: (a) the extended domain's own sends can provoke
// replies arriving as early as send-time + 2L, so every cross-domain
// send clamps the sender's horizon to t_s + 2L - 1 (Domain.send); (b) a
// sync point it registers clamps its horizon to the rendezvous - 1
// (AtSync). Both clamps are no-ops for classic fixed windows, and the
// schedule produced is byte-identical either way because delivered
// messages carry window-structure-independent sequence numbers
// (msgSeqBase) — adaptive merely reaches it in fewer, fuller windows.
func (g *DomainGroup) run(horizon Time) error {
	for {
		g.deliver()
		live, daemons := g.totals()
		if live <= daemons {
			return nil
		}
		m, haveEvents := g.minEvent()
		s, haveSync := g.peekSync()
		if !haveEvents && !haveSync {
			return &DeadlockError{Blocked: g.blockedProcNames()}
		}
		if haveEvents && m > horizon {
			for _, d := range g.domains {
				if d.k.now < horizon {
					d.k.now = horizon
				}
			}
			return nil
		}
		var end Time
		switch {
		case haveEvents:
			end = m + g.lookahead
			if end < m { // overflow
				end = forever
			}
		default:
			end = forever
		}
		if haveSync && s < end {
			end = s
		}
		if horizon < forever && end > horizon+1 {
			end = horizon + 1
		}
		if cap(g.ends) < len(g.domains) {
			g.ends = make([]Time, len(g.domains))
		}
		ends := g.ends[:len(g.domains)]
		for i := range ends {
			ends[i] = end
		}
		if g.Adaptive && haveEvents {
			argmin, mins := -1, 0
			m2, haveM2 := Time(0), false
			for i, d := range g.domains {
				if d.k.queue.len() == 0 {
					continue
				}
				at := d.k.queue.e[0].at
				if at == m {
					argmin = i
					mins++
					continue
				}
				if !haveM2 || at < m2 {
					m2, haveM2 = at, true
				}
			}
			// Extend only when a second-minimum exists: it is the finite
			// bound on when anything can next reach the minimum domain.
			// Without one (every other domain idle) the extension would
			// be unbounded, and an infinite daemon loop — a consistency-
			// point writer, a journal committer — would spin inside the
			// window forever, never returning to the group loop where
			// termination is decided.
			if mins == 1 && haveM2 {
				ext := m2 + g.lookahead
				if ext < m2 { // overflow
					ext = forever
				}
				if haveSync && s < ext {
					ext = s
				}
				if horizon < forever && ext > horizon+1 {
					ext = horizon + 1
				}
				if ext > ends[argmin] {
					ends[argmin] = ext
				}
			}
		}
		g.runWindows(ends)
		g.windows++
		if haveSync && end == s {
			g.fireSyncs(s)
		}
	}
}

// runWindows executes events strictly before ends[i] in domain i,
// distributing domains across the worker pool. Correctness never
// depends on the distribution: domains do not interact inside a window.
func (g *DomainGroup) runWindows(ends []Time) {
	workers := g.Workers
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		for i, d := range g.domains {
			d.k.runWindow(ends[i])
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(g.domains); i += workers {
				g.domains[i].k.runWindow(ends[i])
			}
		}(w)
	}
	wg.Wait()
}

// blockedProcNames aggregates deadlock diagnostics across domains.
func (g *DomainGroup) blockedProcNames() []string {
	var names []string
	for _, d := range g.domains {
		for _, p := range d.k.procs {
			if !p.done && !p.daemon && p.blockedOn != "" {
				names = append(names, fmt.Sprintf("%s [%s] (%s)", p.name, d.label(), p.blockedOn))
			}
		}
	}
	if len(names) == 0 {
		live, _ := g.totals()
		names = append(names, fmt.Sprintf("%d live (details unavailable)", live))
	}
	return names
}

// runWindow drains this kernel's queue up to (but excluding) virtual
// time end. Unlike run(), a domain kernel with blocked processes and an
// empty queue is not deadlocked — a message may arrive next window — and
// daemon-only liveness does not stop the window: termination is decided
// at group level.
func (k *Kernel) runWindow(end Time) {
	k.horizon = end - 1
	for {
		if k.queue.len() == 0 || k.queue.e[0].at > k.horizon {
			return
		}
		k.dispatchNext()
		<-k.parked
	}
}

// SyncDelay returns the minimum interval after which a sync point
// registered now can fire (the lookahead), letting callers timestamp
// state transitions honestly.
func (g *DomainGroup) SyncDelay() time.Duration { return time.Duration(g.lookahead) }
