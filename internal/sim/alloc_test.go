package sim

import (
	"math"
	"testing"
	"time"
)

// TestScheduleAllocFree pins the zero-alloc property of the event queue:
// once the heap's backing array has grown, scheduling and dispatching
// events must not allocate (the container/heap implementation it
// replaced boxed one interface{} per push and per pop).
func TestScheduleAllocFree(t *testing.T) {
	k := New(1)
	p := &Proc{k: k, name: "probe", resume: make(chan struct{})}
	// Warm the heap storage well past the test's working set.
	for i := 0; i < 64; i++ {
		k.schedule(p, Time(i))
	}
	for k.queue.len() > 0 {
		k.queue.pop()
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.schedule(p, k.now+time.Microsecond)
		k.schedule(p, k.now+2*time.Microsecond)
		k.schedule(p, k.now)
		k.queue.pop()
		k.queue.pop()
		k.queue.pop()
	}); avg != 0 {
		t.Fatalf("schedule/pop allocated %.2f objects per cycle, want 0", avg)
	}
}

// TestSleepFastPathAllocFree runs a long chain of uncontended Sleeps —
// the dominant pattern of every simulated RPC — and requires the whole
// run to stay allocation-free apart from fixed per-run setup.
func TestSleepFastPathAllocFree(t *testing.T) {
	k := New(1)
	var avg float64
	k.Spawn("sleeper", func(p *Proc) {
		avg = testing.AllocsPerRun(1000, func() {
			p.Sleep(time.Microsecond)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("Sleep allocated %.2f objects/op on the fast path, want 0", avg)
	}
}

// TestSleepOverflowClamps pins the schedule() clamp on the Sleep fast
// path: a wake-up time that overflows virtual time must behave like an
// immediate wake-up (as the slow path's schedule clamp guarantees), not
// move the clock backwards.
func TestSleepOverflowClamps(t *testing.T) {
	k := New(1)
	var at Time = -1
	k.Spawn("a", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Spawn("forever", func(q *Proc) {
			q.Sleep(Time(math.MaxInt64)) // now + d overflows int64
			at = q.Now()
		})
		p.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Millisecond {
		t.Fatalf("overflowing Sleep woke at %v, want immediate wake at 1ms", at)
	}
	if k.Now() != 2*time.Millisecond {
		t.Fatalf("final clock %v, want 2ms", k.Now())
	}
}

// TestSleepFastPathSemantics checks that the in-place clock advance is
// observationally identical to a scheduled wake-up: time moves, ties go
// to the earlier-scheduled process, and RunFor's horizon is respected.
func TestSleepFastPathSemantics(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		order = append(order, "a@"+p.Now().String())
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // same instant: a spawned first, runs first
		order = append(order, "b@"+p.Now().String())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a@2ms" || order[1] != "b@2ms" {
		t.Fatalf("order = %v", order)
	}

	k2 := New(1)
	var reached Time = -1
	k2.Spawn("long", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		reached = p.Now()
	})
	if err := k2.RunFor(3 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if reached != -1 {
		t.Fatal("proc ran past the RunFor horizon")
	}
	if k2.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v after RunFor(3ms)", k2.Now())
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if reached != 10*time.Millisecond {
		t.Fatalf("proc finished at %v, want 10ms", reached)
	}
}
