package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fuzzTrace runs one fuzz scenario — domain count, lookahead and an op
// script all decoded from data — with the given worker count, and
// returns the per-domain execution traces. It fails the test on
// deadlock or on a non-monotone timestamp within a domain.
func fuzzTrace(t *testing.T, data []byte, workers int) map[int][]string {
	t.Helper()
	if len(data) < 4 {
		return nil
	}
	nd := 2 + int(data[0])%7                                          // 2..8 domains
	lookahead := time.Duration(1+int(data[1])%200) * time.Microsecond // 1..200µs
	script := data[2:]
	if len(script) > 512 {
		script = script[:512]
	}

	k := New(int64(data[2]) + 1)
	g := AddDomains(k, nd-1, lookahead)
	g.Workers = workers

	traces := make(map[int][]string)
	lastAt := make(map[int]Time)
	var mu sync.Mutex
	record := func(q *Proc, tag string) {
		d := q.Kernel().DomainID()
		mu.Lock()
		if q.Now() < lastAt[d] {
			mu.Unlock()
			t.Fatalf("domain %d executed %s at %v after reaching %v", d, tag, q.Now(), lastAt[d])
		}
		lastAt[d] = q.Now()
		traces[d] = append(traces[d], fmt.Sprintf("%s@%v", tag, q.Now()))
		mu.Unlock()
	}

	// One driver per domain walks an interleaved slice of the script:
	// every op either sleeps locally or posts a (possibly chaining)
	// message to a derived destination with a lookahead-respecting delay.
	var chain func(q *Proc, b byte, depth int)
	chain = func(q *Proc, b byte, depth int) {
		record(q, fmt.Sprintf("m%d/%d", b, depth))
		if depth <= 0 {
			return
		}
		dst := g.Kernel((int(b) + depth) % nd)
		delay := lookahead + time.Duration(int(b)%97)*time.Microsecond
		Post(q, dst, delay, "chain", func(r *Proc) { chain(r, b+1, depth-1) })
	}
	for i := 0; i < nd; i++ {
		i := i
		g.Kernel(i).Spawn(fmt.Sprintf("driver-%d", i), func(p *Proc) {
			for pos := i; pos < len(script); pos += nd {
				b := script[pos]
				switch b % 3 {
				case 0:
					p.Sleep(time.Duration(b%50) * time.Microsecond)
				case 1:
					dst := g.Kernel(int(b/3) % nd)
					delay := lookahead + time.Duration(int(b)%83)*time.Microsecond
					bb := b
					Post(p, dst, delay, "op", func(q *Proc) { record(q, fmt.Sprintf("p%d", bb)) })
				default:
					bb := b
					chain(p, bb, int(bb)%3)
				}
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("workers=%d: lookahead scheduler deadlocked: %v", workers, err)
	}
	return traces
}

// FuzzLookahead drives the window protocol with random domain
// topologies, lookaheads and event storms. Whatever the input, the
// scheduler must terminate (no deadlock), never execute events out of
// timestamp order within a domain (checked in record, plus the built-in
// causality panics), and produce per-domain traces that are identical
// on one worker thread and on a full pool.
func FuzzLookahead(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3})
	f.Add([]byte{3, 50, 200, 100, 50, 25, 12, 6, 3, 1})
	f.Add([]byte{7, 199, 255, 254, 253, 0, 1, 2, 127, 128, 64, 32})
	f.Add([]byte{1, 10, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := fuzzTrace(t, data, 1)
		b := fuzzTrace(t, data, 4)
		if len(a) != len(b) {
			t.Fatalf("trace domain counts differ: %d vs %d", len(a), len(b))
		}
		for d, as := range a {
			if fmt.Sprint(as) != fmt.Sprint(b[d]) {
				t.Errorf("domain %d trace differs between 1 and 4 workers:\n%v\n%v", d, as, b[d])
			}
		}
	})
}
