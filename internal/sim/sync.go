package sim

// waiter is a process queued on a synchronization primitive.
type waiter struct {
	p   *Proc
	pri int   // lower value = served first
	seq int64 // FIFO tie-break
	n   int64 // units requested (semaphores)
}

// lessThan orders waiters by (pri, seq); seq ties never occur.
func (a waiter) lessThan(b waiter) bool {
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// waitQueue is a binary min-heap of waiters ordered by (pri, seq),
// sharing the kernel's boxing-free minHeap implementation.
type waitQueue = minHeap[waiter]

// Semaphore is a counted semaphore with priority-aware FIFO queueing.
// Acquire requests may ask for multiple units, which is convenient for
// modelling byte-counted resources such as NVRAM space.
type Semaphore struct {
	k     *Kernel
	name  string
	units int64
	q     waitQueue
}

// NewSemaphore returns a semaphore holding units units.
func NewSemaphore(k *Kernel, name string, units int64) *Semaphore {
	return &Semaphore{k: k, name: name, units: units}
}

// Available returns the number of free units.
func (s *Semaphore) Available() int64 { return s.units }

// QueueLen returns the number of waiting processes.
func (s *Semaphore) QueueLen() int { return s.q.len() }

// Acquire obtains n units, blocking p until they are available. Waiters
// are served in (priority, arrival) order; a large request blocks later
// smaller requests (no barging), which keeps queueing fair and
// deterministic.
func (s *Semaphore) Acquire(p *Proc, n int64) { s.AcquirePri(p, n, 0) }

// AcquirePri is Acquire with an explicit priority (lower = sooner).
//
// Scheduling bookkeeping (seq numbers, wake-ups) runs on the waiting
// process's own kernel, not the kernel the primitive was created on:
// under a domain group a primitive's ownership can migrate between
// domains at sync points (a promoted backup inherits its dead partner's
// locks), and each domain must only ever touch its own event queue.
// With a single kernel both are the same object.
func (s *Semaphore) AcquirePri(p *Proc, n int64, pri int) {
	if s.q.len() == 0 && s.units >= n {
		s.units -= n
		return
	}
	s.q.push(waiter{p: p, pri: pri, seq: p.k.nextSeq(), n: n})
	p.block("sem:" + s.name)
}

// Release returns n units and wakes as many waiters as can now be served.
func (s *Semaphore) Release(n int64) {
	s.units += n
	for s.q.len() > 0 && s.q.e[0].n <= s.units {
		w := s.q.pop()
		s.units -= w.n
		w.p.k.wake(w.p)
	}
}

// TryAcquire obtains n units without blocking, reporting success.
func (s *Semaphore) TryAcquire(n int64) bool {
	if s.q.len() == 0 && s.units >= n {
		s.units -= n
		return true
	}
	return false
}

// Mutex is a binary semaphore.
type Mutex struct{ s Semaphore }

// NewMutex returns an unlocked mutex.
func NewMutex(k *Kernel, name string) *Mutex {
	return &Mutex{s: Semaphore{k: k, name: name, units: 1}}
}

// Lock acquires the mutex for p.
func (m *Mutex) Lock(p *Proc) { m.s.Acquire(p, 1) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.Release(1) }

// Barrier blocks processes until a fixed number have arrived, then
// releases all of them; it is reusable for successive rounds, matching
// MPI_Barrier semantics used between benchmark phases.
type Barrier struct {
	k       *Kernel
	name    string
	parties int
	arrived []*Proc
}

// NewBarrier returns a barrier for parties processes.
func NewBarrier(k *Kernel, name string, parties int) *Barrier {
	return &Barrier{k: k, name: name, parties: parties}
}

// Wait blocks p until all parties have called Wait.
func (b *Barrier) Wait(p *Proc) {
	if b.parties <= 1 {
		return
	}
	if len(b.arrived) == b.parties-1 {
		for _, q := range b.arrived {
			q.k.wake(q)
		}
		b.arrived = b.arrived[:0]
		return
	}
	b.arrived = append(b.arrived, p)
	p.block("barrier:" + b.name)
}

// Cond is a waitable condition with explicit Signal/Broadcast, for
// building primitives whose wake-ups are data-dependent.
type Cond struct {
	k    *Kernel
	name string
	q    []*Proc
}

// NewCond returns an empty condition.
func NewCond(k *Kernel, name string) *Cond { return &Cond{k: k, name: name} }

// Wait blocks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.q = append(c.q, p)
	p.block("cond:" + c.name)
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.q) == 0 {
		return
	}
	p := c.q[0]
	c.q = c.q[1:]
	p.k.wake(p)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	for _, p := range c.q {
		p.k.wake(p)
	}
	c.q = c.q[:0]
}

// Waiters reports the number of blocked processes.
func (c *Cond) Waiters() int { return len(c.q) }

// Queue is an unbounded FIFO message queue between processes.
type Queue struct {
	k     *Kernel
	name  string
	items []interface{}
	recv  Cond
}

// NewQueue returns an empty queue.
func NewQueue(k *Kernel, name string) *Queue {
	return &Queue{k: k, name: name, recv: Cond{k: k, name: "q:" + name}}
}

// Put appends v and wakes one receiver.
func (q *Queue) Put(v interface{}) {
	q.items = append(q.items, v)
	q.recv.Signal()
}

// Get removes and returns the oldest item, blocking p while the queue is
// empty.
func (q *Queue) Get(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.recv.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Resource models a station with a fixed number of servers and
// priority-FIFO queueing: Use(p, d) occupies one server for d of virtual
// time. It is the building block for CPUs, disks, server thread pools and
// network interfaces.
type Resource struct {
	sem  *Semaphore
	busy int64 // cumulative busy time across servers
	kern *Kernel
}

// NewResource returns a resource with servers parallel servers.
func NewResource(k *Kernel, name string, servers int) *Resource {
	return &Resource{sem: NewSemaphore(k, name, int64(servers)), kern: k}
}

// Use occupies one server for d.
func (r *Resource) Use(p *Proc, d Time) { r.UsePri(p, d, 0) }

// UsePri is Use with a queueing priority (lower = sooner).
func (r *Resource) UsePri(p *Proc, d Time, pri int) {
	r.sem.AcquirePri(p, 1, pri)
	p.Sleep(d)
	r.busy += int64(d)
	r.sem.Release(1)
}

// Acquire and Release expose manual holds for callers that interleave
// other waits while holding a server.
func (r *Resource) Acquire(p *Proc)             { r.sem.Acquire(p, 1) }
func (r *Resource) AcquirePri(p *Proc, pri int) { r.sem.AcquirePri(p, 1, pri) }
func (r *Resource) Release()                    { r.sem.Release(1) }

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return r.sem.QueueLen() }

// BusyTime returns cumulative busy time summed over servers (only
// accounting for completed Use calls).
func (r *Resource) BusyTime() Time { return Time(r.busy) }
