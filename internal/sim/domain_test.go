package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// traceRun executes a small cross-domain workload on nd+1 domains with
// the given worker count and returns a trace of every message execution.
func traceRun(t *testing.T, workers int) []string {
	t.Helper()
	k := New(42)
	g := AddDomains(k, 3, 50*time.Microsecond)
	g.Workers = workers

	var trace []string
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(s string) {
		<-mu
		trace = append(trace, s)
		mu <- struct{}{}
	}

	// Each domain runs a proc that posts to the next domain in a ring,
	// with varying delays, plus local sleeps, for a few rounds.
	for i := 0; i < g.NumDomains(); i++ {
		i := i
		ki := g.Kernel(i)
		ki.Spawn(fmt.Sprintf("driver-%d", i), func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Sleep(time.Duration(10*(i+1)) * time.Microsecond)
				dst := g.Kernel((i + 1) % g.NumDomains())
				delay := 50*time.Microsecond + time.Duration(i*7)*time.Microsecond
				Post(p, dst, delay, "ring", func(q *Proc) {
					record(fmt.Sprintf("d%d t%v", q.Kernel().DomainID(), q.Now()))
				})
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return trace
}

// TestDomainWorkerInvariance is the core determinism property of the
// window protocol: the same decomposition produces identical execution
// whether domains run on one worker thread or one thread per domain.
func TestDomainWorkerInvariance(t *testing.T) {
	// Messages to ONE domain execute in deterministic order; the global
	// interleaving across domains is inherently concurrent, so compare
	// per-domain projections of the trace.
	project := func(trace []string) map[string][]string {
		m := map[string][]string{}
		for _, s := range trace {
			d := strings.Fields(s)[0]
			m[d] = append(m[d], s)
		}
		return m
	}
	a := project(traceRun(t, 1))
	b := project(traceRun(t, 4))
	if len(a) != len(b) {
		t.Fatalf("domain counts differ: %d vs %d", len(a), len(b))
	}
	for d, as := range a {
		bs := b[d]
		if fmt.Sprint(as) != fmt.Sprint(bs) {
			t.Errorf("%s trace differs:\n 1 worker: %v\n 4 workers: %v", d, as, bs)
		}
	}
}

// TestDomainCallTiming checks the rendezvous primitive: a cross-domain
// Call charges exactly one-way delay, body time, one-way delay.
func TestDomainCallTiming(t *testing.T) {
	k := New(1)
	g := AddDomains(k, 1, 100*time.Microsecond)
	var elapsed, bodyAt time.Duration
	k.Spawn("caller", func(p *Proc) {
		start := p.Now()
		p.Sleep(time.Millisecond)
		callStart := p.Now()
		Call(p, g.Kernel(1), 150*time.Microsecond, "rpc", func(q *Proc) {
			bodyAt = q.Now()
			q.Sleep(300 * time.Microsecond)
		})
		elapsed = p.Now() - callStart
		_ = start
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if want := time.Millisecond + 150*time.Microsecond; bodyAt != want {
		t.Errorf("body ran at %v, want %v", bodyAt, want)
	}
	if want := 2*150*time.Microsecond + 300*time.Microsecond; elapsed != want {
		t.Errorf("call took %v, want %v", elapsed, want)
	}
}

// TestDomainSyncPoint checks that AtSync functions run at exactly the
// registered virtual time with every domain's clock at that instant.
func TestDomainSyncPoint(t *testing.T) {
	k := New(7)
	g := AddDomains(k, 2, 20*time.Microsecond)
	var at0, at1, at2 time.Duration
	fired := false
	k.Spawn("main", func(p *Proc) {
		p.Sleep(500 * time.Microsecond)
		g.AtSync(p, p.Now()+100*time.Microsecond, func() {
			fired = true
			at0 = g.Kernel(0).Now()
			at1 = g.Kernel(1).Now()
			at2 = g.Kernel(2).Now()
		})
		p.Sleep(time.Millisecond)
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("sync point never fired")
	}
	want := 600 * time.Microsecond
	if at0 != want || at1 != want || at2 != want {
		t.Errorf("sync clocks %v/%v/%v, want all %v", at0, at1, at2, want)
	}
}

// TestDomainCausalityChecker checks that a send violating the lookahead
// bound panics with a diagnostic.
func TestDomainCausalityChecker(t *testing.T) {
	k := New(3)
	g := AddDomains(k, 1, 100*time.Microsecond)
	k.Spawn("violator", func(p *Proc) {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("under-lookahead Post did not panic")
			} else if !strings.Contains(fmt.Sprint(r), "causality violation") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		Post(p, g.Kernel(1), 10*time.Microsecond, "bad", func(q *Proc) {})
	})
	_ = g.Run()
}

// TestDomainDeadlock checks the group-level deadlock report: a proc
// blocked forever with no events and no in-flight messages anywhere.
func TestDomainDeadlock(t *testing.T) {
	k := New(5)
	g := AddDomains(k, 1, 50*time.Microsecond)
	sem := NewSemaphore(g.Kernel(1), "stuck", 0)
	g.Kernel(1).Spawn("waiter", func(p *Proc) {
		sem.Acquire(p, 1)
	})
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if !strings.Contains(de.Error(), "waiter") {
		t.Errorf("deadlock report %q does not name the blocked proc", de.Error())
	}
}

// TestDomainRunFor checks horizon semantics across the group: the run
// stops with every clock at the horizon and resumes cleanly.
func TestDomainRunFor(t *testing.T) {
	k := New(9)
	g := AddDomains(k, 1, 50*time.Microsecond)
	var ticks int
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	if err := g.RunFor(3500 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Errorf("ticks at horizon = %d, want 3", ticks)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("final ticks = %d, want 10", ticks)
	}
}
