package nfs

import (
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

// env builds a kernel, a small cluster and an NFS file system.
func env(t *testing.T, nodes int, cfg Config) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(nodes))
	return k, cl, New(k, "t", cfg)
}

// inProc runs fn as a single sim process and completes the simulation.
func inProc(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateStatUnlink(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Create("/a"); err != nil {
			t.Errorf("create: %v", err)
		}
		if err := c.Create("/a"); fs.CodeOf(err) != fs.EEXIST {
			t.Errorf("dup create: %v", err)
		}
		a, err := c.Stat("/a")
		if err != nil || a.Type != fs.TypeRegular {
			t.Errorf("stat: %v %+v", err, a)
		}
		if err := c.Unlink("/a"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if _, err := c.Stat("/a"); err == nil {
			t.Error("stat after unlink succeeded (attr cache not invalidated)")
		}
	})
}

func TestCreateCostsAtLeastRTT(t *testing.T) {
	cfg := DefaultConfig()
	k, cl, f := env(t, 1, cfg)
	var elapsed time.Duration
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		start := p.Now()
		if err := c.Create("/f"); err != nil {
			t.Errorf("create: %v", err)
		}
		elapsed = p.Now() - start
	})
	min := 2*cfg.OneWayLatency + cfg.CreateService
	if elapsed < min {
		t.Fatalf("create took %v, want >= %v", elapsed, min)
	}
}

func TestAttrCacheAvoidsRPC(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Create("/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		before := f.RPCCount()
		for i := 0; i < 10; i++ {
			if _, err := c.Stat("/f"); err != nil {
				t.Fatalf("stat: %v", err)
			}
		}
		if got := f.RPCCount(); got != before {
			t.Errorf("cached stats issued %d RPCs", got-before)
		}
		c.DropCaches()
		if _, err := c.Stat("/f"); err != nil {
			t.Fatalf("stat: %v", err)
		}
		if got := f.RPCCount(); got != before+1 {
			t.Errorf("post-drop stat issued %d RPCs, want 1", got-before)
		}
	})
}

func TestAttrCacheExpires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttrTTL = time.Second
	k, cl, f := env(t, 1, cfg)
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Create("/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		p.Sleep(2 * time.Second)
		before := f.RPCCount()
		if _, err := c.Stat("/f"); err != nil {
			t.Fatalf("stat: %v", err)
		}
		if f.RPCCount() != before+1 {
			t.Error("expired attr cache entry served without RPC")
		}
	})
}

func TestCloseToOpenFlush(t *testing.T) {
	k, cl, f := env(t, 2, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		w := f.NewClient(cl.Nodes[0], p)
		if err := w.Create("/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		h, err := w.Open("/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := w.Write(h, 4096); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Before close the server has no data.
		if n, _ := f.Namespace().Lookup("/f"); n.Size != 0 {
			t.Errorf("size visible before close: %d", n.Size)
		}
		if err := w.Close(h); err != nil {
			t.Fatalf("close: %v", err)
		}
		// After close another node sees the new size.
		r := f.NewClient(cl.Nodes[1], p)
		a, err := r.Stat("/f")
		if err != nil || a.Size != 4096 {
			t.Errorf("remote stat: %v %+v", err, a)
		}
	})
}

func TestInlineInodeBoundary(t *testing.T) {
	// The 65-byte file crosses the WAFL inline threshold and must be
	// slower to write than the 64-byte one (MakeFiles64byte/65byte).
	timeFor := func(n int64) time.Duration {
		k, cl, f := env(t, 1, DefaultConfig())
		var d time.Duration
		inProc(t, k, func(p *sim.Proc) {
			c := f.NewClient(cl.Nodes[0], p)
			if err := c.Create("/f"); err != nil {
				t.Fatalf("create: %v", err)
			}
			h, err := c.Open("/f")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			start := p.Now()
			c.Write(h, n)
			c.Close(h)
			d = p.Now() - start
		})
		return d
	}
	d64, d65 := timeFor(64), timeFor(65)
	if d65 <= d64 {
		t.Fatalf("65-byte write (%v) not slower than 64-byte (%v)", d65, d64)
	}
	if d65-d64 < 50*time.Microsecond {
		t.Fatalf("allocation penalty too small: %v", d65-d64)
	}
}

func TestSameDirSerializationIntraNode(t *testing.T) {
	// Two processes creating in the same directory on one node serialize
	// on the VFS i_mutex; in different directories they overlap.
	elapsed := func(sameDir bool) time.Duration {
		k, cl, f := env(t, 1, DefaultConfig())
		k.Spawn("setup", func(p *sim.Proc) {
			c := f.NewClient(cl.Nodes[0], p)
			c.Mkdir("/d0")
			c.Mkdir("/d1")
			for i := 0; i < 2; i++ {
				i := i
				p.Spawn("w", func(q *sim.Proc) {
					qc := f.NewClient(cl.Nodes[0], q)
					dir := "/d0"
					if !sameDir && i == 1 {
						dir = "/d1"
					}
					for j := 0; j < 50; j++ {
						qc.Create(dir + "/" + string(rune('a'+i)) + itoa(j))
					}
				})
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	same, diff := elapsed(true), elapsed(false)
	if float64(same) < 1.5*float64(diff) {
		t.Fatalf("same-dir %v vs diff-dir %v: expected clear serialization", same, diff)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestReadDirPaging(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		for i := 0; i < 1200; i++ {
			if err := c.Create("/d/" + itoa(i)); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
		ents, err := c.ReadDir("/d")
		if err != nil || len(ents) != 1200 {
			t.Fatalf("readdir: %v, %d entries", err, len(ents))
		}
	})
}

func TestRenameInvalidatesCaches(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Create("/a")
		c.Stat("/a")
		if err := c.Rename("/a", "/b"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := c.Stat("/a"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("stat old name: %v", err)
		}
		if _, err := c.Stat("/b"); err != nil {
			t.Errorf("stat new name: %v", err)
		}
	})
}

func TestHandleErrors(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Close(99); fs.CodeOf(err) != fs.EBADF {
			t.Errorf("close bad handle: %v", err)
		}
		if err := c.Write(99, 1); fs.CodeOf(err) != fs.EBADF {
			t.Errorf("write bad handle: %v", err)
		}
		if _, err := c.Open("/missing"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("open missing: %v", err)
		}
	})
}
