// Package nfs models a client–server distributed file system in the
// style of NFSv3 against a WAFL-based filer (the LRZ production setup of
// §4.1.2): synchronous metadata operations, close-to-open consistency,
// client attribute and dentry caches, a server thread pool, per-directory
// serialization at both client (VFS i_mutex) and server, and NVRAM
// logging with consistency points.
package nfs

import (
	"strconv"
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/service"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
	"dmetabench/internal/storage"
)

// Config holds the tunables of the NFS model. The defaults approximate a
// FAS3050-class filer on gigabit ethernet.
type Config struct {
	// ServerThreads is the filer's usable CPU parallelism.
	ServerThreads int
	// OneWayLatency is the network one-way delay client->server.
	OneWayLatency time.Duration
	// Bandwidth of the server uplink in bytes/s (0 = unlimited).
	Bandwidth int64
	// Service times for the metadata RPC classes.
	CreateService     time.Duration
	GetattrService    time.Duration
	LookupService     time.Duration
	RemoveService     time.Duration
	MkdirService      time.Duration
	RenameService     time.Duration
	ReaddirService    time.Duration // per RPC; entries add ReaddirPerEntry
	ReaddirPerEntry   time.Duration
	WriteServicePerKB time.Duration
	// InodeInlineBytes: writes that keep the file at or below this size
	// stay in the inode (WAFL stores tiny files inline); crossing it
	// allocates a block (the MakeFiles64byte/65byte probe, §3.3.8).
	InodeInlineBytes int64
	// BlockAllocService is the extra service time for the first block.
	BlockAllocService time.Duration
	// AttrTTL and DentryTTL are the client cache lifetimes.
	AttrTTL   time.Duration
	DentryTTL time.Duration
	// DirIndex is the server directory data structure.
	DirIndex namespace.DirIndex
	// WAFL parameterizes the storage backend.
	WAFL storage.WAFLConfig
	// MetaLogBytes is the NVRAM log record size per namespace change.
	MetaLogBytes int64
	// ClientNice is the niceness benchmark processes run at (see §4.4).
	ClientNice int
	// Domains > 1 partitions the cell into kernel domains via the shared
	// service runtime (internal/service): domain 0 runs the clients,
	// domain 1 the filer — its thread pool, WAFL, namespace and
	// directory locks — and every RPC becomes a timestamped
	// cross-domain message. With Domains <= 1 the model runs its exact
	// legacy single-kernel code path, byte for byte.
	Domains int
}

// DefaultConfig returns the FAS3050-like parameter set.
func DefaultConfig() Config {
	return Config{
		ServerThreads:     4,
		OneWayLatency:     250 * time.Microsecond,
		Bandwidth:         0,
		CreateService:     150 * time.Microsecond,
		GetattrService:    40 * time.Microsecond,
		LookupService:     40 * time.Microsecond,
		RemoveService:     140 * time.Microsecond,
		MkdirService:      180 * time.Microsecond,
		RenameService:     180 * time.Microsecond,
		ReaddirService:    120 * time.Microsecond,
		ReaddirPerEntry:   800 * time.Nanosecond,
		WriteServicePerKB: 30 * time.Microsecond,
		InodeInlineBytes:  64,
		BlockAllocService: 60 * time.Microsecond,
		AttrTTL:           3 * time.Second,
		DentryTTL:         30 * time.Second,
		DirIndex:          namespace.IndexHash,
		WAFL:              storage.DefaultWAFLConfig(),
		MetaLogBytes:      320,
	}
}

// FS is one exported NFS file system (one filer volume).
type FS struct {
	k   *sim.Kernel
	cfg Config

	// rt is the shared service runtime (domain placement); with
	// Domains > 1 the filer's state below lives on rt.KernelFor(0).
	rt *service.Runtime

	srv   *simnet.Server
	wafl  *storage.WAFL
	ns    *namespace.Namespace
	conns map[*cluster.Node]*simnet.Conn

	// dirLocks serialize same-directory modifications at the server.
	dirLocks map[fs.Ino]*sim.Mutex

	// nodes holds per-OS-instance client cache state.
	nodes map[*cluster.Node]*nodeState

	rpcs int64

	// aggOps/aggShed/aggBusy count background demand injected through
	// AttachAggregate (operations, shed operations, busy nanoseconds).
	aggOps  int64
	aggShed int64
	aggBusy int64
}

type nodeState struct {
	attrs    *clientcache.AttrCache
	dentries *clientcache.DentryCache
}

// New creates an NFS file system on kernel k.
func New(k *sim.Kernel, name string, cfg Config) *FS {
	rt := service.New(k, 1, cfg.Domains, cfg.OneWayLatency)
	sk := rt.KernelFor(0)
	f := &FS{
		k:        k,
		cfg:      cfg,
		rt:       rt,
		srv:      simnet.NewServer(sk, "nfs:"+name, cfg.ServerThreads),
		wafl:     storage.NewWAFL(sk, name, cfg.WAFL),
		ns:       namespace.New(),
		conns:    make(map[*cluster.Node]*simnet.Conn),
		dirLocks: make(map[fs.Ino]*sim.Mutex),
		nodes:    make(map[*cluster.Node]*nodeState),
	}
	return f
}

// Group exposes the FS's domain group (nil when Domains <= 1); tests
// pin worker-count invariance through it.
func (f *FS) Group() *sim.DomainGroup { return f.rt.Group() }

// domained reports whether the filer runs in its own kernel domain.
func (f *FS) domained() bool { return f.rt.Domained() }

// Name identifies the model in results and charts.
func (f *FS) Name() string { return "nfs" }

// Namespace exposes the authoritative server namespace (for tests and
// environment profiling).
func (f *FS) Namespace() *namespace.Namespace { return f.ns }

// WAFL exposes the storage backend (for disturbance injection).
func (f *FS) WAFL() *storage.WAFL { return f.wafl }

// RPCCount returns the number of RPCs served so far.
func (f *FS) RPCCount() int64 { return f.rpcs }

func (f *FS) conn(n *cluster.Node) *simnet.Conn {
	c, ok := f.conns[n]
	if !ok {
		c = simnet.NewConn(f.k, f.srv, f.cfg.OneWayLatency, f.cfg.Bandwidth)
		f.conns[n] = c
	}
	return c
}

func (f *FS) nodeState(n *cluster.Node) *nodeState {
	s, ok := f.nodes[n]
	if !ok {
		s = &nodeState{
			attrs:    clientcache.NewAttrCache(f.cfg.AttrTTL, f.k.Now),
			dentries: clientcache.NewDentryCache(f.cfg.DentryTTL, f.k.Now),
		}
		f.nodes[n] = s
	}
	return s
}

func (f *FS) dirLock(ino fs.Ino) *sim.Mutex {
	m, ok := f.dirLocks[ino]
	if !ok {
		// Server-side lock: it lives (and is only ever locked) on the
		// filer's kernel domain.
		m = sim.NewMutex(f.srv.Kernel(), "nfsdir:"+strconv.FormatUint(uint64(ino), 10))
		f.dirLocks[ino] = m
	}
	return m
}

// AttachAggregate starts the background injector (internal/service):
// ServerThreads daemon lanes on the filer's kernel domain, each drawing
// src(0, lane, tick) in strict tick order and occupying one server
// thread for the priced duration — analytically modeled client
// populations (internal/agg) saturating the single filer without
// per-client state (E35). Call before the kernel runs.
func (f *FS) AttachAggregate(tick time.Duration, src func(server, lane, tick int) service.Demand) {
	service.AttachAggregate(service.AggregateConfig{
		Servers: 1,
		Lanes:   f.cfg.ServerThreads,
		Tick:    tick,
		Kernel:  func(int) *sim.Kernel { return f.srv.Kernel() },
		Pool:    func(int) *sim.Resource { return f.srv.Threads },
		Source:  src,
		Price:   func(_ int, d service.Demand) time.Duration { return f.priceAggregate(d) },
		Ops:     &f.aggOps,
		Shed:    &f.aggShed,
		Busy:    &f.aggBusy,
	})
}

// AggCounts returns injected / shed operation counts and cumulative
// injected service time; safe mid-run from any domain.
func (f *FS) AggCounts() (ops, shed int64, busy time.Duration) {
	return service.LoadI64(&f.aggOps), service.LoadI64(&f.aggShed),
		time.Duration(service.LoadI64(&f.aggBusy))
}

// priceAggregate converts one demand batch into service time: the base
// per-class RPC costs scaled by the filer's current consistency-point
// factor, exactly as foreground RPCs are priced. Directory-index
// factors are not applied — the analytic stream has no concrete
// directories — which prices the background conservatively.
func (f *FS) priceAggregate(d service.Demand) time.Duration {
	base := service.PriceTable{
		Getattr: f.cfg.GetattrService,
		Lookup:  f.cfg.LookupService,
		Readdir: f.cfg.ReaddirService,
		Create:  f.cfg.CreateService,
	}.Price(d)
	if base <= 0 {
		return 0
	}
	return time.Duration(float64(base) * f.wafl.ServiceFactor())
}

// service charges t (scaled by directory-size and CP factors) while
// holding a server thread; the caller supplies the parent directory size
// when the op touches a directory index.
func (f *FS) service(p *sim.Proc, base time.Duration, dirEntries int) {
	cost := float64(base) * f.wafl.ServiceFactor()
	if dirEntries >= 0 {
		cost *= f.cfg.DirIndex.EntryCost(dirEntries)
	}
	p.Sleep(time.Duration(cost))
	f.rpcs++
}

// parentEntries returns the entry count of path's parent directory, if it
// resolves; otherwise 0.
func (f *FS) parentEntries(p string) int {
	dir, err := f.ns.Lookup(fs.ParentDir(p))
	if err != nil {
		return 0
	}
	return dir.NumChildren()
}

// lockParent returns the server-side lock of path's parent directory (or
// nil if the parent does not resolve).
func (f *FS) lockParent(p string) *sim.Mutex {
	dir, err := f.ns.Lookup(fs.ParentDir(p))
	if err != nil {
		return nil
	}
	return f.dirLock(dir.Ino)
}

// NewClient binds a client for one process on one node. It satisfies the
// benchmark framework's FileSystem interface.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]*openFile)}
}

type openFile struct {
	path    string
	ino     fs.Ino
	size    int64
	dirty   bool
	written int64
}

// client implements fs.Client for one (node, process) pair.
type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

func (c *client) cfg() Config      { return c.fsys.cfg }
func (c *client) st() *nodeState   { return c.fsys.nodeState(c.node) }
func (c *client) cn() *simnet.Conn { return c.fsys.conn(c.node) }

// resolveParents walks the strict ancestors of p through the dentry
// cache, issuing one LOOKUP RPC per missing component — the POSIX
// requirement that every path component is checked (§2.3.1). With warm
// dentries (30 s TTL) the walk is free; after a cache drop a deep path
// costs one round trip per level.
func (c *client) resolveParents(p string) error {
	cfg := c.cfg()
	// The domained walk lives in its own method on purpose: CallDom's
	// service parameter escapes (the cross-domain path stores it in a
	// message), so everything its closure captures — including the large
	// Config, which is captured by reference — would be heap-boxed at
	// entry of *this* function even on undomained runs. The legacy
	// literal below only ever flows into Call and stays on the stack.
	if c.fsys.domained() {
		return c.resolveParentsDom(p, cfg)
	}
	st := c.st()
	for i := 1; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		prefix := p[:i]
		if _, neg, ok := st.dentries.Lookup(prefix); ok {
			if neg {
				return fs.NewError("lookup", prefix, fs.ENOENT)
			}
			continue
		}
		var err error
		c.cn().Call(c.p, 120, 140, func(sp *sim.Proc) {
			c.fsys.service(sp, cfg.LookupService, -1)
			var a fs.Attr
			a, err = c.fsys.ns.Stat(prefix)
			if err == nil {
				st.dentries.PutPositive(prefix, a.Ino)
				st.attrs.Put(prefix, a)
			} else {
				st.dentries.PutNegative(prefix)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// resolveParentsDom is resolveParents against the domained filer: cache
// fills are client state, so cross-domain they ride the reply (Defer)
// back to the client's domain.
func (c *client) resolveParentsDom(p string, cfg Config) error {
	st := c.st()
	for i := 1; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		prefix := p[:i]
		if _, neg, ok := st.dentries.Lookup(prefix); ok {
			if neg {
				return fs.NewError("lookup", prefix, fs.ENOENT)
			}
			continue
		}
		var err error
		c.cn().CallDom(c.p, 120, 140, func(sp *sim.Proc) {
			c.fsys.service(sp, cfg.LookupService, -1)
			var a fs.Attr
			a, err = c.fsys.ns.Stat(prefix)
			simnet.Defer(sp, func() {
				if err == nil {
					st.dentries.PutPositive(prefix, a.Ino)
					st.attrs.Put(prefix, a)
				} else {
					st.dentries.PutNegative(prefix)
				}
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Create performs open(O_CREAT|O_EXCL)+close: one synchronous CREATE RPC
// under the client-side parent i_mutex and the server-side directory
// lock.
func (c *client) Create(p string) error {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	if c.fsys.domained() {
		return c.createDom(p, cfg)
	}
	parent := fs.ParentDir(p)
	imutex := c.node.DirLock(parent)
	imutex.Lock(c.p)
	defer imutex.Unlock()

	var err error
	c.cn().Call(c.p, 160, 160, func(sp *sim.Proc) {
		lock := c.fsys.lockParent(p)
		if lock != nil {
			lock.Lock(sp)
			defer lock.Unlock()
		}
		entries := c.fsys.parentEntries(p)
		c.fsys.service(sp, cfg.CreateService, entries)
		_, err = c.fsys.ns.Create(p, 0o644, sp.Now())
		if err == nil {
			c.fsys.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	if err != nil {
		if fs.IsExist(err) {
			if a, serr := c.fsys.ns.Stat(p); serr == nil {
				c.st().attrs.Put(p, a)
				c.st().dentries.PutPositive(p, a.Ino)
			}
		}
		return err
	}
	a, _ := c.fsys.ns.Stat(p)
	c.st().attrs.Put(p, a)
	c.st().dentries.PutPositive(p, a.Ino)
	return nil
}

// createDom is Create against the domained filer. Cross-domain the
// reply carries the fresh attributes: the namespace may not be read
// from the client's domain, so the cache fill is captured in the
// service body and applied via Defer. Split from Create so the escaping
// CallDom closure never heap-boxes state shared with the legacy path.
func (c *client) createDom(p string, cfg Config) error {
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()

	var err error
	c.cn().CallDom(c.p, 160, 160, func(sp *sim.Proc) {
		lock := c.fsys.lockParent(p)
		if lock != nil {
			lock.Lock(sp)
			defer lock.Unlock()
		}
		entries := c.fsys.parentEntries(p)
		c.fsys.service(sp, cfg.CreateService, entries)
		_, err = c.fsys.ns.Create(p, 0o644, sp.Now())
		if err == nil {
			c.fsys.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
		if err == nil || fs.IsExist(err) {
			if a, serr := c.fsys.ns.Stat(p); serr == nil {
				simnet.Defer(sp, func() {
					c.st().attrs.Put(p, a)
					c.st().dentries.PutPositive(p, a.Ino)
				})
			}
		}
	})
	return err
}

// Open resolves the path (dentry cache, else LOOKUP RPC) and returns a
// handle. Close-to-open: a fresh GETATTR piggybacks on the lookup.
func (c *client) Open(p string) (fs.Handle, error) {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	if err := c.resolveParents(p); err != nil {
		return 0, err
	}
	if c.fsys.domained() {
		return c.openDom(p, cfg)
	}
	st := c.st()
	ino, neg, ok := st.dentries.Lookup(p)
	if !ok {
		var err error
		c.cn().Call(c.p, 120, 140, func(sp *sim.Proc) {
			c.fsys.service(sp, cfg.LookupService, c.fsys.parentEntries(p))
			var a fs.Attr
			a, err = c.fsys.ns.Stat(p)
			if err == nil {
				ino = a.Ino
				st.attrs.Put(p, a)
				st.dentries.PutPositive(p, a.Ino)
			} else {
				st.dentries.PutNegative(p)
			}
		})
		if err != nil {
			return 0, err
		}
	} else if neg {
		return 0, fs.NewError("open", p, fs.ENOENT)
	}
	node := c.fsys.ns.Get(ino)
	if node == nil {
		st.dentries.Invalidate(p)
		return 0, fs.NewError("open", p, fs.ESTALE)
	}
	c.nextFH++
	h := c.nextFH
	c.handles[h] = &openFile{path: p, ino: ino, size: node.Size}
	return h, nil
}

// openDom is Open against the domained filer. The namespace lives in
// the filer's domain, so the legacy free read of node.Size is off
// limits: the size rides the LOOKUP reply, comes from a fresh attribute
// cache entry (the close-to-open GETATTR that populated it still
// applies), or costs a real GETATTR revalidation — the round trip an
// actual NFS client issues at open time. Split from Open so its
// escaping CallDom closures never tax the undomained path.
func (c *client) openDom(p string, cfg Config) (fs.Handle, error) {
	st := c.st()
	ino, neg, ok := st.dentries.Lookup(p)
	var size int64
	sized := false
	if !ok {
		var err error
		c.cn().CallDom(c.p, 120, 140, func(sp *sim.Proc) {
			c.fsys.service(sp, cfg.LookupService, c.fsys.parentEntries(p))
			var a fs.Attr
			a, err = c.fsys.ns.Stat(p)
			if err == nil {
				ino, size, sized = a.Ino, a.Size, true
				simnet.Defer(sp, func() {
					st.attrs.Put(p, a)
					st.dentries.PutPositive(p, a.Ino)
				})
			} else {
				simnet.Defer(sp, func() { st.dentries.PutNegative(p) })
			}
		})
		if err != nil {
			return 0, err
		}
	} else if neg {
		return 0, fs.NewError("open", p, fs.ENOENT)
	}
	if !sized {
		if a, ok := st.attrs.Get(p); ok {
			size, sized = a.Size, true
		}
	}
	if !sized {
		var err error
		c.cn().CallDom(c.p, 120, 140, func(sp *sim.Proc) {
			c.fsys.service(sp, cfg.GetattrService, -1)
			var a fs.Attr
			a, err = c.fsys.ns.Stat(p)
			if err == nil {
				ino, size, sized = a.Ino, a.Size, true
				simnet.Defer(sp, func() {
					st.attrs.Put(p, a)
					st.dentries.PutPositive(p, a.Ino)
				})
			}
		})
		if err != nil {
			st.dentries.Invalidate(p)
			return 0, fs.NewError("open", p, fs.ESTALE)
		}
	}
	c.nextFH++
	h := c.nextFH
	c.handles[h] = &openFile{path: p, ino: ino, size: size}
	return h, nil
}

// Close flushes dirty data (close-to-open consistency requires the data
// to be on the server when close returns).
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	if of.dirty {
		c.flush(of)
	}
	return nil
}

// Write buffers n bytes; the flush happens on Close or Fsync, matching
// the NFS client write-behind cache.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	of.written += n
	of.dirty = true
	return nil
}

// Fsync forces dirty data to the server.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	if of.dirty {
		c.flush(of)
	}
	return nil
}

func (c *client) flush(of *openFile) {
	cfg := c.cfg()
	if c.fsys.domained() {
		c.flushDom(of, cfg)
		return
	}
	newSize := of.size + of.written
	c.cn().Call(c.p, 120+of.written, 140, func(sp *sim.Proc) {
		t := time.Duration(float64(cfg.WriteServicePerKB) * float64(of.written) / 1024)
		if of.size <= cfg.InodeInlineBytes && newSize > cfg.InodeInlineBytes {
			// Crossing the inline threshold allocates the first block.
			t += cfg.BlockAllocService
		}
		c.fsys.service(sp, t, -1)
		c.fsys.ns.SetSize(of.ino, newSize, sp.Now())
		c.fsys.wafl.LogMetadata(sp, cfg.MetaLogBytes+of.written)
	})
	of.size = newSize
	of.written = 0
	of.dirty = false
	if a, err := c.fsys.ns.Stat(of.path); err == nil {
		c.st().attrs.Put(of.path, a)
	}
}

// flushDom is flush against the domained filer: the post-write
// attribute refresh is captured server-side and Defer'd back.
func (c *client) flushDom(of *openFile, cfg Config) {
	newSize := of.size + of.written
	c.cn().CallDom(c.p, 120+of.written, 140, func(sp *sim.Proc) {
		t := time.Duration(float64(cfg.WriteServicePerKB) * float64(of.written) / 1024)
		if of.size <= cfg.InodeInlineBytes && newSize > cfg.InodeInlineBytes {
			// Crossing the inline threshold allocates the first block.
			t += cfg.BlockAllocService
		}
		c.fsys.service(sp, t, -1)
		c.fsys.ns.SetSize(of.ino, newSize, sp.Now())
		c.fsys.wafl.LogMetadata(sp, cfg.MetaLogBytes+of.written)
		if a, err := c.fsys.ns.Stat(of.path); err == nil {
			simnet.Defer(sp, func() { c.st().attrs.Put(of.path, a) })
		}
	})
	of.size = newSize
	of.written = 0
	of.dirty = false
}

// Mkdir issues a synchronous MKDIR RPC.
func (c *client) Mkdir(p string) error {
	if c.fsys.domained() {
		return c.modifyRPCDom("mkdir", p, c.cfg().MkdirService, func(sp *sim.Proc) error {
			_, err := c.fsys.ns.Mkdir(p, 0o755, sp.Now())
			if err == nil || fs.IsExist(err) {
				c.captureFill(sp, p)
			}
			return err
		})
	}
	err := c.modifyRPC("mkdir", p, c.cfg().MkdirService, func(sp *sim.Proc) error {
		_, err := c.fsys.ns.Mkdir(p, 0o755, sp.Now())
		return err
	})
	if err != nil {
		if fs.IsExist(err) {
			if a, serr := c.fsys.ns.Stat(p); serr == nil {
				st := c.st()
				st.dentries.PutPositive(p, a.Ino)
				st.attrs.Put(p, a)
			}
		}
		return err
	}
	// Replace any negative dentry left by an earlier failed lookup.
	if a, serr := c.fsys.ns.Stat(p); serr == nil {
		st := c.st()
		st.dentries.PutPositive(p, a.Ino)
		st.attrs.Put(p, a)
	}
	return nil
}

// Rmdir issues a synchronous RMDIR RPC.
func (c *client) Rmdir(p string) error {
	var err error
	if c.fsys.domained() {
		err = c.modifyRPCDom("rmdir", p, c.cfg().RemoveService, func(sp *sim.Proc) error {
			return c.fsys.ns.Rmdir(p, sp.Now())
		})
	} else {
		err = c.modifyRPC("rmdir", p, c.cfg().RemoveService, func(sp *sim.Proc) error {
			return c.fsys.ns.Rmdir(p, sp.Now())
		})
	}
	if err == nil {
		c.st().attrs.Invalidate(p)
		c.st().dentries.Invalidate(p)
	}
	return err
}

// Unlink issues a synchronous REMOVE RPC.
func (c *client) Unlink(p string) error {
	var err error
	if c.fsys.domained() {
		err = c.modifyRPCDom("unlink", p, c.cfg().RemoveService, func(sp *sim.Proc) error {
			return c.fsys.ns.Unlink(p, sp.Now())
		})
	} else {
		err = c.modifyRPC("unlink", p, c.cfg().RemoveService, func(sp *sim.Proc) error {
			return c.fsys.ns.Unlink(p, sp.Now())
		})
	}
	if err == nil {
		c.st().attrs.Invalidate(p)
		c.st().dentries.Invalidate(p)
	}
	return err
}

// Rename issues a synchronous RENAME RPC (atomic at the server).
func (c *client) Rename(oldPath, newPath string) error {
	if c.fsys.domained() {
		err := c.modifyRPCDom("rename", oldPath, c.cfg().RenameService, func(sp *sim.Proc) error {
			err := c.fsys.ns.Rename(oldPath, newPath, sp.Now())
			if err == nil && !c.captureFill(sp, newPath) {
				simnet.Defer(sp, func() {
					st := c.st()
					st.attrs.Invalidate(newPath)
					st.dentries.Invalidate(newPath)
				})
			}
			return err
		})
		if err == nil {
			st := c.st()
			st.attrs.Invalidate(oldPath)
			st.dentries.Invalidate(oldPath)
		}
		return err
	}
	err := c.modifyRPC("rename", oldPath, c.cfg().RenameService, func(sp *sim.Proc) error {
		return c.fsys.ns.Rename(oldPath, newPath, sp.Now())
	})
	if err == nil {
		st := c.st()
		st.attrs.Invalidate(oldPath)
		st.dentries.Invalidate(oldPath)
		if a, serr := c.fsys.ns.Stat(newPath); serr == nil {
			st.dentries.PutPositive(newPath, a.Ino)
			st.attrs.Put(newPath, a)
		} else {
			st.attrs.Invalidate(newPath)
			st.dentries.Invalidate(newPath)
		}
	}
	return err
}

// Link issues a synchronous LINK RPC.
func (c *client) Link(oldPath, newPath string) error {
	if c.fsys.domained() {
		return c.modifyRPCDom("link", newPath, c.cfg().CreateService, func(sp *sim.Proc) error {
			err := c.fsys.ns.Link(oldPath, newPath, sp.Now())
			if err == nil {
				c.captureFill(sp, newPath)
			}
			return err
		})
	}
	err := c.modifyRPC("link", newPath, c.cfg().CreateService, func(sp *sim.Proc) error {
		return c.fsys.ns.Link(oldPath, newPath, sp.Now())
	})
	if err != nil {
		return err
	}
	if a, serr := c.fsys.ns.Stat(newPath); serr == nil {
		st := c.st()
		st.dentries.PutPositive(newPath, a.Ino)
		st.attrs.Put(newPath, a)
	}
	return nil
}

// Symlink issues a synchronous SYMLINK RPC.
func (c *client) Symlink(target, linkPath string) error {
	if c.fsys.domained() {
		return c.modifyRPCDom("symlink", linkPath, c.cfg().CreateService, func(sp *sim.Proc) error {
			_, e := c.fsys.ns.Symlink(target, linkPath, sp.Now())
			if e == nil {
				c.captureFill(sp, linkPath)
			}
			return e
		})
	}
	err := c.modifyRPC("symlink", linkPath, c.cfg().CreateService, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Symlink(target, linkPath, sp.Now())
		return e
	})
	if err != nil {
		return err
	}
	if a, serr := c.fsys.ns.Stat(linkPath); serr == nil {
		st := c.st()
		st.dentries.PutPositive(linkPath, a.Ino)
		st.attrs.Put(linkPath, a)
	}
	return nil
}

// modifyRPC is the common path of the namespace-changing operations on
// the legacy single-kernel filer. Its apply parameter only ever flows
// into Conn.Call, so caller literals stay on the stack; domained
// callers go through modifyRPCDom instead — a separate method for the
// same closure-escape reason CallDom is separate from Call.
func (c *client) modifyRPC(op, p string, svc time.Duration, apply func(sp *sim.Proc) error) error {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	var err error
	c.cn().Call(c.p, 150, 140, func(sp *sim.Proc) {
		lock := c.fsys.lockParent(p)
		if lock != nil {
			lock.Lock(sp)
			defer lock.Unlock()
		}
		c.fsys.service(sp, svc, c.fsys.parentEntries(p))
		err = apply(sp)
		if err == nil {
			c.fsys.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	return err
}

// modifyRPCDom is modifyRPC for the domained filer: the service body
// (and the caller's apply closure inside it) executes in the filer's
// kernel domain, so apply may read the namespace and register cache
// fills with simnet.Defer, but must not touch client state directly.
func (c *client) modifyRPCDom(op, p string, svc time.Duration, apply func(sp *sim.Proc) error) error {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	if err := c.resolveParents(p); err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	var err error
	c.cn().CallDom(c.p, 150, 140, func(sp *sim.Proc) {
		lock := c.fsys.lockParent(p)
		if lock != nil {
			lock.Lock(sp)
			defer lock.Unlock()
		}
		c.fsys.service(sp, svc, c.fsys.parentEntries(p))
		err = apply(sp)
		if err == nil {
			c.fsys.wafl.LogMetadata(sp, cfg.MetaLogBytes)
		}
	})
	return err
}

// captureFill snapshots path's server-side attributes from within a
// cross-domain service body (after the mutation applied) and registers
// the client cache fill for reply time. It reports whether the path
// resolved. Callers use it where the legacy code reads the namespace
// after the call returns — off limits once the namespace lives in the
// filer's domain.
func (c *client) captureFill(sp *sim.Proc, path string) bool {
	a, err := c.fsys.ns.Stat(path)
	if err != nil {
		return false
	}
	simnet.Defer(sp, func() {
		st := c.st()
		st.dentries.PutPositive(path, a.Ino)
		st.attrs.Put(path, a)
	})
	return true
}

// Stat serves from the attribute cache when fresh, else issues GETATTR.
func (c *client) Stat(p string) (fs.Attr, error) {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	st := c.st()
	if a, ok := st.attrs.Get(p); ok {
		return a, nil
	}
	if err := c.resolveParents(p); err != nil {
		return fs.Attr{}, err
	}
	if c.fsys.domained() {
		return c.statDom(p, cfg)
	}
	var a fs.Attr
	var err error
	c.cn().Call(c.p, 120, 140, func(sp *sim.Proc) {
		c.fsys.service(sp, cfg.GetattrService, -1)
		a, err = c.fsys.ns.Stat(p)
	})
	if err != nil {
		return fs.Attr{}, err
	}
	st.attrs.Put(p, a)
	st.dentries.PutPositive(p, a.Ino)
	return a, nil
}

// statDom is the GETATTR miss path against the domained filer. The body
// only copies the attr out; the client-side cache puts read that copy
// after the rendezvous, never the namespace.
func (c *client) statDom(p string, cfg Config) (fs.Attr, error) {
	st := c.st()
	var a fs.Attr
	var err error
	c.cn().CallDom(c.p, 120, 140, func(sp *sim.Proc) {
		c.fsys.service(sp, cfg.GetattrService, -1)
		a, err = c.fsys.ns.Stat(p)
	})
	if err != nil {
		return fs.Attr{}, err
	}
	st.attrs.Put(p, a)
	st.dentries.PutPositive(p, a.Ino)
	return a, nil
}

// ReadDir pages through the directory in 512-entry READDIR RPCs.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if c.fsys.domained() {
		return c.readDirDom(p, cfg)
	}
	var ents []fs.DirEntry
	var err error
	c.cn().Call(c.p, 130, 260, func(sp *sim.Proc) {
		ents, err = c.fsys.ns.ReadDir(p, sp.Now())
		if err != nil {
			c.fsys.service(sp, cfg.ReaddirService, -1)
			return
		}
		pages := (len(ents) + 511) / 512
		if pages < 1 {
			pages = 1
		}
		t := time.Duration(pages)*cfg.ReaddirService +
			time.Duration(len(ents))*cfg.ReaddirPerEntry
		c.fsys.service(sp, t, -1)
	})
	return ents, err
}

// readDirDom is ReadDir against the domained filer: the entry slice is
// built server-side and copied out through the rendezvous.
func (c *client) readDirDom(p string, cfg Config) ([]fs.DirEntry, error) {
	var ents []fs.DirEntry
	var err error
	c.cn().CallDom(c.p, 130, 260, func(sp *sim.Proc) {
		ents, err = c.fsys.ns.ReadDir(p, sp.Now())
		if err != nil {
			c.fsys.service(sp, cfg.ReaddirService, -1)
			return
		}
		pages := (len(ents) + 511) / 512
		if pages < 1 {
			pages = 1
		}
		t := time.Duration(pages)*cfg.ReaddirService +
			time.Duration(len(ents))*cfg.ReaddirPerEntry
		c.fsys.service(sp, t, -1)
	})
	return ents, err
}

// DropCaches clears the node's attribute and dentry caches.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
	st := c.st()
	st.attrs.Clear()
	st.dentries.Clear()
}
