package lustre

import (
	"fmt"
	"testing"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

func env(t *testing.T, nodes int, cfg Config) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(nodes))
	return k, cl, New(k, "t", cfg)
}

func inProc(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicOps(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Mkdir("/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Create("/d/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Create("/d/f"); fs.CodeOf(err) != fs.EEXIST {
			t.Errorf("dup create: %v", err)
		}
		a, err := c.Stat("/d/f")
		if err != nil || a.Type != fs.TypeRegular {
			t.Errorf("stat: %v %+v", err, a)
		}
		if err := c.Rename("/d/f", "/d/g"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if err := c.Unlink("/d/g"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if err := c.Rmdir("/d"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
	})
}

func TestObjectPreallocationRefills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumOSS = 2
	cfg.PreallocBatch = 64
	k, cl, f := env(t, 1, cfg)
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Mkdir("/d")
		for i := 0; i < 640; i++ {
			if err := c.Create(fmt.Sprintf("/d/%d", i)); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
	})
	// 640 creates over 2 OSTs with batch 64: 640/64 = 10 refills.
	if f.RefillCount != 10 {
		t.Fatalf("refills = %d, want 10", f.RefillCount)
	}
}

func TestWritebackCreateIsLocal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Writeback = true
	cfg.WritebackWindow = 1000
	k, cl, f := env(t, 2, cfg)
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		start := p.Now()
		if err := c.Create("/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		elapsed := p.Now() - start
		// Far below one network round trip.
		if elapsed >= cfg.OneWayLatency {
			t.Errorf("write-back create took %v, want < %v", elapsed, cfg.OneWayLatency)
		}
		// Locally visible immediately.
		if _, err := c.Stat("/f"); err != nil {
			t.Errorf("local stat: %v", err)
		}
		// Invisible from another node until flushed.
		r := f.NewClient(cl.Nodes[1], p)
		if _, err := r.Stat("/f"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("remote stat before flush: %v", err)
		}
		// After the flusher drains, the file is at the MDS.
		p.Sleep(100 * time.Millisecond)
		r.DropCaches()
		if _, err := r.Stat("/f"); err != nil {
			t.Errorf("remote stat after flush: %v", err)
		}
	})
}

func TestWritebackWindowBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Writeback = true
	cfg.WritebackWindow = 8
	k, cl, f := env(t, 1, cfg)
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		start := p.Now()
		for i := 0; i < 64; i++ {
			if err := c.Create(fmt.Sprintf("/f%d", i)); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
		elapsed := p.Now() - start
		// 64 creates with a window of 8: at least 56 must wait for MDS
		// round trips, so the total must exceed 56 * (RTT+service)/threads.
		min := 40 * (2*cfg.OneWayLatency + cfg.CreateService) / time.Duration(cfg.MDSThreads)
		if elapsed < min {
			t.Errorf("64 creates took %v, want >= %v (window must throttle)", elapsed, min)
		}
	})
}

func TestWritebackUnlinkWaitsForFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Writeback = true
	k, cl, f := env(t, 1, cfg)
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		if err := c.Create("/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Unlink("/f"); err != nil {
			t.Fatalf("unlink of pending create: %v", err)
		}
		if _, err := c.Stat("/f"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("stat after unlink: %v", err)
		}
	})
}

func TestSharedDirSerializesAtMDS(t *testing.T) {
	// Creates from two nodes into one directory serialize on the MDS
	// directory lock; separate directories proceed in parallel.
	const workers = 4
	elapsed := func(shared bool) time.Duration {
		k := sim.New(7)
		cl := cluster.New(k, cluster.DefaultConfig(workers))
		f := New(k, "t", DefaultConfig())
		k.Spawn("setup", func(p *sim.Proc) {
			c := f.NewClient(cl.Nodes[0], p)
			for i := 0; i < workers; i++ {
				c.Mkdir(fmt.Sprintf("/d%d", i))
			}
			for i := 0; i < workers; i++ {
				i := i
				p.Spawn("w", func(q *sim.Proc) {
					qc := f.NewClient(cl.Nodes[i], q)
					dir := "/d0"
					if !shared {
						dir = fmt.Sprintf("/d%d", i)
					}
					for j := 0; j < 40; j++ {
						qc.Create(fmt.Sprintf("%s/n%d-%d", dir, i, j))
					}
				})
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	same, diff := elapsed(true), elapsed(false)
	if float64(same) < 1.4*float64(diff) {
		t.Fatalf("shared dir %v vs own dirs %v: expected serialization", same, diff)
	}
}

func TestDataGoesToOSS(t *testing.T) {
	k, cl, f := env(t, 1, DefaultConfig())
	inProc(t, k, func(p *sim.Proc) {
		c := f.NewClient(cl.Nodes[0], p)
		c.Create("/f")
		h, err := c.Open("/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		before := f.RPCCount()
		c.Write(h, 1<<20)
		c.Close(h)
		// Data path bypasses the MDS entirely.
		if f.RPCCount() != before {
			t.Errorf("data flush issued %d MDS RPCs", f.RPCCount()-before)
		}
		a, _ := c.Stat("/f")
		if a.Size != 1<<20 {
			t.Errorf("size = %d", a.Size)
		}
	})
}
