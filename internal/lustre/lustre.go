// Package lustre models a parallel file system in the style of Lustre
// 1.6 (the LRZ configuration of §4.1.2): a single metadata server (MDS)
// backed by a journaling local file system, a set of object storage
// servers (OSS), MDS-side object pre-allocation in batches (whose refill
// stalls are visible in time-interval logs, §4.3.4), and an optional
// client-side metadata write-back cache (§4.8) that acknowledges creates
// locally and drains them to the MDS in the background.
package lustre

import (
	"fmt"
	"strconv"
	"time"

	"dmetabench/internal/clientcache"
	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/service"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
	"dmetabench/internal/storage"
)

// Config holds the tunables of the Lustre model.
type Config struct {
	MDSThreads    int
	NumOSS        int
	OneWayLatency time.Duration

	CreateService   time.Duration
	GetattrService  time.Duration
	RemoveService   time.Duration
	MkdirService    time.Duration
	RenameService   time.Duration
	ReaddirService  time.Duration
	ReaddirPerEntry time.Duration

	// PreallocBatch objects are granted per OSS refill; a create that
	// finds the MDS pool for its OSS empty performs a synchronous OSS
	// RPC (OSSRefillService + 2*OneWayLatency) while holding the MDS
	// thread — the allocation stalls of §4.3.4.
	PreallocBatch    int
	OSSRefillService time.Duration

	// Writeback enables the client metadata write-back cache: creates
	// complete locally and at most WritebackWindow operations may be
	// outstanding before creates block on the flusher.
	Writeback       bool
	WritebackWindow int

	AttrTTL   time.Duration
	DentryTTL time.Duration
	DirIndex  namespace.DirIndex
	// JournalCommit is the MDS journal group-commit interval.
	JournalCommit time.Duration
	ClientNice    int
	// Domains > 1 partitions the cell into kernel domains via the shared
	// service runtime (internal/service): domain 0 runs the clients (and
	// the write-back flushers), and the MDS — namespace, journal,
	// directory locks, prealloc pools — plus the OSS fan out round-robin
	// over domains 1..D-1. RPCs and refills become timestamped
	// cross-domain messages. With Domains <= 1 the model runs its exact
	// legacy single-kernel code path, byte for byte.
	Domains int
}

// DefaultConfig approximates the LRZ Lustre 1.6 system: one MDS, twelve
// OSS, creates noticeably more expensive than on the NFS filer.
func DefaultConfig() Config {
	return Config{
		MDSThreads:       4,
		NumOSS:           12,
		OneWayLatency:    250 * time.Microsecond,
		CreateService:    420 * time.Microsecond,
		GetattrService:   90 * time.Microsecond,
		RemoveService:    380 * time.Microsecond,
		MkdirService:     450 * time.Microsecond,
		RenameService:    500 * time.Microsecond,
		ReaddirService:   150 * time.Microsecond,
		ReaddirPerEntry:  900 * time.Nanosecond,
		PreallocBatch:    128,
		OSSRefillService: 300 * time.Microsecond,
		Writeback:        false,
		WritebackWindow:  4096,
		AttrTTL:          2 * time.Second,
		DentryTTL:        30 * time.Second,
		DirIndex:         namespace.IndexBTree,
		JournalCommit:    5 * time.Second,
		ClientNice:       0,
	}
}

// FS is one Lustre file system instance.
type FS struct {
	k   *sim.Kernel
	cfg Config

	// rt is the shared service runtime (domain placement): server 0 is
	// the MDS, servers 1..NumOSS the object servers. With Domains > 1
	// all MDS-side state below lives on rt.KernelFor(0).
	rt *service.Runtime

	mds     *simnet.Server
	oss     []*simnet.Server
	ossConn []*simnet.Conn // MDS-side connections for prealloc refills
	journal *storage.Journal
	ns      *namespace.Namespace

	conns    map[*cluster.Node]*simnet.Conn
	dirLocks map[fs.Ino]*sim.Mutex
	nodes    map[*cluster.Node]*wbState

	// pool is the MDS-side pre-allocated object count per OSS.
	pool    []int
	nextOSS int
	// RefillCount counts synchronous OSS refill RPCs (test observability).
	RefillCount int
	rpcs        int64

	// aggOps/aggShed/aggBusy count background demand injected through
	// AttachAggregate (operations, shed operations, busy nanoseconds).
	aggOps  int64
	aggShed int64
	aggBusy int64
}

// wbState is per-node client state: caches plus the write-back log.
type wbState struct {
	attrs    *clientcache.AttrCache
	dentries *clientcache.DentryCache

	pending map[string]fs.Attr // locally completed, not yet at the MDS
	queue   *sim.Queue
	window  *sim.Semaphore
	flusher *sim.Proc
	flushed *sim.Cond
}

// New creates a Lustre file system on kernel k.
func New(k *sim.Kernel, name string, cfg Config) *FS {
	rt := service.New(k, 1+cfg.NumOSS, cfg.Domains, cfg.OneWayLatency)
	mk := rt.KernelFor(0) // the MDS and everything it owns
	disk := storage.NewDisk(mk, "mdt:"+name, 4, 4*time.Millisecond, 80<<20)
	f := &FS{
		k:        k,
		cfg:      cfg,
		rt:       rt,
		mds:      simnet.NewServer(mk, "mds:"+name, cfg.MDSThreads),
		journal:  storage.NewJournal(mk, "mds:"+name, disk, cfg.JournalCommit),
		ns:       namespace.New(),
		conns:    make(map[*cluster.Node]*simnet.Conn),
		dirLocks: make(map[fs.Ino]*sim.Mutex),
		nodes:    make(map[*cluster.Node]*wbState),
		pool:     make([]int, cfg.NumOSS),
	}
	for i := 0; i < cfg.NumOSS; i++ {
		ok := rt.KernelFor(1 + i)
		srv := simnet.NewServer(ok, fmt.Sprintf("oss%d:%s", i, name), 2)
		f.oss = append(f.oss, srv)
		// Refill connections originate at the MDS, so their wire state
		// (unused here: bandwidth 0) belongs to the MDS kernel.
		f.ossConn = append(f.ossConn, simnet.NewConn(mk, srv, cfg.OneWayLatency, 0))
	}
	return f
}

// Group exposes the FS's domain group (nil when Domains <= 1); tests
// pin worker-count invariance through it.
func (f *FS) Group() *sim.DomainGroup { return f.rt.Group() }

// domained reports whether the MDS runs in its own kernel domain.
func (f *FS) domained() bool { return f.rt.Domained() }

// AttachAggregate starts the background injector (internal/service):
// MDSThreads daemon lanes on the MDS kernel domain, each drawing
// src(0, lane, tick) in strict tick order and occupying one MDS thread
// for the priced duration — analytically modeled client populations
// (internal/agg) loading the single MDS without per-client state. Call
// before the kernel runs.
func (f *FS) AttachAggregate(tick time.Duration, src func(server, lane, tick int) service.Demand) {
	service.AttachAggregate(service.AggregateConfig{
		Servers: 1,
		Lanes:   f.cfg.MDSThreads,
		Tick:    tick,
		Kernel:  func(int) *sim.Kernel { return f.mds.Kernel() },
		Pool:    func(int) *sim.Resource { return f.mds.Threads },
		Source:  src,
		Price:   func(_ int, d service.Demand) time.Duration { return f.priceAggregate(d) },
		Ops:     &f.aggOps,
		Shed:    &f.aggShed,
		Busy:    &f.aggBusy,
	})
}

// AggCounts returns injected / shed operation counts and cumulative
// injected service time; safe mid-run from any domain.
func (f *FS) AggCounts() (ops, shed int64, busy time.Duration) {
	return service.LoadI64(&f.aggOps), service.LoadI64(&f.aggShed),
		time.Duration(service.LoadI64(&f.aggBusy))
}

// priceAggregate prices one demand batch at the MDS's base per-class
// RPC costs (the model has no Lustre LOOKUP class; lookups price as
// GETATTRs). Directory-index and journal factors are not applied — the
// analytic stream has no concrete directories — which prices the
// background conservatively.
func (f *FS) priceAggregate(d service.Demand) time.Duration {
	return service.PriceTable{
		Getattr: f.cfg.GetattrService,
		Lookup:  f.cfg.GetattrService,
		Readdir: f.cfg.ReaddirService,
		Create:  f.cfg.CreateService,
	}.Price(d)
}

// Name identifies the model.
func (f *FS) Name() string {
	if f.cfg.Writeback {
		return "lustre-wb"
	}
	return "lustre"
}

// Namespace exposes the MDS namespace.
func (f *FS) Namespace() *namespace.Namespace { return f.ns }

// RPCCount returns the number of MDS RPCs served.
func (f *FS) RPCCount() int64 { return f.rpcs }

func (f *FS) conn(n *cluster.Node) *simnet.Conn {
	c, ok := f.conns[n]
	if !ok {
		c = simnet.NewConn(f.k, f.mds, f.cfg.OneWayLatency, 0)
		f.conns[n] = c
	}
	return c
}

func (f *FS) nodeState(n *cluster.Node) *wbState {
	s, ok := f.nodes[n]
	if !ok {
		s = &wbState{
			attrs:    clientcache.NewAttrCache(f.cfg.AttrTTL, f.k.Now),
			dentries: clientcache.NewDentryCache(f.cfg.DentryTTL, f.k.Now),
			pending:  make(map[string]fs.Attr),
		}
		if f.cfg.Writeback {
			s.queue = sim.NewQueue(f.k, "wb:"+n.Name)
			s.window = sim.NewSemaphore(f.k, "wbwin:"+n.Name, int64(f.cfg.WritebackWindow))
			s.flushed = sim.NewCond(f.k, "wbflushed:"+n.Name)
			s.flusher = f.k.SpawnDaemon("wbflush:"+n.Name, func(p *sim.Proc) {
				f.flushLoop(p, n, s)
			})
		}
		f.nodes[n] = s
	}
	return s
}

func (f *FS) dirLock(ino fs.Ino) *sim.Mutex {
	m, ok := f.dirLocks[ino]
	if !ok {
		// MDS-side lock: it lives (and is only ever locked) on the MDS
		// kernel domain.
		m = sim.NewMutex(f.mds.Kernel(), "mdsdir:"+strconv.FormatUint(uint64(ino), 10))
		f.dirLocks[ino] = m
	}
	return m
}

// allocObject consumes a pre-allocated object, refilling the pool with a
// synchronous OSS RPC when empty. Called while holding an MDS thread.
func (f *FS) allocObject(sp *sim.Proc) {
	idx := f.nextOSS
	f.nextOSS = (f.nextOSS + 1) % len(f.pool)
	if f.pool[idx] == 0 {
		f.RefillCount++
		// The refill runs from an MDS-domain proc; the OSS may live in
		// another domain, so the synchronous RPC goes through CallDom.
		if f.domained() {
			f.ossConn[idx].CallDom(sp, 200, 200, func(op *sim.Proc) {
				op.Sleep(f.cfg.OSSRefillService)
			})
		} else {
			f.ossConn[idx].Call(sp, 200, 200, func(op *sim.Proc) {
				op.Sleep(f.cfg.OSSRefillService)
			})
		}
		f.pool[idx] = f.cfg.PreallocBatch
	}
	f.pool[idx]--
}

// mdsCreate runs the server side of one create while holding an MDS
// thread: directory lock, service time, object allocation, journal.
func (f *FS) mdsCreate(sp *sim.Proc, p string) error {
	lock := f.lockParent(p)
	if lock != nil {
		lock.Lock(sp)
		defer lock.Unlock()
	}
	entries := f.parentEntries(p)
	t := float64(f.cfg.CreateService) * f.cfg.DirIndex.EntryCost(entries)
	sp.Sleep(time.Duration(t))
	f.rpcs++
	if _, err := f.ns.Create(p, 0o644, sp.Now()); err != nil {
		return err
	}
	f.allocObject(sp)
	f.journal.Log(512)
	return nil
}

func (f *FS) parentEntries(p string) int {
	dir, err := f.ns.Lookup(fs.ParentDir(p))
	if err != nil {
		return 0
	}
	return dir.NumChildren()
}

func (f *FS) lockParent(p string) *sim.Mutex {
	dir, err := f.ns.Lookup(fs.ParentDir(p))
	if err != nil {
		return nil
	}
	return f.dirLock(dir.Ino)
}

// flushLoop drains the write-back log of one node to the MDS.
func (f *FS) flushLoop(p *sim.Proc, n *cluster.Node, s *wbState) {
	conn := f.conn(n)
	dom := f.domained()
	for {
		item := s.queue.Get(p).(string)
		// Errors at replay (e.g. a conflicting create from another
		// node) are dropped; the benchmark namespace is partitioned
		// per process so conflicts cannot occur in our workloads.
		if dom {
			conn.CallDom(p, 200, 160, func(sp *sim.Proc) {
				_ = f.mdsCreate(sp, item)
			})
		} else {
			conn.Call(p, 200, 160, func(sp *sim.Proc) {
				_ = f.mdsCreate(sp, item)
			})
		}
		delete(s.pending, item)
		s.window.Release(1)
		s.flushed.Broadcast()
	}
}

// NewClient binds a client for one process on one node.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]*openFile)}
}

type openFile struct {
	path    string
	size    int64
	written int64
	dirty   bool
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

func (c *client) cfg() Config      { return c.fsys.cfg }
func (c *client) st() *wbState     { return c.fsys.nodeState(c.node) }
func (c *client) cn() *simnet.Conn { return c.fsys.conn(c.node) }

// Create either performs a synchronous intent-create RPC, or — in
// write-back mode — completes locally and enqueues the operation for the
// background flusher, blocking only when the write-back window is full.
func (c *client) Create(p string) error {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	st := c.st()
	if cfg.Writeback {
		if _, dup := st.pending[p]; dup {
			return fs.NewError("create", p, fs.EEXIST)
		}
		if exists, err := c.pathExists(p); err != nil {
			return err
		} else if exists {
			return fs.NewError("create", p, fs.EEXIST)
		}
		st.window.Acquire(c.p, 1) // blocks when the window is exhausted
		a := fs.Attr{Type: fs.TypeRegular, Nlink: 1, Mode: 0o644,
			Mtime: c.p.Now(), Ctime: c.p.Now(), Atime: c.p.Now()}
		st.pending[p] = a
		st.queue.Put(p)
		// Local bookkeeping cost of the cached operation.
		c.node.ExecNice(c.p, 4*time.Microsecond, cfg.ClientNice)
		return nil
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	// Separate literals per branch: CallDom's service parameter escapes
	// (the cross-domain path stores it in a message), so a shared
	// literal — and everything it captures — would heap-allocate on
	// every undomained create too. The legacy literal only ever flows
	// into Call and stays on the stack.
	if c.fsys.domained() {
		// Cross-domain the reply carries the fresh attributes: the
		// namespace may not be read from the client's domain, so the
		// cache fill is captured here and applied via Defer.
		var err error
		c.cn().CallDom(c.p, 220, 180, func(sp *sim.Proc) {
			err = c.fsys.mdsCreate(sp, p)
			if err == nil {
				if a, serr := c.fsys.ns.Stat(p); serr == nil {
					simnet.Defer(sp, func() {
						st.attrs.Put(p, a)
						st.dentries.PutPositive(p, a.Ino)
					})
				}
			}
		})
		return err
	}
	var err error
	c.cn().Call(c.p, 220, 180, func(sp *sim.Proc) {
		err = c.fsys.mdsCreate(sp, p)
	})
	if err != nil {
		return err
	}
	a, _ := c.fsys.ns.Stat(p)
	st.attrs.Put(p, a)
	st.dentries.PutPositive(p, a.Ino)
	return nil
}

// pathExists answers the write-back create's existence check. Legacy
// (single-kernel) it is a free namespace read. Under domains the MDS
// namespace may not be read from the client: pending entries and the
// client caches answer locally (a write-back client holds the directory
// under lease, §4.8), and an unknown path pays a real GETATTR intent to
// the MDS.
func (c *client) pathExists(p string) (bool, error) {
	if !c.fsys.domained() {
		_, err := c.fsys.ns.Stat(p)
		return err == nil, nil
	}
	st := c.st()
	if _, ok := st.attrs.Get(p); ok {
		return true, nil
	}
	if _, neg, ok := st.dentries.Lookup(p); ok {
		return !neg, nil
	}
	cfg := c.cfg()
	exists := false
	c.cn().CallDom(c.p, 150, 170, func(sp *sim.Proc) {
		sp.Sleep(cfg.GetattrService)
		c.fsys.rpcs++
		a, err := c.fsys.ns.Stat(p)
		ok := err == nil
		exists = ok
		simnet.Defer(sp, func() {
			if ok {
				st.attrs.Put(p, a)
				st.dentries.PutPositive(p, a.Ino)
			} else {
				st.dentries.PutNegative(p)
			}
		})
	})
	return exists, nil
}

// waitNotPending blocks until p has been flushed to the MDS (write-back
// mode ordering barrier for operations that follow a cached create).
func (c *client) waitNotPending(p string) {
	st := c.st()
	for {
		if _, ok := st.pending[p]; !ok {
			return
		}
		st.flushed.Wait(c.p)
	}
}

// Open resolves the path and returns a handle.
func (c *client) Open(p string) (fs.Handle, error) {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	st := c.st()
	if _, ok := st.pending[p]; ok {
		c.nextFH++
		c.handles[c.nextFH] = &openFile{path: p}
		return c.nextFH, nil
	}
	a, ok := st.attrs.Get(p)
	if !ok {
		var err error
		if c.fsys.domained() {
			a, err = c.statRPCDom(p, cfg)
		} else {
			a, err = c.statRPC(p, cfg)
		}
		if err != nil {
			return 0, err
		}
		st.attrs.Put(p, a)
	}
	c.nextFH++
	c.handles[c.nextFH] = &openFile{path: p, size: a.Size}
	return c.nextFH, nil
}

// statRPC issues one GETATTR RPC on the single-kernel path. Its twin
// statRPCDom carries a separate closure literal on purpose: CallDom's
// service parameter escapes (the cross-domain path stores it in a
// message), so one shared literal — and the Config and result slots it
// captures — would heap-allocate on every undomained GETATTR too.
func (c *client) statRPC(p string, cfg Config) (fs.Attr, error) {
	var a fs.Attr
	var err error
	c.cn().Call(c.p, 150, 170, func(sp *sim.Proc) {
		sp.Sleep(cfg.GetattrService)
		c.fsys.rpcs++
		a, err = c.fsys.ns.Stat(p)
	})
	return a, err
}

// statRPCDom is statRPC against the domained MDS: the body only copies
// the attr out through the rendezvous, never touching client state.
func (c *client) statRPCDom(p string, cfg Config) (fs.Attr, error) {
	var a fs.Attr
	var err error
	c.cn().CallDom(c.p, 150, 170, func(sp *sim.Proc) {
		sp.Sleep(cfg.GetattrService)
		c.fsys.rpcs++
		a, err = c.fsys.ns.Stat(p)
	})
	return a, err
}

// Close flushes buffered writes to the objects (data goes to the OSS, not
// the MDS).
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	if of.dirty {
		c.flushData(of)
	}
	return nil
}

// Write buffers data locally (Lustre client cache).
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	of.written += n
	of.dirty = true
	return nil
}

// Fsync forces buffered data out.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	if of.dirty {
		c.flushData(of)
	}
	return nil
}

// flushData sends dirty file data to the object's OSS.
func (c *client) flushData(of *openFile) {
	cfg := c.cfg()
	idx := 0
	if n := len(c.fsys.oss); n > 0 {
		idx = int(of.written) % n
	}
	conn := simnet.NewConn(c.fsys.k, c.fsys.oss[idx], cfg.OneWayLatency, 0)
	if c.fsys.domained() {
		conn.CallDom(c.p, 150+of.written, 150, func(sp *sim.Proc) {
			sp.Sleep(time.Duration(float64(50*time.Microsecond) * (1 + float64(of.written)/65536)))
		})
	} else {
		conn.Call(c.p, 150+of.written, 150, func(sp *sim.Proc) {
			sp.Sleep(time.Duration(float64(50*time.Microsecond) * (1 + float64(of.written)/65536)))
		})
	}
	st := c.st()
	written := of.written
	if a, ok := st.pending[of.path]; ok {
		a.Size += written
		st.pending[of.path] = a
	} else if c.fsys.domained() {
		// The MDS namespace may not be touched from the client's domain:
		// the size update travels as a fire-and-forget size-on-close
		// message to the MDS (the asynchronous MDS_SIZE update a Lustre
		// client issues), and the local attribute refresh rides on the
		// open handle's own bookkeeping instead of a namespace read.
		path := of.path
		c.cn().OneWay(c.p, 120, func(sp *sim.Proc) {
			if node, err := c.fsys.ns.Lookup(path); err == nil {
				c.fsys.ns.SetSize(node.Ino, node.Size+written, sp.Now())
			}
		})
	} else if node, err := c.fsys.ns.Lookup(of.path); err == nil {
		c.fsys.ns.SetSize(node.Ino, node.Size+of.written, c.p.Now())
		// The writing client holds the object lock and knows the new
		// size; refresh its attribute cache so local stats see it.
		if a, err := c.fsys.ns.Stat(of.path); err == nil {
			st.attrs.Put(of.path, a)
		}
	}
	of.size += of.written
	of.written = 0
	of.dirty = false
}

// Mkdir issues a synchronous MKDIR RPC to the MDS.
func (c *client) Mkdir(p string) error {
	return c.modifyRPC(p, c.cfg().MkdirService, func(sp *sim.Proc) error {
		_, err := c.fsys.ns.Mkdir(p, 0o755, sp.Now())
		if err == nil {
			c.fsys.journal.Log(512)
		}
		return err
	})
}

// Rmdir issues a synchronous RPC.
func (c *client) Rmdir(p string) error {
	return c.modifyRPC(p, c.cfg().RemoveService, func(sp *sim.Proc) error {
		err := c.fsys.ns.Rmdir(p, sp.Now())
		if err == nil {
			c.fsys.journal.Log(256)
		}
		return err
	})
}

// Unlink issues a synchronous RPC; in write-back mode it first waits for
// a pending create of the same path to drain.
func (c *client) Unlink(p string) error {
	if c.cfg().Writeback {
		c.waitNotPending(p)
	}
	err := c.modifyRPC(p, c.cfg().RemoveService, func(sp *sim.Proc) error {
		err := c.fsys.ns.Unlink(p, sp.Now())
		if err == nil {
			c.fsys.journal.Log(256)
		}
		return err
	})
	if err == nil {
		st := c.st()
		st.attrs.Invalidate(p)
		st.dentries.Invalidate(p)
	}
	return err
}

// Rename issues a synchronous RPC.
func (c *client) Rename(oldPath, newPath string) error {
	if c.cfg().Writeback {
		c.waitNotPending(oldPath)
	}
	err := c.modifyRPC(oldPath, c.cfg().RenameService, func(sp *sim.Proc) error {
		err := c.fsys.ns.Rename(oldPath, newPath, sp.Now())
		if err == nil {
			c.fsys.journal.Log(512)
		}
		return err
	})
	if err == nil {
		st := c.st()
		st.attrs.Invalidate(oldPath)
		st.dentries.Invalidate(oldPath)
		st.attrs.Invalidate(newPath)
		st.dentries.Invalidate(newPath)
	}
	return err
}

// Link issues a synchronous RPC.
func (c *client) Link(oldPath, newPath string) error {
	if c.cfg().Writeback {
		c.waitNotPending(oldPath)
	}
	return c.modifyRPC(newPath, c.cfg().CreateService, func(sp *sim.Proc) error {
		return c.fsys.ns.Link(oldPath, newPath, sp.Now())
	})
}

// Symlink issues a synchronous RPC to the MDS.
func (c *client) Symlink(target, linkPath string) error {
	return c.modifyRPC(linkPath, c.cfg().CreateService, func(sp *sim.Proc) error {
		_, e := c.fsys.ns.Symlink(target, linkPath, sp.Now())
		if e == nil {
			c.fsys.journal.Log(384)
		}
		return e
	})
}

func (c *client) modifyRPC(p string, svc time.Duration, apply func(sp *sim.Proc) error) error {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	// The domained twin lives in its own method so its escaping CallDom
	// closure never heap-boxes the Config on undomained mutations.
	if c.fsys.domained() {
		return c.modifyRPCDom(p, svc, cfg, apply)
	}
	var err error
	c.cn().Call(c.p, 200, 160, func(sp *sim.Proc) {
		lock := c.fsys.lockParent(p)
		if lock != nil {
			lock.Lock(sp)
			defer lock.Unlock()
		}
		t := float64(svc) * cfg.DirIndex.EntryCost(c.fsys.parentEntries(p))
		sp.Sleep(time.Duration(t))
		c.fsys.rpcs++
		err = apply(sp)
	})
	return err
}

func (c *client) modifyRPCDom(p string, svc time.Duration, cfg Config, apply func(sp *sim.Proc) error) error {
	var err error
	c.cn().CallDom(c.p, 200, 160, func(sp *sim.Proc) {
		lock := c.fsys.lockParent(p)
		if lock != nil {
			lock.Lock(sp)
			defer lock.Unlock()
		}
		t := float64(svc) * cfg.DirIndex.EntryCost(c.fsys.parentEntries(p))
		sp.Sleep(time.Duration(t))
		c.fsys.rpcs++
		err = apply(sp)
	})
	return err
}

// Stat serves pending write-back entries and fresh cached attributes
// locally, otherwise issues a GETATTR RPC to the MDS.
func (c *client) Stat(p string) (fs.Attr, error) {
	cfg := c.cfg()
	c.node.SyscallNice(c.p, cfg.ClientNice)
	st := c.st()
	if a, ok := st.pending[p]; ok {
		return a, nil
	}
	if a, ok := st.attrs.Get(p); ok {
		return a, nil
	}
	var a fs.Attr
	var err error
	if c.fsys.domained() {
		a, err = c.statRPCDom(p, cfg)
	} else {
		a, err = c.statRPC(p, cfg)
	}
	if err != nil {
		return fs.Attr{}, err
	}
	st.attrs.Put(p, a)
	st.dentries.PutPositive(p, a.Ino)
	return a, nil
}

// ReadDir issues READDIR RPCs to the MDS.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	cfg := c.cfg()
	c.node.Syscall(c.p)
	if c.fsys.domained() {
		return c.readDirDom(p, cfg)
	}
	var ents []fs.DirEntry
	var err error
	c.cn().Call(c.p, 150, 300, func(sp *sim.Proc) {
		ents, err = c.fsys.ns.ReadDir(p, sp.Now())
		pages := 1
		if err == nil {
			pages = (len(ents) + 1023) / 1024
			if pages < 1 {
				pages = 1
			}
		}
		sp.Sleep(time.Duration(pages)*cfg.ReaddirService +
			time.Duration(len(ents))*cfg.ReaddirPerEntry)
		c.fsys.rpcs++
	})
	return ents, err
}

// readDirDom is ReadDir against the domained MDS: the entry slice is
// built server-side and copied out through the rendezvous.
func (c *client) readDirDom(p string, cfg Config) ([]fs.DirEntry, error) {
	var ents []fs.DirEntry
	var err error
	c.cn().CallDom(c.p, 150, 300, func(sp *sim.Proc) {
		ents, err = c.fsys.ns.ReadDir(p, sp.Now())
		pages := 1
		if err == nil {
			pages = (len(ents) + 1023) / 1024
			if pages < 1 {
				pages = 1
			}
		}
		sp.Sleep(time.Duration(pages)*cfg.ReaddirService +
			time.Duration(len(ents))*cfg.ReaddirPerEntry)
		c.fsys.rpcs++
	})
	return ents, err
}

// DropCaches clears the node's volatile caches (the write-back log is
// not discarded — it holds unflushed modifications).
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
	st := c.st()
	st.attrs.Clear()
	st.dentries.Clear()
}
