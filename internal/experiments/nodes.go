package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/cxfs"
	"dmetabench/internal/localfs"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// E10PriorityScheduling reproduces §4.4: under CPU contention the OS
// scheduling priority of the benchmark process determines its metadata
// throughput. Two processes run cached-stat loops on a one-core node at
// different niceness; a burst of mid-priority compute load starves the
// low-priority process only.
func E10PriorityScheduling() *Report {
	r := &Report{ID: "E10", Title: "Process priority vs. metadata throughput",
		PaperRef: "§4.4"}
	k := sim.New(1010)
	cl := cluster.New(k, cluster.Config{Nodes: 1, Cores: 1, SyscallTime: 3 * time.Microsecond})
	node := cl.Nodes[0]
	fsys := localfs.New(k, node, localfs.DefaultConfig())

	const window = 6 * time.Second
	hogFrom, hogTo := 2*time.Second, 4*time.Second
	node.StartCPUHog(4, 5, hogFrom, hogTo-hogFrom)

	type res struct {
		total      int64
		during     int64
		atHogStart int64
	}
	run := func(name string, nice int, out *res) {
		k.Spawn(name, func(p *sim.Proc) {
			c := fsys.NewClient(node, p)
			if err := c.Create("/" + name); err != nil {
				return
			}
			for p.Now() < window {
				if _, err := c.Stat("/" + name); err != nil {
					return
				}
				node.ExecNice(p, 2*time.Microsecond, nice)
				out.total++
				if p.Now() <= hogFrom {
					out.atHogStart = out.total
				}
				if p.Now() > hogFrom && p.Now() <= hogTo {
					out.during++
				}
			}
		})
	}
	var hi, lo res
	run("nice0", 0, &hi)
	run("nice10", 10, &lo)
	if err := k.Run(); err != nil {
		r.finding("run failed: %v", err)
		return r
	}
	hogSecs := (hogTo - hogFrom).Seconds()
	r.row("nice 0 total ops", float64(hi.total), "ops", "6s window")
	r.row("nice 10 total ops", float64(lo.total), "ops", "")
	r.row("nice 0 ops/s during load", float64(hi.during)/hogSecs, "ops/s", "t=2..4s, 4 hogs at nice 5")
	r.row("nice 10 ops/s during load", float64(lo.during)/hogSecs, "ops/s", "")
	ratio := float64(hi.during+1) / float64(lo.during+1)
	r.row("priority advantage during load", ratio, "x", "")
	r.finding("paper: metadata throughput follows CPU scheduling priority under "+
		"contention; here the nice-0 process sustains %.0f ops/s while the "+
		"nice-10 process gets %.0f ops/s behind the nice-5 load",
		float64(hi.during)/hogSecs, float64(lo.during)/hogSecs)
	return r
}

// e11PPNs are the intra-node process counts of the SMP sweep.
var e11PPNs = map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true}

// runSMP sweeps intra-node process counts with one cell per PPN point,
// each on its own identically-seeded kernel (core.ParallelRunner).
func runSMP(mk func(k *sim.Kernel) core.FileSystem, seed int64, label string) *results.Set {
	pr := &core.ParallelRunner{
		New: func(k *sim.Kernel) *core.Runner {
			return &core.Runner{
				Cluster:      cluster.NewSMP(k, 64),
				FS:           mk(k),
				Params:       core.Params{ProblemSize: 1200, WorkDir: "/bench"},
				SlotsPerNode: 32,
				Plugins:      []core.Plugin{core.MakeFiles{}},
				Filter: func(c core.Combo) bool {
					return c.Nodes == 1 && e11PPNs[c.PPN]
				},
			}
		},
		Seed:  seed,
		Label: label,
	}
	set, err := pr.Run()
	if err != nil {
		return nil
	}
	return set
}

// E11SMPScaling reproduces §4.5.3: file creation on a large SMP partition
// scales with intra-node process count on NFS but not on CXFS, whose
// client-side metadata path serializes on the node token.
func E11SMPScaling() *Report {
	r := &Report{ID: "E11", Title: "Large-SMP intra-node scaling: CXFS vs NFS",
		PaperRef: "§4.5.3"}
	sets := parCells("E11", []string{"nfs", "cxfs"}, func(i int) *results.Set {
		if i == 0 {
			return runSMP(func(k *sim.Kernel) core.FileSystem {
				return newNFSFS(k, "home", nfs.DefaultConfig())
			}, 1111, "E11/nfs")
		}
		return runSMP(func(k *sim.Kernel) core.FileSystem {
			return cxfs.New(k, "cxfs", cxfs.DefaultConfig())
		}, 1112, "E11/cxfs")
	})
	nfsSet, cxSet := sets[0], sets[1]
	if nfsSet == nil || cxSet == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, nfsSet, cxSet)
	for _, ppn := range []int{1, 8, 32} {
		r.row(fmt.Sprintf("NFS creates/s @ ppn %d", ppn), stoneOf(nfsSet, "MakeFiles", 1, ppn), "ops/s", "")
		r.row(fmt.Sprintf("CXFS creates/s @ ppn %d", ppn), stoneOf(cxSet, "MakeFiles", 1, ppn), "ops/s", "")
	}
	nfs1 := stoneOf(nfsSet, "MakeFiles", 1, 1)
	nfs32 := stoneOf(nfsSet, "MakeFiles", 1, 32)
	cx1 := stoneOf(cxSet, "MakeFiles", 1, 1)
	cx32 := stoneOf(cxSet, "MakeFiles", 1, 32)
	r.finding("paper: on the 512-core Altix partition NFS gained from intra-node "+
		"parallelism while CXFS stayed flat; here NFS scales %.1fx and CXFS %.1fx "+
		"from 1 to 32 processes", nfs32/nfs1, cx32/cx1)
	r.Charts = append(r.Charts, charts.VsProcesses([]charts.LabeledSeries{
		{Label: "MakeFiles on NFS (1 SMP node)", Points: nfsSet.ScaleSeries("MakeFiles")},
		{Label: "MakeFiles on CXFS (1 SMP node)", Points: cxSet.ScaleSeries("MakeFiles")},
	}, chartW, chartH))
	return r
}
