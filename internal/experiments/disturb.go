package experiments

import (
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// nfsMakeFilesRun executes a timed MakeFiles run on an NFS filer with the
// given node count and an optional bench-start hook, returning the single
// measurement.
func nfsMakeFilesRun(seed int64, nodes int, window time.Duration,
	hook func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc)) (*results.Measurement, *results.Set) {

	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(nodes+1))
	fsys := newNFSFS(k, "home", nfs.DefaultConfig())
	r := &core.Runner{
		Cluster: cl,
		FS:      fsys,
		Params: core.Params{
			ProblemSize: 5000,
			TimeLimit:   window,
			WorkDir:     "/bench",
		},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == nodes && c.PPN == 1 },
	}
	if hook != nil {
		r.BenchStartHook = func(mp *sim.Proc, _ core.MeasurementInfo) { hook(cl, fsys, mp) }
	}
	set, err := r.Run()
	if err != nil {
		return nil, nil
	}
	return set.Find("MakeFiles", nodes, 1), set
}

// nfsRun is one nfsMakeFilesRun cell's result. Every disturbance
// experiment pairs a clean cell with a disturbed cell; the two runs
// share a seed but nothing else, so they fan out independently.
type nfsRun struct {
	m   *results.Measurement
	set *results.Set
}

// nfsCells runs one nfsMakeFilesRun per hook (nil hook = clean run) as
// parallel cells, all with the same seed, nodes and window.
func nfsCells(expID string, seed int64, nodes int, window time.Duration,
	names []string, hooks []func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc)) []nfsRun {

	return parCells(expID, names, func(i int) nfsRun {
		m, set := nfsMakeFilesRun(seed, nodes, window, hooks[i])
		return nfsRun{m, set}
	})
}

// E03CPUHogCOV reproduces Fig. 4.4: a CPU-bound disturbance on one of
// four client nodes shows up as a throughput dip and a step in the COV of
// per-process performance.
func E03CPUHogCOV() *Report {
	r := &Report{ID: "E03", Title: "CPU hog on one of 4 nodes: dip + COV step",
		PaperRef: "Fig. 4.4"}
	const window = 30 * time.Second
	hogFrom, hogTo := 10*time.Second, 16*time.Second

	runs := nfsCells("E03", 101, 4, window, []string{"clean", "hogged"},
		[]func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc){
			nil,
			func(cl *cluster.Cluster, _ *nfs.FS, mp *sim.Proc) {
				cl.Nodes[2].StartCPUHog(24, 0, mp.Now()+hogFrom, hogTo-hogFrom)
			},
		})
	clean, hogged, set := runs[0].m, runs[1].m, runs[1].set
	if clean == nil || hogged == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, set)

	before := windowThroughput(hogged, 2*time.Second, hogFrom)
	during := windowThroughput(hogged, hogFrom, hogTo)
	covBase := maxCOV(clean, 2*time.Second, hogFrom)
	covHog := maxCOV(hogged, hogFrom, hogTo)
	r.row("clean run total", float64(clean.TotalOps()), "ops", "")
	r.row("hogged run total", float64(hogged.TotalOps()), "ops", "")
	r.row("throughput before hog", before, "ops/s", "t=2..10s")
	r.row("throughput during hog", during, "ops/s", "t=10..16s, one node starved")
	r.row("max COV clean", covBase, "", "")
	r.row("max COV during hog", covHog, "", "")
	r.finding("paper: ~5500 -> ~4000 ops/s dip and a clear COV step; "+
		"here %.0f -> %.0f ops/s (%.0f%% dip) with COV %.2f -> %.2f",
		before, during, 100*(1-during/before), covBase, covHog)
	r.Charts = append(r.Charts, charts.TimeChart(hogged, chartW, chartH))
	return r
}

// E04SnapshotNoise reproduces Fig. 4.5: snapshot creation on the filer
// perturbs per-process performance randomly, raising the COV in an
// erratic way rather than as a clean step.
func E04SnapshotNoise() *Report {
	r := &Report{ID: "E04", Title: "Server snapshots: erratic COV",
		PaperRef: "Fig. 4.5"}
	const window = 30 * time.Second
	snapAt, snapLen := 9*time.Second, 10*time.Second

	runs := nfsCells("E04", 202, 4, window, []string{"clean", "snapshots"},
		[]func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc){
			nil,
			func(_ *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc) {
				mp.Spawn("snapshotter", func(p *sim.Proc) {
					p.Sleep(snapAt)
					fsys.WAFL().TriggerSnapshots(snapLen)
				})
			},
		})
	clean, snappy, set := runs[0].m, runs[1].m, runs[1].set
	if clean == nil || snappy == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, set)

	baseline := windowThroughput(snappy, 2*time.Second, snapAt)
	during := windowThroughput(snappy, snapAt, snapAt+snapLen)
	covBase := maxCOV(clean, 2*time.Second, window)
	covSnap := maxCOV(snappy, snapAt, snapAt+snapLen)
	r.row("throughput before snapshots", baseline, "ops/s", "")
	r.row("throughput during snapshots", during, "ops/s", "")
	r.row("max COV clean run", covBase, "", "")
	r.row("max COV during snapshots", covSnap, "", "randomized per request")
	r.finding("paper: COV rises 'in a much more random manner' than under a "+
		"node-local hog; here COV %.2f -> %.2f while throughput drops %.0f%%",
		covBase, covSnap, 100*(1-during/baseline))
	r.Charts = append(r.Charts, charts.TimeChart(snappy, chartW, chartH))
	return r
}

// E05ConsistencyPoints reproduces Fig. 4.6: at 20 nodes the filer
// saturates and the WAFL consistency points appear as a sawtooth; a CPU
// hog on one node no longer changes total throughput (other clients take
// over the freed capacity) but remains visible in the COV.
func E05ConsistencyPoints() *Report {
	r := &Report{ID: "E05", Title: "Saturation sawtooth; hog invisible in total, visible in COV",
		PaperRef: "Fig. 4.6"}
	const window = 22 * time.Second

	// cps is written only by the clean cell; parCells has joined every
	// cell before it is read below.
	var cps int
	runs := nfsCells("E05", 303, 20, window, []string{"clean", "hogged"},
		[]func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc){
			func(_ *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc) {
				mp.Spawn("cp-counter", func(p *sim.Proc) {
					p.Sleep(window)
					cps = fsys.WAFL().NumCPs()
				})
			},
			func(cl *cluster.Cluster, _ *nfs.FS, mp *sim.Proc) {
				cl.Nodes[5].StartCPUHog(24, 0, mp.Now()+4*time.Second, 6*time.Second)
			},
		})
	clean, hogged, set := runs[0].m, runs[1].m, runs[0].set
	if clean == nil || hogged == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, set)

	// Sawtooth: peak vs trough of interval throughput after warmup.
	var peak, trough float64
	trough = 1e18
	for _, row := range clean.Summary() {
		if row.T < 2*time.Second || row.T > window {
			continue
		}
		if row.Throughput > peak {
			peak = row.Throughput
		}
		if row.Throughput < trough && row.Throughput > 0 {
			trough = row.Throughput
		}
	}
	totalClean := float64(clean.TotalOps()) / window.Seconds()
	totalHog := float64(hogged.TotalOps()) / window.Seconds()
	covClean := maxCOV(clean, 4*time.Second, 10*time.Second)
	covHog := maxCOV(hogged, 4*time.Second, 10*time.Second)
	r.row("consistency points in window", float64(cps), "", "~10s cadence")
	r.row("peak interval throughput", peak, "ops/s", "")
	r.row("trough interval throughput", trough, "ops/s", "during CP")
	r.row("avg throughput clean", totalClean, "ops/s", "")
	r.row("avg throughput with hog", totalHog, "ops/s", "nearly unchanged at saturation")
	r.row("max COV clean (hog window)", covClean, "", "")
	r.row("max COV hogged (hog window)", covHog, "", "")
	r.finding("paper: sawtooth from WAFL CPs; total unchanged by a one-node hog "+
		"but COV separates it; here trough/peak = %.2f, totals %.0f vs %.0f ops/s, "+
		"COV %.2f vs %.2f", trough/peak, totalClean, totalHog, covClean, covHog)
	r.Charts = append(r.Charts, charts.TimeChart(clean, chartW, chartH))
	return r
}

// E06WriteInterference reproduces Fig. 4.7: a competing bulk write to the
// same filer slows all metadata clients together — the COV stays low
// while total throughput dips.
func E06WriteInterference() *Report {
	r := &Report{ID: "E06", Title: "Bulk data write slows metadata globally",
		PaperRef: "Fig. 4.7"}
	const window = 20 * time.Second

	runs := nfsCells("E06", 404, 20, window, []string{"clean", "bulk-write"},
		[]func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc){
			nil,
			func(cl *cluster.Cluster, fsys *nfs.FS, mp *sim.Proc) {
				writer := cl.Nodes[len(cl.Nodes)-1]
				mp.Spawn("bulk-writer", func(p *sim.Proc) {
					c := fsys.NewClient(writer, p)
					for i, at := range []time.Duration{5 * time.Second, 13 * time.Second} {
						if d := at - p.Now(); d > 0 {
							p.Sleep(d)
						}
						name := "/bigfile" + string(rune('a'+i))
						if err := c.Create(name); err != nil {
							return
						}
						h, err := c.Open(name)
						if err != nil {
							return
						}
						c.Write(h, 200<<20)
						c.Close(h) // flush: occupies the filer for seconds
						c.Unlink(name)
					}
				})
			},
		})
	clean, disturbed, set := runs[0].m, runs[1].m, runs[1].set
	if clean == nil || disturbed == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, set)

	base := windowThroughput(disturbed, 1*time.Second, 5*time.Second)
	during := windowThroughput(disturbed, 5*time.Second, 11*time.Second)
	covDuring := maxCOV(disturbed, 5*time.Second, 11*time.Second)
	covClean := maxCOV(clean, 5*time.Second, 11*time.Second)
	r.row("throughput before write", base, "ops/s", "")
	r.row("throughput during write", during, "ops/s", "")
	r.row("max COV during write", covDuring, "", "global slowdown: COV stays low")
	r.row("max COV clean", covClean, "", "")
	r.finding("paper: 'while the MakeFiles throughput decreases, there is very "+
		"little difference between the nodes'; here dip %.0f%% with COV %.2f "+
		"(clean %.2f)", 100*(1-during/base), covDuring, covClean)
	r.Charts = append(r.Charts, charts.TimeChart(disturbed, chartW, chartH))
	return r
}
