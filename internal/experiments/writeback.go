package experiments

import (
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// E15WritebackCaching reproduces §4.8: with a client-side metadata
// write-back cache, creates are acknowledged at client memory speed until
// the write-back window fills; the sustained rate then converges to the
// metadata server's service rate, and the burst is clearly visible in the
// time-interval log.
func E15WritebackCaching() *Report {
	r := &Report{ID: "E15", Title: "Write-back caching of metadata",
		PaperRef: "§4.8"}
	const window = 8 * time.Second

	cfg := lustre.DefaultConfig()
	cfg.Writeback = true
	cfg.WritebackWindow = 4096

	// Two cells: the write-back run and its synchronous reference.
	type e15cell struct {
		set  *results.Set
		err  error
		rate float64
	}
	cells := parCells("E15", []string{"writeback", "sync-ref"}, func(i int) e15cell {
		if i == 1 {
			// Synchronous reference: the same hardware without write-back.
			return e15cell{rate: singleProcWall(func(k *sim.Kernel) core.FileSystem {
				return newLustreFS(k, "scratch", lustre.DefaultConfig())
			}, core.MakeFiles{}, 800, 1502)}
		}
		k := sim.New(1501)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		run := &core.Runner{
			Cluster: cl,
			FS:      newLustreFS(k, "scratch", cfg),
			Params: core.Params{
				ProblemSize: 50000, // one directory; no rotation inside the window
				TimeLimit:   window,
				WorkDir:     "/bench",
			},
			SlotsPerNode: 1,
			Plugins:      []core.Plugin{core.MakeFiles{}},
		}
		set, err := run.Run()
		return e15cell{set: set, err: err}
	})
	set, err := cells[0].set, cells[0].err
	syncRate := cells[1].rate
	if err != nil {
		r.finding("run failed: %v", err)
		return r
	}
	r.Sets = append(r.Sets, set)
	m := set.Find("MakeFiles", 1, 1)
	if m == nil {
		r.finding("measurement missing")
		return r
	}
	burst := windowThroughput(m, 0, 200*time.Millisecond)
	sustained := windowThroughput(m, 4*time.Second, window)

	r.row("burst rate (first 200ms)", burst, "ops/s", "window filling at client speed")
	r.row("sustained rate (4..8s)", sustained, "ops/s", "metadata server drain rate")
	r.row("synchronous create rate", syncRate, "ops/s", "same system, no write-back")
	r.row("burst / sustained", burst/sustained, "x", "")
	r.row("write-back window", float64(cfg.WritebackWindow), "ops", "")
	r.finding("paper: Lustre acknowledges metadata changes from the client cache "+
		"until the server commits them; here the burst runs %.0fx above the "+
		"sustained rate, and sustained (%.0f ops/s) sits at the synchronous "+
		"server rate (%.0f ops/s)", burst/sustained, sustained, syncRate)
	r.Charts = append(r.Charts, charts.TimeChart(m, chartW, chartH))
	return r
}
