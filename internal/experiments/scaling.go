package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/namespace"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// e07Nodes are the node counts of the create-scaling sweep.
var e07Nodes = map[int]bool{1: true, 2: true, 4: true, 8: true, 12: true, 16: true}

// runCreateScaling sweeps the create-scaling plan with one cell per
// (nodes, ppn) point: every cell gets a fresh, identically-seeded
// kernel (core.ParallelRunner), so sweep points are independent and
// fan out across the worker pool.
func runCreateScaling(mk func(k *sim.Kernel) core.FileSystem, seed int64, label string) *results.Set {
	pr := &core.ParallelRunner{
		New: func(k *sim.Kernel) *core.Runner {
			return &core.Runner{
				Cluster:      cluster.New(k, cluster.DefaultConfig(16)),
				FS:           mk(k),
				Params:       core.Params{ProblemSize: 2000, WorkDir: "/bench"},
				SlotsPerNode: 4,
				Plugins:      []core.Plugin{core.MakeFiles{}},
				Filter: func(c core.Combo) bool {
					if c.PPN == 1 {
						return e07Nodes[c.Nodes]
					}
					return c.Nodes == 16 && (c.PPN == 2 || c.PPN == 4)
				},
			}
		},
		Seed:  seed,
		Label: label,
	}
	set, err := pr.Run()
	if err != nil {
		return nil
	}
	return set
}

// E07CreateScaling reproduces §4.3.2: file creation scaling of NFS vs
// Lustre over node counts. The filer wins on absolute rate; both settle
// at their server-side saturation point.
func E07CreateScaling() *Report {
	r := &Report{ID: "E07", Title: "NFS vs Lustre file creation scaling",
		PaperRef: "§4.3.2"}
	// Two nested fan-outs (one per file system), 8 sweep cells each; the
	// pool interleaves all 16 cells freely.
	sets := parCells("E07", []string{"nfs", "lustre"}, func(i int) *results.Set {
		if i == 0 {
			return runCreateScaling(func(k *sim.Kernel) core.FileSystem {
				return newNFSFS(k, "home", nfs.DefaultConfig())
			}, 707, "E07/nfs")
		}
		return runCreateScaling(func(k *sim.Kernel) core.FileSystem {
			return newLustreFS(k, "scratch", lustre.DefaultConfig())
		}, 708, "E07/lustre")
	})
	nfsSet, lusSet := sets[0], sets[1]
	if nfsSet == nil || lusSet == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, nfsSet, lusSet)
	for _, n := range []int{1, 4, 16} {
		r.row(fmt.Sprintf("NFS creates/s @ %d nodes x1", n), stoneOf(nfsSet, "MakeFiles", n, 1), "ops/s", "")
		r.row(fmt.Sprintf("Lustre creates/s @ %d nodes x1", n), stoneOf(lusSet, "MakeFiles", n, 1), "ops/s", "")
	}
	r.row("NFS creates/s @ 16 nodes x4", stoneOf(nfsSet, "MakeFiles", 16, 4), "ops/s", "64 procs")
	r.row("Lustre creates/s @ 16 nodes x4", stoneOf(lusSet, "MakeFiles", 16, 4), "ops/s", "64 procs")
	n1, n16 := stoneOf(nfsSet, "MakeFiles", 1, 1), stoneOf(nfsSet, "MakeFiles", 16, 1)
	l1, l16 := stoneOf(lusSet, "MakeFiles", 1, 1), stoneOf(lusSet, "MakeFiles", 16, 1)
	r.finding("paper: the NFS filer outperforms the Lustre MDS on small-file "+
		"creation at every node count; here NFS %.0f->%.0f ops/s and Lustre "+
		"%.0f->%.0f ops/s from 1 to 16 nodes (NFS lead %.1fx at saturation)",
		n1, n16, l1, l16, n16/l16)
	r.Charts = append(r.Charts, charts.VsNodes([]charts.LabeledSeries{
		{Label: "MakeFiles on NFS", Points: nfsSet.ScaleSeries("MakeFiles")},
		{Label: "MakeFiles on Lustre", Points: lusSet.ScaleSeries("MakeFiles")},
	}, 1, chartW, chartH))
	return r
}

// prefillRate measures the single-process create rate into a directory
// pre-filled (at zero simulated cost) with prefill entries.
func prefillRate(mk func(k *sim.Kernel) interface {
	core.FileSystem
	Namespace() *namespace.Namespace
}, prefill, probe int) float64 {
	k := sim.New(int64(9000 + prefill))
	cl := cluster.New(k, cluster.DefaultConfig(1))
	fsys := mk(k)
	ns := fsys.Namespace()
	if _, err := ns.Mkdir("/big", 0o755, 0); err != nil {
		return 0
	}
	for i := 0; i < prefill; i++ {
		if _, err := ns.Create(fmt.Sprintf("/big/pre%d", i), 0o644, 0); err != nil {
			return 0
		}
	}
	var rate float64
	k.Spawn("probe", func(p *sim.Proc) {
		c := fsys.NewClient(cl.Nodes[0], p)
		start := p.Now()
		for i := 0; i < probe; i++ {
			if err := c.Create(fmt.Sprintf("/big/new%d", i)); err != nil {
				return
			}
		}
		rate = float64(probe) / (p.Now() - start).Seconds()
	})
	if err := k.Run(); err != nil {
		return 0
	}
	return rate
}

// E08LargeDirectories reproduces §4.3.3: sequential create rates degrade
// with directory size according to the server's directory index, and
// parallel creates into one shared directory serialize while per-process
// directories scale.
func E08LargeDirectories() *Report {
	r := &Report{ID: "E08", Title: "Creates in large directories, sequential and parallel",
		PaperRef: "§4.3.3"}
	sizes := []int{1000, 10000, 100000}
	const probe = 300

	type variant struct {
		name string
		mk   func(k *sim.Kernel) interface {
			core.FileSystem
			Namespace() *namespace.Namespace
		}
	}
	variants := []variant{
		{"NFS/WAFL (hash dirs)", func(k *sim.Kernel) interface {
			core.FileSystem
			Namespace() *namespace.Namespace
		} {
			return newNFSFS(k, "home", nfs.DefaultConfig())
		}},
		{"NFS (linear dirs)", func(k *sim.Kernel) interface {
			core.FileSystem
			Namespace() *namespace.Namespace
		} {
			cfg := nfs.DefaultConfig()
			cfg.DirIndex = namespace.IndexLinear
			return newNFSFS(k, "home", cfg)
		}},
		{"Lustre (htree dirs)", func(k *sim.Kernel) interface {
			core.FileSystem
			Namespace() *namespace.Namespace
		} {
			return newLustreFS(k, "scratch", lustre.DefaultConfig())
		}},
	}
	// Parallel part: shared directory vs per-process directories on
	// Lustre, 8 nodes x 1 process. Self-contained (own kernel, seed 881)
	// so it runs as a cell alongside the prefill sweep.
	sharedVsOwn := func(plugin core.Plugin, problem int) float64 {
		k := sim.New(881)
		cl := cluster.New(k, cluster.DefaultConfig(8))
		fsys := newLustreFS(k, "scratch", lustre.DefaultConfig())
		run := &core.Runner{
			Cluster:      cl,
			FS:           fsys,
			Params:       core.Params{ProblemSize: problem, WorkDir: "/bench"},
			SlotsPerNode: 1,
			Plugins:      []core.Plugin{plugin},
			Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 1 },
		}
		set, err := run.Run()
		if err != nil {
			return 0
		}
		return stoneOf(set, plugin.Name(), 8, 1)
	}

	// One cell per (variant, size) prefill probe plus the two
	// parallel-create cells — 11 in all, merged in declaration order.
	nProbe := len(variants) * len(sizes)
	var names []string
	for _, v := range variants {
		for _, s := range sizes {
			names = append(names, fmt.Sprintf("%s@%d", v.name, s))
		}
	}
	names = append(names, "shared-dir", "own-dirs")
	vals := parCells("E08", names, func(i int) float64 {
		switch {
		case i < nProbe:
			return prefillRate(variants[i/len(sizes)].mk, sizes[i%len(sizes)], probe)
		case i == nProbe:
			return sharedVsOwn(core.MakeOnedirFiles{}, 8000) // 1000 per proc, one dir
		default:
			return sharedVsOwn(core.MakeFiles{}, 1000) // 1000 per proc, own dirs
		}
	})
	rates := make(map[string][]float64)
	for vi, v := range variants {
		for si, s := range sizes {
			rate := vals[vi*len(sizes)+si]
			rates[v.name] = append(rates[v.name], rate)
			r.row(fmt.Sprintf("%s @ %d entries", v.name, s), rate, "ops/s", "")
		}
	}
	lin := rates["NFS (linear dirs)"]
	hash := rates["NFS/WAFL (hash dirs)"]
	if len(lin) == 3 && len(hash) == 3 && lin[2] > 0 {
		r.finding("paper: hashed/tree directory indexes keep large directories "+
			"usable while linear scans collapse; here the linear variant loses "+
			"%.0fx from 1k to 100k entries while the hash variant loses %.1f%%",
			lin[0]/lin[2], 100*(1-hash[2]/hash[0]))
	}

	shared, own := vals[nProbe], vals[nProbe+1]
	r.row("Lustre 8x1, one shared directory", shared, "ops/s", "MakeOnedirFiles")
	r.row("Lustre 8x1, per-process directories", own, "ops/s", "MakeFiles")
	if shared > 0 {
		r.finding("paper: parallel creates in one directory serialize on the "+
			"directory lock; here per-process directories are %.1fx faster", own/shared)
	}
	return r
}

// E09AllocationBursts reproduces §4.3.4: internal allocation processes
// (modelled as Lustre OSS object pre-allocation refills) appear as
// periodic throughput dips in the time-interval log — invisible in any
// summary average.
func E09AllocationBursts() *Report {
	r := &Report{ID: "E09", Title: "Internal allocation bursts in the time log",
		PaperRef: "§4.3.4"}
	k := sim.New(909)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	cfg := lustre.DefaultConfig()
	cfg.NumOSS = 2
	cfg.PreallocBatch = 256
	cfg.OSSRefillService = 40 * time.Millisecond
	fsys := newLustreFS(k, "scratch", cfg)
	run := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 3000, WorkDir: "/bench"},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{core.MakeFiles{}},
	}
	set, err := run.Run()
	if err != nil {
		r.finding("run failed: %v", err)
		return r
	}
	r.Sets = append(r.Sets, set)
	m := set.Find("MakeFiles", 1, 1)
	if m == nil {
		r.finding("measurement missing")
		return r
	}
	var sum, min float64
	min = 1e18
	var n int
	for _, row := range m.Summary() {
		if row.Throughput <= 0 {
			continue
		}
		sum += row.Throughput
		if row.Throughput < min {
			min = row.Throughput
		}
		n++
	}
	mean := sum / float64(n)
	r.row("OSS pre-allocation refills", float64(fsys.RefillCount), "", "batch=256, 2 OSTs")
	r.row("mean interval throughput", mean, "ops/s", "")
	r.row("min interval throughput", min, "ops/s", "interval hit by a refill stall")
	r.row("dip depth", 100*(1-min/mean), "%", "")
	r.finding("paper: allocation activity is invisible in averages but shows as "+
		"periodic dips in the time log; here %d refills cause intervals %.0f%% "+
		"below the mean", fsys.RefillCount, 100*(1-min/mean))
	r.Charts = append(r.Charts, charts.TimeChart(m, chartW, chartH))
	return r
}
