package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/fault"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// The E19–E21 family injects server failures into the sharded MDS model
// (internal/fault driving internal/shard's primary/backup replication).
// The thesis only measures healthy systems, but its COV-based
// time-interval methodology (§3.2.5, §4.2) is exactly the instrument
// that exposes what a crash does to throughput over time; StoreTorrent
// and HopsFS motivate analyzing fault tolerance and metadata
// performance together. E19 shows the failure in the timeline, E20
// prices the replication that bounds it, and E21 scales the recovery
// itself.

// shardTimedRun executes a timed MakeFiles run on a sharded FS (8 nodes
// x 2 processes) with an optional bench-start hook, returning the
// measurement, the set and the FS for counter readout.
func shardTimedRun(seed int64, cfg shard.Config, window time.Duration,
	hook func(fsys *shard.FS, mp *sim.Proc)) (*results.Measurement, *results.Set, *shard.FS) {

	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(8))
	fsys := newShardFS(k, "meta", cfg)
	r := &core.Runner{
		Cluster: cl,
		FS:      fsys,
		Params: core.Params{
			ProblemSize: 1000,
			TimeLimit:   window,
			WorkDir:     "/bench",
		},
		SlotsPerNode: 2,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 2 },
	}
	if hook != nil {
		r.BenchStartHook = func(mp *sim.Proc, _ core.MeasurementInfo) { hook(fsys, mp) }
	}
	set, err := r.Run()
	if err != nil {
		return nil, nil, fsys
	}
	return set.Find("MakeFiles", 8, 2), set, fsys
}

// outageSeconds sums the sampling intervals between from and to whose
// throughput fell below frac of baseline — the measured service-outage
// window.
func outageSeconds(m *results.Measurement, baseline, frac float64, from, to time.Duration) time.Duration {
	var n int
	for _, r := range m.Summary() {
		if r.T > from && r.T <= to && r.Throughput < frac*baseline {
			n++
		}
	}
	return time.Duration(n) * m.Interval
}

// E19FailoverTimeline crashes one of two shards mid-run and watches the
// interval timeline: without replication the slice goes dark until the
// scheduled restart and every worker that routes to it stalls in retry
// backoff; with a synchronous backup the outage collapses to the
// detection delay plus journal replay. The crash is visible exactly the
// way §4.2's disturbances are: a throughput dip with a COV spike, then
// a recovery ramp.
func E19FailoverTimeline() *Report {
	r := &Report{ID: "E19", Title: "Failover timeline: mid-run shard crash, single vs. replicated",
		PaperRef: "beyond §4.2 (fault injection; HopsFS/StoreTorrent direction)"}
	const (
		window    = 20 * time.Second
		crashAt   = 6 * time.Second
		restartAt = 14 * time.Second
	)
	plan := (&fault.Plan{}).Outage(crashAt, restartAt, 0)
	if err := plan.Validate(); err != nil {
		r.finding("bad plan: %v", err)
		return r
	}
	run := func(seed int64, replicate bool) (*results.Measurement, *results.Set, *shard.FS) {
		cfg := shard.DefaultConfig(2)
		cfg.Replicate = replicate
		return shardTimedRun(seed, cfg, window, func(fsys *shard.FS, mp *sim.Proc) {
			plan.Start(mp, fsys)
		})
	}
	// Two cells: the unreplicated and the replicated run, each with its
	// own kernel and fault-plan instance.
	type e19cell struct {
		m   *results.Measurement
		set *results.Set
		fs  *shard.FS
	}
	cells := parCells("E19", []string{"single", "replicated"}, func(i int) e19cell {
		m, set, fsys := run(int64(1900+i), i == 1)
		return e19cell{m, set, fsys}
	})
	single, sset := cells[0].m, cells[0].set
	repl, rset, rfs := cells[1].m, cells[1].set, cells[1].fs
	if single == nil || repl == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, sset, rset)

	base := windowThroughput(single, 2*time.Second, crashAt)
	baseR := windowThroughput(repl, 2*time.Second, crashAt)
	durS := windowThroughput(single, crashAt, restartAt)
	durR := windowThroughput(repl, crashAt, restartAt)
	afterS := windowThroughput(single, 16*time.Second, window)
	outS := outageSeconds(single, base, 0.1, crashAt, window)
	outR := outageSeconds(repl, baseR, 0.1, crashAt, window)
	covBeforeS := maxCOV(single, 2*time.Second, crashAt)
	covCrashS := maxCOV(single, crashAt, restartAt+2*time.Second)
	covCrashR := maxCOV(repl, crashAt, restartAt+2*time.Second)

	r.row("single: creates/s before crash", base, "ops/s", "t=2..6s, 2 shards")
	r.row("single: creates/s during outage", durS, "ops/s", "t=6..14s, shard 0 dark")
	r.row("single: creates/s after restart", afterS, "ops/s", "t=16..20s")
	r.row("single: outage window", outS.Seconds(), "s", "<10% of baseline")
	r.row("single: max COV before crash", covBeforeS, "", "")
	r.row("single: max COV around crash", covCrashS, "", "stalled vs. surviving workers")
	r.row("repl: creates/s before crash", baseR, "ops/s", "synchronous backup on")
	r.row("repl: creates/s during crash window", durR, "ops/s",
		"backup serving slice 0; mirroring suspended while the partner is down")
	r.row("repl: outage window", outR.Seconds(), "s", "<10% of baseline")
	r.row("repl: max COV around crash", covCrashR, "", "")
	if len(rfs.Takeovers) > 0 {
		to := rfs.Takeovers[0]
		r.row("repl: takeover latency", to.Total().Seconds()*1000, "ms",
			fmt.Sprintf("detect %.0fms + replay %d entries", to.Detect.Seconds()*1000, to.Entries))
	}
	r.finding("a crash is a §4.2 disturbance: the single run dips %.0f -> %.0f ops/s "+
		"with COV %.2f -> %.2f and stays degraded for %.1fs until restart+recovery, "+
		"while the replicated run's backup takes over and bounds the outage to %.1fs "+
		"at a steady-state cost of %.0f vs %.0f ops/s",
		base, durS, covBeforeS, covCrashS, outS.Seconds(), outR.Seconds(), baseR, base)
	r.Charts = append(r.Charts,
		"single shard pair (no replication), crash at 6s, restart at 14s\n"+charts.TimeChart(single, chartW, chartH),
		"replicated pair, same fault plan\n"+charts.TimeChart(repl, chartW, chartH))
	return r
}

// E20ReplicationOverhead prices the insurance: the same create workload
// across shard counts with and without a synchronous backup mirror.
// Every file mutation pays one interconnect round trip and backup-side
// service before its RPC returns — throughput drops by that margin, the
// cost of the bounded outage E19 shows.
func E20ReplicationOverhead() *Report {
	r := &Report{ID: "E20", Title: "Replication overhead: creates/s with and without a synchronous backup",
		PaperRef: "beyond §4.3 (cost of HopsFS-style availability)"}
	plugin := e16Workload(0)
	shardCounts := []int{2, 4, 8}
	// One cell per (shard count, replication) pair — 6 independent runs.
	type e20cell struct {
		set     *results.Set
		rate    float64
		mirrors int64
	}
	names := make([]string, 0, 2*len(shardCounts))
	for _, n := range shardCounts {
		names = append(names, fmt.Sprintf("%dshards-plain", n), fmt.Sprintf("%dshards-repl", n))
	}
	cells := parCells("E20", names, func(i int) e20cell {
		cfg := shard.DefaultConfig(shardCounts[i/2])
		cfg.Replicate = i%2 == 1
		set, fsys := runSharded(2000, cfg, plugin, 400)
		if set == nil {
			return e20cell{}
		}
		return e20cell{set: set, rate: wallOf(set, plugin.Name(), 16, 4), mirrors: fsys.MirrorCount}
	})
	var xs, plainY, replY []float64
	for i, n := range shardCounts {
		plain, repl := cells[2*i], cells[2*i+1]
		if plain.set == nil || repl.set == nil {
			r.finding("run failed at %d shards", n)
			return r
		}
		r.Sets = append(r.Sets, plain.set, repl.set)
		xs = append(xs, float64(n))
		plainY = append(plainY, plain.rate)
		replY = append(replY, repl.rate)
		r.row(fmt.Sprintf("creates/s @ %d shards, plain", n), plain.rate, "ops/s", "")
		r.row(fmt.Sprintf("creates/s @ %d shards, replicated", n), repl.rate, "ops/s",
			fmt.Sprintf("%d mirrors", repl.mirrors))
		r.row(fmt.Sprintf("replication cost @ %d shards", n), 100*(1-repl.rate/plain.rate), "%", "")
	}
	last := len(xs) - 1
	r.finding("synchronous backup mirroring costs %.0f%%..%.0f%% of create throughput "+
		"across 2..8 shards (every mutation pays an interconnect round trip before "+
		"returning) — the premium for the bounded outage window of E19",
		100*(1-replY[0]/plainY[0]), 100*(1-replY[last]/plainY[last]))
	r.Charts = append(r.Charts, charts.Render(
		"Create throughput vs. shard count, with/without synchronous backup",
		"shards", "ops/s", chartW, chartH,
		[]charts.Series{
			{Name: "plain", X: xs, Y: plainY},
			{Name: "replicated", X: xs, Y: replY},
		}))
	return r
}

// E21RecoveryScaling measures what a takeover costs as the crashed
// shard's journal grows: the backup must replay every dirty entry
// before serving, so promotion latency rises linearly from the
// detection floor. The client-observed outage tracks it plus the retry
// grid the client happens to land on.
func E21RecoveryScaling() *Report {
	r := &Report{ID: "E21", Title: "Recovery-time scaling: takeover latency vs. journal length",
		PaperRef: "beyond §4.8 (journal replay on failover)"}
	probe := func(files int) (shard.Takeover, time.Duration, bool) {
		cfg := shard.DefaultConfig(2)
		cfg.Replicate = true
		cfg.JournalCap = 1 << 20                   // uncapped for the sweep: the journal is the variable
		cfg.ReplayPerEntry = 50 * time.Microsecond // slow store: replay dominates past ~4k entries
		k := sim.New(2100)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := newShardFS(k, "meta", cfg)
		// Find a directory whose files (and itself) live on shard 0.
		dir := ""
		for i := 0; i < 256; i++ {
			cand := fmt.Sprintf("/d%d", i)
			if fsys.ShardOfDir(cand) == 0 {
				dir = cand
				break
			}
		}
		var observed time.Duration
		ok := false
		k.Spawn("probe", func(p *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], p)
			if dir == "" || c.Mkdir(dir) != nil {
				return
			}
			for i := 0; i < files; i++ {
				if c.Create(fmt.Sprintf("%s/f%d", dir, i)) != nil {
					return
				}
			}
			fsys.Crash(p, 0)
			start := p.Now()
			if c.Create(dir+"/after-crash") != nil {
				return
			}
			observed = p.Now() - start
			ok = true
		})
		if err := k.Run(); err != nil || !ok || len(fsys.Takeovers) != 1 {
			return shard.Takeover{}, 0, false
		}
		return fsys.Takeovers[0], observed, true
	}

	// One probe cell per journal length.
	fileCounts := []int{0, 1000, 4000, 16000}
	type e21cell struct {
		to       shard.Takeover
		observed time.Duration
		ok       bool
	}
	names := make([]string, len(fileCounts))
	for i, files := range fileCounts {
		names[i] = fmt.Sprintf("%dfiles", files)
	}
	cells := parCells("E21", names, func(i int) e21cell {
		to, observed, ok := probe(fileCounts[i])
		return e21cell{to, observed, ok}
	})

	var xs, ys []float64
	var floor, top time.Duration
	for i, files := range fileCounts {
		to, observed, ok := cells[i].to, cells[i].observed, cells[i].ok
		if !ok {
			r.finding("probe failed at %d files", files)
			return r
		}
		if files == 0 {
			floor = to.Total()
		}
		top = to.Total()
		xs = append(xs, float64(to.Entries))
		ys = append(ys, to.Total().Seconds()*1000)
		r.row(fmt.Sprintf("takeover @ %5d dirty entries", to.Entries),
			to.Total().Seconds()*1000, "ms",
			fmt.Sprintf("client saw %.0fms", observed.Seconds()*1000))
	}
	r.row("detection floor", floor.Seconds()*1000, "ms", "lease expiry, empty journal")
	r.finding("takeover latency rises linearly with the dirty journal: from the "+
		"%.0fms detection floor to %.0fms at %.0fk entries — bounding the journal "+
		"(checkpoint cadence) is what bounds failover, the WAFL/ldiskfs replay "+
		"trade-off of §2.7/§4.8 resurfacing at the MDS level",
		floor.Seconds()*1000, top.Seconds()*1000, xs[len(xs)-1]/1000)
	r.Charts = append(r.Charts, charts.Render(
		"Takeover latency vs. journal entries replayed",
		"entries", "ms", chartW, chartH,
		[]charts.Series{{Name: "detect+replay", X: xs, Y: ys}}))
	return r
}
