package experiments

import (
	"time"

	"dmetabench/internal/par"
)

// Every experiment below decomposes into cells: independent units of
// simulated work (one seeded kernel run or one derived data point) that
// fan out across the par worker pool and merge in declaration order.
// Each cell writes only its own slot of the result slice, so the
// assembled report is byte-identical at any worker count; shared seeds
// are passed into cells explicitly, never drawn from shared state.
// cmd/experiments -j sets the pool size, -cells prints the recorded
// per-cell wall-clock timings.

// parCells runs one cell per name across the worker pool and returns
// the results in cell order. Timings are recorded as "<expID>/<name>".
func parCells[T any](expID string, names []string, run func(i int) T) []T {
	out := make([]T, len(names))
	par.Do(len(names), func(i int) {
		start := time.Now()
		out[i] = run(i)
		par.RecordTiming(expID+"/"+names[i], time.Since(start))
	})
	return out
}
