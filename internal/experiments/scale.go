package experiments

import (
	"fmt"
	"strconv"
	"time"

	"dmetabench/internal/agg"
	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
	"dmetabench/internal/workload"
)

// E31–E33: million-client scale. Per-client processes stop at a few
// hundred simulated clients; these experiments instead model the client
// population analytically (internal/agg) — Zipf object popularity,
// diurnal rate modulation, flash-crowd spikes, session churn — and
// inject the resulting arrival batches into the sharded MDS, while a
// handful of fully-simulated foreground probes (caches, leases, split
// bitmaps) ride on top and observe the contention. The harness is the
// perftest shape of fs-benchmark (core.StageRunner): per-interval
// tps/COV/latency percentiles over hours of virtual time.

// Period, when > 0, overrides the virtual-time horizon of every
// long-horizon experiment (the -period flag of cmd/experiments): E31
// compresses its simulated day and E32/E33 their hour into that span.
// 0 keeps each experiment's default, which the committed corpus uses.
var Period time.Duration

func periodOr(d time.Duration) time.Duration {
	if Period > 0 {
		return Period
	}
	return d
}

// stageInterval derives the sampling grid from the horizon: the
// canonical 1-minute interval at the default horizons, scaled down with
// -period so a compressed run still yields the same number of samples.
func stageInterval(period time.Duration, n int) time.Duration {
	iv := period / time.Duration(n)
	if iv < time.Second {
		iv = time.Second
	}
	return iv
}

// stageSpec is one long-horizon cell: a sharded MDS with an attached
// aggregate arrival process and a StageRunner probe set.
type stageSpec struct {
	seed         int64
	clients      int
	opsPerClient float64 // per active client, ops/s
	cfg          shard.Config
	diurnalAmp   float64
	spikes       bool
	period       time.Duration // total virtual horizon (diurnal cycle)
	interval     time.Duration
	probes       int
	think        time.Duration
	stages       []core.Stage
	prepare      func(c *core.Ctx) error
	label        string
}

// stageCell is the outcome of one cell, counters read post-run.
type stageCell struct {
	set     *results.Set
	aggOps  int64
	aggShed int64
	aggBusy time.Duration
	grants  int64
	revokes int64
	stale   int64
	caps    shard.CapacityStats
	err     string
}

// sheddedFrac is the fraction of background arrivals dropped by the
// open-loop admission control.
func (c *stageCell) shedFrac() float64 {
	total := c.aggOps + c.aggShed
	if total == 0 {
		return 0
	}
	return float64(c.aggShed) / float64(total)
}

// runStageCell builds one sharded simulation with the aggregate
// background attached and drives the staged probes over it. Everything
// stochastic is seeded from spec.seed, so a cell is a pure function of
// its spec — the byte-identity unit of the E31–E33 determinism tests.
func runStageCell(sp stageSpec) stageCell {
	k := sim.New(sp.seed)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	fsys := newShardFS(k, "meta", sp.cfg)
	lanes := sp.cfg.ShardThreads
	if lanes < 1 {
		lanes = 1
	}
	// A 250 ms arrival tick keeps each lane's pool hold well under the
	// foreground service times' queueing tolerance: the batch granularity
	// is what the probes' tail latency resolves, so it must stay small
	// against the sampling interval.
	const tick = 250 * time.Millisecond
	model := agg.Model{
		Clients:      sp.clients,
		OpsPerClient: sp.opsPerClient,
		Mix:          workload.DefaultMetaMix(),
		Zipf:         agg.ZipfPop{S: 1.1, V: 1, N: 512},
		Diurnal:      agg.Diurnal{Amplitude: sp.diurnalAmp, Period: sp.period},
		Churn:        agg.Churn{ActiveFrac: 0.5, SessionMean: 30 * time.Minute, Tick: tick},
		Tick:         tick,
		Seed:         sp.seed,
	}
	if sp.spikes {
		model.Spikes = agg.Spikes{MeanInterval: sp.period / 6, Peak: 2.5,
			Decay: sp.period / 36}
	}
	// Popularity routes to shards through the same placement hash real
	// paths use, so the Zipf head concentrates exactly where it would in
	// the namespace.
	route := func(obj int) int {
		return fsys.ShardOfDir("/h" + strconv.Itoa(obj))
	}
	sources := agg.NewSources(model, sp.cfg.NumShards, lanes, route)
	fsys.AttachAggregate(model.Tick, func(si, lane, tick int) shard.AggregateDemand {
		d := sources[si*lanes+lane].Tick(int64(tick))
		return shard.AggregateDemand{Getattr: d.Getattr, Lookup: d.Lookup,
			Readdir: d.Readdir, Create: d.Create}
	})
	r := &core.StageRunner{
		Cluster:  cl,
		FS:       fsys,
		Probes:   sp.probes,
		Interval: sp.interval,
		Think:    sp.think,
		Label:    sp.label,
		Stages:   sp.stages,
		Prepare:  sp.prepare,
		Aux: func() int64 {
			ops, _, _ := fsys.AggCounts()
			return ops
		},
	}
	set, err := r.Run()
	c := stageCell{set: set}
	if err != nil {
		c.err = err.Error()
		return c
	}
	c.aggOps, c.aggShed, c.aggBusy = fsys.AggCounts()
	c.grants, c.revokes, c.stale = fsys.LeaseGrants, fsys.Revocations, fsys.StaleReads
	c.caps = fsys.CapacityStats()
	return c
}

// stageMeasurement returns the cell's measurement for a stage name.
func (c *stageCell) stageMeasurement(name string) *results.Measurement {
	if c.set == nil {
		return nil
	}
	for _, m := range c.set.Measurements {
		if m.Op == name {
			return m
		}
	}
	return nil
}

// probeP99 extracts the whole-stage foreground p99 in microseconds.
func probeP99(m *results.Measurement) float64 {
	if m == nil || m.Latencies["probe"] == nil {
		return 0
	}
	return float64(m.Latencies["probe"].Percentile(0.99).Microseconds())
}

func probeP999(m *results.Measurement) float64 {
	if m == nil || m.Latencies["probe"] == nil {
		return 0
	}
	return float64(m.Latencies["probe"].Percentile(0.999).Microseconds())
}

// E31AggregateDay runs a simulated day at 1.2 million aggregate clients
// over an 8-shard MDS: diurnal modulation alone, then diurnal plus
// flash crowds. The report is the long-horizon view the per-client
// experiments cannot produce: background throughput and its temporal
// COV over the day, shed fraction once spikes push past pool capacity,
// and the foreground tail riding on top.
func E31AggregateDay() *Report {
	r := &Report{ID: "E31", Title: "A simulated day at 1.2M aggregate clients",
		PaperRef: "beyond §3.3 (fs-benchmark perftest shape, -period 3h)"}
	period := periodOr(3 * time.Hour)
	interval := stageInterval(period, 180)
	const clients = 1_200_000
	mk := func(seed int64, spikes bool, label string) stageSpec {
		return stageSpec{
			seed:         seed,
			clients:      clients,
			opsPerClient: 0.5,
			cfg:          shard.DefaultConfig(8),
			diurnalAmp:   0.6,
			spikes:       spikes,
			period:       period,
			interval:     interval,
			probes:       4,
			think:        time.Second,
			stages:       []core.Stage{{Name: "day", Duration: period}},
			label:        "E31-" + label,
		}
	}
	cells := parCells("E31", []string{"diurnal", "flash"}, func(i int) stageCell {
		if i == 0 {
			return runStageCell(mk(3101, false, "diurnal"))
		}
		return runStageCell(mk(3102, true, "flash"))
	})
	names := []string{"diurnal", "diurnal+flash"}
	var series []charts.Series
	for i := range cells {
		c := &cells[i]
		if c.err != "" || c.set == nil {
			r.finding("cell %s failed: %s", names[i], c.err)
			return r
		}
		r.Sets = append(r.Sets, c.set)
		m := c.stageMeasurement("day")
		w, ok := m.Window(0, period)
		if !ok {
			r.finding("cell %s produced no intervals", names[i])
			return r
		}
		r.row(fmt.Sprintf("%-14s mean background", names[i]), w.MeanAuxRate/1000,
			"kops/s", fmt.Sprintf("%d clients", clients))
		r.row(fmt.Sprintf("%-14s peak/trough", names[i]),
			safeDiv(w.PeakAuxRate, w.TroughAuxRate), "x",
			fmt.Sprintf("%.0fk / %.0fk ops/s", w.PeakAuxRate/1000, w.TroughAuxRate/1000))
		r.row(fmt.Sprintf("%-14s temporal COV", names[i]), m.AuxCOV(), "", "")
		r.row(fmt.Sprintf("%-14s shed fraction", names[i]), 100*c.shedFrac(),
			"%", "open-loop admission control")
		r.row(fmt.Sprintf("%-14s foreground p99", names[i]),
			float64(w.MaxP99.Microseconds()), "us", "worst interval")
		xs := make([]float64, 0, len(m.Series))
		ys := make([]float64, 0, len(m.Series))
		for _, s := range m.Series {
			xs = append(xs, s.T.Hours())
			ys = append(ys, float64(s.Aux)/interval.Seconds()/1000)
		}
		series = append(series, charts.Series{Name: names[i], X: xs, Y: ys})
	}
	d, f := &cells[0], &cells[1]
	dw, _ := d.stageMeasurement("day").Window(0, period)
	fw, _ := f.stageMeasurement("day").Window(0, period)
	r.finding("the aggregate model holds %d clients in O(shards x lanes) state "+
		"over a full simulated day: the diurnal cycle alone swings the "+
		"background %.1fx peak-to-trough, flash crowds push that to %.1fx and "+
		"raise the shed fraction from %.1f%% to %.1f%% as spikes cross pool "+
		"capacity",
		clients, safeDiv(dw.PeakAuxRate, dw.TroughAuxRate),
		safeDiv(fw.PeakAuxRate, fw.TroughAuxRate),
		100*d.shedFrac(), 100*f.shedFrac())
	r.Charts = append(r.Charts, charts.Render(
		"Background arrival throughput over the simulated day",
		"hours", "kops/s", chartW, chartH, series))
	return r
}

// safeDiv guards a ratio against an empty trough.
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// e32Shared is the directory the E32 probes contend in.
const e32Shared = "/probe/shared"

func e32SharedFile(rank, i int) string {
	return fmt.Sprintf("%s/r%d-%d", e32Shared, rank, i)
}

// e32Prepare extends the default probe setup with a shared directory:
// each probe owns a private stat ring (warm leases nobody revokes) and
// a slice of the shared directory (leases the other probes' creates
// revoke).
func e32Prepare(c *core.Ctx) error {
	if err := core.MkdirAll(c.FS, c.Dir); err != nil {
		return err
	}
	for j := 0; j < 8; j++ {
		if err := c.FS.Create(c.Dir + "/" + strconv.Itoa(j)); err != nil {
			return err
		}
	}
	if err := core.MkdirAll(c.FS, e32Shared); err != nil {
		return err
	}
	for j := 0; j < 8; j++ {
		if err := c.FS.Create(e32SharedFile(c.Rank, j)); err != nil {
			return err
		}
	}
	return nil
}

// e32MutateOp stats the probe's shared-slice files, with every eighth
// op a create in the shared directory — the mutation that revokes the
// other probes' leases there.
func e32MutateOp(c *core.Ctx, i int) error {
	if i%8 == 7 {
		return c.FS.Create(fmt.Sprintf("%s/w%d-%d", e32Shared, c.Rank, i))
	}
	_, err := c.FS.Stat(e32SharedFile(c.Rank, i%8))
	return err
}

// E32ForegroundTail sweeps the background population 10k → 1M under
// lease-coherent foreground probes: a private-ring stat stage (leases
// never revoked) then a shared-directory stage where probe creates
// force revocations. The question is what the analytic crowd does to
// the tail of the few real clients.
func E32ForegroundTail() *Report {
	r := &Report{ID: "E32", Title: "Foreground tail latency under 10k-1M background clients",
		PaperRef: "beyond §4.5 (lease coherence at population scale)"}
	period := periodOr(time.Hour)
	interval := stageInterval(period, 60)
	pops := []int{10_000, 100_000, 1_000_000}
	names := []string{"10k", "100k", "1M"}
	cells := parCells("E32", names, func(i int) stageCell {
		cfg := shard.DefaultConfig(8)
		cfg.CacheMode = shard.CacheLease
		cfg.TrackStaleness = true
		return runStageCell(stageSpec{
			seed:         3201 + int64(i),
			clients:      pops[i],
			opsPerClient: 0.5,
			cfg:          cfg,
			period:       period,
			interval:     interval,
			probes:       4,
			think:        time.Second,
			stages: []core.Stage{
				{Name: "private", Duration: period / 4},
				{Name: "shared", Duration: period - period/4, Op: e32MutateOp},
			},
			prepare: e32Prepare,
			label:   "E32-" + names[i],
		})
	})
	var p99s []float64
	for i := range cells {
		c := &cells[i]
		if c.err != "" || c.set == nil {
			r.finding("cell %s failed: %s", names[i], c.err)
			return r
		}
		r.Sets = append(r.Sets, c.set)
		priv, sh := c.stageMeasurement("private"), c.stageMeasurement("shared")
		p99 := probeP99(sh)
		p99s = append(p99s, p99)
		r.row(fmt.Sprintf("%-5s clients  private p99", names[i]), probeP99(priv),
			"us", "own ring, no revocations")
		r.row(fmt.Sprintf("%-5s clients  shared  p99", names[i]), p99,
			"us", fmt.Sprintf("p999 %.0f us", probeP999(sh)))
		r.row(fmt.Sprintf("%-5s clients  lease traffic", names[i]),
			float64(c.revokes), "revk", fmt.Sprintf("%d grants, %d stale reads",
				c.grants, c.stale))
		r.row(fmt.Sprintf("%-5s clients  shed fraction", names[i]),
			100*c.shedFrac(), "%", "")
	}
	if len(p99s) == 3 && p99s[0] > 0 {
		r.finding("the foreground tail is priced by the crowd it shares the "+
			"pool with: shared-directory p99 grows %.1fx as the background "+
			"population sweeps 10k -> 1M (%.0f -> %.0f us), while the lease "+
			"protocol itself stays population-independent",
			p99s[2]/p99s[0], p99s[0], p99s[2])
	}
	return r
}

// e33LeaseBytes is the modeled per-entry footprint of a server lease
// record (path key + grant + callback ref), used to translate the
// analytic population into the memory a per-client lease table would
// need — the state the aggregate model exists to avoid materializing.
const e33LeaseBytes = 120

// e33EntriesPerClient is the modeled working set per background client
// (leases on its open files and hot directories).
const e33EntriesPerClient = 4

// E33CapacityPressure measures the state that grows with scale: after a
// create-heavy run at each population it takes a census of server lease
// tables, split bookkeeping, journals and client caches (the
// fully-simulated state), and compares with the modeled size of a lease
// table that tracked every background client individually.
func E33CapacityPressure() *Report {
	r := &Report{ID: "E33", Title: "Lease-table and splitmap memory pressure at scale",
		PaperRef: "beyond §4.5/§4.8 (state capacity at population scale)"}
	period := periodOr(30 * time.Minute)
	interval := stageInterval(period, 30)
	pops := []int{10_000, 100_000, 1_000_000}
	names := []string{"10k", "100k", "1M"}
	growOp := func(c *core.Ctx, i int) error {
		if i%4 == 3 {
			return c.FS.Create(fmt.Sprintf("%s/g%d-%d", e32Shared, c.Rank, i))
		}
		_, err := c.FS.Stat(e32SharedFile(c.Rank, i%8))
		return err
	}
	cells := parCells("E33", names, func(i int) stageCell {
		cfg := shard.DefaultConfig(8)
		cfg.CacheMode = shard.CacheLease
		cfg.SplitThreshold = 512
		return runStageCell(stageSpec{
			seed:         3301 + int64(i),
			clients:      pops[i],
			opsPerClient: 0.5,
			cfg:          cfg,
			period:       period,
			interval:     interval,
			probes:       4,
			think:        250 * time.Millisecond,
			stages:       []core.Stage{{Name: "grow", Duration: period, Op: growOp}},
			prepare:      e32Prepare,
			label:        "E33-" + names[i],
		})
	})
	for i := range cells {
		c := &cells[i]
		if c.err != "" || c.set == nil {
			r.finding("cell %s failed: %s", names[i], c.err)
			return r
		}
		r.Sets = append(r.Sets, c.set)
		st := c.caps
		clientEntries := st.ClientAttrs + st.ClientDentries + st.ClientLeases +
			st.ClientSplitDirs
		r.row(fmt.Sprintf("%-5s clients  server lease entries", names[i]),
			float64(st.LeaseEntries), "", fmt.Sprintf("%d delegations", st.Delegations))
		r.row(fmt.Sprintf("%-5s clients  split dirs", names[i]),
			float64(st.SplitDirs), "", fmt.Sprintf("%d journal entries", st.JournalEntries))
		r.row(fmt.Sprintf("%-5s clients  client cache entries", names[i]),
			float64(clientEntries), "", fmt.Sprintf("%d nodes", st.Nodes))
		modeled := float64(pops[i]) * 0.5 * e33EntriesPerClient * e33LeaseBytes / 1e6
		r.row(fmt.Sprintf("%-5s clients  modeled per-client table", names[i]),
			modeled, "MB", fmt.Sprintf("%d entries/client x %d B", e33EntriesPerClient,
				e33LeaseBytes))
	}
	last := &cells[len(cells)-1]
	modeled1M := float64(pops[2]) * 0.5 * e33EntriesPerClient * e33LeaseBytes / 1e6
	r.finding("tracked state is foreground-proportional, not "+
		"population-proportional: the census counts %d entries at 1M background "+
		"clients, while a per-client lease table for the same population would "+
		"need ~%.0f MB — the state the aggregate arrival model avoids",
		last.caps.Entries(), modeled1M)
	return r
}
