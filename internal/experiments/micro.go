package experiments

import (
	"fmt"
	"strconv"
	"time"

	"dmetabench/internal/core"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
)

// nullClient is an fs.Client over a bare namespace with no simulated
// costs: it isolates the pure Go overhead of the harness (E02) and
// provides a cheap substrate for op counting (E01).
type nullClient struct {
	ns      *namespace.Namespace
	nextFH  fs.Handle
	handles map[fs.Handle]fs.Ino
}

func newNullClient() *nullClient {
	return &nullClient{ns: namespace.New(), handles: make(map[fs.Handle]fs.Ino)}
}

func (c *nullClient) Create(p string) error {
	_, err := c.ns.Create(p, 0o644, 0)
	return err
}

func (c *nullClient) Open(p string) (fs.Handle, error) {
	n, err := c.ns.Lookup(p)
	if err != nil {
		return 0, err
	}
	c.nextFH++
	c.handles[c.nextFH] = n.Ino
	return c.nextFH, nil
}

func (c *nullClient) Close(h fs.Handle) error {
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	return nil
}

func (c *nullClient) Write(h fs.Handle, n int64) error {
	ino, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	node := c.ns.Get(ino)
	if node == nil {
		return fs.NewError("write", "", fs.ESTALE)
	}
	return c.ns.SetSize(ino, node.Size+n, 0)
}

func (c *nullClient) Fsync(h fs.Handle) error {
	if _, ok := c.handles[h]; !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	return nil
}

func (c *nullClient) Mkdir(p string) error {
	_, err := c.ns.Mkdir(p, 0o755, 0)
	return err
}

func (c *nullClient) Rmdir(p string) error  { return c.ns.Rmdir(p, 0) }
func (c *nullClient) Unlink(p string) error { return c.ns.Unlink(p, 0) }
func (c *nullClient) Rename(o, n string) error {
	return c.ns.Rename(o, n, 0)
}
func (c *nullClient) Link(o, n string) error { return c.ns.Link(o, n, 0) }
func (c *nullClient) Symlink(target, link string) error {
	_, err := c.ns.Symlink(target, link, 0)
	return err
}
func (c *nullClient) Stat(p string) (fs.Attr, error) {
	return c.ns.Stat(p)
}
func (c *nullClient) ReadDir(p string) ([]fs.DirEntry, error) {
	return c.ns.ReadDir(p, 0)
}
func (c *nullClient) DropCaches() {}

// E01SyscallCounts reproduces the dtrace finding of §4.2.1: a high-level
// file object API issues an extra stat per created file compared with the
// thin OS-call wrapper. We count client operations for both styles.
func E01SyscallCounts() *Report {
	r := &Report{ID: "E01", Title: "API-level operation counts per create",
		PaperRef: "§4.2.1 (dtrace op counting)"}
	const n = 10000

	// Two independent cells, one per API style, each over its own
	// namespace and counter.
	type countRun struct {
		c   *fs.CountingClient
		err error
	}
	create := []func(fs.Client, string) error{fs.CreateHighLevel, fs.CreateDirect}
	cells := parCells("E01", []string{"high-level", "direct"}, func(i int) countRun {
		c := fs.NewCountingClient(newNullClient())
		for j := 0; j < n; j++ {
			if err := create[i](c, fmt.Sprintf("/f%d", j)); err != nil {
				return countRun{c, err}
			}
		}
		return countRun{c, nil}
	})
	naive, direct := cells[0].c, cells[1].c
	if cells[0].err != nil {
		r.finding("high-level create failed: %v", cells[0].err)
		return r
	}
	if cells[1].err != nil {
		r.finding("direct create failed: %v", cells[1].err)
		return r
	}
	r.row("high-level: stat ops", float64(naive.N.Get(fs.OpStat)), "calls", "extra stat per file, like Python file objects")
	r.row("high-level: open ops", float64(naive.N.Get(fs.OpOpen)), "calls", "")
	r.row("high-level: create ops", float64(naive.N.Get(fs.OpCreate)), "calls", "")
	r.row("high-level: total ops", float64(naive.N.Total()), "calls", "")
	r.row("direct: total ops", float64(direct.N.Total()), "calls", "os.open-style thin wrapper")
	ratio := float64(naive.N.Total()) / float64(direct.N.Total())
	r.row("ops amplification", ratio, "x", "")
	r.finding("paper: Python file objects issued equal counts of fstat/open/close; "+
		"here the high-level path issues %.0fx the operations of the direct path",
		ratio)
	return r
}

// E02HarnessOverhead reproduces Table 4.2 (Python-vs-C loop overhead):
// the fixed per-operation cost the benchmark harness adds over a raw
// create loop, measured in real time on a zero-cost file system.
//
// This is the one experiment that stays a single cell: it times real
// host CPU, so its two loops must run back-to-back on one goroutine;
// splitting them into concurrent cells would let pool neighbors steal
// cycles from the thing being measured. The report is Volatile anyway.
func E02HarnessOverhead() *Report {
	r := &Report{ID: "E02", Title: "Harness overhead vs. raw loop",
		PaperRef: "Table 4.2 (Python vs. C, 200k creates)", Volatile: true}
	const n = 200000

	// Raw loop: direct namespace creates. Path construction matches the
	// harness plugins' byte-append builder so the delta isolates the
	// harness machinery (context, progress counter, deadline checks)
	// rather than string formatting.
	rawClient := newNullClient()
	start := time.Now()
	for i := 0; i < n; i++ {
		name := "/" + strconv.Itoa(i)
		if err := rawClient.Create(name); err != nil {
			r.finding("raw loop failed: %v", err)
			return r
		}
	}
	rawDur := time.Since(start)

	// Harness loop: the MakeFiles plugin with context, counter and
	// deadline checks, as used in every measurement.
	hClient := newNullClient()
	ctx := &core.Ctx{
		FS:      hClient,
		Workers: 1,
		Dir:     "/bench",
		Params:  core.Params{ProblemSize: n},
		Now:     func() time.Duration { return 0 },
	}
	plugin := core.MakeFiles{}
	if err := plugin.Prepare(ctx); err != nil {
		r.finding("prepare failed: %v", err)
		return r
	}
	start = time.Now()
	if err := plugin.DoBench(ctx); err != nil {
		r.finding("dobench failed: %v", err)
		return r
	}
	harnessDur := time.Since(start)

	r.row("raw loop", rawDur.Seconds(), "s", fmt.Sprintf("%d creates", n))
	r.row("harness loop", harnessDur.Seconds(), "s", "MakeFiles plugin + progress counter")
	perOp := float64(harnessDur-rawDur) / float64(n)
	r.row("overhead per op", perOp, "ns", "fixed, amortizes at file system speeds")
	pct := 100 * float64(harnessDur-rawDur) / float64(rawDur)
	if pct < 5 && pct > -5 {
		r.finding("paper measured 0.62s (C) vs 2.1s (Python) for 200k creates — a "+
			"fixed 6.9µs/op interpreter tax; the Go harness is within measurement "+
			"noise of the raw loop (%.1f%%), so comparative results are unaffected", pct)
	} else {
		r.finding("paper measured 0.62s (C) vs 2.1s (Python); the Go harness adds "+
			"%.0f ns/op (%.1f%%) over the raw loop", perOp, pct)
	}
	return r
}
