// Package experiments regenerates the evaluation of the thesis (Chapter
// 4): every table and figure has a function here that builds the
// corresponding simulated environment, runs DMetabench on it and reports
// the numbers and shapes the paper discusses. cmd/experiments prints the
// reports; the root bench_test.go exposes each as a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/results"
)

// Row is one reported metric.
type Row struct {
	Name  string
	Value float64
	Unit  string
	Note  string
}

// Report is the outcome of one experiment.
type Report struct {
	ID       string
	Title    string
	PaperRef string
	Rows     []Row
	// Charts holds rendered ASCII charts.
	Charts []string
	// Findings summarizes the shape comparison against the paper.
	Findings []string
	// Sets holds the raw result sets for further processing.
	Sets []*results.Set
	// Volatile marks a report whose values are real-time measurements
	// of the host machine (E02) rather than deterministic virtual-time
	// results. The committed EXPERIMENTS.md replaces volatile values
	// with a placeholder so regeneration is byte-stable across machines
	// (the CI docs job diffs it).
	Volatile bool
}

func (r *Report) row(name string, value float64, unit, note string) {
	r.Rows = append(r.Rows, Row{Name: name, Value: value, Unit: unit, Note: note})
}

func (r *Report) finding(format string, args ...interface{}) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (%s) ==\n", r.ID, r.Title, r.PaperRef)
	for _, row := range r.Rows {
		note := ""
		if row.Note != "" {
			note = "  # " + row.Note
		}
		val := fmt.Sprintf("%14.1f", row.Value)
		if row.Value < 10 && row.Value > -10 && row.Value != float64(int64(row.Value)) {
			val = fmt.Sprintf("%14.3f", row.Value)
		}
		fmt.Fprintf(&b, "  %-46s %s %-8s%s\n", row.Name, val, row.Unit, note)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  -> %s\n", f)
	}
	for _, c := range r.Charts {
		b.WriteString(c)
	}
	return b.String()
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID  string
	Run func() *Report
}

// All lists every experiment in evaluation order.
func All() []Experiment {
	return []Experiment{
		{"E01", E01SyscallCounts},
		{"E02", E02HarnessOverhead},
		{"E03", E03CPUHogCOV},
		{"E04", E04SnapshotNoise},
		{"E05", E05ConsistencyPoints},
		{"E06", E06WriteInterference},
		{"E07", E07CreateScaling},
		{"E08", E08LargeDirectories},
		{"E09", E09AllocationBursts},
		{"E10", E10PriorityScheduling},
		{"E11", E11SMPScaling},
		{"E12", E12LatencySweep},
		{"E13", E13NamespaceAggregation},
		{"E14", E14AFS},
		{"E15", E15WritebackCaching},
		{"E16", E16ShardScaling},
		{"E17", E17ShardSkew},
		{"E18", E18CrossShard},
		{"E19", E19FailoverTimeline},
		{"E20", E20ReplicationOverhead},
		{"E21", E21RecoveryScaling},
		{"E22", E22LeaseTTL},
		{"E23", E23CacheModes},
		{"E24", E24FailoverCachedLoad},
		{"E25", E25SplitScaling},
		{"E26", E26SplitStorm},
		{"E27", E27SplitRouting},
	}
}

// scaleChart renders a perf-vs-procs comparison for the report.
func scaleChart(title string, inputs []charts.LabeledSeries) string {
	c := charts.VsProcesses(inputs, 64, 10)
	return title + "\n" + c
}

const (
	chartW = 68
	chartH = 9
)

// stoneOf returns the stonewall throughput of (op, nodes, ppn) in a set,
// or 0 when missing.
func stoneOf(set *results.Set, op string, nodes, ppn int) float64 {
	m := set.Find(op, nodes, ppn)
	if m == nil {
		return 0
	}
	return m.Averages().Stonewall
}

// wallOf returns the wall-clock throughput, which uses exact completion
// times and is therefore meaningful even for runs shorter than one
// sampling interval (where the stonewall average floors at the grid).
func wallOf(set *results.Set, op string, nodes, ppn int) float64 {
	m := set.Find(op, nodes, ppn)
	if m == nil {
		return 0
	}
	return m.Averages().WallClock
}

// windowThroughput averages the per-interval throughput of a measurement
// between from and to.
func windowThroughput(m *results.Measurement, from, to time.Duration) float64 {
	rows := m.Summary()
	var sum float64
	var n int
	for _, r := range rows {
		if r.T > from && r.T <= to {
			sum += r.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// minThroughput returns the lowest per-interval throughput of a
// measurement between from and to; ok is false when the window holds
// no samples (a genuine zero-throughput interval is a valid minimum,
// an empty window is not).
func minThroughput(m *results.Measurement, from, to time.Duration) (min float64, ok bool) {
	min = -1
	for _, r := range m.Summary() {
		if r.T > from && r.T <= to && (min < 0 || r.Throughput < min) {
			min = r.Throughput
		}
	}
	if min < 0 {
		return 0, false
	}
	return min, true
}

// maxCOV returns the maximum COV between from and to.
func maxCOV(m *results.Measurement, from, to time.Duration) float64 {
	var max float64
	for _, r := range m.Summary() {
		if r.T > from && r.T <= to && r.COV > max {
			max = r.COV
		}
	}
	return max
}
