// Package experiments regenerates the evaluation of the thesis (Chapter
// 4): every table and figure has a function here that builds the
// corresponding simulated environment, runs DMetabench on it and reports
// the numbers and shapes the paper discusses. cmd/experiments prints the
// reports; the root bench_test.go exposes each as a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// Domains, when > 0, overrides Config.Domains for every file-system
// model in the suite — sharded, NFS and Lustre alike (the -domains flag
// of cmd/experiments): each simulation is partitioned into that many
// event-kernel domains running under the conservative-lookahead
// protocol through the shared service runtime. 0 keeps each
// experiment's own setting — the single-heap kernel, which the
// committed EXPERIMENTS.md corpus was generated with.
var Domains int

// newShardFS, newNFSFS and newLustreFS are the construction points for
// the three file-system models in this package; they apply the
// package-wide Domains override so one flag domains every experiment.
// E34–E36 bypass them deliberately — those experiments pin their own
// Domains so their reports are byte-identical at any -domains value.
func newShardFS(k *sim.Kernel, name string, cfg shard.Config) *shard.FS {
	if Domains > 0 {
		cfg.Domains = Domains
	}
	return shard.New(k, name, cfg)
}

func newNFSFS(k *sim.Kernel, name string, cfg nfs.Config) *nfs.FS {
	if Domains > 0 {
		cfg.Domains = Domains
	}
	return nfs.New(k, name, cfg)
}

func newLustreFS(k *sim.Kernel, name string, cfg lustre.Config) *lustre.FS {
	if Domains > 0 {
		cfg.Domains = Domains
	}
	return lustre.New(k, name, cfg)
}

// Row is one reported metric.
type Row struct {
	Name  string
	Value float64
	Unit  string
	Note  string
}

// Report is the outcome of one experiment.
type Report struct {
	ID       string
	Title    string
	PaperRef string
	Rows     []Row
	// Charts holds rendered ASCII charts.
	Charts []string
	// Findings summarizes the shape comparison against the paper.
	Findings []string
	// Sets holds the raw result sets for further processing.
	Sets []*results.Set
	// Volatile marks a report whose values are real-time measurements
	// of the host machine (E02) rather than deterministic virtual-time
	// results. The committed EXPERIMENTS.md replaces volatile values
	// with a placeholder so regeneration is byte-stable across machines
	// (the CI docs job diffs it).
	Volatile bool
}

func (r *Report) row(name string, value float64, unit, note string) {
	r.Rows = append(r.Rows, Row{Name: name, Value: value, Unit: unit, Note: note})
}

func (r *Report) finding(format string, args ...interface{}) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (%s) ==\n", r.ID, r.Title, r.PaperRef)
	for _, row := range r.Rows {
		note := ""
		if row.Note != "" {
			note = "  # " + row.Note
		}
		val := fmt.Sprintf("%14.1f", row.Value)
		if row.Value < 10 && row.Value > -10 && row.Value != float64(int64(row.Value)) {
			val = fmt.Sprintf("%14.3f", row.Value)
		}
		fmt.Fprintf(&b, "  %-46s %s %-8s%s\n", row.Name, val, row.Unit, note)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  -> %s\n", f)
	}
	for _, c := range r.Charts {
		b.WriteString(c)
	}
	return b.String()
}

// Experiment pairs an id with its runner. Cells is the number of
// independent execution cells the experiment decomposes into — the
// parallelism it exposes to the par worker pool (1 = inherently serial;
// it still runs concurrently with other experiments in the suite).
type Experiment struct {
	ID    string
	Run   func() *Report
	Cells int
}

// All lists every experiment in evaluation order.
func All() []Experiment {
	return []Experiment{
		{"E01", E01SyscallCounts, 2},
		{"E02", E02HarnessOverhead, 1}, // real-time: must not share the host
		{"E03", E03CPUHogCOV, 2},
		{"E04", E04SnapshotNoise, 2},
		{"E05", E05ConsistencyPoints, 2},
		{"E06", E06WriteInterference, 2},
		{"E07", E07CreateScaling, 16}, // 2 file systems x 8 sweep points
		{"E08", E08LargeDirectories, 11},
		{"E09", E09AllocationBursts, 1},
		{"E10", E10PriorityScheduling, 1},
		{"E11", E11SMPScaling, 12}, // 2 file systems x 6 PPN points
		{"E12", E12LatencySweep, 15},
		{"E13", E13NamespaceAggregation, 17}, // probe + 2 sweeps x 8 points
		{"E14", E14AFS, 6},
		{"E15", E15WritebackCaching, 2},
		{"E16", E16ShardScaling, 5},
		{"E17", E17ShardSkew, 4},
		{"E18", E18CrossShard, 2},
		{"E19", E19FailoverTimeline, 2},
		{"E20", E20ReplicationOverhead, 6},
		{"E21", E21RecoveryScaling, 4},
		{"E22", E22LeaseTTL, 4},
		{"E23", E23CacheModes, 13},
		{"E24", E24FailoverCachedLoad, 2},
		{"E25", E25SplitScaling, 10},
		{"E26", E26SplitStorm, 3},
		{"E27", E27SplitRouting, 7},
		{"E28", E28BackendProfile, 12},
		{"E29", E29CompactionTimeline, 3},
		{"E30", E30GroupCommit, 9},
		{"E31", E31AggregateDay, 2},
		{"E32", E32ForegroundTail, 3},
		{"E33", E33CapacityPressure, 3},
		{"E34", E34DomainedServers, 6},   // 2 file systems x (legacy, dom-w1, dom-w8)
		{"E35", E35FilerAtScale, 2},      // quiet + loaded day
		{"E36", E36AdaptiveLookahead, 6}, // 3 cells x (adaptive, fixed)
	}
}

// scaleChart renders a perf-vs-procs comparison for the report.
func scaleChart(title string, inputs []charts.LabeledSeries) string {
	c := charts.VsProcesses(inputs, 64, 10)
	return title + "\n" + c
}

const (
	chartW = 68
	chartH = 9
)

// stoneOf returns the stonewall throughput of (op, nodes, ppn) in a set,
// or 0 when missing.
func stoneOf(set *results.Set, op string, nodes, ppn int) float64 {
	m := set.Find(op, nodes, ppn)
	if m == nil {
		return 0
	}
	return m.Averages().Stonewall
}

// wallOf returns the wall-clock throughput, which uses exact completion
// times and is therefore meaningful even for runs shorter than one
// sampling interval (where the stonewall average floors at the grid).
func wallOf(set *results.Set, op string, nodes, ppn int) float64 {
	m := set.Find(op, nodes, ppn)
	if m == nil {
		return 0
	}
	return m.Averages().WallClock
}

// windowThroughput averages the per-interval throughput of a measurement
// between from and to.
func windowThroughput(m *results.Measurement, from, to time.Duration) float64 {
	rows := m.Summary()
	var sum float64
	var n int
	for _, r := range rows {
		if r.T > from && r.T <= to {
			sum += r.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// minThroughput returns the lowest per-interval throughput of a
// measurement between from and to; ok is false when the window holds
// no samples (a genuine zero-throughput interval is a valid minimum,
// an empty window is not).
func minThroughput(m *results.Measurement, from, to time.Duration) (min float64, ok bool) {
	min = -1
	for _, r := range m.Summary() {
		if r.T > from && r.T <= to && (min < 0 || r.Throughput < min) {
			min = r.Throughput
		}
	}
	if min < 0 {
		return 0, false
	}
	return min, true
}

// maxCOV returns the maximum COV between from and to.
func maxCOV(m *results.Measurement, from, to time.Duration) float64 {
	var max float64
	for _, r := range m.Summary() {
		if r.T > from && r.T <= to && r.COV > max {
			max = r.COV
		}
	}
	return max
}
