package experiments

import (
	"strings"
	"testing"

	"dmetabench/internal/par"
)

// cheapIDs is a fast cross-section of the suite used by the parallel
// tests: plain parCells fan-out (E01), probe pairs (E18), a sweep with
// shared state analyzed at merge time (E21) and a ParallelRunner sweep
// (E11 is too slow here; E16 covers the per-cell-kernel discipline).
var cheapIDs = map[string]bool{"E01": true, "E18": true, "E21": true, "E16": true}

func cheapExperiments(t *testing.T) []Experiment {
	t.Helper()
	var out []Experiment
	for _, e := range All() {
		if cheapIDs[e.ID] {
			out = append(out, e)
		}
	}
	if len(out) != len(cheapIDs) {
		t.Fatalf("found %d of %d cheap experiments", len(out), len(cheapIDs))
	}
	return out
}

func renderAll(es []Experiment) string {
	var b strings.Builder
	for _, e := range es {
		b.WriteString(e.Run().String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestReportsByteIdenticalAcrossWorkers pins the user-visible contract:
// the rendered report of every experiment — every row, finding and
// chart — is byte-identical whether the suite runs with -j 1 or wide.
func TestReportsByteIdenticalAcrossWorkers(t *testing.T) {
	es := cheapExperiments(t)
	old := par.Workers()
	defer par.SetWorkers(old)

	par.SetWorkers(1)
	serial := renderAll(es)
	par.SetWorkers(8)
	parallel := renderAll(es)

	if serial != parallel {
		t.Fatalf("reports differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

// TestDeclaredCellCounts checks Experiment.Cells (surfaced by
// `cmd/experiments -list`) against the cells the experiment actually
// dispatches, counted via the per-cell timing log.
func TestDeclaredCellCounts(t *testing.T) {
	old := par.Workers()
	defer par.SetWorkers(old)
	par.SetWorkers(4)

	for _, e := range cheapExperiments(t) {
		par.DrainTimings()
		e.Run()
		got := 0
		for _, tm := range par.DrainTimings() {
			if strings.HasPrefix(tm.Label, e.ID+"/") {
				got++
			}
		}
		if got != e.Cells {
			t.Errorf("%s: dispatched %d cells, declares Cells=%d", e.ID, got, e.Cells)
		}
	}
}
