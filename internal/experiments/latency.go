package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

// e12Latencies are the one-way network delays of the sweep.
var e12Latencies = []time.Duration{
	100 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
}

// singleProcWall runs one plugin at 1 node x 1 process and returns the
// wall-clock throughput (robust for sub-interval runs).
func singleProcWall(mk func(k *sim.Kernel) core.FileSystem, plugin core.Plugin, problem int, seed int64) float64 {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	r := &core.Runner{
		Cluster:      cl,
		FS:           mk(k),
		Params:       core.Params{ProblemSize: problem, WorkDir: "/bench"},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{plugin},
	}
	set, err := r.Run()
	if err != nil {
		return 0
	}
	return wallOf(set, plugin.Name(), 1, 1)
}

// singleProcTimed runs a timed 1x1 measurement, which amortizes per-run
// constants (like the one synchronous mkdir at bench start) that would
// otherwise dominate very fast cached operations.
func singleProcTimed(mk func(k *sim.Kernel) core.FileSystem, plugin core.Plugin, window time.Duration, seed int64) float64 {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(1))
	r := &core.Runner{
		Cluster: cl,
		FS:      mk(k),
		Params: core.Params{
			ProblemSize: 1 << 20, // no subdirectory rotation inside the window
			TimeLimit:   window,
			WorkDir:     "/bench",
		},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{plugin},
	}
	set, err := r.Run()
	if err != nil {
		return 0
	}
	return wallOf(set, plugin.Name(), 1, 1)
}

// E12LatencySweep reproduces §4.6: synchronous metadata operations
// degrade with network latency roughly as 1/RTT, while operations served
// from client caches — and creates under a metadata write-back cache —
// are almost latency-independent.
func E12LatencySweep() *Report {
	r := &Report{ID: "E12", Title: "Metadata throughput vs. network latency",
		PaperRef: "§4.6"}
	// One cell per (latency, measurement) point — 15 in all, each on its
	// own kernel with its own seed, exactly as the serial loop seeded them.
	const perLat = 3
	names := make([]string, 0, len(e12Latencies)*perLat)
	for _, lat := range e12Latencies {
		rtt := (2 * lat).Seconds() * 1000
		names = append(names,
			fmt.Sprintf("rtt%.1fms-nfs-create", rtt),
			fmt.Sprintf("rtt%.1fms-nfs-statnc", rtt),
			fmt.Sprintf("rtt%.1fms-wb-create", rtt))
	}
	vals := parCells("E12", names, func(i int) float64 {
		lat := e12Latencies[i/perLat]
		seed := int64(1200 + 10*(i/perLat))
		nfsMk := func(k *sim.Kernel) core.FileSystem {
			cfg := nfs.DefaultConfig()
			cfg.OneWayLatency = lat
			return newNFSFS(k, "home", cfg)
		}
		switch i % perLat {
		case 0:
			return singleProcWall(nfsMk, core.MakeFiles{}, 500, seed)
		case 1:
			return singleProcWall(nfsMk, core.StatNocacheFiles{}, 500, seed+1)
		default:
			return singleProcTimed(func(k *sim.Kernel) core.FileSystem {
				cfg := lustre.DefaultConfig()
				cfg.OneWayLatency = lat
				cfg.Writeback = true
				return newLustreFS(k, "scratch", cfg)
			}, core.MakeFiles{}, time.Second, seed+2)
		}
	})
	var xs, nfsCreate, nfsStatNC, wbCreate []float64
	for i, lat := range e12Latencies {
		rtt := (2 * lat).Seconds() * 1000
		c, s, w := vals[i*perLat], vals[i*perLat+1], vals[i*perLat+2]
		xs = append(xs, rtt) // RTT in ms
		nfsCreate = append(nfsCreate, c)
		nfsStatNC = append(nfsStatNC, s)
		wbCreate = append(wbCreate, w)
		r.row(fmt.Sprintf("RTT %.1fms: NFS creates", rtt), c, "ops/s", "")
		r.row(fmt.Sprintf("RTT %.1fms: NFS stat (no cache)", rtt), s, "ops/s", "")
		r.row(fmt.Sprintf("RTT %.1fms: write-back creates", rtt), w, "ops/s", "")
	}
	if nfsCreate[0] > 0 && wbCreate[len(wbCreate)-1] > 0 {
		nfsDrop := nfsCreate[0] / nfsCreate[len(nfsCreate)-1]
		wbDrop := wbCreate[0] / wbCreate[len(wbCreate)-1]
		r.finding("paper: synchronous metadata rates fall with added latency "+
			"while caching hides it; here 50x more RTT costs NFS creates %.1fx "+
			"and write-back creates only %.1fx", nfsDrop, wbDrop)
	}
	r.Charts = append(r.Charts, charts.Render(
		"Throughput vs network RTT", "RTT ms", "ops/s", chartW, chartH,
		[]charts.Series{
			{Name: "NFS MakeFiles (synchronous)", X: xs, Y: nfsCreate},
			{Name: "NFS StatNocacheFiles", X: xs, Y: nfsStatNC},
			{Name: "Lustre write-back MakeFiles", X: xs, Y: wbCreate},
		}))
	return r
}
