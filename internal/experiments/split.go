package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/fs"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// The E25–E27 family measures dynamic giant-directory splitting
// (internal/shard split.go, the GIGA+ direction). The thesis shows
// metadata throughput collapsing in large directories (§4.3.3), and the
// sharded MDS reintroduces exactly that wall at shard granularity:
// hash-of-parent placement pins a million-file directory — the mdtest
// shared-directory pattern — to one shard, so E16's scaling never helps
// E08's workload. E25 shows the wall falling once splitting spreads the
// directory; E26 prices the split storms the cure costs, in the §4.2
// interval timeline; E27 prices routing on a stale client bitmap and
// the fan-out a split listing pays.

// e25Cfg returns an n-shard configuration with splitting on (threshold
// entries per partition) or off (threshold 0).
func e25Cfg(n, threshold int) shard.Config {
	cfg := shard.DefaultConfig(n)
	cfg.SplitThreshold = threshold
	return cfg
}

// runWide executes a WideDirFiles run — every process hammering one
// shared directory — on a 16-node x 4-process cluster (64 workers) and
// returns the result set plus the FS for counter readout.
func runWide(seed int64, cfg shard.Config, plugin core.Plugin, problem int) (*results.Set, *shard.FS) {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(16))
	fsys := newShardFS(k, "meta", cfg)
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: problem, WorkDir: "/"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{plugin},
		Filter:       func(c core.Combo) bool { return c.Nodes == 16 && c.PPN == 4 },
	}
	set, err := r.Run()
	if err != nil {
		return nil, fsys
	}
	return set, fsys
}

// E25SplitScaling sweeps the shard count under the mdtest
// shared-directory pattern with splitting off and on: without it, every
// create of the one shared directory serializes on the directory's home
// shard and the curve stays flat no matter how many shards exist — the
// §4.3.3 wall at shard granularity; with it, the directory spreads as
// it grows and the same workload scales with the cluster.
func E25SplitScaling() *Report {
	r := &Report{ID: "E25", Title: "Giant-directory splitting: one shared directory vs. shard count",
		PaperRef: "beyond §4.3.3 (the large-directory wall; GIGA+/HopsFS direction)"}
	plugin := core.WideDirFiles{}
	const problem = 250 // per process; 64 procs = 16k files in one directory
	shardsSwept := []int{1, 2, 4, 8, 16}
	// One cell per (shard count, splitting on/off) pair — 10 runs, one
	// seed for all of them.
	type e25cell struct {
		set     *results.Set
		rate    float64
		splits  int
		moved   int64
		bounces int64
	}
	names := make([]string, 0, 2*len(shardsSwept))
	for _, n := range shardsSwept {
		names = append(names, fmt.Sprintf("%dshards-off", n), fmt.Sprintf("%dshards-on", n))
	}
	cells := parCells("E25", names, func(i int) e25cell {
		threshold := 0
		if i%2 == 1 {
			threshold = 512
		}
		set, fsys := runWide(2500, e25Cfg(shardsSwept[i/2], threshold), plugin, problem)
		if set == nil {
			return e25cell{}
		}
		return e25cell{set: set, rate: wallOf(set, plugin.Name(), 16, 4),
			splits: len(fsys.Splits), moved: fsys.SplitMoved, bounces: fsys.Bounces}
	})
	var xs, offY, onY []float64
	var off8, on8 float64
	for i, n := range shardsSwept {
		off, on := cells[2*i], cells[2*i+1]
		if off.set == nil || on.set == nil {
			r.finding("run failed at %d shards", n)
			return r
		}
		r.Sets = append(r.Sets, off.set, on.set)
		xs = append(xs, float64(n))
		offY = append(offY, off.rate)
		onY = append(onY, on.rate)
		if n == 8 {
			off8, on8 = off.rate, on.rate
		}
		r.row(fmt.Sprintf("creates/s @ %2d shards, split off", n), off.rate, "ops/s", "")
		r.row(fmt.Sprintf("creates/s @ %2d shards, split on", n), on.rate, "ops/s",
			fmt.Sprintf("%d splits, %d entries moved, %d bounces",
				on.splits, on.moved, on.bounces))
	}
	if off8 > 0 {
		r.row("split advantage @ 8 shards", on8/off8, "x", "threshold 512")
	}
	r.row("split off: speedup 1->16 shards", offY[len(offY)-1]/offY[0], "x", "one directory, one shard")
	r.row("split on: speedup 1->16 shards", onY[len(onY)-1]/onY[0], "x", "")
	r.finding("one shared directory defeats per-directory placement: with splitting "+
		"off, adding shards moves creates/s %.2fx from 1 to 16 shards (all load "+
		"serializes on the directory's home shard); with GIGA+-style splitting the "+
		"same workload scales %.2fx, and at 8 shards splitting wins %.1fx — the "+
		"§4.3.3 large-directory wall falling at MDS granularity",
		offY[len(offY)-1]/offY[0], onY[len(onY)-1]/onY[0], on8/off8)
	r.Charts = append(r.Charts, charts.Render(
		"Shared-directory create throughput vs. shard count (64 processes)",
		"shards", "ops/s", chartW, chartH,
		[]charts.Series{
			{Name: "split on (thresh 512)", X: xs, Y: onY},
			{Name: "split off", X: xs, Y: offY},
		}))
	return r
}

// E26SplitStorm watches the interval timeline while a growing shared
// directory crosses its split threshold repeatedly: each split step
// blocks the triggering create for the whole migration, so the timeline
// shows a throughput dip and a COV spike per split — the §4.2
// disturbance shape, but self-inflicted by the cure. The threshold
// trades storm count against storm size: a small threshold splits
// early and cheaply, a large one late and violently.
func E26SplitStorm() *Report {
	r := &Report{ID: "E26", Title: "Split-storm cost: migration dips vs. split threshold",
		PaperRef: "beyond §4.2 + §4.3.4 (self-inflicted disturbances in the timeline)"}
	const window = 12 * time.Second
	run := func(seed int64, threshold int) (*results.Measurement, *results.Set, *shard.FS, time.Duration) {
		cfg := e25Cfg(8, threshold)
		k := sim.New(seed)
		cl := cluster.New(k, cluster.DefaultConfig(8))
		fsys := newShardFS(k, "meta", cfg)
		var benchStart time.Duration
		rn := &core.Runner{
			Cluster: cl,
			FS:      fsys,
			Params: core.Params{ProblemSize: 1 << 20, TimeLimit: window,
				WorkDir: "/"},
			SlotsPerNode: 2,
			Plugins:      []core.Plugin{core.WideDirFiles{}},
			Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 2 },
			BenchStartHook: func(mp *sim.Proc, _ core.MeasurementInfo) {
				benchStart = mp.Now()
			},
		}
		set, err := rn.Run()
		if err != nil {
			return nil, nil, fsys, 0
		}
		return set.Find("WideDirFiles", 8, 2), set, fsys, benchStart
	}
	// One cell per split threshold.
	thresholds := []int{512, 2048, 8192}
	type e26cell struct {
		m     *results.Measurement
		set   *results.Set
		fs    *shard.FS
		start time.Duration
	}
	names := make([]string, len(thresholds))
	for i, threshold := range thresholds {
		names[i] = fmt.Sprintf("thresh%d", threshold)
	}
	cells := parCells("E26", names, func(i int) e26cell {
		m, set, fsys, start := run(int64(2600+i), thresholds[i])
		return e26cell{m, set, fsys, start}
	})
	var chartsOut []string
	var firstDip, lastDip, lastCOV float64
	var lastStorm int
	for i, threshold := range thresholds {
		m, set, fsys, start := cells[i].m, cells[i].set, cells[i].fs, cells[i].start
		if m == nil {
			r.finding("run failed at threshold %d", threshold)
			return r
		}
		r.Sets = append(r.Sets, set)
		rate := wallOf(set, "WideDirFiles", 8, 2)
		// The deepest single-interval dip across all split instants,
		// each against the steady state of the second before its split
		// (the run ramps up early, so a global baseline would hide the
		// storm), plus the worst COV spike in the second after.
		var cov float64
		dip := 1.0
		for _, ev := range fsys.Splits {
			at := ev.At - start
			from := at - time.Second
			if from < 0 {
				from = 0
			}
			base := windowThroughput(m, from, at)
			during, ok := minThroughput(m, at, at+600*time.Millisecond)
			if ok && base > 0 && during/base < dip {
				dip = during / base
			}
			if c := maxCOV(m, at, at+time.Second); c > cov {
				cov = c
			}
		}
		r.row(fmt.Sprintf("threshold %5d: creates/s", threshold), rate, "ops/s",
			fmt.Sprintf("%d splits, %d entries moved", len(fsys.Splits), fsys.SplitMoved))
		r.row(fmt.Sprintf("threshold %5d: deepest split dip", threshold), dip*100, "%",
			"worst interval within 600ms of a split vs. the second before it")
		r.row(fmt.Sprintf("threshold %5d: max COV after split", threshold), cov, "", "")
		if i == 0 {
			firstDip = dip
		}
		storm := 0
		for _, ev := range fsys.Splits {
			if ev.Moved > storm {
				storm = ev.Moved
			}
		}
		lastDip, lastCOV, lastStorm = dip, cov, storm
		if threshold == 8192 {
			chartsOut = append(chartsOut,
				fmt.Sprintf("shared-directory creates, splitting at %d entries/partition\n", threshold)+
					charts.TimeChart(m, chartW, chartH))
		}
	}
	r.finding("splitting is a self-inflicted disturbance with a tunable shape: at "+
		"threshold 512 the migrations are too small to dent a 100ms interval "+
		"(worst dip %.0f%% of baseline), while threshold 8192 defers the same work "+
		"into a single storm of %d moved entries that craters one interval to "+
		"%.0f%% with a COV spike of %.2f — the §4.2 disturbance signature, "+
		"self-inflicted, and the checkpoint-cadence trade-off of §2.7 applied to "+
		"directory radix doubling", firstDip*100, lastStorm, lastDip*100, lastCOV)
	r.Charts = append(r.Charts, chartsOut...)
	return r
}

// E27SplitRouting prices the client's split bitmap: a stale or missing
// bitmap routes to the wrong shard and pays a bounce (one extra
// redirect round trip). Every server reply piggybacks the current
// level (the GIGA+ discipline), so a client actively working in a
// directory stays fresh for free — the TTL matters when the client
// comes back after a gap: expired bitmaps route as if the directory
// were unsplit and almost always bounce once per revisit. Under
// CacheLease the bitmap rides the directory's lease instead and
// survives idle gaps up to the lease TTL. The second half prices what
// a listing pays once a directory is split: the readdir fans out over
// every partition slice and merges.
func E27SplitRouting() *Report {
	r := &Report{ID: "E27", Title: "Split-bitmap staleness: bounce rate vs. TTL, and the readdir fan-out",
		PaperRef: "beyond §2.1.2 (routing-hint caching; GIGA+ stale-bitmap tolerance)"}
	const (
		readers = 4
		rounds  = 40
		gap     = 200 * time.Millisecond // idle time between revisit bursts
		pool    = 3000
	)
	// probeBounce builds a split directory, then has each reader client
	// revisit it in bursts separated by idle gaps; between bursts the
	// bitmap can only survive on its TTL (or its lease).
	probeBounce := func(mode shard.CacheMode, bitmapTTL time.Duration) (bounces int64, stats int, bitmapHitRate float64) {
		cfg := e25Cfg(8, 256)
		cfg.CacheMode = mode
		if bitmapTTL > 0 {
			cfg.SplitBitmapTTL = bitmapTTL
		}
		k := sim.New(2701)
		cl := cluster.New(k, cluster.DefaultConfig(readers+1))
		fsys := newShardFS(k, "meta", cfg)
		k.Spawn("probe", func(p *sim.Proc) {
			loader := fsys.NewClient(cl.Nodes[0], p)
			if err := loader.Mkdir("/big"); err != nil {
				return
			}
			for i := 0; i < pool; i++ {
				if err := loader.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
					return
				}
			}
			clients := make([]fs.Client, readers)
			for j := range clients {
				clients[j] = fsys.NewClient(cl.Nodes[j+1], p)
			}
			start := fsys.Bounces
			for round := 0; round < rounds; round++ {
				for j, rd := range clients {
					for i := 0; i < 8; i++ {
						// Fresh names every burst, so the stat is never
						// an attribute-cache hit and routing really runs.
						n := (round*8 + i + j*751) % pool
						if _, err := rd.Stat(fmt.Sprintf("/big/f%d", n)); err != nil {
							return
						}
						stats++
					}
				}
				p.Sleep(gap)
			}
			bounces = fsys.Bounces - start
		})
		if err := k.Run(); err != nil {
			return 0, 0, 0
		}
		hits, misses, _ := fsys.SplitBitmapStats()
		if hits+misses > 0 {
			bitmapHitRate = 100 * float64(hits) / float64(hits+misses)
		}
		return bounces, stats, bitmapHitRate
	}
	ttls := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond,
		500 * time.Millisecond, 10 * time.Second}
	// The fan-out price of listing a split directory: one client, one
	// 4000-entry directory, listed split (8 partition slices merged) and
	// unsplit (one readdir on the home shard).
	probe := func(threshold int) (avg time.Duration, parts int) {
		k := sim.New(2750)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := newShardFS(k, "meta", e25Cfg(8, threshold))
		k.Spawn("probe", func(p *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], p)
			if err := c.Mkdir("/big"); err != nil {
				return
			}
			for i := 0; i < 4000; i++ {
				if err := c.Create(fmt.Sprintf("/big/f%d", i)); err != nil {
					return
				}
			}
			const ops = 50
			start := p.Now()
			for i := 0; i < ops; i++ {
				if _, err := c.ReadDir("/big"); err != nil {
					return
				}
			}
			avg = (p.Now() - start) / ops
		})
		if err := k.Run(); err != nil {
			return 0, 0
		}
		return avg, 1 << fsys.SplitLevel("/big")
	}
	// Seven cells: the four TTL bounce probes, the lease bounce probe and
	// the two readdir fan-out probes, each on its own kernel.
	type e27cell struct {
		bounces int64
		stats   int
		hitRate float64
		avg     time.Duration
		parts   int
	}
	names := make([]string, 0, len(ttls)+3)
	for _, ttl := range ttls {
		names = append(names, "bitmap-ttl-"+ttl.String())
	}
	names = append(names, "lease-mode", "readdir-unsplit", "readdir-split")
	cells := parCells("E27", names, func(i int) e27cell {
		switch {
		case i < len(ttls):
			b, s, h := probeBounce(shard.CacheTTL, ttls[i])
			return e27cell{bounces: b, stats: s, hitRate: h}
		case i == len(ttls):
			b, s, h := probeBounce(shard.CacheLease, 0)
			return e27cell{bounces: b, stats: s, hitRate: h}
		case i == len(ttls)+1:
			avg, parts := probe(0)
			return e27cell{avg: avg, parts: parts}
		default:
			avg, parts := probe(256)
			return e27cell{avg: avg, parts: parts}
		}
	})
	var xs, ys []float64
	for i, ttl := range ttls {
		c := cells[i]
		if c.stats == 0 {
			r.finding("bounce probe failed at bitmap TTL %v", ttl)
			return r
		}
		perRound := float64(c.bounces) / float64(rounds*readers)
		xs = append(xs, ttl.Seconds())
		ys = append(ys, perRound)
		r.row(fmt.Sprintf("bitmap ttl %5s: bounces/revisit", ttl), perRound, "",
			fmt.Sprintf("%d bounces over %d stats, %.0f%% bitmap hits, %s gaps",
				c.bounces, c.stats, c.hitRate, gap))
	}
	lease := cells[len(ttls)]
	if lease.stats == 0 {
		r.finding("bounce probe failed for the lease-mode cell")
		return r
	}
	leasePerRound := float64(lease.bounces) / float64(rounds*readers)
	r.row("lease mode: bounces/revisit", leasePerRound, "",
		fmt.Sprintf("%d bounces, %.0f%% bitmap hits; the bitmap rides the %s directory lease",
			lease.bounces, lease.hitRate, shard.DefaultConfig(8).LeaseTTL))

	flatAvg := cells[len(ttls)+1].avg
	splitAvg, parts := cells[len(ttls)+2].avg, cells[len(ttls)+2].parts
	if flatAvg == 0 || splitAvg == 0 {
		r.finding("readdir probe failed")
		return r
	}
	r.row("readdir 4000 entries, unsplit", float64(flatAvg.Microseconds()), "us", "one shard")
	r.row(fmt.Sprintf("readdir 4000 entries, %d partitions", parts),
		float64(splitAvg.Microseconds()), "us", "fan-out + merge")
	r.row("fan-out penalty", float64(splitAvg)/float64(flatAvg), "x", "")
	r.finding("the split bitmap is a routing hint, so staleness costs bounces, never "+
		"correctness: a bitmap outlived by the %s idle gap routes as if the "+
		"directory were unsplit and pays %.2f bounces per revisit, falling to %.2f "+
		"once the TTL covers the gap — one redirect per burst at worst — while "+
		"lease mode rides the directory lease across gaps at %.2f; the flip side "+
		"of spreading a directory is that one listing becomes %d merged partition "+
		"reads, %.1fx an unsplit readdir",
		gap, ys[0], ys[len(ys)-1], leasePerRound, parts, float64(splitAvg)/float64(flatAvg))
	r.Charts = append(r.Charts, charts.Render(
		"Routing bounces per revisit vs. split-bitmap TTL (8 shards, threshold 256)",
		"ttl s", "bounces/revisit", chartW, chartH,
		[]charts.Series{{Name: "ttl mode", X: xs, Y: ys}}))
	return r
}
