package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/sim"
)

// A01AveragingMethods is the design ablation behind §3.2.5: on a run
// where one process lags, the wall-clock, stonewall and fixed-N averages
// tell different stories, and only the interval log shows why. We build
// the skewed run (one hogged node of four) and compare every summary the
// framework can produce.
func A01AveragingMethods() *Report {
	r := &Report{ID: "A01", Title: "Ablation: wall-clock vs stonewall vs fixed-N averaging",
		PaperRef: "§3.2.5, Fig. 3.2"}
	k := sim.New(2001)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	fsys := newNFSFS(k, "home", nfs.DefaultConfig())
	run := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 6000, WorkDir: "/bench"},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 4 && c.PPN == 1 },
		BenchStartHook: func(mp *sim.Proc, _ core.MeasurementInfo) {
			// One node runs at half speed for the whole bench: the
			// P3-lags-P1/P2 scenario of Fig. 3.2(b).
			cl.Nodes[2].StartCPUHog(24, 0, mp.Now(), 60*time.Second)
		},
	}
	set, err := run.Run()
	if err != nil {
		r.finding("run failed: %v", err)
		return r
	}
	r.Sets = append(r.Sets, set)
	m := set.Find("MakeFiles", 4, 1)
	if m == nil {
		r.finding("measurement missing")
		return r
	}
	a := m.Averages(6000, 12000)
	r.row("wall-clock average", a.WallClock, "ops/s", "total ops / last finisher")
	r.row("stonewall average", a.Stonewall, "ops/s", "cut at first finisher")
	r.row("fixed-N average (6k ops)", a.FixedN[6000], "ops/s", "strong-scaling view")
	r.row("fixed-N average (12k ops)", a.FixedN[12000], "ops/s", "")
	r.row("stonewall / wall-clock", a.Stonewall/a.WallClock, "x", "")
	r.finding("paper: summary numbers hide lagging processes (Fig. 3.2); the "+
		"stonewall average is %.0f%% above wall-clock on this skewed run, and "+
		"only the COV trace identifies the slow node", 100*(a.Stonewall/a.WallClock-1))
	return r
}

// A02WritebackWindow sweeps the write-back window size (the design knob
// of §4.8/§5.2.1): a larger window absorbs longer bursts but cannot lift
// the sustained rate above the metadata server's capacity.
func A02WritebackWindow() *Report {
	r := &Report{ID: "A02", Title: "Ablation: write-back window size",
		PaperRef: "§4.8, §5.2.1"}
	const window = 4 * time.Second
	// One cell per write-back window size.
	windows := []int{256, 1024, 4096, 16384}
	type a02cell struct {
		burst, sustained float64
		err              error
	}
	names := make([]string, len(windows))
	for i, w := range windows {
		names[i] = fmt.Sprintf("window%d", w)
	}
	cells := parCells("A02", names, func(i int) a02cell {
		w := windows[i]
		k := sim.New(int64(2100 + w))
		cl := cluster.New(k, cluster.DefaultConfig(1))
		cfg := lustre.DefaultConfig()
		cfg.Writeback = true
		cfg.WritebackWindow = w
		fsys := newLustreFS(k, "scratch", cfg)
		run := &core.Runner{
			Cluster: cl,
			FS:      fsys,
			Params: core.Params{
				ProblemSize: 1 << 20,
				TimeLimit:   window,
				WorkDir:     "/bench",
			},
			SlotsPerNode: 1,
			Plugins:      []core.Plugin{core.MakeFiles{}},
		}
		set, err := run.Run()
		if err != nil {
			return a02cell{err: err}
		}
		m := set.Find("MakeFiles", 1, 1)
		return a02cell{
			burst:     windowThroughput(m, 0, 100*time.Millisecond),
			sustained: windowThroughput(m, 2*time.Second, window),
		}
	})
	var prevSustained float64
	for i, w := range windows {
		if cells[i].err != nil {
			r.finding("run failed: %v", cells[i].err)
			return r
		}
		r.row(fmt.Sprintf("window %5d: burst", w), cells[i].burst, "ops/s", "first 100ms")
		r.row(fmt.Sprintf("window %5d: sustained", w), cells[i].sustained, "ops/s", "2..4s")
		prevSustained = cells[i].sustained
	}
	r.finding("the window size scales the burst but the sustained rate stays "+
		"pinned at the MDS service rate (~%.0f ops/s) — client caching cannot "+
		"manufacture server capacity, only hide latency (§5.2.1)", prevSustained)
	return r
}

// Ablations lists the design-choice studies (run by cmd/experiments after
// the paper experiments).
func Ablations() []Experiment {
	return []Experiment{
		{"A01", A01AveragingMethods, 1},
		{"A02", A02WritebackWindow, 4},
	}
}
