package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// The E16–E18 family leaves the single-MDS world of the thesis: the
// namespace is partitioned across N simulated metadata servers
// (internal/shard), the scaling step HopsFS and MetaFlow report
// order-of-magnitude gains from. The experiments measure when sharding
// pays (E16), how placement policy interacts with popularity skew
// (E17), and what an operation that spans two shards costs (E18).

// e16Workload is the steady-state create/mkdir mix used by the shard
// sweeps: uniform directory popularity, one mkdir per 50 creates so
// directory-mutation traffic (broadcast under hash placement) stays
// part of the load.
func e16Workload(skew float64) core.ZipfDirFiles {
	return core.ZipfDirFiles{Projects: 24, SubdirsPerProject: 32, Skew: skew, MkdirEvery: 50}
}

// e16SubtreeAssign pins the 24 project subtrees round-robin across n
// shards — the administrative volume placement of §4.7.2.
func e16SubtreeAssign(n int) map[string]int {
	m := make(map[string]int, 24)
	for j := 0; j < 24; j++ {
		m[fmt.Sprintf("zp%d", j)] = j % n
	}
	return m
}

// runSharded executes the shard workload on a 16-node x 4-process
// cluster (64 workers: enough demand to oversubscribe a small shard
// count) and returns the result set plus the FS for counter readout.
func runSharded(seed int64, cfg shard.Config, plugin core.Plugin, problem int) (*results.Set, *shard.FS) {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(16))
	fsys := newShardFS(k, "meta", cfg)
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: problem, WorkDir: "/"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{plugin},
		Filter:       func(c core.Combo) bool { return c.Nodes == 16 && c.PPN == 4 },
	}
	set, err := r.Run()
	if err != nil {
		return nil, fsys
	}
	return set, fsys
}

// E16ShardScaling sweeps the shard count 1→16 under a fixed 32-process
// create load: throughput scales while per-shard queueing dominates and
// flattens once the servers are no longer the bottleneck while every
// directory mutation still pays a broadcast that grows with the shard
// count.
func E16ShardScaling() *Report {
	r := &Report{ID: "E16", Title: "Shard-count scaling of create throughput",
		PaperRef: "beyond §4.3 (HopsFS/MetaFlow direction)"}
	plugin := e16Workload(0)
	shardsSwept := []int{1, 2, 4, 8, 16}
	// One cell per shard count. One seed for every sweep point: the only
	// variable between cells is the shard count, not the storage service
	// jitter.
	type e16cell struct {
		set   *results.Set
		rate  float64
		cross int64
	}
	names := make([]string, len(shardsSwept))
	for i, n := range shardsSwept {
		names[i] = fmt.Sprintf("%dshards", n)
	}
	cells := parCells("E16", names, func(i int) e16cell {
		set, fsys := runSharded(1600, shard.DefaultConfig(shardsSwept[i]), plugin, 500)
		if set == nil {
			return e16cell{}
		}
		return e16cell{set: set, rate: wallOf(set, plugin.Name(), 16, 4), cross: fsys.CrossCount}
	})
	var xs, ys []float64
	var rates []float64
	var crosses []int64
	for i, n := range shardsSwept {
		c := cells[i]
		if c.set == nil {
			r.finding("run failed at %d shards", n)
			return r
		}
		r.Sets = append(r.Sets, c.set)
		rates = append(rates, c.rate)
		crosses = append(crosses, c.cross)
		xs = append(xs, float64(n))
		ys = append(ys, c.rate)
		r.row(fmt.Sprintf("creates/s @ %2d shards", n), c.rate, "ops/s",
			fmt.Sprintf("%d cross-shard hops", c.cross))
	}
	best := 0
	for i := range rates {
		if rates[i] > rates[best] {
			best = i
		}
	}
	r.row("speedup 1->16 shards", rates[len(rates)-1]/rates[0], "x", "64 procs")
	r.row("best shard count", float64(shardsSwept[best]), "shards", "")
	r.finding("related work: partitioned metadata scales until coordination "+
		"dominates; here creates/s grow %.1fx from 1 to %d shards, while "+
		"cross-shard hops grow %d -> %d and the curve flattens (best at %d shards)",
		rates[best]/rates[0], shardsSwept[best],
		crosses[0], crosses[len(crosses)-1], shardsSwept[best])
	r.Charts = append(r.Charts, charts.Render(
		"Create throughput vs. shard count (64 processes)",
		"shards", "ops/s", chartW, chartH,
		[]charts.Series{{Name: "ZipfDirFiles uniform", X: xs, Y: ys}}))
	return r
}

// E17ShardSkew compares the two placement policies under uniform and
// Zipf-skewed directory popularity on 8 shards: hash placement spreads
// a hot project's directories across every server, subtree placement
// keeps whole projects local (no broadcast) but concentrates popular
// subtrees on one shard.
func E17ShardSkew() *Report {
	r := &Report{ID: "E17", Title: "Hot-directory skew: hash vs. subtree placement",
		PaperRef: "beyond §4.7 (placement under skew)"}
	const nShards = 8
	mkCfg := func(p shard.Policy) shard.Config {
		cfg := shard.DefaultConfig(nShards)
		cfg.Placement = p
		if p == shard.PlaceSubtree {
			cfg.SubtreeAssign = e16SubtreeAssign(nShards)
		}
		return cfg
	}
	type cell struct {
		rate      float64
		imbalance float64
		set       *results.Set
	}
	// measure is one cell: it runs on its own kernel and touches nothing
	// shared — sets are collected by the merge loop below, in cell order.
	measure := func(p shard.Policy, skew float64, seed int64) cell {
		set, fsys := runSharded(seed, mkCfg(p), e16Workload(skew), 400)
		if set == nil {
			return cell{}
		}
		ops := fsys.ShardOps()
		var max, sum int64
		for _, n := range ops {
			sum += n
			if n > max {
				max = n
			}
		}
		c := cell{rate: wallOf(set, "ZipfDirFiles", 16, 4), set: set}
		if sum > 0 {
			c.imbalance = float64(max) * float64(len(ops)) / float64(sum)
		}
		return c
	}
	cells := parCells("E17", []string{"hash-uniform", "subtree-uniform",
		"hash-zipf", "subtree-zipf"}, func(i int) cell {
		switch i {
		case 0:
			return measure(shard.PlaceHashDir, 0, 1701)
		case 1:
			return measure(shard.PlaceSubtree, 0, 1702)
		case 2:
			return measure(shard.PlaceHashDir, 2.0, 1703)
		default:
			return measure(shard.PlaceSubtree, 2.0, 1704)
		}
	})
	for _, c := range cells {
		if c.set != nil {
			r.Sets = append(r.Sets, c.set)
		}
	}
	hashU, subU, hashZ, subZ := cells[0], cells[1], cells[2], cells[3]
	r.row("hash placement, uniform", hashU.rate, "ops/s",
		fmt.Sprintf("hottest shard %.1fx mean", hashU.imbalance))
	r.row("subtree placement, uniform", subU.rate, "ops/s",
		fmt.Sprintf("hottest shard %.1fx mean", subU.imbalance))
	r.row("hash placement, Zipf 2.0", hashZ.rate, "ops/s",
		fmt.Sprintf("hottest shard %.1fx mean", hashZ.imbalance))
	r.row("subtree placement, Zipf 2.0", subZ.rate, "ops/s",
		fmt.Sprintf("hottest shard %.1fx mean", subZ.imbalance))
	if subZ.rate > 0 && hashU.rate > 0 {
		r.row("hash advantage under skew", hashZ.rate/subZ.rate, "x", "")
		r.row("subtree advantage under uniform", subU.rate/hashU.rate, "x", "")
		r.finding("related work: hash partitioning absorbs popularity skew that "+
			"subtree placement concentrates (hottest shard %.1fx mean vs %.1fx); "+
			"here hash wins %.2fx under Zipf skew while subtree wins %.2fx under "+
			"uniform load by avoiding replicated directory mutations",
			hashZ.imbalance, subZ.imbalance,
			hashZ.rate/subZ.rate, subU.rate/hashU.rate)
	} else {
		r.finding("run failed")
	}
	return r
}

// E18CrossShard prices a single operation that spans a shard boundary:
// a rename whose source and destination directories live on different
// shards migrates the file over the MDS interconnect, and a root
// listing under subtree placement merges every shard's top level.
func E18CrossShard() *Report {
	r := &Report{ID: "E18", Title: "Cross-shard operation cost",
		PaperRef: "beyond §4.6 (MDS interconnect hops)"}
	const ops = 200

	// Part 1 cell: same-shard vs. cross-shard rename on hash placement.
	type renameProbe struct {
		sameAvg, crossAvg time.Duration
		crossings         int64
		err               error
	}
	probeRename := func() renameProbe {
		k := sim.New(1801)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := newShardFS(k, "meta", shard.DefaultConfig(8))
		// Probe the routing for a same-shard and a cross-shard directory
		// pair before spawning any load.
		var local, remote string
		base := "/d0"
		for i := 1; i < 128 && (local == "" || remote == ""); i++ {
			cand := fmt.Sprintf("/d%d", i)
			if fsys.ShardOfDir(cand) == fsys.ShardOfDir(base) {
				if local == "" {
					local = cand
				}
			} else if remote == "" {
				remote = cand
			}
		}
		var sameAvg, crossAvg time.Duration
		k.Spawn("probe", func(p *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], p)
			for _, d := range []string{base, local, remote} {
				if err := c.Mkdir(d); err != nil {
					return
				}
			}
			for i := 0; i < ops; i++ {
				if err := c.Create(fmt.Sprintf("%s/f%d", base, i)); err != nil {
					return
				}
			}
			start := p.Now()
			for i := 0; i < ops; i++ {
				if err := c.Rename(fmt.Sprintf("%s/f%d", base, i), fmt.Sprintf("%s/f%d", local, i)); err != nil {
					return
				}
			}
			sameAvg = (p.Now() - start) / ops
			start = p.Now()
			for i := 0; i < ops; i++ {
				if err := c.Rename(fmt.Sprintf("%s/f%d", local, i), fmt.Sprintf("%s/f%d", remote, i)); err != nil {
					return
				}
			}
			crossAvg = (p.Now() - start) / ops
		})
		err := k.Run()
		return renameProbe{sameAvg, crossAvg, fsys.CrossCount, err}
	}

	// Part 2 cell: root readdir under subtree placement merges all
	// shards; a subtree-local listing stays on one.
	type readdirProbe struct {
		rootAvg, localAvg time.Duration
		err               error
	}
	probeReaddir := func() readdirProbe {
		k2 := sim.New(1802)
		cl2 := cluster.New(k2, cluster.DefaultConfig(1))
		cfg := shard.DefaultConfig(8)
		cfg.Placement = shard.PlaceSubtree
		cfg.SubtreeAssign = e16SubtreeAssign(8)
		fsys2 := newShardFS(k2, "meta", cfg)
		var rootAvg, localAvg time.Duration
		k2.Spawn("readdir", func(p *sim.Proc) {
			c := fsys2.NewClient(cl2.Nodes[0], p)
			for j := 0; j < 24; j++ {
				if err := c.Mkdir(fmt.Sprintf("/zp%d", j)); err != nil {
					return
				}
			}
			for i := 0; i < 32; i++ {
				if err := c.Create(fmt.Sprintf("/zp0/f%d", i)); err != nil {
					return
				}
			}
			start := p.Now()
			for i := 0; i < ops; i++ {
				if _, err := c.ReadDir("/"); err != nil {
					return
				}
			}
			rootAvg = (p.Now() - start) / ops
			start = p.Now()
			for i := 0; i < ops; i++ {
				if _, err := c.ReadDir("/zp0"); err != nil {
					return
				}
			}
			localAvg = (p.Now() - start) / ops
		})
		err := k2.Run()
		return readdirProbe{rootAvg, localAvg, err}
	}

	// Both probes write only their own slot; merge in declaration order.
	var ren renameProbe
	var rd readdirProbe
	parCells("E18", []string{"rename", "readdir"}, func(i int) struct{} {
		if i == 0 {
			ren = probeRename()
		} else {
			rd = probeReaddir()
		}
		return struct{}{}
	})
	sameAvg, crossAvg := ren.sameAvg, ren.crossAvg
	if ren.err != nil || sameAvg == 0 || crossAvg == 0 {
		r.finding("rename probe failed (err=%v)", ren.err)
		return r
	}
	r.row("same-shard rename", float64(sameAvg.Microseconds()), "us", "hash placement, 8 shards")
	r.row("cross-shard rename", float64(crossAvg.Microseconds()), "us", "migrate + interconnect hop")
	r.row("cross-shard rename penalty", float64(crossAvg)/float64(sameAvg), "x", "")
	r.row("interconnect crossings", float64(ren.crossings), "", "")

	rootAvg, localAvg := rd.rootAvg, rd.localAvg
	if rd.err != nil || rootAvg == 0 || localAvg == 0 {
		r.finding("readdir probe failed (err=%v)", rd.err)
		return r
	}
	r.row("root readdir (8-shard merge)", float64(rootAvg.Microseconds()), "us", "subtree placement")
	r.row("subtree-local readdir", float64(localAvg.Microseconds()), "us", "")
	r.row("merge penalty", float64(rootAvg)/float64(localAvg), "x", "")
	r.finding("a shard boundary turns one RPC into a coordinated pair: "+
		"cross-shard rename costs %.1fx a local one (%.0f vs %.0f us), and a "+
		"root listing that merges 8 shards costs %.1fx a subtree-local one",
		float64(crossAvg)/float64(sameAvg), float64(crossAvg.Microseconds()),
		float64(sameAvg.Microseconds()), float64(rootAvg)/float64(localAvg))
	return r
}
