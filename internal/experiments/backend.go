package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// The E28–E30 family prices the metadata storage backend itself
// (internal/shard/backend.go). Every experiment before E28 ran on one
// implicit backend — the in-memory namespace with a metadata journal —
// but real metadata services diverge exactly at this layer: HopsFS
// moves HDFS metadata into a NewSQL database, Ceph and many KV-backed
// designs sit on an LSM tree. E28 profiles the per-operation cost of
// the three backend models, E29 puts LSM compaction pauses into the
// §3.2.5 interval timeline, and E30 sweeps the group-commit window
// that batches journal flushes and replication round trips — the knob
// that changes E20's replication-overhead story.

// backendKinds is the sweep order of the backend experiments.
var backendKinds = []shard.BackendKind{shard.BackendMemJournal, shard.BackendLSM, shard.BackendBTree}

// E28BackendProfile prices create, positive stat, negative stat
// (ENOENT) and readdir per backend across 1–8 shards with a single
// uncached probe client, so the numbers are pure backend service cost —
// no client caching, no queueing.
func E28BackendProfile() *Report {
	r := &Report{ID: "E28", Title: "Backend cost profile: create/stat/ENOENT/readdir per storage backend",
		PaperRef: "beyond §4.3 (HopsFS NewSQL / LSM-KV backend axis)"}
	const (
		warm = 600 // files pre-created per directory before measuring
		ops  = 200
		rds  = 40
	)
	shardCounts := []int{1, 2, 4, 8}
	type probe struct {
		create, stat, enoent, readdir time.Duration
		err                           error
	}
	run := func(kind shard.BackendKind, nShards int) probe {
		cfg := shard.DefaultConfig(nShards)
		cfg.Backend = kind
		cfg.CacheMode = shard.CacheNone
		k := sim.New(2800)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := newShardFS(k, "meta", cfg)
		var p probe
		k.Spawn("probe", func(sp *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], sp)
			if p.err = c.Mkdir("/d"); p.err != nil {
				return
			}
			for i := 0; i < warm; i++ {
				if p.err = c.Create(fmt.Sprintf("/d/w%d", i)); p.err != nil {
					return
				}
			}
			start := sp.Now()
			for i := 0; i < ops; i++ {
				if p.err = c.Create(fmt.Sprintf("/d/f%d", i)); p.err != nil {
					return
				}
			}
			p.create = (sp.Now() - start) / ops
			start = sp.Now()
			for i := 0; i < ops; i++ {
				if _, p.err = c.Stat(fmt.Sprintf("/d/f%d", i)); p.err != nil {
					return
				}
			}
			p.stat = (sp.Now() - start) / ops
			start = sp.Now()
			for i := 0; i < ops; i++ {
				// Distinct missing names: CacheNone keeps no negative
				// dentries for them, so every stat reaches the server.
				if _, err := c.Stat(fmt.Sprintf("/d/m%d", i)); err == nil {
					p.err = fmt.Errorf("stat of missing name succeeded")
					return
				}
			}
			p.enoent = (sp.Now() - start) / ops
			start = sp.Now()
			for i := 0; i < rds; i++ {
				if _, p.err = c.ReadDir("/d"); p.err != nil {
					return
				}
			}
			p.readdir = (sp.Now() - start) / rds
		})
		if err := k.Run(); err != nil && p.err == nil {
			p.err = err
		}
		return p
	}
	// One cell per (backend, shard count) pair — 12 independent kernels.
	names := make([]string, 0, len(backendKinds)*len(shardCounts))
	for _, kind := range backendKinds {
		for _, n := range shardCounts {
			names = append(names, fmt.Sprintf("%s-%dshards", kind, n))
		}
	}
	cells := parCells("E28", names, func(i int) probe {
		return run(backendKinds[i/len(shardCounts)], shardCounts[i%len(shardCounts)])
	})
	byKind := func(k, s int) probe { return cells[k*len(shardCounts)+s] }
	for k, kind := range backendKinds {
		for s, n := range shardCounts {
			if p := byKind(k, s); p.err != nil {
				r.finding("probe failed: %s @ %d shards: %v", kind, n, p.err)
				return r
			}
		}
	}
	last := len(shardCounts) - 1
	for k, kind := range backendKinds {
		p := byKind(k, last)
		r.row(fmt.Sprintf("%-10s: create", kind.String()), float64(p.create.Microseconds()), "us",
			fmt.Sprintf("8 shards, %d-entry directory", warm))
		r.row(fmt.Sprintf("%-10s: stat (hit)", kind.String()), float64(p.stat.Microseconds()), "us", "uncached client")
		r.row(fmt.Sprintf("%-10s: stat ENOENT", kind.String()), float64(p.enoent.Microseconds()), "us", "")
		r.row(fmt.Sprintf("%-10s: readdir", kind.String()), float64(p.readdir.Microseconds()), "us",
			fmt.Sprintf("%d entries", warm+ops))
	}
	mem, lsm, btree := byKind(0, last), byKind(1, last), byKind(2, last)
	r.row("lsm ENOENT discount", float64(lsm.enoent)/float64(mem.enoent), "x",
		"bloom filter short-circuits the miss")
	r.row("btree readdir vs lsm", float64(btree.readdir)/float64(lsm.readdir), "x",
		"clustered scan vs level merge")
	// Create cost vs shard count per backend: the point of the chart is
	// that the backend, not the shard count, moves single-op latency.
	var series []charts.Series
	for k, kind := range backendKinds {
		xs := make([]float64, len(shardCounts))
		ys := make([]float64, len(shardCounts))
		for s, n := range shardCounts {
			xs[s] = float64(n)
			ys[s] = float64(byKind(k, s).create.Microseconds())
		}
		series = append(series, charts.Series{Name: kind.String(), X: xs, Y: ys})
	}
	r.Charts = append(r.Charts, charts.Render(
		"Uncontended create latency vs. shard count, per storage backend",
		"shards", "us", chartW, chartH, series))
	r.finding("for a single uncontended client the network round trip dominates, "+
		"so the backend moves the service component, not the envelope: at 8 "+
		"shards a create costs %.0f/%.0f/%.0f us on memjournal/lsm/btree "+
		"(B-tree pays page descent and write locking), the LSM bloom filter "+
		"trims the ENOENT stat to %.2fx the memjournal miss while its "+
		"level-merge readdir runs %.1fx the B-tree's clustered scan — and no "+
		"series moves with shard count, because sharding multiplies servers "+
		"without touching the per-operation price each backend charges",
		float64(mem.create.Microseconds()), float64(lsm.create.Microseconds()),
		float64(btree.create.Microseconds()),
		float64(lsm.enoent)/float64(mem.enoent),
		float64(lsm.readdir)/float64(btree.readdir))
	return r
}

// E29CompactionTimeline puts LSM compaction pauses into the interval
// timeline: a steady 8-shard create load on the LSM backend, sweeping
// the compaction interval (bytes of amplified log traffic between
// compactions). Small intervals stall often and briefly; large ones
// stall rarely but long — the same frequency-vs-depth trade as the
// §2.7 checkpoint cadence, measured with the E26 storm methodology
// (per-event dip against the second before, COV spike after).
func E29CompactionTimeline() *Report {
	r := &Report{ID: "E29", Title: "Compaction-pause timeline: throughput dips vs. LSM compaction interval",
		PaperRef: "beyond §4.2 + §2.7 (self-inflicted stalls in the timeline)"}
	const window = 12 * time.Second
	run := func(seed int64, compactEvery int64) (*results.Measurement, *results.Set, *shard.FS, time.Duration) {
		cfg := shard.DefaultConfig(8)
		cfg.Backend = shard.BackendLSM
		cfg.LSM.CompactEvery = compactEvery
		k := sim.New(seed)
		cl := cluster.New(k, cluster.DefaultConfig(8))
		fsys := newShardFS(k, "meta", cfg)
		var benchStart time.Duration
		rn := &core.Runner{
			Cluster: cl,
			FS:      fsys,
			Params: core.Params{ProblemSize: 1 << 20, TimeLimit: window,
				WorkDir: "/bench"},
			SlotsPerNode: 2,
			Plugins:      []core.Plugin{core.MakeFiles{}},
			Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 2 },
			BenchStartHook: func(mp *sim.Proc, _ core.MeasurementInfo) {
				benchStart = mp.Now()
			},
		}
		set, err := rn.Run()
		if err != nil {
			return nil, nil, fsys, 0
		}
		return set.Find("MakeFiles", 8, 2), set, fsys, benchStart
	}
	intervals := []int64{2 << 20, 8 << 20, 32 << 20}
	type e29cell struct {
		m     *results.Measurement
		set   *results.Set
		fs    *shard.FS
		start time.Duration
	}
	names := make([]string, len(intervals))
	for i, every := range intervals {
		names[i] = fmt.Sprintf("every%dMB", every>>20)
	}
	cells := parCells("E29", names, func(i int) e29cell {
		m, set, fsys, start := run(int64(2900+i), intervals[i])
		return e29cell{m, set, fsys, start}
	})
	var chartsOut []string
	var smallDip, largeDip, largeCOV float64
	var largePause time.Duration
	for i, every := range intervals {
		m, set, fsys, start := cells[i].m, cells[i].set, cells[i].fs, cells[i].start
		if m == nil {
			r.finding("run failed at %dMB", every>>20)
			return r
		}
		r.Sets = append(r.Sets, set)
		rate := wallOf(set, "MakeFiles", 8, 2)
		var meanPause time.Duration
		for _, ev := range fsys.Compactions {
			meanPause += ev.Dur
		}
		if n := len(fsys.Compactions); n > 0 {
			meanPause /= time.Duration(n)
		}
		// The deepest single-interval dip across all compaction starts,
		// each against the second before it (the E26 rule), plus the
		// worst COV spike in the second after. Events without a full
		// baseline second before them and a full dip window before the
		// run ends are skipped: setup-phase compactions have no timeline
		// to dip, and the truncated final interval would register as a
		// near-total stall for any event close to the time limit.
		var cov float64
		dip := 1.0
		for _, ev := range fsys.Compactions {
			if ev.At < start+time.Second || ev.At > start+window-time.Second {
				continue
			}
			at := ev.At - start
			from := at - time.Second
			base := windowThroughput(m, from, at)
			during, ok := minThroughput(m, at, at+600*time.Millisecond)
			if ok && base > 0 && during/base < dip {
				dip = during / base
			}
			if c := maxCOV(m, at, at+time.Second); c > cov {
				cov = c
			}
		}
		r.row(fmt.Sprintf("compact every %2dMB: creates/s", every>>20), rate, "ops/s",
			fmt.Sprintf("%d compactions, mean pause %.0fms",
				len(fsys.Compactions), meanPause.Seconds()*1000))
		r.row(fmt.Sprintf("compact every %2dMB: deepest dip", every>>20), dip*100, "%",
			"worst interval within 600ms of a compaction vs. the second before it")
		r.row(fmt.Sprintf("compact every %2dMB: max COV after", every>>20), cov, "", "")
		if i == 0 {
			smallDip = dip
		}
		largeDip, largeCOV, largePause = dip, cov, meanPause
		if every == intervals[len(intervals)-1] {
			chartsOut = append(chartsOut,
				fmt.Sprintf("LSM create load, compaction every %dMB of amplified log traffic\n", every>>20)+
					charts.TimeChart(m, chartW, chartH))
		}
	}
	r.Charts = append(r.Charts, chartsOut...)
	r.finding("compaction cadence is the §2.7 checkpoint trade-off on an LSM "+
		"store: frequent small compactions keep the deepest interval at "+
		"%.0f%% of baseline, while batching %dMB of debt stalls a shard for "+
		"%.0fms at a time and drops the worst interval to %.0f%% — yet the "+
		"per-process COV stays near %.3f throughout, because a compacting "+
		"shard slows every client equally; unlike the localized E26 split "+
		"storms, only the timeline (not the variance) betrays the pause",
		smallDip*100, intervals[len(intervals)-1]>>20,
		largePause.Seconds()*1000, largeDip*100, largeCOV)
	return r
}

// E30GroupCommit sweeps the group-commit window on a replicated 4-shard
// service: mutations committing within one window share a single
// journal flush and one mirror round trip per replica partner, so the
// replication message count E20 prices per-mutation collapses by the
// batch size. The price is commit-ack latency — every batched op holds
// its worker slot until the window closes and the shared flush lands.
// Throughput cells run the E20 workload; latency cells run a single
// uncontended probe client.
func E30GroupCommit() *Report {
	r := &Report{ID: "E30", Title: "Group-commit window sweep: replication overhead vs. added latency",
		PaperRef: "beyond §4.3 (HopsFS-style batched commits)"}
	const nShards = 4
	windows := []time.Duration{0, 250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond}
	plugin := e16Workload(0)
	mkCfg := func(replicate bool, w time.Duration) shard.Config {
		cfg := shard.DefaultConfig(nShards)
		cfg.Replicate = replicate
		cfg.GroupCommitWindow = w
		// A batch can only grow to the ops concurrently inside one
		// window, and every batched op holds its worker slot until the
		// flush: widen the pool so batching is measured, not strangled.
		cfg.ShardThreads = 16
		return cfg
	}
	type tcell struct {
		set     *results.Set
		rate    float64
		mirrors int64
		batches int64
	}
	type lcell struct {
		create time.Duration
		err    error
	}
	probeLatency := func(w time.Duration) lcell {
		cfg := mkCfg(true, w)
		k := sim.New(3001)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := newShardFS(k, "meta", cfg)
		var c0 lcell
		k.Spawn("probe", func(sp *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], sp)
			if c0.err = c.Mkdir("/d"); c0.err != nil {
				return
			}
			const ops = 200
			start := sp.Now()
			for i := 0; i < ops; i++ {
				if c0.err = c.Create(fmt.Sprintf("/d/f%d", i)); c0.err != nil {
					return
				}
			}
			c0.create = (sp.Now() - start) / ops
		})
		if err := k.Run(); err != nil && c0.err == nil {
			c0.err = err
		}
		return c0
	}
	// Cells: one unreplicated baseline, one replicated throughput run
	// per window, one latency probe per window — 9 independent kernels.
	names := []string{"plain"}
	for _, w := range windows {
		names = append(names, fmt.Sprintf("repl-w%dus", w.Microseconds()))
	}
	for _, w := range windows {
		names = append(names, fmt.Sprintf("latency-w%dus", w.Microseconds()))
	}
	tcells := make([]tcell, 1+len(windows))
	lcells := make([]lcell, len(windows))
	parCells("E30", names, func(i int) struct{} {
		switch {
		case i == 0:
			set, _ := runSharded(3000, mkCfg(false, 0), plugin, 400)
			if set != nil {
				tcells[0] = tcell{set: set, rate: wallOf(set, plugin.Name(), 16, 4)}
			}
		case i <= len(windows):
			set, fsys := runSharded(3000, mkCfg(true, windows[i-1]), plugin, 400)
			if set != nil {
				tcells[i] = tcell{set: set, rate: wallOf(set, plugin.Name(), 16, 4),
					mirrors: fsys.MirrorCount, batches: fsys.GroupCommits}
			}
		default:
			lcells[i-1-len(windows)] = probeLatency(windows[i-1-len(windows)])
		}
		return struct{}{}
	})
	plain := tcells[0]
	if plain.set == nil {
		r.finding("baseline run failed")
		return r
	}
	r.Sets = append(r.Sets, plain.set)
	r.row("creates/s, no replication", plain.rate, "ops/s",
		fmt.Sprintf("%d shards, 16 threads", nShards))
	var xs, overheadY, tripsY, latencyY []float64
	for i, w := range windows {
		t, l := tcells[i+1], lcells[i]
		if t.set == nil || l.err != nil {
			r.finding("run failed at window %v (err=%v)", w, l.err)
			return r
		}
		r.Sets = append(r.Sets, t.set)
		overhead := 100 * (1 - t.rate/plain.rate)
		trips := 100 * float64(t.mirrors) / float64(tcells[1].mirrors)
		note := fmt.Sprintf("%d mirror round trips", t.mirrors)
		if w > 0 {
			note += fmt.Sprintf(", %d batches", t.batches)
		}
		r.row(fmt.Sprintf("creates/s, repl, window %4dus", w.Microseconds()), t.rate, "ops/s", note)
		r.row(fmt.Sprintf("throughput cost, window %4dus", w.Microseconds()), overhead, "%",
			"vs. the unreplicated baseline")
		r.row(fmt.Sprintf("mirror traffic, window %4dus", w.Microseconds()), trips, "%",
			"round trips relative to per-op replication")
		r.row(fmt.Sprintf("probe create latency, window %4dus", w.Microseconds()),
			float64(l.create.Microseconds()), "us", "single uncontended client")
		xs = append(xs, float64(w.Microseconds()))
		overheadY = append(overheadY, overhead)
		tripsY = append(tripsY, trips)
		latencyY = append(latencyY, float64(l.create.Microseconds()))
	}
	last := len(windows) - 1
	r.finding("group commit is a message-count knob, not a throughput knob, in a "+
		"latency-priced service: per-op mirror round trips already overlap "+
		"across the worker slots, so batching them %d -> %d (%.1fx) recovers "+
		"no service time — instead every mutation waits out its window, "+
		"throughput falls %.0f -> %.0f creates/s and an uncontended create "+
		"grows %.0f -> %.0f us. The window buys journal-device and network "+
		"economy and charges for it in ack latency; the smallest batching "+
		"window (%.0fus: %.1fx fewer trips for %.0f%% more throughput cost) "+
		"is the only defensible setting under this cost model",
		tcells[1].mirrors, tcells[1+last].mirrors,
		float64(tcells[1].mirrors)/float64(tcells[1+last].mirrors),
		tcells[1].rate, tcells[1+last].rate,
		latencyY[0], latencyY[last],
		xs[1], float64(tcells[1].mirrors)/float64(tcells[2].mirrors),
		overheadY[1]-overheadY[0])
	r.Charts = append(r.Charts, charts.Render(
		"Group-commit window: mirror traffic saved vs. throughput cost",
		"window us", "%", chartW, chartH,
		[]charts.Series{
			{Name: "throughput cost %", X: xs, Y: overheadY},
			{Name: "mirror traffic % of per-op", X: xs, Y: tripsY},
		}))
	return r
}
