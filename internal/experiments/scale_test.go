package experiments

import (
	"strings"
	"testing"
	"time"

	"dmetabench/internal/par"
)

// scaleExperiments returns E31–E33 from the registry (so the test runs
// exactly what cmd/experiments dispatches, including declared cells).
func scaleExperiments(t *testing.T) []Experiment {
	t.Helper()
	want := map[string]bool{"E31": true, "E32": true, "E33": true}
	var out []Experiment
	for _, e := range All() {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("found %d of %d scale experiments", len(out), len(want))
	}
	return out
}

// withPeriod compresses the long-horizon experiments for test runs and
// restores the package override afterwards.
func withPeriod(t *testing.T, d time.Duration) {
	t.Helper()
	old := Period
	Period = d
	t.Cleanup(func() { Period = old })
}

// TestScaleReportsByteIdenticalAcrossWorkers is the E31–E33 leg of the
// suite determinism contract: the rendered reports of the long-horizon
// experiments — interval series, shed fractions, capacity censuses —
// are byte-identical at any par worker count.
func TestScaleReportsByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon experiments; skipped in -short")
	}
	withPeriod(t, 5*time.Minute)
	es := scaleExperiments(t)
	old := par.Workers()
	defer par.SetWorkers(old)

	par.SetWorkers(1)
	serial := renderAll(es)
	par.SetWorkers(8)
	parallel := renderAll(es)

	if serial != parallel {
		t.Fatalf("scale reports differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

// TestScaleReportsByteIdenticalUnderDomains repeats the worker-count
// byte-diff with every sharded simulation partitioned into five kernel
// domains: the aggregate injection lanes then run concurrently with the
// foreground probes across real goroutines, and the reports must still
// not depend on the worker count.
func TestScaleReportsByteIdenticalUnderDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon experiments; skipped in -short")
	}
	withPeriod(t, 2*time.Minute)
	oldDomains := Domains
	Domains = 5
	defer func() { Domains = oldDomains }()
	es := scaleExperiments(t)
	old := par.Workers()
	defer par.SetWorkers(old)

	par.SetWorkers(1)
	serial := renderAll(es)
	par.SetWorkers(8)
	parallel := renderAll(es)

	if serial != parallel {
		t.Fatalf("scale reports differ between -j 1 and -j 8 at Domains=5:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

// TestScaleDeclaredCellCounts pins E31–E33's Cells declarations the way
// TestDeclaredCellCounts does for the cheap cross-section.
func TestScaleDeclaredCellCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon experiments; skipped in -short")
	}
	withPeriod(t, 2*time.Minute)
	old := par.Workers()
	defer par.SetWorkers(old)
	par.SetWorkers(4)

	for _, e := range scaleExperiments(t) {
		par.DrainTimings()
		e.Run()
		got := 0
		for _, tm := range par.DrainTimings() {
			if strings.HasPrefix(tm.Label, e.ID+"/") {
				got++
			}
		}
		if got != e.Cells {
			t.Errorf("%s: dispatched %d cells, declares Cells=%d", e.ID, got, e.Cells)
		}
	}
}

// TestScaleSmoke is the scaled-down long-horizon smoke: every scale
// experiment must produce rows and a non-degenerate background at a
// compressed horizon (the CI job runs the full E31 via cmd/experiments
// -period 10m; this keeps `go test` coverage without the binary).
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon experiments; skipped in -short")
	}
	withPeriod(t, 2*time.Minute)
	for _, e := range scaleExperiments(t) {
		rep := e.Run()
		if len(rep.Rows) == 0 {
			t.Fatalf("%s: no rows: %s", e.ID, rep.String())
		}
		for _, f := range rep.Findings {
			if strings.Contains(f, "failed") {
				t.Fatalf("%s: failed finding: %s", e.ID, f)
			}
		}
	}
}
