package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/afs"
	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/nfs"
	"dmetabench/internal/ontapgx"
	"dmetabench/internal/results"
	"dmetabench/internal/sim"
)

// E13NamespaceAggregation reproduces §4.7.1–4.7.2: on a clustered NFS
// server, requests for a volume owned by the mount filer run at full
// speed while forwarded requests pay the cluster-interconnect penalty;
// with per-node volumes the cluster scales with the number of filers,
// while a single hot volume is limited by its owner.
func E13NamespaceAggregation() *Report {
	r := &Report{ID: "E13", Title: "Ontap GX: volume placement and forwarding",
		PaperRef: "§4.7.1-4.7.2"}
	const filers = 8

	// Part (a) cell: single client, local vs. remote volume, on its own
	// probe kernel.
	type e13a struct {
		local, remote float64
		forwards      int64
		err           error
	}
	probeLocalRemote := func() e13a {
		k := sim.New(1313)
		cl := cluster.New(k, cluster.DefaultConfig(1))
		fsys := ontapgx.New(k, "gx", filers, ontapgx.DefaultConfig())
		for i := 0; i < filers; i++ {
			fsys.AddVolume(fmt.Sprintf("vol%d", i), i)
		}
		fsys.MountThrough(cl.Nodes[0], 0)
		var local, remote float64
		k.Spawn("probe", func(p *sim.Proc) {
			c := fsys.NewClient(cl.Nodes[0], p)
			rate := func(dir string) float64 {
				if err := core.MkdirAll(c, dir); err != nil {
					return 0
				}
				start := p.Now()
				const n = 500
				for i := 0; i < n; i++ {
					if err := c.Create(fmt.Sprintf("%s/%d", dir, i)); err != nil {
						return 0
					}
				}
				return n / (p.Now() - start).Seconds()
			}
			local = rate("/vol0/bench")  // owned by the mount filer
			remote = rate("/vol3/bench") // owned by filer 3: forwarded
		})
		if err := k.Run(); err != nil {
			return e13a{err: err}
		}
		return e13a{local: local, remote: remote, forwards: fsys.ForwardCount}
	}

	// Part (b): multi-node scaling, per-node local volumes vs one shared
	// volume — one ParallelRunner cell per (nodes, ppn) sweep point.
	scale := func(oneVolume bool, seed int64, label string) *results.Set {
		pr := &core.ParallelRunner{
			New: func(k *sim.Kernel) *core.Runner {
				cl := cluster.New(k, cluster.DefaultConfig(filers))
				fsys := ontapgx.New(k, "gx", filers, ontapgx.DefaultConfig())
				var paths []string
				for i := 0; i < filers; i++ {
					fsys.AddVolume(fmt.Sprintf("vol%d", i), i)
					fsys.MountThrough(cl.Nodes[i], i)
					if oneVolume {
						paths = append(paths, "/vol0")
					} else {
						paths = append(paths, fmt.Sprintf("/vol%d", i))
					}
				}
				return &core.Runner{
					Cluster:      cl,
					FS:           fsys,
					Params:       core.Params{ProblemSize: 1200, PathList: paths, WorkDir: "/vol0"},
					SlotsPerNode: 4,
					Plugins:      []core.Plugin{core.MakeFiles{}},
					Filter: func(c core.Combo) bool {
						okNodes := c.Nodes == 1 || c.Nodes == 2 || c.Nodes == 4 || c.Nodes == filers
						return okNodes && (c.PPN == 1 || c.PPN == 4)
					},
				}
			},
			Seed:  seed,
			Label: label,
		}
		set, err := pr.Run()
		if err != nil {
			return nil
		}
		return set
	}

	// Three top-level cells (the probe plus two nested 8-cell sweeps).
	type e13cell struct {
		a   e13a
		set *results.Set
	}
	cells := parCells("E13", []string{"local-vs-remote", "per-node-volumes", "one-volume"},
		func(i int) e13cell {
			switch i {
			case 0:
				return e13cell{a: probeLocalRemote()}
			case 1:
				return e13cell{set: scale(false, 1314, "E13/per-node-volumes")}
			default:
				return e13cell{set: scale(true, 1315, "E13/one-volume")}
			}
		})
	a := cells[0].a
	if a.err != nil {
		r.finding("run failed: %v", a.err)
		return r
	}
	r.row("creates/s in local volume", a.local, "ops/s", "volume on mount filer")
	r.row("creates/s in forwarded volume", a.remote, "ops/s", "via cluster interconnect")
	r.row("remote efficiency", 100*a.remote/a.local, "%", "[ECK+07] claims ~75%")
	r.row("forwarded requests", float64(a.forwards), "", "")
	r.finding("paper/[ECK+07]: forwarding costs ~25%%; here remote volume "+
		"runs at %.0f%% of local", 100*a.remote/a.local)

	perVol, oneVol := cells[1].set, cells[2].set
	if perVol == nil || oneVol == nil {
		r.finding("scaling run failed")
		return r
	}
	r.Sets = append(r.Sets, perVol, oneVol)
	for _, n := range []int{1, 4, 8} {
		r.row(fmt.Sprintf("per-node volumes @ %d nodes x1", n), stoneOf(perVol, "MakeFiles", n, 1), "ops/s", "")
		r.row(fmt.Sprintf("single volume @ %d nodes x1", n), stoneOf(oneVol, "MakeFiles", n, 1), "ops/s", "")
	}
	r.row("per-node volumes @ 8 nodes x4", stoneOf(perVol, "MakeFiles", 8, 4), "ops/s", "32 procs, all local")
	r.row("single volume @ 8 nodes x4", stoneOf(oneVol, "MakeFiles", 8, 4), "ops/s", "32 procs on one D-blade")
	p1 := stoneOf(perVol, "MakeFiles", 1, 1)
	p8 := stoneOf(perVol, "MakeFiles", 8, 4)
	o8 := stoneOf(oneVol, "MakeFiles", 8, 4)
	r.finding("paper: distributing load across volumes/filers scales while one "+
		"volume is bounded by its owner; here per-node volumes reach %.1fx the "+
		"single-node rate at 8x4 while one hot volume reaches only %.1fx "+
		"(owner-filer bound)", p8/p1, o8/p1)
	r.Charts = append(r.Charts, charts.VsNodes([]charts.LabeledSeries{
		{Label: "MakeFiles, one volume per node (local)", Points: perVol.ScaleSeries("MakeFiles")},
		{Label: "MakeFiles, all nodes in one volume", Points: oneVol.ScaleSeries("MakeFiles")},
	}, 1, chartW, chartH))
	return r
}

// afsEnv builds a 4-node cluster with a 2-server AFS cell and one volume
// per node.
func afsEnv(seed int64) (*sim.Kernel, *cluster.Cluster, *afs.FS, []string) {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	cell := afs.New(k, "cell", 2, afs.DefaultConfig())
	var paths []string
	for i := 0; i < 4; i++ {
		cell.AddVolume(fmt.Sprintf("vol%d", i), -1)
		paths = append(paths, fmt.Sprintf("/vol%d", i))
	}
	return k, cl, cell, paths
}

func afsRun(plugin core.Plugin, nodes, problem int, seed int64) (*results.Set, *afs.FS) {
	_, cl, cell, paths := afsEnv(seed)
	r := &core.Runner{
		Cluster:      cl,
		FS:           cell,
		Params:       core.Params{ProblemSize: problem, PathList: paths, WorkDir: "/vol0"},
		SlotsPerNode: 1,
		Plugins:      []core.Plugin{plugin},
		Filter:       func(c core.Combo) bool { return c.Nodes == nodes && c.PPN == 1 },
	}
	set, err := r.Run()
	if err != nil {
		return nil, nil
	}
	return set, cell
}

// E14AFS reproduces §4.7.3: AFS serves cached attribute reads from its
// persistent client cache — even after drop_caches — while cross-node
// reads and namespace modifications pay full server round trips.
func E14AFS() *Report {
	r := &Report{ID: "E14", Title: "AFS: persistent cache and volume-grain service",
		PaperRef: "§4.7.3"}
	const problem = 800

	// Six cells: four AFS runs plus the two NFS contrast probes, each on
	// its own kernel with the serial loop's seeds.
	type e14cell struct {
		set  *results.Set
		cell *afs.FS
		rate float64
	}
	cells := parCells("E14", []string{"afs-warm", "afs-nocache", "afs-multinode",
		"afs-creates", "nfs-warm", "nfs-nocache"}, func(i int) e14cell {
		switch i {
		case 0:
			s, c := afsRun(core.StatFiles{}, 1, problem, 1401)
			return e14cell{set: s, cell: c}
		case 1:
			s, c := afsRun(core.StatNocacheFiles{}, 1, problem, 1402)
			return e14cell{set: s, cell: c}
		case 2:
			s, c := afsRun(core.StatMultinodeFiles{}, 2, problem, 1403)
			return e14cell{set: s, cell: c}
		case 3:
			s, c := afsRun(core.MakeFiles{}, 4, 600, 1404)
			return e14cell{set: s, cell: c}
		case 4:
			return e14cell{rate: singleProcWall(func(k *sim.Kernel) core.FileSystem {
				return newNFSFS(k, "home", nfs.DefaultConfig())
			}, core.StatFiles{}, problem, 1405)}
		default:
			return e14cell{rate: singleProcWall(func(k *sim.Kernel) core.FileSystem {
				return newNFSFS(k, "home", nfs.DefaultConfig())
			}, core.StatNocacheFiles{}, problem, 1406)}
		}
	})
	warm, nocache, multi, creates := cells[0].set, cells[1].set, cells[2].set, cells[3].set
	cell := cells[1].cell
	if warm == nil || nocache == nil || multi == nil || creates == nil {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, warm, nocache, multi, creates)

	// NFS contrast: dropping caches forces RPCs.
	nfsWarm, nfsNoCache := cells[4].rate, cells[5].rate

	aWarm := wallOf(warm, "StatFiles", 1, 1)
	aNo := wallOf(nocache, "StatNocacheFiles", 1, 1)
	aMulti := wallOf(multi, "StatMultinodeFiles", 2, 1)
	aCreate := wallOf(creates, "MakeFiles", 4, 1)
	hits, misses := cell.CacheStats()
	r.row("AFS StatFiles (warm cache)", aWarm, "ops/s", "")
	r.row("AFS StatNocacheFiles", aNo, "ops/s", "persistent cache survives drop_caches")
	r.row("AFS StatMultinodeFiles", aMulti, "ops/s", "peer files: server FetchStatus")
	r.row("AFS MakeFiles 4x1", aCreate, "ops/s", "")
	r.row("NFS StatFiles (warm cache)", nfsWarm, "ops/s", "")
	r.row("NFS StatNocacheFiles", nfsNoCache, "ops/s", "drop_caches forces GETATTR")
	r.row("AFS cache hits", float64(hits), "", "")
	r.row("AFS cache misses", float64(misses), "", "")
	r.finding("paper: AFS's disk cache is unaffected by the Linux cache drop, so "+
		"StatNocacheFiles stays near the warm rate (here %.1f%%) while NFS falls "+
		"to %.1f%% of warm; cross-node stats drop to %.1f%% on AFS",
		100*aNo/aWarm, 100*nfsNoCache/nfsWarm, 100*aMulti/aWarm)
	_ = time.Second
	return r
}
