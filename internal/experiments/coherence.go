package experiments

import (
	"fmt"
	"time"

	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/fault"
	"dmetabench/internal/results"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
)

// The E22–E24 family measures client metadata cache coherence on the
// sharded MDS (internal/shard coherence.go, internal/clientcache
// LeaseCache). The thesis shows client-side caching dominating
// perceived metadata performance and contrasts NFS attribute timeouts
// with AFS-style callbacks (§2.1.2, §4.7.3); MetaFlow and HopsFS show
// that scaling metadata past one server only pays when clients cache
// aggressively under explicit invalidation. E22 sweeps the lease TTL
// (hit rate vs. revocation traffic under Zipf skew), E23 races the
// coherent cache against timeout and uncached clients across shard
// counts, and E24 puts a cached load through PR 3's failover with and
// without crash-time lease invalidation.

// e22Load is the shared coherence stress load: a pool of files every
// rank stats (Zipf-hot) and periodically rewrites. The pool is wide
// enough that a mid-popularity file's per-node revisit interval spans
// the E22 TTL sweep: hot files stay lease-covered at any TTL, cold
// files need a long one.
func e22Load(skew float64) core.StatMutateFiles {
	return core.StatMutateFiles{Files: 640, MutateEvery: 16, Skew: skew}
}

// runCoherence executes a fixed-size StatMutateFiles run on an 8-node x
// 2-process cluster and returns the result set plus the FS for counter
// readout.
func runCoherence(seed int64, cfg shard.Config, plugin core.Plugin, problem int) (*results.Set, *shard.FS) {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(8))
	fsys := newShardFS(k, "meta", cfg)
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: problem, WorkDir: "/bench"},
		SlotsPerNode: 2,
		Plugins:      []core.Plugin{plugin},
		Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 2 },
	}
	set, err := r.Run()
	if err != nil {
		return nil, fsys
	}
	return set, fsys
}

// hitRate returns hits/(hits+misses) as a percentage.
func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

// E22LeaseTTL sweeps the lease TTL under a Zipf-skewed stat+mutate
// load: longer leases convert expiry misses into hits, and what they
// cost is revocation callbacks — every rewrite must chase down more
// live holders — while staleness stays at zero, because a coherent hit
// is revoked before the mutation returns.
func E22LeaseTTL() *Report {
	r := &Report{ID: "E22", Title: "Lease TTL sweep: hit rate vs. revocation traffic",
		PaperRef: "beyond §2.1.2 (callback coherence; MetaFlow/HopsFS direction)"}
	plugin := e22Load(1.8)
	ttls := []time.Duration{25 * time.Millisecond, 100 * time.Millisecond,
		500 * time.Millisecond, 4 * time.Second}
	// One cell per lease TTL, all with the same seed (the E16 sweep
	// discipline: TTL is the only variable).
	type e22cell struct {
		set         *results.Set
		hr, rate    float64
		revocations int64
		grants      int64
		stale       int64
	}
	names := make([]string, len(ttls))
	for i, ttl := range ttls {
		names[i] = ttl.String()
	}
	cells := parCells("E22", names, func(i int) e22cell {
		cfg := shard.DefaultConfig(4)
		cfg.CacheMode = shard.CacheLease
		cfg.LeaseTTL = ttls[i]
		cfg.TrackStaleness = true
		set, fsys := runCoherence(2200, cfg, plugin, 8000)
		if set == nil {
			return e22cell{}
		}
		hits, misses, _, _ := fsys.CacheStats()
		return e22cell{set: set, hr: hitRate(hits, misses),
			rate:        wallOf(set, plugin.Name(), 8, 2),
			revocations: fsys.Revocations, grants: fsys.LeaseGrants,
			stale: fsys.StaleReads}
	})
	var xs, ys []float64
	var firstHit, lastHit, firstRev, lastRev float64
	for i, ttl := range ttls {
		c := cells[i]
		if c.set == nil {
			r.finding("run failed at TTL %v", ttl)
			return r
		}
		r.Sets = append(r.Sets, c.set)
		xs = append(xs, ttl.Seconds())
		ys = append(ys, c.hr)
		if len(xs) == 1 {
			firstHit, firstRev = c.hr, float64(c.revocations)
		}
		lastHit, lastRev = c.hr, float64(c.revocations)
		r.row(fmt.Sprintf("lease %5s: hit rate", ttl), c.hr, "%",
			fmt.Sprintf("%.0f stats/s", c.rate))
		r.row(fmt.Sprintf("lease %5s: revocations", ttl), float64(c.revocations), "",
			fmt.Sprintf("%d grants, %d stale reads", c.grants, c.stale))
	}
	r.finding("the lease TTL buys hit rate with revocation traffic: %.0f%% -> %.0f%% "+
		"hits from 25ms to 4s leases while callbacks grow %.0f -> %.0f (longer "+
		"leases leave more live holders for every mutation to chase down), and "+
		"stale reads stay at zero at every point — the coherence invariant the "+
		"timeout cache of E23 cannot offer at any TTL",
		firstHit, lastHit, firstRev, lastRev)
	r.Charts = append(r.Charts, charts.Render(
		"Cache hit rate vs. lease TTL (Zipf 1.8 stat+mutate, 4 shards)",
		"lease s", "hit %", chartW, chartH,
		[]charts.Series{{Name: "coherent hits", X: xs, Y: ys}}))
	return r
}

// E23CacheModes races the three client cache modes across shard counts
// on the shared stat+mutate load, then pins the hit-rate/staleness
// trade-off at 4 shards. The timeout cache can only reach the coherent
// cache's hit rate by serving stale attributes, and can only reach its
// freshness by shrinking the TTL to nothing — at which point it is no
// cache at all. Adding shards, meanwhile, barely moves a stat-heavy
// load: request latency and client caching dominate, not server count
// (the §4.6 lesson resurfacing at MDS scale).
func E23CacheModes() *Report {
	r := &Report{ID: "E23", Title: "Coherent vs. timeout vs. no client cache across shard counts",
		PaperRef: "beyond §4.7.3 (AFS callbacks vs. NFS timeouts, per shard count)"}
	plugin := e22Load(1.8)
	type cell struct {
		rate, hit float64
		stale     int64
		set       *results.Set
	}
	// measure is one cell on its own kernel; sets are collected in cell
	// order by the merge below.
	measure := func(n int, mode shard.CacheMode, attrTTL time.Duration, seed int64) cell {
		cfg := shard.DefaultConfig(n)
		cfg.CacheMode = mode
		cfg.TrackStaleness = true
		if attrTTL > 0 {
			cfg.AttrTTL = attrTTL
		}
		if mode == shard.CacheLease {
			cfg.LeaseTTL = 30 * time.Second
		}
		set, fsys := runCoherence(seed, cfg, plugin, 2000)
		if set == nil {
			return cell{}
		}
		hits, misses, _, _ := fsys.CacheStats()
		return cell{
			rate:  wallOf(set, plugin.Name(), 8, 2),
			hit:   hitRate(hits, misses),
			stale: fsys.StaleReads,
			set:   set,
		}
	}
	shardCounts := []int{1, 2, 4, 8}
	// 13 cells: (lease, ttl, none) per shard count plus the
	// hit-rate-matched TTL cell at 4 shards.
	modes := []struct {
		tag  string
		mode shard.CacheMode
	}{{"lease", shard.CacheLease}, {"ttl", shard.CacheTTL}, {"none", shard.CacheNone}}
	var names []string
	for _, n := range shardCounts {
		for _, m := range modes {
			names = append(names, fmt.Sprintf("%dshards-%s", n, m.tag))
		}
	}
	names = append(names, "4shards-ttl2ms")
	cells := parCells("E23", names, func(i int) cell {
		if i == len(names)-1 {
			return measure(4, shard.CacheTTL, 2*time.Millisecond, 2340)
		}
		si, mi := i/len(modes), i%len(modes)
		return measure(shardCounts[si], modes[mi].mode, 0, int64(2300+10*si+mi))
	})
	for _, c := range cells {
		if c.set != nil {
			r.Sets = append(r.Sets, c.set)
		}
	}
	var xs, leaseY, ttlY, noneY []float64
	var lease4, ttl4 cell
	for i, n := range shardCounts {
		lease, ttl, none := cells[3*i], cells[3*i+1], cells[3*i+2]
		if lease.rate == 0 || ttl.rate == 0 || none.rate == 0 {
			r.finding("run failed at %d shards", n)
			return r
		}
		xs = append(xs, float64(n))
		leaseY = append(leaseY, lease.rate)
		ttlY = append(ttlY, ttl.rate)
		noneY = append(noneY, none.rate)
		r.row(fmt.Sprintf("stats/s @ %d shards, lease 30s", n), lease.rate, "ops/s",
			fmt.Sprintf("%.0f%% hits, %d stale", lease.hit, lease.stale))
		r.row(fmt.Sprintf("stats/s @ %d shards, ttl 3s", n), ttl.rate, "ops/s",
			fmt.Sprintf("%.0f%% hits, %d stale", ttl.hit, ttl.stale))
		r.row(fmt.Sprintf("stats/s @ %d shards, no cache", n), none.rate, "ops/s", "")
		if n == 4 {
			lease4, ttl4 = lease, ttl
		}
	}
	// The trade-off pinned at 4 shards: a TTL matched to the hot files'
	// ~2ms mutation interval reaches the coherent cache's hit rate and
	// still serves stale hits, because hot files are revisited faster
	// than they are mutated.
	matched := cells[len(cells)-1]
	if matched.rate == 0 {
		r.finding("run failed for the hit-rate-matched TTL cell")
		return r
	}
	r.row("4 shards: lease 30s hit rate", lease4.hit, "%",
		fmt.Sprintf("%d stale reads", lease4.stale))
	r.row("4 shards: ttl 3s hit rate", ttl4.hit, "%",
		fmt.Sprintf("%d stale reads", ttl4.stale))
	r.row("4 shards: ttl 2ms hit rate", matched.hit, "%",
		fmt.Sprintf("%d stale reads (hit-rate-matched TTL)", matched.stale))
	r.finding("the timeout cache cannot buy freshness with its TTL on a write-shared "+
		"load: at the 3s NFS default it tops the hit rate (%.0f%%) by serving %d "+
		"stale hits, and even shrunk to the ~2ms hot-file mutation interval it "+
		"matches the coherent hit rate (%.0f%% vs %.0f%%) while still serving %d "+
		"stale reads — at equal (zero) staleness its only configuration is no cache "+
		"at all, 0%% hits against the coherent cache's %.0f%%",
		ttl4.hit, ttl4.stale, matched.hit, lease4.hit, matched.stale, lease4.hit)
	r.Charts = append(r.Charts, charts.Render(
		"Stat+mutate throughput vs. shard count by cache mode",
		"shards", "ops/s", chartW, chartH,
		[]charts.Series{
			{Name: "lease 30s", X: xs, Y: leaseY},
			{Name: "ttl 3s", X: xs, Y: ttlY},
			{Name: "no cache", X: xs, Y: noneY},
		}))
	return r
}

// E24FailoverCachedLoad puts a lease-cached stat+mutate load through
// PR 3's crash/takeover path. The promoted backup knows nothing about
// the dead primary's leases, so it cannot revoke them: without
// crash-time invalidation every mutation it applies leaves stale
// client hits behind until the leases expire on their own. Epoch-based
// bulk invalidation (Config.CrashInvalidate) closes that window to the
// takeover itself.
func E24FailoverCachedLoad() *Report {
	r := &Report{ID: "E24", Title: "Failover under cached load: the stale-read window",
		PaperRef: "beyond §4.2 + §2.1.2 (cache coherence across failover)"}
	const (
		window    = 16 * time.Second
		crashAt   = 6 * time.Second
		restartAt = 13 * time.Second
	)
	plan := (&fault.Plan{}).Outage(crashAt, restartAt, 0)
	if err := plan.Validate(); err != nil {
		r.finding("bad plan: %v", err)
		return r
	}
	run := func(seed int64, invalidate bool) (*results.Measurement, *results.Set, *shard.FS) {
		cfg := shard.DefaultConfig(2)
		cfg.Replicate = true
		cfg.CacheMode = shard.CacheLease
		cfg.LeaseTTL = 8 * time.Second
		cfg.TrackStaleness = true
		cfg.CrashInvalidate = invalidate
		k := sim.New(seed)
		cl := cluster.New(k, cluster.DefaultConfig(8))
		fsys := newShardFS(k, "meta", cfg)
		rn := &core.Runner{
			Cluster: cl,
			FS:      fsys,
			Params: core.Params{ProblemSize: 1 << 20, TimeLimit: window,
				WorkDir: "/bench"},
			SlotsPerNode: 2,
			Plugins:      []core.Plugin{e22Load(0)},
			Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 2 },
			BenchStartHook: func(mp *sim.Proc, _ core.MeasurementInfo) {
				plan.Start(mp, fsys)
			},
		}
		set, err := rn.Run()
		if err != nil {
			return nil, nil, fsys
		}
		return set.Find("StatMutateFiles", 8, 2), set, fsys
	}
	// Two cells: with and without crash-time lease invalidation.
	type e24cell struct {
		m   *results.Measurement
		set *results.Set
		fs  *shard.FS
	}
	cells := parCells("E24", []string{"invalidate", "no-invalidate"}, func(i int) e24cell {
		m, set, fsys := run(int64(2400+i), i == 0)
		return e24cell{m, set, fsys}
	})
	inval, iset, ifs := cells[0].m, cells[0].set, cells[0].fs
	stale, sset, sfs := cells[1].m, cells[1].set, cells[1].fs
	if inval == nil || stale == nil || len(ifs.Takeovers) == 0 || len(sfs.Takeovers) == 0 {
		r.finding("run failed")
		return r
	}
	r.Sets = append(r.Sets, iset, sset)
	staleWindow := func(f *shard.FS) time.Duration {
		w := f.LastStaleAt - f.Takeovers[0].CrashAt
		if f.StaleReads == 0 || w < 0 {
			return 0
		}
		return w
	}
	_, _, _, epochDrops := ifs.CacheStats()
	r.row("invalidate: takeover latency", ifs.Takeovers[0].Total().Seconds()*1000, "ms",
		fmt.Sprintf("detect + %d entries replayed", ifs.Takeovers[0].Entries))
	r.row("invalidate: stale reads", float64(ifs.StaleReads), "", "epoch check on every hit")
	r.row("invalidate: stale-read window", staleWindow(ifs).Seconds(), "s", "")
	r.row("invalidate: leases bulk-dropped", float64(epochDrops), "", "epoch moves observed by clients")
	r.row("no invalidate: takeover latency", sfs.Takeovers[0].Total().Seconds()*1000, "ms", "")
	r.row("no invalidate: stale reads", float64(sfs.StaleReads), "",
		"no serving change can revoke its predecessor's leases")
	r.row("no invalidate: stale-read window", staleWindow(sfs).Seconds(), "s",
		fmt.Sprintf("takeover and failback each leak up to the %s lease TTL", 8*time.Second))
	r.finding("failover without lease invalidation leaks staleness: neither the "+
		"promoted backup (crash at 6s) nor the restarted primary (failback at 13s) "+
		"can revoke leases its predecessor granted, so mutations they serve leave "+
		"clients trusting dead leases — a %.1fs stale window, %d stale reads, each "+
		"leak bounded only by the 8s lease TTL. Crash-time epoch invalidation "+
		"shrinks the window to %.1fs (%d stale reads) at the same %.0fms takeover "+
		"latency",
		staleWindow(sfs).Seconds(), sfs.StaleReads,
		staleWindow(ifs).Seconds(), ifs.StaleReads,
		ifs.Takeovers[0].Total().Seconds()*1000)
	r.Charts = append(r.Charts,
		"lease cache + crash-time invalidation, crash at 6s, restart at 13s\n"+
			charts.TimeChart(inval, chartW, chartH),
		"lease cache without invalidation, same fault plan\n"+
			charts.TimeChart(stale, chartW, chartH))
	return r
}
