package experiments

import (
	"strings"
	"testing"
)

// The full experiment suite runs in cmd/experiments and the root
// benchmarks; here we smoke the fast ones and assert the headline shape
// findings that define a successful reproduction.

func TestE01Shape(t *testing.T) {
	rep := E01SyscallCounts()
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	var amp float64
	for _, row := range rep.Rows {
		if row.Name == "ops amplification" {
			amp = row.Value
		}
	}
	if amp < 2 {
		t.Fatalf("amplification = %f, want >= 2 (extra stat per create)", amp)
	}
}

func TestE09Shape(t *testing.T) {
	rep := E09AllocationBursts()
	rows := map[string]float64{}
	for _, r := range rep.Rows {
		rows[r.Name] = r.Value
	}
	if rows["OSS pre-allocation refills"] < 5 {
		t.Fatalf("refills = %f", rows["OSS pre-allocation refills"])
	}
	if rows["dip depth"] < 20 {
		t.Fatalf("dip depth = %f%%, want visible dips", rows["dip depth"])
	}
	if len(rep.Charts) == 0 {
		t.Fatal("no time chart")
	}
}

func TestE10Shape(t *testing.T) {
	rep := E10PriorityScheduling()
	rows := map[string]float64{}
	for _, r := range rep.Rows {
		rows[r.Name] = r.Value
	}
	hi := rows["nice 0 ops/s during load"]
	lo := rows["nice 10 ops/s during load"]
	if hi <= 10*lo {
		t.Fatalf("priority had too little effect: hi=%f lo=%f", hi, lo)
	}
}

func TestE12Shape(t *testing.T) {
	rep := E12LatencySweep()
	rows := map[string]float64{}
	for _, r := range rep.Rows {
		rows[r.Name] = r.Value
	}
	// Synchronous NFS creates degrade with RTT; write-back creates do not.
	if !(rows["RTT 0.2ms: NFS creates"] > 5*rows["RTT 10.0ms: NFS creates"]) {
		t.Fatalf("NFS latency sensitivity missing: %v", rows)
	}
	wbFast := rows["RTT 0.2ms: write-back creates"]
	wbSlow := rows["RTT 10.0ms: write-back creates"]
	if wbSlow < wbFast/2 {
		t.Fatalf("write-back should hide latency: %f -> %f", wbFast, wbSlow)
	}
}

func TestE14Shape(t *testing.T) {
	rep := E14AFS()
	rows := map[string]float64{}
	for _, r := range rep.Rows {
		rows[r.Name] = r.Value
	}
	afsWarm := rows["AFS StatFiles (warm cache)"]
	afsNo := rows["AFS StatNocacheFiles"]
	nfsWarm := rows["NFS StatFiles (warm cache)"]
	nfsNo := rows["NFS StatNocacheFiles"]
	if afsNo < afsWarm/2 {
		t.Fatalf("AFS persistent cache lost on drop: warm %f, nocache %f", afsWarm, afsNo)
	}
	if nfsNo > nfsWarm/10 {
		t.Fatalf("NFS cache drop had no effect: warm %f, nocache %f", nfsWarm, nfsNo)
	}
}

func TestE15Shape(t *testing.T) {
	rep := E15WritebackCaching()
	rows := map[string]float64{}
	for _, r := range rep.Rows {
		rows[r.Name] = r.Value
	}
	if rows["burst / sustained"] < 5 {
		t.Fatalf("burst/sustained = %f, want >> 1", rows["burst / sustained"])
	}
	// Sustained must be near the synchronous server rate (same hardware).
	sus, sync := rows["sustained rate (4..8s)"], rows["synchronous create rate"]
	if sus < sync/2 || sus > sync*2 {
		t.Fatalf("sustained %f vs synchronous %f: should converge", sus, sync)
	}
}

func TestE21Shape(t *testing.T) {
	rep := E21RecoveryScaling()
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	var floor float64
	var takeovers []float64
	for _, r := range rep.Rows {
		if r.Name == "detection floor" {
			floor = r.Value
		}
		if strings.HasPrefix(r.Name, "takeover @") {
			takeovers = append(takeovers, r.Value)
		}
	}
	if floor <= 0 {
		t.Fatalf("detection floor = %f, want > 0", floor)
	}
	if len(takeovers) < 2 {
		t.Fatalf("takeover sweep rows = %d, want >= 2", len(takeovers))
	}
	for i := 1; i < len(takeovers); i++ {
		if takeovers[i] <= takeovers[i-1] {
			t.Fatalf("takeover latency not increasing with journal length: %v", takeovers)
		}
	}
	if takeovers[0] < floor {
		t.Fatalf("smallest takeover %f below the detection floor %f", takeovers[0], floor)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "EX", Title: "test", PaperRef: "§0"}
	rep.row("metric", 1234.5, "ops/s", "note")
	rep.row("small", 0.123, "", "")
	rep.finding("shape %d", 42)
	s := rep.String()
	for _, want := range []string{"EX", "metric", "1234.5", "0.123", "shape 42", "# note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}
