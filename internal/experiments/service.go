package experiments

import (
	"fmt"
	"strings"
	"time"

	"dmetabench/internal/agg"
	"dmetabench/internal/charts"
	"dmetabench/internal/cluster"
	"dmetabench/internal/core"
	"dmetabench/internal/lustre"
	"dmetabench/internal/nfs"
	"dmetabench/internal/results"
	"dmetabench/internal/service"
	"dmetabench/internal/shard"
	"dmetabench/internal/sim"
	"dmetabench/internal/workload"
)

// E34–E36: the shared metadata-service runtime. PR 8 brought the
// conservative-lookahead parallel kernel to the sharded MDS only; the
// substrate now lives in internal/service and every file-system model —
// NFS filer, Lustre MDS/OSS, sharded — runs through it. These
// experiments measure what that buys: E34 the protocol overhead and
// parallelism headroom of domaining the single-server models, E35 the
// paper's filer confronted with a modern million-client population, and
// E36 the window-count reduction of the adaptive lookahead rule.
//
// All three pin their own Domains (bypassing the package-wide override)
// so the committed corpus is byte-identical at any -domains value, and
// every cell is a pure function of its seed, so the reports are
// byte-identical at any -j/worker count.

// grouper is the slice of any FS model that exposes its domain group.
type grouper interface{ Group() *sim.DomainGroup }

// fingerprintSet serializes a result set exactly as Save would write its
// trace/summary/series files — the byte-identity unit the determinism
// rows of E34 and E36 compare in memory.
func fingerprintSet(set *results.Set) string {
	if set == nil {
		return ""
	}
	var b strings.Builder
	for _, m := range set.Measurements {
		b.WriteString(m.TraceFileName() + "\n")
		m.WriteTrace(&b)
		m.WriteSummary(&b)
		if len(m.Series) > 0 {
			m.WriteSeries(&b)
		}
	}
	return b.String()
}

// groupStats reads window count and per-domain event shares after a run:
// headroom is total events dispatched over the busiest domain's share —
// the speedup bound an ideal multi-core run converges to.
func groupStats(g *sim.DomainGroup) (windows int64, events int64, headroom float64) {
	if g == nil {
		return 0, 0, 1
	}
	var max int64
	for i := 0; i < g.NumDomains(); i++ {
		d := g.Kernel(i).Dispatched()
		events += d
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return g.Windows(), events, 1
	}
	return g.Windows(), events, float64(events) / float64(max)
}

// e34Cell is one E34/E36 run: a fixed create+stat workload on one
// single-server model, with the post-run group statistics.
type e34Cell struct {
	set      *results.Set
	fp       string
	windows  int64
	events   int64
	headroom float64
	err      string
}

// e34Workload drives the common foreground: 8 nodes x 4 processes
// creating and statting under a 1-second-interval measurement.
func e34Workload(k *sim.Kernel, fsys core.FileSystem) (*results.Set, error) {
	cl := cluster.New(k, cluster.DefaultConfig(8))
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 3000, WorkDir: "/bench"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{core.MakeFiles{}, core.StatFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 8 && c.PPN == 4 },
	}
	return r.Run()
}

// runE34Cell builds the model named by fs ("nfs" or "lustre") with the
// given domain count, runs the workload and reads the group statistics.
// adaptive toggles the lookahead rule (E36); workers sizes the OS-thread
// pool (0 = default) — both must not change a single reported byte.
func runE34Cell(fsName string, domains, workers int, adaptive bool) e34Cell {
	k := sim.New(3400)
	var fsys core.FileSystem
	var grp grouper
	switch fsName {
	case "nfs":
		cfg := nfs.DefaultConfig()
		cfg.Domains = domains
		f := nfs.New(k, "home", cfg)
		fsys, grp = f, f
	default:
		cfg := lustre.DefaultConfig()
		cfg.Domains = domains
		f := lustre.New(k, "scratch", cfg)
		fsys, grp = f, f
	}
	g := grp.Group()
	if g != nil {
		if workers > 0 {
			g.Workers = workers
		}
		g.Adaptive = adaptive
	}
	set, err := e34Workload(k, fsys)
	c := e34Cell{set: set}
	if err != nil {
		c.err = err.Error()
		return c
	}
	c.fp = fingerprintSet(set)
	c.windows, c.events, c.headroom = groupStats(g)
	return c
}

// E34DomainedServers runs the NFS filer and the Lustre MDS/OSS complex
// through the shared service runtime's kernel domains and measures the
// two things that matter: the protocol's cost in modeled throughput
// (domained vs the legacy single-heap run of the identical workload)
// and the parallelism headroom the partitioning exposes. The domained
// cells run twice — one worker thread vs eight — and their serialized
// result sets are byte-compared: worker-count invariance is the safety
// property the conservative protocol guarantees.
func E34DomainedServers() *Report {
	r := &Report{ID: "E34", Title: "Kernel domains for the single-server models",
		PaperRef: "beyond §3.2 (shared service runtime, parallel DES)"}
	type spec struct {
		fs               string
		domains, workers int
	}
	specs := []spec{
		{"nfs", 0, 0}, {"nfs", 2, 1}, {"nfs", 2, 8},
		{"lustre", 0, 0}, {"lustre", 8, 1}, {"lustre", 8, 8},
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		if s.domains == 0 {
			names[i] = s.fs + "-legacy"
		} else {
			names[i] = fmt.Sprintf("%s-dom-w%d", s.fs, s.workers)
		}
	}
	cells := parCells("E34", names, func(i int) e34Cell {
		s := specs[i]
		return runE34Cell(s.fs, s.domains, s.workers, true)
	})
	for i := range cells {
		if cells[i].err != "" {
			r.finding("cell %s failed: %s", names[i], cells[i].err)
			return r
		}
		r.Sets = append(r.Sets, cells[i].set)
	}
	for fi, fsName := range []string{"nfs", "lustre"} {
		legacy, w1, w8 := &cells[3*fi], &cells[3*fi+1], &cells[3*fi+2]
		lRate := wallOf(legacy.set, "MakeFiles", 8, 4)
		dRate := wallOf(w1.set, "MakeFiles", 8, 4)
		det := 0.0
		if w1.fp != "" && w1.fp == w8.fp {
			det = 1
		}
		r.row(fmt.Sprintf("%-6s legacy creates/s", fsName), lRate, "ops/s",
			"single-heap kernel")
		r.row(fmt.Sprintf("%-6s domained creates/s", fsName), dRate, "ops/s",
			fmt.Sprintf("%d windows", w1.windows))
		r.row(fmt.Sprintf("%-6s protocol overhead", fsName),
			100*safeDiv(lRate-dRate, lRate), "%", "modeled throughput delta")
		r.row(fmt.Sprintf("%-6s events/window", fsName),
			safeDiv(float64(w1.events), float64(w1.windows)), "", "")
		r.row(fmt.Sprintf("%-6s parallelism headroom", fsName), w1.headroom, "x",
			"events / busiest domain")
		r.row(fmt.Sprintf("%-6s worker invariance", fsName), det, "",
			"1 = 1-vs-8-worker byte-identical")
	}
	nfsDet := cells[1].fp == cells[2].fp
	lusDet := cells[4].fp == cells[5].fp
	nfsRate := wallOf(cells[0].set, "MakeFiles", 8, 4)
	nfsDom := wallOf(cells[1].set, "MakeFiles", 8, 4)
	r.finding("the shared service runtime domains the single-server models "+
		"the same way it domains the sharded MDS: worker-count invariance "+
		"holds (nfs %v, lustre %v) and the cross-domain RPC discipline is "+
		"modeled-throughput-neutral on this workload (%.0f vs %.0f creates/s "+
		"on the filer) — the cost is wall-clock protocol, not virtual time. "+
		"A metadata-only load concentrates events on the client and "+
		"MDS domains, so headroom stays at %.1fx (nfs) and %.1fx (lustre) "+
		"until data-path traffic spreads onto the OSS domains",
		nfsDet, lusDet, nfsRate, nfsDom, cells[1].headroom, cells[4].headroom)
	return r
}

// e35Cell is one E35 run: the domained filer under an aggregate
// background population, probed by the stage harness.
type e35Cell struct {
	set     *results.Set
	aggOps  int64
	aggShed int64
	err     string
}

func (c *e35Cell) shedFrac() float64 {
	total := c.aggOps + c.aggShed
	if total == 0 {
		return 0
	}
	return float64(c.aggShed) / float64(total)
}

// runE35Cell drives one simulated day on a single NFS filer: clients
// background arrivals (diurnal-modulated) injected into the filer's
// thread pool, four fully-simulated probes measuring the foreground
// tail. Domains is pinned to 2 (client domain + filer domain), so the
// injector lanes run as daemons on the filer's own kernel.
func runE35Cell(seed int64, clients int, period, interval time.Duration, label string) e35Cell {
	k := sim.New(seed)
	cl := cluster.New(k, cluster.DefaultConfig(4))
	cfg := nfs.DefaultConfig()
	cfg.Domains = 2
	fsys := nfs.New(k, "home", cfg)
	lanes := cfg.ServerThreads
	const tick = 250 * time.Millisecond
	if clients > 0 {
		model := agg.Model{
			Clients:      clients,
			OpsPerClient: 0.1,
			Mix:          workload.DefaultMetaMix(),
			Zipf:         agg.ZipfPop{S: 1.1, V: 1, N: 512},
			Diurnal:      agg.Diurnal{Amplitude: 0.6, Period: period},
			Churn:        agg.Churn{ActiveFrac: 0.5, SessionMean: 30 * time.Minute, Tick: tick},
			Tick:         tick,
			Seed:         seed,
		}
		sources := agg.NewSources(model, 1, lanes, func(int) int { return 0 })
		fsys.AttachAggregate(model.Tick, func(_, lane, tick int) service.Demand {
			d := sources[lane].Tick(int64(tick))
			return service.Demand{Getattr: d.Getattr, Lookup: d.Lookup,
				Readdir: d.Readdir, Create: d.Create}
		})
	}
	r := &core.StageRunner{
		Cluster:  cl,
		FS:       fsys,
		Probes:   4,
		Interval: interval,
		Think:    time.Second,
		Label:    label,
		Stages:   []core.Stage{{Name: "day", Duration: period}},
		Aux: func() int64 {
			ops, _, _ := fsys.AggCounts()
			return ops
		},
	}
	set, err := r.Run()
	c := e35Cell{set: set}
	if err != nil {
		c.err = err.Error()
		return c
	}
	c.aggOps, c.aggShed, _ = fsys.AggCounts()
	return c
}

// E35FilerAtScale puts the paper's workhorse — one NFS filer — under a
// population it never met in 2008: one million aggregate background
// clients over a simulated day, injected through the shared runtime's
// aggregate port into the filer's own kernel domain. A quiet twin cell
// (no background) runs the same probes for the baseline tail. The
// question is the filer's failure shape at modern scale: how much of
// the offered load the open-loop admission sheds, and what the diurnal
// swing does to the foreground tail.
func E35FilerAtScale() *Report {
	r := &Report{ID: "E35", Title: "The paper's filer at modern scale: 1M background clients",
		PaperRef: "beyond §4.2 (single filer, population scale, -period 3h day)"}
	period := periodOr(3 * time.Hour)
	interval := stageInterval(period, 180)
	const clients = 1_000_000
	cells := parCells("E35", []string{"quiet", "loaded"}, func(i int) e35Cell {
		if i == 0 {
			return runE35Cell(3501, 0, period, interval, "E35-quiet")
		}
		return runE35Cell(3502, clients, period, interval, "E35-loaded")
	})
	q, l := &cells[0], &cells[1]
	for i, c := range cells {
		if c.err != "" || c.set == nil {
			r.finding("cell %d failed: %s", i, c.err)
			return r
		}
		r.Sets = append(r.Sets, c.set)
	}
	qm, lm := q.set.Measurements[0], l.set.Measurements[0]
	lw, ok := lm.Window(0, period)
	qw, qok := qm.Window(0, period)
	if !ok || !qok {
		r.finding("day produced no intervals")
		return r
	}
	r.row("offered background", float64(clients)*0.1*0.5/1000, "kops/s",
		fmt.Sprintf("%d clients x 0.1 ops/s x 50%% active", clients))
	r.row("admitted background", lw.MeanAuxRate/1000, "kops/s",
		"what the filer's pool holds")
	r.row("shed fraction", 100*l.shedFrac(), "%", "open-loop admission control")
	r.row("diurnal peak/trough", safeDiv(lw.PeakAuxRate, lw.TroughAuxRate), "x",
		fmt.Sprintf("%.0fk / %.0fk ops/s", lw.PeakAuxRate/1000, lw.TroughAuxRate/1000))
	r.row("quiet   foreground p99", float64(qw.MaxP99.Microseconds()), "us",
		"no background, worst interval")
	r.row("loaded  foreground p99", float64(lw.MaxP99.Microseconds()), "us",
		"worst interval of the day")
	xs := make([]float64, 0, len(lm.Series))
	ys := make([]float64, 0, len(lm.Series))
	for _, s := range lm.Series {
		xs = append(xs, s.T.Hours())
		ys = append(ys, float64(s.Aux)/interval.Seconds()/1000)
	}
	r.Charts = append(r.Charts, charts.Render(
		"Admitted background throughput over the simulated day (1 filer)",
		"hours", "kops/s", chartW, chartH, []charts.Series{{Name: "admitted", X: xs, Y: ys}}))
	r.finding("one filer meets a million clients: the pool absorbs the "+
		"offered mean (only %.1f%% shed by open-loop admission), but the "+
		"%.1fx diurnal swing drives the peak to the pool's edge and the "+
		"foreground tail pays for it — worst-interval p99 inflates %.0fx "+
		"over the quiet twin (%.0f vs %.0f us). The paper's single-server "+
		"saturation shape, reproduced at a population the 2008 study could "+
		"not instantiate",
		100*l.shedFrac(), safeDiv(lw.PeakAuxRate, lw.TroughAuxRate),
		safeDiv(float64(lw.MaxP99.Microseconds()), float64(qw.MaxP99.Microseconds())),
		float64(lw.MaxP99.Microseconds()), float64(qw.MaxP99.Microseconds()))
	return r
}

// runE36Shard is E36's heavy sharded cell: E20's replicated 8-shard
// create load (16 nodes x 4 processes) partitioned into 9 domains —
// the cell whose window count the adaptive rule is meant to cut.
func runE36Shard(adaptive bool) e34Cell {
	k := sim.New(3600)
	cl := cluster.New(k, cluster.DefaultConfig(16))
	cfg := shard.DefaultConfig(8)
	cfg.Replicate = true
	cfg.Domains = 9 // pinned: 8 shard domains + the client domain
	fsys := shard.New(k, "meta", cfg)
	g := fsys.Group()
	g.Adaptive = adaptive
	r := &core.Runner{
		Cluster:      cl,
		FS:           fsys,
		Params:       core.Params{ProblemSize: 2000, WorkDir: "/bench"},
		SlotsPerNode: 4,
		Plugins:      []core.Plugin{core.MakeFiles{}},
		Filter:       func(c core.Combo) bool { return c.Nodes == 16 && c.PPN == 4 },
	}
	set, err := r.Run()
	c := e34Cell{set: set}
	if err != nil {
		c.err = err.Error()
		return c
	}
	c.fp = fingerprintSet(set)
	c.windows, c.events, c.headroom = groupStats(g)
	return c
}

// runE36Sparse is E36's sparse cell: two cache-hit probes on the
// domained filer, think time well above the lookahead, stats served
// from the attribute cache between TTL refreshes. The client domain's
// events are spaced wider than the fixed window while the filer domain
// idles between WAFL ticks — the phase structure the adaptive rule
// exists for: the lone-minimum client extends its window to the filer's
// next timer and crosses the idle span in one barrier instead of one
// per think step.
func runE36Sparse(adaptive bool) e34Cell {
	k := sim.New(3601)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	cfg := nfs.DefaultConfig()
	cfg.Domains = 2
	fsys := nfs.New(k, "home", cfg)
	g := fsys.Group()
	g.Adaptive = adaptive
	r := &core.StageRunner{
		Cluster:  cl,
		FS:       fsys,
		Probes:   2,
		Interval: time.Second,
		Think:    2 * time.Millisecond,
		Label:    "E36-sparse",
		Stages:   []core.Stage{{Name: "cached", Duration: 30 * time.Second}},
	}
	set, err := r.Run()
	c := e34Cell{set: set}
	if err != nil {
		c.err = err.Error()
		return c
	}
	c.fp = fingerprintSet(set)
	c.windows, c.events, c.headroom = groupStats(g)
	return c
}

// E36AdaptiveLookahead measures the adaptive window rule of the domain
// scheduler (internal/sim): when one domain uniquely holds the earliest
// next event, its window extends to the second-minimum plus the
// lookahead instead of the classic fixed edge. The delivered event
// schedule is provably identical — every cell here is byte-compared
// between adaptive and fixed — so the entire effect is fewer, fuller
// windows: fewer barrier crossings, less per-window coordination. Three
// cells bound the effect: the heavy E20-family sharded cell and the E34
// filer cell (saturated — every domain busy every window, little to
// merge) and a sparse cache-hit cell (idle filer between TTL refreshes
// — the regime the rule was built for).
func E36AdaptiveLookahead() *Report {
	r := &Report{ID: "E36", Title: "Adaptive vs fixed lookahead windows",
		PaperRef: "beyond §3.2 (conservative-lookahead scheduling)"}
	names := []string{"shard-adaptive", "shard-fixed", "nfs-adaptive", "nfs-fixed",
		"sparse-adaptive", "sparse-fixed"}
	cells := parCells("E36", names, func(i int) e34Cell {
		switch i {
		case 0:
			return runE36Shard(true)
		case 1:
			return runE36Shard(false)
		case 2:
			return runE34Cell("nfs", 2, 0, true)
		case 3:
			return runE34Cell("nfs", 2, 0, false)
		case 4:
			return runE36Sparse(true)
		default:
			return runE36Sparse(false)
		}
	})
	for i := range cells {
		if cells[i].err != "" {
			r.finding("cell %s failed: %s", names[i], cells[i].err)
			return r
		}
		r.Sets = append(r.Sets, cells[i].set)
	}
	for fi, model := range []string{"shard", "nfs", "sparse"} {
		ad, fx := &cells[2*fi], &cells[2*fi+1]
		det := 0.0
		if ad.fp != "" && ad.fp == fx.fp {
			det = 1
		}
		r.row(fmt.Sprintf("%-6s fixed    windows", model), float64(fx.windows), "", "")
		r.row(fmt.Sprintf("%-6s adaptive windows", model), float64(ad.windows), "",
			fmt.Sprintf("%.2fx fewer", safeDiv(float64(fx.windows), float64(ad.windows))))
		r.row(fmt.Sprintf("%-6s events/window gain", model),
			safeDiv(safeDiv(float64(ad.events), float64(ad.windows)),
				safeDiv(float64(fx.events), float64(fx.windows))), "x",
			"fuller windows, same schedule")
		r.row(fmt.Sprintf("%-6s byte-identical", model), det, "",
			"1 = adaptive run == fixed run")
	}
	det := cells[0].fp == cells[1].fp && cells[2].fp == cells[3].fp &&
		cells[4].fp == cells[5].fp
	r.finding("adaptive lookahead is a pure scheduling optimization — every "+
		"cell's results are byte-identical to its fixed-window twin (%v). On "+
		"saturated cells the gain is marginal (%.2fx sharded, %.2fx filer: "+
		"every domain holds events every window, nothing to merge); on the "+
		"sparse cache-hit cell the lone-minimum extension crosses the filer's "+
		"idle spans in one barrier and cuts the window count %.1fx — the "+
		"modeled bound on barrier-synchronization savings for a multi-core run",
		det,
		safeDiv(float64(cells[1].windows), float64(cells[0].windows)),
		safeDiv(float64(cells[3].windows), float64(cells[2].windows)),
		safeDiv(float64(cells[5].windows), float64(cells[4].windows)))
	return r
}
