// Package service is the shared metadata-service runtime: the
// server-side substrate every FS model (shard, nfs, lustre) runs on.
// It owns the three scale capabilities that used to be hard-wired into
// internal/shard and unreachable from the models that reproduce the
// paper itself:
//
//   - Domain placement (Runtime): with Domains > 1 the cell's event
//     processing partitions into conservative-lookahead kernel domains
//     (internal/sim) — domain 0 runs the clients (workers, measurement
//     master, fault injectors) and domains 1..D-1 each run a subset of
//     the servers, round-robin. Every server's thread pools, storage
//     model and namespace state live on its own kernel, and RPCs become
//     timestamped cross-domain messages. With Domains <= 1 every helper
//     degrades to the exact single-kernel code path, byte for byte.
//
//   - Per-class op pricing (PriceTable): the base service times the
//     cost models charge per operation class, shared between foreground
//     RPC pricing and background demand batches so both pay the same
//     rates.
//
//   - Aggregate background injection (AttachAggregate): analytically
//     modeled load (internal/agg) enters a server as batched
//     virtual-time demand instead of per-client processes. Injector
//     lanes run as daemons on the server's own kernel domain; each tick
//     every lane draws its slice of the server's arrival batch, prices
//     it through the model's hook, then occupies one server thread for
//     that long. Foreground clients queue FIFO behind the injected
//     holds, so they observe genuine contention — queueing delay,
//     diurnal swell, flash-crowd saturation — from a load that costs no
//     per-client state.
//
// The correctness discipline mirrors internal/shard/domain.go: state
// belongs to the domain of the server serving it, rare global
// transitions run at sync points (Runtime.AtSync), and counters shared
// across domains are atomics whose sums are order-independent.
package service

import (
	"strconv"
	"sync/atomic"
	"time"

	"dmetabench/internal/sim"
)

// Runtime is the domain-placement substrate for one FS model: a client
// kernel (domain 0) plus one kernel per server, assigned round-robin
// over domains 1..D-1. With Domains <= 1 it is inert — every accessor
// returns the base kernel and the model runs exactly its legacy
// single-heap code path.
type Runtime struct {
	k       *sim.Kernel
	g       *sim.DomainGroup
	kernels []*sim.Kernel // per-server kernels; nil when undomained
}

// New builds the runtime for a model with the given server count.
// domains is the requested domain count (Config.Domains); it is clamped
// to servers+1 (one client domain plus at most one domain per server).
// lookahead must be the model's latency floor — the smallest one-way
// delay any cross-domain interaction pays. A kernel already owned by a
// domain group (k.Group() != nil) stays undomained from this runtime's
// point of view: the model embeds into the existing group's kernel.
func New(k *sim.Kernel, servers, domains int, lookahead time.Duration) *Runtime {
	rt := &Runtime{k: k}
	if domains > 1 && k.Group() == nil {
		nd := domains
		if nd > servers+1 {
			nd = servers + 1
		}
		if nd > 1 {
			rt.g = sim.AddDomains(k, nd-1, lookahead)
			rt.kernels = make([]*sim.Kernel, servers)
			for i := range rt.kernels {
				rt.kernels[i] = rt.g.Kernel(1 + i%(nd-1))
			}
		}
	}
	return rt
}

// Domained reports whether the runtime runs on a multi-domain group.
func (rt *Runtime) Domained() bool { return rt.g != nil }

// Group exposes the domain group (nil when Domains <= 1).
func (rt *Runtime) Group() *sim.DomainGroup { return rt.g }

// Client returns the client-side kernel (domain 0, or the base kernel
// when undomained): workers, measurement masters and fault injectors
// spawn here.
func (rt *Runtime) Client() *sim.Kernel { return rt.k }

// KernelFor returns the kernel server i lives on (the base kernel when
// undomained).
func (rt *Runtime) KernelFor(i int) *sim.Kernel {
	if rt.kernels == nil {
		return rt.k
	}
	return rt.kernels[i]
}

// AtSync runs fn at the next safe global instant: immediately when
// undomained (the single kernel is always globally quiescent between
// events), else at a sync point one lookahead window ahead, with every
// domain parked at exactly that time.
func (rt *Runtime) AtSync(p *sim.Proc, fn func()) {
	if rt.g == nil {
		fn()
		return
	}
	rt.g.AtSync(p, p.Now(), fn)
}

// Demand is one tick's background arrivals for one injector lane, by
// operation class. The classes map onto the priced service kinds of the
// per-model cost tables (GetattrService etc.).
type Demand struct {
	Getattr int64
	Lookup  int64
	Readdir int64
	Create  int64
}

// Total sums the classes.
func (d Demand) Total() int64 { return d.Getattr + d.Lookup + d.Readdir + d.Create }

// PriceTable holds the base per-class service times a server charges.
// Price converts a demand batch into unscaled service time; models
// layer their dynamic factors (WAFL consistency points, journal
// pressure) on top.
type PriceTable struct {
	Getattr time.Duration
	Lookup  time.Duration
	Readdir time.Duration
	Create  time.Duration
}

// Price returns the base service time for one demand batch.
func (t PriceTable) Price(d Demand) time.Duration {
	return time.Duration(d.Getattr)*t.Getattr +
		time.Duration(d.Lookup)*t.Lookup +
		time.Duration(d.Readdir)*t.Readdir +
		time.Duration(d.Create)*t.Create
}

// AggregateConfig wires AttachAggregate to one model's servers.
type AggregateConfig struct {
	// Servers is the injected server count; lanes spawn for servers
	// 0..Servers-1 in order.
	Servers int
	// Lanes is the injector lane count per server (clamped to >= 1);
	// use the server's thread-pool width so injected demand can fill
	// the pool.
	Lanes int
	// Tick is the batching interval (defaults to one second).
	Tick time.Duration
	// Kernel returns the kernel server i's lanes spawn on — the
	// server's own domain (Runtime.KernelFor, or a model-specific
	// placement).
	Kernel func(server int) *sim.Kernel
	// Pool returns server i's client-facing thread pool; each batch
	// occupies one thread for its priced duration.
	Pool func(server int) *sim.Resource
	// Source draws server i's arrivals for one (lane, tick); it is
	// called in strictly increasing tick order per (server, lane) and
	// runs on the server's kernel domain, so per-(server, lane) state
	// must not be shared across servers (internal/agg's
	// replicated-stream design).
	Source func(server, lane, tick int) Demand
	// Price converts one batch into service time, including any
	// dynamic model factor sampled at injection time.
	Price func(server int, d Demand) time.Duration
	// Ops, Shed and Busy are the model's counters: injected operations,
	// operations shed under overload, and cumulative injected service
	// time (as int64 nanoseconds). They are bumped atomically — lanes
	// in different domains run concurrently.
	Ops, Shed, Busy *int64
}

// AttachAggregate starts the background injector: Lanes daemon lanes
// per server, each drawing its (server, lane) stream tick by tick and
// occupying one pool thread for the priced duration. Call before the
// kernel runs; the lanes are daemons, so they never keep a finished
// simulation alive.
//
// Overload is open-loop: a lane that cannot finish a tick's hold before
// later ticks begin shedding the ticks it slept through (Shed). The
// pool therefore saturates at 100% utilization instead of building an
// unbounded virtual queue, which is the admission-control behavior a
// real front end would enforce.
//
// Determinism: lanes touch only their own server's pool and the atomic
// counters, and each (server, lane) draws from a private source stream
// in strict tick order, so runs are byte-identical at any
// Domains/worker count.
func AttachAggregate(cfg AggregateConfig) {
	tick := cfg.Tick
	if tick <= 0 {
		tick = time.Second
	}
	lanes := cfg.Lanes
	if lanes < 1 {
		lanes = 1
	}
	for i := 0; i < cfg.Servers; i++ {
		srv := i
		k := cfg.Kernel(srv)
		for l := 0; l < lanes; l++ {
			lane := l
			name := "agginject:" + strconv.Itoa(srv) + ":" + strconv.Itoa(lane)
			k.SpawnDaemon(name, func(p *sim.Proc) {
				aggLane(p, &cfg, srv, lane, tick)
			})
		}
	}
}

// aggLane is one injector lane's loop. All per-iteration state lives in
// locals and the hold path is Acquire/Sleep/Release on a preallocated
// resource, so the steady state allocates nothing
// (BenchmarkAggregateInject's alloc guard pins this).
func aggLane(p *sim.Proc, cfg *AggregateConfig, srv, lane int, tick time.Duration) {
	pool := cfg.Pool(srv)
	next := 0 // next tick index this lane owes
	for {
		i := int(p.Now() / tick)
		if i < next {
			// Our tick's work is done; park until the next boundary.
			p.Sleep(time.Duration(next)*tick - p.Now())
			i = next
		}
		// Ticks the lane slept through entirely are shed: draw them to
		// keep the source stream index-pure, count them, do not hold.
		for next < i {
			d := cfg.Source(srv, lane, next)
			if n := d.Total(); n > 0 {
				AddI64(cfg.Shed, n)
			}
			next++
		}
		d := cfg.Source(srv, lane, i)
		next = i + 1
		n := d.Total()
		if n == 0 {
			continue
		}
		cost := cfg.Price(srv, d)
		AddI64(cfg.Ops, n)
		AddI64(cfg.Busy, int64(cost))
		if cost > 0 {
			pool.Acquire(p)
			p.Sleep(cost)
			pool.Release()
		}
	}
}

// AddI64 bumps a counter that service bodies increment from several
// domains concurrently. Sums are order-independent, so the totals stay
// deterministic; undomained the atomic op is just an add.
func AddI64(ctr *int64, d int64) { atomic.AddInt64(ctr, d) }

// LoadI64 reads such a counter (safe during a run from any domain).
func LoadI64(ctr *int64) int64 { return atomic.LoadInt64(ctr) }
